/// \file gossip_delta_fault_test.cpp
/// The delta wire plane under the fault plane: drops, duplicates, and
/// delays on gossip traffic must never corrupt the protocol. The
/// sender-side high-water mark only ever advances at the sender's own
/// forwarding events, so no injected fault can desynchronize it; a
/// dropped delta merely leaves receiver knowledge partial (which gossip
/// tolerates by design), a duplicated one re-merges idempotently, and a
/// delayed one arrives late but intact. Every case must still produce an
/// internally consistent, load-conserving plan and a live runtime.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <set>

#include "fault/fault_config.hpp"
#include "fault/fault_plane.hpp"
#include "lb/strategy/gossip_strategy.hpp"
#include "runtime/runtime.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace tlb::fault {
namespace {

FaultConfig gossip_faults(double drop, double dup, double delay) {
  FaultConfig cfg;
  cfg.name = "gossip-delta-test";
  auto& k = cfg.kinds[static_cast<std::size_t>(rt::MessageKind::gossip)];
  k.drop = drop;
  k.duplicate = dup;
  k.delay = delay;
  k.delay_min_polls = 1;
  k.delay_max_polls = 6;
  return cfg;
}

lb::StrategyInput clustered(RankId ranks, RankId loaded, int per_rank,
                            std::uint64_t seed) {
  lb::StrategyInput input;
  input.tasks.resize(static_cast<std::size_t>(ranks));
  Rng rng{seed};
  TaskId id = 0;
  for (RankId r = 0; r < loaded; ++r) {
    for (int i = 0; i < per_rank; ++i) {
      input.tasks[static_cast<std::size_t>(r)].push_back(
          {id++, rng.uniform(0.5, 1.5)});
    }
  }
  return input;
}

void expect_valid_plan(lb::StrategyInput const& input,
                       lb::StrategyResult const& result) {
  std::map<TaskId, RankId> home;
  double total_in = 0.0;
  for (std::size_t r = 0; r < input.tasks.size(); ++r) {
    for (auto const& t : input.tasks[r]) {
      home[t.id] = static_cast<RankId>(r);
      total_in += t.load;
    }
  }
  std::set<TaskId> moved;
  for (Migration const& m : result.migrations) {
    ASSERT_TRUE(home.count(m.task));
    EXPECT_EQ(home[m.task], m.from);
    EXPECT_NE(m.from, m.to);
    EXPECT_TRUE(moved.insert(m.task).second) << "task migrated twice";
  }
  double total_out = 0.0;
  for (double const l : result.new_rank_loads) {
    total_out += l;
  }
  EXPECT_NEAR(total_in, total_out, 1e-6 * std::max(1.0, total_in));
}

void run_faulted_delta_case(double drop, double dup, double delay,
                            std::uint64_t seed) {
  SCOPED_TRACE("drop=" + std::to_string(drop) +
               " dup=" + std::to_string(dup) +
               " delay=" + std::to_string(delay) +
               " seed=" + std::to_string(seed));
  RankId const p = 32;
  rt::RuntimeConfig cfg;
  cfg.num_ranks = p;
  cfg.seed = seed;
  cfg.retry.quiesce_poll_budget = 2'000'000;
  rt::Runtime rt{cfg};
  auto const input = clustered(p, 4, 30, seed ^ 0x5eed);
  double const before = imbalance(input.rank_loads());

  auto plane = install_fault_plane(rt, gossip_faults(drop, dup, delay));
  lb::GossipStrategy strategy{lb::GossipStrategy::Flavor::tempered};
  auto params = lb::LbParams::tempered();
  params.num_trials = 2;
  params.num_iterations = 3;
  params.gossip_wire = lb::GossipWire::delta;
  auto const result = strategy.balance(rt, input, params);

  expect_valid_plan(input, result);
  // Gossip loss only makes knowledge partial; the transfer stage still
  // runs on whatever arrived, so the plan must not be degenerate.
  EXPECT_LE(result.achieved_imbalance, before);

  // Liveness after the faulted cycle: fresh work still flows.
  rt.set_fault_hook(nullptr);
  std::atomic<int> delivered{0};
  rt.post_all([&delivered](rt::RankContext&) { ++delivered; });
  EXPECT_TRUE(rt.run_until_quiescent());
  EXPECT_EQ(delivered.load(), static_cast<int>(p));
}

TEST(GossipDeltaFaultTest, SurvivesDroppedDeltas) {
  run_faulted_delta_case(0.15, 0.0, 0.0, 0xd401);
}

TEST(GossipDeltaFaultTest, SurvivesDuplicatedDeltas) {
  run_faulted_delta_case(0.0, 0.5, 0.0, 0xd402);
}

TEST(GossipDeltaFaultTest, SurvivesDelayedDeltas) {
  run_faulted_delta_case(0.0, 0.0, 0.4, 0xd403);
}

TEST(GossipDeltaFaultTest, SurvivesCombinedGossipChaos) {
  run_faulted_delta_case(0.1, 0.25, 0.25, 0xd404);
}

TEST(GossipDeltaFaultTest, DuplicatesAloneCannotChangeTheOutcome) {
  // Merging a payload twice is a set-union no-op and the high-water mark
  // lives at the sender, so duplicates cannot corrupt knowledge — but in
  // multi-round cascades they can still shift scheduler batch boundaries,
  // reordering cross-sender arrivals and thereby the snapshots later
  // forwards ship. Single-round gossip has no such timing channel: every
  // payload is fixed at seed time and final knowledge is a pure set
  // union, so a duplicate-only run must reproduce the duplicate-free
  // result exactly. Both runs install a plane (the baseline at zero
  // rates): installing one switches the transfer stage onto its
  // resilient path, so only like-for-like runs are bit-comparable.
  RankId const p = 32;
  auto const input = clustered(p, 4, 30, 0xabba);
  auto run_with = [&](double dup) {
    rt::RuntimeConfig cfg;
    cfg.num_ranks = p;
    cfg.seed = 777;
    rt::Runtime rt{cfg};
    auto plane = install_fault_plane(rt, gossip_faults(0.0, dup, 0.0));
    lb::GossipStrategy strategy{lb::GossipStrategy::Flavor::tempered};
    auto params = lb::LbParams::tempered();
    params.num_trials = 1;
    params.num_iterations = 2;
    params.rounds = 1;
    params.gossip_wire = lb::GossipWire::delta;
    auto const result = strategy.balance(rt, input, params);
    rt.set_fault_hook(nullptr);
    return result;
  };
  auto const clean = run_with(0.0);
  auto const duplicated = run_with(1.0);
  EXPECT_EQ(clean.migrations, duplicated.migrations);
  EXPECT_EQ(clean.achieved_imbalance, duplicated.achieved_imbalance);
}

} // namespace
} // namespace tlb::fault
