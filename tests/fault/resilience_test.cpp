#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "fault/fault_config.hpp"
#include "fault/fault_plane.hpp"
#include "lb/strategy/gossip_strategy.hpp"
#include "runtime/object_store.hpp"
#include "runtime/runtime.hpp"
#include "support/rng.hpp"

namespace tlb::fault {
namespace {

class Blob final : public rt::Migratable {
public:
  explicit Blob(std::size_t size, int tag = 0) : size_{size}, tag_{tag} {}
  [[nodiscard]] std::size_t wire_bytes() const override { return size_; }
  [[nodiscard]] int tag() const { return tag_; }

private:
  std::size_t size_;
  int tag_;
};

rt::RuntimeConfig config(RankId ranks, std::uint64_t seed = 0xfeed,
                         int threads = 1) {
  rt::RuntimeConfig cfg;
  cfg.num_ranks = ranks;
  cfg.num_threads = threads;
  cfg.seed = seed;
  return cfg;
}

FaultConfig migration_faults(double drop, double dup, double delay) {
  FaultConfig cfg;
  cfg.name = "migration-test";
  auto& k = cfg.kinds[static_cast<std::size_t>(rt::MessageKind::migration)];
  k.drop = drop;
  k.duplicate = dup;
  k.delay = delay;
  return cfg;
}

TEST(ResilientMigrationTest, DuplicatedCommitIsANoOp) {
  rt::Runtime rt{config(4)};
  rt::ObjectStore store{4};
  for (TaskId t = 0; t < 12; ++t) {
    store.create(static_cast<RankId>(t % 2), t,
                 std::make_unique<Blob>(64, static_cast<int>(t)));
  }
  auto plane = install_fault_plane(rt, migration_faults(0.0, 1.0, 0.0));
  std::vector<Migration> batch;
  for (TaskId t = 0; t < 12; ++t) {
    batch.push_back(Migration{t, static_cast<RankId>(t % 2),
                              static_cast<RankId>(2 + t % 2), 1.0});
  }
  auto const bytes = store.migrate(rt, batch);
  // Every payload message was duplicated, yet the dedup table makes the
  // second commit a no-op: each task lands exactly once.
  EXPECT_EQ(bytes, 12u * 64u);
  EXPECT_TRUE(store.failed_migrations().empty());
  EXPECT_EQ(store.total_tasks(), 12u);
  for (Migration const& m : batch) {
    EXPECT_EQ(store.owner(m.task), m.to);
    EXPECT_EQ(store.find(m.from, m.task), nullptr);
    auto* blob = dynamic_cast<Blob*>(store.find(m.to, m.task));
    ASSERT_NE(blob, nullptr);
    EXPECT_EQ(blob->tag(), static_cast<int>(m.task));
  }
  auto const stats = rt.stats();
  EXPECT_GE(stats.kind_duplicated[static_cast<std::size_t>(
                rt::MessageKind::migration)],
            12u);
  rt.set_fault_hook(nullptr);
}

TEST(ResilientMigrationTest, RetryExhaustionRollsBackWithoutWedging) {
  rt::Runtime rt{config(4)};
  rt::ObjectStore store{4};
  store.create(0, 7, std::make_unique<Blob>(256, 7));
  store.create(1, 8, std::make_unique<Blob>(128, 8));
  auto plane = install_fault_plane(rt, migration_faults(1.0, 0.0, 0.0));
  auto const bytes =
      store.migrate(rt, {Migration{7, 0, 3, 1.0}, Migration{8, 1, 2, 1.0}});
  // Every delivery attempt was eaten; migrate() must return (the retry
  // budget bounds it), roll both migrations back, and leave the directory
  // and payloads exactly where they started.
  EXPECT_EQ(bytes, 0u);
  ASSERT_EQ(store.failed_migrations().size(), 2u);
  EXPECT_EQ(store.owner(7), 0);
  EXPECT_EQ(store.owner(8), 1);
  EXPECT_NE(store.find(0, 7), nullptr);
  EXPECT_NE(store.find(1, 8), nullptr);
  EXPECT_EQ(store.find(3, 7), nullptr);
  EXPECT_EQ(store.find(2, 8), nullptr);
  EXPECT_EQ(store.total_tasks(), 2u);
  auto const stats = rt.stats();
  auto const retry_budget =
      static_cast<std::size_t>(rt.config().retry.max_attempts - 1);
  EXPECT_EQ(stats.kind_retried[static_cast<std::size_t>(
                rt::MessageKind::migration)],
            2u * retry_budget);
  // The runtime is not wedged: a fresh round still quiesces.
  std::atomic<int> delivered{0};
  rt.post(0, [&delivered](rt::RankContext&) { ++delivered; });
  EXPECT_TRUE(rt.run_until_quiescent());
  EXPECT_EQ(delivered.load(), 1);
  rt.set_fault_hook(nullptr);
}

TEST(ResilientMigrationTest, LossyNetworkEventuallyCommitsViaRetry) {
  rt::Runtime rt{config(8, 0x5eed01)};
  rt::ObjectStore store{8};
  std::size_t const tasks = 64;
  for (TaskId t = 0; t < static_cast<TaskId>(tasks); ++t) {
    store.create(static_cast<RankId>(t % 4), t, std::make_unique<Blob>(32));
  }
  // 30% loss per attempt: with the default 4-attempt budget the expected
  // survival rate is 1 - 0.3^4 ≈ 99.2% per migration; either outcome is
  // acceptable, but bookkeeping must stay exact.
  auto plane = install_fault_plane(rt, migration_faults(0.3, 0.0, 0.0));
  std::vector<Migration> batch;
  for (TaskId t = 0; t < static_cast<TaskId>(tasks); ++t) {
    batch.push_back(Migration{t, static_cast<RankId>(t % 4),
                              static_cast<RankId>(4 + t % 4), 1.0});
  }
  (void)store.migrate(rt, batch);
  EXPECT_EQ(store.total_tasks(), tasks);
  std::size_t committed = 0;
  for (Migration const& m : batch) {
    RankId const owner = store.owner(m.task);
    if (owner == m.to) {
      ++committed;
      EXPECT_NE(store.find(m.to, m.task), nullptr);
      EXPECT_EQ(store.find(m.from, m.task), nullptr);
    } else {
      EXPECT_EQ(owner, m.from);
      EXPECT_NE(store.find(m.from, m.task), nullptr);
    }
  }
  EXPECT_EQ(committed + store.failed_migrations().size(), tasks);
  EXPECT_GT(committed, tasks / 2) << "retry should recover most losses";
  rt.set_fault_hook(nullptr);
}

TEST(ResilientMigrationTest, PureDelayNeverLosesACommit) {
  rt::Runtime rt{config(4)};
  rt::ObjectStore store{4};
  for (TaskId t = 0; t < 16; ++t) {
    store.create(0, t, std::make_unique<Blob>(16));
  }
  auto plane = install_fault_plane(rt, migration_faults(0.0, 0.0, 1.0));
  std::vector<Migration> batch;
  for (TaskId t = 0; t < 16; ++t) {
    batch.push_back(Migration{t, 0, static_cast<RankId>(1 + t % 3), 1.0});
  }
  (void)store.migrate(rt, batch);
  EXPECT_TRUE(store.failed_migrations().empty());
  for (Migration const& m : batch) {
    EXPECT_EQ(store.owner(m.task), m.to);
  }
  rt.set_fault_hook(nullptr);
}

TEST(ResilientTransferTest, TotalTransferLossYieldsNoMigrationsNoHang) {
  rt::Runtime rt{config(16, 0xabba)};
  FaultConfig cfg;
  cfg.name = "transfer-blackhole";
  auto& k = cfg.kinds[static_cast<std::size_t>(rt::MessageKind::transfer)];
  k.drop = 1.0;
  auto plane = install_fault_plane(rt, cfg);

  lb::StrategyInput input;
  input.tasks.resize(16);
  Rng rng{11};
  TaskId id = 0;
  for (RankId r = 0; r < 4; ++r) {
    for (int i = 0; i < 20; ++i) {
      input.tasks[static_cast<std::size_t>(r)].push_back(
          {id++, rng.uniform(0.5, 1.5)});
    }
  }
  lb::GossipStrategy strategy{lb::GossipStrategy::Flavor::tempered};
  auto params = lb::LbParams::tempered();
  params.num_trials = 1;
  params.num_iterations = 2;
  auto const result = strategy.balance(rt, input, params);
  // Every transfer proposal (and every ack) was dropped: all proposals
  // exhaust their retries and the tasks bounce back to their origins, so
  // no iteration ever improves on the initial placement and the strategy
  // must NACK out with zero migrations rather than hang or lose tasks.
  EXPECT_TRUE(result.migrations.empty());
  auto const stats = rt.stats();
  EXPECT_GT(stats.kind_retried[static_cast<std::size_t>(
                rt::MessageKind::transfer)],
            0u);
  rt.set_fault_hook(nullptr);
}

TEST(ResilientTransferTest, BalanceUnderChaosProducesConsistentMigrations) {
  rt::Runtime rt{config(16, 0x77)};
  auto plane = install_fault_plane(rt, FaultConfig::chaos());

  lb::StrategyInput input;
  input.tasks.resize(16);
  Rng rng{5};
  TaskId id = 0;
  for (RankId r = 0; r < 4; ++r) {
    for (int i = 0; i < 25; ++i) {
      input.tasks[static_cast<std::size_t>(r)].push_back(
          {id++, rng.uniform(0.5, 1.5)});
    }
  }
  lb::GossipStrategy strategy{lb::GossipStrategy::Flavor::tempered};
  auto params = lb::LbParams::tempered();
  params.num_trials = 2;
  params.num_iterations = 4;
  auto const result = strategy.balance(rt, input, params);
  // Whatever the fault plane did, the committed plan must be internally
  // consistent: each migration's `from` is the task's true origin and no
  // task moves twice.
  std::map<TaskId, RankId> home;
  for (std::size_t r = 0; r < input.tasks.size(); ++r) {
    for (auto const& t : input.tasks[r]) {
      home[t.id] = static_cast<RankId>(r);
    }
  }
  std::set<TaskId> seen;
  for (Migration const& m : result.migrations) {
    ASSERT_TRUE(home.count(m.task) == 1);
    EXPECT_EQ(home[m.task], m.from);
    EXPECT_NE(m.from, m.to);
    EXPECT_TRUE(seen.insert(m.task).second);
  }
  rt.set_fault_hook(nullptr);
}

} // namespace
} // namespace tlb::fault
