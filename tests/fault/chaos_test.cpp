/// Chaos matrix: sweep seeds × fault profiles over a full LB cycle
/// (gossip balance + payload migration) and assert the system-level
/// guarantees the fault plane must never break:
///   - eventual quiescence (no run wedges; the poll budget turns a wedge
///     into a reported abort, and we assert it never fires),
///   - task conservation (nothing lost, nothing duplicated),
///   - load conservation (the sum of task loads is invariant),
///   - directory/residency agreement after migration.
/// Under -DTLB_AUDIT=ON (the CI chaos job) the runtime and object-store
/// auditors additionally cross-check every epoch from the inside.
///
/// The seed count scales with the TLB_CHAOS_SEEDS environment variable
/// (default 3); failures print the (profile, seed) pair so a failing cell
/// reproduces with a one-line test filter.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault_config.hpp"
#include "fault/fault_plane.hpp"
#include "lb/strategy/gossip_strategy.hpp"
#include "runtime/object_store.hpp"
#include "runtime/runtime.hpp"
#include "support/rng.hpp"

namespace tlb::fault {
namespace {

class Blob final : public rt::Migratable {
public:
  explicit Blob(std::size_t size) : size_{size} {}
  [[nodiscard]] std::size_t wire_bytes() const override { return size_; }

private:
  std::size_t size_;
};

int seeds_from_env() {
  if (char const* env = std::getenv("TLB_CHAOS_SEEDS")) {
    int const n = std::atoi(env);
    if (n > 0) {
      return n;
    }
  }
  return 3;
}

void run_chaos_case(std::string_view profile_name, std::uint64_t seed,
                    int threads) {
  SCOPED_TRACE(std::string{"profile="} + std::string{profile_name} +
               " seed=" + std::to_string(seed) +
               " threads=" + std::to_string(threads));
  RankId const p = 16;
  rt::RuntimeConfig cfg;
  cfg.num_ranks = p;
  cfg.num_threads = threads;
  cfg.seed = seed;
  // Liveness valve: if a protocol ever wedged, the budget would flush and
  // the affected round would abort — the asserts below would then catch
  // any conservation fallout. A hang can never escape the harness.
  cfg.retry.quiesce_poll_budget = 2'000'000;
  rt::Runtime rt{cfg};
  rt::ObjectStore store{p};

  // Clustered workload: all tasks on the first 4 ranks, skewed loads.
  lb::StrategyInput input;
  input.tasks.resize(static_cast<std::size_t>(p));
  Rng rng{derive_seed(seed, 0x9a5)};
  std::size_t const total_tasks = 96;
  double total_load = 0.0;
  for (TaskId t = 0; t < static_cast<TaskId>(total_tasks); ++t) {
    auto const home = static_cast<RankId>(t % 4);
    double const load = rng.uniform(0.25, 2.0);
    total_load += load;
    store.create(home, t, std::make_unique<Blob>(48));
    input.tasks[static_cast<std::size_t>(home)].push_back({t, load});
  }

  auto plane = install_fault_plane(rt, FaultConfig::profile(profile_name));

  lb::GossipStrategy strategy{lb::GossipStrategy::Flavor::tempered};
  auto params = lb::LbParams::tempered();
  params.num_trials = 2;
  params.num_iterations = 3;
  auto const result = strategy.balance(rt, input, params);

  // The committed plan must be internally consistent regardless of what
  // the fault plane injected.
  std::set<TaskId> moved;
  for (Migration const& m : result.migrations) {
    EXPECT_EQ(store.owner(m.task), m.from);
    EXPECT_NE(m.from, m.to);
    EXPECT_TRUE(moved.insert(m.task).second);
  }

  (void)store.migrate(rt, result.migrations);

  // Task conservation + directory/residency agreement.
  EXPECT_EQ(store.total_tasks(), total_tasks);
  std::size_t resident = 0;
  for (RankId r = 0; r < p; ++r) {
    resident += store.tasks_on(r).size();
  }
  EXPECT_EQ(resident, total_tasks);
  std::map<TaskId, double> load_of;
  for (auto const& tasks : input.tasks) {
    for (auto const& t : tasks) {
      load_of[t.id] = t.load;
    }
  }
  double resident_load = 0.0;
  for (TaskId t = 0; t < static_cast<TaskId>(total_tasks); ++t) {
    RankId const owner = store.owner(t);
    ASSERT_NE(owner, invalid_rank);
    EXPECT_NE(store.find(owner, t), nullptr);
    resident_load += load_of[t];
  }
  EXPECT_NEAR(resident_load, total_load, 1e-9 * total_load);

  // Eventual quiescence: the runtime is live after the whole cycle.
  std::atomic<int> delivered{0};
  rt.post_all([&delivered](rt::RankContext&) { ++delivered; });
  EXPECT_TRUE(rt.run_until_quiescent());
  EXPECT_GT(delivered.load(), 0);

  rt.set_fault_hook(nullptr);
}

TEST(ChaosMatrix, SweepSeedsTimesProfiles) {
  int const seeds = seeds_from_env();
  for (auto const profile : FaultConfig::profile_names()) {
    if (profile == "none") {
      continue; // the fault-free column is the whole rest of the suite
    }
    for (int s = 0; s < seeds; ++s) {
      run_chaos_case(profile,
                     0x9e00u + 0x51u * static_cast<std::uint64_t>(s),
                     /*threads=*/1);
    }
  }
}

TEST(ChaosMatrix, ThreadedDriverSurvivesChaos) {
  int const seeds = std::min(seeds_from_env(), 3);
  for (int s = 0; s < seeds; ++s) {
    run_chaos_case("chaos", 0x7000u + static_cast<std::uint64_t>(s),
                   /*threads=*/4);
  }
}

TEST(ChaosMatrix, CrashProfileNeverWedgesMigration) {
  // The crash column, but aimed straight at migration: the destination
  // rank is dead, so every payload send is refused and each migration
  // must roll back cleanly.
  rt::RuntimeConfig cfg;
  cfg.num_ranks = 4;
  cfg.seed = 0xdead;
  rt::Runtime rt{cfg};
  rt::ObjectStore store{4};
  for (TaskId t = 0; t < 8; ++t) {
    store.create(0, t, std::make_unique<Blob>(16));
  }
  FaultConfig chaos_cfg;
  chaos_cfg.crash_rank = 1;
  chaos_cfg.crash_at_poll = 0;
  auto plane = install_fault_plane(rt, chaos_cfg);
  std::vector<Migration> batch;
  for (TaskId t = 0; t < 8; ++t) {
    batch.push_back(Migration{t, 0, 1, 1.0});
  }
  (void)store.migrate(rt, batch);
  EXPECT_EQ(store.failed_migrations().size(), 8u);
  EXPECT_EQ(store.total_tasks(), 8u);
  for (TaskId t = 0; t < 8; ++t) {
    EXPECT_EQ(store.owner(t), 0);
    EXPECT_NE(store.find(0, t), nullptr);
  }
  rt.set_fault_hook(nullptr);
}

} // namespace
} // namespace tlb::fault
