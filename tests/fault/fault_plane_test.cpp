#include "fault/fault_plane.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "fault/fault_config.hpp"
#include "runtime/runtime.hpp"

namespace tlb::fault {
namespace {

rt::RuntimeConfig config(RankId ranks, int threads = 1,
                         std::uint64_t seed = 0xc0ffee) {
  rt::RuntimeConfig cfg;
  cfg.num_ranks = ranks;
  cfg.num_threads = threads;
  cfg.seed = seed;
  return cfg;
}

/// A config that faults exactly one kind, with the given probabilities.
FaultConfig single_kind(rt::MessageKind kind, double drop, double dup,
                        double delay) {
  FaultConfig cfg;
  cfg.name = "test";
  auto& k = cfg.kinds[static_cast<std::size_t>(kind)];
  k.drop = drop;
  k.duplicate = dup;
  k.delay = delay;
  k.delay_min_polls = 1;
  k.delay_max_polls = 4;
  return cfg;
}

TEST(FaultConfigTest, ProfilesRoundTripByName) {
  for (auto const name : FaultConfig::profile_names()) {
    auto const cfg = FaultConfig::profile(name);
    EXPECT_EQ(cfg.name, name);
  }
  EXPECT_THROW((void)FaultConfig::profile("no-such-profile"),
               std::invalid_argument);
}

TEST(FaultConfigTest, CanonicalProfilesLeaveControlTrafficClean) {
  for (auto const name : FaultConfig::profile_names()) {
    auto const cfg = FaultConfig::profile(name);
    EXPECT_FALSE(
        cfg.kinds[static_cast<std::size_t>(rt::MessageKind::other)].active())
        << name;
    EXPECT_FALSE(cfg.kinds[static_cast<std::size_t>(
                               rt::MessageKind::termination)]
                     .active())
        << name;
  }
}

TEST(FaultPlaneTest, DecisionsAreDeterministicPerSeed) {
  FaultPlane a{FaultConfig::chaos(), 8, 42};
  FaultPlane b{FaultConfig::chaos(), 8, 42};
  FaultPlane c{FaultConfig::chaos(), 8, 43};
  int diverged = 0;
  for (int i = 0; i < 2000; ++i) {
    RankId const from = static_cast<RankId>(i % 8);
    RankId const to = static_cast<RankId>((i + 3) % 8);
    auto const kind = static_cast<rt::MessageKind>(1 + i % 3);
    auto const da = a.on_send(from, to, kind);
    auto const db = b.on_send(from, to, kind);
    EXPECT_EQ(static_cast<int>(da.action), static_cast<int>(db.action));
    EXPECT_EQ(da.delay_polls, db.delay_polls);
    auto const dc = c.on_send(from, to, kind);
    if (dc.action != da.action || dc.delay_polls != da.delay_polls) {
      ++diverged;
    }
  }
  EXPECT_GT(diverged, 0) << "different seeds must give different streams";
}

TEST(FaultPlaneTest, DrainGatingIsAPureFunctionOfRankAndPoll) {
  FaultPlane plane{FaultConfig::stragglers(), 8, 7};
  for (RankId r = 0; r < 8; ++r) {
    for (std::uint64_t poll = 1; poll <= 64; ++poll) {
      auto const first = plane.on_drain(r, poll);
      EXPECT_EQ(static_cast<int>(first),
                static_cast<int>(plane.on_drain(r, poll)));
    }
  }
}

TEST(FaultPlaneTest, DormantRuntimeReportsNoFaultsAndNoFaultCounters) {
  rt::Runtime rt{config(4)};
  EXPECT_FALSE(rt.fault_active());
  std::atomic<int> delivered{0};
  rt.post(0, [&delivered](rt::RankContext& ctx) {
    for (RankId r = 0; r < ctx.num_ranks(); ++r) {
      ctx.send(r, 8, [&delivered](rt::RankContext&) { ++delivered; },
               rt::MessageKind::gossip);
    }
  });
  EXPECT_TRUE(rt.run_until_quiescent());
  EXPECT_EQ(delivered.load(), 4);
  auto const stats = rt.stats();
  for (std::size_t k = 0; k < rt::num_message_kinds; ++k) {
    EXPECT_EQ(stats.kind_dropped[k], 0u);
    EXPECT_EQ(stats.kind_delayed[k], 0u);
    EXPECT_EQ(stats.kind_duplicated[k], 0u);
    EXPECT_EQ(stats.kind_retried[k], 0u);
  }
}

TEST(FaultPlaneTest, CertainDropSwallowsEveryMessageWithoutWedging) {
  rt::Runtime rt{config(4)};
  auto plane = install_fault_plane(
      rt, single_kind(rt::MessageKind::gossip, 1.0, 0.0, 0.0));
  ASSERT_TRUE(rt.fault_active());
  std::atomic<int> delivered{0};
  rt.post(0, [&delivered](rt::RankContext& ctx) {
    for (int i = 0; i < 10; ++i) {
      ctx.send(1, 8, [&delivered](rt::RankContext&) { ++delivered; },
               rt::MessageKind::gossip);
    }
  });
  EXPECT_TRUE(rt.run_until_quiescent());
  EXPECT_EQ(delivered.load(), 0);
  auto const stats = rt.stats();
  EXPECT_EQ(
      stats.kind_dropped[static_cast<std::size_t>(rt::MessageKind::gossip)],
      10u);
  rt.set_fault_hook(nullptr);
}

TEST(FaultPlaneTest, CertainDuplicateDeliversExactlyTwiceNoFission) {
  rt::Runtime rt{config(4)};
  auto plane = install_fault_plane(
      rt, single_kind(rt::MessageKind::transfer, 0.0, 1.0, 0.0));
  std::atomic<int> delivered{0};
  rt.post(0, [&delivered](rt::RankContext& ctx) {
    for (int i = 0; i < 10; ++i) {
      ctx.send(2, 8, [&delivered](rt::RankContext&) { ++delivered; },
               rt::MessageKind::transfer);
    }
  });
  EXPECT_TRUE(rt.run_until_quiescent());
  // Each send delivered exactly twice: the clone is fault-exempt, so a
  // duplicate cannot fission into four, eight, ...
  EXPECT_EQ(delivered.load(), 20);
  auto const stats = rt.stats();
  EXPECT_EQ(stats.kind_duplicated[static_cast<std::size_t>(
                rt::MessageKind::transfer)],
            10u);
  rt.set_fault_hook(nullptr);
}

TEST(FaultPlaneTest, CertainDelayStillDeliversEverything) {
  rt::Runtime rt{config(4)};
  auto plane = install_fault_plane(
      rt, single_kind(rt::MessageKind::migration, 0.0, 0.0, 1.0));
  std::atomic<int> delivered{0};
  rt.post(0, [&delivered](rt::RankContext& ctx) {
    for (int i = 0; i < 25; ++i) {
      ctx.send(3, 8, [&delivered](rt::RankContext&) { ++delivered; },
               rt::MessageKind::migration);
    }
  });
  EXPECT_TRUE(rt.run_until_quiescent());
  // A delay reorders but never loses: quiescence waits for parked work.
  EXPECT_EQ(delivered.load(), 25);
  auto const stats = rt.stats();
  EXPECT_EQ(stats.kind_delayed[static_cast<std::size_t>(
                rt::MessageKind::migration)],
            25u);
  rt.set_fault_hook(nullptr);
}

TEST(FaultPlaneTest, CrashedRankPurgesItsMailboxAndQuiescenceHolds) {
  rt::Runtime rt{config(4)};
  FaultConfig cfg;
  cfg.crash_rank = 2;
  cfg.crash_at_poll = 1; // dead from its first drain visit
  auto plane = install_fault_plane(rt, cfg);
  std::atomic<int> delivered{0};
  rt.post(0, [&delivered](rt::RankContext& ctx) {
    for (RankId r = 0; r < ctx.num_ranks(); ++r) {
      ctx.send(r, 8, [&delivered](rt::RankContext&) { ++delivered; },
               rt::MessageKind::gossip);
    }
  });
  EXPECT_TRUE(rt.run_until_quiescent());
  EXPECT_TRUE(plane->crashed(2));
  // Three survivors deliver; the crashed rank's message is purged (or
  // refused at send once the crash flag is up), never processed.
  EXPECT_EQ(delivered.load(), 3);
  auto const stats = rt.stats();
  EXPECT_GE(
      stats.kind_dropped[static_cast<std::size_t>(rt::MessageKind::gossip)],
      1u);
  rt.set_fault_hook(nullptr);
}

TEST(FaultPlaneTest, StalledRanksStillReachQuiescence) {
  rt::Runtime rt{config(8)};
  auto plane = install_fault_plane(rt, FaultConfig::stragglers());
  std::atomic<int> delivered{0};
  rt.post_all([&delivered](rt::RankContext& ctx) {
    RankId const next =
        static_cast<RankId>((ctx.rank() + 1) % ctx.num_ranks());
    ctx.send(next, 8, [&delivered](rt::RankContext&) { ++delivered; },
             rt::MessageKind::gossip);
  });
  EXPECT_TRUE(rt.run_until_quiescent());
  EXPECT_EQ(delivered.load(), 8);
  rt.set_fault_hook(nullptr);
}

TEST(FaultPlaneTest, QuiescenceBudgetFlushesAndReportsFailure) {
  rt::Runtime rt{config(2)};
  // A ping-pong that never terminates on its own; the poll budget must
  // cut it off, flush, and report the round as failed.
  struct Pong {
    std::atomic<int> volleys{0};
  };
  auto pong = std::make_shared<Pong>();
  std::function<void(rt::RankContext&)> volley =
      [pong, &volley](rt::RankContext& ctx) {
        ++pong->volleys;
        RankId const next =
            static_cast<RankId>((ctx.rank() + 1) % ctx.num_ranks());
        ctx.send(next, 1, volley, rt::MessageKind::other);
      };
  rt.post(0, volley);
  EXPECT_FALSE(rt.run_until_quiescent(/*max_polls=*/64));
  EXPECT_GT(pong->volleys.load(), 0);
  // The flush accounted the in-flight volley as dropped, so a subsequent
  // round starts clean and quiesces.
  std::atomic<int> delivered{0};
  rt.post(1, [&delivered](rt::RankContext&) { ++delivered; });
  EXPECT_TRUE(rt.run_until_quiescent());
  EXPECT_EQ(delivered.load(), 1);
}

TEST(FaultPlaneTest, InstallDerivesStreamsFromTheRuntimeRootSeed) {
  rt::Runtime rt_a{config(4, 1, 111)};
  rt::Runtime rt_b{config(4, 1, 111)};
  rt::Runtime rt_c{config(4, 1, 222)};
  auto plane_a = install_fault_plane(rt_a, FaultConfig::drops());
  auto plane_b = install_fault_plane(rt_b, FaultConfig::drops());
  auto plane_c = install_fault_plane(rt_c, FaultConfig::drops());
  int diverged = 0;
  for (int i = 0; i < 500; ++i) {
    auto const da = plane_a->on_send(0, 1, rt::MessageKind::gossip);
    auto const db = plane_b->on_send(0, 1, rt::MessageKind::gossip);
    auto const dc = plane_c->on_send(0, 1, rt::MessageKind::gossip);
    EXPECT_EQ(static_cast<int>(da.action), static_cast<int>(db.action));
    if (dc.action != da.action) {
      ++diverged;
    }
  }
  EXPECT_GT(diverged, 0);
  rt_a.set_fault_hook(nullptr);
  rt_b.set_fault_hook(nullptr);
  rt_c.set_fault_hook(nullptr);
}

} // namespace
} // namespace tlb::fault
