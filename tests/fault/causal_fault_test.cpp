/// \file causal_fault_test.cpp
/// Causal stamps must survive the fault plane: duplicates share their
/// original's id (the clone IS the same logical message), delayed
/// messages keep their stamp across the hold, and the injected-crash
/// trigger dumps a flight record. Only meaningful with both gates on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "fault/fault_config.hpp"
#include "fault/fault_plane.hpp"
#include "obs/causal.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"
#include "runtime/runtime.hpp"

#if TLB_TELEMETRY_ENABLED
#define TLB_SKIP_WITHOUT_TELEMETRY() (void)0
#else
#define TLB_SKIP_WITHOUT_TELEMETRY()                                           \
  GTEST_SKIP() << "telemetry compiled out (TLB_TELEMETRY=OFF)"
#endif

namespace tlb::fault {
namespace {

rt::RuntimeConfig rt_config(RankId ranks, std::uint64_t seed = 0xfab1e) {
  rt::RuntimeConfig cfg;
  cfg.num_ranks = ranks;
  cfg.num_threads = 1;
  cfg.seed = seed;
  return cfg;
}

FaultConfig single_kind(rt::MessageKind kind, double drop, double dup,
                        double delay) {
  FaultConfig cfg;
  cfg.name = "test";
  auto& k = cfg.kinds[static_cast<std::size_t>(kind)];
  k.drop = drop;
  k.duplicate = dup;
  k.delay = delay;
  k.delay_min_polls = 1;
  k.delay_max_polls = 4;
  return cfg;
}

#if TLB_TELEMETRY_ENABLED

class ScopedTelemetry {
public:
  ScopedTelemetry() {
    obs::set_enabled(true);
    obs::CausalLog::instance().clear();
  }
  ~ScopedTelemetry() {
    obs::CausalLog::instance().clear();
    obs::set_enabled(false);
  }
};

/// Fan a burst of gossip-kind messages out from every rank.
void pump(rt::Runtime& rt, int fanout = 6) {
  rt.post_all([fanout](rt::RankContext& ctx) {
    for (int i = 0; i < fanout; ++i) {
      auto const dest = static_cast<RankId>(ctx.rng().uniform_below(
          static_cast<std::uint64_t>(ctx.num_ranks())));
      ctx.send(dest, 32, [](rt::RankContext&) {},
               rt::MessageKind::gossip);
    }
  });
  ASSERT_TRUE(rt.run_until_quiescent());
}

TEST(CausalFault, DuplicatesShareTheOriginalsId) {
  TLB_SKIP_WITHOUT_TELEMETRY();
  ScopedTelemetry scoped;
  rt::Runtime rt{rt_config(8)};
  auto plane =
      install_fault_plane(rt, single_kind(rt::MessageKind::gossip, 0.0,
                                          1.0, 0.0)); // always duplicate
  pump(rt);
  rt.set_fault_hook(nullptr);

  auto const stats = rt.stats();
  auto const dup_count = stats.kind_duplicated[static_cast<std::size_t>(
      rt::MessageKind::gossip)];
  ASSERT_GT(dup_count, 0u);

  // Every duplicated gossip id must appear exactly twice, with identical
  // stamps (same parent, hop, origin) — the clone is the same message.
  std::map<std::uint64_t, std::vector<obs::CausalEvent>> by_id;
  for (auto const& e : obs::CausalLog::instance().snapshot()) {
    if (std::string_view{e.kind} == "gossip") {
      by_id[e.stamp.id].push_back(e);
    }
  }
  std::size_t pairs = 0;
  for (auto const& [id, events] : by_id) {
    ASSERT_LE(events.size(), 2u) << "duplicates must not fission";
    if (events.size() == 2) {
      ++pairs;
      EXPECT_EQ(events[0].stamp.parent, events[1].stamp.parent);
      EXPECT_EQ(events[0].stamp.hop, events[1].stamp.hop);
      EXPECT_EQ(events[0].stamp.origin, events[1].stamp.origin);
    }
  }
  EXPECT_EQ(pairs, dup_count);
}

TEST(CausalFault, DelayedMessagesKeepTheirStamp) {
  TLB_SKIP_WITHOUT_TELEMETRY();
  ScopedTelemetry scoped;
  rt::Runtime rt{rt_config(8)};
  auto plane =
      install_fault_plane(rt, single_kind(rt::MessageKind::gossip, 0.0,
                                          0.0, 1.0)); // always delay
  pump(rt);
  rt.set_fault_hook(nullptr);

  auto const stats = rt.stats();
  ASSERT_GT(stats.kind_delayed[static_cast<std::size_t>(
                rt::MessageKind::gossip)],
            0u);

  // All gossip sends came from root handlers (hop 0), so each delivery
  // must still carry hop 1 and a nonzero parent despite the hold.
  std::size_t gossip_events = 0;
  for (auto const& e : obs::CausalLog::instance().snapshot()) {
    if (std::string_view{e.kind} == "gossip") {
      ++gossip_events;
      EXPECT_NE(e.stamp.id, 0u);
      EXPECT_NE(e.stamp.parent, 0u);
      EXPECT_EQ(e.stamp.hop, 1u);
    }
  }
  EXPECT_GT(gossip_events, 0u);
}

TEST(CausalFault, DropsLeaveSurvivorsWithValidChains) {
  TLB_SKIP_WITHOUT_TELEMETRY();
  ScopedTelemetry scoped;
  rt::Runtime rt{rt_config(8)};
  auto plane = install_fault_plane(
      rt, single_kind(rt::MessageKind::gossip, 0.5, 0.0, 0.0));
  pump(rt, 8);
  rt.set_fault_hook(nullptr);

  // Dropped messages never deliver, so they must not appear; the
  // critical-path reducer still finds a coherent chain in the survivors.
  auto const events = obs::CausalLog::instance().snapshot();
  ASSERT_FALSE(events.empty());
  for (auto const& e : events) {
    EXPECT_NE(e.stamp.id, 0u);
  }
  auto const path = obs::compute_critical_path(events);
  EXPECT_FALSE(path.chain.empty());
}

TEST(CausalFault, InjectedCrashDumpsFlightRecord) {
  TLB_SKIP_WITHOUT_TELEMETRY();
  ScopedTelemetry scoped;
  auto const path = ::testing::TempDir() + "fr_crash.json";
  std::remove(path.c_str());
  obs::set_flight_record_path(path);
  obs::rearm_flight_recorder();

  FaultConfig cfg;
  cfg.name = "crash";
  cfg.crash_rank = 3;
  cfg.crash_at_poll = 2;
  rt::Runtime rt{rt_config(8)};
  auto plane = install_fault_plane(rt, cfg);
  pump(rt, 4);
  rt.set_fault_hook(nullptr);

  EXPECT_TRUE(obs::flight_record_dumped());
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("\"reason\": \"fault_crash\""), std::string::npos);

  std::remove(path.c_str());
  obs::set_flight_record_path("");
  obs::rearm_flight_recorder();
}

#endif // TLB_TELEMETRY_ENABLED

} // namespace
} // namespace tlb::fault
