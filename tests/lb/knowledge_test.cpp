#include "lb/knowledge.hpp"

#include <gtest/gtest.h>

namespace tlb::lb {
namespace {

TEST(Knowledge, InsertAndLookup) {
  Knowledge k;
  EXPECT_TRUE(k.empty());
  k.insert(3, 1.5);
  k.insert(1, 0.5);
  k.insert(2, 1.0);
  EXPECT_EQ(k.size(), 3u);
  EXPECT_TRUE(k.contains(1));
  EXPECT_TRUE(k.contains(2));
  EXPECT_TRUE(k.contains(3));
  EXPECT_FALSE(k.contains(0));
  EXPECT_DOUBLE_EQ(k.load_of(1), 0.5);
  EXPECT_DOUBLE_EQ(k.load_of(3), 1.5);
}

TEST(Knowledge, EntriesSortedByRank) {
  Knowledge k;
  k.insert(9, 1.0);
  k.insert(2, 2.0);
  k.insert(5, 3.0);
  auto const e = k.entries();
  ASSERT_EQ(e.size(), 3u);
  EXPECT_EQ(e[0].rank, 2);
  EXPECT_EQ(e[1].rank, 5);
  EXPECT_EQ(e[2].rank, 9);
}

TEST(Knowledge, InsertOverwritesExisting) {
  Knowledge k;
  k.insert(4, 1.0);
  k.insert(4, 2.0);
  EXPECT_EQ(k.size(), 1u);
  EXPECT_DOUBLE_EQ(k.load_of(4), 2.0);
}

TEST(Knowledge, MergeKeepsLocalLoadOnConflict) {
  Knowledge mine;
  mine.insert(1, 5.0); // locally updated (e.g. speculative transfer)
  Knowledge incoming;
  incoming.insert(1, 2.0); // stale gossiped value
  incoming.insert(2, 3.0); // new rank
  mine.merge(incoming);
  EXPECT_EQ(mine.size(), 2u);
  EXPECT_DOUBLE_EQ(mine.load_of(1), 5.0); // local wins
  EXPECT_DOUBLE_EQ(mine.load_of(2), 3.0);
}

TEST(Knowledge, MergeDisjointSets) {
  Knowledge a;
  a.insert(0, 1.0);
  a.insert(4, 2.0);
  Knowledge b;
  b.insert(2, 3.0);
  b.insert(6, 4.0);
  a.merge(b);
  ASSERT_EQ(a.size(), 4u);
  auto const e = a.entries();
  EXPECT_EQ(e[0].rank, 0);
  EXPECT_EQ(e[1].rank, 2);
  EXPECT_EQ(e[2].rank, 4);
  EXPECT_EQ(e[3].rank, 6);
}

TEST(Knowledge, MergeWithEmpty) {
  Knowledge a;
  a.insert(1, 1.0);
  Knowledge const empty;
  a.merge(empty);
  EXPECT_EQ(a.size(), 1u);

  Knowledge b;
  b.merge(a);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_DOUBLE_EQ(b.load_of(1), 1.0);
}

TEST(Knowledge, AddLoadAccumulates) {
  Knowledge k;
  k.insert(2, 1.0);
  k.add_load(2, 0.5);
  k.add_load(2, 0.25);
  EXPECT_DOUBLE_EQ(k.load_of(2), 1.75);
}

TEST(Knowledge, ClearEmpties) {
  Knowledge k;
  k.insert(1, 1.0);
  k.clear();
  EXPECT_TRUE(k.empty());
  EXPECT_FALSE(k.contains(1));
}

TEST(Knowledge, WireBytesMatchesTheCompactEncoding) {
  // varint count + delta-varint rank ids + raw f64 loads — not
  // sizeof(KnownRank), which would bill struct padding to the network.
  Knowledge k;
  EXPECT_EQ(k.wire_bytes(), 1u); // just the zero count
  k.insert(1, 1.0);
  EXPECT_EQ(k.wire_bytes(), 1 + 1 + 8u);
  k.insert(2, 2.0);
  // Adjacent ranks delta-code to gap 0: one varint byte each.
  EXPECT_EQ(k.wire_bytes(), 1 + 2 + 16u);
  k.insert(100000, 3.0);
  // Gap 99997 needs a 3-byte varint.
  EXPECT_EQ(k.wire_bytes(), 1 + 2 + 3 + 24u);
}

TEST(KnowledgeDeath, LoadOfUnknownRankAborts) {
  Knowledge k;
  k.insert(1, 1.0);
  EXPECT_DEATH((void)k.load_of(9), "precondition");
}

TEST(KnowledgeDeath, AddLoadUnknownRankAborts) {
  Knowledge k;
  EXPECT_DEATH(k.add_load(0, 1.0), "precondition");
}

} // namespace
} // namespace tlb::lb
