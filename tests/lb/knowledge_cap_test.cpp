#include <gtest/gtest.h>

#include <set>

#include "lb/knowledge.hpp"
#include "support/rng.hpp"

namespace tlb::lb {
namespace {

Knowledge make_knowledge(int n) {
  Knowledge k;
  for (int i = 0; i < n; ++i) {
    k.insert(static_cast<RankId>(i), static_cast<LoadType>(n - i));
  }
  return k; // rank 0 heaviest (load n), rank n-1 lightest (load 1)
}

TEST(KnowledgeTruncate, ZeroCapIsNoop) {
  auto k = make_knowledge(10);
  k.truncate_to(0);
  EXPECT_EQ(k.size(), 10u);
  Rng rng{1};
  k.truncate_random(0, rng);
  EXPECT_EQ(k.size(), 10u);
}

TEST(KnowledgeTruncate, CapLargerThanSizeIsNoop) {
  auto k = make_knowledge(5);
  k.truncate_to(10);
  EXPECT_EQ(k.size(), 5u);
}

TEST(KnowledgeTruncate, KeepsLowestLoads) {
  auto k = make_knowledge(10);
  k.truncate_to(3);
  ASSERT_EQ(k.size(), 3u);
  // Lightest three are ranks 7, 8, 9 (loads 3, 2, 1).
  EXPECT_TRUE(k.contains(7));
  EXPECT_TRUE(k.contains(8));
  EXPECT_TRUE(k.contains(9));
}

TEST(KnowledgeTruncate, ResultStaysSortedByRank) {
  auto k = make_knowledge(20);
  k.truncate_to(7);
  auto const e = k.entries();
  for (std::size_t i = 1; i < e.size(); ++i) {
    EXPECT_LT(e[i - 1].rank, e[i].rank);
  }
}

TEST(KnowledgeTruncate, LoadTiesBrokenByRank) {
  Knowledge k;
  k.insert(5, 1.0);
  k.insert(3, 1.0);
  k.insert(8, 1.0);
  k.truncate_to(2);
  EXPECT_TRUE(k.contains(3));
  EXPECT_TRUE(k.contains(5));
  EXPECT_FALSE(k.contains(8));
}

TEST(KnowledgeTruncateRandom, SubsetOfOriginal) {
  auto const original = make_knowledge(30);
  Rng rng{7};
  auto k = original;
  k.truncate_random(10, rng);
  ASSERT_EQ(k.size(), 10u);
  for (auto const& e : k.entries()) {
    ASSERT_TRUE(original.contains(e.rank));
    EXPECT_DOUBLE_EQ(original.load_of(e.rank), e.load);
  }
  auto const entries = k.entries();
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].rank, entries[i].rank);
  }
}

TEST(KnowledgeTruncateRandom, DifferentStreamsKeepDifferentSubsets) {
  // The whole point of random truncation: de-correlated target sets.
  auto const original = make_knowledge(100);
  Rng r1{1};
  Rng r2{2};
  auto a = original;
  auto b = original;
  a.truncate_random(10, r1);
  b.truncate_random(10, r2);
  std::set<RankId> sa;
  std::set<RankId> sb;
  for (auto const& e : a.entries()) {
    sa.insert(e.rank);
  }
  for (auto const& e : b.entries()) {
    sb.insert(e.rank);
  }
  EXPECT_NE(sa, sb);
}

TEST(KnowledgeTruncateRandom, UniformCoverageOverManyDraws) {
  auto const original = make_knowledge(20);
  Rng rng{11};
  std::vector<int> kept(20, 0);
  constexpr int draws = 4000;
  for (int d = 0; d < draws; ++d) {
    auto k = original;
    k.truncate_random(5, rng);
    for (auto const& e : k.entries()) {
      ++kept[static_cast<std::size_t>(e.rank)];
    }
  }
  // Each rank survives with probability 1/4: expect ~1000 each.
  for (int const c : kept) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

} // namespace
} // namespace tlb::lb
