#include "lb/incremental_cmf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "lb/cmf.hpp"
#include "lb/transfer.hpp"
#include "support/rng.hpp"

namespace tlb::lb {
namespace {

Knowledge make_knowledge(std::initializer_list<KnownRank> entries) {
  Knowledge k;
  for (auto const& e : entries) {
    k.insert(e.rank, e.load);
  }
  return k;
}

/// Assert that `inc` describes the same distribution as a Cmf freshly
/// built from `k`: same normalizer, same sampleable set, same per-rank
/// probabilities (tolerance absorbs Fenwick-vs-scan summation order).
void expect_matches_fresh(IncrementalCmf const& inc, Knowledge const& k,
                          CmfKind kind, LoadType l_ave, RankId self) {
  Cmf const fresh{kind, k.entries(), l_ave, self};
  ASSERT_EQ(inc.empty(), fresh.empty());
  ASSERT_EQ(inc.sampleable(), fresh.size());
  if (fresh.empty()) {
    return;
  }
  EXPECT_DOUBLE_EQ(inc.normalizer(), fresh.normalizer());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_NEAR(inc.probability_of(fresh.rank_at(i)), fresh.probability(i),
                1e-9)
        << "rank " << fresh.rank_at(i);
  }
}

TEST(IncrementalCmf, OriginalNormalizerIsAverage) {
  auto const k = make_knowledge({{1, 0.2}, {2, 0.4}});
  IncrementalCmf const inc{CmfKind::original, k.entries(), 1.0, 0};
  EXPECT_DOUBLE_EQ(inc.normalizer(), 1.0);
  EXPECT_EQ(inc.sampleable(), 2u);
}

TEST(IncrementalCmf, ModifiedNormalizerIsMaxOfAveAndLoads) {
  auto const k = make_knowledge({{1, 0.2}, {2, 2.5}});
  IncrementalCmf const inc{CmfKind::modified, k.entries(), 1.0, 0};
  EXPECT_DOUBLE_EQ(inc.normalizer(), 2.5);
}

TEST(IncrementalCmf, ExcludesSelf) {
  auto const k = make_knowledge({{0, 0.1}, {1, 0.1}});
  IncrementalCmf const inc{CmfKind::original, k.entries(), 1.0, /*self=*/0};
  EXPECT_EQ(inc.size(), 1u);
  EXPECT_FALSE(inc.contains(0));
  EXPECT_TRUE(inc.contains(1));
}

TEST(IncrementalCmf, EmptyCasesMirrorCmf) {
  // All ranks at or above the normalizer.
  auto const full = make_knowledge({{1, 1.0}, {2, 1.2}});
  EXPECT_TRUE(
      (IncrementalCmf{CmfKind::original, full.entries(), 1.0, 0}.empty()));
  // No knowledge at all.
  Knowledge const none;
  EXPECT_TRUE(
      (IncrementalCmf{CmfKind::modified, none.entries(), 1.0, 0}.empty()));
  // Degenerate normalizer.
  auto const degen = make_knowledge({{1, 0.0}});
  EXPECT_TRUE(
      (IncrementalCmf{CmfKind::original, degen.entries(), 0.0, 0}.empty()));
}

TEST(IncrementalCmf, MatchesFreshCmfAtConstruction) {
  auto const k =
      make_knowledge({{1, 0.3}, {2, 0.6}, {3, 0.1}, {4, 0.95}, {7, 1.4}});
  for (auto const kind : {CmfKind::original, CmfKind::modified}) {
    IncrementalCmf const inc{kind, k.entries(), 1.0, 0};
    expect_matches_fresh(inc, k, kind, 1.0, 0);
  }
}

TEST(IncrementalCmf, PointUpdateTracksFreshCmfWithoutRebuild) {
  auto k = make_knowledge({{1, 0.1}, {2, 0.4}, {3, 0.7}});
  IncrementalCmf inc{CmfKind::modified, k.entries(), 1.0, 0};
  // Stays below the normalizer: every update is an O(log n) point update.
  for (int step = 0; step < 5; ++step) {
    k.add_load(2, 0.05);
    inc.add_load(2, 0.05);
    expect_matches_fresh(inc, k, CmfKind::modified, 1.0, 0);
  }
  EXPECT_EQ(inc.rebuild_count(), 0u);
}

TEST(IncrementalCmf, NormalizerShiftTriggersRebuildAndMatches) {
  auto k = make_knowledge({{1, 0.1}, {2, 0.4}, {3, 0.7}});
  IncrementalCmf inc{CmfKind::modified, k.entries(), 1.0, 0};
  // Push rank 2 past l_s = l_ave = 1.0: the modified normalizer becomes
  // 1.6 and every weight changes.
  k.add_load(2, 1.2);
  inc.add_load(2, 1.2);
  EXPECT_EQ(inc.rebuild_count(), 1u);
  EXPECT_DOUBLE_EQ(inc.normalizer(), 1.6);
  expect_matches_fresh(inc, k, CmfKind::modified, 1.0, 0);

  // Shrinking the max-realizing rank also shifts the normalizer back.
  k.add_load(2, -1.2);
  inc.add_load(2, -1.2);
  EXPECT_EQ(inc.rebuild_count(), 2u);
  expect_matches_fresh(inc, k, CmfKind::modified, 1.0, 0);
}

TEST(IncrementalCmf, OriginalKindNeverRebuilds) {
  auto k = make_knowledge({{1, 0.1}, {2, 0.4}});
  IncrementalCmf inc{CmfKind::original, k.entries(), 1.0, 0};
  k.add_load(1, 5.0);
  inc.add_load(1, 5.0); // way past l_ave: weight clamps to 0, no rebuild
  EXPECT_EQ(inc.rebuild_count(), 0u);
  expect_matches_fresh(inc, k, CmfKind::original, 1.0, 0);
}

TEST(IncrementalCmf, SampleStreamMatchesFreshCmf) {
  auto const k = make_knowledge({{1, 0.0}, {2, 0.5}, {3, 0.9}, {5, 0.2}});
  Cmf const fresh{CmfKind::modified, k.entries(), 1.0, 0};
  IncrementalCmf const inc{CmfKind::modified, k.entries(), 1.0, 0};
  Rng r1{123};
  Rng r2{123};
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(inc.sample(r1), fresh.sample(r2)) << "draw " << i;
  }
}

TEST(IncrementalCmf, SamplingFrequenciesTrackProbabilities) {
  auto const k = make_knowledge({{1, 0.0}, {2, 0.5}, {3, 0.9}});
  IncrementalCmf const inc{CmfKind::original, k.entries(), 1.0, 0};
  Rng rng{77};
  constexpr int n = 60000;
  std::vector<int> counts(4, 0);
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(inc.sample(rng))];
  }
  for (RankId r = 1; r <= 3; ++r) {
    double const expected = inc.probability_of(r) * n;
    EXPECT_NEAR(counts[static_cast<std::size_t>(r)], expected,
                5.0 * std::sqrt(expected) + 30.0)
        << "rank " << r;
  }
}

TEST(IncrementalCmfDeath, SampleFromEmptyAborts) {
  Knowledge const k;
  IncrementalCmf const inc{CmfKind::original, k.entries(), 1.0, 0};
  Rng rng{1};
  EXPECT_DEATH((void)inc.sample(rng), "precondition");
}

TEST(IncrementalCmfDeath, AddLoadOnUntrackedRankAborts) {
  auto const k = make_knowledge({{1, 0.2}});
  IncrementalCmf inc{CmfKind::original, k.entries(), 1.0, 0};
  EXPECT_DEATH(inc.add_load(9, 0.1), "precondition");
}

/// Property sweep (satellite): after arbitrary interleavings of add_load,
/// insert, and truncate_random (membership changes re-adopted through
/// rebuild()), the incremental structure matches a freshly built Cmf —
/// same probabilities and an identical sampling stream.
class IncrementalVsRebuilt
    : public ::testing::TestWithParam<std::tuple<CmfKind, std::uint64_t>> {};

TEST_P(IncrementalVsRebuilt, ArbitraryOpSequencesMatchFreshCmf) {
  auto const [kind, seed] = GetParam();
  RankId const self = 0;
  double const l_ave = 1.0;
  Rng op_rng{seed};

  Knowledge k;
  RankId next_rank = 1;
  for (int i = 0; i < 6; ++i) {
    k.insert(next_rank++, op_rng.uniform(0.0, 1.3));
  }
  IncrementalCmf inc{kind, k.entries(), l_ave, self};

  for (int op = 0; op < 200; ++op) {
    auto const pick = op_rng.index(10);
    if (pick < 6 && !k.empty()) {
      // add_load on a random known rank; deltas may exceed the normalizer
      // (forcing rebuilds) or be negative (shrinking the max).
      auto const& entries = k.entries();
      RankId const rank = entries[op_rng.index(entries.size())].rank;
      double const delta = op_rng.uniform(-0.4, 0.8);
      k.add_load(rank, delta);
      inc.add_load(rank, delta);
    } else if (pick < 8) {
      // Membership change: a newly gossiped rank appears.
      k.insert(next_rank++, op_rng.uniform(0.0, 1.3));
      inc.rebuild(k.entries());
    } else if (k.size() > 2) {
      // Membership change: footnote-2 bounded-knowledge truncation.
      k.truncate_random(k.size() - 1, op_rng);
      inc.rebuild(k.entries());
    }

    expect_matches_fresh(inc, k, kind, l_ave, self);
    if (!inc.empty()) {
      Cmf const fresh{kind, k.entries(), l_ave, self};
      Rng r1{seed ^ (static_cast<std::uint64_t>(op) << 32)};
      Rng r2 = r1;
      for (int draw = 0; draw < 32; ++draw) {
        ASSERT_EQ(inc.sample(r1), fresh.sample(r2))
            << "op " << op << " draw " << draw;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IncrementalVsRebuilt,
    ::testing::Combine(::testing::Values(CmfKind::original, CmfKind::modified),
                       ::testing::Values(3u, 17u, 4096u, 0xdeadbeefu)));

/// End-to-end: the incremental refresh mode reproduces the recompute
/// reference's transfer decisions (identical migrations and counters) on
/// randomized overloaded-rank states.
TEST(TransferIncremental, MatchesRecomputeReference) {
  Rng workload_rng{2024};
  for (int instance = 0; instance < 40; ++instance) {
    std::vector<TaskEntry> tasks;
    auto const n = 1 + workload_rng.index(60);
    double l_p = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double const load = workload_rng.uniform(0.05, 2.0);
      tasks.push_back({static_cast<TaskId>(i), load});
      l_p += load;
    }
    double const l_ave = l_p / workload_rng.uniform(2.0, 16.0);
    Knowledge base;
    auto const peers = 1 + workload_rng.index(24);
    for (std::size_t i = 0; i < peers; ++i) {
      base.insert(static_cast<RankId>(i + 1),
                  workload_rng.uniform(0.0, 1.5 * l_ave));
    }

    for (auto const criterion :
         {CriterionKind::original, CriterionKind::relaxed}) {
      for (auto const kind : {CmfKind::original, CmfKind::modified}) {
        LbParams reference;
        reference.criterion = criterion;
        reference.cmf = kind;
        reference.refresh = CmfRefresh::recompute;
        reference.order = OrderKind::fewest_migrations;
        LbParams incremental = reference;
        incremental.refresh = CmfRefresh::incremental;

        Knowledge k1 = base;
        Knowledge k2 = base;
        Rng r1{static_cast<std::uint64_t>(instance) * 101 + 7};
        Rng r2 = r1;
        auto const a = run_transfer(reference, 0, tasks, l_p, l_ave, k1, r1);
        auto const b = run_transfer(incremental, 0, tasks, l_p, l_ave, k2, r2);
        EXPECT_EQ(a.migrations, b.migrations) << "instance " << instance;
        EXPECT_EQ(a.accepted, b.accepted);
        EXPECT_EQ(a.rejected, b.rejected);
        EXPECT_EQ(a.no_target, b.no_target);
        EXPECT_DOUBLE_EQ(a.final_load, b.final_load);
      }
    }
  }
}

} // namespace
} // namespace tlb::lb
