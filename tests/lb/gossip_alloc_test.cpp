/// \file gossip_alloc_test.cpp
/// Pins the inform plane's zero-allocation property: after a warm-up
/// epoch has grown every capacity (knowledge vectors, snapshot-pool
/// buffers, inbox scratch, overlay peer lists, runtime mailboxes),
/// steady-state inform rounds must perform zero heap allocations.
///
/// The counter is a global operator new/delete override, which is why
/// this test lives in its own binary: the override is process-wide and
/// would skew any allocation-sensitive behavior in sibling tests.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "lb/strategy/inform_plane.hpp"
#include "runtime/runtime.hpp"
#include "support/rng.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};
std::atomic<bool> g_counting{false};

} // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tlb::lb {
namespace {

TEST(GossipAllocTest, SteadyStateInformRoundsDoNotAllocate) {
  RankId const p = 32;
  rt::RuntimeConfig cfg;
  cfg.num_ranks = p;
  cfg.seed = 4242;
  // Pre-reserve the delivery path too: the plane's own buffers are sized
  // at construction, and this keeps mailbox bursts off the allocator.
  cfg.mailbox_reserve = 4096;
  rt::Runtime rt{cfg};

  std::vector<LoadType> loads(static_cast<std::size_t>(p));
  Rng gen{9};
  for (auto& l : loads) {
    l = gen.uniform(0.0, 2.0);
  }
  LoadType const l_ave = 1.0;

  auto plane = std::make_shared<InformPlane>(
      p, /*root_seed=*/cfg.seed, GossipWire::delta, /*fanout=*/6,
      /*rounds=*/10, /*max_knowledge=*/0, /*report=*/nullptr);

  auto run_epoch = [&] {
    plane->reset_epoch();
    rt.post_all([&plane, &loads, l_ave](rt::RankContext& ctx) {
      auto const load = loads[static_cast<std::size_t>(ctx.rank())];
      if (load < l_ave) {
        plane->seed_and_forward(ctx, load);
      }
    });
    ASSERT_TRUE(rt.run_until_quiescent());
  };

  // Warm-up: grow every capacity on both the plane and the runtime.
  for (int epoch = 0; epoch < 3; ++epoch) {
    run_epoch();
  }

  g_allocations.store(0);
  g_counting.store(true);
  for (int epoch = 0; epoch < 4; ++epoch) {
    run_epoch();
  }
  g_counting.store(false);

  EXPECT_EQ(g_allocations.load(), 0u)
      << "steady-state inform rounds must reuse warm capacities";

  // Sanity-check the counter itself: it must see a real allocation.
  g_counting.store(true);
  auto* probe = new int{1};
  g_counting.store(false);
  EXPECT_GT(g_allocations.load(), 0u);
  delete probe;
}

TEST(GossipAllocTest, FullWireAlsoRunsAllocationFree) {
  // The zero-allocation property is a plane invariant, not a delta-mode
  // perk: full snapshots serialize into the same pooled buffers.
  RankId const p = 16;
  rt::RuntimeConfig cfg;
  cfg.num_ranks = p;
  cfg.seed = 77;
  cfg.mailbox_reserve = 4096;
  rt::Runtime rt{cfg};
  std::vector<LoadType> loads(static_cast<std::size_t>(p), 0.0);
  for (RankId r = 0; r < p; r += 2) {
    loads[static_cast<std::size_t>(r)] = 2.0;
  }
  auto plane = std::make_shared<InformPlane>(p, cfg.seed, GossipWire::full,
                                             4, 6, 0, nullptr);
  auto run_epoch = [&] {
    plane->reset_epoch();
    rt.post_all([&plane, &loads](rt::RankContext& ctx) {
      auto const load = loads[static_cast<std::size_t>(ctx.rank())];
      if (load < 1.0) {
        plane->seed_and_forward(ctx, load);
      }
    });
    ASSERT_TRUE(rt.run_until_quiescent());
  };
  for (int epoch = 0; epoch < 3; ++epoch) {
    run_epoch();
  }
  g_allocations.store(0);
  g_counting.store(true);
  run_epoch();
  g_counting.store(false);
  EXPECT_EQ(g_allocations.load(), 0u);
}

} // namespace
} // namespace tlb::lb
