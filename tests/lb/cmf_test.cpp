#include "lb/cmf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "support/rng.hpp"

namespace tlb::lb {
namespace {

Knowledge make_knowledge(std::initializer_list<KnownRank> entries) {
  Knowledge k;
  for (auto const& e : entries) {
    k.insert(e.rank, e.load);
  }
  return k;
}

TEST(Cmf, OriginalNormalizerIsAverage) {
  auto const k = make_knowledge({{1, 0.2}, {2, 0.4}});
  Cmf const cmf{CmfKind::original, k.entries(), 1.0, /*self=*/0};
  EXPECT_DOUBLE_EQ(cmf.normalizer(), 1.0);
  EXPECT_EQ(cmf.size(), 2u);
}

TEST(Cmf, ModifiedNormalizerIsMaxOfAveAndLoads) {
  auto const k = make_knowledge({{1, 0.2}, {2, 2.5}});
  Cmf const cmf{CmfKind::modified, k.entries(), 1.0, /*self=*/0};
  EXPECT_DOUBLE_EQ(cmf.normalizer(), 2.5);
}

TEST(Cmf, ModifiedKeepsOverloadedRanksOutButKeepsOthersSampleable) {
  // Rank 2 sits above l_ave: under the original normalizer its weight is
  // negative (excluded); under the modified one rank 1 keeps a positive
  // weight relative to l_s = 2.0 and rank 2 is exactly at the cap.
  auto const k = make_knowledge({{1, 0.5}, {2, 2.0}});
  Cmf const original{CmfKind::original, k.entries(), 1.0, 0};
  Cmf const modified{CmfKind::modified, k.entries(), 1.0, 0};
  EXPECT_EQ(original.size(), 1u); // only rank 1
  EXPECT_EQ(modified.size(), 1u); // rank 2 weight exactly 0 -> excluded
  EXPECT_EQ(modified.rank_at(0), 1);
  // Modified weights: rank1 gets (1 - 0.5/2) = 0.75 normalized to 1.
  EXPECT_DOUBLE_EQ(modified.probability(0), 1.0);
}

TEST(Cmf, ProbabilitiesMatchHeadroomFormula) {
  // Algorithm 2 lines 27-28: p_i = (1 - load_i / l_s) / z.
  auto const k = make_knowledge({{1, 0.0}, {2, 0.5}});
  Cmf const cmf{CmfKind::original, k.entries(), 1.0, 0};
  ASSERT_EQ(cmf.size(), 2u);
  double const w1 = 1.0;
  double const w2 = 0.5;
  EXPECT_NEAR(cmf.probability(0), w1 / (w1 + w2), 1e-12);
  EXPECT_NEAR(cmf.probability(1), w2 / (w1 + w2), 1e-12);
}

TEST(Cmf, ExcludesSelf) {
  auto const k = make_knowledge({{0, 0.1}, {1, 0.1}});
  Cmf const cmf{CmfKind::original, k.entries(), 1.0, /*self=*/0};
  ASSERT_EQ(cmf.size(), 1u);
  EXPECT_EQ(cmf.rank_at(0), 1);
}

TEST(Cmf, EmptyWhenAllRanksFull) {
  auto const k = make_knowledge({{1, 1.0}, {2, 1.2}});
  Cmf const cmf{CmfKind::original, k.entries(), 1.0, 0};
  EXPECT_TRUE(cmf.empty());
}

TEST(Cmf, EmptyWhenNoKnowledge) {
  Knowledge const k;
  Cmf const cmf{CmfKind::modified, k.entries(), 1.0, 0};
  EXPECT_TRUE(cmf.empty());
}

TEST(Cmf, EmptyOnDegenerateAverage) {
  auto const k = make_knowledge({{1, 0.0}});
  Cmf const cmf{CmfKind::original, k.entries(), 0.0, 0};
  EXPECT_TRUE(cmf.empty());
}

TEST(Cmf, SamplingFrequenciesTrackProbabilities) {
  auto const k = make_knowledge({{1, 0.0}, {2, 0.5}, {3, 0.9}});
  Cmf const cmf{CmfKind::original, k.entries(), 1.0, 0};
  ASSERT_EQ(cmf.size(), 3u);
  Rng rng{77};
  std::map<RankId, int> counts;
  constexpr int n = 60000;
  for (int i = 0; i < n; ++i) {
    ++counts[cmf.sample(rng)];
  }
  for (std::size_t i = 0; i < cmf.size(); ++i) {
    double const expected = cmf.probability(i) * n;
    double const observed = counts[cmf.rank_at(i)];
    EXPECT_NEAR(observed, expected, 5.0 * std::sqrt(expected) + 30.0)
        << "rank " << cmf.rank_at(i);
  }
}

TEST(Cmf, SampleIsDeterministicGivenSeed) {
  auto const k = make_knowledge({{1, 0.1}, {2, 0.2}, {3, 0.7}});
  Cmf const cmf{CmfKind::modified, k.entries(), 1.0, 0};
  Rng r1{5};
  Rng r2{5};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(cmf.sample(r1), cmf.sample(r2));
  }
}

TEST(Cmf, ProbabilitiesSumToOne) {
  auto const k =
      make_knowledge({{1, 0.3}, {2, 0.6}, {3, 0.1}, {4, 0.95}});
  for (auto const kind : {CmfKind::original, CmfKind::modified}) {
    Cmf const cmf{kind, k.entries(), 1.0, 0};
    double sum = 0.0;
    for (std::size_t i = 0; i < cmf.size(); ++i) {
      sum += cmf.probability(i);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(CmfDeath, SampleFromEmptyAborts) {
  Knowledge const k;
  Cmf const cmf{CmfKind::original, k.entries(), 1.0, 0};
  Rng rng{1};
  EXPECT_DEATH((void)cmf.sample(rng), "precondition");
}

} // namespace
} // namespace tlb::lb
