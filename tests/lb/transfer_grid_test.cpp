/// Exhaustive variant-grid property tests of the transfer stage: every
/// (criterion x CMF x refresh x ordering) combination must satisfy the
/// same structural invariants on randomized inputs.

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "lb/transfer.hpp"
#include "support/rng.hpp"

namespace tlb::lb {
namespace {

using GridParam =
    std::tuple<CriterionKind, CmfKind, CmfRefresh, OrderKind, std::uint64_t>;

class TransferGrid : public ::testing::TestWithParam<GridParam> {
protected:
  [[nodiscard]] LbParams params() const {
    auto const [criterion, cmf, refresh, order, seed] = GetParam();
    LbParams p;
    p.criterion = criterion;
    p.cmf = cmf;
    p.refresh = refresh;
    p.order = order;
    p.seed = seed;
    p.num_trials = 1;
    p.num_iterations = 1;
    return p;
  }
};

TEST_P(TransferGrid, StructuralInvariants) {
  auto const p = params();
  Rng workload_rng{std::get<4>(GetParam()) * 7919 + 13};

  for (int instance = 0; instance < 20; ++instance) {
    // Random overloaded rank state.
    std::vector<TaskEntry> tasks;
    auto const n = 1 + workload_rng.index(60);
    double l_p = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double const load = workload_rng.uniform(0.05, 2.0);
      tasks.push_back({static_cast<TaskId>(i), load});
      l_p += load;
    }
    double const l_ave = l_p / workload_rng.uniform(2.0, 16.0);
    Knowledge knowledge;
    auto const peers = 1 + workload_rng.index(20);
    for (std::size_t i = 0; i < peers; ++i) {
      knowledge.insert(static_cast<RankId>(i + 1),
                       workload_rng.uniform(0.0, 1.5 * l_ave));
    }
    auto const knowledge_before = knowledge;

    Rng rng{std::get<4>(GetParam()) + static_cast<std::uint64_t>(instance)};
    auto const result =
        run_transfer(p, /*self=*/0, tasks, l_p, l_ave, knowledge, rng);

    // (1) Every candidate attempt is classified exactly once.
    EXPECT_LE(result.accepted + result.rejected + result.no_target,
              tasks.size());
    EXPECT_EQ(result.accepted, result.migrations.size());

    // (2) Load bookkeeping: final load = initial − migrated sum.
    double migrated = 0.0;
    std::set<TaskId> seen;
    for (Migration const& m : result.migrations) {
      migrated += m.load;
      EXPECT_EQ(m.from, 0);
      EXPECT_NE(m.to, 0);
      EXPECT_TRUE(knowledge_before.contains(m.to));
      EXPECT_TRUE(seen.insert(m.task).second) << "task proposed twice";
    }
    EXPECT_NEAR(result.final_load, l_p - migrated, 1e-9);
    EXPECT_GE(result.final_load, -1e-9);

    // (3) Knowledge updated by exactly the accepted loads.
    for (auto const& e : knowledge_before.entries()) {
      double delta = 0.0;
      for (Migration const& m : result.migrations) {
        if (m.to == e.rank) {
          delta += m.load;
        }
      }
      EXPECT_NEAR(knowledge.load_of(e.rank), e.load + delta, 1e-9);
    }

    // (4) The transfer loop stops at the threshold when it can: if any
    // proposals were made, either the rank is no longer overloaded or
    // every candidate was tried.
    if (result.final_load > p.threshold * l_ave) {
      EXPECT_EQ(result.accepted + result.rejected + result.no_target,
                tasks.size());
    }
  }
}

TEST_P(TransferGrid, DeterministicGivenSeed) {
  auto const p = params();
  std::vector<TaskEntry> tasks;
  Rng workload_rng{99};
  double l_p = 0.0;
  for (int i = 0; i < 25; ++i) {
    double const load = workload_rng.uniform(0.1, 1.5);
    tasks.push_back({static_cast<TaskId>(i), load});
    l_p += load;
  }
  double const l_ave = l_p / 6.0;
  Knowledge k1;
  for (int i = 1; i <= 8; ++i) {
    k1.insert(static_cast<RankId>(i), workload_rng.uniform(0.0, l_ave));
  }
  auto k2 = k1;
  Rng r1{std::get<4>(GetParam())};
  Rng r2{std::get<4>(GetParam())};
  auto const a = run_transfer(p, 0, tasks, l_p, l_ave, k1, r1);
  auto const b = run_transfer(p, 0, tasks, l_p, l_ave, k2, r2);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.rejected, b.rejected);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, TransferGrid,
    ::testing::Combine(
        ::testing::Values(CriterionKind::original, CriterionKind::relaxed),
        ::testing::Values(CmfKind::original, CmfKind::modified),
        ::testing::Values(CmfRefresh::build_once, CmfRefresh::recompute,
                          CmfRefresh::incremental),
        ::testing::Values(OrderKind::arbitrary, OrderKind::load_intensive,
                          OrderKind::fewest_migrations, OrderKind::lightest),
        ::testing::Values(7u, 77u)));

} // namespace
} // namespace tlb::lb
