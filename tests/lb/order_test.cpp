#include "lb/order.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "support/rng.hpp"

namespace tlb::lb {
namespace {

std::vector<TaskEntry> make_tasks(std::initializer_list<double> loads) {
  std::vector<TaskEntry> out;
  TaskId id = 0;
  for (double const l : loads) {
    out.push_back({id++, l});
  }
  return out;
}

bool is_permutation_of(std::vector<TaskEntry> const& a,
                       std::vector<TaskEntry> const& b) {
  auto ai = a;
  auto bi = b;
  auto const by_id = [](TaskEntry const& x, TaskEntry const& y) {
    return x.id < y.id;
  };
  std::sort(ai.begin(), ai.end(), by_id);
  std::sort(bi.begin(), bi.end(), by_id);
  return ai == bi;
}

TEST(OrderArbitrary, SortsById) {
  std::vector<TaskEntry> tasks{{3, 1.0}, {1, 5.0}, {2, 3.0}};
  auto const out = order_tasks(OrderKind::arbitrary, tasks, 1.0, 9.0);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].id, 1);
  EXPECT_EQ(out[1].id, 2);
  EXPECT_EQ(out[2].id, 3);
}

TEST(OrderLoadIntensive, DescendingByLoad) {
  auto const tasks = make_tasks({1.0, 5.0, 3.0, 2.0});
  auto const out = order_load_intensive(tasks);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out[0].load, 5.0);
  EXPECT_DOUBLE_EQ(out[1].load, 3.0);
  EXPECT_DOUBLE_EQ(out[2].load, 2.0);
  EXPECT_DOUBLE_EQ(out[3].load, 1.0);
}

TEST(OrderLoadIntensive, TiesBrokenById) {
  std::vector<TaskEntry> const tasks{{5, 2.0}, {1, 2.0}, {3, 2.0}};
  auto const out = order_load_intensive(tasks);
  EXPECT_EQ(out[0].id, 1);
  EXPECT_EQ(out[1].id, 3);
  EXPECT_EQ(out[2].id, 5);
}

// Algorithm 5 worked example: l_p = 10, l_ave = 6 -> excess = 4.
// Task loads {1, 2, 3, 5, 7}. Cutoff = min load > 4 = 5.
// Order: <=5 descending (5, 3, 2, 1), then >5 ascending (7).
TEST(OrderFewestMigrations, PaperSemantics) {
  auto const tasks = make_tasks({1.0, 2.0, 3.0, 5.0, 7.0});
  auto const out = order_fewest_migrations(tasks, 6.0, 10.0);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_DOUBLE_EQ(out[0].load, 5.0); // cutoff task first
  EXPECT_DOUBLE_EQ(out[1].load, 3.0);
  EXPECT_DOUBLE_EQ(out[2].load, 2.0);
  EXPECT_DOUBLE_EQ(out[3].load, 1.0);
  EXPECT_DOUBLE_EQ(out[4].load, 7.0);
}

TEST(OrderFewestMigrations, FirstTaskResolvesOverloadWhenPossible) {
  // Excess = 2.5; the smallest task > 2.5 is 3.0 and must come first.
  auto const tasks = make_tasks({0.5, 3.0, 4.0, 1.0});
  auto const out = order_fewest_migrations(tasks, 1.0, 3.5);
  EXPECT_DOUBLE_EQ(out[0].load, 3.0);
}

TEST(OrderFewestMigrations, FallsBackToDescendingWhenNoSingleTaskCovers) {
  // Excess = 10; max task 4 < 10 -> Algorithm 5 line 3 path.
  auto const tasks = make_tasks({1.0, 4.0, 2.0});
  auto const out = order_fewest_migrations(tasks, 1.0, 11.0);
  EXPECT_DOUBLE_EQ(out[0].load, 4.0);
  EXPECT_DOUBLE_EQ(out[1].load, 2.0);
  EXPECT_DOUBLE_EQ(out[2].load, 1.0);
}

// Algorithm 6 worked example: l_p = 10, l_ave = 6 -> excess = 4.
// Ascending {1, 2, 3, 5, 7}; prefix sums 1, 3, 6 -> marginal task = 3.
// Order: <=3 descending (3, 2, 1), then >3 ascending (5, 7).
TEST(OrderLightest, PaperSemantics) {
  auto const tasks = make_tasks({1.0, 2.0, 3.0, 5.0, 7.0});
  auto const out = order_lightest(tasks, 6.0, 10.0);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_DOUBLE_EQ(out[0].load, 3.0); // marginal task first
  EXPECT_DOUBLE_EQ(out[1].load, 2.0);
  EXPECT_DOUBLE_EQ(out[2].load, 1.0);
  EXPECT_DOUBLE_EQ(out[3].load, 5.0);
  EXPECT_DOUBLE_EQ(out[4].load, 7.0);
}

TEST(OrderLightest, WholeSumBelowExcessMakesHeaviestMarginal) {
  // Excess = 100 > total load -> marginal = heaviest -> all descending.
  auto const tasks = make_tasks({1.0, 4.0, 2.0});
  auto const out = order_lightest(tasks, 1.0, 101.0);
  EXPECT_DOUBLE_EQ(out[0].load, 4.0);
  EXPECT_DOUBLE_EQ(out[1].load, 2.0);
  EXPECT_DOUBLE_EQ(out[2].load, 1.0);
}

TEST(OrderLightest, NotOverloadedMakesLightestMarginal) {
  // l_p <= l_ave -> excess <= 0 -> first (lightest) task is marginal.
  auto const tasks = make_tasks({3.0, 1.0, 2.0});
  auto const out = order_lightest(tasks, 10.0, 6.0);
  EXPECT_DOUBLE_EQ(out[0].load, 1.0);
  EXPECT_DOUBLE_EQ(out[1].load, 2.0);
  EXPECT_DOUBLE_EQ(out[2].load, 3.0);
}

TEST(OrderAll, EmptyInputYieldsEmpty) {
  for (auto const kind :
       {OrderKind::arbitrary, OrderKind::load_intensive,
        OrderKind::fewest_migrations, OrderKind::lightest}) {
    EXPECT_TRUE(order_tasks(kind, {}, 1.0, 2.0).empty());
  }
}

class OrderProperty
    : public ::testing::TestWithParam<std::tuple<OrderKind, std::uint64_t>> {
};

TEST_P(OrderProperty, OutputIsPermutationOfInput) {
  auto const [kind, seed] = GetParam();
  Rng rng{seed};
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<TaskEntry> tasks;
    auto const n = 1 + rng.index(40);
    for (std::size_t i = 0; i < n; ++i) {
      tasks.push_back({static_cast<TaskId>(i), rng.uniform(0.01, 5.0)});
    }
    double const l_p = std::accumulate(
        tasks.begin(), tasks.end(), 0.0,
        [](double acc, TaskEntry const& t) { return acc + t.load; });
    double const l_ave = l_p * rng.uniform(0.2, 1.2);
    auto const out = order_tasks(kind, tasks, l_ave, l_p);
    EXPECT_TRUE(is_permutation_of(tasks, out));
  }
}

TEST_P(OrderProperty, DeterministicAcrossCalls) {
  auto const [kind, seed] = GetParam();
  Rng rng{seed + 7};
  std::vector<TaskEntry> tasks;
  for (std::size_t i = 0; i < 30; ++i) {
    tasks.push_back({static_cast<TaskId>(i), rng.uniform(0.01, 5.0)});
  }
  auto const a = order_tasks(kind, tasks, 3.0, 9.0);
  auto const b = order_tasks(kind, tasks, 3.0, 9.0);
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OrderProperty,
    ::testing::Combine(
        ::testing::Values(OrderKind::arbitrary, OrderKind::load_intensive,
                          OrderKind::fewest_migrations, OrderKind::lightest),
        ::testing::Values(11u, 22u, 33u)));

} // namespace
} // namespace tlb::lb
