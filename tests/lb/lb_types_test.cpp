#include "lb/lb_types.hpp"

#include <gtest/gtest.h>

namespace tlb::lb {
namespace {

TEST(LbParams, GrapevinePresetMatchesPaperDesignPoint) {
  auto const p = LbParams::grapevine();
  EXPECT_EQ(p.criterion, CriterionKind::original);
  EXPECT_EQ(p.cmf, CmfKind::original);
  EXPECT_EQ(p.refresh, CmfRefresh::build_once);
  EXPECT_EQ(p.order, OrderKind::arbitrary);
  EXPECT_EQ(p.num_iterations, 1);
  EXPECT_EQ(p.num_trials, 1);
  EXPECT_FALSE(p.use_nacks);
  EXPECT_EQ(p.max_knowledge, 0);
}

TEST(LbParams, TemperedPresetMatchesPaperConfiguration) {
  auto const p = LbParams::tempered();
  EXPECT_EQ(p.criterion, CriterionKind::relaxed);
  EXPECT_EQ(p.cmf, CmfKind::modified);
  EXPECT_EQ(p.refresh, CmfRefresh::recompute);
  EXPECT_EQ(p.order, OrderKind::fewest_migrations);
  // §VI-B: "the number of trials (10) and iterations (8) we utilize".
  EXPECT_EQ(p.num_trials, 10);
  EXPECT_EQ(p.num_iterations, 8);
  EXPECT_EQ(p.fanout, 6);
  EXPECT_DOUBLE_EQ(p.threshold, 1.0);
}

TEST(LbTypes, ToStringNames) {
  EXPECT_EQ(to_string(CmfKind::original), "original");
  EXPECT_EQ(to_string(CmfKind::modified), "modified");
  EXPECT_EQ(to_string(CmfRefresh::build_once), "build_once");
  EXPECT_EQ(to_string(CmfRefresh::recompute), "recompute");
  EXPECT_EQ(to_string(CriterionKind::original), "original");
  EXPECT_EQ(to_string(CriterionKind::relaxed), "relaxed");
  EXPECT_EQ(to_string(OrderKind::arbitrary), "arbitrary");
  EXPECT_EQ(to_string(OrderKind::load_intensive), "load_intensive");
  EXPECT_EQ(to_string(OrderKind::fewest_migrations), "fewest_migrations");
  EXPECT_EQ(to_string(OrderKind::lightest), "lightest");
}

TEST(LbTypes, OrderFromStringRoundTrips) {
  for (auto const kind :
       {OrderKind::arbitrary, OrderKind::load_intensive,
        OrderKind::fewest_migrations, OrderKind::lightest}) {
    EXPECT_EQ(order_from_string(to_string(kind)), kind);
  }
}

TEST(LbTypes, OrderFromStringRejectsUnknown) {
  EXPECT_THROW((void)order_from_string("heaviest"), std::invalid_argument);
  EXPECT_THROW((void)order_from_string(""), std::invalid_argument);
}

TEST(Migration, EqualityAndDefaults) {
  Migration const a{1, 0, 2, 1.5};
  Migration const b{1, 0, 2, 1.5};
  Migration const c{1, 0, 3, 1.5};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  Migration const d;
  EXPECT_EQ(d.task, invalid_task);
  EXPECT_EQ(d.from, invalid_rank);
}

} // namespace
} // namespace tlb::lb
