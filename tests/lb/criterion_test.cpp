#include "lb/criterion.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "support/rng.hpp"
#include "support/stats.hpp"

namespace tlb::lb {
namespace {

TEST(Criterion, OriginalAcceptsOnlyBelowAverage) {
  // l_x + load < l_ave
  EXPECT_TRUE(evaluate_criterion(CriterionKind::original, 0.2, 0.3, 1.0, 2.0));
  EXPECT_FALSE(
      evaluate_criterion(CriterionKind::original, 0.8, 0.3, 1.0, 2.0));
  // Boundary: equality rejects.
  EXPECT_FALSE(
      evaluate_criterion(CriterionKind::original, 0.7, 0.3, 1.0, 2.0));
}

TEST(Criterion, RelaxedAcceptsWhileSenderStaysHeavier) {
  // load < l_p - l_x, i.e. recipient ends strictly below sender's start.
  EXPECT_TRUE(evaluate_criterion(CriterionKind::relaxed, 0.9, 0.5, 1.0, 2.0));
  EXPECT_FALSE(evaluate_criterion(CriterionKind::relaxed, 1.8, 0.5, 1.0, 2.0));
  // Boundary: equality rejects (Lemma 2's >= case).
  EXPECT_FALSE(evaluate_criterion(CriterionKind::relaxed, 1.5, 0.5, 1.0, 2.0));
}

TEST(Criterion, RelaxedIsStrictlyWeakerThanOriginal) {
  // Any transfer the original accepts, the relaxed must also accept,
  // whenever the sender is overloaded (l_p > l_ave).
  Rng rng{404};
  for (int i = 0; i < 20000; ++i) {
    double const l_ave = rng.uniform(0.5, 2.0);
    double const l_p = l_ave * rng.uniform(1.0, 4.0); // overloaded sender
    double const l_x = rng.uniform(0.0, 3.0);
    double const load = rng.uniform(0.0, 2.0);
    if (evaluate_criterion(CriterionKind::original, l_x, load, l_ave, l_p)) {
      EXPECT_TRUE(
          evaluate_criterion(CriterionKind::relaxed, l_x, load, l_ave, l_p))
          << "l_ave=" << l_ave << " l_p=" << l_p << " l_x=" << l_x
          << " load=" << load;
    }
  }
}

TEST(Criterion, RelaxedAllowsRecipientAboveAverage) {
  // The defining difference (§V-C): the recipient may land in overloaded
  // territory as long as it stays below the sender's pre-transfer load.
  double const l_ave = 1.0;
  double const l_p = 3.0;
  double const l_x = 0.9;
  double const load = 1.5; // recipient ends at 2.4 > l_ave
  EXPECT_FALSE(evaluate_criterion(CriterionKind::original, l_x, load, l_ave,
                                  l_p));
  EXPECT_TRUE(
      evaluate_criterion(CriterionKind::relaxed, l_x, load, l_ave, l_p));
}

// ---------------------------------------------------------------------
// Property tests for the paper's Lemmas (Appendix A / B).
// ---------------------------------------------------------------------

struct TwoRankCase {
  double l_i;  // sender (overloaded) load
  double l_x;  // recipient load
  double load; // task load
};

class LemmaSweep : public ::testing::TestWithParam<std::uint64_t> {};

/// Lemma 1: if LOAD(o) < l_i − l_x then max(l_i − load, l_x + load) < l_i,
/// hence moving o can never increase the global maximum — F(D') <= F(D),
/// and strictly decreases when the sender was the unique maximum.
TEST_P(LemmaSweep, LemmaOneTransferNeverRaisesPairMax) {
  Rng rng{GetParam()};
  for (int i = 0; i < 5000; ++i) {
    double const l_x = rng.uniform(0.0, 2.0);
    double const l_i = l_x + rng.uniform(0.01, 3.0); // sender heavier
    // Draw a load satisfying the relaxed criterion.
    double const load = rng.uniform(0.0, 1.0) * (l_i - l_x) * 0.999;
    ASSERT_TRUE(evaluate_criterion(CriterionKind::relaxed, l_x, load, 1.0,
                                   l_i));
    double const new_max = std::max(l_i - load, l_x + load);
    EXPECT_LT(new_max, l_i);
  }
}

/// Lemma 2: if LOAD(o) >= l_i − l_x and the sender holds the maximum load,
/// the transfer cannot decrease the objective (recipient reaches at least
/// the old maximum).
TEST_P(LemmaSweep, LemmaTwoViolatingTransferNeverHelps) {
  Rng rng{GetParam() + 1000};
  for (int i = 0; i < 5000; ++i) {
    double const l_x = rng.uniform(0.0, 2.0);
    double const l_i = l_x + rng.uniform(0.01, 3.0);
    double const load = (l_i - l_x) * rng.uniform(1.0, 2.0);
    ASSERT_FALSE(evaluate_criterion(CriterionKind::relaxed, l_x, load, 1.0,
                                    l_i));
    double const new_max = std::max(l_i - load, l_x + load);
    EXPECT_GE(new_max, l_i - 1e-12);
  }
}

/// Full-distribution variant of Lemma 1: applying any sequence of
/// relaxed-criterion transfers to a random load vector never increases
/// the max load (hence never increases I, since the average is invariant).
TEST_P(LemmaSweep, MaxLoadMonotoneUnderRelaxedTransfers) {
  Rng rng{GetParam() + 2000};
  std::vector<LoadType> loads;
  for (int r = 0; r < 16; ++r) {
    loads.push_back(rng.uniform(0.0, 4.0));
  }
  double const l_ave =
      summarize(loads).mean; // invariant under transfers
  double max_load = summarize(loads).max;

  for (int step = 0; step < 200; ++step) {
    auto const i = rng.index(loads.size());
    auto const x = rng.index(loads.size());
    if (i == x) {
      continue;
    }
    double const task = rng.uniform(0.0, 1.5);
    if (loads[i] >= task &&
        evaluate_criterion(CriterionKind::relaxed, loads[x], task, l_ave,
                           loads[i])) {
      loads[i] -= task;
      loads[x] += task;
      double const new_max = summarize(loads).max;
      EXPECT_LE(new_max, max_load + 1e-9);
      max_load = new_max;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LemmaSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

} // namespace
} // namespace tlb::lb
