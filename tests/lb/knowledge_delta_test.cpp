#include "lb/knowledge.hpp"

#include <gtest/gtest.h>

#include "runtime/serialize.hpp"
#include "support/rng.hpp"

namespace tlb::lb {
namespace {

TEST(KnowledgeVersioning, EveryMutationAdvancesTheMark) {
  Knowledge k;
  EXPECT_EQ(k.version_mark(), 0u);
  k.insert(3, 1.0);
  EXPECT_EQ(k.version_mark(), 1u);
  k.insert(1, 0.5);
  EXPECT_EQ(k.version_mark(), 2u);
  k.insert(3, 2.0); // overwrite counts: the value changed
  EXPECT_EQ(k.version_mark(), 3u);
  k.add_load(1, 0.25);
  EXPECT_EQ(k.version_mark(), 4u);
}

TEST(KnowledgeVersioning, ClearResetsTheCounterAndTheFlag) {
  Knowledge k;
  k.insert(1, 1.0);
  k.insert(2, 2.0);
  Rng rng{3};
  k.truncate_random(1, rng);
  k.clear();
  EXPECT_EQ(k.version_mark(), 0u);
  EXPECT_FALSE(k.take_truncated());
  k.insert(5, 1.0);
  EXPECT_EQ(k.version_mark(), 1u); // counter restarted, not resumed
}

TEST(KnowledgeVersioning, MergeStampsOnlyTheFreshRanks) {
  Knowledge mine;
  mine.insert(1, 5.0);
  mine.insert(4, 2.0);
  auto const mark = mine.version_mark();

  Knowledge incoming;
  incoming.insert(1, 9.0); // already known: local value and stamp win
  incoming.insert(2, 3.0);
  incoming.insert(6, 4.0);
  mine.merge(incoming);

  EXPECT_EQ(mine.version_mark(), mark + 2); // two new ranks stamped
  EXPECT_EQ(mine.delta_count(mark), 2u);
  auto const fresh = mine.delta_copy(mark);
  EXPECT_EQ(fresh.size(), 2u);
  EXPECT_TRUE(fresh.contains(2));
  EXPECT_TRUE(fresh.contains(6));
  EXPECT_DOUBLE_EQ(mine.load_of(1), 5.0); // merge kept the local value
}

TEST(KnowledgeDelta, DeltaCopyShipsExactlyTheEntriesAboveTheMark) {
  Knowledge k;
  k.insert(10, 1.0);
  k.insert(20, 2.0);
  auto const mark = k.version_mark();

  k.insert(5, 0.5);       // new rank
  k.add_load(20, 0.25);   // changed value
  EXPECT_EQ(k.delta_count(mark), 2u);
  auto const delta = k.delta_copy(mark);
  ASSERT_EQ(delta.size(), 2u);
  EXPECT_TRUE(delta.contains(5));
  EXPECT_TRUE(delta.contains(20));
  EXPECT_DOUBLE_EQ(delta.load_of(20), 2.25);
  EXPECT_FALSE(delta.contains(10)); // untouched entry stays home
  // Nothing above the current mark: the delta drains to empty.
  EXPECT_EQ(k.delta_count(k.version_mark()), 0u);
  EXPECT_TRUE(k.delta_copy(k.version_mark()).empty());
}

TEST(KnowledgeDelta, PackDeltaRoundTripsAndMatchesItsSizeFunction) {
  Knowledge k;
  Rng rng{11};
  for (RankId r = 0; r < 30; ++r) {
    k.insert(r * 7, rng.uniform(0.0, 2.0));
  }
  auto const mark = k.version_mark();
  for (RankId r = 0; r < 10; ++r) {
    k.insert(r * 7 + 3, rng.uniform(0.0, 2.0));
  }

  rt::Packer p;
  k.pack_delta(p, mark);
  EXPECT_EQ(p.size(), k.wire_bytes_delta(mark));
  EXPECT_LT(p.size(), k.wire_bytes()); // strictly smaller than the full

  rt::Unpacker u{p.bytes()};
  auto const back = Knowledge::unpack(u);
  EXPECT_TRUE(u.exhausted());
  ASSERT_EQ(back.size(), 10u);
  for (RankId r = 0; r < 10; ++r) {
    ASSERT_TRUE(back.contains(r * 7 + 3));
    EXPECT_DOUBLE_EQ(back.load_of(r * 7 + 3), k.load_of(r * 7 + 3));
  }
}

TEST(KnowledgeDelta, TruncationRaisesTheRecoveryFlagOnce) {
  Knowledge k;
  for (RankId r = 0; r < 16; ++r) {
    k.insert(r, 1.0 + r);
  }
  Rng rng{5};
  k.truncate_random(4, rng);
  EXPECT_EQ(k.size(), 4u);
  EXPECT_TRUE(k.take_truncated());
  EXPECT_FALSE(k.take_truncated()); // consumed

  // A truncation that drops nothing must not raise the flag: the next
  // forward can stay a delta.
  k.truncate_random(8, rng);
  EXPECT_FALSE(k.take_truncated());
  k.truncate_to(4);
  EXPECT_FALSE(k.take_truncated());
}

TEST(KnowledgeDelta, FullSnapshotRecoversDroppedEntriesAfterTruncation) {
  // The protocol-level recovery rule, replayed at the container level:
  // after a truncation the sender's next payload is pack_full, and a
  // receiver that merged earlier deltas plus that snapshot ends with the
  // sender's surviving entries — nothing silently disappears from the
  // wire protocol even though the sender forgot some of what it shipped.
  Knowledge sender;
  for (RankId r = 0; r < 12; ++r) {
    sender.insert(r, 0.5 + r);
  }
  rt::Packer first;
  sender.pack_full(first);

  Knowledge receiver;
  {
    rt::Unpacker u{first.bytes()};
    receiver.unpack_into(u);
  }

  sender.insert(20, 9.0);
  Rng rng{7};
  sender.truncate_random(6, rng);
  ASSERT_TRUE(sender.take_truncated());

  // Recovery: the post-truncation forward ships everything, not the
  // (now meaningless) delta above the stale high-water mark.
  rt::Packer second;
  sender.pack_full(second);
  Knowledge update;
  {
    rt::Unpacker u{second.bytes()};
    update.unpack_into(u);
  }
  receiver.merge(update);

  // The receiver holds the union of everything it was ever shipped: the
  // 12 originals from the first snapshot plus whatever survived the
  // truncation (rank 20 may or may not be among the survivors).
  for (auto const& e : sender.entries()) {
    ASSERT_TRUE(receiver.contains(e.rank)) << e.rank;
    EXPECT_DOUBLE_EQ(receiver.load_of(e.rank), e.load);
  }
  for (RankId r = 0; r < 12; ++r) {
    ASSERT_TRUE(receiver.contains(r)) << r;
  }
  EXPECT_EQ(receiver.size(), sender.contains(20) ? 13u : 12u);
}

TEST(KnowledgeDelta, UnpackIntoRestampsFromOne) {
  Knowledge k;
  k.insert(1, 1.0);
  k.insert(2, 2.0);
  rt::Packer p;
  k.pack_full(p);

  Knowledge inbox;
  inbox.insert(9, 9.0); // stale contents to be replaced
  rt::Unpacker u{p.bytes()};
  inbox.unpack_into(u);
  EXPECT_EQ(inbox.version_mark(), 2u); // stamped 1..n, counter at n+1
  EXPECT_FALSE(inbox.contains(9));
}

} // namespace
} // namespace tlb::lb
