#include "lb/transfer.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "support/rng.hpp"

namespace tlb::lb {
namespace {

std::vector<TaskEntry> make_tasks(std::initializer_list<double> loads) {
  std::vector<TaskEntry> out;
  TaskId id = 0;
  for (double const l : loads) {
    out.push_back({id++, l});
  }
  return out;
}

Knowledge make_knowledge(std::initializer_list<KnownRank> entries) {
  Knowledge k;
  for (auto const& e : entries) {
    k.insert(e.rank, e.load);
  }
  return k;
}

LbParams tempered_single() {
  auto p = LbParams::tempered();
  p.num_iterations = 1;
  p.num_trials = 1;
  return p;
}

TEST(Transfer, NotOverloadedProposesNothing) {
  auto const tasks = make_tasks({0.5, 0.5});
  auto knowledge = make_knowledge({{1, 0.1}});
  Rng rng{1};
  auto const r = run_transfer(tempered_single(), 0, tasks, 1.0, 2.0,
                              knowledge, rng);
  EXPECT_TRUE(r.migrations.empty());
  EXPECT_EQ(r.accepted, 0u);
  EXPECT_DOUBLE_EQ(r.final_load, 1.0);
}

TEST(Transfer, EmptyKnowledgeProposesNothing) {
  auto const tasks = make_tasks({2.0, 2.0});
  Knowledge knowledge;
  Rng rng{1};
  auto const r =
      run_transfer(tempered_single(), 0, tasks, 4.0, 1.0, knowledge, rng);
  EXPECT_TRUE(r.migrations.empty());
  EXPECT_EQ(r.no_target, tasks.size());
}

TEST(Transfer, SheddingStopsAtThreshold) {
  // One underloaded peer with plenty of headroom; sender should shed until
  // l_p <= h * l_ave.
  auto const tasks = make_tasks({1.0, 1.0, 1.0, 1.0, 1.0, 1.0});
  auto knowledge = make_knowledge({{1, 0.0}});
  Rng rng{3};
  LbParams params = tempered_single();
  params.threshold = 1.0;
  auto const r = run_transfer(params, 0, tasks, 6.0, 3.0, knowledge, rng);
  EXPECT_LE(r.final_load, 3.0 + 1e-12);
  EXPECT_FALSE(r.migrations.empty());
}

TEST(Transfer, FinalLoadMatchesMigratedSum) {
  auto const tasks = make_tasks({1.5, 0.5, 2.0, 1.0});
  auto knowledge = make_knowledge({{1, 0.2}, {2, 0.8}});
  Rng rng{5};
  auto const r =
      run_transfer(tempered_single(), 0, tasks, 5.0, 1.5, knowledge, rng);
  double migrated = 0.0;
  for (Migration const& m : r.migrations) {
    migrated += m.load;
    EXPECT_EQ(m.from, 0);
    EXPECT_NE(m.to, 0);
  }
  EXPECT_NEAR(r.final_load, 5.0 - migrated, 1e-12);
  EXPECT_EQ(r.accepted, r.migrations.size());
}

TEST(Transfer, KnowledgeLoadsUpdatedOnAcceptance) {
  auto const tasks = make_tasks({1.0});
  auto knowledge = make_knowledge({{7, 0.0}});
  Rng rng{9};
  auto const r =
      run_transfer(tempered_single(), 0, tasks, 1.0 + 2.0, 1.0, knowledge,
                   rng);
  if (!r.migrations.empty()) {
    EXPECT_DOUBLE_EQ(knowledge.load_of(7), 1.0);
  }
}

TEST(Transfer, OriginalCriterionNeverOverloadsRecipient) {
  // Under the original criterion, every accepted transfer keeps the
  // recipient's known load strictly below l_ave.
  Rng workload_rng{11};
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<TaskEntry> tasks;
    for (int i = 0; i < 20; ++i) {
      tasks.push_back(
          {static_cast<TaskId>(i), workload_rng.uniform(0.1, 1.0)});
    }
    double const l_p = std::accumulate(
        tasks.begin(), tasks.end(), 0.0,
        [](double a, TaskEntry const& t) { return a + t.load; });
    double const l_ave = l_p / 4.0;
    auto knowledge = make_knowledge(
        {{1, workload_rng.uniform(0.0, l_ave)},
         {2, workload_rng.uniform(0.0, l_ave)}});
    LbParams params = LbParams::grapevine();
    Rng rng{static_cast<std::uint64_t>(trial) + 100};
    auto const r = run_transfer(params, 0, tasks, l_p, l_ave, knowledge, rng);
    for (auto const& e : knowledge.entries()) {
      EXPECT_LT(e.load, l_ave + 1e-12);
    }
    (void)r;
  }
}

TEST(Transfer, RelaxedCriterionKeepsRecipientBelowSenderPreLoad) {
  // Lemma 1's guarantee applied operationally: after any accepted
  // transfer, the recipient's new known load stays below the sender's
  // load just before that transfer, so the pairwise max never grows.
  std::vector<TaskEntry> tasks;
  Rng workload_rng{13};
  for (int i = 0; i < 30; ++i) {
    tasks.push_back(
        {static_cast<TaskId>(i), workload_rng.uniform(0.1, 2.0)});
  }
  double const l_p = std::accumulate(
      tasks.begin(), tasks.end(), 0.0,
      [](double a, TaskEntry const& t) { return a + t.load; });
  double const l_ave = l_p / 8.0;
  auto knowledge = make_knowledge({{1, 0.0}, {2, l_ave}, {3, 2 * l_ave}});
  LbParams params = tempered_single();
  Rng rng{17};
  auto const r = run_transfer(params, 0, tasks, l_p, l_ave, knowledge, rng);
  // Replay: verify the per-step invariant.
  double sender = l_p;
  auto replay = make_knowledge({{1, 0.0}, {2, l_ave}, {3, 2 * l_ave}});
  for (Migration const& m : r.migrations) {
    double const before = replay.load_of(m.to);
    EXPECT_LT(before + m.load, sender + 1e-12);
    replay.add_load(m.to, m.load);
    sender -= m.load;
  }
}

TEST(Transfer, DeterministicGivenSeed) {
  auto const tasks = make_tasks({2.0, 1.0, 0.5, 3.0, 0.7});
  auto k1 = make_knowledge({{1, 0.1}, {2, 0.4}, {3, 0.9}});
  auto k2 = k1;
  Rng r1{21};
  Rng r2{21};
  auto const a =
      run_transfer(tempered_single(), 0, tasks, 7.2, 1.0, k1, r1);
  auto const b =
      run_transfer(tempered_single(), 0, tasks, 7.2, 1.0, k2, r2);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.rejected, b.rejected);
}

TEST(Transfer, CandidatesBoundedByTaskCount) {
  auto const tasks = make_tasks({1.0, 1.0, 1.0});
  auto knowledge = make_knowledge({{1, 0.9}});
  Rng rng{23};
  LbParams params = tempered_single();
  auto const r = run_transfer(params, 0, tasks, 3.0, 0.5, knowledge, rng);
  EXPECT_LE(r.accepted + r.rejected + r.no_target, tasks.size());
}

TEST(Transfer, BuildOnceUsesStaleCmfButFreshLoadMap) {
  // With a single known peer and build_once, the CMF stays valid even as
  // the peer's known load grows past l_ave; the criterion still reads the
  // fresh load map and eventually rejects.
  auto const tasks = make_tasks({1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0});
  auto knowledge = make_knowledge({{1, 0.0}});
  LbParams params = LbParams::grapevine();
  params.threshold = 1.0;
  Rng rng{25};
  double const l_ave = 2.0;
  auto const r = run_transfer(params, 0, tasks, 8.0, l_ave, knowledge, rng);
  // Original criterion: accepts while 0 + k*1 + 1 < 2, i.e. exactly one
  // task (0+1<2 yes; 1+1<2 no).
  EXPECT_EQ(r.accepted, 1u);
  EXPECT_DOUBLE_EQ(knowledge.load_of(1), 1.0);
}

} // namespace
} // namespace tlb::lb
