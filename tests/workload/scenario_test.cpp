/// \file scenario_test.cpp
/// The scenario library's contracts: determinism, the seeding discipline
/// (distinct streams per (scenario, rank)), each scenario's shape, the
/// fixed-population workload realization, and the PhaseTimeline-export
/// round trip into a trace-replay scenario.

#include <algorithm>
#include <iterator>
#include <set>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "obs/phase_timeline.hpp"
#include "runtime/object_store.hpp"
#include "workload/scenario.hpp"

namespace tlb::workload {
namespace {

ScenarioSpec spec_for(std::string name, RankId ranks = 16,
                      std::size_t phases = 24) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.num_ranks = ranks;
  spec.phases = phases;
  spec.seed = 42;
  return spec;
}

std::vector<double> intensities(Scenario const& s, std::uint64_t phase) {
  std::vector<double> out;
  for (RankId r = 0; r < s.num_ranks(); ++r) {
    out.push_back(s.intensity(phase, r));
  }
  return out;
}

TEST(ScenarioFactory, BuildsEveryRegisteredScenario) {
  for (auto const name : scenario_names()) {
    auto const s = make_scenario(spec_for(std::string{name}));
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->name(), name);
    EXPECT_EQ(s->num_ranks(), 16);
  }
  EXPECT_THROW((void)make_scenario(spec_for("tsunami")),
               std::invalid_argument);
}

TEST(ScenarioFactory, IntensitiesArePositiveAndDeterministic) {
  for (auto const name : scenario_names()) {
    auto const a = make_scenario(spec_for(std::string{name}));
    auto const b = make_scenario(spec_for(std::string{name}));
    for (std::uint64_t p = 0; p < 40; ++p) { // past the nominal horizon
      for (RankId r = 0; r < a->num_ranks(); ++r) {
        EXPECT_GT(a->intensity(p, r), 0.0) << name;
        EXPECT_DOUBLE_EQ(a->intensity(p, r), b->intensity(p, r)) << name;
      }
    }
  }
}

TEST(Seeding, StreamsAreDistinctPerScenarioAndRank) {
  // The satellite contract: no two (scenario, rank) pairs may share a
  // workload stream, and the workload tag must not collide with the
  // per-rank runtime streams.
  std::set<std::uint64_t> seeds;
  for (auto const name : scenario_names()) {
    auto const tag = scenario_stream_tag(name);
    for (RankId r = 0; r < 64; ++r) {
      EXPECT_TRUE(seeds.insert(rank_stream_seed(7, tag, r)).second)
          << "stream collision for " << name << " rank " << r;
    }
  }
  EXPECT_NE(scenario_stream_tag("hotspot"), scenario_stream_tag("bursty"));
  // Different root seeds move every stream.
  EXPECT_NE(rank_stream_seed(7, scenario_stream_tag("hotspot"), 0),
            rank_stream_seed(8, scenario_stream_tag("hotspot"), 0));
}

TEST(HotspotScenario, TheBumpDriftsAcrossRanks) {
  auto const s = make_scenario(spec_for("hotspot", 32));
  auto const argmax = [&](std::uint64_t phase) {
    auto const v = intensities(*s, phase);
    return std::distance(v.begin(), std::max_element(v.begin(), v.end()));
  };
  // Baseline plus a bump: max well above min somewhere.
  auto const v0 = intensities(*s, 0);
  EXPECT_GT(*std::max_element(v0.begin(), v0.end()), 2.0);
  EXPECT_GE(*std::min_element(v0.begin(), v0.end()), 1.0);
  // The hotspot moves: with drift 1.5 ranks/phase the argmax after 8
  // phases sits ~12 ranks away (mod 32).
  EXPECT_NE(argmax(0), argmax(8));
}

TEST(PeriodicScenario, SwingsExactlyOnItsPeriod) {
  auto spec = spec_for("periodic");
  spec.period = 6;
  auto const s = make_scenario(spec);
  for (RankId r = 0; r < s->num_ranks(); ++r) {
    for (std::uint64_t p = 0; p < 12; ++p) {
      EXPECT_DOUBLE_EQ(s->intensity(p, r), s->intensity(p + 6, r));
    }
  }
  // At the cycle start (sin = 0) the two halves agree — a balanced phase;
  // a quarter period in, they diverge — the imbalanced part of the swing.
  EXPECT_DOUBLE_EQ(s->intensity(0, 0), s->intensity(0, s->num_ranks() - 1));
  EXPECT_GT(s->intensity(1, 0), s->intensity(1, s->num_ranks() - 1));
}

TEST(BurstyScenario, HasCalmAndShockedPhases) {
  auto spec = spec_for("bursty", 16, 40);
  auto const s = make_scenario(spec);
  std::size_t calm = 0;
  std::size_t shocked = 0;
  for (std::uint64_t p = 0; p < spec.phases; ++p) {
    auto const v = intensities(*s, p);
    double const max = *std::max_element(v.begin(), v.end());
    if (max == 1.0) {
      ++calm;
    } else {
      EXPECT_GE(max, 1.0 + spec.amplitude - 1e-9);
      ++shocked;
    }
  }
  EXPECT_GT(calm, 0u) << "a bursty scenario needs calm stretches";
  EXPECT_GT(shocked, 0u) << "and shocks";
  // The schedule wraps past the horizon.
  EXPECT_DOUBLE_EQ(s->intensity(spec.phases + 3, 5), s->intensity(3, 5));
}

TEST(RampScenario, SteepensMonotonically) {
  auto const s = make_scenario(spec_for("ramp", 16, 20));
  // Phase 0 is flat; later phases grade up with rank; the top rank's
  // series is nondecreasing and saturates at the horizon.
  for (RankId r = 0; r < 16; ++r) {
    EXPECT_DOUBLE_EQ(s->intensity(0, r), 1.0);
  }
  EXPECT_DOUBLE_EQ(s->intensity(10, 0), 1.0);
  for (std::uint64_t p = 1; p < 25; ++p) {
    EXPECT_GE(s->intensity(p, 15), s->intensity(p - 1, 15));
  }
  EXPECT_DOUBLE_EQ(s->intensity(19, 15), s->intensity(40, 15));
}

TEST(ScenarioWorkload, RealizesTheFixedPopulation) {
  auto const s = make_scenario(spec_for("hotspot", 8));
  ScenarioWorkload const wl{*s, 4, 42, 2.0};
  EXPECT_EQ(wl.num_tasks(), 32u);
  for (std::size_t id = 0; id < wl.num_tasks(); ++id) {
    auto const task = static_cast<TaskId>(id);
    EXPECT_EQ(wl.home(task), static_cast<RankId>(id / 4));
    EXPECT_GT(wl.weight(task), 0.0);
    EXPECT_DOUBLE_EQ(wl.task_load(3, task),
                     wl.weight(task) * s->intensity(3, wl.home(task)));
  }
}

TEST(ScenarioWorkload, MeasureFollowsThePlacement) {
  auto const s = make_scenario(spec_for("hotspot", 4));
  ScenarioWorkload const wl{*s, 2, 42};
  rt::ObjectStore store{4};
  wl.populate(store, 64);
  EXPECT_EQ(store.total_tasks(), 8u);

  auto const before = wl.measure(0, store);
  ASSERT_EQ(before.tasks.size(), 4u);
  EXPECT_EQ(before.tasks[0].size(), 2u);

  // Move one of rank 0's tasks to rank 3: its load must move with it but
  // keep tracking its *home* rank's intensity.
  rt::RuntimeConfig rt_config;
  rt_config.num_ranks = 4;
  rt::Runtime runtime{rt_config};
  TaskId const moved = before.tasks[0][0].id;
  store.migrate(runtime, {{moved, 0, 3, before.tasks[0][0].load}});
  auto const after = wl.measure(1, store);
  EXPECT_EQ(after.tasks[0].size(), 1u);
  ASSERT_EQ(after.tasks[3].size(), 3u);
  bool found = false;
  for (auto const& t : after.tasks[3]) {
    if (t.id == moved) {
      found = true;
      EXPECT_DOUBLE_EQ(t.load, wl.task_load(1, moved));
    }
  }
  EXPECT_TRUE(found);
}

TEST(TraceScenario, RoundTripsATimelineExport) {
  // Record two phases of known 4-rank loads with full-fidelity snapshots
  // (top_k >= ranks), export, replay: intensities must be proportional to
  // the recorded loads, wrapping past the trace end.
  obs::PhaseTimeline timeline{8};
  std::vector<std::vector<double>> const recorded{{4.0, 1.0, 1.0, 2.0},
                                                  {1.0, 3.0, 2.0, 2.0}};
  for (std::size_t p = 0; p < recorded.size(); ++p) {
    obs::PhaseSample sample;
    sample.phase = p;
    obs::snapshot_loads(sample, recorded[p], 8);
    timeline.record(std::move(sample));
  }
  std::ostringstream json;
  timeline.write_json(json);

  auto const replay = make_trace_scenario(json.str());
  EXPECT_EQ(replay->num_ranks(), 4);
  EXPECT_EQ(replay->phases(), 2u);
  // Mean load = 2.0, so intensity = load / 2.
  for (std::size_t p = 0; p < recorded.size(); ++p) {
    for (RankId r = 0; r < 4; ++r) {
      EXPECT_NEAR(replay->intensity(p, r),
                  recorded[p][static_cast<std::size_t>(r)] / 2.0, 1e-9);
      EXPECT_NEAR(replay->intensity(p + 2, r), replay->intensity(p, r),
                  1e-12);
    }
  }
}

TEST(TraceScenario, SpreadsTheTruncatedRemainderEvenly) {
  // 6 ranks, top_k = 2: the four collapsed ranks each get rest/4.
  obs::PhaseTimeline timeline{4};
  std::vector<double> const loads{9.0, 1.0, 1.5, 6.0, 0.5, 1.0};
  obs::PhaseSample sample;
  obs::snapshot_loads(sample, loads, 2);
  timeline.record(std::move(sample));
  std::ostringstream json;
  timeline.write_json(json);

  auto const replay = make_trace_scenario(json.str());
  EXPECT_EQ(replay->num_ranks(), 6);
  double const mean = (9.0 + 6.0 + 4.0) / 6.0;
  EXPECT_NEAR(replay->intensity(0, 0), 9.0 / mean, 1e-9);
  EXPECT_NEAR(replay->intensity(0, 3), 6.0 / mean, 1e-9);
  // rest_load_sum = 4.0 over 4 ranks → 1.0 each.
  for (RankId r : {1, 2, 4, 5}) {
    EXPECT_NEAR(replay->intensity(0, r), 1.0 / mean, 1e-9);
  }
}

TEST(TraceScenario, RejectsMalformedDocuments) {
  EXPECT_THROW((void)make_trace_scenario("{\"timeline\": []}"),
               std::runtime_error);
  // A sample without a snapshot (legacy export) cannot be replayed.
  EXPECT_THROW(
      (void)make_trace_scenario(
          "{\"timeline\": [{\"phase\": 0, \"snapshot_ranks\": 0}]}"),
      std::runtime_error);
}

} // namespace
} // namespace tlb::workload
