/// \file policy_sim_test.cpp
/// The policy × scenario harness: end-to-end determinism, the bracketing
/// policies (never/always), the M7 acceptance criterion — cost/benefit
/// beats always-invoke on scenarios with calm stretches and stays within
/// 5% of the best fixed policy everywhere — checked off the same JSON
/// artifact the experiment emits, and a seeded 64-rank golden pinning the
/// cost/benefit invoke/skip sequence per scenario.

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json_in.hpp"
#include "policy/trigger_policy.hpp"
#include "workload/policy_sim.hpp"

namespace tlb::workload {
namespace {

SimConfig config_for(std::string scenario, std::string policy,
                     RankId ranks = 16, std::size_t phases = 24) {
  SimConfig config;
  config.scenario.name = std::move(scenario);
  config.scenario.num_ranks = ranks;
  config.scenario.phases = phases;
  config.policy = std::move(policy);
  return config;
}

std::size_t count_invokes(std::string const& decisions) {
  return static_cast<std::size_t>(
      std::count(decisions.begin(), decisions.end(), 'I'));
}

TEST(PolicySim, IsDeterministic) {
  auto const config = config_for("bursty", "costbenefit");
  auto const a = run_policy_sim(config);
  auto const b = run_policy_sim(config);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.invocations, b.invocations);
  EXPECT_DOUBLE_EQ(a.work_seconds, b.work_seconds);
  EXPECT_DOUBLE_EQ(a.lb_seconds, b.lb_seconds);
  EXPECT_DOUBLE_EQ(a.mean_imbalance, b.mean_imbalance);
  EXPECT_DOUBLE_EQ(a.mean_forecast_error, b.mean_forecast_error);
}

TEST(PolicySim, NeverAndAlwaysBracketTheDecisionSpace) {
  auto const never = run_policy_sim(config_for("hotspot", "never"));
  EXPECT_EQ(never.invocations, 0u);
  EXPECT_EQ(never.decisions, std::string(24, 'S'));
  EXPECT_DOUBLE_EQ(never.lb_seconds, 0.0);

  auto const always = run_policy_sim(config_for("hotspot", "always"));
  EXPECT_EQ(always.invocations, 24u);
  EXPECT_EQ(always.decisions, std::string(24, 'I'));
  EXPECT_GT(always.lb_seconds, 0.0);
  // On a persistently imbalanced scenario, balancing must reduce the work
  // time even though it costs LB seconds.
  EXPECT_LT(always.work_seconds, never.work_seconds);
}

TEST(PolicySim, CostBenefitInvokesSelectively) {
  auto const res = run_policy_sim(config_for("bursty", "costbenefit"));
  // Calm stretches must be skipped and shocks acted on: strictly between
  // the brackets.
  EXPECT_GT(res.invocations, 0u);
  EXPECT_LT(res.invocations, res.phases);
  EXPECT_EQ(res.invocations, count_invokes(res.decisions));
  EXPECT_GT(res.mean_forecast_error, 0.0);
}

/// The M7 sweep: every registered policy across every synthetic scenario
/// at the experiment's 64-rank scale, validated through the emitted JSON
/// artifact (the same path EXPERIMENTS.md's recipe uses).
class PolicySweepM7 : public ::testing::Test {
protected:
  static constexpr RankId kRanks = 64;
  static constexpr std::size_t kPhases = 32;

  static std::vector<SimResult> const& sweep() {
    static std::vector<SimResult> const results = [] {
      std::vector<SimResult> out;
      for (auto const scenario : scenario_names()) {
        for (auto const policy : policy::policy_specs()) {
          out.push_back(run_policy_sim(config_for(
              std::string{scenario}, std::string{policy}, kRanks, kPhases)));
        }
      }
      return out;
    }();
    return results;
  }

  static std::map<std::string, std::map<std::string, double>> totals() {
    std::map<std::string, std::map<std::string, double>> by_cell;
    for (auto const& r : sweep()) {
      by_cell[r.scenario][r.policy] = r.total_seconds();
    }
    return by_cell;
  }
};

TEST_F(PolicySweepM7, ArtifactRoundTripsAndIsInternallyConsistent) {
  std::ostringstream os;
  write_sim_json(os, sweep());
  auto const doc = obs::parse_json(os.str());
  auto const& cells = doc.at("sweep").array();
  ASSERT_EQ(cells.size(),
            scenario_names().size() * policy::policy_specs().size());
  for (auto const& cell : cells) {
    ASSERT_TRUE(cell.is_object());
    EXPECT_EQ(cell.at("phases").num(), static_cast<double>(kPhases));
    auto const& decisions = cell.at("decisions").str();
    EXPECT_EQ(decisions.size(), kPhases);
    EXPECT_EQ(count_invokes(decisions), cell.at("invocations").num());
    // The JSON writer rounds doubles to ~10 significant digits.
    EXPECT_NEAR(cell.at("total_seconds").num(),
                cell.at("work_seconds").num() + cell.at("lb_seconds").num(),
                1e-6);
    EXPECT_GT(cell.at("work_seconds").num(), 0.0);
    EXPECT_GE(cell.at("mean_imbalance").num(), 0.0);
  }
}

TEST_F(PolicySweepM7, CostBenefitBeatsAlwaysOnScenariosWithCalmStretches) {
  // The acceptance criterion's first half: where the workload has calm or
  // self-reverting stretches (bursty shocks, the seasonal swing), paying
  // the LB cost every phase is wasteful and cost/benefit must win
  // outright on total wall-clock.
  auto const t = totals();
  for (std::string const scenario : {"bursty", "periodic"}) {
    double const cb = t.at(scenario).at("costbenefit");
    double const always = t.at(scenario).at("always");
    EXPECT_LT(cb, always) << scenario << ": costbenefit " << cb
                          << " vs always " << always;
  }
}

TEST_F(PolicySweepM7, CostBenefitIsNearTheBestFixedPolicyEverywhere) {
  // Second half: no scenario may make the adaptive policy regret more
  // than 5% against the best *fixed* policy for that scenario (which the
  // adaptive policy does not know in advance).
  auto const t = totals();
  for (auto const& [scenario, by_policy] : t) {
    double best_fixed = std::numeric_limits<double>::infinity();
    std::string best_name;
    for (auto const& [policy, total] : by_policy) {
      if (policy == "costbenefit") {
        continue;
      }
      if (total < best_fixed) {
        best_fixed = total;
        best_name = policy;
      }
    }
    double const cb = by_policy.at("costbenefit");
    EXPECT_LE(cb, 1.05 * best_fixed)
        << scenario << ": costbenefit " << cb << " vs best fixed ("
        << best_name << ") " << best_fixed;
  }
}

/// Seeded 64-rank golden: the cost/benefit invoke/skip sequence per
/// scenario is part of the subsystem's observable contract — any drift in
/// scenarios, forecasting, or the trigger arithmetic shows up here.
/// Regenerate with TLB_UPDATE_GOLDEN=1 after an intentional change.
TEST(PolicyDecisionsGolden, Seeded64RankSequencesMatchGoldenFile) {
  std::string const golden_path = std::string{TLB_SOURCE_DIR} +
                                  "/tests/workload/golden/policy_decisions_64.txt";
  std::ostringstream actual;
  for (auto const scenario : scenario_names()) {
    auto const res = run_policy_sim(
        config_for(std::string{scenario}, "costbenefit", 64, 32));
    actual << res.scenario << ' ' << res.policy << ' ' << res.decisions
           << '\n';
  }

  if (std::getenv("TLB_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out{golden_path};
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << actual.str();
    GTEST_SKIP() << "golden file regenerated";
  }

  std::ifstream in{golden_path};
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path
                         << "; regenerate with TLB_UPDATE_GOLDEN=1";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual.str(), expected.str())
      << "decision sequences drifted; if intentional, regenerate with "
         "TLB_UPDATE_GOLDEN=1";
}

} // namespace
} // namespace tlb::workload
