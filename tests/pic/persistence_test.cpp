/// Tests for the persistence-quality metric (§III-B): the per-step
/// relative change of per-color loads, which bounds how well any
/// previous-phase-based balancer can do.

#include <gtest/gtest.h>

#include "pic/app.hpp"

namespace tlb::pic {
namespace {

PicConfig base_config(int steps) {
  PicConfig cfg;
  cfg.mesh.ranks_x = 2;
  cfg.mesh.ranks_y = 2;
  cfg.mesh.colors_x = 3;
  cfg.mesh.colors_y = 2;
  cfg.steps = steps;
  cfg.bdot.total_steps = steps;
  cfg.bdot.base_rate = 60.0;
  cfg.bdot.growth = 1.0;
  cfg.strategy = "none";
  return cfg;
}

TEST(Persistence, ErrorIsBoundedAndEventuallySmall) {
  auto cfg = base_config(60);
  cfg.bdot.orbit_periods = 0.1; // nearly static hot spot
  cfg.bdot.speed_lo = 0.005;
  cfg.bdot.speed_hi = 0.03;
  PicApp app{cfg};
  auto const result = app.run();
  for (auto const& m : result.steps) {
    EXPECT_GE(m.persistence_error, 0.0);
  }
  // Once the population dwarfs the per-step injection, loads barely
  // change phase to phase: persistence holds (error well under 20%).
  EXPECT_LT(result.steps.back().persistence_error, 0.2);
}

TEST(Persistence, FirstStepIsFullyUnpredicted) {
  auto cfg = base_config(5);
  PicApp app{cfg};
  auto const result = app.run();
  // No previous phase exists: everything is "new" load, plus the cell
  // term which also starts unpredicted.
  EXPECT_NEAR(result.steps.front().persistence_error, 1.0, 1e-9);
}

TEST(Persistence, FastScenarioBreaksPersistenceMoreThanSlow) {
  auto slow = base_config(50);
  slow.bdot.orbit_periods = 0.05;
  slow.bdot.speed_hi = 0.02;
  auto fast = base_config(50);
  fast.bdot.orbit_periods = 3.0; // hot spot races around the domain
  fast.bdot.speed_hi = 0.5;

  auto const mean_tail_error = [](RunResult const& r) {
    double sum = 0.0;
    int n = 0;
    for (auto const& m : r.steps) {
      if (m.step >= 25) {
        sum += m.persistence_error;
        ++n;
      }
    }
    return sum / n;
  };
  auto const slow_err = mean_tail_error(PicApp{slow}.run());
  auto const fast_err = mean_tail_error(PicApp{fast}.run());
  EXPECT_LT(slow_err, fast_err);
}

} // namespace
} // namespace tlb::pic
