#include "pic/field.hpp"

#include <gtest/gtest.h>

namespace tlb::pic {
namespace {

TEST(Field, ZeroRhsStaysZero) {
  FieldSolver solver{8, 8};
  double const residual = solver.sweep(10);
  EXPECT_NEAR(residual, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(solver.value(4, 4), 0.0);
}

TEST(Field, ResidualDecreasesWithIterations) {
  FieldSolver a{16, 16};
  FieldSolver b{16, 16};
  a.set_rhs(8, 8, 1.0);
  b.set_rhs(8, 8, 1.0);
  double const r_few = a.sweep(5);
  double const r_many = b.sweep(200);
  EXPECT_LT(r_many, r_few);
  EXPECT_GT(r_few, 0.0);
}

TEST(Field, PointSourceProducesPositivePeakAtSource) {
  FieldSolver solver{16, 16};
  solver.set_rhs(8, 8, 1.0);
  (void)solver.sweep(500);
  double const center = solver.value(8, 8);
  EXPECT_GT(center, 0.0);
  // Field decays away from the source.
  EXPECT_GT(center, solver.value(2, 2));
  EXPECT_GT(center, solver.value(14, 14));
}

TEST(Field, BoundaryStaysDirichletZero) {
  FieldSolver solver{12, 12};
  solver.set_rhs(6, 6, 5.0);
  (void)solver.sweep(100);
  for (int i = 0; i < 12; ++i) {
    EXPECT_DOUBLE_EQ(solver.value(i, 0), 0.0);
    EXPECT_DOUBLE_EQ(solver.value(i, 11), 0.0);
    EXPECT_DOUBLE_EQ(solver.value(0, i), 0.0);
    EXPECT_DOUBLE_EQ(solver.value(11, i), 0.0);
  }
}

TEST(Field, SymmetricProblemGivesSymmetricSolution) {
  FieldSolver solver{17, 17};
  solver.set_rhs(8, 8, 1.0);
  (void)solver.sweep(300);
  EXPECT_NEAR(solver.value(6, 8), solver.value(10, 8), 1e-9);
  EXPECT_NEAR(solver.value(8, 6), solver.value(8, 10), 1e-9);
}

TEST(FieldDeath, TooSmallGridAborts) {
  EXPECT_DEATH(FieldSolver(2, 8), "precondition");
}

} // namespace
} // namespace tlb::pic
