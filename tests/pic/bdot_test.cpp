#include "pic/bdot.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tlb::pic {
namespace {

TEST(BDot, InjectionRateGrowsLinearly) {
  BDotConfig cfg;
  cfg.base_rate = 100.0;
  cfg.growth = 2.0;
  BDotScenario const scenario{cfg};
  EXPECT_EQ(scenario.count(0), 100);
  EXPECT_EQ(scenario.count(10), 120);
  EXPECT_EQ(scenario.count(100), 300);
}

TEST(BDot, CenterOrbitsWithinDomain) {
  BDotConfig cfg;
  cfg.total_steps = 100;
  BDotScenario const scenario{cfg};
  for (int step = 0; step <= 100; step += 5) {
    auto const [cx, cy] = scenario.center(step, 200.0, 100.0);
    EXPECT_GE(cx, 0.0);
    EXPECT_LT(cx, 200.0);
    EXPECT_GE(cy, 0.0);
    EXPECT_LT(cy, 100.0);
  }
}

TEST(BDot, CenterMovesOverTime) {
  BDotConfig cfg;
  cfg.total_steps = 100;
  cfg.orbit_periods = 1.0;
  BDotScenario const scenario{cfg};
  auto const [x0, y0] = scenario.center(0, 100.0, 100.0);
  auto const [x1, y1] = scenario.center(25, 100.0, 100.0);
  double const dist = std::hypot(x1 - x0, y1 - y0);
  EXPECT_GT(dist, 10.0); // quarter orbit with radius 30
}

TEST(BDot, DrawsClusterAroundCenter) {
  BDotConfig cfg;
  cfg.sigma_frac = 0.02;
  cfg.total_steps = 100;
  BDotScenario const scenario{cfg};
  Rng rng{3};
  auto const [cx, cy] = scenario.center(50, 100.0, 100.0);
  double sum_dist = 0.0;
  constexpr int n = 2000;
  for (int i = 0; i < n; ++i) {
    auto const p = scenario.draw(50, 100.0, 100.0, rng);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 100.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 100.0);
    sum_dist += std::hypot(p.x - cx, p.y - cy);
  }
  // Mean radial distance for a 2D Gaussian with sigma=2 is sigma*sqrt(pi/2).
  EXPECT_NEAR(sum_dist / n, 2.0 * std::sqrt(3.14159265 / 2.0), 0.3);
}

TEST(BDot, DrawSpeedsWithinConfiguredRange) {
  BDotConfig cfg;
  cfg.speed_lo = 0.1;
  cfg.speed_hi = 0.5;
  cfg.total_steps = 10;
  BDotScenario const scenario{cfg};
  Rng rng{7};
  for (int i = 0; i < 500; ++i) {
    auto const p = scenario.draw(3, 50.0, 50.0, rng);
    double const speed = std::hypot(p.vx, p.vy);
    EXPECT_GE(speed, 0.1 - 1e-12);
    EXPECT_LE(speed, 0.5 + 1e-12);
  }
}

TEST(BDot, DeterministicGivenSeed) {
  BDotScenario const scenario{BDotConfig{}};
  Rng r1{9};
  Rng r2{9};
  for (int i = 0; i < 50; ++i) {
    auto const a = scenario.draw(i, 100.0, 100.0, r1);
    auto const b = scenario.draw(i, 100.0, 100.0, r2);
    EXPECT_DOUBLE_EQ(a.x, b.x);
    EXPECT_DOUBLE_EQ(a.vy, b.vy);
  }
}

TEST(BDotDeath, NegativeStepAborts) {
  BDotScenario const scenario{BDotConfig{}};
  EXPECT_DEATH((void)scenario.count(-1), "precondition");
}

} // namespace
} // namespace tlb::pic
