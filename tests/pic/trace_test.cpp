#include "pic/trace.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace tlb::pic {
namespace {

RunResult tiny_run() {
  PicConfig cfg;
  cfg.mesh.ranks_x = 2;
  cfg.mesh.ranks_y = 2;
  cfg.mesh.colors_x = 2;
  cfg.mesh.colors_y = 2;
  cfg.steps = 8;
  cfg.bdot.total_steps = 8;
  cfg.bdot.base_rate = 20.0;
  cfg.lb_period = 4;
  cfg.lb_params.rounds = 3;
  cfg.lb_params.num_trials = 1;
  cfg.lb_params.num_iterations = 1;
  PicApp app{cfg};
  return app.run();
}

TEST(Trace, OneRowPerStepPlusHeader) {
  auto const result = tiny_run();
  std::ostringstream os;
  write_trace_csv(os, result);
  auto const text = os.str();
  auto const lines = std::count(text.begin(), text.end(), '\n');
  EXPECT_EQ(lines, static_cast<long>(result.steps.size()) + 1);
  EXPECT_NE(text.find("step,t_particle"), std::string::npos);
}

TEST(Trace, FieldsRoundTripNumerically) {
  auto const result = tiny_run();
  std::ostringstream os;
  write_trace_csv(os, result);
  std::istringstream is{os.str()};
  std::string line;
  std::getline(is, line); // header
  std::getline(is, line); // step 0
  std::istringstream row{line};
  std::string cell;
  std::getline(row, cell, ',');
  EXPECT_EQ(cell, "0");
  std::getline(row, cell, ',');
  EXPECT_NEAR(std::stod(cell), result.steps[0].t_particle, 1e-6);
}

TEST(Trace, FileWritingAndBadPath) {
  auto const result = tiny_run();
  std::string const path = "/tmp/tlb_trace_test.csv";
  write_trace_csv(path, result);
  std::ifstream check{path};
  EXPECT_TRUE(check.good());
  EXPECT_THROW(write_trace_csv("/nonexistent-dir/x.csv", result),
               std::runtime_error);
}

TEST(Trace, MissingDirectoryErrorNamesPathAndReason) {
  auto const result = tiny_run();
  std::string const path = "/tmp/tlb-no-such-dir-12345/trace.csv";
  try {
    write_trace_csv(path, result);
    FAIL() << "expected std::runtime_error";
  } catch (std::runtime_error const& e) {
    std::string const what = e.what();
    // The message must name the failing path and carry the errno text
    // (e.g. "No such file or directory"), not just a bare failure.
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("No such file or directory"), std::string::npos)
        << what;
  }
}

} // namespace
} // namespace tlb::pic
