#include "pic/mesh.hpp"

#include <gtest/gtest.h>

#include <set>

namespace tlb::pic {
namespace {

MeshConfig small_config() {
  MeshConfig cfg;
  cfg.ranks_x = 2;
  cfg.ranks_y = 2;
  cfg.colors_x = 3;
  cfg.colors_y = 2;
  cfg.color_cells_x = 4;
  cfg.color_cells_y = 5;
  return cfg;
}

TEST(Mesh, GeometryDerivedFromConfig) {
  Mesh const mesh{small_config()};
  EXPECT_EQ(mesh.cells_x(), 2 * 3 * 4);
  EXPECT_EQ(mesh.cells_y(), 2 * 2 * 5);
  EXPECT_EQ(mesh.num_ranks(), 4);
  EXPECT_EQ(mesh.colors_per_rank(), 6);
  EXPECT_EQ(mesh.num_colors(), 24);
  EXPECT_EQ(mesh.cells_per_color(), 20);
  EXPECT_EQ(mesh.cells_per_rank(), 120);
}

TEST(Mesh, HomeRankBlocksOfColors) {
  Mesh const mesh{small_config()};
  for (ColorId c = 0; c < mesh.num_colors(); ++c) {
    EXPECT_EQ(mesh.home_rank_of_color(c), c / mesh.colors_per_rank());
  }
}

TEST(Mesh, ColorOfCellCornerCases) {
  Mesh const mesh{small_config()};
  // Cell (0,0) is color 0 of rank 0.
  EXPECT_EQ(mesh.color_of_cell(0, 0), 0);
  // Last cell belongs to the last color of the last rank.
  EXPECT_EQ(mesh.color_of_cell(mesh.cells_x() - 1, mesh.cells_y() - 1),
            mesh.num_colors() - 1);
}

TEST(Mesh, EveryCellMapsToExactlyOneColorWithRightSize) {
  Mesh const mesh{small_config()};
  std::vector<int> counts(static_cast<std::size_t>(mesh.num_colors()), 0);
  for (int cy = 0; cy < mesh.cells_y(); ++cy) {
    for (int cx = 0; cx < mesh.cells_x(); ++cx) {
      auto const c = mesh.color_of_cell(cx, cy);
      ASSERT_GE(c, 0);
      ASSERT_LT(c, mesh.num_colors());
      ++counts[static_cast<std::size_t>(c)];
    }
  }
  for (int const n : counts) {
    EXPECT_EQ(n, mesh.cells_per_color());
  }
}

TEST(Mesh, ColorOfCellConsistentWithHomeRankGeometry) {
  Mesh const mesh{small_config()};
  // Every cell's color must home to the rank block containing the cell.
  int const block_x = 3 * 4;
  int const block_y = 2 * 5;
  for (int cy = 0; cy < mesh.cells_y(); ++cy) {
    for (int cx = 0; cx < mesh.cells_x(); ++cx) {
      auto const c = mesh.color_of_cell(cx, cy);
      int const expected_rank = (cy / block_y) * 2 + (cx / block_x);
      EXPECT_EQ(mesh.home_rank_of_color(c), expected_rank);
    }
  }
}

TEST(Mesh, PositionMappingMatchesCellMapping) {
  Mesh const mesh{small_config()};
  EXPECT_EQ(mesh.color_of_position(0.5, 0.5), mesh.color_of_cell(0, 0));
  EXPECT_EQ(mesh.color_of_position(4.0, 0.0), mesh.color_of_cell(4, 0));
  // Clamping out-of-domain positions.
  EXPECT_EQ(mesh.color_of_position(-3.0, -3.0), mesh.color_of_cell(0, 0));
  EXPECT_EQ(mesh.color_of_position(1e9, 1e9),
            mesh.color_of_cell(mesh.cells_x() - 1, mesh.cells_y() - 1));
}

TEST(Mesh, ColorCenterInsideColor) {
  Mesh const mesh{small_config()};
  for (ColorId c = 0; c < mesh.num_colors(); ++c) {
    auto const [x, y] = mesh.color_center(c);
    EXPECT_EQ(mesh.color_of_position(x, y), c);
  }
}

TEST(Mesh, PaperScaleConfig) {
  // The paper's 24-colors-per-rank overdecomposition at 400 ranks.
  MeshConfig cfg;
  cfg.ranks_x = 20;
  cfg.ranks_y = 20;
  cfg.colors_x = 6;
  cfg.colors_y = 4;
  cfg.color_cells_x = 4;
  cfg.color_cells_y = 4;
  Mesh const mesh{cfg};
  EXPECT_EQ(mesh.num_ranks(), 400);
  EXPECT_EQ(mesh.colors_per_rank(), 24);
  EXPECT_EQ(mesh.num_colors(), 9600);
}

TEST(MeshDeath, InvalidConfigAborts) {
  MeshConfig cfg = small_config();
  cfg.ranks_x = 0;
  EXPECT_DEATH(Mesh{cfg}, "precondition");
}

} // namespace
} // namespace tlb::pic
