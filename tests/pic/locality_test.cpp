/// Tests for the communication-locality metrics (the paper's future-work
/// direction): cross-rank particle exchange counting and its interaction
/// with migration-heavy strategies.

#include <gtest/gtest.h>

#include "pic/app.hpp"
#include "pic/color_chunk.hpp"

namespace tlb::pic {
namespace {

PicConfig locality_config(int steps = 40) {
  PicConfig cfg;
  cfg.mesh.ranks_x = 2;
  cfg.mesh.ranks_y = 2;
  cfg.mesh.colors_x = 3;
  cfg.mesh.colors_y = 2;
  cfg.steps = steps;
  cfg.bdot.total_steps = steps;
  cfg.bdot.base_rate = 80.0;
  cfg.bdot.growth = 1.0;
  cfg.bdot.orbit_periods = 0.2;
  cfg.lb_period = 10;
  cfg.lb_params.rounds = 4;
  cfg.lb_params.num_trials = 2;
  cfg.lb_params.num_iterations = 2;
  return cfg;
}

TEST(Locality, RemoteNeverExceedsTotalExchange) {
  auto cfg = locality_config();
  PicApp app{cfg};
  auto const result = app.run();
  for (auto const& m : result.steps) {
    EXPECT_LE(m.remote_exchanged, m.exchanged);
  }
  EXPECT_LE(result.totals.remote_exchanged, result.totals.exchanged);
}

TEST(Locality, TotalsAccumulateSteps) {
  auto cfg = locality_config(20);
  PicApp app{cfg};
  auto const result = app.run();
  std::size_t exchanged = 0;
  std::size_t remote = 0;
  for (auto const& m : result.steps) {
    exchanged += m.exchanged;
    remote += m.remote_exchanged;
  }
  EXPECT_EQ(result.totals.exchanged, exchanged);
  EXPECT_EQ(result.totals.remote_exchanged, remote);
}

TEST(Locality, SpmdKeepsMostExchangeLocal) {
  // With colors pinned to geometric home ranks, only exchanges across
  // rank-block boundaries are remote — a minority for slow particles.
  auto cfg = locality_config();
  cfg.mode = ExecutionMode::spmd;
  PicApp app{cfg};
  auto const result = app.run();
  ASSERT_GT(result.totals.exchanged, 0u);
  EXPECT_LT(result.totals.remote_exchanged,
            result.totals.exchanged / 2);
}

TEST(Locality, ScatteringStrategyRaisesRemoteFraction) {
  // GreedyLB scatters every color with no regard for geometry, so the
  // remote share of exchange must rise relative to SPMD — the locality
  // cost the paper's §V-E2 motivates minimizing migrations for.
  auto spmd = locality_config();
  spmd.mode = ExecutionMode::spmd;
  auto const spmd_result = PicApp{spmd}.run();
  double const spmd_frac =
      static_cast<double>(spmd_result.totals.remote_exchanged) /
      static_cast<double>(spmd_result.totals.exchanged);

  auto greedy = locality_config();
  greedy.strategy = "greedy";
  auto const greedy_result = PicApp{greedy}.run();
  double const greedy_frac =
      static_cast<double>(greedy_result.totals.remote_exchanged) /
      static_cast<double>(greedy_result.totals.exchanged);

  EXPECT_GT(greedy_frac, spmd_frac);
}

TEST(ColorChunk, WireBytesIncludeMeshAndParticles) {
  ColorChunk chunk{3, /*cells=*/16};
  auto const empty_bytes = chunk.wire_bytes();
  EXPECT_EQ(empty_bytes, 16u * 8u);
  chunk.particles().add(1.0, 1.0, 0.0, 0.0);
  chunk.particles().add(2.0, 2.0, 0.0, 0.0);
  EXPECT_EQ(chunk.wire_bytes(), empty_bytes + 2 * particle_wire_bytes);
  EXPECT_EQ(chunk.id(), 3);
  EXPECT_EQ(chunk.cells(), 16);
}

} // namespace
} // namespace tlb::pic
