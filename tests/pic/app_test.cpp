#include "pic/app.hpp"

#include <gtest/gtest.h>

namespace tlb::pic {
namespace {

/// Small, fast configuration: 2x2 ranks, 6 colors each.
PicConfig small_config(int steps = 30) {
  PicConfig cfg;
  cfg.mesh.ranks_x = 2;
  cfg.mesh.ranks_y = 2;
  cfg.mesh.colors_x = 3;
  cfg.mesh.colors_y = 2;
  cfg.mesh.color_cells_x = 4;
  cfg.mesh.color_cells_y = 4;
  cfg.bdot.base_rate = 50.0;
  cfg.bdot.growth = 1.0;
  cfg.bdot.total_steps = steps;
  // Persistence-friendly scenario at this tiny scale: slow orbit and slow
  // particles keep the hot spot where the previous phase measured it.
  cfg.bdot.orbit_periods = 0.25;
  cfg.bdot.sigma_frac = 0.05;
  cfg.bdot.speed_lo = 0.005;
  cfg.bdot.speed_hi = 0.05;
  cfg.steps = steps;
  cfg.first_lb_step = 2;
  cfg.lb_period = 10;
  cfg.lb_params.rounds = 4;
  cfg.lb_params.num_trials = 2;
  cfg.lb_params.num_iterations = 3;
  return cfg;
}

TEST(PicApp, ParticleCountMatchesInjectionSchedule) {
  auto cfg = small_config(10);
  cfg.strategy = "none";
  PicApp app{cfg};
  auto const result = app.run();
  std::size_t expected = 0;
  BDotScenario const scenario{cfg.bdot};
  for (int s = 0; s < 10; ++s) {
    expected += static_cast<std::size_t>(scenario.count(s));
  }
  EXPECT_EQ(app.total_particles(), expected);
  EXPECT_EQ(result.steps.back().total_particles, expected);
}

TEST(PicApp, SpmdNeverMigrates) {
  auto cfg = small_config();
  cfg.mode = ExecutionMode::spmd;
  PicApp app{cfg};
  auto const result = app.run();
  EXPECT_EQ(result.totals.migrations, 0u);
  EXPECT_DOUBLE_EQ(result.totals.t_lb, 0.0);
  for (ColorId c = 0; c < app.mesh().num_colors(); ++c) {
    EXPECT_EQ(app.owner_of(c), app.mesh().home_rank_of_color(c));
  }
}

TEST(PicApp, AmtNoLbNeverMigratesButCostsMore) {
  auto spmd_cfg = small_config();
  spmd_cfg.mode = ExecutionMode::spmd;
  auto amt_cfg = small_config();
  amt_cfg.mode = ExecutionMode::amt;
  amt_cfg.strategy = "none";
  auto const spmd = PicApp{spmd_cfg}.run();
  auto const amt = PicApp{amt_cfg}.run();
  EXPECT_EQ(amt.totals.migrations, 0u);
  // The AMT overhead makes both components strictly slower (Fig. 2's 23%).
  EXPECT_GT(amt.totals.t_particle, spmd.totals.t_particle * 1.1);
  EXPECT_GT(amt.totals.t_nonparticle, spmd.totals.t_nonparticle * 1.01);
}

TEST(PicApp, TemperedLbMigratesAndBeatsNoLb) {
  auto nolb_cfg = small_config(40);
  nolb_cfg.strategy = "none";
  auto lb_cfg = small_config(40);
  lb_cfg.strategy = "tempered";
  auto const nolb = PicApp{nolb_cfg}.run();
  auto const lb = PicApp{lb_cfg}.run();
  EXPECT_GT(lb.totals.migrations, 0u);
  // With the hot blob concentrated on one rank, balancing must cut the
  // particle time substantially.
  EXPECT_LT(lb.totals.t_particle, 0.9 * nolb.totals.t_particle);
}

TEST(PicApp, LbCostAppearsOnlyOnLbSteps) {
  auto cfg = small_config(25);
  cfg.first_lb_step = 2;
  cfg.lb_period = 10;
  PicApp app{cfg};
  auto const result = app.run();
  for (auto const& m : result.steps) {
    bool const is_lb =
        m.step == 2 || (m.step > 2 && m.step % 10 == 0);
    if (is_lb) {
      EXPECT_GT(m.t_lb, 0.0) << "step " << m.step;
    } else {
      EXPECT_DOUBLE_EQ(m.t_lb, 0.0) << "step " << m.step;
    }
  }
}

TEST(PicApp, TotalsEqualSumOfSteps) {
  auto cfg = small_config(15);
  PicApp app{cfg};
  auto const result = app.run();
  double tp = 0.0;
  double tn = 0.0;
  double tl = 0.0;
  for (auto const& m : result.steps) {
    tp += m.t_particle;
    tn += m.t_nonparticle;
    tl += m.t_lb;
    EXPECT_NEAR(m.t_step, m.t_particle + m.t_nonparticle + m.t_lb, 1e-12);
  }
  EXPECT_NEAR(result.totals.t_particle, tp, 1e-9);
  EXPECT_NEAR(result.totals.t_nonparticle, tn, 1e-9);
  EXPECT_NEAR(result.totals.t_lb, tl, 1e-9);
  EXPECT_NEAR(result.totals.t_total, tp + tn + tl, 1e-9);
}

TEST(PicApp, MetricsInternallyConsistent) {
  auto cfg = small_config(20);
  PicApp app{cfg};
  auto const result = app.run();
  for (auto const& m : result.steps) {
    EXPECT_GE(m.max_rank_load, m.avg_rank_load - 1e-12);
    EXPECT_GE(m.avg_rank_load, m.min_rank_load - 1e-12);
    EXPECT_LE(m.max_task_load, m.max_rank_load + 1e-12);
    EXPECT_NEAR(m.imbalance, m.max_rank_load / m.avg_rank_load - 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(m.t_particle, m.max_rank_load);
  }
}

TEST(PicApp, DeterministicGivenSeed) {
  auto const run_once = [] {
    PicApp app{small_config(20)};
    return app.run();
  };
  auto const a = run_once();
  auto const b = run_once();
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.steps[i].t_step, b.steps[i].t_step);
    EXPECT_EQ(a.steps[i].total_particles, b.steps[i].total_particles);
    EXPECT_EQ(a.steps[i].migrations, b.steps[i].migrations);
  }
}

TEST(PicApp, ConservesParticlesAcrossMigrations) {
  auto cfg = small_config(35);
  cfg.strategy = "greedy";
  PicApp app{cfg};
  (void)app.run();
  std::size_t expected = 0;
  BDotScenario const scenario{cfg.bdot};
  for (int s = 0; s < 35; ++s) {
    expected += static_cast<std::size_t>(scenario.count(s));
  }
  EXPECT_EQ(app.total_particles(), expected);
}

TEST(PicApp, AdaptiveTriggerAddsInvocations) {
  auto fixed = small_config(40);
  fixed.lb_period = 20;
  auto adaptive = fixed;
  adaptive.lb_trigger_imbalance = 0.3;
  adaptive.lb_trigger_cooldown = 5;
  auto const count_lb = [](pic::RunResult const& r) {
    std::size_t n = 0;
    for (auto const& m : r.steps) {
      if (m.t_lb > 0.0) {
        ++n;
      }
    }
    return n;
  };
  auto const fixed_n = count_lb(PicApp{fixed}.run());
  auto const adaptive_n = count_lb(PicApp{adaptive}.run());
  EXPECT_GT(adaptive_n, fixed_n);
}

TEST(PicApp, AdaptiveTriggerRespectsCooldown) {
  auto cfg = small_config(40);
  cfg.lb_period = 1000; // periodic path effectively off after step 2
  cfg.lb_trigger_imbalance = 0.01; // always above threshold
  cfg.lb_trigger_cooldown = 7;
  PicApp app{cfg};
  auto const result = app.run();
  int last = -100;
  for (auto const& m : result.steps) {
    if (m.t_lb > 0.0 && m.step > cfg.first_lb_step) {
      EXPECT_GE(m.step - last, 7) << "at step " << m.step;
      last = m.step;
    } else if (m.t_lb > 0.0) {
      last = m.step;
    }
  }
}

class PicStrategySweep : public ::testing::TestWithParam<char const*> {};

TEST_P(PicStrategySweep, EveryStrategyRunsAndBalances) {
  auto cfg = small_config(30);
  cfg.strategy = GetParam();
  PicApp app{cfg};
  auto const result = app.run();
  auto nolb_cfg = small_config(30);
  nolb_cfg.strategy = "none";
  auto const nolb = PicApp{nolb_cfg}.run();
  // Compare time-averaged imbalance after the first LB invocation; the
  // stale-measurement noise of any single step is averaged out.
  auto const mean_imbalance = [](RunResult const& r, int from_step) {
    double sum = 0.0;
    int n = 0;
    for (auto const& m : r.steps) {
      if (m.step >= from_step) {
        sum += m.imbalance;
        ++n;
      }
    }
    return sum / n;
  };
  EXPECT_LT(mean_imbalance(result, 3), mean_imbalance(nolb, 3));
  EXPECT_GT(result.totals.migrations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Strategies, PicStrategySweep,
                         ::testing::Values("tempered", "grapevine", "greedy",
                                           "hier"));

} // namespace
} // namespace tlb::pic
