#include "pic/particles.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace tlb::pic {
namespace {

TEST(Particles, AddAndAccess) {
  Particles p;
  EXPECT_TRUE(p.empty());
  p.add(1.0, 2.0, 0.1, -0.2);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_DOUBLE_EQ(p.x(0), 1.0);
  EXPECT_DOUBLE_EQ(p.y(0), 2.0);
  EXPECT_DOUBLE_EQ(p.vx(0), 0.1);
  EXPECT_DOUBLE_EQ(p.vy(0), -0.2);
}

TEST(Particles, PushAdvancesPositions) {
  Particles p;
  p.add(1.0, 1.0, 0.5, 0.25);
  p.push(2.0, 100.0, 100.0);
  EXPECT_DOUBLE_EQ(p.x(0), 2.0);
  EXPECT_DOUBLE_EQ(p.y(0), 1.5);
}

TEST(Particles, ReflectsAtUpperBoundary) {
  Particles p;
  p.add(9.5, 5.0, 1.0, 0.0);
  p.push(1.0, 10.0, 10.0); // would land at 10.5 -> reflect to 9.5
  EXPECT_NEAR(p.x(0), 9.5, 1e-12);
  EXPECT_DOUBLE_EQ(p.vx(0), -1.0);
}

TEST(Particles, ReflectsAtLowerBoundary) {
  Particles p;
  p.add(0.5, 5.0, -1.0, 0.0);
  p.push(1.0, 10.0, 10.0); // would land at -0.5 -> reflect to 0.5
  EXPECT_NEAR(p.x(0), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(p.vx(0), 1.0);
}

TEST(Particles, StaysInDomainUnderLongRandomPush) {
  Particles p;
  Rng rng{31};
  for (int i = 0; i < 200; ++i) {
    p.add(rng.uniform(0.0, 20.0), rng.uniform(0.0, 10.0),
          rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0));
  }
  for (int step = 0; step < 100; ++step) {
    p.push(1.0, 20.0, 10.0);
    for (std::size_t i = 0; i < p.size(); ++i) {
      ASSERT_GE(p.x(i), 0.0);
      ASSERT_LT(p.x(i), 20.0);
      ASSERT_GE(p.y(i), 0.0);
      ASSERT_LT(p.y(i), 10.0);
    }
  }
}

TEST(Particles, RemoveSwapKeepsOthers) {
  Particles p;
  p.add(1.0, 0.0, 0.0, 0.0);
  p.add(2.0, 0.0, 0.0, 0.0);
  p.add(3.0, 0.0, 0.0, 0.0);
  p.remove_swap(0); // last (3.0) takes slot 0
  ASSERT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p.x(0), 3.0);
  EXPECT_DOUBLE_EQ(p.x(1), 2.0);
}

TEST(Particles, TakeFromTransfers) {
  Particles a;
  Particles b;
  a.add(1.0, 2.0, 3.0, 4.0);
  a.add(5.0, 6.0, 7.0, 8.0);
  b.take_from(a, 0);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_DOUBLE_EQ(b.x(0), 1.0);
  EXPECT_DOUBLE_EQ(b.vy(0), 4.0);
  EXPECT_DOUBLE_EQ(a.x(0), 5.0);
}

TEST(Particles, WireBytes) {
  Particles p;
  EXPECT_EQ(p.wire_bytes(), 0u);
  p.add(0, 0, 0, 0);
  p.add(0, 0, 0, 0);
  EXPECT_EQ(p.wire_bytes(), 2 * particle_wire_bytes);
}

TEST(Particles, ClearEmpties) {
  Particles p;
  p.add(1, 1, 0, 0);
  p.clear();
  EXPECT_TRUE(p.empty());
}

TEST(ParticlesDeath, RemoveOutOfRangeAborts) {
  Particles p;
  EXPECT_DEATH(p.remove_swap(0), "precondition");
}

} // namespace
} // namespace tlb::pic
