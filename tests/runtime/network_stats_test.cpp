#include "runtime/network_stats.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/registry.hpp"
#include "runtime/runtime.hpp"

namespace tlb::rt {
namespace {

TEST(NetworkStats, PerCategoryCountersSumToAggregate) {
  NetworkStats stats;
  stats.record_send(false, 100, MessageKind::gossip);
  stats.record_send(false, 50, MessageKind::gossip);
  stats.record_send(true, 10, MessageKind::transfer);
  stats.record_send(false, 7, MessageKind::migration);
  stats.record_send(false, 1, MessageKind::termination);
  stats.record_send(false, 3); // untagged -> other

  auto const snap = stats.snapshot();
  EXPECT_EQ(snap.messages, 6u);
  EXPECT_EQ(snap.bytes, 171u);
  EXPECT_EQ(snap.local_messages, 1u);
  EXPECT_EQ(snap.kind_messages[static_cast<std::size_t>(
                MessageKind::gossip)],
            2u);
  EXPECT_EQ(
      snap.kind_bytes[static_cast<std::size_t>(MessageKind::gossip)],
      150u);
  EXPECT_EQ(snap.kind_messages[static_cast<std::size_t>(
                MessageKind::other)],
            1u);

  std::size_t kind_total_messages = 0;
  std::size_t kind_total_bytes = 0;
  for (std::size_t k = 0; k < num_message_kinds; ++k) {
    kind_total_messages += snap.kind_messages[k];
    kind_total_bytes += snap.kind_bytes[k];
  }
  EXPECT_EQ(kind_total_messages, snap.messages);
  EXPECT_EQ(kind_total_bytes, snap.bytes);
}

TEST(NetworkStats, MailboxDepthIsHighWatermark) {
  NetworkStats stats;
  stats.record_mailbox_depth(3);
  stats.record_mailbox_depth(9);
  stats.record_mailbox_depth(5);
  EXPECT_EQ(stats.snapshot().max_mailbox_depth, 9u);
  stats.reset();
  EXPECT_EQ(stats.snapshot().max_mailbox_depth, 0u);
}

TEST(NetworkStats, MessageKindNamesAreStable) {
  EXPECT_STREQ(message_kind_name(MessageKind::other), "other");
  EXPECT_STREQ(message_kind_name(MessageKind::gossip), "gossip");
  EXPECT_STREQ(message_kind_name(MessageKind::transfer), "transfer");
  EXPECT_STREQ(message_kind_name(MessageKind::migration), "migration");
  EXPECT_STREQ(message_kind_name(MessageKind::termination),
               "termination");
}

TEST(Runtime, TaggedSendsLandInTheirCategory) {
  RuntimeConfig config;
  config.num_ranks = 4;
  Runtime runtime{config};
  runtime.post(
      1, [](RankContext& ctx) { ctx.send(2, 64, [](RankContext&) {},
                                         MessageKind::gossip); },
      16, MessageKind::transfer);
  runtime.run_until_quiescent();

  auto const snap = runtime.stats();
  EXPECT_EQ(snap.messages, 2u);
  EXPECT_EQ(snap.kind_messages[static_cast<std::size_t>(
                MessageKind::transfer)],
            1u);
  EXPECT_EQ(snap.kind_messages[static_cast<std::size_t>(
                MessageKind::gossip)],
            1u);
  EXPECT_EQ(
      snap.kind_bytes[static_cast<std::size_t>(MessageKind::gossip)],
      64u);
  EXPECT_GE(snap.max_mailbox_depth, 1u);
}

TEST(NetworkStats, FaultCountersArePerKindAndResettable) {
  NetworkStats stats;
  stats.record_drop(MessageKind::gossip);
  stats.record_drop(MessageKind::gossip);
  stats.record_delay(MessageKind::transfer);
  stats.record_duplicate(MessageKind::migration);
  stats.record_retry(MessageKind::migration);
  stats.record_retry(MessageKind::transfer);

  auto snap = stats.snapshot();
  EXPECT_EQ(snap.kind_dropped[static_cast<std::size_t>(MessageKind::gossip)],
            2u);
  EXPECT_EQ(
      snap.kind_delayed[static_cast<std::size_t>(MessageKind::transfer)],
      1u);
  EXPECT_EQ(snap.kind_duplicated[static_cast<std::size_t>(
                MessageKind::migration)],
            1u);
  EXPECT_EQ(
      snap.kind_retried[static_cast<std::size_t>(MessageKind::migration)],
      1u);
  EXPECT_EQ(
      snap.kind_retried[static_cast<std::size_t>(MessageKind::transfer)],
      1u);
  EXPECT_EQ(snap.kind_dropped[static_cast<std::size_t>(MessageKind::other)],
            0u);

  stats.reset();
  snap = stats.snapshot();
  for (std::size_t k = 0; k < num_message_kinds; ++k) {
    EXPECT_EQ(snap.kind_dropped[k], 0u);
    EXPECT_EQ(snap.kind_delayed[k], 0u);
    EXPECT_EQ(snap.kind_duplicated[k], 0u);
    EXPECT_EQ(snap.kind_retried[k], 0u);
  }
}

TEST(Runtime, PostDelayedDeliversAndCountsAsInFlight) {
  RuntimeConfig config;
  config.num_ranks = 2;
  Runtime runtime{config};
  int order = 0;
  int delayed_order = -1;
  int immediate_order = -1;
  runtime.post_delayed(
      1, [&](RankContext&) { delayed_order = order++; },
      /*delay_polls=*/8);
  runtime.post(1, [&](RankContext&) { immediate_order = order++; });
  EXPECT_TRUE(runtime.run_until_quiescent());
  // Quiescence waited for the parked handler, and the immediate message
  // overtook it.
  EXPECT_EQ(immediate_order, 0);
  EXPECT_EQ(delayed_order, 1);
}

TEST(Runtime, PublishMetricsIncludesFaultCounters) {
  RuntimeConfig config;
  config.num_ranks = 2;
  Runtime runtime{config};
  runtime.record_retry(MessageKind::migration);
  obs::Registry registry;
  runtime.publish_metrics(registry);
  bool saw_retried = false;
  for (auto const& s : registry.snapshot()) {
    if (s.name == "net.retried_by_category" && !s.labels.empty() &&
        s.labels[0].value == "migration") {
      saw_retried = true;
      EXPECT_EQ(s.counter_value, 1u);
    }
  }
  EXPECT_TRUE(saw_retried);
}

TEST(Runtime, PublishMetricsFoldsIntoRegistry) {
  RuntimeConfig config;
  config.num_ranks = 2;
  Runtime runtime{config};
  runtime.post(
      0, [](RankContext& ctx) { ctx.send(1, 32, [](RankContext&) {},
                                         MessageKind::migration); },
      8, MessageKind::gossip);
  runtime.run_until_quiescent();

  obs::Registry registry;
  runtime.publish_metrics(registry);
  auto const samples = registry.snapshot();
  bool saw_migration_category = false;
  bool saw_depth_gauge = false;
  for (auto const& s : samples) {
    if (s.name == "net.messages_by_category" && !s.labels.empty() &&
        s.labels[0].value == "migration") {
      saw_migration_category = true;
      EXPECT_EQ(s.counter_value, 1u);
    }
    if (s.name == "net.max_mailbox_depth") {
      saw_depth_gauge = true;
      EXPECT_GE(s.gauge_value, 1);
    }
  }
  EXPECT_TRUE(saw_migration_category);
  EXPECT_TRUE(saw_depth_gauge);
}

} // namespace
} // namespace tlb::rt
