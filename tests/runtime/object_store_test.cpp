#include "runtime/object_store.hpp"

#include <gtest/gtest.h>

namespace tlb::rt {
namespace {

class Blob final : public Migratable {
public:
  explicit Blob(std::size_t size, int tag = 0) : size_{size}, tag_{tag} {}
  [[nodiscard]] std::size_t wire_bytes() const override { return size_; }
  [[nodiscard]] int tag() const { return tag_; }

private:
  std::size_t size_;
  int tag_;
};

RuntimeConfig config(RankId ranks, int threads = 1) {
  RuntimeConfig cfg;
  cfg.num_ranks = ranks;
  cfg.num_threads = threads;
  return cfg;
}

TEST(ObjectStore, CreateAndFind) {
  ObjectStore store{4};
  store.create(1, 100, std::make_unique<Blob>(64, 7));
  EXPECT_EQ(store.owner(100), 1);
  auto* blob = dynamic_cast<Blob*>(store.find(1, 100));
  ASSERT_NE(blob, nullptr);
  EXPECT_EQ(blob->tag(), 7);
  EXPECT_EQ(store.find(0, 100), nullptr);
  EXPECT_EQ(store.owner(999), invalid_rank);
}

TEST(ObjectStore, TasksOnReportsSorted) {
  ObjectStore store{2};
  store.create(0, 5, std::make_unique<Blob>(1));
  store.create(0, 2, std::make_unique<Blob>(1));
  store.create(1, 3, std::make_unique<Blob>(1));
  auto const tasks = store.tasks_on(0);
  ASSERT_EQ(tasks.size(), 2u);
  EXPECT_EQ(tasks[0], 2);
  EXPECT_EQ(tasks[1], 5);
  EXPECT_EQ(store.total_tasks(), 3u);
}

TEST(ObjectStore, MigrateMovesPayload) {
  Runtime rt{config(4)};
  ObjectStore store{4};
  store.create(0, 10, std::make_unique<Blob>(128, 42));
  auto const bytes = store.migrate(rt, {Migration{10, 0, 3, 1.0}});
  EXPECT_EQ(bytes, 128u);
  EXPECT_EQ(store.owner(10), 3);
  EXPECT_EQ(store.find(0, 10), nullptr);
  auto* blob = dynamic_cast<Blob*>(store.find(3, 10));
  ASSERT_NE(blob, nullptr);
  EXPECT_EQ(blob->tag(), 42);
}

TEST(ObjectStore, SelfMigrationIsNoop) {
  Runtime rt{config(2)};
  ObjectStore store{2};
  store.create(1, 7, std::make_unique<Blob>(32));
  auto const bytes = store.migrate(rt, {Migration{7, 1, 1, 1.0}});
  EXPECT_EQ(bytes, 0u);
  EXPECT_EQ(store.owner(7), 1);
  EXPECT_EQ(store.migration_count(), 0u);
}

TEST(ObjectStore, BatchMigrationAccounting) {
  Runtime rt{config(4)};
  ObjectStore store{4};
  store.create(0, 1, std::make_unique<Blob>(10));
  store.create(0, 2, std::make_unique<Blob>(20));
  store.create(1, 3, std::make_unique<Blob>(30));
  std::vector<Migration> const migrations{
      {1, 0, 2, 1.0}, {2, 0, 3, 1.0}, {3, 1, 0, 1.0}};
  auto const bytes = store.migrate(rt, migrations);
  EXPECT_EQ(bytes, 60u);
  EXPECT_EQ(store.migration_bytes(), 60u);
  EXPECT_EQ(store.migration_count(), 3u);
  EXPECT_EQ(store.owner(1), 2);
  EXPECT_EQ(store.owner(2), 3);
  EXPECT_EQ(store.owner(3), 0);
}

TEST(ObjectStore, ChainedMigrationsAcrossInvocations) {
  Runtime rt{config(3)};
  ObjectStore store{3};
  store.create(0, 1, std::make_unique<Blob>(8, 5));
  (void)store.migrate(rt, {Migration{1, 0, 1, 1.0}});
  (void)store.migrate(rt, {Migration{1, 1, 2, 1.0}});
  EXPECT_EQ(store.owner(1), 2);
  auto* blob = dynamic_cast<Blob*>(store.find(2, 1));
  ASSERT_NE(blob, nullptr);
  EXPECT_EQ(blob->tag(), 5);
}

TEST(ObjectStore, MigrationTrafficVisibleInRuntimeStats) {
  Runtime rt{config(2)};
  ObjectStore store{2};
  store.create(0, 1, std::make_unique<Blob>(512));
  rt.reset_stats();
  (void)store.migrate(rt, {Migration{1, 0, 1, 1.0}});
  EXPECT_GE(rt.stats().bytes, 512u);
}

TEST(ObjectStoreDeath, DuplicateTaskIdAborts) {
  ObjectStore store{2};
  store.create(0, 1, std::make_unique<Blob>(1));
  EXPECT_DEATH(store.create(1, 1, std::make_unique<Blob>(1)),
               "precondition");
}

TEST(ObjectStoreDeath, MigrateWithWrongSourceAborts) {
  Runtime rt{config(2)};
  ObjectStore store{2};
  store.create(0, 1, std::make_unique<Blob>(1));
  EXPECT_DEATH((void)store.migrate(rt, {Migration{1, 1, 0, 1.0}}),
               "precondition");
}

} // namespace
} // namespace tlb::rt
