/// \file inline_handler_test.cpp
/// The SBO callable under the message plane: inline storage for every
/// protocol-sized closure, counted heap fallback for oversized ones,
/// move-only ownership with explicit clone, and exact construction /
/// destruction accounting across moves and consume().

#include "runtime/inline_handler.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <utility>

#include "runtime/runtime.hpp"

namespace tlb::rt {
namespace {

/// One runtime/context pair per test: handlers need a RankContext to run.
struct Fixture {
  Runtime rt{RuntimeConfig{}};
  RankContext ctx{rt, 0};
};

/// Counts live instances through every copy/move/destroy so tests can
/// assert the handler neither leaks nor double-destroys its closure.
struct Tracked {
  static int live;
  static int destroyed;
  Tracked() { ++live; }
  Tracked(Tracked const&) { ++live; }
  Tracked(Tracked&&) noexcept { ++live; }
  ~Tracked() {
    --live;
    ++destroyed;
  }
  static void reset() {
    live = 0;
    destroyed = 0;
  }
};
int Tracked::live = 0;
int Tracked::destroyed = 0;

TEST(InlineHandler, SmallClosureStaysInline) {
  InlineHandler::reset_heap_fallback_count();
  int hits = 0;
  int* p = &hits;
  InlineHandler h{[p](RankContext&) { ++*p; }};
  EXPECT_FALSE(h.uses_heap());
  EXPECT_EQ(InlineHandler::heap_fallback_count(), 0u);

  Fixture f;
  h(f.ctx);
  h(f.ctx);
  EXPECT_EQ(hits, 2);
}

TEST(InlineHandler, ProtocolShapedCaptureStaysInline) {
  // The canonical protocol closure: a shared_ptr to per-run state plus a
  // few words of payload. This must never take the heap fallback — the
  // whole point of the inline capacity choice.
  InlineHandler::reset_heap_fallback_count();
  auto state = std::make_shared<int>(0);
  double const a = 1.5;
  double const b = 2.5;
  std::uint64_t const seq = 42;
  InlineHandler h{[state, a, b, seq](RankContext&) {
    *state += static_cast<int>(a + b) + static_cast<int>(seq);
  }};
  EXPECT_FALSE(h.uses_heap());
  EXPECT_EQ(InlineHandler::heap_fallback_count(), 0u);

  Fixture f;
  h(f.ctx);
  EXPECT_EQ(*state, 46);
}

// Heap-fallback construction is a static_assert under TLB_STRICT_SBO=ON,
// so the tests that intentionally exercise the fallback only compile when
// the escape hatch exists.
#if !TLB_STRICT_SBO_ENABLED

TEST(InlineHandler, OversizedClosureFallsBackToHeapAndCounts) {
  InlineHandler::reset_heap_fallback_count();
  struct Big {
    char bytes[InlineHandler::inline_capacity + 8] = {};
  };
  Big big;
  big.bytes[0] = 7;
  int out = 0;
  int* p = &out;
  InlineHandler h{[big, p](RankContext&) { *p = big.bytes[0]; }};
  EXPECT_TRUE(h.uses_heap());
  EXPECT_EQ(InlineHandler::heap_fallback_count(), 1u);

  Fixture f;
  h(f.ctx);
  EXPECT_EQ(out, 7);
}

TEST(InlineHandler, OverAlignedClosureFallsBackToHeap) {
  // The inline buffer is only 8-aligned (max_align_t padding would cost
  // every envelope 16 bytes); anything fussier goes to the heap.
  InlineHandler::reset_heap_fallback_count();
  struct alignas(32) Fussy {
    double v = 3.0;
  };
  Fussy fussy;
  double out = 0.0;
  double* p = &out;
  InlineHandler h{[fussy, p](RankContext&) { *p = fussy.v; }};
  EXPECT_TRUE(h.uses_heap());
  EXPECT_EQ(InlineHandler::heap_fallback_count(), 1u);

  Fixture f;
  h(f.ctx);
  EXPECT_EQ(out, 3.0);
}

#endif // !TLB_STRICT_SBO_ENABLED

TEST(InlineHandler, MoveTransfersOwnershipAndEmptiesSource) {
  int hits = 0;
  int* p = &hits;
  InlineHandler a{[p](RankContext&) { ++*p; }};
  InlineHandler b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a)); // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));

  Fixture f;
  b(f.ctx);
  EXPECT_EQ(hits, 1);

  InlineHandler c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b)); // NOLINT(bugprone-use-after-move)
  c(f.ctx);
  EXPECT_EQ(hits, 2);
}

TEST(InlineHandler, DestructionRunsExactlyOnceAcrossMoves) {
  Tracked::reset();
  {
    InlineHandler a{[t = Tracked{}](RankContext&) { (void)t; }};
    InlineHandler b{std::move(a)};
    InlineHandler c;
    c = std::move(b);
    EXPECT_EQ(Tracked::live, 1);
  }
  EXPECT_EQ(Tracked::live, 0);
}

TEST(InlineHandler, MoveAssignmentDestroysPreviousClosure) {
  Tracked::reset();
  InlineHandler a{[t = Tracked{}](RankContext&) { (void)t; }};
  EXPECT_EQ(Tracked::live, 1);
  int dummy = 0;
  int* p = &dummy;
  a = InlineHandler{[p](RankContext&) { ++*p; }};
  EXPECT_EQ(Tracked::live, 0); // the tracked closure was released

  Fixture f;
  a(f.ctx);
  EXPECT_EQ(dummy, 1);
}

TEST(InlineHandler, ConsumeInvokesAndDestroysInOneStep) {
  Tracked::reset();
  int hits = 0;
  int* p = &hits;
  InlineHandler h{[t = Tracked{}, p](RankContext&) {
    (void)t;
    ++*p;
  }};
  EXPECT_EQ(Tracked::live, 1);

  Fixture f;
  h.consume(f.ctx);
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(Tracked::live, 0);
  EXPECT_FALSE(static_cast<bool>(h)); // consumed handlers are empty
}

#if !TLB_STRICT_SBO_ENABLED

TEST(InlineHandler, HeapClosureDestructionAccounting) {
  Tracked::reset();
  struct Pad {
    char bytes[InlineHandler::inline_capacity] = {};
  };
  {
    InlineHandler h{[t = Tracked{}, pad = Pad{}](RankContext&) {
      (void)t;
      (void)pad;
    }};
    EXPECT_TRUE(h.uses_heap());
    InlineHandler moved{std::move(h)};
    EXPECT_EQ(Tracked::live, 1); // heap move relocates the pointer only
  }
  EXPECT_EQ(Tracked::live, 0);
}

#endif // !TLB_STRICT_SBO_ENABLED

TEST(InlineHandler, CloneDuplicatesInlineClosure) {
  InlineHandler::reset_heap_fallback_count();
  auto count = std::make_shared<int>(0);
  InlineHandler a{[count](RankContext&) { ++*count; }};
  InlineHandler b = a.clone();
  EXPECT_TRUE(static_cast<bool>(a)); // clone leaves the source intact
  EXPECT_TRUE(static_cast<bool>(b));
  EXPECT_EQ(InlineHandler::heap_fallback_count(), 0u);

  Fixture f;
  a(f.ctx);
  b(f.ctx);
  EXPECT_EQ(*count, 2);
}

#if !TLB_STRICT_SBO_ENABLED

TEST(InlineHandler, CloneOfHeapClosureCountsAnotherFallback) {
  InlineHandler::reset_heap_fallback_count();
  struct Pad {
    char bytes[InlineHandler::inline_capacity] = {};
  };
  auto count = std::make_shared<int>(0);
  InlineHandler a{[count, pad = Pad{}](RankContext&) {
    (void)pad;
    ++*count;
  }};
  EXPECT_EQ(InlineHandler::heap_fallback_count(), 1u);
  InlineHandler b = a.clone();
  EXPECT_TRUE(b.uses_heap());
  EXPECT_EQ(InlineHandler::heap_fallback_count(), 2u);

  Fixture f;
  b(f.ctx);
  EXPECT_EQ(*count, 1);
}

#endif // !TLB_STRICT_SBO_ENABLED

TEST(InlineHandler, MoveOnlyClosureWorksInline) {
  auto owned = std::make_unique<int>(11);
  int out = 0;
  int* p = &out;
  InlineHandler h{[owned = std::move(owned), p](RankContext&) {
    *p = *owned;
  }};
  EXPECT_FALSE(h.uses_heap());
  InlineHandler moved{std::move(h)};

  Fixture f;
  moved.consume(f.ctx);
  EXPECT_EQ(out, 11);
}

TEST(InlineHandler, EmptyHandlerIsFalsy) {
  InlineHandler h;
  EXPECT_FALSE(static_cast<bool>(h));
  InlineHandler n{nullptr};
  EXPECT_FALSE(static_cast<bool>(n));
  InlineHandler c = h.clone(); // cloning empty yields empty
  EXPECT_FALSE(static_cast<bool>(c));
}

} // namespace
} // namespace tlb::rt
