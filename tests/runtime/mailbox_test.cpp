#include "runtime/mailbox.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace tlb::rt {
namespace {

Envelope make(int tag) {
  return Envelope{0, 0, static_cast<std::size_t>(tag), nullptr};
}

TEST(Mailbox, FifoOrder) {
  Mailbox box;
  for (int i = 0; i < 10; ++i) {
    box.push(make(i));
  }
  std::vector<Envelope> out;
  EXPECT_EQ(box.pop_batch(out, 0), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)].bytes,
              static_cast<std::size_t>(i));
  }
  EXPECT_TRUE(box.empty());
}

TEST(Mailbox, BatchLimitRespected) {
  Mailbox box;
  for (int i = 0; i < 10; ++i) {
    box.push(make(i));
  }
  std::vector<Envelope> out;
  EXPECT_EQ(box.pop_batch(out, 3), 3u);
  EXPECT_EQ(box.size(), 7u);
  EXPECT_EQ(out[0].bytes, 0u);
  EXPECT_EQ(out[2].bytes, 2u);
  // Appends, does not clear.
  EXPECT_EQ(box.pop_batch(out, 3), 3u);
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out[3].bytes, 3u);
}

TEST(Mailbox, PopFromEmpty) {
  Mailbox box;
  std::vector<Envelope> out;
  EXPECT_EQ(box.pop_batch(out, 0), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(Mailbox, RandomPopIsPermutation) {
  Mailbox box;
  for (int i = 0; i < 32; ++i) {
    box.push(make(i));
  }
  std::vector<Envelope> out;
  Rng rng{3};
  EXPECT_EQ(box.pop_batch_random(out, 0, rng), 32u);
  std::vector<std::size_t> tags;
  for (auto const& e : out) {
    tags.push_back(e.bytes);
  }
  auto sorted = tags;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(sorted[i], i);
  }
  EXPECT_NE(tags, sorted); // overwhelmingly likely reordered
}

TEST(Mailbox, RandomPopDeterministicPerSeed) {
  auto run_once = [] {
    Mailbox box;
    for (int i = 0; i < 16; ++i) {
      box.push(make(i));
    }
    std::vector<Envelope> out;
    Rng rng{9};
    box.pop_batch_random(out, 0, rng);
    std::vector<std::size_t> tags;
    for (auto const& e : out) {
      tags.push_back(e.bytes);
    }
    return tags;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Mailbox, DelayedMessagesHeldUntilDue) {
  Mailbox box;
  box.push_delayed(make(7), 5);
  EXPECT_FALSE(box.empty());
  EXPECT_EQ(box.size(), 1u);
  EXPECT_EQ(box.delayed_size(), 1u);
  std::vector<Envelope> out;
  EXPECT_EQ(box.pop_batch(out, 0), 0u) << "parked messages are not poppable";
  EXPECT_EQ(box.release_due(4), 0u);
  EXPECT_EQ(box.pop_batch(out, 0), 0u);
  EXPECT_EQ(box.release_due(5), 1u);
  EXPECT_EQ(box.delayed_size(), 0u);
  ASSERT_EQ(box.pop_batch(out, 0), 1u);
  EXPECT_EQ(out[0].bytes, 7u);
  EXPECT_TRUE(box.empty());
}

TEST(Mailbox, ReleaseDueMovesOnlyRipeMessages) {
  Mailbox box;
  for (int i = 0; i < 6; ++i) {
    box.push_delayed(make(i), static_cast<std::uint64_t>(i) * 2);
  }
  EXPECT_EQ(box.release_due(6), 4u); // due 0, 2, 4, 6
  EXPECT_EQ(box.delayed_size(), 2u);
  std::vector<Envelope> out;
  EXPECT_EQ(box.pop_batch(out, 0), 4u);
  EXPECT_EQ(box.release_due(100), 2u);
  EXPECT_EQ(box.pop_batch(out, 0), 2u);
  EXPECT_TRUE(box.empty());
}

TEST(Mailbox, DrainAllTakesQueuedAndDelayedAlike) {
  Mailbox box;
  box.push(make(0));
  box.push(make(1));
  box.push_delayed(make(2), 1000);
  box.push_delayed(make(3), 2000);
  box.push_delayed(make(4), 3000);
  std::vector<Envelope> out;
  std::size_t delayed_removed = 0;
  EXPECT_EQ(box.drain_all(out, &delayed_removed), 5u);
  EXPECT_EQ(delayed_removed, 3u);
  EXPECT_TRUE(box.empty());
  EXPECT_EQ(box.delayed_size(), 0u);
}

TEST(Mailbox, ConcurrentProducersAllArrive) {
  Mailbox box;
  constexpr int producers = 4;
  constexpr int per_producer = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < producers; ++t) {
    threads.emplace_back([&box, t] {
      for (int i = 0; i < per_producer; ++i) {
        box.push(make(t * per_producer + i));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(box.size(),
            static_cast<std::size_t>(producers * per_producer));
  std::vector<Envelope> out;
  box.pop_batch(out, 0);
  std::vector<bool> seen(producers * per_producer, false);
  for (auto const& e : out) {
    ASSERT_LT(e.bytes, seen.size());
    EXPECT_FALSE(seen[e.bytes]);
    seen[e.bytes] = true;
  }
}

} // namespace
} // namespace tlb::rt
