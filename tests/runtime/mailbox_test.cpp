#include "runtime/mailbox.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace tlb::rt {
namespace {

Envelope make(int tag) {
  return Envelope{0, 0, static_cast<std::size_t>(tag), nullptr};
}

TEST(Mailbox, FifoOrder) {
  Mailbox box;
  for (int i = 0; i < 10; ++i) {
    box.push(make(i));
  }
  std::vector<Envelope> out;
  EXPECT_EQ(box.pop_batch(out, 0), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)].bytes,
              static_cast<std::size_t>(i));
  }
  EXPECT_TRUE(box.empty());
}

TEST(Mailbox, BatchLimitRespected) {
  Mailbox box;
  for (int i = 0; i < 10; ++i) {
    box.push(make(i));
  }
  std::vector<Envelope> out;
  EXPECT_EQ(box.pop_batch(out, 3), 3u);
  EXPECT_EQ(box.size(), 7u);
  EXPECT_EQ(out[0].bytes, 0u);
  EXPECT_EQ(out[2].bytes, 2u);
  // Appends, does not clear.
  EXPECT_EQ(box.pop_batch(out, 3), 3u);
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out[3].bytes, 3u);
}

TEST(Mailbox, PopFromEmpty) {
  Mailbox box;
  std::vector<Envelope> out;
  EXPECT_EQ(box.pop_batch(out, 0), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(Mailbox, RandomPopIsPermutation) {
  Mailbox box;
  for (int i = 0; i < 32; ++i) {
    box.push(make(i));
  }
  std::vector<Envelope> out;
  Rng rng{3};
  EXPECT_EQ(box.pop_batch_random(out, 0, rng), 32u);
  std::vector<std::size_t> tags;
  for (auto const& e : out) {
    tags.push_back(e.bytes);
  }
  auto sorted = tags;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(sorted[i], i);
  }
  EXPECT_NE(tags, sorted); // overwhelmingly likely reordered
}

TEST(Mailbox, RandomPopDeterministicPerSeed) {
  auto run_once = [] {
    Mailbox box;
    for (int i = 0; i < 16; ++i) {
      box.push(make(i));
    }
    std::vector<Envelope> out;
    Rng rng{9};
    box.pop_batch_random(out, 0, rng);
    std::vector<std::size_t> tags;
    for (auto const& e : out) {
      tags.push_back(e.bytes);
    }
    return tags;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Mailbox, ConcurrentProducersAllArrive) {
  Mailbox box;
  constexpr int producers = 4;
  constexpr int per_producer = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < producers; ++t) {
    threads.emplace_back([&box, t] {
      for (int i = 0; i < per_producer; ++i) {
        box.push(make(t * per_producer + i));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(box.size(),
            static_cast<std::size_t>(producers * per_producer));
  std::vector<Envelope> out;
  box.pop_batch(out, 0);
  std::vector<bool> seen(producers * per_producer, false);
  for (auto const& e : out) {
    ASSERT_LT(e.bytes, seen.size());
    EXPECT_FALSE(seen[e.bytes]);
    seen[e.bytes] = true;
  }
}

} // namespace
} // namespace tlb::rt
