/// \file threaded_stress_test.cpp
/// Seeded multi-threaded stress for the worker-pool driver: hammer
/// send / migrate / quiesce across several worker counts and check exact
/// message accounting afterwards. These tests are the ThreadSanitizer
/// workload (scripts/tsan.sh, CI `tsan` job): every cross-thread edge the
/// runtime has — MPSC mailbox handoff, the in-flight quiescence counter,
/// network statistics, object-store migration, termination waves — is
/// exercised here with enough concurrency for TSan to observe conflicting
/// access pairs.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/object_store.hpp"
#include "runtime/runtime.hpp"
#include "runtime/termination.hpp"
#include "support/check.hpp"

namespace tlb::rt {
namespace {

RuntimeConfig stress_config(RankId ranks, int threads,
                            std::uint64_t seed_salt = 0) {
  RuntimeConfig cfg;
  cfg.num_ranks = ranks;
  cfg.num_threads = threads;
  cfg.seed = 0x57e55ull + seed_salt;
  cfg.batch = 4; // small batches force more scheduler round-trips
  return cfg;
}

/// Fan-out workload: every handler execution counts itself, then sends
/// `kFanout` messages to random ranks until its ttl expires. With P roots
/// at ttl T the exact number of handler executions is P * (2^(T+1) - 1).
constexpr int kFanout = 2;
constexpr int kTtl = 6;

std::uint64_t expected_fanout_messages(RankId ranks) {
  return static_cast<std::uint64_t>(ranks) *
         ((std::uint64_t{1} << (kTtl + 1)) - std::uint64_t{1});
}

struct FanOut {
  std::atomic<std::uint64_t>* executed;

  void run(RankContext& ctx, int ttl) const {
    executed->fetch_add(1, std::memory_order_relaxed);
    if (ttl == 0) {
      return;
    }
    for (int i = 0; i < kFanout; ++i) {
      auto const to = static_cast<RankId>(ctx.rng().uniform_below(
          static_cast<std::uint64_t>(ctx.num_ranks())));
      FanOut self = *this;
      ctx.send(to, 16, [self, ttl](RankContext& dest) {
        self.run(dest, ttl - 1);
      });
    }
  }
};

class ThreadedStress : public ::testing::TestWithParam<int> {};

TEST_P(ThreadedStress, RandomFanOutQuiescesWithExactCount) {
  int const threads = GetParam();
  constexpr RankId p = 24;
  Runtime rt{stress_config(p, threads)};
  std::atomic<std::uint64_t> executed{0};

  FanOut fan{&executed};
  for (RankId r = 0; r < p; ++r) {
    rt.post(r, [fan](RankContext& ctx) { fan.run(ctx, kTtl); });
  }
  rt.run_until_quiescent();

  EXPECT_EQ(executed.load(), expected_fanout_messages(p));
  // Network statistics must agree exactly with the handler count: one
  // record_send per post and per send, none lost to racing updates.
  EXPECT_EQ(rt.stats().messages, expected_fanout_messages(p));
}

TEST_P(ThreadedStress, RepeatedQuiesceCyclesStayConsistent) {
  int const threads = GetParam();
  constexpr RankId p = 12;
  Runtime rt{stress_config(p, threads, 1)};
  std::atomic<std::uint64_t> executed{0};

  std::uint64_t expected = 0;
  for (int cycle = 0; cycle < 5; ++cycle) {
    FanOut fan{&executed};
    for (RankId r = 0; r < p; ++r) {
      rt.post(r, [fan](RankContext& ctx) { fan.run(ctx, kTtl); });
    }
    rt.run_until_quiescent();
    expected += expected_fanout_messages(p);
    ASSERT_EQ(executed.load(), expected) << "cycle " << cycle;
    if (audit::enabled()) {
      // Ground truth vs audit bookkeeping: every enqueue matched by
      // exactly one execution across all cycles so far.
      ASSERT_EQ(rt.audit_enqueued(), rt.audit_processed());
      ASSERT_EQ(rt.audit_processed(), expected);
    }
  }
}

TEST_P(ThreadedStress, ManyProducersOneConsumerMailbox) {
  // Every rank floods rank 0; the MPSC mailbox handoff (producer push
  // under one worker, consumer batch-pop under another) is the hottest
  // cross-thread edge in the runtime.
  int const threads = GetParam();
  constexpr RankId p = 16;
  constexpr int kPerRank = 200;
  Runtime rt{stress_config(p, threads, 2)};
  std::atomic<std::uint64_t> received{0};

  rt.post_all([&received](RankContext& ctx) {
    for (int i = 0; i < kPerRank; ++i) {
      ctx.send(0, 8, [&received](RankContext& dest) {
        ASSERT_EQ(dest.rank(), 0);
        received.fetch_add(1, std::memory_order_relaxed);
      });
    }
  });
  rt.run_until_quiescent();
  EXPECT_EQ(received.load(), static_cast<std::uint64_t>(p) * kPerRank);
}

struct StressPayload : Migratable {
  explicit StressPayload(std::size_t bytes, std::uint64_t tag)
      : bytes_{bytes}, tag_{tag} {}
  [[nodiscard]] std::size_t wire_bytes() const override { return bytes_; }
  std::size_t bytes_;
  std::uint64_t tag_;
};

TEST_P(ThreadedStress, MigrationChurnConservesTasks) {
  int const threads = GetParam();
  constexpr RankId p = 8;
  constexpr TaskId kTasks = 96;
  Runtime rt{stress_config(p, threads, 3)};
  ObjectStore store{p};
  for (TaskId t = 0; t < kTasks; ++t) {
    store.create(static_cast<RankId>(t % p), t,
                 std::make_unique<StressPayload>(64, t));
  }

  Rng shuffle{0xc0ffee};
  for (int round = 0; round < 6; ++round) {
    std::vector<Migration> moves;
    for (TaskId t = 0; t < kTasks; ++t) {
      auto const from = store.owner(t);
      auto const to = static_cast<RankId>(
          shuffle.uniform_below(static_cast<std::uint64_t>(p)));
      moves.push_back(Migration{t, from, to, 1.0});
    }
    store.migrate(rt, moves);

    ASSERT_EQ(store.total_tasks(), static_cast<std::size_t>(kTasks));
    std::size_t resident = 0;
    for (RankId r = 0; r < p; ++r) {
      for (TaskId const t : store.tasks_on(r)) {
        ASSERT_EQ(store.owner(t), r);
        auto const* payload =
            dynamic_cast<StressPayload const*>(store.find(r, t));
        ASSERT_NE(payload, nullptr);
        ASSERT_EQ(payload->tag_, static_cast<std::uint64_t>(t));
        ++resident;
      }
    }
    ASSERT_EQ(resident, static_cast<std::size_t>(kTasks));
  }
}

TEST_P(ThreadedStress, TerminationDetectorCertifiesUnderThreads) {
  int const threads = GetParam();
  constexpr RankId p = 16;
  Runtime rt{stress_config(p, threads, 4)};
  TerminationDetector detector{rt};

  // A counted ripple: each rank relays a token around the ring 4 times.
  constexpr int kLaps = 4;
  std::atomic<std::uint64_t> hops{0};
  std::function<void(RankContext&, int)> relay =
      [&](RankContext& ctx, int remaining) {
        hops.fetch_add(1, std::memory_order_relaxed);
        if (remaining == 0) {
          return;
        }
        auto const next = static_cast<RankId>((ctx.rank() + 1) % p);
        detector.send(ctx, next, 8, [&relay, remaining](RankContext& dest) {
          relay(dest, remaining - 1);
        });
      };
  for (RankId r = 0; r < p; ++r) {
    detector.post(r, [&relay](RankContext& ctx) {
      relay(ctx, kLaps * static_cast<int>(p));
    });
  }
  detector.start();
  rt.run_until_quiescent();

  EXPECT_TRUE(detector.terminated());
  // Four-counter certification must agree with the ground-truth message
  // count: p injected posts plus p ripples of kLaps*p counted hops each.
  auto const expected =
      static_cast<std::int64_t>(p) * (1 + kLaps * static_cast<int>(p));
  EXPECT_EQ(detector.certified_count(), expected);
  EXPECT_EQ(hops.load(), static_cast<std::uint64_t>(expected));
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, ThreadedStress,
                         ::testing::Values(2, 3, 4, 8),
                         [](auto const& param_info) {
                           return "threads" +
                                  std::to_string(param_info.param);
                         });

} // namespace
} // namespace tlb::rt
