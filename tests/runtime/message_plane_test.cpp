/// \file message_plane_test.cpp
/// Properties of the overhauled message plane: per-sender FIFO through
/// sender-side coalescing, swap-drain mailbox equivalence with a model
/// FIFO, in-place consume_batch visit semantics, work-stealing
/// determinism of results (not ordering), the P-not-divisible-by-workers
/// partitioning regression, and the zero-heap-fallback guarantee across
/// the gossip / transfer / migration / termination protocol stack.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "lb/strategy/lb_manager.hpp"
#include "runtime/inline_handler.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/object_store.hpp"
#include "runtime/runtime.hpp"
#include "runtime/termination.hpp"
#include "support/rng.hpp"

namespace tlb::rt {
namespace {

RuntimeConfig config(RankId ranks, int threads, int batch = 16) {
  RuntimeConfig cfg;
  cfg.num_ranks = ranks;
  cfg.num_threads = threads;
  cfg.batch = batch;
  return cfg;
}

// ---------------------------------------------------------------------------
// Per-sender FIFO through the coalescing flush.

/// Every rank streams sequence numbers at a handful of destinations; the
/// receiving handlers (serialized per rank by mailbox ownership) check
/// each sender's stream arrives in order. Coalescing buffers per
/// (worker, destination) and flushes whole batches, so this is the
/// property it must preserve.
void run_fifo_property(int threads) {
  constexpr RankId kRanks = 16;
  constexpr int kMessages = 64;
  // last_seen[dest][sender]: only dest's handlers touch row dest, and a
  // rank's handlers never run concurrently (single-consumer mailboxes),
  // so plain ints are race-free — the same discipline the LB protocol
  // state uses.
  auto last_seen = std::make_shared<std::vector<std::vector<int>>>(
      kRanks, std::vector<int>(kRanks, -1));
  std::atomic<int> violations{0};
  std::atomic<int> received{0};

  Runtime rt{config(kRanks, threads, /*batch=*/4)};
  for (int seq = 0; seq < kMessages; ++seq) {
    rt.post_all([last_seen, &violations, &received, seq](RankContext& ctx) {
      RankId const sender = ctx.rank();
      RankId const dest = (sender * 7 + seq) % 4; // few hot destinations
      ctx.send(dest, 16, [last_seen, &violations, &received, sender,
                          seq](RankContext& at) {
        int& last =
            (*last_seen)[static_cast<std::size_t>(at.rank())]
                        [static_cast<std::size_t>(sender)];
        if (seq <= last) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
        last = seq;
        received.fetch_add(1, std::memory_order_relaxed);
      });
    });
    rt.run_until_quiescent();
  }
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(received.load(), kRanks * kMessages);
}

TEST(MessagePlane, PerSenderFifoSequential) { run_fifo_property(1); }
TEST(MessagePlane, PerSenderFifoCoalescedThreaded) { run_fifo_property(4); }

/// Same property with all senders inside one quiescence epoch: a sender
/// fans a whole numbered stream at one destination from a single handler,
/// so the stream crosses the coalescing buffer as one batch.
TEST(MessagePlane, BurstFromOneHandlerStaysOrdered) {
  constexpr RankId kRanks = 8;
  constexpr int kBurst = 32;
  auto last_seen = std::make_shared<std::vector<std::vector<int>>>(
      kRanks, std::vector<int>(kRanks, -1));
  std::atomic<int> violations{0};

  Runtime rt{config(kRanks, 4, /*batch=*/4)};
  rt.post_all([last_seen, &violations](RankContext& ctx) {
    RankId const sender = ctx.rank();
    RankId const dest = (sender + 1) % ctx.num_ranks();
    for (int seq = 0; seq < kBurst; ++seq) {
      ctx.send(dest, 8, [last_seen, &violations, sender,
                         seq](RankContext& at) {
        int& last =
            (*last_seen)[static_cast<std::size_t>(at.rank())]
                        [static_cast<std::size_t>(sender)];
        if (seq != last + 1) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
        last = seq;
      });
    }
  });
  rt.run_until_quiescent();
  EXPECT_EQ(violations.load(), 0);
}

// ---------------------------------------------------------------------------
// Swap-drain mailbox versus a model FIFO.

Envelope tagged(int tag) {
  return Envelope{0, 0, static_cast<std::size_t>(tag), nullptr};
}

/// Random interleaving of every producer entry point (push, push_batch,
/// push_consumer) against pop_batch with random limits must match a plain
/// deque executing the same schedule.
TEST(MessagePlane, SwapDrainMatchesModelFifo) {
  Mailbox box;
  std::deque<int> model;
  std::vector<Envelope> out;
  Rng rng{0x5eedull};
  int next_tag = 0;
  for (int step = 0; step < 2000; ++step) {
    switch (rng.uniform_below(4)) {
    case 0: // single locked push
      box.push(tagged(next_tag));
      model.push_back(next_tag);
      ++next_tag;
      break;
    case 1: { // coalesced batch push
      std::vector<Envelope> batch;
      auto const n = 1 + rng.uniform_below(5);
      for (std::uint64_t i = 0; i < n; ++i) {
        batch.push_back(tagged(next_tag));
        model.push_back(next_tag);
        ++next_tag;
      }
      box.push_batch(batch);
      EXPECT_TRUE(batch.empty()); // consumed, capacity retained
      break;
    }
    case 2: // consumer-thread eager push
      box.push_consumer(tagged(next_tag));
      model.push_back(next_tag);
      ++next_tag;
      break;
    default: { // drain with a random batch limit
      auto const limit = rng.uniform_below(8);
      out.clear();
      auto const popped = box.pop_batch(out, limit);
      auto const expect =
          limit == 0 ? model.size()
                     : std::min<std::size_t>(limit, model.size());
      ASSERT_EQ(popped, expect);
      for (Envelope const& env : out) {
        ASSERT_FALSE(model.empty());
        EXPECT_EQ(env.bytes, static_cast<std::size_t>(model.front()));
        model.pop_front();
      }
      break;
    }
    }
    ASSERT_EQ(box.size(), model.size());
  }
  out.clear();
  box.pop_batch(out, 0);
  for (Envelope const& env : out) {
    EXPECT_EQ(env.bytes, static_cast<std::size_t>(model.front()));
    model.pop_front();
  }
  EXPECT_TRUE(model.empty());
  EXPECT_TRUE(box.empty());
}

TEST(MessagePlane, ConsumeBatchDeliversInFifoOrderWithLimit) {
  Mailbox box;
  for (int i = 0; i < 10; ++i) {
    box.push_consumer(tagged(i));
  }
  std::vector<std::size_t> seen;
  auto const record = [&seen](Envelope& env) { seen.push_back(env.bytes); };
  EXPECT_EQ(box.consume_batch(3, 0, false, nullptr, record), 3u);
  EXPECT_EQ(box.size(), 7u);
  EXPECT_EQ(box.consume_batch(0, 0, false, nullptr, record), 7u);
  ASSERT_EQ(seen.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(seen[i], i);
  }
  EXPECT_TRUE(box.empty());
}

/// Messages appended by a handler mid-visit (self-sends) must wait for
/// the next visit — exactly the semantics of the staged claim-then-run
/// drain the in-place path replaced.
TEST(MessagePlane, ConsumeBatchDefersSelfSendsToNextVisit) {
  Mailbox box;
  for (int i = 0; i < 4; ++i) {
    box.push_consumer(tagged(i));
  }
  std::vector<std::size_t> first_visit;
  auto const n = box.consume_batch(
      0, 0, false, nullptr, [&box, &first_visit](Envelope& env) {
        first_visit.push_back(env.bytes);
        box.push_consumer(tagged(static_cast<int>(env.bytes) + 100));
      });
  EXPECT_EQ(n, 4u);
  ASSERT_EQ(first_visit.size(), 4u);
  EXPECT_EQ(first_visit.back(), 3u);
  EXPECT_EQ(box.size(), 4u); // the self-sends, still pending

  std::vector<std::size_t> second_visit;
  box.consume_batch(0, 0, false, nullptr, [&second_visit](Envelope& env) {
    second_visit.push_back(env.bytes);
  });
  ASSERT_EQ(second_visit.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(second_visit[i], 100 + i);
  }
}

TEST(MessagePlane, ConsumeBatchReleasesDueDelayedBeforeHandlers) {
  Mailbox box;
  box.push_delayed(tagged(7), /*due=*/5);
  box.push_consumer(tagged(1));
  std::vector<std::size_t> seen;
  auto const record = [&seen](Envelope& env) { seen.push_back(env.bytes); };

  std::size_t released = 0;
  // Visit before the due poll: the delayed message stays parked.
  EXPECT_EQ(box.consume_batch(0, 4, true, &released, record), 1u);
  EXPECT_EQ(released, 0u);
  // Visit at the due poll: released first, then delivered this visit.
  released = 0;
  EXPECT_EQ(box.consume_batch(0, 5, true, &released, record), 1u);
  EXPECT_EQ(released, 1u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 1u);
  EXPECT_EQ(seen[1], 7u);
  EXPECT_TRUE(box.empty());
}

// ---------------------------------------------------------------------------
// Work stealing: results (not ordering) are invariant across workers.

constexpr int kFanout = 2;
constexpr int kTtl = 5;

struct FanOut {
  std::atomic<std::uint64_t>* executed;

  void run(RankContext& ctx, int ttl) const {
    executed->fetch_add(1, std::memory_order_relaxed);
    if (ttl == 0) {
      return;
    }
    for (int i = 0; i < kFanout; ++i) {
      auto const to = static_cast<RankId>(ctx.rng().uniform_below(
          static_cast<std::uint64_t>(ctx.num_ranks())));
      FanOut self = *this;
      ctx.send(to, 16, [self, ttl](RankContext& dest) {
        self.run(dest, ttl - 1);
      });
    }
  }
};

std::uint64_t run_fanout(RankId ranks, int threads) {
  std::atomic<std::uint64_t> executed{0};
  Runtime rt{config(ranks, threads, /*batch=*/4)};
  rt.post_all(
      [&executed](RankContext& ctx) { FanOut{&executed}.run(ctx, kTtl); });
  EXPECT_TRUE(rt.run_until_quiescent());
  return executed.load();
}

TEST(MessagePlane, WorkStealingResultsMatchSequential) {
  constexpr RankId kRanks = 24;
  auto const expected = static_cast<std::uint64_t>(kRanks) *
                        ((std::uint64_t{1} << (kTtl + 1)) - 1);
  EXPECT_EQ(run_fanout(kRanks, 1), expected);
  for (int threads : {2, 4, 8}) {
    EXPECT_EQ(run_fanout(kRanks, threads), expected)
        << "threads=" << threads;
    // Repeatability at a fixed worker count: totals are exact, every run.
    EXPECT_EQ(run_fanout(kRanks, threads), expected)
        << "threads=" << threads;
  }
}

/// Regression for the shard partitioning: the old driver rounded
/// ranks_per_worker up, leaving the tail worker rank-less in some
/// configurations. Every (P, workers) combination below exercises a
/// remainder; the exact accounting proves every rank is owned, drained,
/// and quiesced.
TEST(MessagePlane, RankPartitioningHandlesIndivisibleCounts) {
  std::vector<std::pair<RankId, int>> const cases{
      {7, 4}, {13, 8}, {9, 2}, {3, 8}, {5, 3}};
  for (auto const& [ranks, threads] : cases) {
    auto const expected = static_cast<std::uint64_t>(ranks) *
                          ((std::uint64_t{1} << (kTtl + 1)) - 1);
    EXPECT_EQ(run_fanout(ranks, threads), expected)
        << "ranks=" << ranks << " threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Zero heap fallbacks across the real protocol stack.

class Chunk final : public Migratable {
public:
  explicit Chunk(std::size_t bytes) : bytes_{bytes} {}
  [[nodiscard]] std::size_t wire_bytes() const override { return bytes_; }

private:
  std::size_t bytes_;
};

/// Every closure the gossip, transfer, migration, and termination
/// protocols put on the wire must fit the envelope's inline buffer: one
/// heap fallback per message is precisely the allocation profile this
/// plane was rebuilt to eliminate, so the counter is a hard zero here.
void run_protocol_stack(int threads) {
  RuntimeConfig cfg;
  cfg.num_ranks = 32;
  cfg.num_threads = threads;
  Runtime rt{cfg};
  ObjectStore store{32};
  lb::StrategyInput input;
  input.tasks.resize(32);
  Rng rng{7};
  for (TaskId i = 0; i < 200; ++i) {
    input.tasks[static_cast<std::size_t>(i % 4)].push_back(
        {i, rng.uniform(0.5, 1.5)});
    store.create(static_cast<RankId>(i % 4), i,
                 std::make_unique<Chunk>(64));
  }

  InlineHandler::reset_heap_fallback_count();
  auto params = lb::LbParams::tempered();
  params.num_trials = 2;
  params.num_iterations = 3;
  params.rounds = 6;
  lb::LbManager manager{rt, "tempered", params};
  auto const report = manager.invoke(input, store);
  EXPECT_GT(report.cost.migration_count, 0u); // migration plane exercised

  // Termination-detection waves ride the same envelopes.
  TerminationDetector det{rt};
  det.post(0, [&det](RankContext& ctx) {
    for (RankId r = 0; r < ctx.num_ranks(); ++r) {
      det.send(ctx, r, 8, [](RankContext&) {});
    }
  });
  det.start();
  rt.run_until_quiescent();
  EXPECT_TRUE(det.terminated());

  EXPECT_EQ(InlineHandler::heap_fallback_count(), 0u);
}

TEST(MessagePlane, ProtocolStackNeverHitsHeapFallbackSequential) {
  run_protocol_stack(1);
}
TEST(MessagePlane, ProtocolStackNeverHitsHeapFallbackThreaded) {
  run_protocol_stack(4);
}

} // namespace
} // namespace tlb::rt
