#include "runtime/termination.hpp"

#include <gtest/gtest.h>

#include <atomic>

namespace tlb::rt {
namespace {

RuntimeConfig config(RankId ranks, int threads = 1) {
  RuntimeConfig cfg;
  cfg.num_ranks = ranks;
  cfg.num_threads = threads;
  return cfg;
}

TEST(Termination, DetectsQuiescenceWithNoActivity) {
  Runtime rt{config(4)};
  TerminationDetector det{rt};
  det.start();
  rt.run_until_quiescent();
  EXPECT_TRUE(det.terminated());
  EXPECT_EQ(det.certified_count(), 0);
  EXPECT_GE(det.waves(), 2u); // needs two stable waves
}

TEST(Termination, CountsSimpleExchange) {
  Runtime rt{config(4)};
  TerminationDetector det{rt};
  det.post(0, [&det](RankContext& ctx) {
    det.send(ctx, 1, 8, [](RankContext&) {});
    det.send(ctx, 2, 8, [](RankContext&) {});
  });
  det.start();
  rt.run_until_quiescent();
  EXPECT_TRUE(det.terminated());
  // 1 posted + 2 sends.
  EXPECT_EQ(det.certified_count(), 3);
}

TEST(Termination, CertifiesCascade) {
  constexpr RankId p = 8;
  Runtime rt{config(p)};
  TerminationDetector det{rt};
  // A fan-out cascade: each message spawns two more until depth 5.
  std::function<void(RankContext&, int)> spawn =
      [&](RankContext& ctx, int depth) {
        if (depth == 0) {
          return;
        }
        for (int i = 0; i < 2; ++i) {
          auto const dest = static_cast<RankId>(
              ctx.rng().uniform_below(static_cast<std::uint64_t>(p)));
          det.send(ctx, dest, 4, [&spawn, depth](RankContext& c) {
            spawn(c, depth - 1);
          });
        }
      };
  det.post(0, [&spawn](RankContext& ctx) { spawn(ctx, 5); });
  det.start();
  rt.run_until_quiescent();
  EXPECT_TRUE(det.terminated());
  // 1 post + 2 + 4 + ... + 2^5 = 1 + 62.
  EXPECT_EQ(det.certified_count(), 1 + 2 + 4 + 8 + 16 + 32);
}

TEST(Termination, AgreesWithRuntimeGroundTruth) {
  // The runtime's in-flight counter is exact; after run_until_quiescent
  // the detector must have certified (the detector's waves are messages,
  // so the run cannot end before the detector concludes).
  Runtime rt{config(6)};
  TerminationDetector det{rt};
  std::atomic<int> processed{0};
  for (RankId r = 0; r < 6; ++r) {
    det.post(r, [&det, &processed](RankContext& ctx) {
      ++processed;
      if (ctx.rank() % 2 == 0) {
        det.send(ctx, (ctx.rank() + 1) % ctx.num_ranks(), 4,
                 [&processed](RankContext&) { ++processed; });
      }
    });
  }
  det.start();
  rt.run_until_quiescent();
  EXPECT_TRUE(det.terminated());
  EXPECT_EQ(det.certified_count(), processed.load());
}

TEST(Termination, WaveBudgetStopsCirculation) {
  Runtime rt{config(4)};
  TerminationDetector det{rt, /*wave_budget=*/1};
  det.start();
  rt.run_until_quiescent();
  // One wave is never sufficient for the four-counter condition.
  EXPECT_FALSE(det.terminated());
  EXPECT_EQ(det.waves(), 1u);
}

TEST(Termination, ThreadedRuntime) {
  Runtime rt{config(16, 4)};
  TerminationDetector det{rt};
  std::atomic<int> count{0};
  for (RankId r = 0; r < 16; ++r) {
    det.post(r, [&det, &count](RankContext& ctx) {
      for (int i = 0; i < 4; ++i) {
        auto const dest = static_cast<RankId>(
            ctx.rng().uniform_below(16));
        det.send(ctx, dest, 4, [&count](RankContext&) { ++count; });
      }
    });
  }
  det.start();
  rt.run_until_quiescent();
  EXPECT_TRUE(det.terminated());
  EXPECT_EQ(det.certified_count(), 16 + count.load());
}

TEST(Termination, SingleRank) {
  Runtime rt{config(1)};
  TerminationDetector det{rt};
  det.post(0, [&det](RankContext& ctx) {
    det.send(ctx, 0, 1, [](RankContext&) {});
  });
  det.start();
  rt.run_until_quiescent();
  EXPECT_TRUE(det.terminated());
  EXPECT_EQ(det.certified_count(), 2);
}

} // namespace
} // namespace tlb::rt
