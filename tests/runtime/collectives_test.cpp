#include "runtime/collectives.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace tlb::rt {
namespace {

RuntimeConfig config(RankId ranks, int threads = 1) {
  RuntimeConfig cfg;
  cfg.num_ranks = ranks;
  cfg.num_threads = threads;
  return cfg;
}

TEST(Allreduce, SumAcrossRanks) {
  Runtime rt{config(8)};
  std::vector<int> contributions(8);
  std::iota(contributions.begin(), contributions.end(), 1); // 1..8
  auto const results =
      allreduce(rt, contributions, [](int a, int b) { return a + b; });
  ASSERT_EQ(results.size(), 8u);
  for (int const r : results) {
    EXPECT_EQ(r, 36);
  }
}

TEST(Allreduce, MaxAcrossRanks) {
  Runtime rt{config(5)};
  std::vector<double> const contributions{1.0, 9.0, 3.0, 7.0, 2.0};
  auto const results = allreduce(
      rt, contributions, [](double a, double b) { return std::max(a, b); });
  for (double const r : results) {
    EXPECT_DOUBLE_EQ(r, 9.0);
  }
}

TEST(Allreduce, SingleRank) {
  Runtime rt{config(1)};
  auto const results =
      allreduce(rt, std::vector<int>{42}, [](int a, int b) { return a + b; });
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], 42);
}

TEST(Allreduce, NonPowerOfTwoRankCounts) {
  for (RankId p : {2, 3, 6, 7, 13, 31}) {
    Runtime rt{config(p)};
    std::vector<long long> contributions(static_cast<std::size_t>(p), 1);
    auto const results = allreduce(
        rt, contributions, [](long long a, long long b) { return a + b; });
    for (auto const r : results) {
      EXPECT_EQ(r, p);
    }
  }
}

TEST(Allreduce, MessageCountIsTwoPMinusTwo) {
  Runtime rt{config(16)};
  rt.reset_stats();
  std::vector<int> const contributions(16, 1);
  (void)allreduce(rt, contributions, [](int a, int b) { return a + b; });
  // P posts (driver injection) + (P-1) up + (P-1) down.
  EXPECT_EQ(rt.stats().messages, 16u + 15u + 15u);
}

TEST(AllreduceLoads, ComputesMaxSumCount) {
  Runtime rt{config(4)};
  std::vector<LoadType> const loads{1.0, 4.0, 2.0, 3.0};
  auto const stats = allreduce_loads(rt, loads);
  for (auto const& s : stats) {
    EXPECT_DOUBLE_EQ(s.max, 4.0);
    EXPECT_DOUBLE_EQ(s.sum, 10.0);
    EXPECT_EQ(s.count, 4);
    EXPECT_DOUBLE_EQ(s.average(), 2.5);
  }
}

TEST(AllreduceLoads, ZeroLoads) {
  Runtime rt{config(3)};
  std::vector<LoadType> const loads{0.0, 0.0, 0.0};
  auto const stats = allreduce_loads(rt, loads);
  EXPECT_DOUBLE_EQ(stats[0].max, 0.0);
  EXPECT_DOUBLE_EQ(stats[0].average(), 0.0);
}

TEST(Allreduce, ThreadedMatchesSequential) {
  std::vector<double> contributions;
  for (int i = 0; i < 24; ++i) {
    contributions.push_back(static_cast<double>(i * i));
  }
  Runtime seq{config(24, 1)};
  Runtime thr{config(24, 4)};
  auto const op = [](double a, double b) { return a + b; };
  auto const a = allreduce(seq, contributions, op);
  auto const b = allreduce(thr, contributions, op);
  EXPECT_DOUBLE_EQ(a[0], b[0]);
  EXPECT_DOUBLE_EQ(a[0], a[23]);
}

TEST(Barrier, Completes) {
  Runtime rt{config(9, 2)};
  barrier(rt);
  barrier(rt);
  SUCCEED();
}

TEST(LoadStat, CombineIsAssociativeOnSamples) {
  LoadStat const a = LoadStat::of(1.0);
  LoadStat const b = LoadStat::of(5.0);
  LoadStat const c = LoadStat::of(3.0);
  auto const left = combine(combine(a, b), c);
  auto const right = combine(a, combine(b, c));
  EXPECT_DOUBLE_EQ(left.max, right.max);
  EXPECT_DOUBLE_EQ(left.sum, right.sum);
  EXPECT_EQ(left.count, right.count);
}

} // namespace
} // namespace tlb::rt
