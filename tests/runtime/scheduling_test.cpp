/// Scheduler-policy semantics: the batch size (fairness knob) affects
/// interleaving but never the quiescent outcome of a well-formed
/// protocol; the sequential driver is deterministic for any fixed config.

#include <gtest/gtest.h>

#include "runtime/collectives.hpp"
#include "runtime/runtime.hpp"

namespace tlb::rt {
namespace {

/// A protocol whose result is order-independent: every rank accumulates
/// the ids of senders that reached it through two hops.
std::vector<std::int64_t> run_protocol(int batch) {
  RuntimeConfig cfg;
  cfg.num_ranks = 12;
  cfg.batch = batch;
  Runtime rt{cfg};
  std::vector<std::int64_t> sums(12, 0);
  rt.post_all([&sums](RankContext& ctx) {
    for (RankId hop = 0; hop < ctx.num_ranks(); hop += 3) {
      auto const origin = ctx.rank();
      ctx.send(hop, 4, [&sums, origin](RankContext& mid) {
        RankId const dest = (mid.rank() + 1) % mid.num_ranks();
        mid.send(dest, 4, [&sums, origin](RankContext& final_ctx) {
          sums[static_cast<std::size_t>(final_ctx.rank())] += origin;
        });
      });
    }
  });
  rt.run_until_quiescent();
  return sums;
}

TEST(Scheduling, BatchSizeDoesNotChangeQuiescentState) {
  auto const a = run_protocol(1);
  auto const b = run_protocol(4);
  auto const c = run_protocol(64);
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
}

TEST(Scheduling, AllreduceAgreesAcrossBatchSizes) {
  for (int batch : {1, 7, 128}) {
    RuntimeConfig cfg;
    cfg.num_ranks = 9;
    cfg.batch = batch;
    Runtime rt{cfg};
    std::vector<double> const loads{1, 2, 3, 4, 5, 6, 7, 8, 9};
    auto const stats = allreduce_loads(rt, loads);
    EXPECT_DOUBLE_EQ(stats[0].sum, 45.0);
    EXPECT_DOUBLE_EQ(stats[0].max, 9.0);
  }
}

TEST(Scheduling, SelfSendsProcessedInOrder) {
  RuntimeConfig cfg;
  cfg.num_ranks = 1;
  Runtime rt{cfg};
  std::vector<int> order;
  rt.post(0, [&order](RankContext& ctx) {
    order.push_back(0);
    ctx.send(0, 0, [&order](RankContext& c) {
      order.push_back(1);
      c.send(0, 0, [&order](RankContext&) { order.push_back(2); });
    });
    ctx.send(0, 0, [&order](RankContext&) { order.push_back(3); });
  });
  rt.run_until_quiescent();
  // FIFO per mailbox: 0's sends (1 then 3) drain in order, then 1's
  // nested send (2).
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 3);
  EXPECT_EQ(order[3], 2);
}

TEST(SchedulingDeath, NonPositiveBatchAborts) {
  RuntimeConfig cfg;
  cfg.num_ranks = 1;
  cfg.batch = 0;
  EXPECT_DEATH(Runtime{cfg}, "precondition");
}

} // namespace
} // namespace tlb::rt
