#include "runtime/serialize.hpp"

#include <gtest/gtest.h>

#include "lb/knowledge.hpp"
#include "support/rng.hpp"

namespace tlb::rt {
namespace {

TEST(Serialize, ScalarRoundTrip) {
  Packer p;
  p.pack(42);
  p.pack(3.25);
  p.pack(std::int64_t{-7});
  Unpacker u{p.bytes()};
  EXPECT_EQ(u.unpack<int>(), 42);
  EXPECT_DOUBLE_EQ(u.unpack<double>(), 3.25);
  EXPECT_EQ(u.unpack<std::int64_t>(), -7);
  EXPECT_TRUE(u.exhausted());
}

TEST(Serialize, VectorRoundTrip) {
  Packer p;
  std::vector<double> const values{1.0, -2.5, 1e300};
  p.pack(values);
  Unpacker u{p.bytes()};
  EXPECT_EQ(u.unpack_vector<double>(), values);
  EXPECT_TRUE(u.exhausted());
}

TEST(Serialize, EmptyVector) {
  Packer p;
  p.pack(std::vector<int>{});
  Unpacker u{p.bytes()};
  EXPECT_TRUE(u.unpack_vector<int>().empty());
  EXPECT_TRUE(u.exhausted());
}

TEST(Serialize, StringRoundTrip) {
  Packer p;
  p.pack(std::string{"hello\0world", 11});
  p.pack(std::string{});
  Unpacker u{p.bytes()};
  EXPECT_EQ(u.unpack_string(), (std::string{"hello\0world", 11}));
  EXPECT_EQ(u.unpack_string(), "");
  EXPECT_TRUE(u.exhausted());
}

struct Pod {
  int a;
  double b;
  friend bool operator==(Pod const&, Pod const&) = default;
};

TEST(Serialize, MixedSequencePreservesOrder) {
  Packer p;
  p.pack(Pod{1, 2.0});
  p.pack(std::vector<int>{3, 4});
  p.pack(std::string{"x"});
  p.pack(Pod{5, 6.0});
  Unpacker u{p.bytes()};
  EXPECT_EQ(u.unpack<Pod>(), (Pod{1, 2.0}));
  EXPECT_EQ(u.unpack_vector<int>(), (std::vector<int>{3, 4}));
  EXPECT_EQ(u.unpack_string(), "x");
  EXPECT_EQ(u.unpack<Pod>(), (Pod{5, 6.0}));
  EXPECT_TRUE(u.exhausted());
}

TEST(Serialize, ConsumedTracksOffset) {
  Packer p;
  p.pack(std::uint32_t{1});
  Unpacker u{p.bytes()};
  EXPECT_EQ(u.consumed(), 0u);
  (void)u.unpack<std::uint32_t>();
  EXPECT_EQ(u.consumed(), 4u);
}

TEST(Serialize, TakeMovesBuffer) {
  Packer p;
  p.pack(7);
  auto const bytes = std::move(p).take();
  EXPECT_EQ(bytes.size(), sizeof(int));
}

TEST(SerializeDeath, UnderflowAborts) {
  Packer p;
  p.pack(std::uint16_t{1});
  Unpacker u{p.bytes()};
  EXPECT_DEATH((void)u.unpack<std::uint64_t>(), "precondition");
}

TEST(SerializeDeath, TruncatedVectorAborts) {
  Packer p;
  p.pack(std::uint64_t{1000}); // lie: claims 1000 elements, provides none
  Unpacker u{p.bytes()};
  EXPECT_DEATH((void)u.unpack_vector<double>(), "precondition");
}

TEST(SerializeKnowledge, RoundTripPreservesEntries) {
  lb::Knowledge k;
  Rng rng{5};
  for (int i = 0; i < 40; ++i) {
    k.insert(static_cast<RankId>(i * 3), rng.uniform(0.0, 2.0));
  }
  Packer p;
  k.pack(p);
  // The packed size is the wire estimate plus the length prefix.
  EXPECT_EQ(p.size(), k.wire_bytes() + sizeof(std::uint64_t));
  Unpacker u{p.bytes()};
  auto const back = lb::Knowledge::unpack(u);
  EXPECT_TRUE(u.exhausted());
  ASSERT_EQ(back.size(), k.size());
  for (auto const& e : k.entries()) {
    ASSERT_TRUE(back.contains(e.rank));
    EXPECT_DOUBLE_EQ(back.load_of(e.rank), e.load);
  }
}

TEST(SerializeKnowledge, EmptyKnowledge) {
  lb::Knowledge const k;
  Packer p;
  k.pack(p);
  Unpacker u{p.bytes()};
  EXPECT_TRUE(lb::Knowledge::unpack(u).empty());
}

} // namespace
} // namespace tlb::rt
