#include "runtime/serialize.hpp"

#include <gtest/gtest.h>

#include "lb/knowledge.hpp"
#include "support/rng.hpp"

namespace tlb::rt {
namespace {

TEST(Serialize, ScalarRoundTrip) {
  Packer p;
  p.pack(42);
  p.pack(3.25);
  p.pack(std::int64_t{-7});
  Unpacker u{p.bytes()};
  EXPECT_EQ(u.unpack<int>(), 42);
  EXPECT_DOUBLE_EQ(u.unpack<double>(), 3.25);
  EXPECT_EQ(u.unpack<std::int64_t>(), -7);
  EXPECT_TRUE(u.exhausted());
}

TEST(Serialize, VectorRoundTrip) {
  Packer p;
  std::vector<double> const values{1.0, -2.5, 1e300};
  p.pack(values);
  Unpacker u{p.bytes()};
  EXPECT_EQ(u.unpack_vector<double>(), values);
  EXPECT_TRUE(u.exhausted());
}

TEST(Serialize, EmptyVector) {
  Packer p;
  p.pack(std::vector<int>{});
  Unpacker u{p.bytes()};
  EXPECT_TRUE(u.unpack_vector<int>().empty());
  EXPECT_TRUE(u.exhausted());
}

TEST(Serialize, StringRoundTrip) {
  Packer p;
  p.pack(std::string{"hello\0world", 11});
  p.pack(std::string{});
  Unpacker u{p.bytes()};
  EXPECT_EQ(u.unpack_string(), (std::string{"hello\0world", 11}));
  EXPECT_EQ(u.unpack_string(), "");
  EXPECT_TRUE(u.exhausted());
}

struct Pod {
  int a;
  double b;
  friend bool operator==(Pod const&, Pod const&) = default;
};

TEST(Serialize, MixedSequencePreservesOrder) {
  Packer p;
  p.pack(Pod{1, 2.0});
  p.pack(std::vector<int>{3, 4});
  p.pack(std::string{"x"});
  p.pack(Pod{5, 6.0});
  Unpacker u{p.bytes()};
  EXPECT_EQ(u.unpack<Pod>(), (Pod{1, 2.0}));
  EXPECT_EQ(u.unpack_vector<int>(), (std::vector<int>{3, 4}));
  EXPECT_EQ(u.unpack_string(), "x");
  EXPECT_EQ(u.unpack<Pod>(), (Pod{5, 6.0}));
  EXPECT_TRUE(u.exhausted());
}

TEST(Serialize, ConsumedTracksOffset) {
  Packer p;
  p.pack(std::uint32_t{1});
  Unpacker u{p.bytes()};
  EXPECT_EQ(u.consumed(), 0u);
  (void)u.unpack<std::uint32_t>();
  EXPECT_EQ(u.consumed(), 4u);
}

TEST(Serialize, TakeMovesBuffer) {
  Packer p;
  p.pack(7);
  auto const bytes = std::move(p).take();
  EXPECT_EQ(bytes.size(), sizeof(int));
}

TEST(SerializeDeath, UnderflowAborts) {
  Packer p;
  p.pack(std::uint16_t{1});
  Unpacker u{p.bytes()};
  EXPECT_DEATH((void)u.unpack<std::uint64_t>(), "precondition");
}

TEST(SerializeDeath, TruncatedVectorAborts) {
  Packer p;
  p.pack(std::uint64_t{1000}); // lie: claims 1000 elements, provides none
  Unpacker u{p.bytes()};
  EXPECT_DEATH((void)u.unpack_vector<double>(), "precondition");
}

TEST(SerializeVarint, RoundTripsRepresentativeAndBoundaryValues) {
  // Every 7-bit length boundary on both sides, plus interior values.
  std::vector<std::uint64_t> values{0, 1, 100, 127, 128, 300, 16383, 16384,
                                    (1ull << 21) - 1, 1ull << 21,
                                    (1ull << 32) - 1, 1ull << 32,
                                    (1ull << 56) - 1, 1ull << 56,
                                    (1ull << 63) - 1, 1ull << 63,
                                    ~std::uint64_t{0}};
  Packer p;
  std::size_t expected_size = 0;
  for (auto const v : values) {
    p.pack_varint(v);
    expected_size += varint_size(v);
  }
  // The emitted bytes and the size function must agree per value.
  EXPECT_EQ(p.size(), expected_size);
  Unpacker u{p.bytes()};
  for (auto const v : values) {
    EXPECT_EQ(u.unpack_varint(), v);
  }
  EXPECT_TRUE(u.exhausted());
}

TEST(SerializeVarint, SizeFunctionMatchesLengthBoundaries) {
  EXPECT_EQ(varint_size(0), 1u);
  EXPECT_EQ(varint_size(127), 1u);
  EXPECT_EQ(varint_size(128), 2u);
  EXPECT_EQ(varint_size(16383), 2u);
  EXPECT_EQ(varint_size(16384), 3u);
  EXPECT_EQ(varint_size(~std::uint64_t{0}), 10u);
}

TEST(SerializeVarintDeath, OverflowingEncodingAborts) {
  // 10 continuation bytes with payload bits beyond bit 63.
  Packer p;
  for (int i = 0; i < 9; ++i) {
    p.pack(static_cast<std::uint8_t>(0xff));
  }
  p.pack(static_cast<std::uint8_t>(0x7f)); // final byte: payload too large
  Unpacker u{p.bytes()};
  EXPECT_DEATH((void)u.unpack_varint(), "precondition");
}

TEST(SerializeScratch, ScratchPackerReusesCapacityAndKeepsBytes) {
  std::vector<std::byte> scratch;
  {
    Packer p{scratch};
    p.pack(std::uint64_t{41});
    EXPECT_EQ(scratch.size(), sizeof(std::uint64_t));
  }
  auto const cap = scratch.capacity();
  auto const* data = scratch.data();
  {
    Packer p{scratch}; // clears but keeps capacity
    EXPECT_EQ(p.size(), 0u);
    p.pack(std::uint32_t{7});
    Unpacker u{p.bytes()};
    EXPECT_EQ(u.unpack<std::uint32_t>(), 7u);
  }
  EXPECT_EQ(scratch.capacity(), cap);
  EXPECT_EQ(scratch.data(), data); // no reallocation happened
}

TEST(SerializeScratchDeath, TakeFromScratchPackerAborts) {
  std::vector<std::byte> scratch;
  Packer p{scratch};
  p.pack(1);
  EXPECT_DEATH((void)std::move(p).take(), "precondition");
}

TEST(SnapshotPoolTest, RecyclesSlotsOnceReleased) {
  SnapshotPool pool;
  auto a = pool.acquire();
  a->bytes.resize(64);
  auto b = pool.acquire(); // `a` still held: must be a distinct slot
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(pool.size(), 2u);
  auto const* recycled = a.get();
  a.reset();
  auto c = pool.acquire(); // `a` released: its slot comes back, cleared...
  EXPECT_EQ(c.get(), recycled);
  EXPECT_TRUE(c->bytes.empty());
  EXPECT_GE(c->bytes.capacity(), 64u); // ...with its capacity intact
  EXPECT_EQ(pool.size(), 2u);          // steady state: no new slots
}

TEST(SerializeKnowledge, RoundTripPreservesEntries) {
  lb::Knowledge k;
  Rng rng{5};
  for (int i = 0; i < 40; ++i) {
    k.insert(static_cast<RankId>(i * 3), rng.uniform(0.0, 2.0));
  }
  Packer p;
  k.pack_full(p);
  // Byte accounting and serializer share one size function: exact match.
  EXPECT_EQ(p.size(), k.wire_bytes());
  Unpacker u{p.bytes()};
  auto const back = lb::Knowledge::unpack(u);
  EXPECT_TRUE(u.exhausted());
  ASSERT_EQ(back.size(), k.size());
  for (auto const& e : k.entries()) {
    ASSERT_TRUE(back.contains(e.rank));
    EXPECT_DOUBLE_EQ(back.load_of(e.rank), e.load);
  }
}

TEST(SerializeKnowledge, CompactEncodingBeatsTheOldStructCopy) {
  // 256 dense small-id entries: delta-varint ids cost 1 byte each, so the
  // whole message sits near 9 bytes/entry against the old 16 (struct
  // padding included) plus its 8-byte length prefix.
  lb::Knowledge k;
  for (RankId r = 0; r < 256; ++r) {
    k.insert(r, 1.0);
  }
  std::size_t const old_format = 256 * sizeof(lb::KnownRank) + 8;
  EXPECT_LT(k.wire_bytes(), old_format * 3 / 5);
}

TEST(SerializeKnowledge, EmptyKnowledge) {
  lb::Knowledge const k;
  Packer p;
  k.pack_full(p);
  EXPECT_EQ(p.size(), k.wire_bytes());
  Unpacker u{p.bytes()};
  EXPECT_TRUE(lb::Knowledge::unpack(u).empty());
}

TEST(SerializeKnowledge, UnpackIntoReplacesContentsWithoutReallocating) {
  lb::Knowledge big;
  for (RankId r = 0; r < 100; ++r) {
    big.insert(r, 0.5);
  }
  Packer p;
  big.pack_full(p);

  lb::Knowledge inbox = [] {
    lb::Knowledge k;
    for (RankId r = 0; r < 200; ++r) {
      k.insert(r, 1.0); // pre-grow capacity past the incoming size
    }
    return k;
  }();
  Unpacker u{p.bytes()};
  inbox.unpack_into(u);
  EXPECT_TRUE(u.exhausted());
  ASSERT_EQ(inbox.size(), 100u);
  for (RankId r = 0; r < 100; ++r) {
    EXPECT_DOUBLE_EQ(inbox.load_of(r), 0.5);
  }
}

} // namespace
} // namespace tlb::rt
