#include "runtime/phase.hpp"

#include <gtest/gtest.h>

namespace tlb::rt {
namespace {

TEST(Phase, StartsAtZero) {
  PhaseInstrumentation inst{2};
  EXPECT_EQ(inst.phase(), 0u);
  EXPECT_TRUE(inst.previous_tasks(0).empty());
}

TEST(Phase, RecordAccumulatesPerTask) {
  PhaseInstrumentation inst{2};
  inst.record(0, 10, 1.5);
  inst.record(0, 10, 0.5); // same task, accumulates
  inst.record(0, 11, 2.0);
  auto const tasks = inst.current_tasks(0);
  ASSERT_EQ(tasks.size(), 2u);
  EXPECT_EQ(tasks[0].id, 10);
  EXPECT_DOUBLE_EQ(tasks[0].load, 2.0);
  EXPECT_EQ(tasks[1].id, 11);
  EXPECT_DOUBLE_EQ(tasks[1].load, 2.0);
}

TEST(Phase, StartPhaseArchivesCurrentAsPrevious) {
  PhaseInstrumentation inst{2};
  inst.record(0, 1, 3.0);
  inst.record(1, 2, 4.0);
  inst.start_phase();
  EXPECT_EQ(inst.phase(), 1u);
  EXPECT_TRUE(inst.current_tasks(0).empty());
  auto const prev0 = inst.previous_tasks(0);
  ASSERT_EQ(prev0.size(), 1u);
  EXPECT_DOUBLE_EQ(prev0[0].load, 3.0);
  auto const loads = inst.previous_rank_loads();
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_DOUBLE_EQ(loads[0], 3.0);
  EXPECT_DOUBLE_EQ(loads[1], 4.0);
}

TEST(Phase, TwoPhaseHistoryWindow) {
  PhaseInstrumentation inst{1};
  inst.record(0, 1, 1.0);
  inst.start_phase(); // phase 1: previous has load 1.0
  inst.record(0, 1, 9.0);
  inst.start_phase(); // phase 2: previous has load 9.0
  auto const prev = inst.previous_tasks(0);
  ASSERT_EQ(prev.size(), 1u);
  EXPECT_DOUBLE_EQ(prev[0].load, 9.0);
}

TEST(Phase, TaskDisappearsWhenNotRecorded) {
  PhaseInstrumentation inst{1};
  inst.record(0, 1, 1.0);
  inst.record(0, 2, 2.0);
  inst.start_phase();
  inst.record(0, 1, 1.0); // task 2 idle this phase
  inst.start_phase();
  auto const prev = inst.previous_tasks(0);
  ASSERT_EQ(prev.size(), 1u);
  EXPECT_EQ(prev[0].id, 1);
}

TEST(PhaseDeath, NegativeLoadAborts) {
  PhaseInstrumentation inst{1};
  EXPECT_DEATH(inst.record(0, 1, -1.0), "precondition");
}

TEST(PhaseDeath, BadRankAborts) {
  PhaseInstrumentation inst{1};
  EXPECT_DEATH(inst.record(3, 1, 1.0), "precondition");
}

} // namespace
} // namespace tlb::rt
