#include "runtime/runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace tlb::rt {
namespace {

RuntimeConfig seq_config(RankId ranks) {
  RuntimeConfig cfg;
  cfg.num_ranks = ranks;
  cfg.num_threads = 1;
  return cfg;
}

RuntimeConfig threaded_config(RankId ranks, int threads) {
  RuntimeConfig cfg;
  cfg.num_ranks = ranks;
  cfg.num_threads = threads;
  return cfg;
}

TEST(Runtime, PostRunsOnTargetRank) {
  Runtime rt{seq_config(4)};
  std::vector<int> hits(4, 0);
  for (RankId r = 0; r < 4; ++r) {
    rt.post(r, [&hits](RankContext& ctx) {
      ++hits[static_cast<std::size_t>(ctx.rank())];
    });
  }
  rt.run_until_quiescent();
  for (int const h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(Runtime, PostAllReachesEveryRank) {
  Runtime rt{seq_config(7)};
  std::atomic<int> count{0};
  rt.post_all([&count](RankContext&) { ++count; });
  rt.run_until_quiescent();
  EXPECT_EQ(count.load(), 7);
}

TEST(Runtime, HandlersCanSendCascades) {
  // A chain 0 -> 1 -> 2 -> ... -> P-1, each hop sending the next message.
  constexpr RankId p = 16;
  Runtime rt{seq_config(p)};
  std::vector<int> visited(p, 0);

  std::function<void(RankContext&)> hop = [&](RankContext& ctx) {
    ++visited[static_cast<std::size_t>(ctx.rank())];
    if (ctx.rank() + 1 < ctx.num_ranks()) {
      ctx.send(ctx.rank() + 1, 8, hop);
    }
  };
  rt.post(0, hop);
  rt.run_until_quiescent();
  for (int const v : visited) {
    EXPECT_EQ(v, 1);
  }
}

TEST(Runtime, QuiescenceMeansNoPendingWork) {
  Runtime rt{seq_config(3)};
  rt.post(0, [](RankContext& ctx) {
    ctx.send(1, 0, [](RankContext& c) {
      c.send(2, 0, [](RankContext&) {});
    });
  });
  rt.run_until_quiescent();
  // A second run with nothing posted must return immediately.
  rt.run_until_quiescent();
  SUCCEED();
}

TEST(Runtime, StatsCountMessagesAndBytes) {
  Runtime rt{seq_config(2)};
  rt.reset_stats();
  rt.post(0, [](RankContext& ctx) {
    ctx.send(1, 100, [](RankContext&) {});
    ctx.send(1, 50, [](RankContext&) {});
  });
  rt.run_until_quiescent();
  auto const s = rt.stats();
  EXPECT_EQ(s.messages, 3u); // the post + two sends
  EXPECT_EQ(s.bytes, 150u);
}

TEST(Runtime, LocalSendsTracked) {
  Runtime rt{seq_config(2)};
  rt.reset_stats();
  rt.post(0, [](RankContext& ctx) {
    ctx.send(0, 10, [](RankContext&) {}); // self-send
    ctx.send(1, 10, [](RankContext&) {});
  });
  rt.run_until_quiescent();
  EXPECT_EQ(rt.stats().local_messages, 1u);
}

TEST(Runtime, RankRngDeterministicPerSeed) {
  RuntimeConfig cfg = seq_config(4);
  cfg.seed = 99;
  Runtime a{cfg};
  Runtime b{cfg};
  for (RankId r = 0; r < 4; ++r) {
    EXPECT_EQ(a.rank_rng(r)(), b.rank_rng(r)());
  }
  // Different ranks get different streams.
  Runtime c{cfg};
  EXPECT_NE(c.rank_rng(0)(), c.rank_rng(1)());
}

TEST(Runtime, SequentialExecutionIsDeterministic) {
  // Record the global order of handler execution twice; must be equal.
  auto run_once = [] {
    Runtime rt{seq_config(8)};
    std::vector<RankId> order;
    rt.post_all([&order](RankContext& ctx) {
      order.push_back(ctx.rank());
      if (ctx.rank() % 2 == 0) {
        ctx.send((ctx.rank() + 3) % ctx.num_ranks(), 4,
                 [&order](RankContext& c) { order.push_back(c.rank() + 100); });
      }
    });
    rt.run_until_quiescent();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(RuntimeThreaded, AllMessagesProcessed) {
  constexpr RankId p = 32;
  Runtime rt{threaded_config(p, 4)};
  std::atomic<int> count{0};
  // Fan-out storm: every rank sends to 8 random peers.
  rt.post_all([&count](RankContext& ctx) {
    for (int i = 0; i < 8; ++i) {
      auto const dest = static_cast<RankId>(
          ctx.rng().uniform_below(static_cast<std::uint64_t>(
              ctx.num_ranks())));
      ctx.send(dest, 16, [&count](RankContext&) { ++count; });
    }
  });
  rt.run_until_quiescent();
  EXPECT_EQ(count.load(), p * 8);
}

TEST(RuntimeThreaded, PerRankStateNeedsNoLocking) {
  // Each rank accumulates into its own (unsynchronized) slot; block
  // ownership guarantees single-threaded access per rank.
  constexpr RankId p = 16;
  Runtime rt{threaded_config(p, 4)};
  std::vector<std::int64_t> sums(p, 0);
  constexpr int messages_per_rank = 500;
  for (RankId r = 0; r < p; ++r) {
    for (int i = 0; i < messages_per_rank; ++i) {
      rt.post(r, [&sums](RankContext& ctx) {
        ++sums[static_cast<std::size_t>(ctx.rank())];
      });
    }
  }
  rt.run_until_quiescent();
  for (auto const s : sums) {
    EXPECT_EQ(s, messages_per_rank);
  }
}

TEST(RuntimeThreaded, RepeatedQuiescenceCycles) {
  Runtime rt{threaded_config(8, 3)};
  std::atomic<int> total{0};
  for (int round = 0; round < 10; ++round) {
    rt.post_all([&total](RankContext& ctx) {
      ctx.send((ctx.rank() + 1) % ctx.num_ranks(), 1,
               [&total](RankContext&) { ++total; });
    });
    rt.run_until_quiescent();
  }
  EXPECT_EQ(total.load(), 10 * 8);
}

TEST(RuntimeDeath, InvalidDestinationAborts) {
  Runtime rt{seq_config(2)};
  EXPECT_DEATH(rt.post(5, [](RankContext&) {}), "precondition");
}

TEST(RuntimeDeath, ZeroRanksAborts) {
  EXPECT_DEATH(Runtime{seq_config(0)}, "precondition");
}

} // namespace
} // namespace tlb::rt
