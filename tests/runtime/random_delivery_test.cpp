#include <gtest/gtest.h>

#include <atomic>

#include "runtime/collectives.hpp"
#include "runtime/runtime.hpp"
#include "runtime/termination.hpp"

namespace tlb::rt {
namespace {

RuntimeConfig reorder_config(RankId ranks, std::uint64_t seed = 77,
                             int threads = 1) {
  RuntimeConfig cfg;
  cfg.num_ranks = ranks;
  cfg.num_threads = threads;
  cfg.seed = seed;
  cfg.random_delivery = true;
  return cfg;
}

TEST(RandomDelivery, AllMessagesStillProcessed) {
  Runtime rt{reorder_config(8)};
  std::atomic<int> count{0};
  rt.post_all([&count](RankContext& ctx) {
    for (int i = 0; i < 16; ++i) {
      ctx.send((ctx.rank() + i) % ctx.num_ranks(), 4,
               [&count](RankContext&) { ++count; });
    }
  });
  rt.run_until_quiescent();
  EXPECT_EQ(count.load(), 8 * 16);
}

TEST(RandomDelivery, ActuallyReorders) {
  // Queue numbered messages at one rank and observe a non-FIFO order.
  auto deliveries_for = [](bool reorder) {
    RuntimeConfig cfg;
    cfg.num_ranks = 1;
    cfg.random_delivery = reorder;
    cfg.batch = 64;
    Runtime rt{cfg};
    std::vector<int> order;
    for (int i = 0; i < 32; ++i) {
      rt.post(0, [&order, i](RankContext&) { order.push_back(i); });
    }
    rt.run_until_quiescent();
    return order;
  };
  auto const fifo = deliveries_for(false);
  auto const random = deliveries_for(true);
  ASSERT_EQ(fifo.size(), 32u);
  ASSERT_EQ(random.size(), 32u);
  EXPECT_TRUE(std::is_sorted(fifo.begin(), fifo.end()));
  EXPECT_FALSE(std::is_sorted(random.begin(), random.end()));
  EXPECT_TRUE(std::is_permutation(random.begin(), random.end(),
                                  fifo.begin()));
}

TEST(RandomDelivery, DeterministicGivenSeed) {
  auto run_once = [] {
    Runtime rt{reorder_config(1, 42)};
    std::vector<int> order;
    for (int i = 0; i < 20; ++i) {
      rt.post(0, [&order, i](RankContext&) { order.push_back(i); });
    }
    rt.run_until_quiescent();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(RandomDelivery, AllreduceStillCorrect) {
  Runtime rt{reorder_config(17)};
  std::vector<int> contributions(17, 1);
  for (int round = 0; round < 5; ++round) {
    auto const results =
        allreduce(rt, contributions, [](int a, int b) { return a + b; });
    for (int const r : results) {
      ASSERT_EQ(r, 17);
    }
  }
}

TEST(RandomDelivery, TerminationDetectorStillCertifies) {
  Runtime rt{reorder_config(8)};
  TerminationDetector det{rt};
  std::atomic<int> processed{0};
  for (RankId r = 0; r < 8; ++r) {
    det.post(r, [&det, &processed](RankContext& ctx) {
      ++processed;
      for (int i = 0; i < 3; ++i) {
        det.send(ctx, (ctx.rank() + i) % 8, 4,
                 [&processed](RankContext&) { ++processed; });
      }
    });
  }
  det.start();
  rt.run_until_quiescent();
  EXPECT_TRUE(det.terminated());
  EXPECT_EQ(det.certified_count(), processed.load());
}

TEST(RandomDelivery, ThreadedComposes) {
  Runtime rt{reorder_config(16, 5, 4)};
  std::atomic<int> count{0};
  rt.post_all([&count](RankContext& ctx) {
    for (int i = 0; i < 8; ++i) {
      auto const dest = static_cast<RankId>(
          ctx.rng().uniform_below(16));
      ctx.send(dest, 4, [&count](RankContext&) { ++count; });
    }
  });
  rt.run_until_quiescent();
  EXPECT_EQ(count.load(), 16 * 8);
}

} // namespace
} // namespace tlb::rt
