/// \file cross_validation_test.cpp
/// Integration tests across modules: the distributed gossip strategy and
/// the sequential analysis framework implement the same algorithm through
/// different execution substrates, so on the same workload they must
/// reach comparable quality; the PIC application composes all of it.

#include <gtest/gtest.h>

#include "lb/strategy/gossip_strategy.hpp"
#include "lbaf/assignment.hpp"
#include "lbaf/experiment.hpp"
#include "lbaf/greedy_ref.hpp"
#include "lbaf/workload.hpp"
#include "pic/app.hpp"
#include "support/stats.hpp"

namespace tlb {
namespace {

lb::StrategyInput to_input(lbaf::Workload const& workload) {
  lb::StrategyInput input;
  input.tasks.resize(static_cast<std::size_t>(workload.num_ranks));
  for (std::size_t i = 0; i < workload.tasks.size(); ++i) {
    input.tasks[static_cast<std::size_t>(workload.initial_rank[i])]
        .push_back(workload.tasks[i]);
  }
  return input;
}

TEST(CrossValidation, DistributedAndSequentialTemperedAgreeOnQuality) {
  auto const workload = lbaf::make_clustered(
      128, 4, 1200, lbaf::LoadDistribution::gamma, 1.0, 99);

  auto params = lb::LbParams::tempered();
  params.rounds = 6;
  params.num_trials = 3;
  params.num_iterations = 5;

  auto const sequential = lbaf::run_experiment(params, workload);

  rt::RuntimeConfig cfg;
  cfg.num_ranks = 128;
  rt::Runtime runtime{cfg};
  lb::GossipStrategy strategy{lb::GossipStrategy::Flavor::tempered};
  auto const distributed =
      strategy.balance(runtime, to_input(workload), params);

  // Different RNG paths, same algorithm: require the same order of
  // magnitude of quality, both far below the initial imbalance.
  double const initial = sequential.initial_imbalance;
  EXPECT_LT(sequential.best_imbalance, 0.1 * initial);
  EXPECT_LT(distributed.achieved_imbalance, 0.1 * initial);
  double const ratio =
      std::max(sequential.best_imbalance, distributed.achieved_imbalance) /
      std::max(1e-9, std::min(sequential.best_imbalance,
                              distributed.achieved_imbalance));
  EXPECT_LT(ratio, 5.0) << "sequential " << sequential.best_imbalance
                        << " vs distributed "
                        << distributed.achieved_imbalance;
}

TEST(CrossValidation, SequentialBestMigrationsMatchDistributedSemantics) {
  // Apply each path's migrations to a fresh Assignment and verify both
  // reach the imbalance they claim.
  auto const workload = lbaf::make_bimodal(
      128, 4, 800, lbaf::BimodalSpec{}, 31);
  auto params = lb::LbParams::tempered();
  params.rounds = 6;
  params.num_trials = 2;
  params.num_iterations = 4;

  auto const sequential = lbaf::run_experiment(params, workload);
  lbaf::Assignment seq_check{workload};
  seq_check.apply(sequential.best_migrations);
  EXPECT_NEAR(seq_check.imbalance(), sequential.best_imbalance, 1e-9);

  rt::RuntimeConfig cfg;
  cfg.num_ranks = 128;
  rt::Runtime runtime{cfg};
  lb::GossipStrategy strategy{lb::GossipStrategy::Flavor::tempered};
  auto const distributed =
      strategy.balance(runtime, to_input(workload), params);
  lbaf::Assignment dist_check{workload};
  dist_check.apply(distributed.migrations);
  EXPECT_NEAR(dist_check.imbalance(), distributed.achieved_imbalance, 1e-9);
}

TEST(CrossValidation, GreedyReferenceBoundsGossipQuality) {
  auto const workload = lbaf::make_clustered(
      96, 3, 900, lbaf::LoadDistribution::uniform, 1.0, 17);
  lbaf::Assignment const initial{workload};
  double const greedy_floor = lbaf::greedy_imbalance(initial);

  rt::RuntimeConfig cfg;
  cfg.num_ranks = 96;
  rt::Runtime runtime{cfg};
  lb::GossipStrategy strategy{lb::GossipStrategy::Flavor::tempered};
  auto params = lb::LbParams::tempered();
  params.rounds = 6;
  auto const result = strategy.balance(runtime, to_input(workload), params);
  EXPECT_GE(result.achieved_imbalance, greedy_floor - 1e-9);
}

TEST(CrossValidation, PicRunsOnThreadedRuntime) {
  pic::PicConfig cfg;
  cfg.mesh.ranks_x = 4;
  cfg.mesh.ranks_y = 4;
  cfg.steps = 30;
  cfg.bdot.total_steps = 30;
  cfg.lb_period = 10;
  cfg.runtime_threads = 4;
  cfg.lb_params.rounds = 4;
  cfg.lb_params.num_trials = 2;
  cfg.lb_params.num_iterations = 2;
  pic::PicApp app{cfg};
  auto const result = app.run();
  EXPECT_EQ(result.steps.size(), 30u);
  EXPECT_GT(result.totals.migrations, 0u);
  // Particle conservation across threaded migrations.
  pic::BDotScenario const scenario{cfg.bdot};
  std::size_t expected = 0;
  for (int s = 0; s < 30; ++s) {
    expected += static_cast<std::size_t>(scenario.count(s));
  }
  EXPECT_EQ(app.total_particles(), expected);
}

TEST(CrossValidation, PicUnderRandomDeliveryStillConserves) {
  // The full application over the fault-injecting runtime: protocol
  // correctness must not depend on delivery order.
  pic::PicConfig cfg;
  cfg.mesh.ranks_x = 4;
  cfg.mesh.ranks_y = 4;
  cfg.steps = 25;
  cfg.bdot.total_steps = 25;
  cfg.lb_period = 10;
  cfg.lb_params.rounds = 4;
  cfg.lb_params.num_trials = 2;
  cfg.lb_params.num_iterations = 2;
  // PicApp owns its Runtime; emulate random delivery by a custom seed
  // path: run twice with different seeds and check conservation both
  // times (delivery-order robustness is covered directly in the strategy
  // extension tests; here we assert end-to-end conservation).
  for (std::uint64_t seed : {0xA1ull, 0xB2ull}) {
    cfg.seed = seed;
    pic::PicApp app{cfg};
    (void)app.run();
    pic::BDotScenario const scenario{cfg.bdot};
    std::size_t expected = 0;
    for (int s = 0; s < 25; ++s) {
      expected += static_cast<std::size_t>(scenario.count(s));
    }
    EXPECT_EQ(app.total_particles(), expected);
  }
}

} // namespace
} // namespace tlb
