/// \file forecaster_test.cpp
/// The Forecaster's contracts: per-rank history management, forecast
/// validity, self-scoring (relative L1 error + EMA), and the post-LB
/// rebase that re-seeds the newest history point.

#include <vector>

#include <gtest/gtest.h>

#include "policy/forecaster.hpp"

namespace tlb::policy {
namespace {

TEST(Forecaster, InvalidBeforeAnyObservation) {
  Forecaster f{make_load_model("persistence")};
  auto const forecast = f.predict();
  EXPECT_FALSE(forecast.valid);
  EXPECT_TRUE(forecast.loads.empty());
}

TEST(Forecaster, PersistencePredictsTheLastObservation) {
  Forecaster f{make_load_model("persistence")};
  f.observe(std::vector<double>{1.0, 2.0, 3.0});
  f.observe(std::vector<double>{2.0, 4.0, 6.0});
  auto const forecast = f.predict();
  ASSERT_TRUE(forecast.valid);
  EXPECT_EQ(forecast.loads, (std::vector<double>{2.0, 4.0, 6.0}));
  EXPECT_DOUBLE_EQ(forecast.load_max, 6.0);
  EXPECT_DOUBLE_EQ(forecast.load_avg, 4.0);
  EXPECT_DOUBLE_EQ(forecast.imbalance, 0.5);
}

TEST(Forecaster, ScoresThePreviousForecast) {
  Forecaster f{make_load_model("persistence")};
  f.observe(std::vector<double>{2.0, 2.0});
  (void)f.predict(); // forecast {2, 2}
  // Measured exactly as forecast: zero error.
  f.observe(std::vector<double>{2.0, 2.0});
  EXPECT_DOUBLE_EQ(f.last_error(), 0.0);
  (void)f.predict();
  // Measured {3, 1}: relative L1 error = (1 + 1) / 4 = 0.5.
  f.observe(std::vector<double>{3.0, 1.0});
  EXPECT_NEAR(f.last_error(), 0.5, 1e-12);
  EXPECT_GT(f.error_ema(), 0.0);
}

TEST(Forecaster, UnscoredPhasesDoNotCountAsErrors) {
  Forecaster f{make_load_model("persistence")};
  // observe without predict between: nothing pending, nothing scored.
  f.observe(std::vector<double>{1.0});
  f.observe(std::vector<double>{5.0});
  EXPECT_DOUBLE_EQ(f.last_error(), 0.0);
  EXPECT_EQ(f.observations(), 2u);
}

TEST(Forecaster, RebaseReplacesTheNewestPoint) {
  Forecaster f{make_load_model("persistence")};
  f.observe(std::vector<double>{9.0, 1.0});
  f.rebase(std::vector<double>{5.0, 5.0});
  auto const forecast = f.predict();
  ASSERT_TRUE(forecast.valid);
  EXPECT_EQ(forecast.loads, (std::vector<double>{5.0, 5.0}));
  EXPECT_DOUBLE_EQ(forecast.imbalance, 0.0);
}

TEST(Forecaster, RebaseOnEmptyHistoryIsANoOp) {
  Forecaster f{make_load_model("persistence")};
  f.rebase(std::vector<double>{1.0, 2.0});
  EXPECT_FALSE(f.predict().valid);
}

TEST(Forecaster, WindowBoundsTheHistory) {
  Forecaster f{make_load_model("trend"), 4};
  // A long v-shape: with an unbounded window the early descent would drag
  // the fitted slope down; the 4-wide window sees only the ascent.
  for (double v : {9.0, 7.0, 5.0, 3.0, 1.0, 2.0, 3.0, 4.0}) {
    f.observe(std::vector<double>{v});
  }
  auto const forecast = f.predict();
  ASSERT_TRUE(forecast.valid);
  EXPECT_NEAR(forecast.loads[0], 5.0, 1e-9);
}

TEST(Forecaster, ClearForgetsEverything) {
  Forecaster f{make_load_model("persistence")};
  f.observe(std::vector<double>{1.0});
  f.clear();
  EXPECT_FALSE(f.predict().valid);
  EXPECT_EQ(f.observations(), 0u);
}

TEST(ForecastImbalance, MatchesTheLambdaDefinition) {
  EXPECT_DOUBLE_EQ(forecast_imbalance(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(forecast_imbalance(std::vector<double>{0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(forecast_imbalance(std::vector<double>{2.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(forecast_imbalance(std::vector<double>{3.0, 1.0}), 0.5);
}

} // namespace
} // namespace tlb::policy
