/// \file trigger_policy_test.cpp
/// The trigger policies' decision contracts, focused on the cost/benefit
/// criterion: quiet on balanced phases, probing before any cost is known,
/// accumulating forecast gain across skips, and firing once the
/// accumulated gain passes the measured-cost EMA.

#include <vector>

#include <gtest/gtest.h>

#include "policy/trigger_policy.hpp"

namespace tlb::policy {
namespace {

std::vector<double> balanced(std::size_t ranks, double load = 1.0) {
  return std::vector<double>(ranks, load);
}

/// One hot rank: λ = (hot/avg) − 1 with avg = (hot + (n−1)) / n.
std::vector<double> one_hot(std::size_t ranks, double hot) {
  std::vector<double> loads(ranks, 1.0);
  loads[0] = hot;
  return loads;
}

TEST(AlwaysPolicy, InvokesEveryPhase) {
  AlwaysPolicy p;
  for (std::uint64_t phase = 0; phase < 4; ++phase) {
    EXPECT_TRUE(p.decide(phase, balanced(4)).invoke);
  }
}

TEST(NeverPolicy, NeverInvokes) {
  NeverPolicy p;
  for (std::uint64_t phase = 0; phase < 4; ++phase) {
    EXPECT_FALSE(p.decide(phase, one_hot(4, 10.0)).invoke);
  }
}

TEST(EveryKPolicy, FiresFirstAndThenEveryK) {
  EveryKPolicy p{3};
  std::string decisions;
  for (std::uint64_t phase = 0; phase < 7; ++phase) {
    decisions += p.decide(phase, balanced(4)).invoke ? 'I' : 'S';
  }
  EXPECT_EQ(decisions, "ISSISSI");
}

TEST(ThresholdPolicy, ReactsToTheForecastImbalance) {
  ThresholdPolicy p{0.5};
  // Balanced: λ̂ = 0 < 0.5 → skip.
  EXPECT_FALSE(p.decide(0, balanced(4)).invoke);
  // 4 ranks, hot = 7: avg = 2.5, λ = 1.8 > 0.5 → invoke.
  auto const d = p.decide(1, one_hot(4, 7.0));
  EXPECT_TRUE(d.invoke);
  EXPECT_NEAR(d.forecast_imbalance, 1.8, 1e-9);
}

TEST(ThresholdPolicy, ExactThresholdDoesNotFire) {
  ThresholdPolicy p{0.5};
  // 2 ranks {3, 1}: λ = exactly 0.5 — the criterion is strict.
  EXPECT_FALSE(p.decide(0, std::vector<double>{3.0, 1.0}).invoke);
}

TEST(CostBenefitPolicy, NeverInvokesOnBalancedPhases) {
  CostBenefitPolicy p;
  for (std::uint64_t phase = 0; phase < 16; ++phase) {
    auto const d = p.decide(phase, balanced(8));
    EXPECT_FALSE(d.invoke) << "phase " << phase;
    EXPECT_EQ(d.reason, "forecast balanced");
    p.record_outcome(false, 0.0, {});
  }
  EXPECT_DOUBLE_EQ(p.accumulated_gain(), 0.0);
}

TEST(CostBenefitPolicy, ProbesOnTheFirstImbalancedPhase) {
  CostBenefitPolicy p;
  auto const d = p.decide(0, one_hot(4, 5.0));
  EXPECT_TRUE(d.invoke);
  EXPECT_EQ(d.reason, "probing lb cost");
  EXPECT_LT(p.cost_ema(), 0.0); // still unmeasured until record_outcome
}

TEST(CostBenefitPolicy, AccumulatesGainAcrossSkipsUntilCostIsCovered) {
  // Persistence model for exact arithmetic: the forecast equals the
  // measured loads, so the per-phase gain is max − avg of the input.
  CostBenefitPolicy::Params params;
  params.model = "persistence";
  CostBenefitPolicy p{params};
  // Probe once and report an expensive invocation (cost 5.0 s), leaving
  // the placement balanced.
  ASSERT_TRUE(p.decide(0, one_hot(4, 5.0)).invoke);
  p.record_outcome(true, 5.0, balanced(4, 2.0));
  EXPECT_DOUBLE_EQ(p.cost_ema(), 5.0);
  EXPECT_DOUBLE_EQ(p.accumulated_gain(), 0.0);

  // Persistent mild imbalance {4,1,1,1}: per-phase gain = 4 − 1.75 =
  // 2.25, so the accumulator passes the 5.0 cost on the third phase.
  auto const mild = one_hot(4, 4.0);
  auto const d1 = p.decide(1, mild);
  EXPECT_FALSE(d1.invoke);
  EXPECT_EQ(d1.reason, "gain below cost");
  EXPECT_NEAR(d1.predicted_gain, 2.25, 1e-9);
  p.record_outcome(false, 0.0, {});
  auto const d2 = p.decide(2, mild);
  EXPECT_FALSE(d2.invoke);
  EXPECT_NEAR(d2.predicted_gain, 4.5, 1e-9);
  p.record_outcome(false, 0.0, {});
  auto const d3 = p.decide(3, mild);
  EXPECT_TRUE(d3.invoke);
  EXPECT_EQ(d3.reason, "gain exceeds cost");
  EXPECT_NEAR(d3.predicted_gain, 6.75, 1e-9);
  EXPECT_GT(d3.predicted_gain, d3.predicted_cost);
}

TEST(CostBenefitPolicy, InvokeResetsTheAccumulatorAndUpdatesTheCostEma) {
  CostBenefitPolicy::Params params;
  params.cost_ema_alpha = 0.5;
  CostBenefitPolicy p{params};
  ASSERT_TRUE(p.decide(0, one_hot(4, 9.0)).invoke);
  p.record_outcome(true, 2.0, {});
  EXPECT_DOUBLE_EQ(p.cost_ema(), 2.0);
  ASSERT_TRUE(p.decide(1, one_hot(4, 9.0)).invoke); // gain 6 > cost 2
  p.record_outcome(true, 4.0, {});
  EXPECT_DOUBLE_EQ(p.cost_ema(), 0.5 * 4.0 + 0.5 * 2.0);
  EXPECT_DOUBLE_EQ(p.accumulated_gain(), 0.0);
}

TEST(CostBenefitPolicy, RebaseStopsStaleImbalanceFromRefiring) {
  CostBenefitPolicy p;
  ASSERT_TRUE(p.decide(0, one_hot(4, 9.0)).invoke);
  // The LB balanced everything; rebase records that. The *next* forecast
  // must see a balanced state, not re-extrapolate the pre-LB spike.
  p.record_outcome(true, 1.0, balanced(4, 3.0));
  auto const d = p.decide(1, balanced(4, 3.0));
  EXPECT_FALSE(d.invoke);
  EXPECT_EQ(d.reason, "forecast balanced");
}

TEST(MakePolicy, ParsesEverySpecFamily) {
  EXPECT_EQ(make_policy("always")->name(), "always");
  EXPECT_EQ(make_policy("never")->name(), "never");
  EXPECT_EQ(make_policy("every-4")->name(), "every-4");
  EXPECT_EQ(make_policy("threshold-0.5")->name(), "threshold-0.50");
  EXPECT_EQ(make_policy("costbenefit")->name(), "costbenefit-persistence");
  EXPECT_EQ(make_policy("costbenefit-trend")->name(), "costbenefit-trend");
  EXPECT_EQ(make_policy("costbenefit-ema")->name(), "costbenefit-ema");
}

TEST(MakePolicy, RejectsMalformedSpecs) {
  EXPECT_THROW((void)make_policy("sometimes"), std::invalid_argument);
  EXPECT_THROW((void)make_policy("every-0"), std::invalid_argument);
  EXPECT_THROW((void)make_policy("every-x"), std::invalid_argument);
  EXPECT_THROW((void)make_policy("costbenefit-kalman"),
               std::invalid_argument);
}

TEST(PolicySpecs, AreAllParseable) {
  auto const specs = policy_specs();
  EXPECT_FALSE(specs.empty());
  for (auto const spec : specs) {
    EXPECT_NO_THROW((void)make_policy(spec)) << spec;
  }
}

} // namespace
} // namespace tlb::policy
