/// \file load_model_test.cpp
/// The load models' contracts, plus the forecast-accuracy property tests:
/// on the workload shapes a model is built for, it must beat the
/// persistence baseline — trend on ramps, the periodic detector on
/// seasonal swings — measured as one-step-ahead MSE over seeded series.

#include <cmath>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "policy/load_model.hpp"
#include "support/rng.hpp"

namespace tlb::policy {
namespace {

/// One-step-ahead MSE of `model` over a series: predict y[t] from
/// y[0..t-1] for every t with at least `warmup` observations behind it.
double one_step_mse(LoadModel const& model, std::vector<double> const& series,
                    std::size_t warmup) {
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t t = warmup; t < series.size(); ++t) {
    double const pred =
        model.predict(std::span<double const>{series.data(), t});
    double const e = pred - series[t];
    sum += e * e;
    ++count;
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

TEST(PersistenceModel, PredictsLastObservation) {
  PersistenceModel const model;
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{3.0, 1.5}), 1.5);
}

TEST(PersistenceModel, ClampsNegativeObservations) {
  PersistenceModel const model;
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{-2.0}), 0.0);
}

TEST(EmaModel, ConstantSeriesPredictsTheConstant) {
  EmaModel const model{0.4};
  EXPECT_NEAR(model.predict(std::vector<double>{2.5, 2.5, 2.5, 2.5}), 2.5,
              1e-12);
}

TEST(EmaModel, DampsASingleOutlier) {
  EmaModel const model{0.4};
  // Persistence would predict 10; the EMA stays much closer to the
  // stationary level.
  double const pred =
      model.predict(std::vector<double>{1.0, 1.0, 1.0, 1.0, 10.0});
  EXPECT_GT(pred, 1.0);
  EXPECT_LT(pred, 5.5);
}

TEST(LinearTrendModel, ExactOnNoiselessRamp) {
  LinearTrendModel const model;
  EXPECT_NEAR(model.predict(std::vector<double>{1.0, 2.0, 3.0, 4.0}), 5.0,
              1e-12);
}

TEST(LinearTrendModel, FallsBackOnShortHistory) {
  LinearTrendModel const model;
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{7.0}), 7.0);
}

TEST(LinearTrendModel, BeatsPersistenceOnNoisyRamps) {
  // Property: on y = a + b*t + noise the trend model's one-step error must
  // be below persistence's for every seed (persistence systematically lags
  // by b per step).
  LinearTrendModel const trend;
  PersistenceModel const persistence;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng{seed};
    double const slope = rng.uniform(0.5, 2.0);
    std::vector<double> series;
    for (int t = 0; t < 48; ++t) {
      series.push_back(10.0 + slope * t + rng.uniform(-0.2, 0.2));
    }
    EXPECT_LT(one_step_mse(trend, series, 8),
              one_step_mse(persistence, series, 8))
        << "seed " << seed;
  }
}

TEST(PeriodicModel, LocksOntoSeasonalSwing) {
  // A clean period-6 square-ish wave over 4 cycles: the detector must find
  // period 6 and predict the value one period back.
  PeriodicModel const model{2};
  std::vector<double> series;
  for (int t = 0; t < 24; ++t) {
    series.push_back(t % 6 < 3 ? 4.0 : 1.0);
  }
  EXPECT_EQ(model.detect_period(series), 6u);
  EXPECT_NEAR(model.predict(series), series[series.size() - 6], 1e-9);
}

TEST(PeriodicModel, DegradesToPersistenceWithoutASeason) {
  PeriodicModel const model{2};
  std::vector<double> const constant(16, 2.0);
  // Constant series: no period strictly beats the (zero-error)
  // persistence baseline, so the prediction is the last value.
  EXPECT_EQ(model.detect_period(constant), 0u);
  EXPECT_DOUBLE_EQ(model.predict(constant), 2.0);
  EXPECT_EQ(model.detect_period(std::vector<double>{1.0, 2.0, 1.0}), 0u);
}

TEST(PeriodicModel, BeatsPersistenceOnNoisySeasonalSeries) {
  PeriodicModel const periodic{2};
  PersistenceModel const persistence;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng{seed};
    std::vector<double> series;
    for (int t = 0; t < 48; ++t) {
      series.push_back(3.0 + 2.0 * std::sin(2.0 * 3.14159265358979 * t / 8.0) +
                       rng.uniform(-0.1, 0.1));
    }
    EXPECT_LT(one_step_mse(periodic, series, 24),
              one_step_mse(persistence, series, 24))
        << "seed " << seed;
  }
}

TEST(PeriodicModel, TracksSwingRidingARamp) {
  // Seasonal + linear drift: the drift correction keeps the prediction
  // from lagging a full ramp-period behind.
  PeriodicModel const model{2};
  std::vector<double> series;
  for (int t = 0; t < 24; ++t) {
    series.push_back((t % 4 < 2 ? 5.0 : 1.0) + 0.5 * t);
  }
  EXPECT_EQ(model.detect_period(series), 4u);
  double const expected = series[series.size() - 4] + 4 * 0.5;
  EXPECT_NEAR(model.predict(series), expected, 1e-9);
}

TEST(LoadModelFactory, BuildsEveryRegisteredModel) {
  for (auto const name : load_model_names()) {
    auto const model = make_load_model(name);
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->name(), name);
  }
  EXPECT_THROW((void)make_load_model("kalman"), std::invalid_argument);
}

} // namespace
} // namespace tlb::policy
