/// \file tlb_report_test.cpp
/// tools/tlb_report: loaders against synthetic documents, the renderer's
/// section logic, and a golden-file postmortem from a seeded 64-rank
/// multi-phase TemperedLB run (the acceptance path: non-trivial critical
/// path + per-phase imbalance table). Regenerate the golden with
///   TLB_UPDATE_GOLDEN=1 ./tests/test_tlb_report --gtest_filter='*Golden*'

#include "report.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "lb/strategy/lb_manager.hpp"
#include "obs/causal.hpp"
#include "obs/phase_timeline.hpp"
#include "obs/telemetry.hpp"
#include "runtime/object_store.hpp"
#include "runtime/runtime.hpp"
#include "support/rng.hpp"

#if TLB_TELEMETRY_ENABLED
#define TLB_SKIP_WITHOUT_TELEMETRY() (void)0
#else
#define TLB_SKIP_WITHOUT_TELEMETRY()                                           \
  GTEST_SKIP() << "telemetry compiled out (TLB_TELEMETRY=OFF)"
#endif

namespace tlb::report {
namespace {

// ---------------------------------------------------------------------
// Loaders on synthetic documents
// ---------------------------------------------------------------------

TEST(Loaders, CausalDocumentRoundTrips) {
  auto const doc = obs::parse_json(R"({
    "step": 2, "dropped": 1,
    "events": [
      {"id": 7, "parent": 0, "origin": 3, "step": 2, "hop": 0,
       "from": -1, "to": 3, "kind": "gossip", "bytes": 24,
       "ts_us": 10, "dur_us": 4}
    ]})");
  ReportInput in;
  KindInterner interner;
  load_causal(doc, in, interner);
  ASSERT_TRUE(in.have_causal);
  EXPECT_EQ(in.causal_dropped, 1u);
  ASSERT_EQ(in.causal_events.size(), 1u);
  EXPECT_EQ(in.causal_events[0].stamp.id, 7u);
  EXPECT_EQ(in.causal_events[0].from, -1);
  EXPECT_EQ(std::string_view{in.causal_events[0].kind}, "gossip");
  EXPECT_EQ(in.causal_events[0].dur_us, 4);
}

TEST(Loaders, InternerDeduplicatesKindStorage) {
  KindInterner interner;
  auto const* a = interner.intern("gossip");
  auto const* b = interner.intern("gossip");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, interner.intern("transfer"));
}

TEST(Loaders, MalformedDocumentThrows) {
  ReportInput in;
  KindInterner interner;
  EXPECT_THROW(load_causal(obs::parse_json(R"({"events": []})"), in,
                           interner),
               std::runtime_error);
  EXPECT_THROW(load_timeline(obs::parse_json("{}"), in),
               std::runtime_error);
}

TEST(Loaders, TimelineAndMetricsPopulateSections) {
  ReportInput in;
  load_timeline(obs::parse_json(R"({
    "total_recorded": 5,
    "timeline": [{
      "phase": 4, "strategy": "tempered",
      "load_min": 1.0, "load_max": 8.0, "load_avg": 2.0,
      "load_stddev": 0.5, "imbalance_before": 3.0,
      "imbalance_after": 0.4, "migrations": 12, "migration_bytes": 600,
      "lb_messages": 40, "lb_bytes": 900, "lb_wall_us": 77,
      "aborted_rounds": 0, "faults_dropped": 1, "faults_delayed": 0,
      "faults_duplicated": 0, "faults_retried": 2}]})"),
                in);
  ASSERT_EQ(in.timeline.size(), 1u);
  EXPECT_EQ(in.timeline[0].phase, 4u);
  EXPECT_EQ(in.timeline_total, 5u);

  load_metrics(obs::parse_json(R"({"metrics": [
    {"name": "net.messages", "labels": {"category": "gossip"},
     "kind": "counter", "value": 9},
    {"name": "lat", "labels": {}, "kind": "histogram", "count": 2,
     "sum": 3.5, "bounds": [], "buckets": [2]}]})"),
               in);
  ASSERT_EQ(in.metrics.size(), 2u);
  EXPECT_EQ(in.metrics[0].labels, "{category=\"gossip\"}");
  EXPECT_EQ(in.metrics[1].value, 2);
}

// ---------------------------------------------------------------------
// Renderer
// ---------------------------------------------------------------------

obs::CausalEvent ev(std::uint64_t id, std::uint64_t parent,
                    std::uint16_t hop, RankId to, char const* kind,
                    std::int64_t dur) {
  obs::CausalEvent e;
  e.stamp.id = id;
  e.stamp.parent = parent;
  e.stamp.hop = hop;
  e.stamp.origin = 0;
  e.from = 0;
  e.to = to;
  e.kind = kind;
  e.bytes = 16;
  e.dur_us = dur;
  return e;
}

TEST(Renderer, ReturnsChainLengthAndRendersSections) {
  ReportInput in;
  in.have_causal = true;
  in.causal_events = {ev(1, 0, 0, 0, "other", 1),
                      ev(2, 1, 1, 1, "gossip", 2),
                      ev(3, 2, 2, 2, "gossip", 3)};
  std::ostringstream os;
  ReportOptions opts;
  auto const chain = render_report(os, in, opts);
  EXPECT_EQ(chain, 3u);
  auto const text = os.str();
  EXPECT_NE(text.find("Critical path"), std::string::npos);
  EXPECT_NE(text.find("Top stragglers"), std::string::npos);
  EXPECT_NE(text.find("3 deliveries, 3 hops deep"), std::string::npos);
}

TEST(Renderer, StableModeOmitsWallClockColumns) {
  ReportInput in;
  in.have_causal = true;
  in.causal_events = {ev(1, 0, 0, 0, "other", 123456)};
  in.have_timeline = true;
  obs::PhaseSample s;
  s.phase = 0;
  s.strategy = "tempered";
  s.lb_wall_us = 987654;
  in.timeline.push_back(s);
  in.timeline_total = 1;

  std::ostringstream os;
  ReportOptions opts;
  opts.stable = true;
  (void)render_report(os, in, opts);
  auto const text = os.str();
  EXPECT_EQ(text.find("123456"), std::string::npos);
  EXPECT_EQ(text.find("987654"), std::string::npos);
  EXPECT_EQ(text.find("handler_us"), std::string::npos);
  EXPECT_EQ(text.find("lb_wall_us"), std::string::npos);
}

TEST(Renderer, FlightRecordHeaderRendered) {
  ReportInput in;
  in.have_flight = true;
  in.flight_reason = "fault_crash";
  in.flight_step = 3;
  std::ostringstream os;
  (void)render_report(os, in, ReportOptions{});
  EXPECT_NE(os.str().find("reason=fault_crash step=3"), std::string::npos);
}

// ---------------------------------------------------------------------
// Golden postmortem from a seeded 64-rank multi-phase run
// ---------------------------------------------------------------------

#if TLB_TELEMETRY_ENABLED

class Payload final : public rt::Migratable {
public:
  [[nodiscard]] std::size_t wire_bytes() const override { return 128; }
};

/// The gossip_demo --telemetry recipe, in-process: 2 phases over 64
/// ranks with the hot ranks rotated between phases.
std::string render_seeded_postmortem() {
  obs::set_enabled(true);
  obs::CausalLog::instance().clear();
  obs::PhaseTimeline::instance().clear();

  auto params = lb::LbParams::tempered();
  params.num_trials = 2;
  params.num_iterations = 3;
  params.rounds = 5;
  params.fanout = 4;
  params.seed = 99;

  rt::RuntimeConfig config;
  config.num_ranks = 64;
  config.seed = 2021;
  rt::Runtime runtime{config};
  lb::LbManager manager{runtime, "tempered", params};

  for (int phase = 0; phase < 2; ++phase) {
    lb::StrategyInput input;
    input.tasks.resize(64);
    rt::ObjectStore store{64};
    Rng rng{2021 + static_cast<std::uint64_t>(phase)};
    TaskId next = 0;
    for (std::size_t r = 0; r < 8; ++r) {
      auto const hot = (r + static_cast<std::size_t>(phase) * 32) % 64;
      for (int i = 0; i < 48; ++i) {
        input.tasks[hot].push_back({next, rng.uniform(0.5, 1.5)});
        store.create(static_cast<RankId>(hot), next,
                     std::make_unique<Payload>());
        ++next;
      }
    }
    (void)manager.invoke(input, store);
  }

  // Round-trip through the JSON artifacts exactly as the CLI would.
  std::ostringstream causal_js;
  obs::CausalLog::instance().write_json(causal_js);
  std::ostringstream timeline_js;
  obs::PhaseTimeline::instance().write_json(timeline_js);

  ReportInput in;
  KindInterner interner;
  load_causal(obs::parse_json(causal_js.str()), in, interner);
  load_timeline(obs::parse_json(timeline_js.str()), in);

  std::ostringstream os;
  ReportOptions opts;
  opts.stable = true;
  opts.top_k = 5;
  auto const chain = render_report(os, in, opts);
  EXPECT_GE(chain, 3u) << "critical path should be non-trivial";

  obs::CausalLog::instance().clear();
  obs::PhaseTimeline::instance().clear();
  obs::set_enabled(false);
  return os.str();
}

std::string golden_path() {
  return std::string{TLB_SOURCE_DIR} +
         "/tests/tools/golden/tlb_report_64.txt";
}

TEST(TlbReportGolden, Seeded64RankPostmortemMatchesGoldenFile) {
  TLB_SKIP_WITHOUT_TELEMETRY();
  auto const actual = render_seeded_postmortem();
  // The stable postmortem must include both acceptance sections.
  EXPECT_NE(actual.find("Critical path"), std::string::npos);
  EXPECT_NE(actual.find("Imbalance evolution (2 of 2 phases retained)"),
            std::string::npos);

  if (std::getenv("TLB_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out{golden_path()};
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << actual;
    GTEST_SKIP() << "golden file regenerated";
  }

  std::ifstream in{golden_path()};
  ASSERT_TRUE(in.good())
      << "missing golden file " << golden_path()
      << " — regenerate with TLB_UPDATE_GOLDEN=1";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "postmortem drifted from the golden file; if intentional, "
         "regenerate with TLB_UPDATE_GOLDEN=1";
}

TEST(TlbReportGolden, PostmortemIsDeterministicAcrossRuns) {
  TLB_SKIP_WITHOUT_TELEMETRY();
  auto const a = render_seeded_postmortem();
  auto const b = render_seeded_postmortem();
  EXPECT_EQ(a, b);
}

#endif // TLB_TELEMETRY_ENABLED

} // namespace
} // namespace tlb::report
