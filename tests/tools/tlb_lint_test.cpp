#include "lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace tlb::lint {
namespace {

std::vector<Violation> lint(std::string_view path, std::string_view source) {
  return lint_source(path, source);
}

// ---------------------------------------------------------------------
// Scrubber
// ---------------------------------------------------------------------

TEST(Scrub, LineAndBlockCommentsBecomeSpaces) {
  auto const out = scrub("int x; // std::mutex\nint /* rand() */ y;");
  EXPECT_EQ(out.find("std::mutex"), std::string::npos);
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_NE(out.find("int x;"), std::string::npos);
  EXPECT_NE(out.find('y'), std::string::npos);
}

TEST(Scrub, PreservesLineStructure) {
  std::string const src = "a\n/* b\nc */\nd\n";
  auto const out = scrub(src);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
            std::count(src.begin(), src.end(), '\n'));
}

TEST(Scrub, StringAndCharLiteralsWithEscapes) {
  auto const out =
      scrub(R"(char const* s = "a \" std::mutex"; char c = '\'';)");
  EXPECT_EQ(out.find("std::mutex"), std::string::npos);
  // The declaration skeleton survives.
  EXPECT_NE(out.find("char const* s ="), std::string::npos);
}

TEST(Scrub, RawStringsScrubbedToTheirDelimiter) {
  auto const out = scrub("auto r = R\"x(rand() volatile)x\"; int after;");
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_EQ(out.find("volatile"), std::string::npos);
  EXPECT_NE(out.find("int after;"), std::string::npos);
}

TEST(Scrub, DigitSeparatorsAreNotCharLiterals) {
  auto const out = scrub("int n = 1'000'000; volatile int v;");
  // If 1'000' opened a char literal the volatile would be scrubbed away.
  EXPECT_NE(out.find("volatile"), std::string::npos);
}

// ---------------------------------------------------------------------
// Matching
// ---------------------------------------------------------------------

TEST(Match, CallShapedTokenNeedsIdentifierBoundaryAndParen) {
  EXPECT_EQ(lint("src/x.cpp", "int y = strand();").size(), 0u);
  EXPECT_EQ(lint("src/x.cpp", "int rand_width = 3;").size(), 0u);
  EXPECT_EQ(lint("src/x.cpp", "int y = operand(2);").size(), 0u);
  ASSERT_EQ(lint("src/x.cpp", "int y = rand();").size(), 1u);
  // Whitespace between identifier and paren still matches.
  ASSERT_EQ(lint("src/x.cpp", "int y = rand  ();").size(), 1u);
}

TEST(Match, BraceShapedTokenNeedsIdentifierBoundaryAndBrace) {
  // no-envelope-outside-runtime's brace-construction shape.
  ASSERT_EQ(lint("src/lb/x.cpp", "auto e = rt::Envelope{1, 2};").size(), 1u);
  ASSERT_EQ(lint("src/lb/x.cpp", "auto e = Envelope {1, 2};").size(), 1u);
  EXPECT_EQ(lint("src/lb/x.cpp", "EnvelopeView v{};").size(), 0u);
  EXPECT_EQ(lint("src/lb/x.cpp", "auto n = envelope_count(3);").size(), 0u);
  // Paren shape fires too; plain mentions do not.
  ASSERT_EQ(lint("src/lb/x.cpp", "auto e = rt::Envelope(a, b);").size(), 1u);
  EXPECT_EQ(lint("src/lb/x.cpp", "void take(rt::Envelope&& env);").size(),
            0u);
  // Outside the scoped dirs the rule is inert (runtime owns envelopes).
  EXPECT_EQ(lint("src/runtime/x.cpp", "auto e = Envelope{1, 2};").size(),
            0u);
}

TEST(Match, QualifiedTokenMatchesThroughLongerQualification) {
  auto const v =
      lint("src/x.cpp", "auto t = std::chrono::steady_clock::now();");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "no-wall-clock");
  EXPECT_EQ(v[0].line, 1u);
}

TEST(Match, DirScopingRestrictsRules) {
  // no-std-function only applies under src/runtime/.
  EXPECT_EQ(lint("src/lb/x.cpp", "std::function<void()> f;").size(), 0u);
  EXPECT_EQ(lint("src/runtime/x.cpp", "std::function<void()> f;").size(),
            1u);
  // Nothing applies outside src/.
  EXPECT_EQ(lint("bench/x.cpp", "std::mutex m; rand();").size(), 0u);
}

TEST(Match, SuppressionExemptsOnlyTheNamedRuleOnThatLine) {
  std::string const both =
      "std::mutex m; volatile int v; // tlb-lint: allow(no-raw-mutex)\n";
  auto const v = lint("src/x.cpp", both);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "no-volatile");

  std::string const multi = "std::mutex m; volatile int v; "
                            "// tlb-lint: allow(no-raw-mutex, no-volatile)\n";
  EXPECT_EQ(lint("src/x.cpp", multi).size(), 0u);

  // The suppression is per-line, not per-file.
  std::string const next_line =
      "int a; // tlb-lint: allow(no-raw-mutex)\nstd::mutex m;\n";
  EXPECT_EQ(lint("src/x.cpp", next_line).size(), 1u);
}

TEST(Match, AllowlistExemptsSanctionedFiles) {
  std::string const clock_use = "auto t = std::chrono::steady_clock::now();";
  EXPECT_EQ(lint("src/obs/tracer.cpp", clock_use).size(), 0u);
  EXPECT_EQ(lint("src/obs/registry.cpp", clock_use).size(), 1u);
}

TEST(Match, AssertRuleIgnoresStaticAssertAndContractMacros) {
  std::string const src = "void f(int x) {\n"
                          "  static_assert(sizeof(int) >= 4);\n"
                          "  TLB_ASSERT(x > 0, \"m\");\n"
                          "  assert(x > 0);\n"
                          "}\n";
  auto const v = lint("src/lb/x.cpp", src);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "invariant-not-assert");
  EXPECT_EQ(v[0].line, 4u);
}

// ---------------------------------------------------------------------
// Fixture corpus: the expected violation set is pinned exactly, so a rule
// regression (stops firing) and a false-positive regression (extra hit)
// both fail this test. Update alongside tools/tlb_lint/fixtures/.
// ---------------------------------------------------------------------

TEST(Fixtures, CorpusProducesExactlyThePinnedViolations) {
  auto const got =
      lint_tree(std::string{TLB_SOURCE_DIR} + "/tools/tlb_lint/fixtures",
                {"src"});
  std::vector<std::string> keys;
  keys.reserve(got.size());
  for (auto const& v : got) {
    keys.push_back(v.file + ":" + std::to_string(v.line) + ":" + v.rule);
  }
  std::vector<std::string> const expected = {
      "src/lb/bad_assert.cpp:6:invariant-not-assert",
      "src/lb/bad_clock.cpp:7:no-wall-clock",
      "src/lb/bad_clock.cpp:8:no-wall-clock",
      "src/lb/bad_clock.cpp:9:no-wall-clock",
      "src/lb/bad_clock.cpp:10:no-wall-clock",
      "src/lb/bad_envelope.cpp:11:no-envelope-outside-runtime",
      "src/lb/bad_envelope.cpp:12:no-envelope-outside-runtime",
      "src/lb/bad_envelope.cpp:14:no-envelope-outside-runtime",
      "src/lb/bad_random.cpp:7:no-unseeded-rand",
      "src/lb/bad_random.cpp:8:no-unseeded-rand",
      "src/lb/bad_random.cpp:9:no-unseeded-rand",
      "src/runtime/bad_handler.cpp:7:no-std-function",
      "src/runtime/bad_sync.cpp:4:no-raw-mutex",
      "src/runtime/bad_sync.cpp:5:no-volatile",
      "src/runtime/bad_sync.cpp:8:no-raw-mutex",
  };
  EXPECT_EQ(keys, expected);
}

// ---------------------------------------------------------------------
// The real tree must be clean — the same check CI and scripts/lint.sh
// enforce, kept here so `ctest` alone catches a violation too.
// ---------------------------------------------------------------------

TEST(RealTree, SrcHasZeroViolations) {
  auto const got = lint_tree(TLB_SOURCE_DIR, {"src"});
  for (auto const& v : got) {
    ADD_FAILURE() << v.file << ":" << v.line << ": [" << v.rule << "] "
                  << v.message;
  }
}

TEST(Rules, CatalogueIsWellFormed) {
  auto const& rules = default_rules();
  ASSERT_GE(rules.size(), 6u);
  std::vector<std::string> ids;
  for (auto const& rule : rules) {
    EXPECT_FALSE(rule.id.empty());
    EXPECT_FALSE(rule.tokens.empty());
    EXPECT_FALSE(rule.message.empty());
    for (auto const& dir : rule.dirs) {
      EXPECT_EQ(dir.back(), '/') << rule.id << ": dir prefixes end in '/'";
    }
    ids.push_back(rule.id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end())
      << "duplicate rule id";
}

} // namespace
} // namespace tlb::lint
