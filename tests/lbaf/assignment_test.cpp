#include "lbaf/assignment.hpp"

#include <gtest/gtest.h>

namespace tlb::lbaf {
namespace {

Workload small_workload() {
  Workload w;
  w.num_ranks = 4;
  w.tasks = {{0, 1.0}, {1, 2.0}, {2, 3.0}, {3, 4.0}};
  w.initial_rank = {0, 0, 1, 1};
  return w;
}

TEST(Assignment, InitialStateFromWorkload) {
  Assignment const a{small_workload()};
  EXPECT_EQ(a.num_ranks(), 4);
  EXPECT_EQ(a.num_tasks(), 4u);
  EXPECT_DOUBLE_EQ(a.load_of_rank(0), 3.0);
  EXPECT_DOUBLE_EQ(a.load_of_rank(1), 7.0);
  EXPECT_DOUBLE_EQ(a.load_of_rank(2), 0.0);
  EXPECT_DOUBLE_EQ(a.total_load(), 10.0);
  EXPECT_DOUBLE_EQ(a.average_load(), 2.5);
  EXPECT_DOUBLE_EQ(a.max_load(), 7.0);
  EXPECT_DOUBLE_EQ(a.imbalance(), 7.0 / 2.5 - 1.0);
  EXPECT_TRUE(a.validate());
}

TEST(Assignment, TasksOfReturnsEntries) {
  Assignment const a{small_workload()};
  auto const tasks = a.tasks_of(1);
  ASSERT_EQ(tasks.size(), 2u);
  EXPECT_EQ(tasks[0].id, 2);
  EXPECT_DOUBLE_EQ(tasks[0].load, 3.0);
}

TEST(Assignment, ApplyMovesTaskAndLoad) {
  Assignment a{small_workload()};
  a.apply(Migration{3, 1, 2, 4.0});
  EXPECT_EQ(a.rank_of(3), 2);
  EXPECT_DOUBLE_EQ(a.load_of_rank(1), 3.0);
  EXPECT_DOUBLE_EQ(a.load_of_rank(2), 4.0);
  EXPECT_DOUBLE_EQ(a.total_load(), 10.0); // conserved
  EXPECT_TRUE(a.validate());
}

TEST(Assignment, ApplySelfMigrationIsNoop) {
  Assignment a{small_workload()};
  a.apply(Migration{0, 0, 0, 1.0});
  EXPECT_EQ(a.rank_of(0), 0);
  EXPECT_TRUE(a.validate());
}

TEST(Assignment, BatchApplyConservesLoad) {
  Assignment a{small_workload()};
  std::vector<Migration> const batch{{0, 0, 3, 1.0}, {2, 1, 0, 3.0}};
  a.apply(batch);
  EXPECT_DOUBLE_EQ(a.total_load(), 10.0);
  EXPECT_EQ(a.rank_of(0), 3);
  EXPECT_EQ(a.rank_of(2), 0);
  EXPECT_TRUE(a.validate());
}

TEST(Assignment, ImbalanceImprovesWithSpreading) {
  Assignment a{small_workload()};
  double const before = a.imbalance();
  a.apply(Migration{3, 1, 2, 4.0});
  a.apply(Migration{1, 0, 3, 2.0});
  EXPECT_LT(a.imbalance(), before);
}

TEST(AssignmentDeath, ApplyWithWrongFromAborts) {
  Assignment a{small_workload()};
  EXPECT_DEATH(a.apply(Migration{0, 2, 1, 1.0}), "precondition");
}

TEST(AssignmentDeath, ApplyToInvalidRankAborts) {
  Assignment a{small_workload()};
  EXPECT_DEATH(a.apply(Migration{0, 0, 9, 1.0}), "precondition");
}

} // namespace
} // namespace tlb::lbaf
