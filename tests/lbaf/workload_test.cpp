#include "lbaf/workload.hpp"

#include <gtest/gtest.h>

#include <set>

namespace tlb::lbaf {
namespace {

TEST(Workload, ClusteredPlacesOnlyOnLoadedRanks) {
  auto const w = make_clustered(64, 4, 1000, LoadDistribution::constant, 1.0,
                                /*seed=*/1);
  EXPECT_EQ(w.num_ranks, 64);
  ASSERT_EQ(w.tasks.size(), 1000u);
  std::set<RankId> used;
  for (RankId const r : w.initial_rank) {
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 4);
    used.insert(r);
  }
  EXPECT_EQ(used.size(), 4u); // all loaded ranks hit with 1000 samples
}

TEST(Workload, ClusteredDeterministicPerSeed) {
  auto const a =
      make_clustered(32, 2, 100, LoadDistribution::gamma, 1.0, 9);
  auto const b =
      make_clustered(32, 2, 100, LoadDistribution::gamma, 1.0, 9);
  EXPECT_EQ(a.initial_rank, b.initial_rank);
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.tasks[i].load, b.tasks[i].load);
  }
}

TEST(Workload, TaskIdsAreSequential) {
  auto const w =
      make_scattered(8, 50, LoadDistribution::uniform, 1.0, 3);
  for (std::size_t i = 0; i < w.tasks.size(); ++i) {
    EXPECT_EQ(w.tasks[i].id, static_cast<TaskId>(i));
  }
}

TEST(Workload, ScatteredUsesAllRanksEventually) {
  auto const w =
      make_scattered(16, 2000, LoadDistribution::constant, 1.0, 5);
  std::set<RankId> used(w.initial_rank.begin(), w.initial_rank.end());
  EXPECT_EQ(used.size(), 16u);
}

TEST(Workload, GradientSkewsTowardHighRanks) {
  auto const w = make_gradient(10, 20000, /*slope=*/4.0,
                               LoadDistribution::constant, 1.0, 7);
  std::vector<int> counts(10, 0);
  for (RankId const r : w.initial_rank) {
    ++counts[static_cast<std::size_t>(r)];
  }
  // Rank 9's weight is 5x rank 0's.
  EXPECT_GT(counts[9], 3 * counts[0]);
}

TEST(Workload, TotalLoadMatchesSum) {
  auto const w =
      make_scattered(4, 100, LoadDistribution::constant, 2.0, 11);
  EXPECT_NEAR(w.total_load(), 200.0, 1e-9);
}

TEST(DrawLoad, MeansApproximatelyScale) {
  Rng rng{13};
  for (auto const dist :
       {LoadDistribution::constant, LoadDistribution::uniform,
        LoadDistribution::gamma, LoadDistribution::lognormal}) {
    double sum = 0.0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) {
      double const l = draw_load(dist, 3.0, rng);
      ASSERT_GE(l, 0.0);
      sum += l;
    }
    EXPECT_NEAR(sum / n, 3.0, 0.2) << "dist " << static_cast<int>(dist);
  }
}

TEST(WorkloadDeath, InvalidLoadedRanksAborts) {
  EXPECT_DEATH(
      make_clustered(4, 8, 10, LoadDistribution::constant, 1.0, 1),
      "precondition");
  EXPECT_DEATH(
      make_clustered(4, 0, 10, LoadDistribution::constant, 1.0, 1),
      "precondition");
}

} // namespace
} // namespace tlb::lbaf
