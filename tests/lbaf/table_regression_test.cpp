/// Medium-scale regression of the §V-B / §V-D table *shapes* — the
/// paper's central empirical claims — at a size fast enough for CI:
/// 512 ranks, 8 loaded, 2500 bimodal tasks (the full 4096-rank versions
/// run in bench/table_*).

#include <gtest/gtest.h>

#include "lbaf/experiment.hpp"

namespace tlb::lbaf {
namespace {

Workload vb_workload() {
  // 1200 tasks over 512 ranks gives l_ave ≈ 3.6, inside the default
  // heavy band [3.2, 5.2] — the regime where the heavy population is
  // individually immovable under the original criterion (the stall
  // mechanism; see DESIGN.md).
  return make_bimodal(512, 8, 1200, BimodalSpec{}, 2021);
}

lb::LbParams base_params() {
  auto p = lb::LbParams::tempered();
  p.fanout = 6;
  p.rounds = 8;
  p.threshold = 1.0;
  p.num_iterations = 10;
  p.num_trials = 1;
  p.order = lb::OrderKind::arbitrary;
  return p;
}

lb::LbParams original_params() {
  auto p = base_params();
  p.criterion = lb::CriterionKind::original;
  p.cmf = lb::CmfKind::original;
  p.refresh = lb::CmfRefresh::build_once;
  return p;
}

lb::LbParams relaxed_params() {
  auto p = base_params();
  p.criterion = lb::CriterionKind::relaxed;
  p.cmf = lb::CmfKind::modified;
  p.refresh = lb::CmfRefresh::recompute;
  return p;
}

TEST(TableRegression, OriginalCriterionShape) {
  auto const result = run_experiment(original_params(), vb_workload());
  auto const records = trial_records(result, 0);
  ASSERT_EQ(records.size(), 10u);

  // Single early drop...
  EXPECT_LT(records[0].imbalance, result.initial_imbalance);
  // ...then a stall: the last five iterations barely move...
  EXPECT_GT(records.back().imbalance, 0.95 * records[4].imbalance);
  // ...far above a balanced state...
  EXPECT_GT(records.back().imbalance, 0.2 * result.initial_imbalance);
  // ...with near-total rejection at the end (paper: ~100%).
  EXPECT_GT(records.back().rejection_rate, 95.0);
  // Gossip traffic recorded each iteration.
  for (auto const& r : records) {
    EXPECT_GT(r.gossip_messages, 0u);
  }
}

TEST(TableRegression, RelaxedCriterionShape) {
  auto const result = run_experiment(relaxed_params(), vb_workload());
  auto const records = trial_records(result, 0);
  ASSERT_EQ(records.size(), 10u);

  // Collapse in iteration 1 (paper: 280 -> 3.34)...
  EXPECT_LT(records[0].imbalance, 0.05 * result.initial_imbalance);
  // ...with a tiny initial rejection rate (paper: 5.4%)...
  EXPECT_LT(records[0].rejection_rate, 10.0);
  // ...converging to low single digits near the max-task floor...
  EXPECT_LT(records.back().imbalance, 2.0);
  // ...with the rejection rate *rising* as the floor is approached.
  EXPECT_GT(records.back().rejection_rate, records[0].rejection_rate);
}

TEST(TableRegression, RelaxedBeatsOriginalByLargeFactor) {
  auto const workload = vb_workload();
  auto const original = run_experiment(original_params(), workload);
  auto const relaxed = run_experiment(relaxed_params(), workload);
  // The paper's gap is ~300x at full scale; demand at least 20x here.
  EXPECT_LT(relaxed.best_imbalance, original.best_imbalance / 20.0);
}

TEST(TableRegression, TransfersDecayAcrossIterations) {
  // Both variants run out of profitable moves: accepted transfers in the
  // final iteration are a small fraction of iteration 1's.
  for (auto const& params : {original_params(), relaxed_params()}) {
    auto const result = run_experiment(params, vb_workload());
    auto const records = trial_records(result, 0);
    EXPECT_LT(static_cast<double>(records.back().transfers),
              0.2 * static_cast<double>(records.front().transfers) + 5.0);
  }
}

} // namespace
} // namespace tlb::lbaf
