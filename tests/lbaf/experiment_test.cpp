#include "lbaf/experiment.hpp"

#include <gtest/gtest.h>

#include "lbaf/greedy_ref.hpp"

namespace tlb::lbaf {
namespace {

/// Scaled-down §V-B regime: bimodal loads whose heavy population exceeds
/// l_ave, so the original criterion has an immovable mass and stalls while
/// the relaxed criterion converges (the paper's 187-vs-0.62 contrast).
Workload paper_like_workload(RankId ranks = 512, RankId loaded = 4,
                             std::size_t tasks = 1200,
                             std::uint64_t seed = 42) {
  return make_bimodal(ranks, loaded, tasks, BimodalSpec{}, seed);
}

TEST(Experiment, OriginalCriterionStallsAfterFirstIteration) {
  // The §V-B phenomenon: with the original criterion the imbalance drops
  // once and then stays trapped near a (bad) local minimum with ~100%
  // rejection rates.
  auto params = lb::LbParams::grapevine();
  params.num_iterations = 6;
  params.num_trials = 1;
  params.rounds = 8;
  auto const result = run_experiment(params, paper_like_workload());
  auto const records = trial_records(result, 0);
  ASSERT_EQ(records.size(), 6u);
  // First iteration makes most of whatever progress will happen...
  EXPECT_LT(records[0].imbalance, result.initial_imbalance);
  // ...then stalls: later iterations barely move and reject nearly all.
  double const after_first = records[0].imbalance;
  EXPECT_GT(records.back().imbalance, 0.3 * after_first);
  EXPECT_GT(records.back().rejection_rate, 90.0);
}

TEST(Experiment, RelaxedCriterionConvergesFar) {
  auto params = lb::LbParams::tempered();
  params.num_iterations = 8;
  params.num_trials = 1;
  params.order = lb::OrderKind::arbitrary;
  params.rounds = 8;
  auto const result = run_experiment(params, paper_like_workload());
  // The relaxed criterion should reach low single digits from I ~ O(60).
  EXPECT_GT(result.initial_imbalance, 20.0);
  EXPECT_LT(result.best_imbalance, 2.0);
}

TEST(Experiment, RelaxedBeatsOriginalSubstantially) {
  auto const workload = paper_like_workload();
  auto grapevine = lb::LbParams::grapevine();
  grapevine.num_iterations = 8;
  grapevine.rounds = 8;
  auto tempered = lb::LbParams::tempered();
  tempered.num_iterations = 8;
  tempered.num_trials = 1;
  tempered.rounds = 8;
  auto const original = run_experiment(grapevine, workload);
  auto const relaxed = run_experiment(tempered, workload);
  EXPECT_LT(relaxed.best_imbalance, 0.2 * original.best_imbalance);
}

TEST(Experiment, FirstIterationRejectionRatesDiffer) {
  // §V-B vs §V-D: original criterion rejects ~95% in iteration 1;
  // relaxed rejects only a few percent.
  auto const workload = paper_like_workload();
  auto grapevine = lb::LbParams::grapevine();
  grapevine.rounds = 8;
  auto tempered = lb::LbParams::tempered();
  tempered.num_iterations = 1;
  tempered.num_trials = 1;
  tempered.order = lb::OrderKind::arbitrary;
  tempered.rounds = 8;
  auto const original = run_experiment(grapevine, workload);
  auto const relaxed = run_experiment(tempered, workload);
  // The heavy population is immovable for the original criterion, so its
  // rejection rate is substantial from the start; the relaxed criterion
  // accepts nearly everything in iteration 1 (§V-D: 5.4% vs 94.5%).
  EXPECT_GT(original.records.at(0).rejection_rate, 15.0);
  EXPECT_LT(relaxed.records.at(0).rejection_rate, 10.0);
  EXPECT_GT(original.records.at(0).rejection_rate,
            2.0 * relaxed.records.at(0).rejection_rate);
}

TEST(Experiment, BestMigrationsReproduceBestImbalance) {
  auto params = lb::LbParams::tempered();
  params.num_iterations = 4;
  params.num_trials = 2;
  params.rounds = 8;
  auto const workload = paper_like_workload(128, 4, 1000, 7);
  auto const result = run_experiment(params, workload);
  Assignment check{workload};
  check.apply(result.best_migrations);
  EXPECT_TRUE(check.validate());
  EXPECT_NEAR(check.imbalance(), result.best_imbalance, 1e-9);
  EXPECT_NEAR(check.total_load(), Assignment{workload}.total_load(), 1e-9);
}

TEST(Experiment, MultipleTrialsNeverWorseThanSingle) {
  auto const workload = paper_like_workload(128, 4, 1000, 21);
  auto single = lb::LbParams::tempered();
  single.num_iterations = 3;
  single.num_trials = 1;
  single.rounds = 8;
  auto multi = single;
  multi.num_trials = 4;
  auto const one = run_experiment(single, workload);
  auto const four = run_experiment(multi, workload);
  EXPECT_LE(four.best_imbalance, one.best_imbalance + 1e-12);
}

TEST(Experiment, DeterministicGivenSeed) {
  auto params = lb::LbParams::tempered();
  params.num_iterations = 3;
  params.num_trials = 2;
  params.rounds = 6;
  auto const workload = paper_like_workload(64, 4, 500, 3);
  auto const a = run_experiment(params, workload);
  auto const b = run_experiment(params, workload);
  EXPECT_EQ(a.best_imbalance, b.best_imbalance);
  EXPECT_EQ(a.best_migrations.size(), b.best_migrations.size());
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].transfers, b.records[i].transfers);
    EXPECT_EQ(a.records[i].rejected, b.records[i].rejected);
    EXPECT_DOUBLE_EQ(a.records[i].imbalance, b.records[i].imbalance);
  }
}

TEST(Experiment, ImbalanceNeverBelowGreedyFloorByMuch) {
  // Greedy with global knowledge is near optimal; the distributed scheme
  // cannot do better than the theoretical floor (max task load bound).
  auto const workload = paper_like_workload(64, 4, 800, 17);
  auto params = lb::LbParams::tempered();
  params.num_iterations = 6;
  params.num_trials = 2;
  params.rounds = 8;
  auto const result = run_experiment(params, workload);
  Assignment const initial{workload};
  double const greedy = greedy_imbalance(initial);
  EXPECT_GE(result.best_imbalance, greedy - 1e-9);
}

TEST(Experiment, TrialRecordsFilterAndSort) {
  auto params = lb::LbParams::tempered();
  params.num_iterations = 2;
  params.num_trials = 3;
  params.rounds = 4;
  auto const result =
      run_experiment(params, paper_like_workload(32, 2, 200, 5));
  for (int t = 0; t < 3; ++t) {
    auto const records = trial_records(result, t);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].iteration, 1);
    EXPECT_EQ(records[1].iteration, 2);
    EXPECT_EQ(records[0].trial, t);
  }
}

} // namespace
} // namespace tlb::lbaf
