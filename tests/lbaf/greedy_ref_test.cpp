#include "lbaf/greedy_ref.hpp"

#include <gtest/gtest.h>

namespace tlb::lbaf {
namespace {

TEST(GreedyRef, PerfectlyDivisibleReachesZeroImbalance) {
  Workload w;
  w.num_ranks = 4;
  for (int i = 0; i < 8; ++i) {
    w.tasks.push_back({static_cast<TaskId>(i), 1.0});
    w.initial_rank.push_back(0);
  }
  Assignment a{w};
  EXPECT_DOUBLE_EQ(a.imbalance(), 3.0);
  auto const migrations = greedy_rebalance(a);
  a.apply(migrations);
  EXPECT_NEAR(a.imbalance(), 0.0, 1e-12);
  EXPECT_TRUE(a.validate());
}

TEST(GreedyRef, LptFourThirdsBound) {
  // LPT makespan <= (4/3 - 1/(3m)) * OPT. With total load W on m ranks,
  // OPT >= max(W/m, max task). Verify the bound on random instances.
  Rng rng{55};
  for (int trial = 0; trial < 30; ++trial) {
    Workload w;
    w.num_ranks = 8;
    double total = 0.0;
    double max_task = 0.0;
    auto const n = 20 + rng.index(60);
    for (std::size_t i = 0; i < n; ++i) {
      double const load = rng.uniform(0.1, 3.0);
      w.tasks.push_back({static_cast<TaskId>(i), load});
      w.initial_rank.push_back(
          static_cast<RankId>(rng.uniform_below(8)));
      total += load;
      max_task = std::max(max_task, load);
    }
    Assignment a{w};
    a.apply(greedy_rebalance(a));
    double const opt_lower = std::max(total / 8.0, max_task);
    double const bound = (4.0 / 3.0 - 1.0 / 24.0) * opt_lower;
    EXPECT_LE(a.max_load(), bound + 1e-9);
  }
}

TEST(GreedyRef, NoMigrationForAlreadyOptimalSingleRank) {
  Workload w;
  w.num_ranks = 1;
  w.tasks = {{0, 1.0}, {1, 2.0}};
  w.initial_rank = {0, 0};
  Assignment const a{w};
  auto const migrations = greedy_rebalance(a);
  EXPECT_TRUE(migrations.empty());
}

TEST(GreedyRef, MigrationsOnlyListMovedTasks) {
  Workload w;
  w.num_ranks = 2;
  w.tasks = {{0, 5.0}, {1, 1.0}};
  w.initial_rank = {0, 1};
  // LPT places task 0 (load 5) on rank 0 and task 1 on rank 1 (or the
  // reverse rank labels); either way the assignment is already balanced
  // up to labeling, so at most both tasks move, never one redundantly.
  Assignment a{w};
  auto const migrations = greedy_rebalance(a);
  a.apply(migrations);
  EXPECT_TRUE(a.validate());
  EXPECT_DOUBLE_EQ(a.max_load(), 5.0);
}

TEST(GreedyRef, ImbalanceHelperMatchesManualApplication) {
  auto const w =
      make_clustered(16, 2, 300, LoadDistribution::uniform, 1.0, 77);
  Assignment a{w};
  double const helper = greedy_imbalance(a);
  auto const migrations = greedy_rebalance(a);
  a.apply(migrations);
  EXPECT_DOUBLE_EQ(helper, a.imbalance());
}

TEST(GreedyRef, DeterministicTieBreaking) {
  Workload w;
  w.num_ranks = 3;
  for (int i = 0; i < 9; ++i) {
    w.tasks.push_back({static_cast<TaskId>(i), 2.0}); // all ties
    w.initial_rank.push_back(0);
  }
  Assignment const a{w};
  auto const m1 = greedy_rebalance(a);
  auto const m2 = greedy_rebalance(a);
  EXPECT_EQ(m1, m2);
}

} // namespace
} // namespace tlb::lbaf
