/// Tests for bounded-knowledge gossip (paper footnote 2) through the
/// sequential analysis framework.

#include <gtest/gtest.h>

#include "lbaf/experiment.hpp"
#include "lbaf/gossip_sim.hpp"

namespace tlb::lbaf {
namespace {

TEST(GossipCap, KnowledgeSizeNeverExceedsCap) {
  constexpr int p = 256;
  std::vector<LoadType> loads(p, 0.0);
  for (int i = 0; i < p; i += 2) {
    loads[static_cast<std::size_t>(i)] = 2.0;
  }
  Rng rng{5};
  auto const knowledge =
      run_gossip(loads, 1.0, 6, 6, rng, nullptr, /*max_knowledge=*/8);
  for (auto const& k : knowledge) {
    EXPECT_LE(k.size(), 8u);
  }
}

TEST(GossipCap, BytesBoundedByCap) {
  constexpr int p = 512;
  std::vector<LoadType> loads(p, 0.0);
  for (int i = 0; i < p; i += 2) {
    loads[static_cast<std::size_t>(i)] = 2.0;
  }
  GossipStats capped_stats;
  GossipStats full_stats;
  Rng r1{7};
  Rng r2{7};
  (void)run_gossip(loads, 1.0, 6, 6, r1, &capped_stats, 8);
  (void)run_gossip(loads, 1.0, 6, 6, r2, &full_stats, 0);
  EXPECT_LT(capped_stats.bytes, full_stats.bytes / 4);
}

TEST(GossipCap, ZeroCapMatchesUnlimited) {
  constexpr int p = 128;
  std::vector<LoadType> loads(p, 0.0);
  for (int i = 0; i < p; i += 3) {
    loads[static_cast<std::size_t>(i)] = 2.0;
  }
  Rng r1{9};
  Rng r2{9};
  auto const a = run_gossip(loads, 1.0, 4, 5, r1, nullptr, 0);
  auto const b = run_gossip(loads, 1.0, 4, 5, r2, nullptr, 1 << 20);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].size(), b[i].size());
  }
}

TEST(ExperimentCap, CappedExperimentRunsAndImproves) {
  auto const workload = make_gradient(256, 1500, 4.0,
                                      LoadDistribution::gamma, 1.0, 13);
  auto params = lb::LbParams::tempered();
  params.rounds = 6;
  params.num_trials = 1;
  params.num_iterations = 6;
  params.max_knowledge = 8;
  auto const result = run_experiment(params, workload);
  EXPECT_LT(result.best_imbalance, result.initial_imbalance);
}

TEST(ExperimentCap, DeterministicWithCap) {
  auto const workload =
      make_clustered(128, 4, 600, LoadDistribution::uniform, 1.0, 21);
  auto params = lb::LbParams::tempered();
  params.rounds = 5;
  params.num_trials = 2;
  params.num_iterations = 3;
  params.max_knowledge = 6;
  auto const a = run_experiment(params, workload);
  auto const b = run_experiment(params, workload);
  EXPECT_EQ(a.best_imbalance, b.best_imbalance);
  EXPECT_EQ(a.best_migrations.size(), b.best_migrations.size());
}

TEST(ExperimentCap, UnlimitedNoWorseThanTightCap) {
  auto const workload = make_gradient(256, 1500, 4.0,
                                      LoadDistribution::gamma, 1.0, 29);
  auto run_with = [&](int cap) {
    auto params = lb::LbParams::tempered();
    params.rounds = 6;
    params.num_trials = 2;
    params.num_iterations = 5;
    params.max_knowledge = cap;
    return run_experiment(params, workload).best_imbalance;
  };
  EXPECT_LE(run_with(0), run_with(2) + 0.25);
}

} // namespace
} // namespace tlb::lbaf
