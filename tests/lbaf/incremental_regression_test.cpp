/// Cross-validation of the Fenwick-backed incremental CMF against the
/// recompute reference on the §V-B / §V-D table experiment (the E2/E3
/// configuration at CI scale): the accept/reject accounting and the
/// imbalance trajectory must be identical at the default seeds. Any
/// divergence could only come from a floating-point tie at a sampling
/// bucket boundary (the Fenwick prefix sums associate additions in tree
/// order, Cmf scans left to right); none occurs at these seeds, so the
/// tables are pinned exactly.

#include <gtest/gtest.h>

#include "lbaf/experiment.hpp"

namespace tlb::lbaf {
namespace {

Workload vb_workload() {
  // Same CI-scale §V-B stand-in as table_regression_test.cpp.
  return make_bimodal(512, 8, 1200, BimodalSpec{}, 2021);
}

lb::LbParams relaxed_params(lb::CmfRefresh refresh) {
  auto p = lb::LbParams::tempered();
  p.fanout = 6;
  p.rounds = 8;
  p.threshold = 1.0;
  p.num_iterations = 10;
  p.num_trials = 1;
  p.order = lb::OrderKind::arbitrary;
  p.refresh = refresh;
  return p;
}

TEST(IncrementalRegression, E2TableIsUnchangedUnderIncrementalCmf) {
  auto const workload = vb_workload();
  auto const reference =
      run_experiment(relaxed_params(lb::CmfRefresh::recompute), workload);
  auto const incremental =
      run_experiment(relaxed_params(lb::CmfRefresh::incremental), workload);

  ASSERT_EQ(reference.records.size(), incremental.records.size());
  for (std::size_t i = 0; i < reference.records.size(); ++i) {
    auto const& a = reference.records[i];
    auto const& b = incremental.records[i];
    EXPECT_EQ(a.transfers, b.transfers) << "iteration " << a.iteration;
    EXPECT_EQ(a.rejected, b.rejected) << "iteration " << a.iteration;
    EXPECT_DOUBLE_EQ(a.imbalance, b.imbalance) << "iteration " << a.iteration;
  }
  EXPECT_DOUBLE_EQ(reference.best_imbalance, incremental.best_imbalance);
  EXPECT_EQ(reference.best_migrations.size(),
            incremental.best_migrations.size());
}

TEST(IncrementalRegression, TemperedFastPresetMatchesTempered) {
  // The packaged preset differs from tempered() only in the refresh mode,
  // and reproduces its full multi-trial trajectory.
  auto const workload = vb_workload();
  auto reference = lb::LbParams::tempered();
  auto fast = lb::LbParams::tempered_fast();
  reference.num_trials = 2;
  reference.num_iterations = 4;
  fast.num_trials = 2;
  fast.num_iterations = 4;

  auto const a = run_experiment(reference, workload);
  auto const b = run_experiment(fast, workload);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].transfers, b.records[i].transfers);
    EXPECT_EQ(a.records[i].rejected, b.records[i].rejected);
    EXPECT_DOUBLE_EQ(a.records[i].imbalance, b.records[i].imbalance);
  }
  EXPECT_DOUBLE_EQ(a.best_imbalance, b.best_imbalance);
}

} // namespace
} // namespace tlb::lbaf
