#include "lbaf/gossip_sim.hpp"

#include <gtest/gtest.h>

namespace tlb::lbaf {
namespace {

TEST(GossipSim, UnderloadedRanksKnowThemselves) {
  std::vector<LoadType> const loads{0.0, 2.0, 0.5, 2.0};
  Rng rng{1};
  auto const knowledge = run_gossip(loads, 1.125, 2, 3, rng);
  EXPECT_TRUE(knowledge[0].contains(0));
  EXPECT_TRUE(knowledge[2].contains(2));
  EXPECT_DOUBLE_EQ(knowledge[0].load_of(0), 0.0);
  EXPECT_DOUBLE_EQ(knowledge[2].load_of(2), 0.5);
}

TEST(GossipSim, OverloadedRanksNeverEnterKnowledge) {
  std::vector<LoadType> const loads{0.0, 4.0, 0.0, 4.0};
  Rng rng{2};
  auto const knowledge = run_gossip(loads, 2.0, 3, 4, rng);
  for (auto const& k : knowledge) {
    EXPECT_FALSE(k.contains(1));
    EXPECT_FALSE(k.contains(3));
  }
}

TEST(GossipSim, NoUnderloadedMeansNoTraffic) {
  std::vector<LoadType> const loads{1.0, 1.0, 1.0};
  GossipStats stats;
  Rng rng{3};
  auto const knowledge = run_gossip(loads, 1.0, 4, 5, rng, &stats);
  EXPECT_EQ(stats.messages, 0u);
  for (auto const& k : knowledge) {
    EXPECT_TRUE(k.empty());
  }
}

TEST(GossipSim, SingleRankIsQuiet) {
  std::vector<LoadType> const loads{0.5};
  GossipStats stats;
  Rng rng{4};
  auto const knowledge = run_gossip(loads, 1.0, 4, 5, rng, &stats);
  EXPECT_EQ(stats.messages, 0u);
  EXPECT_EQ(knowledge.size(), 1u);
}

TEST(GossipSim, DeterministicGivenSeed) {
  std::vector<LoadType> loads;
  Rng gen{5};
  for (int i = 0; i < 64; ++i) {
    loads.push_back(gen.uniform(0.0, 2.0));
  }
  Rng r1{6};
  Rng r2{6};
  auto const a = run_gossip(loads, 1.0, 3, 4, r1);
  auto const b = run_gossip(loads, 1.0, 3, 4, r2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    auto const ea = a[i].entries();
    auto const eb = b[i].entries();
    for (std::size_t j = 0; j < ea.size(); ++j) {
      EXPECT_EQ(ea[j].rank, eb[j].rank);
      EXPECT_DOUBLE_EQ(ea[j].load, eb[j].load);
    }
  }
}

TEST(GossipSim, TrafficBoundedByPFK) {
  // Round-gated forwarding caps traffic at O(P * f * k).
  constexpr int p = 128;
  constexpr int f = 4;
  constexpr int k = 5;
  std::vector<LoadType> loads(p, 0.0);
  for (int i = 0; i < p / 2; ++i) {
    loads[static_cast<std::size_t>(i)] = 2.0;
  }
  GossipStats stats;
  Rng rng{7};
  (void)run_gossip(loads, 1.0, f, k, rng, &stats);
  EXPECT_LE(stats.messages,
            static_cast<std::size_t>(p) * f * k);
  EXPECT_GT(stats.messages, 0u);
  EXPECT_LE(stats.max_round_seen, static_cast<std::size_t>(k));
}

class GossipCoverage
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GossipCoverage, OverloadedRanksLearnMostUnderloaded) {
  // Overloaded ranks should know nearly all underloaded ranks with high
  // probability (the paper's §IV-B analysis). Peer sets are fixed per
  // epoch (the static f-out overlay behind the delta wire plane), so
  // saturation needs k a few rounds past the overlay's log_f(P) diameter
  // — entries travel one hop per round along fixed edges — rather than
  // the bare k >= log_f(P) that fresh-peers-per-forward mixing achieves.
  auto const [fanout, rounds] = GetParam();
  constexpr int p = 256;
  std::vector<LoadType> loads(p, 0.0);
  // Half the ranks overloaded, half underloaded.
  for (int i = 0; i < p; i += 2) {
    loads[static_cast<std::size_t>(i)] = 2.0;
  }
  Rng rng{11};
  auto const knowledge = run_gossip(loads, 1.0, fanout, rounds, rng);
  double coverage_sum = 0.0;
  int overloaded = 0;
  for (int i = 0; i < p; i += 2) {
    coverage_sum +=
        static_cast<double>(knowledge[static_cast<std::size_t>(i)].size()) /
        (p / 2.0);
    ++overloaded;
  }
  double const mean_coverage = coverage_sum / overloaded;
  EXPECT_GT(mean_coverage, 0.75)
      << "f=" << fanout << " k=" << rounds;
}

INSTANTIATE_TEST_SUITE_P(FanoutRounds, GossipCoverage,
                         ::testing::Values(std::tuple{4, 10},
                                           std::tuple{6, 8},
                                           std::tuple{8, 6}));

TEST(GossipSim, FewRoundsGiveOnlyPartialKnowledge) {
  constexpr int p = 512;
  std::vector<LoadType> loads(p, 0.0);
  for (int i = 0; i < p; i += 2) {
    loads[static_cast<std::size_t>(i)] = 2.0;
  }
  Rng rng{13};
  auto const partial = run_gossip(loads, 1.0, /*fanout=*/2, /*rounds=*/1, rng);
  double total = 0.0;
  for (int i = 0; i < p; i += 2) {
    total += static_cast<double>(partial[static_cast<std::size_t>(i)].size());
  }
  double const mean = total / (p / 2.0);
  EXPECT_LT(mean, p / 4.0); // nowhere near full knowledge after 1 round
}

} // namespace
} // namespace tlb::lbaf
