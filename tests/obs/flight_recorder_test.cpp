#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "mini_json.hpp"
#include "obs/causal.hpp"
#include "obs/phase_timeline.hpp"
#include "obs/telemetry.hpp"
#include "runtime/runtime.hpp"
#include "support/check.hpp"

#if TLB_TELEMETRY_ENABLED
#define TLB_SKIP_WITHOUT_TELEMETRY() (void)0
#else
#define TLB_SKIP_WITHOUT_TELEMETRY()                                           \
  GTEST_SKIP() << "telemetry compiled out (TLB_TELEMETRY=OFF)"
#endif

namespace tlb::obs {
namespace {

#if TLB_TELEMETRY_ENABLED

/// Telemetry + a scratch dump path + a re-armed recorder for one test;
/// everything restored on exit.
class ScopedRecorder {
public:
  explicit ScopedRecorder(std::string name)
      : path_{::testing::TempDir() + std::move(name)} {
    set_enabled(true);
    PhaseTimeline::instance().clear();
    CausalLog::instance().clear();
    set_flight_record_path(path_);
    rearm_flight_recorder();
    std::remove(path_.c_str());
  }
  ~ScopedRecorder() {
    std::remove(path_.c_str());
    set_flight_record_path("");
    rearm_flight_recorder();
    PhaseTimeline::instance().clear();
    CausalLog::instance().clear();
    set_enabled(false);
  }
  [[nodiscard]] std::string const& path() const { return path_; }

  [[nodiscard]] std::string slurp() const {
    std::ifstream in{path_};
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

private:
  std::string path_;
};

PhaseSample mk_sample(std::uint64_t phase) {
  PhaseSample s;
  s.phase = phase;
  s.strategy = "tempered";
  s.imbalance_before = 3.0;
  s.imbalance_after = 0.25;
  return s;
}

TEST(FlightRecorder, DumpWritesTimelineCausalTailAndMetrics) {
  ScopedRecorder scoped{"fr_dump.json"};
  PhaseTimeline::instance().record(mk_sample(0));
  PhaseTimeline::instance().record(mk_sample(1));
  CausalEvent ev;
  ev.stamp.id = 42;
  ev.to = 3;
  ev.kind = "gossip";
  CausalLog::instance().record(ev);
  CausalLog::instance().set_step(1);

  auto const written = dump_flight_record("unit_test");
  EXPECT_EQ(written, scoped.path());
  EXPECT_TRUE(flight_record_dumped());

  auto const doc = test::parse_json(scoped.slurp());
  EXPECT_EQ(doc.at("reason").str(), "unit_test");
  EXPECT_EQ(doc.at("step").num(), 1.0);
  EXPECT_EQ(doc.at("timeline_total_recorded").num(), 2.0);
  ASSERT_EQ(doc.at("timeline").array().size(), 2u);
  EXPECT_EQ(doc.at("timeline").array()[1].at("phase").num(), 1.0);
  ASSERT_EQ(doc.at("causal_tail").array().size(), 1u);
  EXPECT_EQ(doc.at("causal_tail").array()[0].at("id").num(), 42.0);
  EXPECT_TRUE(doc.at("metrics").is_array());
}

TEST(FlightRecorder, SecondDumpIsSuppressedUntilRearmed) {
  ScopedRecorder scoped{"fr_latch.json"};
  EXPECT_EQ(dump_flight_record("first"), scoped.path());
  EXPECT_EQ(dump_flight_record("second"), "");
  rearm_flight_recorder();
  EXPECT_EQ(dump_flight_record("third"), scoped.path());
  auto const doc = test::parse_json(scoped.slurp());
  EXPECT_EQ(doc.at("reason").str(), "third");
}

TEST(FlightRecorder, DisabledTelemetrySuppressesDump) {
  ScopedRecorder scoped{"fr_disabled.json"};
  set_enabled(false);
  EXPECT_EQ(dump_flight_record("nope"), "");
  EXPECT_FALSE(flight_record_dumped());
  std::ifstream in{scoped.path()};
  EXPECT_FALSE(in.good());
}

// ---------------------------------------------------------------------
// Trigger: quiescence-budget exhaustion. An endless relay blows the poll
// budget; the runtime dumps before flushing the evidence away.
// ---------------------------------------------------------------------

void relay(rt::RankContext& ctx) {
  auto const next = static_cast<RankId>((ctx.rank() + 1) % ctx.num_ranks());
  ctx.send(next, 8, [](rt::RankContext& c) { relay(c); },
           rt::MessageKind::other);
}

TEST(FlightRecorder, QuiesceBudgetExhaustionDumps) {
  ScopedRecorder scoped{"fr_budget.json"};
  PhaseTimeline::instance().record(mk_sample(9));

  rt::RuntimeConfig config;
  config.num_ranks = 4;
  rt::Runtime rt{config};
  rt.post(0, [](rt::RankContext& ctx) { relay(ctx); });
  EXPECT_FALSE(rt.run_until_quiescent(50));

  EXPECT_TRUE(flight_record_dumped());
  auto const doc = test::parse_json(scoped.slurp());
  EXPECT_EQ(doc.at("reason").str(), "quiesce_budget_exhausted");
  ASSERT_EQ(doc.at("timeline").array().size(), 1u);
  EXPECT_EQ(doc.at("timeline").array()[0].at("phase").num(), 9.0);
  // The causal tail holds the relay's final deliveries.
  EXPECT_FALSE(doc.at("causal_tail").array().empty());
}

// ---------------------------------------------------------------------
// Trigger: an abort-mode invariant failure. The audit failure hook runs
// in the dying process (a gtest death test child); the parent parses the
// postmortem the child left behind.
// ---------------------------------------------------------------------

TEST(FlightRecorderDeathTest, InvariantFailureDumpsBeforeAbort) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ScopedRecorder scoped{"fr_invariant.json"};

  EXPECT_DEATH(
      {
        set_enabled(true); // installs the audit failure hook
        set_flight_record_path(scoped.path());
        rearm_flight_recorder();
        PhaseTimeline::instance().record(mk_sample(5));
        audit::set_mode(audit::Mode::abort_process);
        audit::report("x > 0", "flight recorder death test",
                      "flight_recorder_test.cpp", 1);
      },
      "flight recorder death test");

  auto const doc = test::parse_json(scoped.slurp());
  EXPECT_EQ(doc.at("reason").str(), "flight recorder death test");
  ASSERT_EQ(doc.at("timeline").array().size(), 1u);
  EXPECT_EQ(doc.at("timeline").array()[0].at("phase").num(), 5.0);
}

#else // !TLB_TELEMETRY_ENABLED

TEST(FlightRecorder, CompiledOutApiIsInert) {
  EXPECT_EQ(dump_flight_record("x"), "");
  EXPECT_FALSE(flight_record_dumped());
  EXPECT_EQ(flight_record_path(), "");
}

#endif // TLB_TELEMETRY_ENABLED

} // namespace
} // namespace tlb::obs
