#include "obs/causal.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "mini_json.hpp"
#include "obs/telemetry.hpp"
#include "runtime/runtime.hpp"

// Stamping lives behind the telemetry gate: without it envelopes have no
// CausalStamp member and the behavior under test does not exist.
#if TLB_TELEMETRY_ENABLED
#define TLB_SKIP_WITHOUT_TELEMETRY() (void)0
#else
#define TLB_SKIP_WITHOUT_TELEMETRY()                                           \
  GTEST_SKIP() << "telemetry compiled out (TLB_TELEMETRY=OFF)"
#endif

namespace tlb::obs {
namespace {

class ScopedTelemetry {
public:
  ScopedTelemetry() {
    set_enabled(true);
    CausalLog::instance().clear();
    CausalLog::instance().set_step(0);
  }
  ~ScopedTelemetry() {
    CausalLog::instance().clear();
    set_enabled(false);
  }
};

rt::RuntimeConfig config(RankId ranks = 4) {
  rt::RuntimeConfig cfg;
  cfg.num_ranks = ranks;
  return cfg;
}

// ---------------------------------------------------------------------
// Runtime stamping
// ---------------------------------------------------------------------

#if TLB_TELEMETRY_ENABLED

TEST(CausalStamping, RootPostsGetFreshIdsAndZeroParent) {
  ScopedTelemetry scoped;
  CausalLog::instance().set_step(7);
  rt::Runtime rt{config()};
  rt.post(2, [](rt::RankContext&) {});
  rt.run_until_quiescent();

  auto const events = CausalLog::instance().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(events[0].stamp.id, 0u);
  EXPECT_EQ(events[0].stamp.parent, 0u);
  EXPECT_EQ(events[0].stamp.hop, 0u);
  EXPECT_EQ(events[0].stamp.step, 7u);
  EXPECT_EQ(events[0].stamp.origin, 2);
  EXPECT_EQ(events[0].to, 2);
}

TEST(CausalStamping, SendsInsideHandlersChainParentAndHop) {
  ScopedTelemetry scoped;
  rt::Runtime rt{config()};
  // A three-hop relay: 0 -> 1 -> 2 -> 3.
  rt.post(0, [](rt::RankContext& ctx) {
    ctx.send(1, 8, [](rt::RankContext& ctx1) {
      ctx1.send(2, 8, [](rt::RankContext& ctx2) {
        ctx2.send(3, 8, [](rt::RankContext&) {});
      });
    });
  });
  rt.run_until_quiescent();

  auto events = CausalLog::instance().snapshot();
  ASSERT_EQ(events.size(), 4u);
  std::sort(events.begin(), events.end(),
            [](CausalEvent const& a, CausalEvent const& b) {
              return a.stamp.hop < b.stamp.hop;
            });
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].stamp.hop, i);
    // Every hop keeps the chain's origin (the root post's destination).
    EXPECT_EQ(events[i].stamp.origin, 0);
    if (i > 0) {
      EXPECT_EQ(events[i].stamp.parent, events[i - 1].stamp.id);
    }
  }
}

TEST(CausalStamping, HandlersCanReadTheirOwnCause) {
  ScopedTelemetry scoped;
  rt::Runtime rt{config()};
  static std::uint16_t seen_hop;
  seen_hop = 0xffff;
  rt.post(1, [](rt::RankContext& ctx) {
    ctx.send(2, 4, [](rt::RankContext& inner) {
      ASSERT_NE(inner.current_cause(), nullptr);
      seen_hop = inner.current_cause()->hop;
    });
  });
  rt.run_until_quiescent();
  EXPECT_EQ(seen_hop, 1u);
}

TEST(CausalStamping, DisabledTelemetryRecordsNothing) {
  set_enabled(false);
  CausalLog::instance().clear();
  rt::Runtime rt{config()};
  rt.post(0, [](rt::RankContext& ctx) {
    ctx.send(1, 8, [](rt::RankContext&) {});
  });
  rt.run_until_quiescent();
  EXPECT_EQ(CausalLog::instance().event_count(), 0u);
}

TEST(CausalStamping, SeededRunsProduceIdenticalIdSequences) {
  auto run = [] {
    ScopedTelemetry scoped;
    rt::Runtime rt{config(8)};
    rt.post_all([](rt::RankContext& ctx) {
      auto const next = static_cast<RankId>((ctx.rank() + 1) %
                                            ctx.num_ranks());
      ctx.send(next, 16, [](rt::RankContext& c2) {
        auto const nn =
            static_cast<RankId>((c2.rank() + 1) % c2.num_ranks());
        c2.send(nn, 16, [](rt::RankContext&) {});
      });
    });
    rt.run_until_quiescent();
    std::vector<std::uint64_t> ids;
    for (auto const& e : CausalLog::instance().snapshot()) {
      ids.push_back(e.stamp.id);
    }
    return ids;
  };
  auto const a = run();
  auto const b = run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

#endif // TLB_TELEMETRY_ENABLED

// ---------------------------------------------------------------------
// The reducer (pure function of the event list — no gate needed)
// ---------------------------------------------------------------------

CausalEvent make_event(std::uint64_t id, std::uint64_t parent,
                       std::uint16_t hop, RankId to, char const* kind,
                       std::int64_t dur_us) {
  CausalEvent e;
  e.stamp.id = id;
  e.stamp.parent = parent;
  e.stamp.origin = 0;
  e.stamp.hop = hop;
  e.from = 0;
  e.to = to;
  e.kind = kind;
  e.bytes = 8;
  e.dur_us = dur_us;
  return e;
}

TEST(CriticalPath, EmptyLogYieldsEmptyPath) {
  auto const path = compute_critical_path({});
  EXPECT_TRUE(path.chain.empty());
  EXPECT_EQ(path.handler_us, 0);
}

TEST(CriticalPath, WalksDeepestChainBackToRoot) {
  // Two chains from one root: depth 2 and depth 3; the deeper one wins.
  std::vector<CausalEvent> events = {
      make_event(1, 0, 0, 0, "other", 5),
      make_event(2, 1, 1, 1, "gossip", 3),   // shallow branch
      make_event(3, 1, 1, 2, "gossip", 1),
      make_event(4, 3, 2, 3, "transfer", 2), // deep branch
  };
  auto const path = compute_critical_path(events);
  ASSERT_EQ(path.chain.size(), 3u);
  EXPECT_EQ(path.chain[0].stamp.id, 1u);
  EXPECT_EQ(path.chain[1].stamp.id, 3u);
  EXPECT_EQ(path.chain[2].stamp.id, 4u);
  EXPECT_EQ(path.handler_us, 5 + 1 + 2);
}

TEST(CriticalPath, TieOnDepthBreaksTowardLargerId) {
  std::vector<CausalEvent> events = {
      make_event(1, 0, 0, 0, "other", 0),
      make_event(2, 1, 1, 1, "gossip", 9),
      make_event(5, 1, 1, 2, "gossip", 1),
  };
  auto const path = compute_critical_path(events);
  ASSERT_EQ(path.chain.size(), 2u);
  EXPECT_EQ(path.chain.back().stamp.id, 5u);
}

TEST(CriticalPath, DuplicateIdsKeepFirstOccurrence) {
  // A fault-plane duplicate delivers the same logical message twice; the
  // first recorded delivery is authoritative.
  std::vector<CausalEvent> events = {
      make_event(1, 0, 0, 0, "other", 1),
      make_event(2, 1, 1, 1, "gossip", 7),
      make_event(2, 1, 1, 1, "gossip", 100), // the duplicate
  };
  auto const path = compute_critical_path(events);
  ASSERT_EQ(path.chain.size(), 2u);
  EXPECT_EQ(path.handler_us, 1 + 7);
}

TEST(CriticalPath, UnstampedEventsAreIgnored) {
  std::vector<CausalEvent> events = {
      make_event(0, 0, 0, 0, "other", 50), // unstamped
      make_event(1, 0, 0, 1, "other", 2),
  };
  auto const path = compute_critical_path(events);
  ASSERT_EQ(path.chain.size(), 1u);
  EXPECT_EQ(path.chain[0].stamp.id, 1u);
}

TEST(CriticalPath, AttributionSumsPerRankAndKind) {
  std::vector<CausalEvent> events = {
      make_event(1, 0, 0, 4, "other", 2),
      make_event(2, 1, 1, 5, "gossip", 3),
      make_event(3, 2, 2, 4, "gossip", 4),
  };
  auto const path = compute_critical_path(events);
  ASSERT_EQ(path.chain.size(), 3u);
  ASSERT_EQ(path.by_rank.size(), 2u);
  // Sorted by descending us: rank 4 accumulated 6us over two hops.
  EXPECT_EQ(path.by_rank[0].key, "rank 4");
  EXPECT_EQ(path.by_rank[0].us, 6);
  EXPECT_EQ(path.by_rank[0].hops, 2u);
  ASSERT_EQ(path.by_kind.size(), 2u);
  EXPECT_EQ(path.by_kind[0].key, "gossip");
  EXPECT_EQ(path.by_kind[0].us, 7);
}

TEST(CriticalPath, CyclicParentLinksTerminate) {
  // Corrupt input (id cycle): the hop-bounded walk must not spin.
  std::vector<CausalEvent> events = {
      make_event(1, 2, 1, 0, "other", 1),
      make_event(2, 1, 1, 1, "other", 1),
  };
  auto const path = compute_critical_path(events);
  EXPECT_LE(path.chain.size(), 2u);
}

// ---------------------------------------------------------------------
// JSON round-trip
// ---------------------------------------------------------------------

TEST(CausalJson, WriteJsonParsesBackWithAllFields) {
  TLB_SKIP_WITHOUT_TELEMETRY();
  ScopedTelemetry scoped;
  CausalLog::instance().set_step(3);
  CausalLog::instance().record(
      make_event((std::uint64_t{5} << 40) | 1, 0, 0, 2, "gossip", 11));

  std::ostringstream os;
  CausalLog::instance().write_json(os);
  auto const doc = test::parse_json(os.str());
  EXPECT_EQ(doc.at("step").num(), 3.0);
  EXPECT_EQ(doc.at("dropped").num(), 0.0);
  auto const& events = doc.at("events").array();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].at("id").num(),
            static_cast<double>((std::uint64_t{5} << 40) | 1));
  EXPECT_EQ(events[0].at("parent").num(), 0.0);
  EXPECT_EQ(events[0].at("hop").num(), 0.0);
  EXPECT_EQ(events[0].at("to").num(), 2.0);
  EXPECT_EQ(events[0].at("kind").str(), "gossip");
  EXPECT_EQ(events[0].at("dur_us").num(), 11.0);
}

} // namespace
} // namespace tlb::obs
