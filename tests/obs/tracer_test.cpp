#include "obs/tracer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <thread>
#include <vector>

#include "mini_json.hpp"
#include "obs/telemetry.hpp"

// Recording goes through the TLB_SPAN/TLB_INSTANT macros, which expand to
// nothing when the telemetry layer is compiled out — the behavior under
// test does not exist in that configuration, so those tests skip instead
// of asserting on a gate that folded away.
#if TLB_TELEMETRY_ENABLED
#define TLB_SKIP_WITHOUT_TELEMETRY() (void)0
#else
#define TLB_SKIP_WITHOUT_TELEMETRY()                                           \
  GTEST_SKIP() << "telemetry compiled out (TLB_TELEMETRY=OFF)"
#endif

namespace tlb::obs {
namespace {

/// Enables telemetry for one test and restores the dormant default on
/// exit, so tracer tests cannot leak state into each other.
class ScopedTelemetry {
public:
  ScopedTelemetry() {
    set_enabled(true);
    Tracer::instance().clear();
  }
  ~ScopedTelemetry() {
    Tracer::instance().clear();
    set_enabled(false);
  }
};

TEST(Tracer, DisabledRecordsNothing) {
  set_enabled(false);
  Tracer::instance().clear();
  {
    TLB_SPAN("test", "ignored");
    TLB_INSTANT("test", "also_ignored");
  }
  EXPECT_EQ(Tracer::instance().event_count(), 0u);
}

TEST(Tracer, SpanAndInstantRoundTripThroughChromeJson) {
  TLB_SKIP_WITHOUT_TELEMETRY();
  ScopedTelemetry telemetry;
  {
    TLB_SPAN_ARG("cat_a", "span_one", "n", 7);
    TLB_INSTANT_ARG("cat_b", "point_one", "k", 3.5);
  }
  EXPECT_EQ(Tracer::instance().event_count(), 2u);

  std::ostringstream os;
  Tracer::instance().write_chrome_trace(os);
  auto const doc = test::parse_json(os.str());

  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("displayTimeUnit").str(), "ms");
  auto const& events = doc.at("traceEvents").array();
  // Metadata record + the two recorded events.
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].at("ph").str(), "M");
  EXPECT_EQ(events[0].at("name").str(), "process_name");

  // The instant records first (it completes before the span's scope
  // closes); find by phase rather than order.
  bool saw_span = false;
  bool saw_instant = false;
  for (std::size_t i = 1; i < events.size(); ++i) {
    auto const& e = events[i];
    if (e.at("ph").str() == "X") {
      saw_span = true;
      EXPECT_EQ(e.at("name").str(), "span_one");
      EXPECT_EQ(e.at("cat").str(), "cat_a");
      EXPECT_GE(e.at("dur").num(), 0.0);
      EXPECT_EQ(e.at("args").at("n").num(), 7.0);
    } else {
      saw_instant = true;
      EXPECT_EQ(e.at("ph").str(), "i");
      EXPECT_EQ(e.at("name").str(), "point_one");
      EXPECT_EQ(e.at("s").str(), "t");
      EXPECT_EQ(e.at("args").at("k").num(), 3.5);
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
}

TEST(Tracer, SetArgAttachesMidScope) {
  TLB_SKIP_WITHOUT_TELEMETRY();
  ScopedTelemetry telemetry;
  {
    SpanGuard span{"test", "late_arg"};
    span.set_arg("count", 11.0);
  }
  std::ostringstream os;
  Tracer::instance().write_chrome_trace(os);
  auto const doc = test::parse_json(os.str());
  auto const& events = doc.at("traceEvents").array();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].at("args").at("count").num(), 11.0);
}

TEST(Tracer, ClearResetsEventsAndDropCounts) {
  TLB_SKIP_WITHOUT_TELEMETRY();
  ScopedTelemetry telemetry;
  TLB_INSTANT("test", "one");
  EXPECT_EQ(Tracer::instance().event_count(), 1u);
  Tracer::instance().clear();
  EXPECT_EQ(Tracer::instance().event_count(), 0u);
  EXPECT_EQ(Tracer::instance().dropped(), 0u);
}

TEST(Tracer, TimestampsAreMonotonicWithinAThread) {
  ScopedTelemetry telemetry;
  auto& tracer = Tracer::instance();
  auto const t0 = tracer.now_us();
  TLB_INSTANT("test", "a");
  auto const t1 = tracer.now_us();
  EXPECT_GE(t1, t0);
}

TEST(Tracer, ConcurrentRecordingKeepsEveryEvent) {
  TLB_SKIP_WITHOUT_TELEMETRY();
  ScopedTelemetry telemetry;
  constexpr int num_threads = 4;
  constexpr int per_thread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < per_thread; ++i) {
        TLB_INSTANT("mt", "tick");
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(Tracer::instance().event_count(),
            static_cast<std::size_t>(num_threads) * per_thread);
  EXPECT_EQ(Tracer::instance().dropped(), 0u);

  // Distinct threads must land on distinct tids in the emitted JSON.
  std::ostringstream os;
  Tracer::instance().write_chrome_trace(os);
  auto const doc = test::parse_json(os.str());
  std::vector<double> tids;
  for (auto const& e : doc.at("traceEvents").array()) {
    if (e.at("ph").str() == "i") {
      tids.push_back(e.at("tid").num());
    }
  }
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(num_threads));
}

TEST(Tracer, OverflowDropsNewestAndCounts) {
  TLB_SKIP_WITHOUT_TELEMETRY();
  ScopedTelemetry telemetry;
  auto const cap = Tracer::max_events_per_thread;
  for (std::size_t i = 0; i < cap + 100; ++i) {
    TLB_INSTANT("test", "spam");
  }
  // This thread may already own events from other tests' buffers; the
  // invariant is the per-thread cap plus a nonzero drop count.
  EXPECT_LE(Tracer::instance().event_count(), cap);
  EXPECT_GE(Tracer::instance().dropped(), 100u);
}

} // namespace
} // namespace tlb::obs
