#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "mini_json.hpp"

namespace tlb::obs {
namespace {

TEST(JsonEscape, ControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view{"\x01", 1}), "\\u0001");
}

TEST(JsonNumber, FiniteAndNonFinite) {
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(std::nan("")), "null");
}

TEST(JsonWriter, NestedArraysAndObjectsRoundTrip) {
  // Regression: end_array() must pop what begin_array() pushed; this
  // exact shape (array of arrays inside an object) once tripped the
  // writer's balance check.
  std::ostringstream os;
  JsonWriter w{os, 0};
  w.begin_object();
  w.key("rows").begin_array();
  for (int r = 0; r < 2; ++r) {
    w.begin_array();
    w.value(r);
    w.value("x");
    w.end_array();
  }
  w.end_array();
  w.key("meta").begin_object();
  w.kv("n", 2);
  w.end_object();
  w.end_object();

  auto const doc = test::parse_json(os.str());
  ASSERT_TRUE(doc.is_object());
  auto const& rows = doc.at("rows").array();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1].array()[0].num(), 1.0);
  EXPECT_EQ(rows[1].array()[1].str(), "x");
  EXPECT_EQ(doc.at("meta").at("n").num(), 2.0);
}

TEST(JsonWriter, IndentedOutputStillParses) {
  std::ostringstream os;
  JsonWriter w{os, 2};
  w.begin_object();
  w.key("list").begin_array();
  w.value(1);
  w.value(2);
  w.end_array();
  w.end_object();
  auto const doc = test::parse_json(os.str());
  EXPECT_EQ(doc.at("list").array().size(), 2u);
}

TEST(JsonWriter, EscapesKeysAndValues) {
  std::ostringstream os;
  JsonWriter w{os, 0};
  w.begin_object();
  w.kv("a\"key", "line\nbreak");
  w.end_object();
  auto const doc = test::parse_json(os.str());
  EXPECT_EQ(doc.at("a\"key").str(), "line\nbreak");
}

TEST(OpenOutputFile, MissingDirectoryNamesPathAndErrno) {
  std::string const path = "/tmp/tlb-no-such-dir-obs/x.json";
  try {
    (void)open_output_file(path);
    FAIL() << "expected std::runtime_error";
  } catch (std::runtime_error const& e) {
    std::string const what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("No such file or directory"), std::string::npos)
        << what;
  }
}

} // namespace
} // namespace tlb::obs
