#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "mini_json.hpp"

namespace tlb::obs {
namespace {

TEST(Metric, CounterIncAndSet) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.set(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST(Metric, GaugeSetAddUpdateMax) {
  Gauge g;
  g.set(5);
  g.add(-2);
  EXPECT_EQ(g.value(), 3);
  g.update_max(10);
  EXPECT_EQ(g.value(), 10);
  g.update_max(4); // below the watermark: no effect
  EXPECT_EQ(g.value(), 10);
}

TEST(Metric, HistogramBucketBoundariesAreLeInclusive) {
  Histogram h{{1.0, 2.0, 4.0}};
  ASSERT_EQ(h.num_buckets(), 4u);
  // Prometheus `le` semantics: x <= bound lands in that bucket.
  h.observe(1.0); // bucket 0 (le 1)
  h.observe(1.5); // bucket 1 (le 2)
  h.observe(2.0); // bucket 1 (le 2), boundary inclusive
  h.observe(4.0); // bucket 2 (le 4)
  h.observe(4.5); // overflow bucket
  h.observe(0.0); // bucket 0
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 1.5 + 2.0 + 4.0 + 4.5 + 0.0);
}

TEST(Registry, FindOrCreateIsIdentityStable) {
  Registry registry;
  auto& a = registry.counter("x.count", {{"rank", "0"}});
  auto& b = registry.counter("x.count", {{"rank", "0"}});
  auto& c = registry.counter("x.count", {{"rank", "1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(Registry, LabelOrderIsCanonicalized) {
  Registry registry;
  auto& a = registry.counter("y", {{"b", "2"}, {"a", "1"}});
  auto& b = registry.counter("y", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(Registry, ConcurrentUpdatesLoseNothing) {
  Registry registry;
  constexpr int num_threads = 8;
  constexpr int per_thread = 20000;
  auto& counter = registry.counter("smoke.count");
  auto& gauge = registry.gauge("smoke.max");
  auto& hist = registry.histogram("smoke.hist", {1.0, 10.0, 100.0});

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < per_thread; ++i) {
        counter.inc();
        gauge.update_max(t * per_thread + i);
        hist.observe(static_cast<double>(i % 128));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(num_threads) * per_thread);
  EXPECT_EQ(gauge.value(), static_cast<std::int64_t>(num_threads) *
                                   per_thread -
                               1);
  EXPECT_EQ(hist.count(),
            static_cast<std::uint64_t>(num_threads) * per_thread);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i < hist.num_buckets(); ++i) {
    bucket_total += hist.bucket_count(i);
  }
  EXPECT_EQ(bucket_total, hist.count());
}

TEST(Registry, ConcurrentRegistrationReturnsOneInstance) {
  Registry registry;
  constexpr int num_threads = 8;
  std::vector<Counter*> seen(num_threads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      auto& c = registry.counter("race.count", {{"category", "gossip"}});
      c.inc();
      seen[static_cast<std::size_t>(t)] = &c;
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (int t = 1; t < num_threads; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(t)], seen[0]);
  }
  EXPECT_EQ(seen[0]->value(), static_cast<std::uint64_t>(num_threads));
}

TEST(Registry, JsonExportParsesBack) {
  Registry registry;
  registry.counter("net.messages", {{"category", "gossip"}}).inc(12);
  registry.gauge("net.depth").set(-3);
  registry.histogram("lat", {1.0, 2.0}).observe(1.5);

  std::ostringstream os;
  registry.write_json(os);
  auto const doc = test::parse_json(os.str());
  auto const& metrics = doc.at("metrics").array();
  ASSERT_EQ(metrics.size(), 3u);

  // Exports are sorted by (name, labels), not registration order.
  EXPECT_EQ(metrics[0].at("name").str(), "lat");
  EXPECT_EQ(metrics[0].at("kind").str(), "histogram");
  EXPECT_EQ(metrics[0].at("count").num(), 1.0);
  ASSERT_EQ(metrics[0].at("buckets").array().size(), 3u);

  EXPECT_EQ(metrics[1].at("name").str(), "net.depth");
  EXPECT_EQ(metrics[1].at("kind").str(), "gauge");
  EXPECT_EQ(metrics[1].at("value").num(), -3.0);

  EXPECT_EQ(metrics[2].at("name").str(), "net.messages");
  EXPECT_EQ(metrics[2].at("kind").str(), "counter");
  EXPECT_EQ(metrics[2].at("labels").at("category").str(), "gossip");
  EXPECT_EQ(metrics[2].at("value").num(), 12.0);
}

TEST(Registry, ExportsAreByteStableAcrossRegistrationOrder) {
  // The same families registered in different orders must serialize
  // identically — what makes metrics snapshots diffable across runs.
  Registry forward;
  forward.counter("net.messages", {{"category", "gossip"}}).inc(7);
  forward.counter("net.messages", {{"category", "transfer"}}).inc(2);
  forward.gauge("net.depth").set(5);

  Registry reverse;
  reverse.gauge("net.depth").set(5);
  reverse.counter("net.messages", {{"category", "transfer"}}).inc(2);
  reverse.counter("net.messages", {{"category", "gossip"}}).inc(7);

  std::ostringstream json_a;
  std::ostringstream json_b;
  forward.write_json(json_a);
  reverse.write_json(json_b);
  EXPECT_EQ(json_a.str(), json_b.str());

  std::ostringstream prom_a;
  std::ostringstream prom_b;
  forward.write_prometheus(prom_a);
  reverse.write_prometheus(prom_b);
  EXPECT_EQ(prom_a.str(), prom_b.str());
}

TEST(Registry, PrometheusExportShape) {
  Registry registry;
  registry.counter("net.messages", {{"category", "gossip"}}).inc(5);
  registry.histogram("span.ms", {1.0, 2.0}).observe(1.5);

  std::ostringstream os;
  registry.write_prometheus(os);
  auto const text = os.str();
  // Dots sanitized, TYPE line present, labels rendered, cumulative
  // buckets end at +Inf with _sum/_count.
  EXPECT_NE(text.find("# TYPE net_messages counter"), std::string::npos)
      << text;
  EXPECT_NE(text.find("net_messages{category=\"gossip\"} 5"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE span_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("span_ms_bucket{le=\"+Inf\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("span_ms_count 1"), std::string::npos);
}

TEST(Registry, ClearDropsEverything) {
  Registry registry;
  registry.counter("a").inc();
  registry.gauge("b").set(1);
  EXPECT_EQ(registry.size(), 2u);
  registry.clear();
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.counter("a").value(), 0u);
}

} // namespace
} // namespace tlb::obs
