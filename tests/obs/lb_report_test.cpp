#include "obs/lb_report.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>

#include "lb/strategy/lb_manager.hpp"
#include "mini_json.hpp"
#include "obs/telemetry.hpp"
#include "support/rng.hpp"

// The golden-run tests exercise runtime-collected introspection, which the
// LB stack only feeds when the telemetry layer is compiled in — with
// TLB_TELEMETRY=OFF the reports are structurally empty, so those tests
// skip instead of comparing against a gate that folded away.
#if TLB_TELEMETRY_ENABLED
#define TLB_SKIP_WITHOUT_TELEMETRY() (void)0
#else
#define TLB_SKIP_WITHOUT_TELEMETRY()                                           \
  GTEST_SKIP() << "telemetry compiled out (TLB_TELEMETRY=OFF)"
#endif

namespace tlb::obs {
namespace {

TEST(LbReportBuilder, GossipRoundsAggregateMinMaxAvg) {
  LbReportBuilder builder;
  builder.on_gossip_message(1, 100, 4);
  builder.on_gossip_message(1, 50, 8);
  builder.on_gossip_message(2, 10, 9);
  auto const report = builder.finish(0);
  ASSERT_EQ(report.rounds.size(), 2u);
  EXPECT_EQ(report.rounds[0].round, 1);
  EXPECT_EQ(report.rounds[0].messages, 2u);
  EXPECT_EQ(report.rounds[0].bytes, 150u);
  EXPECT_EQ(report.rounds[0].knowledge_min, 4u);
  EXPECT_EQ(report.rounds[0].knowledge_max, 8u);
  EXPECT_DOUBLE_EQ(report.rounds[0].knowledge_avg, 6.0);
  EXPECT_EQ(report.rounds[1].round, 2);
  EXPECT_EQ(report.rounds[1].messages, 1u);
}

TEST(LbReportBuilder, OutOfRangeRoundsAreIgnored) {
  LbReportBuilder builder;
  builder.on_gossip_message(-1, 10, 1);
  builder.on_gossip_message(static_cast<int>(LbReportBuilder::max_rounds),
                            10, 1);
  auto const report = builder.finish(0);
  EXPECT_TRUE(report.rounds.empty());
}

TEST(LbReportBuilder, IterationDeltasNotCumulative) {
  LbReportBuilder builder;
  builder.set_threshold(1.0);
  builder.set_initial_imbalance(4.0);
  builder.on_transfer_pass(10, 2, 1, 3);
  builder.on_trial_iteration(0, 1, 3.0);
  builder.on_transfer_pass(5, 1, 0, 2);
  builder.on_nack();
  builder.on_trial_iteration(0, 2, 2.5);
  auto const report = builder.finish(0);
  ASSERT_EQ(report.iterations.size(), 2u);
  EXPECT_EQ(report.iterations[0].transfers_accepted, 10u);
  EXPECT_EQ(report.iterations[0].transfers_rejected, 2u);
  EXPECT_EQ(report.iterations[0].transfers_no_target, 1u);
  EXPECT_EQ(report.iterations[0].cmf_rebuilds, 3u);
  EXPECT_EQ(report.iterations[0].transfer_nacks, 0u);
  EXPECT_EQ(report.iterations[1].transfers_accepted, 5u);
  EXPECT_EQ(report.iterations[1].transfer_nacks, 1u);
  // Totals are cumulative.
  EXPECT_EQ(report.transfers_accepted, 15u);
  EXPECT_EQ(report.transfer_nacks, 1u);
}

TEST(LbReportBuilder, ObjectiveBestIsMonotonePerTrial) {
  LbReportBuilder builder;
  builder.set_threshold(1.0);
  builder.set_initial_imbalance(5.0); // initial objective = 5 - 1 + 1 = 5
  builder.on_trial_iteration(0, 1, 3.0); // objective 3
  builder.on_trial_iteration(0, 2, 4.0); // worse: best stays 3
  builder.on_trial_iteration(0, 3, 2.0); // better: best 2
  builder.on_trial_iteration(1, 1, 6.0); // new trial: best reseeds to 5
  builder.on_trial_iteration(1, 2, 1.0);
  auto const report = builder.finish(0);
  ASSERT_EQ(report.iterations.size(), 5u);
  EXPECT_DOUBLE_EQ(report.iterations[0].objective, 3.0);
  EXPECT_DOUBLE_EQ(report.iterations[0].objective_best, 3.0);
  EXPECT_DOUBLE_EQ(report.iterations[1].objective, 4.0);
  EXPECT_DOUBLE_EQ(report.iterations[1].objective_best, 3.0);
  EXPECT_DOUBLE_EQ(report.iterations[2].objective_best, 2.0);
  // Trial 1 reseeds from the initial placement, not trial 0's best.
  EXPECT_DOUBLE_EQ(report.iterations[3].objective_best, 5.0);
  EXPECT_DOUBLE_EQ(report.iterations[4].objective_best, 1.0);
}

TEST(LbReportJson, EmptyAndPopulatedDocumentsParse) {
  std::ostringstream empty;
  write_lb_reports_json(empty, {});
  EXPECT_EQ(test::parse_json(empty.str()).at("lb_reports").array().size(),
            0u);

  LbReportBuilder builder;
  builder.set_strategy("tempered");
  builder.set_threshold(1.0);
  builder.set_initial_imbalance(2.0);
  builder.on_gossip_message(1, 32, 3);
  builder.on_trial_iteration(0, 1, 1.5);
  builder.set_final(1.5, 4, 1024);
  std::ostringstream os;
  write_lb_reports_json(os, {builder.finish(7)});
  auto const doc = test::parse_json(os.str());
  auto const& r = doc.at("lb_reports").array().at(0);
  EXPECT_EQ(r.at("phase").num(), 7.0);
  EXPECT_EQ(r.at("strategy").str(), "tempered");
  EXPECT_EQ(r.at("migrations").at("count").num(), 4.0);
  EXPECT_EQ(r.at("migrations").at("bytes").num(), 1024.0);
  EXPECT_EQ(r.at("gossip_rounds").array().size(), 1u);
  EXPECT_EQ(r.at("iterations").array().size(), 1u);
}

// ---------------------------------------------------------------------
// Golden-file test: a seeded 64-rank runtime-backed TemperedLB run must
// produce byte-identical introspection JSON. Regenerate with
//   TLB_UPDATE_GOLDEN=1 ./tests/test_obs --gtest_filter='*Golden*'
// after intentional changes to the report schema or the LB protocol.
// ---------------------------------------------------------------------

class Payload final : public rt::Migratable {
public:
  [[nodiscard]] std::size_t wire_bytes() const override { return 128; }
};

std::string run_seeded_64rank_report() {
  set_enabled(true);
  lb::StrategyInput input;
  input.tasks.resize(64);
  rt::ObjectStore store{64};
  Rng rng{2021};
  // Clustered overload: 8 hot ranks carry everything.
  TaskId next = 0;
  for (std::size_t r = 0; r < 8; ++r) {
    for (int i = 0; i < 48; ++i) {
      double const load = rng.uniform(0.5, 1.5);
      input.tasks[r].push_back({next, load});
      store.create(static_cast<RankId>(r), next,
                   std::make_unique<Payload>());
      ++next;
    }
  }

  auto params = lb::LbParams::tempered();
  params.num_trials = 2;
  params.num_iterations = 3;
  params.rounds = 5;
  params.fanout = 4;
  params.seed = 99;

  rt::RuntimeConfig config;
  config.num_ranks = 64;
  rt::Runtime runtime{config};
  lb::LbManager manager{runtime, "tempered", params};
  (void)manager.invoke(input, store);

  std::ostringstream os;
  manager.write_introspection_json(os);
  set_enabled(false);
  return os.str();
}

std::string golden_path() {
  return std::string{TLB_SOURCE_DIR} +
         "/tests/obs/golden/lb_report_64.json";
}

TEST(LbReportGolden, Seeded64RankRunMatchesGoldenFile) {
  TLB_SKIP_WITHOUT_TELEMETRY();
  auto const actual = run_seeded_64rank_report();

  if (std::getenv("TLB_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out{golden_path()};
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << actual;
    GTEST_SKIP() << "golden file regenerated";
  }

  std::ifstream in{golden_path()};
  ASSERT_TRUE(in.good())
      << "missing golden file " << golden_path()
      << " — regenerate with TLB_UPDATE_GOLDEN=1";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "LB introspection drifted from the golden file; if intentional, "
         "regenerate with TLB_UPDATE_GOLDEN=1";
}

TEST(LbReportGolden, RuntimeRunSatisfiesLemma1Monotonicity) {
  TLB_SKIP_WITHOUT_TELEMETRY();
  auto const doc = test::parse_json(run_seeded_64rank_report());
  auto const& reports = doc.at("lb_reports").array();
  ASSERT_EQ(reports.size(), 1u);
  auto const& iterations = reports[0].at("iterations").array();
  ASSERT_FALSE(iterations.empty());
  double best = std::numeric_limits<double>::infinity();
  double trial = -1.0;
  for (auto const& it : iterations) {
    if (it.at("trial").num() != trial) {
      trial = it.at("trial").num();
      best = std::numeric_limits<double>::infinity();
    }
    // objective_best is the running minimum within each trial (Lemma 1's
    // keep-best guarantee) — never increasing.
    EXPECT_LE(it.at("objective_best").num(), best + 1e-12);
    best = it.at("objective_best").num();
    // And it is a lower envelope of the raw objective trajectory.
    EXPECT_LE(it.at("objective_best").num(), it.at("objective").num() + 1e-12);
  }
  // The invocation actually moved work.
  EXPECT_GT(reports[0].at("transfers").at("accepted").num(), 0.0);
  EXPECT_GT(reports[0].at("migrations").at("count").num(), 0.0);
}

} // namespace
} // namespace tlb::obs
