#pragma once

/// \file mini_json.hpp
/// Compatibility shim: the test-local JSON parser was promoted to
/// src/obs/json_in.hpp (tools/tlb_report ingests telemetry documents with
/// it too). The historical tlb::test spelling the obs tests use is kept
/// as aliases.

#include "obs/json_in.hpp"

namespace tlb::test {

using obs::JsonArray;
using obs::JsonObject;
using obs::JsonParser;
using obs::JsonValue;
using obs::parse_json;

} // namespace tlb::test
