#include "obs/phase_timeline.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "lb/strategy/lb_manager.hpp"
#include "mini_json.hpp"
#include "obs/telemetry.hpp"
#include "runtime/object_store.hpp"
#include "runtime/runtime.hpp"
#include "support/rng.hpp"

#if TLB_TELEMETRY_ENABLED
#define TLB_SKIP_WITHOUT_TELEMETRY() (void)0
#else
#define TLB_SKIP_WITHOUT_TELEMETRY()                                           \
  GTEST_SKIP() << "telemetry compiled out (TLB_TELEMETRY=OFF)"
#endif

namespace tlb::obs {
namespace {

PhaseSample sample(std::uint64_t phase) {
  PhaseSample s;
  s.phase = phase;
  s.strategy = "tempered";
  s.imbalance_before = 2.0;
  s.imbalance_after = 0.5;
  s.migrations = phase * 10;
  return s;
}

// ---------------------------------------------------------------------
// Ring semantics: a flight recorder keeps the NEWEST history, so overflow
// overwrites the oldest sample (the opposite of the Tracer's drop-newest).
// ---------------------------------------------------------------------

TEST(PhaseTimeline, RetainsEverythingUnderCapacity) {
  PhaseTimeline timeline{4};
  timeline.record(sample(0));
  timeline.record(sample(1));
  auto const got = timeline.samples();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].phase, 0u);
  EXPECT_EQ(got[1].phase, 1u);
  EXPECT_EQ(timeline.total_recorded(), 2u);
}

TEST(PhaseTimeline, OverflowOverwritesOldestKeepsOrder) {
  PhaseTimeline timeline{3};
  for (std::uint64_t p = 0; p < 7; ++p) {
    timeline.record(sample(p));
  }
  auto const got = timeline.samples();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].phase, 4u);
  EXPECT_EQ(got[1].phase, 5u);
  EXPECT_EQ(got[2].phase, 6u);
  EXPECT_EQ(timeline.total_recorded(), 7u);
}

TEST(PhaseTimeline, ClearResetsSamplesAndTotal) {
  PhaseTimeline timeline{3};
  timeline.record(sample(0));
  timeline.clear();
  EXPECT_TRUE(timeline.samples().empty());
  EXPECT_EQ(timeline.total_recorded(), 0u);
}

// ---------------------------------------------------------------------
// JSON export
// ---------------------------------------------------------------------

TEST(PhaseTimeline, JsonExportParsesBackWithAllFields) {
  PhaseTimeline timeline{8};
  auto s = sample(2);
  s.load_min = 1.0;
  s.load_max = 9.0;
  s.load_avg = 4.5;
  s.load_stddev = 2.25;
  s.migration_bytes = 4096;
  s.lb_messages = 120;
  s.lb_bytes = 960;
  s.lb_wall_us = 777;
  s.aborted_rounds = 1;
  s.faults_dropped = 3;
  s.faults_retried = 2;
  timeline.record(s);

  std::ostringstream os;
  timeline.write_json(os);
  auto const doc = test::parse_json(os.str());
  EXPECT_EQ(doc.at("total_recorded").num(), 1.0);
  auto const& arr = doc.at("timeline").array();
  ASSERT_EQ(arr.size(), 1u);
  EXPECT_EQ(arr[0].at("phase").num(), 2.0);
  EXPECT_EQ(arr[0].at("strategy").str(), "tempered");
  EXPECT_EQ(arr[0].at("load_max").num(), 9.0);
  EXPECT_EQ(arr[0].at("imbalance_before").num(), 2.0);
  EXPECT_EQ(arr[0].at("imbalance_after").num(), 0.5);
  EXPECT_EQ(arr[0].at("migrations").num(), 20.0);
  EXPECT_EQ(arr[0].at("migration_bytes").num(), 4096.0);
  EXPECT_EQ(arr[0].at("lb_wall_us").num(), 777.0);
  EXPECT_EQ(arr[0].at("aborted_rounds").num(), 1.0);
  EXPECT_EQ(arr[0].at("faults_dropped").num(), 3.0);
  EXPECT_EQ(arr[0].at("faults_retried").num(), 2.0);
}

// ---------------------------------------------------------------------
// Truncated per-rank snapshots and the decision fields
// ---------------------------------------------------------------------

TEST(SnapshotLoads, KeepsTopKAndSumsTheRest) {
  PhaseSample s;
  snapshot_loads(s, std::vector<double>{1.0, 5.0, 2.0, 4.0, 3.0}, 2);
  EXPECT_EQ(s.snapshot_ranks, 5u);
  ASSERT_EQ(s.top_loads.size(), 2u);
  EXPECT_EQ(s.top_loads[0].rank, 1);
  EXPECT_DOUBLE_EQ(s.top_loads[0].load, 5.0);
  EXPECT_EQ(s.top_loads[1].rank, 3);
  EXPECT_DOUBLE_EQ(s.top_loads[1].load, 4.0);
  EXPECT_DOUBLE_EQ(s.rest_load_sum, 1.0 + 2.0 + 3.0);
}

TEST(SnapshotLoads, BreaksLoadTiesByLowestRank) {
  PhaseSample s;
  snapshot_loads(s, std::vector<double>{2.0, 3.0, 3.0, 3.0}, 2);
  ASSERT_EQ(s.top_loads.size(), 2u);
  EXPECT_EQ(s.top_loads[0].rank, 1);
  EXPECT_EQ(s.top_loads[1].rank, 2);
}

TEST(SnapshotLoads, KLargerThanRanksKeepsEverything) {
  PhaseSample s;
  snapshot_loads(s, std::vector<double>{1.0, 2.0}, 8);
  EXPECT_EQ(s.snapshot_ranks, 2u);
  ASSERT_EQ(s.top_loads.size(), 2u);
  EXPECT_DOUBLE_EQ(s.rest_load_sum, 0.0);
}

TEST(SnapshotLoads, KZeroRecordsOnlyTheTotal) {
  PhaseSample s;
  snapshot_loads(s, std::vector<double>{1.0, 2.0, 3.0}, 0);
  EXPECT_EQ(s.snapshot_ranks, 3u);
  EXPECT_TRUE(s.top_loads.empty());
  EXPECT_DOUBLE_EQ(s.rest_load_sum, 6.0);
}

TEST(PhaseTimeline, SnapshotTopKIsConfigurable) {
  PhaseTimeline timeline{2};
  EXPECT_EQ(timeline.snapshot_top_k(), 8u);
  timeline.set_snapshot_top_k(3);
  EXPECT_EQ(timeline.snapshot_top_k(), 3u);
  timeline.clear(); // clear() resets samples, not the configured k
  EXPECT_EQ(timeline.snapshot_top_k(), 3u);
}

TEST(PhaseTimeline, JsonExportCarriesDecisionAndSnapshotFields) {
  PhaseTimeline timeline{4};
  auto s = sample(5);
  s.lb_invoked = false;
  s.policy = "costbenefit-persistence";
  s.decision_reason = "gain below cost";
  s.forecast_imbalance = 0.75;
  s.forecast_error = 0.125;
  s.predicted_gain = 0.5;
  s.predicted_cost = 2.0;
  snapshot_loads(s, std::vector<double>{4.0, 1.0, 2.0}, 2);
  timeline.record(s);

  std::ostringstream os;
  timeline.write_json(os);
  auto const doc = test::parse_json(os.str());
  auto const& entry = doc.at("timeline").array().at(0);
  EXPECT_FALSE(entry.at("lb_invoked").boolean());
  EXPECT_EQ(entry.at("policy").str(), "costbenefit-persistence");
  EXPECT_EQ(entry.at("reason").str(), "gain below cost");
  EXPECT_EQ(entry.at("forecast_imbalance").num(), 0.75);
  EXPECT_EQ(entry.at("forecast_error").num(), 0.125);
  EXPECT_EQ(entry.at("predicted_gain").num(), 0.5);
  EXPECT_EQ(entry.at("predicted_cost").num(), 2.0);
  EXPECT_EQ(entry.at("snapshot_ranks").num(), 3.0);
  EXPECT_EQ(entry.at("rest_load_sum").num(), 1.0);
  auto const& top = entry.at("top_loads").array();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].at("rank").num(), 0.0);
  EXPECT_EQ(top[0].at("load").num(), 4.0);
  EXPECT_EQ(top[1].at("rank").num(), 2.0);
  EXPECT_EQ(top[1].at("load").num(), 2.0);
}

// ---------------------------------------------------------------------
// LbManager feeds the process-wide timeline when telemetry is enabled
// ---------------------------------------------------------------------

class Payload final : public rt::Migratable {
public:
  [[nodiscard]] std::size_t wire_bytes() const override { return 64; }
};

TEST(PhaseTimeline, LbManagerRecordsOneSamplePerInvocation) {
  TLB_SKIP_WITHOUT_TELEMETRY();
  set_enabled(true);
  PhaseTimeline::instance().clear();

  lb::StrategyInput input;
  input.tasks.resize(16);
  rt::ObjectStore store{16};
  Rng rng{11};
  TaskId next = 0;
  for (std::size_t r = 0; r < 4; ++r) {
    for (int i = 0; i < 12; ++i) {
      input.tasks[r].push_back({next, rng.uniform(0.5, 1.5)});
      store.create(static_cast<RankId>(r), next,
                   std::make_unique<Payload>());
      ++next;
    }
  }

  rt::RuntimeConfig config;
  config.num_ranks = 16;
  rt::Runtime runtime{config};
  auto params = lb::LbParams::tempered();
  params.num_trials = 1;
  params.num_iterations = 2;
  params.rounds = 3;
  lb::LbManager manager{runtime, "tempered", params};
  auto const report = manager.invoke(input, store);

  auto const got = PhaseTimeline::instance().samples();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].phase, 0u);
  EXPECT_EQ(got[0].strategy, "tempered");
  EXPECT_DOUBLE_EQ(got[0].imbalance_before, report.imbalance_before);
  EXPECT_DOUBLE_EQ(got[0].imbalance_after, report.imbalance_after);
  EXPECT_EQ(got[0].migrations, report.cost.migration_count);
  EXPECT_EQ(got[0].migration_bytes, report.migration_payload_bytes);
  EXPECT_GT(got[0].load_max, 0.0);

  PhaseTimeline::instance().clear();
  set_enabled(false);
}

TEST(PhaseTimeline, LbManagerRecordsNothingWhenDisabled) {
  set_enabled(false);
  PhaseTimeline::instance().clear();

  lb::StrategyInput input;
  input.tasks.resize(4);
  input.tasks[0].push_back({0, 2.0});
  rt::ObjectStore store{4};
  store.create(0, 0, std::make_unique<Payload>());

  rt::RuntimeConfig config;
  config.num_ranks = 4;
  rt::Runtime runtime{config};
  lb::LbManager manager{runtime, "greedy", lb::LbParams{}};
  (void)manager.invoke(input, store);

  EXPECT_TRUE(PhaseTimeline::instance().samples().empty());
}

} // namespace
} // namespace tlb::obs
