#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

namespace tlb {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() != b()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 95);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng const root{7};
  Rng a1 = root.split(0);
  Rng a2 = root.split(0);
  Rng b = root.split(1);
  EXPECT_EQ(a1(), a2());
  // Streams with different tags should produce different sequences.
  Rng a3 = root.split(0);
  EXPECT_NE(a3(), b());
}

TEST(Rng, SplitDoesNotAdvanceParent) {
  Rng a{7};
  Rng b{7};
  (void)a.split(3);
  EXPECT_EQ(a(), b());
}

TEST(Rng, UniformBelowRespectsBound) {
  Rng rng{123};
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform_below(bound), bound);
    }
  }
}

TEST(Rng, UniformBelowCoversAllValues) {
  Rng rng{99};
  std::array<int, 5> counts{};
  for (int i = 0; i < 5000; ++i) {
    ++counts[rng.uniform_below(5)];
  }
  for (int const c : counts) {
    // Expected 1000 each; loose 5-sigma band.
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng{5};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto const v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng{11};
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double const u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng{13};
  double sum = 0.0;
  double sq = 0.0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    double const x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, GammaMeanMatchesShapeTimesScale) {
  Rng rng{17};
  constexpr int n = 20000;
  for (double shape : {0.5, 1.0, 2.0, 5.0}) {
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
      double const x = rng.gamma(shape, 2.0);
      ASSERT_GT(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum / n, shape * 2.0, shape * 2.0 * 0.05);
  }
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng{19};
  constexpr int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += rng.exponential(3.0);
  }
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng{23};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng{29};
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) {
    v[static_cast<std::size_t>(i)] = i;
  }
  auto const original = v;
  rng.shuffle(std::span<int>{v});
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), original.begin()));
  EXPECT_NE(v, original); // astronomically unlikely to be identity
}

TEST(Rng, ShuffleSingleAndEmptyAreNoops) {
  Rng rng{31};
  std::vector<int> empty;
  rng.shuffle(std::span<int>{empty});
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.shuffle(std::span<int>{one});
  EXPECT_EQ(one[0], 42);
}

} // namespace
} // namespace tlb
