#include "support/seq_outcome_map.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace tlb {
namespace {

TEST(SeqOutcomeMap, EmptyMapFindsNothing) {
  SeqOutcomeMap map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.find(0), nullptr);
  EXPECT_EQ(map.find(~std::uint64_t{0}), nullptr);
}

TEST(SeqOutcomeMap, InsertThenFindReturnsTheOutcome) {
  SeqOutcomeMap map;
  map.insert(42, 1);
  map.insert(7, 0);
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.find(42), nullptr);
  EXPECT_EQ(*map.find(42), 1);
  ASSERT_NE(map.find(7), nullptr);
  EXPECT_EQ(*map.find(7), 0);
  EXPECT_EQ(map.find(43), nullptr);
}

TEST(SeqOutcomeMap, StructuredSequenceNumbersDoNotCollide) {
  // The real keys pack the origin rank into the high bits and a local
  // counter into the low bits — exactly the structure the splitmix64
  // finalizer must spread across the table.
  SeqOutcomeMap map;
  for (std::uint64_t rank = 0; rank < 64; ++rank) {
    for (std::uint64_t counter = 0; counter < 32; ++counter) {
      map.insert((rank << 32) | counter,
                 static_cast<char>((rank + counter) % 2));
    }
  }
  EXPECT_EQ(map.size(), 64u * 32u);
  for (std::uint64_t rank = 0; rank < 64; ++rank) {
    for (std::uint64_t counter = 0; counter < 32; ++counter) {
      auto const* outcome = map.find((rank << 32) | counter);
      ASSERT_NE(outcome, nullptr) << rank << ":" << counter;
      EXPECT_EQ(*outcome, static_cast<char>((rank + counter) % 2));
    }
  }
}

TEST(SeqOutcomeMap, GrowthPreservesEveryEntry) {
  SeqOutcomeMap map;
  Rng rng{17};
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 5000; ++i) {
    keys.push_back(rng.uniform_below(~std::uint64_t{0}));
    map.insert(keys.back(), static_cast<char>(i % 3));
  }
  EXPECT_EQ(map.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto const* outcome = map.find(keys[i]);
    ASSERT_NE(outcome, nullptr);
    EXPECT_EQ(*outcome, static_cast<char>(i % 3));
  }
  // Absent keys still miss after all that growth.
  EXPECT_EQ(map.find(keys.front() ^ 0x1), nullptr);
}

TEST(SeqOutcomeMapDeath, ReinsertingADecidedSequenceAborts) {
  SeqOutcomeMap map;
  map.insert(9, 1);
  EXPECT_DEATH(map.insert(9, 0), "precondition");
}

} // namespace
} // namespace tlb
