#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace tlb {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t{{"name", "value"}};
  t.begin_row().add_cell("alpha").add_cell(1.5, 1);
  t.begin_row().add_cell("b").add_cell(22.25, 2);
  std::ostringstream os;
  t.print(os);
  std::string const out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("22.25"), std::string::npos);
  // Header underline present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t{{"a", "b"}};
  t.begin_row().add_cell("plain").add_cell("with,comma");
  t.begin_row().add_cell("quote\"inside").add_cell("x");
  std::ostringstream os;
  t.print_csv(os);
  std::string const out = os.str();
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Table, CsvRoundNumbers) {
  Table t{{"x"}};
  t.begin_row().add_cell(static_cast<std::size_t>(42));
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x\n42\n");
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
  EXPECT_EQ(Table::fmt(-0.5, 1), "-0.5");
}

TEST(Table, CountsRowsAndColumns) {
  Table t{{"a", "b", "c"}};
  EXPECT_EQ(t.columns(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.begin_row().add_cell(1).add_cell(2).add_cell(3);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, IntegerOverloads) {
  Table t{{"i", "ll", "ull", "sz"}};
  t.begin_row()
      .add_cell(-1)
      .add_cell(static_cast<long long>(-5))
      .add_cell(static_cast<unsigned long long>(7))
      .add_cell(static_cast<std::size_t>(9));
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "i,ll,ull,sz\n-1,-5,7,9\n");
}

} // namespace
} // namespace tlb
