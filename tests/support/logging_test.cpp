#include "support/logging.hpp"

#include <gtest/gtest.h>

namespace tlb {
namespace {

/// RAII guard restoring the global log level after each test.
class LevelGuard {
public:
  LevelGuard() : saved_{log_level()} {}
  ~LevelGuard() { set_log_level(saved_); }

private:
  LogLevel saved_;
};

TEST(Logging, LevelRoundTrips) {
  LevelGuard guard;
  for (auto const level : {LogLevel::trace, LogLevel::debug, LogLevel::info,
                           LogLevel::warn, LogLevel::error, LogLevel::off}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST(Logging, DisabledLevelDoesNotEvaluateStream) {
  LevelGuard guard;
  set_log_level(LogLevel::error);
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return 42;
  };
  TLB_LOG(debug, "test") << "never built " << count();
  EXPECT_EQ(evaluations, 0);
  TLB_LOG(error, "test") << "built " << count();
  EXPECT_EQ(evaluations, 1);
}

TEST(Logging, OffSilencesEverything) {
  LevelGuard guard;
  set_log_level(LogLevel::off);
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return 1;
  };
  TLB_LOG(error, "test") << count();
  EXPECT_EQ(evaluations, 0);
}

TEST(Logging, EnabledLevelsEmit) {
  LevelGuard guard;
  set_log_level(LogLevel::trace);
  // Smoke: emitting at every level must not crash or deadlock.
  TLB_LOG(trace, "t") << "a";
  TLB_LOG(debug, "t") << "b";
  TLB_LOG(info, "t") << "c";
  TLB_LOG(warn, "t") << "d";
  TLB_LOG(error, "t") << "e";
  SUCCEED();
}

} // namespace
} // namespace tlb
