#include "support/config.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace tlb {
namespace {

Options parse(std::initializer_list<char const*> args) {
  std::vector<char const*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Options::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Options, EqualsForm) {
  auto const o = parse({"--ranks=64", "--threshold=1.5"});
  EXPECT_EQ(o.get_int("ranks", 0), 64);
  EXPECT_DOUBLE_EQ(o.get_double("threshold", 0.0), 1.5);
}

TEST(Options, SpaceForm) {
  auto const o = parse({"--ranks", "128"});
  EXPECT_EQ(o.get_int("ranks", 0), 128);
}

TEST(Options, BooleanFlag) {
  auto const o = parse({"--verbose"});
  EXPECT_TRUE(o.get_bool("verbose", false));
  EXPECT_FALSE(o.get_bool("absent", false));
  EXPECT_TRUE(o.get_bool("absent", true));
}

TEST(Options, BooleanSpellings) {
  EXPECT_TRUE(parse({"--x=yes"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=on"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=1"}).get_bool("x", false));
  EXPECT_FALSE(parse({"--x=no"}).get_bool("x", true));
  EXPECT_FALSE(parse({"--x=off"}).get_bool("x", true));
  EXPECT_FALSE(parse({"--x=0"}).get_bool("x", true));
}

TEST(Options, DefaultsWhenMissing) {
  auto const o = parse({});
  EXPECT_EQ(o.get_int("ranks", 42), 42);
  EXPECT_EQ(o.get_string("name", "x"), "x");
  EXPECT_FALSE(o.has("ranks"));
}

TEST(Options, PositionalArguments) {
  auto const o = parse({"file1", "--k=3", "file2"});
  ASSERT_EQ(o.positional().size(), 2u);
  EXPECT_EQ(o.positional()[0], "file1");
  EXPECT_EQ(o.positional()[1], "file2");
  EXPECT_EQ(o.get_int("k", 0), 3);
}

TEST(Options, MalformedIntegerThrows) {
  auto const o = parse({"--ranks=abc"});
  EXPECT_THROW((void)o.get_int("ranks", 0), std::invalid_argument);
}

TEST(Options, MalformedDoubleThrows) {
  auto const o = parse({"--t=1.2.3"});
  EXPECT_THROW((void)o.get_double("t", 0.0), std::invalid_argument);
}

TEST(Options, MalformedBoolThrows) {
  auto const o = parse({"--flag=maybe"});
  EXPECT_THROW((void)o.get_bool("flag", false), std::invalid_argument);
}

TEST(Options, EmptyOptionNameThrows) {
  EXPECT_THROW(parse({"--"}), std::invalid_argument);
  EXPECT_THROW(parse({"--=5"}), std::invalid_argument);
}

TEST(Options, ProgrammaticSet) {
  Options o;
  o.set("mode", "fast");
  EXPECT_EQ(o.get_string("mode", ""), "fast");
}

TEST(Options, LastDuplicateWins) {
  auto const o = parse({"--ranks=4", "--ranks=8"});
  EXPECT_EQ(o.get_int("ranks", 0), 8);
}

TEST(Options, NegativeNumbersAsValues) {
  auto const o = parse({"--delta=-7"});
  EXPECT_EQ(o.get_int("delta", 0), -7);
}

} // namespace
} // namespace tlb
