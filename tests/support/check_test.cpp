/// \file check_test.cpp
/// Tests for the invariant auditor itself (src/support/check.hpp): the
/// count-and-continue mode lets these tests deliberately violate
/// invariants — corrupt a CMF prefix, double-migrate a task — and assert
/// the auditor fires, without dying. Contract violations (assert.hpp) are
/// always-on and covered with death tests.

#include "support/check.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "lb/cmf.hpp"
#include "lb/incremental_cmf.hpp"
#include "lb/knowledge.hpp"
#include "runtime/object_store.hpp"
#include "runtime/runtime.hpp"

namespace tlb {
namespace {

/// Every test in this file runs the auditor in count mode and restores the
/// default abort mode afterwards, so a genuine violation elsewhere in the
/// suite still aborts loudly.
class AuditorTest : public ::testing::Test {
protected:
  void SetUp() override {
    audit::set_mode(audit::Mode::count);
    audit::reset_violations();
  }
  void TearDown() override {
    audit::reset_violations();
    audit::set_mode(audit::Mode::abort_process);
  }
};

TEST_F(AuditorTest, ReportCountsInsteadOfAborting) {
  EXPECT_EQ(audit::violation_count(), 0u);
  audit::report("1 == 2", "test invariant", __FILE__, __LINE__);
  EXPECT_EQ(audit::violation_count(), 1u);
  EXPECT_NE(audit::last_violation().find("test invariant"),
            std::string::npos);
  audit::report("3 == 4", "another", __FILE__, __LINE__);
  EXPECT_EQ(audit::violation_count(), 2u);
  audit::reset_violations();
  EXPECT_EQ(audit::violation_count(), 0u);
  EXPECT_EQ(audit::last_violation(), "");
}

TEST_F(AuditorTest, EnabledMatchesBuildConfiguration) {
#if TLB_AUDIT_ENABLED
  // Compiled in: enabled unless the environment said TLB_AUDIT=0.
  char const* const env = std::getenv("TLB_AUDIT");
  bool const env_off = env != nullptr && env[0] == '0' && env[1] == '\0';
  EXPECT_EQ(audit::enabled(), !env_off);
#else
  EXPECT_FALSE(audit::enabled());
#endif
}

TEST_F(AuditorTest, InvariantMacroFiresOnlyWhenFalse) {
  TLB_INVARIANT(1 + 1 == 2, "arithmetic holds");
  EXPECT_EQ(audit::violation_count(), 0u);
  TLB_INVARIANT(1 + 1 == 3, "arithmetic broken on purpose");
#if TLB_AUDIT_ENABLED
  if (audit::enabled()) {
    EXPECT_EQ(audit::violation_count(), 1u);
    EXPECT_NE(audit::last_violation().find("arithmetic broken"),
              std::string::npos);
  }
#else
  // Compiled out: the deliberately false condition must cost nothing and
  // record nothing.
  EXPECT_EQ(audit::violation_count(), 0u);
#endif
}

TEST_F(AuditorTest, ValidCmfPassesTheAuditor) {
  lb::Knowledge knowledge;
  knowledge.insert(1, 2.0);
  knowledge.insert(2, 6.0);
  knowledge.insert(3, 1.0);
  lb::Cmf const cmf{lb::CmfKind::modified, knowledge.entries(), 4.0, 0};
  EXPECT_FALSE(cmf.empty());
  EXPECT_EQ(audit::violation_count(), 0u) << audit::last_violation();
}

TEST_F(AuditorTest, CorruptedCmfPrefixTriggersTheAuditor) {
  if (!audit::enabled()) {
    GTEST_SKIP() << "auditor not compiled in (build with -DTLB_AUDIT=ON)";
  }
  // A healthy prefix is silent...
  std::vector<double> const good{0.25, 0.5, 1.0};
  lb::audit_cmf_prefix(good);
  EXPECT_EQ(audit::violation_count(), 0u);
  // ...a non-monotone prefix fires,
  std::vector<double> const non_monotone{0.5, 0.25, 1.0};
  lb::audit_cmf_prefix(non_monotone);
  EXPECT_GE(audit::violation_count(), 1u);
  EXPECT_NE(audit::last_violation().find("monotone"), std::string::npos);
  // ...as does a distribution whose last bucket is not pinned to 1,
  audit::reset_violations();
  std::vector<double> const unpinned{0.25, 0.5, 0.99};
  lb::audit_cmf_prefix(unpinned);
  EXPECT_GE(audit::violation_count(), 1u);
  // ...and mass outside (0, 1].
  audit::reset_violations();
  std::vector<double> const overflowing{0.25, 1.5, 1.0};
  lb::audit_cmf_prefix(overflowing);
  EXPECT_GE(audit::violation_count(), 1u);
}

TEST_F(AuditorTest, IncrementalCmfShadowCheckAcceptsScriptedUpdates) {
  lb::Knowledge knowledge;
  for (RankId r = 1; r <= 8; ++r) {
    knowledge.insert(r, static_cast<LoadType>(r));
  }
  lb::IncrementalCmf inc{lb::CmfKind::modified, knowledge.entries(), 4.0, 0};
  // Normalizer-shifting and plain point updates both re-audit internally.
  inc.add_load(3, 2.5);
  inc.add_load(8, 10.0); // overtakes l_s: O(n) rebuild path
  inc.add_load(1, 0.25);
  inc.audit_consistency();
  EXPECT_EQ(audit::violation_count(), 0u) << audit::last_violation();
}

struct TestPayload : rt::Migratable {
  [[nodiscard]] std::size_t wire_bytes() const override { return 8; }
};

TEST_F(AuditorTest, DoubleMigrateDiesOnContractViolation) {
  // Migrating the same task twice in one batch presents a stale `from` on
  // the second entry; the always-on contract check must refuse it. (This
  // guards the migration layer's precondition in every build, audit or
  // not — death test because assert.hpp aborts.)
  rt::RuntimeConfig cfg;
  cfg.num_ranks = 2;
  rt::Runtime runtime{cfg};
  rt::ObjectStore store{2};
  store.create(0, 7, std::make_unique<TestPayload>());
  std::vector<Migration> const twice{Migration{7, 0, 1, 1.0},
                                     Migration{7, 0, 1, 1.0}};
  EXPECT_DEATH(store.migrate(runtime, twice), "precondition");
}

TEST_F(AuditorTest, MigrationFromWrongRankDiesOnContractViolation) {
  rt::RuntimeConfig cfg;
  cfg.num_ranks = 3;
  rt::Runtime runtime{cfg};
  rt::ObjectStore store{3};
  store.create(2, 11, std::make_unique<TestPayload>());
  std::vector<Migration> const wrong{Migration{11, 0, 1, 1.0}};
  EXPECT_DEATH(store.migrate(runtime, wrong), "precondition");
}

} // namespace
} // namespace tlb
