#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/rng.hpp"

namespace tlb {
namespace {

TEST(Summarize, EmptyInput) {
  auto const s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.imbalance(), 0.0);
}

TEST(Summarize, SingleValue) {
  std::vector<LoadType> const loads{4.0};
  auto const s = summarize(loads);
  EXPECT_EQ(s.min, 4.0);
  EXPECT_EQ(s.max, 4.0);
  EXPECT_EQ(s.mean, 4.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.imbalance(), 0.0);
}

TEST(Summarize, KnownValues) {
  std::vector<LoadType> const loads{1.0, 2.0, 3.0, 6.0};
  auto const s = summarize(loads);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.sum, 12.0);
}

TEST(Imbalance, PerfectBalanceIsZero) {
  std::vector<LoadType> const loads{2.0, 2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(imbalance(loads), 0.0);
}

TEST(Imbalance, PaperEquationOne) {
  // I = l_max / l_ave - 1: one rank with everything, P = 4 -> I = 3.
  std::vector<LoadType> const loads{8.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(imbalance(loads), 3.0);
}

TEST(Imbalance, ZeroMeanYieldsZero) {
  std::vector<LoadType> const loads{0.0, 0.0};
  EXPECT_DOUBLE_EQ(imbalance(loads), 0.0);
}

TEST(Imbalance, ScaleInvariant) {
  std::vector<LoadType> a{1.0, 3.0, 5.0, 7.0};
  std::vector<LoadType> b;
  for (LoadType const l : a) {
    b.push_back(l * 1000.0);
  }
  EXPECT_NEAR(imbalance(a), imbalance(b), 1e-12);
}

TEST(RunningStats, MatchesBatchSummary) {
  Rng rng{101};
  std::vector<LoadType> values;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    double const x = rng.uniform(0.0, 10.0);
    values.push_back(x);
    rs.add(x);
  }
  auto const s = summarize(values);
  EXPECT_NEAR(rs.mean(), s.mean, 1e-9);
  EXPECT_NEAR(rs.stddev(), s.stddev, 1e-6);
  EXPECT_NEAR(rs.min(), s.min, 1e-12);
  EXPECT_NEAR(rs.max(), s.max, 1e-12);
  EXPECT_EQ(rs.count(), s.count);
}

TEST(RunningStats, MergeEqualsSingleStream) {
  Rng rng{103};
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 500; ++i) {
    double const x = rng.normal();
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats const empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 9
  h.add(-5.0);  // clamped to bin 0
  h.add(15.0);  // clamped to bin 9
  h.add(5.0);   // bin 5
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(5), 6.0);
}

TEST(Percentile, KnownQuantiles) {
  std::vector<double> const data{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(data, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(data, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(data, 25.0), 2.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> const data{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(data, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(data, 75.0), 7.5);
}

TEST(Percentile, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  std::vector<double> const one{7.0};
  EXPECT_DOUBLE_EQ(percentile(one, 99.0), 7.0);
}

} // namespace
} // namespace tlb
