#include "support/thread_annotations.hpp"

#include <gtest/gtest.h>

#include "support/spinlock.hpp"

// Compile-only coverage for the annotation macros: every macro in
// thread_annotations.hpp is expanded at least once in this translation
// unit, so a macro that breaks under either compiler (attribute syntax
// under Clang, empty expansion under GCC) fails the tier-1 build rather
// than only the clang race gate. The runtime assertions are incidental.

namespace tlb {
namespace {

class TLB_CAPABILITY("mutex") FakeCapability {
public:
  void lock() TLB_ACQUIRE() {}
  bool try_lock() TLB_TRY_ACQUIRE(true) { return true; }
  void unlock() TLB_RELEASE() {}
};

class TLB_SCOPED_CAPABILITY FakeScope {
public:
  explicit FakeScope(FakeCapability& cap) TLB_ACQUIRE(cap) : cap_{cap} {
    cap_.lock();
  }
  ~FakeScope() TLB_RELEASE() { cap_.unlock(); }

private:
  FakeCapability& cap_;
};

class Annotated {
public:
  void touch() TLB_EXCLUDES(first_) {
    FakeScope scope{first_};
    value_ += 1;
  }

  int read_locked() TLB_REQUIRES(first_) { return value_; }

  FakeCapability& capability() TLB_RETURN_CAPABILITY(first_) {
    return first_;
  }

  void unchecked() TLB_NO_THREAD_SAFETY_ANALYSIS { value_ += 1; }

private:
  FakeCapability first_ TLB_ACQUIRED_BEFORE(second_);
  FakeCapability second_ TLB_ACQUIRED_AFTER(first_);
  int value_ TLB_GUARDED_BY(first_) = 0;
  int* indirect_ TLB_PT_GUARDED_BY(second_) = nullptr;
};

TEST(ThreadAnnotations, MacrosExpandAndCodeRuns) {
  Annotated a;
  a.touch();
  a.unchecked();
  {
    FakeScope scope{a.capability()};
    EXPECT_EQ(a.read_locked(), 2);
  }
}

TEST(ThreadAnnotations, SpinLockGuardIsTheAnnotatedGuard) {
  SpinLock lock;
  {
    SpinLockGuard guard{lock};
    // Re-acquisition from another scope must fail while held.
    EXPECT_FALSE(lock.try_lock());
  }
  // Released on scope exit.
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

} // namespace
} // namespace tlb
