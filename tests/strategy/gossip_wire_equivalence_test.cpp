/// \file gossip_wire_equivalence_test.cpp
/// The delta wire plane's contract: GossipWire::delta is a transport
/// optimization, not a protocol change. Because every rank gossips over a
/// peer set fixed for the epoch, each peer receives the sender's whole
/// forward sequence, and the contiguous deltas (full snapshot first,
/// deltas after) union to exactly the full-resend payloads — so per-rank
/// knowledge, and therefore every transfer decision downstream, must be
/// bit-identical under both modes. Pinned here at 64 and 256 ranks for
/// both the sequential emulation and the distributed runtime protocol.

#include <gtest/gtest.h>

#include "lb/strategy/gossip_strategy.hpp"
#include "lbaf/experiment.hpp"
#include "lbaf/gossip_sim.hpp"
#include "lbaf/workload.hpp"
#include "support/rng.hpp"

namespace tlb::lb {
namespace {

void expect_same_knowledge(std::vector<Knowledge> const& a,
                           std::vector<Knowledge> const& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    auto const ea = a[r].entries();
    auto const eb = b[r].entries();
    ASSERT_EQ(ea.size(), eb.size()) << "rank " << r;
    for (std::size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].rank, eb[i].rank) << "rank " << r;
      EXPECT_EQ(ea[i].load, eb[i].load) << "rank " << r; // bitwise
    }
  }
}

class GossipWireEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(GossipWireEquivalence, SimFinalKnowledgeSetsAreIdentical) {
  auto const p = GetParam();
  std::vector<LoadType> loads(static_cast<std::size_t>(p), 0.0);
  Rng gen{33};
  for (int i = 0; i < p; ++i) {
    loads[static_cast<std::size_t>(i)] = gen.uniform(0.0, 2.0);
  }
  lbaf::GossipStats full_stats;
  lbaf::GossipStats delta_stats;
  Rng r1{44};
  Rng r2{44};
  auto const full = lbaf::run_gossip(loads, 1.0, 6, 10, r1, &full_stats, 0,
                                     GossipWire::full);
  auto const delta = lbaf::run_gossip(loads, 1.0, 6, 10, r2, &delta_stats,
                                      0, GossipWire::delta);
  expect_same_knowledge(full, delta);
  // Identical routing: the overlay is drawn before any payload exists.
  EXPECT_EQ(full_stats.messages, delta_stats.messages);
  // And the deltas must actually be cheaper, else the plane is pointless.
  EXPECT_LT(delta_stats.bytes, full_stats.bytes / 2);
}

TEST_P(GossipWireEquivalence, SimExperimentDecisionsAreIdentical) {
  auto const p = static_cast<RankId>(GetParam());
  lbaf::BimodalSpec const spec;
  auto const workload =
      lbaf::make_bimodal(p, std::max<RankId>(2, p / 16), 1500, spec, 99);
  auto params = LbParams::tempered();
  params.num_iterations = 3;
  params.num_trials = 2;
  params.seed = 1717;

  params.gossip_wire = GossipWire::full;
  auto const full = lbaf::run_experiment(params, workload);
  params.gossip_wire = GossipWire::delta;
  auto const delta = lbaf::run_experiment(params, workload);

  EXPECT_EQ(full.best_imbalance, delta.best_imbalance); // bitwise
  EXPECT_EQ(full.best_trial, delta.best_trial);
  EXPECT_EQ(full.best_iteration, delta.best_iteration);
  EXPECT_EQ(full.best_migrations, delta.best_migrations);
  ASSERT_EQ(full.records.size(), delta.records.size());
  std::size_t full_bytes = 0;
  std::size_t delta_bytes = 0;
  for (std::size_t i = 0; i < full.records.size(); ++i) {
    EXPECT_EQ(full.records[i].transfers, delta.records[i].transfers);
    EXPECT_EQ(full.records[i].rejected, delta.records[i].rejected);
    EXPECT_EQ(full.records[i].imbalance, delta.records[i].imbalance);
    EXPECT_EQ(full.records[i].gossip_messages,
              delta.records[i].gossip_messages);
    full_bytes += full.records[i].gossip_bytes;
    delta_bytes += delta.records[i].gossip_bytes;
  }
  EXPECT_LT(delta_bytes, full_bytes / 2);
}

TEST_P(GossipWireEquivalence, RuntimeStrategyDecisionsAreIdentical) {
  auto const p = static_cast<RankId>(GetParam());
  StrategyInput input;
  input.tasks.resize(static_cast<std::size_t>(p));
  Rng rng{21};
  TaskId id = 0;
  for (RankId r = 0; r < p / 8; ++r) {
    for (int i = 0; i < 30; ++i) {
      input.tasks[static_cast<std::size_t>(r)].push_back(
          {id++, rng.uniform(0.5, 1.5)});
    }
  }
  auto run_with = [&](GossipWire wire) {
    rt::RuntimeConfig cfg;
    cfg.num_ranks = p;
    cfg.seed = 555;
    rt::Runtime rt{cfg};
    GossipStrategy strategy{GossipStrategy::Flavor::tempered};
    auto params = LbParams::tempered();
    params.num_trials = 2;
    params.num_iterations = 3;
    params.gossip_wire = wire;
    return strategy.balance(rt, input, params);
  };
  auto const full = run_with(GossipWire::full);
  auto const delta = run_with(GossipWire::delta);
  EXPECT_EQ(full.achieved_imbalance, delta.achieved_imbalance); // bitwise
  EXPECT_EQ(full.migrations, delta.migrations);
  EXPECT_EQ(full.new_rank_loads, delta.new_rank_loads);
  // The protocol exchanged the same messages for fewer bytes.
  EXPECT_EQ(full.cost.lb_messages, delta.cost.lb_messages);
  EXPECT_LT(delta.cost.lb_bytes, full.cost.lb_bytes);
}

INSTANTIATE_TEST_SUITE_P(Ranks, GossipWireEquivalence,
                         ::testing::Values(64, 256));

} // namespace
} // namespace tlb::lb
