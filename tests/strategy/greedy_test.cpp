#include "lb/strategy/greedy.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "support/stats.hpp"

namespace tlb::lb {
namespace {

rt::RuntimeConfig config(RankId ranks) {
  rt::RuntimeConfig cfg;
  cfg.num_ranks = ranks;
  return cfg;
}

StrategyInput uniform_tasks_on_rank0(RankId ranks, std::size_t n,
                                     double load = 1.0) {
  StrategyInput input;
  input.tasks.resize(static_cast<std::size_t>(ranks));
  for (std::size_t i = 0; i < n; ++i) {
    input.tasks[0].push_back({static_cast<TaskId>(i), load});
  }
  return input;
}

TEST(GreedyLB, PerfectSplitOfUniformTasks) {
  rt::Runtime rt{config(4)};
  GreedyStrategy strategy;
  auto const input = uniform_tasks_on_rank0(4, 16);
  auto const result = strategy.balance(rt, input, LbParams::tempered());
  EXPECT_NEAR(result.achieved_imbalance, 0.0, 1e-12);
  // 12 of 16 tasks must leave rank 0.
  EXPECT_EQ(result.migrations.size(), 12u);
}

TEST(GreedyLB, NearOptimalOnRandomInstances) {
  Rng rng{61};
  for (int trial = 0; trial < 10; ++trial) {
    rt::Runtime rt{config(8)};
    GreedyStrategy strategy;
    StrategyInput input;
    input.tasks.resize(8);
    double total = 0.0;
    double max_task = 0.0;
    TaskId id = 0;
    for (int i = 0; i < 60; ++i) {
      double const load = rng.uniform(0.1, 2.0);
      input.tasks[rng.index(8)].push_back({id++, load});
      total += load;
      max_task = std::max(max_task, load);
    }
    auto const result = strategy.balance(rt, input, LbParams::tempered());
    double const opt_lower = std::max(total / 8.0, max_task);
    auto const max_load = summarize(result.new_rank_loads).max;
    EXPECT_LE(max_load, (4.0 / 3.0) * opt_lower + 1e-9);
  }
}

TEST(GreedyLB, GatherScatterTrafficCounted) {
  rt::Runtime rt{config(16)};
  GreedyStrategy strategy;
  auto const input = uniform_tasks_on_rank0(16, 32);
  auto const result = strategy.balance(rt, input, LbParams::tempered());
  // At least one gather message per rank plus scatter.
  EXPECT_GE(result.cost.lb_messages, 16u);
  EXPECT_GT(result.cost.lb_bytes, 0u);
}

TEST(GreedyLB, EmptySystem) {
  rt::Runtime rt{config(4)};
  GreedyStrategy strategy;
  StrategyInput input;
  input.tasks.resize(4);
  auto const result = strategy.balance(rt, input, LbParams::tempered());
  EXPECT_TRUE(result.migrations.empty());
}

TEST(GreedyLB, SingleRankNoMigrations) {
  rt::Runtime rt{config(1)};
  GreedyStrategy strategy;
  auto const input = uniform_tasks_on_rank0(1, 5);
  auto const result = strategy.balance(rt, input, LbParams::tempered());
  EXPECT_TRUE(result.migrations.empty());
  EXPECT_NEAR(result.achieved_imbalance, 0.0, 1e-12);
}

TEST(GreedyLB, Deterministic) {
  auto run_once = [] {
    rt::Runtime rt{config(8)};
    GreedyStrategy strategy;
    StrategyInput input;
    input.tasks.resize(8);
    Rng rng{17};
    TaskId id = 0;
    for (int i = 0; i < 40; ++i) {
      input.tasks[rng.index(8)].push_back({id++, rng.uniform(0.1, 2.0)});
    }
    return strategy.balance(rt, input, LbParams::tempered());
  };
  auto const a = run_once();
  auto const b = run_once();
  EXPECT_EQ(a.migrations, b.migrations);
}

} // namespace
} // namespace tlb::lb
