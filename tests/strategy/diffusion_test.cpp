#include "lb/strategy/diffusion.hpp"

#include <gtest/gtest.h>

#include "lb/strategy/gossip_strategy.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace tlb::lb {
namespace {

rt::RuntimeConfig config(RankId ranks) {
  rt::RuntimeConfig cfg;
  cfg.num_ranks = ranks;
  return cfg;
}

StrategyInput clustered(RankId ranks, RankId loaded, std::size_t per_rank,
                        std::uint64_t seed) {
  StrategyInput input;
  input.tasks.resize(static_cast<std::size_t>(ranks));
  Rng rng{seed};
  TaskId id = 0;
  for (RankId r = 0; r < loaded; ++r) {
    for (std::size_t i = 0; i < per_rank; ++i) {
      input.tasks[static_cast<std::size_t>(r)].push_back(
          {id++, rng.uniform(0.5, 1.5)});
    }
  }
  return input;
}

TEST(DiffusionLB, ImprovesNeighborhoodImbalance) {
  // A mild gradient is the regime diffusion handles well.
  StrategyInput input;
  input.tasks.resize(16);
  TaskId id = 0;
  for (RankId r = 0; r < 16; ++r) {
    for (int i = 0; i <= r; ++i) {
      input.tasks[static_cast<std::size_t>(r)].push_back({id++, 1.0});
    }
  }
  double const before = imbalance(input.rank_loads());
  rt::Runtime rt{config(16)};
  DiffusionStrategy strategy;
  auto const result = strategy.balance(rt, input, LbParams::tempered());
  EXPECT_LT(result.achieved_imbalance, 0.5 * before);
}

TEST(DiffusionLB, LimitedInformationLosesToGossipOnClustered) {
  // §IV-A's point: local-only schemes cannot cross the machine fast. A
  // hot spot on 2 of 64 ranks diffuses only ~sweeps hops per invocation,
  // so gossip must beat it decisively.
  auto const input = clustered(64, 2, 60, 7);
  rt::Runtime rt1{config(64)};
  rt::Runtime rt2{config(64)};
  DiffusionStrategy diffusion;
  GossipStrategy tempered{GossipStrategy::Flavor::tempered};
  auto params = LbParams::tempered();
  params.rounds = 6;
  params.num_trials = 2;
  params.num_iterations = 3;
  auto const d = diffusion.balance(rt1, input, params);
  auto const g = tempered.balance(rt2, input, params);
  EXPECT_LT(g.achieved_imbalance, 0.5 * d.achieved_imbalance);
}

TEST(DiffusionLB, ConservesLoad) {
  auto const input = clustered(12, 3, 20, 5);
  rt::Runtime rt{config(12)};
  DiffusionStrategy strategy;
  auto const result = strategy.balance(rt, input, LbParams::tempered());
  double total_in = 0.0;
  for (auto const& tasks : input.tasks) {
    for (auto const& t : tasks) {
      total_in += t.load;
    }
  }
  double total_out = 0.0;
  for (double const l : result.new_rank_loads) {
    EXPECT_GE(l, -1e-9);
    total_out += l;
  }
  EXPECT_NEAR(total_in, total_out, 1e-9);
}

TEST(DiffusionLB, SingleRankIsNoop) {
  StrategyInput input;
  input.tasks.resize(1);
  input.tasks[0] = {{0, 1.0}, {1, 2.0}};
  rt::Runtime rt{config(1)};
  DiffusionStrategy strategy;
  auto const result = strategy.balance(rt, input, LbParams::tempered());
  EXPECT_TRUE(result.migrations.empty());
}

TEST(DiffusionLB, Deterministic) {
  auto const input = clustered(16, 2, 25, 9);
  auto run_once = [&] {
    rt::Runtime rt{config(16)};
    DiffusionStrategy strategy;
    return strategy.balance(rt, input, LbParams::tempered());
  };
  EXPECT_EQ(run_once().migrations, run_once().migrations);
}

TEST(DiffusionLB, MoreSweepsSpreadFurther) {
  auto const input = clustered(32, 1, 64, 11);
  auto run_with = [&](int sweeps) {
    rt::Runtime rt{config(32)};
    DiffusionStrategy strategy{sweeps};
    return strategy.balance(rt, input, LbParams::tempered())
        .achieved_imbalance;
  };
  EXPECT_LT(run_with(16), run_with(2));
}

TEST(DiffusionLB, RegisteredInFactory) {
  auto const strategy = make_strategy("diffusion");
  EXPECT_EQ(strategy->name(), "diffusion");
}

} // namespace
} // namespace tlb::lb
