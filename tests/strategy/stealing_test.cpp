#include "lb/strategy/stealing.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "support/rng.hpp"
#include "support/stats.hpp"

namespace tlb::lb {
namespace {

rt::RuntimeConfig config(RankId ranks, std::uint64_t seed = 11) {
  rt::RuntimeConfig cfg;
  cfg.num_ranks = ranks;
  cfg.seed = seed;
  return cfg;
}

StrategyInput clustered(RankId ranks, RankId loaded, std::size_t per_rank,
                        std::uint64_t seed) {
  StrategyInput input;
  input.tasks.resize(static_cast<std::size_t>(ranks));
  Rng rng{seed};
  TaskId id = 0;
  for (RankId r = 0; r < loaded; ++r) {
    for (std::size_t i = 0; i < per_rank; ++i) {
      input.tasks[static_cast<std::size_t>(r)].push_back(
          {id++, rng.uniform(0.3, 1.2)});
    }
  }
  return input;
}

TEST(StealingLB, ReducesClusteredImbalance) {
  auto const input = clustered(32, 2, 60, 3);
  double const before = imbalance(input.rank_loads());
  rt::Runtime rt{config(32)};
  StealingStrategy strategy;
  auto const result = strategy.balance(rt, input, LbParams::tempered());
  // Blind random probing discovers the two victims slowly (the "limited
  // efficacy" §IV-A attributes to information-free distributed schemes),
  // but sixteen rounds must still cut the imbalance substantially.
  EXPECT_LT(result.achieved_imbalance, 0.5 * before);
}

TEST(StealingLB, MigrationsConsistentAndConserving) {
  auto const input = clustered(24, 3, 30, 5);
  rt::Runtime rt{config(24)};
  StealingStrategy strategy;
  auto const result = strategy.balance(rt, input, LbParams::tempered());

  std::map<TaskId, RankId> home;
  double total_in = 0.0;
  for (std::size_t r = 0; r < input.tasks.size(); ++r) {
    for (auto const& t : input.tasks[r]) {
      home[t.id] = static_cast<RankId>(r);
      total_in += t.load;
    }
  }
  std::set<TaskId> seen;
  for (auto const& m : result.migrations) {
    EXPECT_TRUE(seen.insert(m.task).second);
    EXPECT_EQ(m.from, home.at(m.task));
    EXPECT_NE(m.from, m.to);
  }
  double total_out = 0.0;
  for (double const l : result.new_rank_loads) {
    EXPECT_GE(l, -1e-9);
    total_out += l;
  }
  EXPECT_NEAR(total_in, total_out, 1e-6);
}

TEST(StealingLB, VictimsNeverDropBelowAverage) {
  // The surrender rule stops at l_ave: no initially-overloaded rank may
  // end below the average by more than one task's worth of overshoot —
  // and since the loop checks before handing out, not below it at all.
  auto const input = clustered(16, 4, 25, 7);
  auto const initial = input.rank_loads();
  double total = 0.0;
  for (double const l : initial) {
    total += l;
  }
  double const l_ave = total / static_cast<double>(initial.size());
  rt::Runtime rt{config(16)};
  StealingStrategy strategy;
  auto const result = strategy.balance(rt, input, LbParams::tempered());
  for (std::size_t r = 0; r < initial.size(); ++r) {
    if (initial[r] > l_ave) {
      EXPECT_GE(result.new_rank_loads[r], l_ave - 1e-9) << "rank " << r;
    }
  }
}

TEST(StealingLB, EmptySystemAndSingleRank) {
  {
    rt::Runtime rt{config(4)};
    StealingStrategy strategy;
    StrategyInput input;
    input.tasks.resize(4);
    auto const result = strategy.balance(rt, input, LbParams::tempered());
    EXPECT_TRUE(result.migrations.empty());
  }
  {
    rt::Runtime rt{config(1)};
    StealingStrategy strategy;
    StrategyInput input;
    input.tasks.resize(1);
    input.tasks[0] = {{0, 2.0}};
    auto const result = strategy.balance(rt, input, LbParams::tempered());
    EXPECT_TRUE(result.migrations.empty());
  }
}

TEST(StealingLB, DeterministicOnSequentialDriver) {
  auto const input = clustered(16, 2, 20, 9);
  auto run_once = [&] {
    rt::Runtime rt{config(16, 77)};
    StealingStrategy strategy;
    return strategy.balance(rt, input, LbParams::tempered());
  };
  EXPECT_EQ(run_once().migrations, run_once().migrations);
}

TEST(StealingLB, MoreRoundsImproveQuality) {
  auto const input = clustered(48, 2, 60, 13);
  auto run_with = [&](int rounds) {
    rt::Runtime rt{config(48)};
    StealingStrategy strategy{rounds};
    return strategy.balance(rt, input, LbParams::tempered())
        .achieved_imbalance;
  };
  EXPECT_LE(run_with(16), run_with(1) + 1e-9);
}

TEST(StealingLB, RegisteredInFactory) {
  EXPECT_EQ(make_strategy("stealing")->name(), "stealing");
}

} // namespace
} // namespace tlb::lb
