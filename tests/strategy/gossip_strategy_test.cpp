#include "lb/strategy/gossip_strategy.hpp"

#include <gtest/gtest.h>

#include <map>

#include "support/rng.hpp"
#include "support/stats.hpp"

namespace tlb::lb {
namespace {

rt::RuntimeConfig config(RankId ranks, int threads = 1,
                         std::uint64_t seed = 1234) {
  rt::RuntimeConfig cfg;
  cfg.num_ranks = ranks;
  cfg.num_threads = threads;
  cfg.seed = seed;
  return cfg;
}

/// Clustered input: all tasks on the first `loaded` ranks.
StrategyInput clustered_input(RankId ranks, RankId loaded,
                              std::size_t tasks_per_loaded,
                              std::uint64_t seed = 7) {
  StrategyInput input;
  input.tasks.resize(static_cast<std::size_t>(ranks));
  Rng rng{seed};
  TaskId id = 0;
  for (RankId r = 0; r < loaded; ++r) {
    for (std::size_t i = 0; i < tasks_per_loaded; ++i) {
      input.tasks[static_cast<std::size_t>(r)].push_back(
          {id++, rng.uniform(0.5, 1.5)});
    }
  }
  return input;
}

void check_migrations_consistent(StrategyInput const& input,
                                 StrategyResult const& result) {
  // Each migration's `from` must match the task's actual rank; no task
  // migrates twice.
  std::map<TaskId, RankId> home;
  for (std::size_t r = 0; r < input.tasks.size(); ++r) {
    for (TaskEntry const& t : input.tasks[r]) {
      home[t.id] = static_cast<RankId>(r);
    }
  }
  std::map<TaskId, int> seen;
  for (Migration const& m : result.migrations) {
    ASSERT_TRUE(home.count(m.task));
    EXPECT_EQ(home[m.task], m.from);
    EXPECT_NE(m.from, m.to);
    EXPECT_EQ(++seen[m.task], 1);
  }
  // Projected loads must conserve total load.
  double input_total = 0.0;
  for (auto const& tasks : input.tasks) {
    for (auto const& t : tasks) {
      input_total += t.load;
    }
  }
  double projected_total = 0.0;
  for (double const l : result.new_rank_loads) {
    projected_total += l;
  }
  EXPECT_NEAR(projected_total, input_total, 1e-6);
}

TEST(TemperedLB, ReducesImbalanceDramatically) {
  rt::Runtime rt{config(64)};
  GossipStrategy strategy{GossipStrategy::Flavor::tempered};
  auto const input = clustered_input(64, 4, 50);
  double const before = imbalance(input.rank_loads());
  auto params = LbParams::tempered();
  params.num_trials = 2;
  params.num_iterations = 4;
  params.rounds = 6;
  auto const result = strategy.balance(rt, input, params);
  EXPECT_GT(before, 10.0);
  EXPECT_LT(result.achieved_imbalance, 1.0);
  check_migrations_consistent(input, result);
}

TEST(TemperedLB, NeverWorseThanInitial) {
  rt::Runtime rt{config(32)};
  GossipStrategy strategy{GossipStrategy::Flavor::tempered};
  auto const input = clustered_input(32, 32, 4, 11); // already spread
  double const before = imbalance(input.rank_loads());
  auto params = LbParams::tempered();
  params.num_trials = 1;
  params.num_iterations = 2;
  params.rounds = 5;
  auto const result = strategy.balance(rt, input, params);
  EXPECT_LE(result.achieved_imbalance, before + 1e-9);
  check_migrations_consistent(input, result);
}

TEST(TemperedLB, EmptySystemNoMigrations) {
  rt::Runtime rt{config(8)};
  GossipStrategy strategy{GossipStrategy::Flavor::tempered};
  StrategyInput input;
  input.tasks.resize(8);
  auto const result = strategy.balance(rt, input, LbParams::tempered());
  EXPECT_TRUE(result.migrations.empty());
  EXPECT_DOUBLE_EQ(result.achieved_imbalance, 0.0);
}

TEST(TemperedLB, AlreadyBalancedProposesLittle) {
  rt::Runtime rt{config(16)};
  GossipStrategy strategy{GossipStrategy::Flavor::tempered};
  StrategyInput input;
  input.tasks.resize(16);
  TaskId id = 0;
  for (auto& tasks : input.tasks) {
    tasks.push_back({id++, 1.0}); // perfect balance
  }
  auto params = LbParams::tempered();
  params.num_trials = 1;
  params.num_iterations = 2;
  auto const result = strategy.balance(rt, input, params);
  EXPECT_TRUE(result.migrations.empty());
  EXPECT_NEAR(result.achieved_imbalance, 0.0, 1e-12);
}

TEST(TemperedLB, AchievedImbalanceMatchesProjectedLoads) {
  rt::Runtime rt{config(48)};
  GossipStrategy strategy{GossipStrategy::Flavor::tempered};
  auto const input = clustered_input(48, 3, 40, 23);
  auto params = LbParams::tempered();
  params.num_trials = 2;
  params.num_iterations = 3;
  params.rounds = 6;
  auto const result = strategy.balance(rt, input, params);
  EXPECT_NEAR(result.achieved_imbalance, imbalance(result.new_rank_loads),
              1e-9);
}

TEST(TemperedLB, DeterministicOnSequentialDriver) {
  auto run_once = [] {
    rt::Runtime rt{config(32, 1, 99)};
    GossipStrategy strategy{GossipStrategy::Flavor::tempered};
    auto const input = clustered_input(32, 2, 30, 5);
    auto params = LbParams::tempered();
    params.num_trials = 2;
    params.num_iterations = 3;
    params.rounds = 5;
    return strategy.balance(rt, input, params);
  };
  auto const a = run_once();
  auto const b = run_once();
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_DOUBLE_EQ(a.achieved_imbalance, b.achieved_imbalance);
}

TEST(TemperedLB, CostAccountingPopulated) {
  rt::Runtime rt{config(32)};
  GossipStrategy strategy{GossipStrategy::Flavor::tempered};
  auto const input = clustered_input(32, 2, 30, 9);
  auto params = LbParams::tempered();
  params.num_trials = 1;
  params.num_iterations = 2;
  params.rounds = 5;
  auto const result = strategy.balance(rt, input, params);
  EXPECT_GT(result.cost.lb_messages, 0u);
  EXPECT_GT(result.cost.lb_bytes, 0u);
  EXPECT_EQ(result.cost.migration_count, result.migrations.size());
  double load = 0.0;
  for (auto const& m : result.migrations) {
    load += m.load;
  }
  EXPECT_NEAR(result.cost.migrated_load, load, 1e-9);
}

/// Bimodal input in the §V-B regime: the heavy population exceeds l_ave,
/// so GrapevineLB's original criterion cannot move it while TemperedLB's
/// relaxed criterion can.
StrategyInput bimodal_input(RankId ranks, RankId loaded,
                            std::size_t per_rank, std::uint64_t seed) {
  StrategyInput input;
  input.tasks.resize(static_cast<std::size_t>(ranks));
  Rng rng{seed};
  TaskId id = 0;
  for (RankId r = 0; r < loaded; ++r) {
    for (std::size_t i = 0; i < per_rank; ++i) {
      double const load = rng.uniform() < 0.3 ? rng.uniform(4.0, 6.0)
                                              : rng.uniform(0.2, 0.6);
      input.tasks[static_cast<std::size_t>(r)].push_back({id++, load});
    }
  }
  return input;
}

TEST(GrapevineLB, ImprovesButLessThanTempered) {
  auto const input = bimodal_input(128, 4, 50, 31);
  double const before = imbalance(input.rank_loads());

  rt::Runtime rt1{config(128)};
  GossipStrategy grapevine{GossipStrategy::Flavor::grapevine};
  auto params = LbParams::tempered();
  params.rounds = 6;
  auto const gv = grapevine.balance(rt1, input, params);

  rt::Runtime rt2{config(128)};
  GossipStrategy tempered{GossipStrategy::Flavor::tempered};
  auto tp = params;
  tp.num_trials = 2;
  tp.num_iterations = 4;
  auto const tl = tempered.balance(rt2, input, tp);

  EXPECT_LT(gv.achieved_imbalance, before);      // grapevine does improve
  EXPECT_LT(tl.achieved_imbalance,
            0.5 * gv.achieved_imbalance);        // tempered wins clearly
  check_migrations_consistent(input, gv);
  check_migrations_consistent(input, tl);
}

TEST(GossipLB, ThreadedDriverProducesValidResult) {
  rt::Runtime rt{config(32, 4)};
  GossipStrategy strategy{GossipStrategy::Flavor::tempered};
  auto const input = clustered_input(32, 2, 40, 13);
  double const before = imbalance(input.rank_loads());
  auto params = LbParams::tempered();
  params.num_trials = 1;
  params.num_iterations = 3;
  params.rounds = 5;
  auto const result = strategy.balance(rt, input, params);
  EXPECT_LT(result.achieved_imbalance, before);
  check_migrations_consistent(input, result);
}

TEST(TemperedFastLB, MatchesTemperedDecisionForDecision) {
  // The incremental-CMF flavor runs the same protocol over the same rng
  // streams; with an identical runtime seed it must reproduce the
  // reference flavor's migrations exactly (a sampling divergence would
  // mean the Fenwick path drew a different recipient).
  auto const input = clustered_input(48, 3, 40, 23);
  auto params = LbParams::tempered();
  params.num_trials = 2;
  params.num_iterations = 3;
  params.rounds = 6;

  rt::Runtime rt1{config(48)};
  GossipStrategy reference{GossipStrategy::Flavor::tempered};
  auto const a = reference.balance(rt1, input, params);

  rt::Runtime rt2{config(48)};
  GossipStrategy fast{GossipStrategy::Flavor::tempered_fast};
  auto const b = fast.balance(rt2, input, params);

  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_DOUBLE_EQ(a.achieved_imbalance, b.achieved_imbalance);
  EXPECT_EQ(a.cost.migration_count, b.cost.migration_count);
  check_migrations_consistent(input, b);
}

class OrderingSweep : public ::testing::TestWithParam<OrderKind> {};

TEST_P(OrderingSweep, AllOrderingsProduceValidImprovingResults) {
  rt::Runtime rt{config(48)};
  GossipStrategy strategy{GossipStrategy::Flavor::tempered};
  auto const input = clustered_input(48, 4, 30, 17);
  double const before = imbalance(input.rank_loads());
  auto params = LbParams::tempered();
  params.order = GetParam();
  params.num_trials = 2;
  params.num_iterations = 3;
  params.rounds = 6;
  auto const result = strategy.balance(rt, input, params);
  EXPECT_LT(result.achieved_imbalance, 0.3 * before);
  check_migrations_consistent(input, result);
}

INSTANTIATE_TEST_SUITE_P(
    Orders, OrderingSweep,
    ::testing::Values(OrderKind::arbitrary, OrderKind::load_intensive,
                      OrderKind::fewest_migrations, OrderKind::lightest));

} // namespace
} // namespace tlb::lb
