#include "lb/strategy/baselines.hpp"

#include <gtest/gtest.h>

#include "lb/strategy/strategy.hpp"
#include "support/stats.hpp"

namespace tlb::lb {
namespace {

rt::RuntimeConfig config(RankId ranks) {
  rt::RuntimeConfig cfg;
  cfg.num_ranks = ranks;
  return cfg;
}

StrategyInput two_rank_input() {
  StrategyInput input;
  input.tasks.resize(4);
  input.tasks[0] = {{0, 1.0}, {1, 2.0}};
  input.tasks[2] = {{2, 3.0}};
  return input;
}

TEST(RotateLB, ShiftsEveryTaskByOne) {
  rt::Runtime rt{config(4)};
  RotateStrategy strategy;
  auto const input = two_rank_input();
  auto const result = strategy.balance(rt, input, LbParams::tempered());
  ASSERT_EQ(result.migrations.size(), 3u);
  for (auto const& m : result.migrations) {
    EXPECT_EQ(m.to, (m.from + 1) % 4);
  }
}

TEST(RotateLB, SingleRankMovesNothing) {
  rt::Runtime rt{config(1)};
  RotateStrategy strategy;
  StrategyInput input;
  input.tasks.resize(1);
  input.tasks[0] = {{0, 1.0}};
  auto const result = strategy.balance(rt, input, LbParams::tempered());
  EXPECT_TRUE(result.migrations.empty());
}

TEST(RotateLB, PreservesImbalanceValue) {
  // Rotation permutes rank loads, so I is unchanged.
  rt::Runtime rt{config(4)};
  RotateStrategy strategy;
  auto const input = two_rank_input();
  double const before = imbalance(input.rank_loads());
  auto const result = strategy.balance(rt, input, LbParams::tempered());
  EXPECT_NEAR(result.achieved_imbalance, before, 1e-12);
}

TEST(RandomLB, DeterministicPerSeed) {
  rt::Runtime rt{config(8)};
  RandomStrategy strategy;
  StrategyInput input;
  input.tasks.resize(8);
  for (TaskId i = 0; i < 32; ++i) {
    input.tasks[0].push_back({i, 1.0});
  }
  auto params = LbParams::tempered();
  params.seed = 5;
  auto const a = strategy.balance(rt, input, params);
  auto const b = strategy.balance(rt, input, params);
  EXPECT_EQ(a.migrations, b.migrations);
  params.seed = 6;
  auto const c = strategy.balance(rt, input, params);
  EXPECT_NE(a.migrations, c.migrations);
}

TEST(RandomLB, SpreadsTasksAcrossRanks) {
  rt::Runtime rt{config(8)};
  RandomStrategy strategy;
  StrategyInput input;
  input.tasks.resize(8);
  for (TaskId i = 0; i < 400; ++i) {
    input.tasks[0].push_back({i, 1.0});
  }
  auto const result = strategy.balance(rt, input, LbParams::tempered());
  // Expected I for multinomial(400, 8 bins) is small; definitely below
  // the initial I = 7.
  EXPECT_LT(result.achieved_imbalance, 1.0);
}

TEST(Factory, CreatesAllRegisteredStrategies) {
  for (auto const name : strategy_names()) {
    auto const strategy = make_strategy(name);
    ASSERT_NE(strategy, nullptr);
    EXPECT_EQ(strategy->name(), name);
  }
}

TEST(Factory, UnknownNameThrows) {
  EXPECT_THROW((void)make_strategy("definitely-not-a-strategy"),
               std::invalid_argument);
}

} // namespace
} // namespace tlb::lb
