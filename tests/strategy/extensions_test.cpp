#include <gtest/gtest.h>

#include <map>
#include <set>

#include "lb/strategy/gossip_strategy.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace tlb::lb {
namespace {

rt::RuntimeConfig config(RankId ranks, bool random_delivery = false) {
  rt::RuntimeConfig cfg;
  cfg.num_ranks = ranks;
  cfg.seed = 321;
  cfg.random_delivery = random_delivery;
  return cfg;
}

StrategyInput clustered(RankId ranks, RankId loaded, std::size_t per_rank,
                        std::uint64_t seed) {
  StrategyInput input;
  input.tasks.resize(static_cast<std::size_t>(ranks));
  Rng rng{seed};
  TaskId id = 0;
  for (RankId r = 0; r < loaded; ++r) {
    for (std::size_t i = 0; i < per_rank; ++i) {
      input.tasks[static_cast<std::size_t>(r)].push_back(
          {id++, rng.uniform(0.5, 1.5)});
    }
  }
  return input;
}

LbParams fast_params() {
  auto p = LbParams::tempered();
  p.rounds = 5;
  p.num_trials = 2;
  p.num_iterations = 3;
  return p;
}

TEST(KnowledgeCapStrategy, BoundedKnowledgeStillImproves) {
  auto const input = clustered(64, 4, 40, 3);
  double const before = imbalance(input.rank_loads());
  rt::Runtime rt{config(64)};
  GossipStrategy strategy{GossipStrategy::Flavor::tempered};
  auto params = fast_params();
  params.max_knowledge = 8;
  auto const result = strategy.balance(rt, input, params);
  EXPECT_LT(result.achieved_imbalance, before);
}

TEST(KnowledgeCapStrategy, CapReducesGossipBytes) {
  auto const input = clustered(64, 4, 40, 3);
  auto run_with = [&](int cap) {
    rt::Runtime rt{config(64)};
    GossipStrategy strategy{GossipStrategy::Flavor::tempered};
    auto params = fast_params();
    params.max_knowledge = cap;
    // The cap-vs-uncapped comparison is about bounding full-resend
    // payloads at O(cap) instead of O(P); under the delta wire the
    // uncapped run already ships near-empty payloads (and a capped run
    // falls back to full snapshots after every truncation), so the
    // baseline wire mode is the meaningful one here. Run enough rounds
    // for uncapped knowledge to saturate across the per-epoch overlay —
    // the contrast being asserted is payload size, not epidemic depth.
    params.gossip_wire = GossipWire::full;
    params.rounds = 10;
    return strategy.balance(rt, input, params);
  };
  auto const capped = run_with(4);
  auto const unlimited = run_with(0);
  EXPECT_LT(capped.cost.lb_bytes, unlimited.cost.lb_bytes / 2);
}

TEST(KnowledgeCapStrategy, UnlimitedEqualsDefault) {
  auto const input = clustered(32, 2, 30, 5);
  auto run_with = [&](int cap) {
    rt::Runtime rt{config(32)};
    GossipStrategy strategy{GossipStrategy::Flavor::tempered};
    auto params = fast_params();
    params.max_knowledge = cap;
    return strategy.balance(rt, input, params);
  };
  auto const a = run_with(0);
  auto const b = run_with(0);
  EXPECT_EQ(a.migrations, b.migrations);
}

TEST(Nacks, ConservesTasksWhenBouncing) {
  // With NACKs every bounced task must land back on its sender; no task
  // may vanish or duplicate in the final migration list.
  auto const input = clustered(32, 2, 40, 7);
  rt::Runtime rt{config(32)};
  GossipStrategy strategy{GossipStrategy::Flavor::tempered};
  auto params = fast_params();
  params.use_nacks = true;
  auto const result = strategy.balance(rt, input, params);
  std::map<TaskId, RankId> home;
  for (std::size_t r = 0; r < input.tasks.size(); ++r) {
    for (auto const& t : input.tasks[r]) {
      home[t.id] = static_cast<RankId>(r);
    }
  }
  std::set<TaskId> seen;
  for (auto const& m : result.migrations) {
    EXPECT_TRUE(seen.insert(m.task).second) << "task migrated twice";
    EXPECT_EQ(m.from, home.at(m.task));
  }
  double total_in = 0.0;
  for (auto const& tasks : input.tasks) {
    for (auto const& t : tasks) {
      total_in += t.load;
    }
  }
  double total_out = 0.0;
  for (double const l : result.new_rank_loads) {
    total_out += l;
  }
  EXPECT_NEAR(total_in, total_out, 1e-6);
}

TEST(Nacks, RecipientsStayAtOrBelowAverageInProjection) {
  // The NACK rule bounces anything that would push a recipient past
  // l_ave, so no rank that started underloaded may end above it (senders
  // may, they just shed less).
  auto const input = clustered(32, 2, 40, 9);
  auto const initial = input.rank_loads();
  double total = 0.0;
  for (double const l : initial) {
    total += l;
  }
  double const l_ave = total / static_cast<double>(initial.size());

  rt::Runtime rt{config(32)};
  GossipStrategy strategy{GossipStrategy::Flavor::tempered};
  auto params = fast_params();
  params.use_nacks = true;
  auto const result = strategy.balance(rt, input, params);
  for (std::size_t r = 0; r < initial.size(); ++r) {
    if (initial[r] < l_ave) {
      EXPECT_LE(result.new_rank_loads[r], l_ave + 1e-9) << "rank " << r;
    }
  }
}

TEST(Nacks, WorseThanPaperDesignOnConcentratedLoad) {
  // The ablation result: bouncing recipients at l_ave re-imposes the
  // original criterion's restriction, so NACKs cannot beat the paper's
  // deferred-commit design on a concentrated workload.
  auto const input = clustered(64, 2, 60, 11);
  auto run_with = [&](bool nacks) {
    rt::Runtime rt{config(64)};
    GossipStrategy strategy{GossipStrategy::Flavor::tempered};
    auto params = fast_params();
    params.use_nacks = nacks;
    return strategy.balance(rt, input, params);
  };
  auto const with_nacks = run_with(true);
  auto const without = run_with(false);
  EXPECT_LE(without.achieved_imbalance,
            with_nacks.achieved_imbalance + 1e-9);
}

TEST(RandomDeliveryStrategy, GossipLbValidUnderReordering) {
  // The asynchronous protocol must tolerate arbitrary delivery order.
  auto const input = clustered(48, 3, 40, 13);
  double const before = imbalance(input.rank_loads());
  rt::Runtime rt{config(48, /*random_delivery=*/true)};
  GossipStrategy strategy{GossipStrategy::Flavor::tempered};
  auto const result = strategy.balance(rt, input, fast_params());
  EXPECT_LT(result.achieved_imbalance, 0.5 * before);
  // Migration list consistency.
  std::set<TaskId> seen;
  for (auto const& m : result.migrations) {
    EXPECT_TRUE(seen.insert(m.task).second);
    EXPECT_NE(m.from, m.to);
  }
}

} // namespace
} // namespace tlb::lb
