#include "lb/strategy/hier.hpp"

#include <gtest/gtest.h>

#include "lb/strategy/greedy.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace tlb::lb {
namespace {

rt::RuntimeConfig config(RankId ranks) {
  rt::RuntimeConfig cfg;
  cfg.num_ranks = ranks;
  return cfg;
}

StrategyInput clustered(RankId ranks, RankId loaded, std::size_t per_rank,
                        std::uint64_t seed) {
  StrategyInput input;
  input.tasks.resize(static_cast<std::size_t>(ranks));
  Rng rng{seed};
  TaskId id = 0;
  for (RankId r = 0; r < loaded; ++r) {
    for (std::size_t i = 0; i < per_rank; ++i) {
      input.tasks[static_cast<std::size_t>(r)].push_back(
          {id++, rng.uniform(0.5, 1.5)});
    }
  }
  return input;
}

TEST(HierLB, ReducesClusteredImbalance) {
  rt::Runtime rt{config(64)};
  HierStrategy strategy;
  auto const input = clustered(64, 4, 40, 3);
  double const before = imbalance(input.rank_loads());
  auto const result = strategy.balance(rt, input, LbParams::tempered());
  EXPECT_LT(result.achieved_imbalance, 0.2 * before);
}

TEST(HierLB, QualityWithinReasonOfGreedy) {
  // The paper's Fig. 3: HierLB quality is close to GreedyLB (1117s vs
  // 1063s particle time, ~5%). Allow a generous factor here.
  auto const input = clustered(36, 3, 50, 5);
  rt::Runtime rt1{config(36)};
  rt::Runtime rt2{config(36)};
  HierStrategy hier;
  GreedyStrategy greedy;
  auto const h = hier.balance(rt1, input, LbParams::tempered());
  auto const g = greedy.balance(rt2, input, LbParams::tempered());
  auto const h_max = summarize(h.new_rank_loads).max;
  auto const g_max = summarize(g.new_rank_loads).max;
  EXPECT_LE(h_max, 1.6 * g_max);
}

TEST(HierLB, MigrationsAreConsistent) {
  rt::Runtime rt{config(25)};
  HierStrategy strategy;
  auto const input = clustered(25, 2, 30, 7);
  auto const result = strategy.balance(rt, input, LbParams::tempered());
  double input_total = 0.0;
  for (auto const& tasks : input.tasks) {
    for (auto const& t : tasks) {
      input_total += t.load;
    }
  }
  double projected = 0.0;
  for (double const l : result.new_rank_loads) {
    EXPECT_GE(l, -1e-9);
    projected += l;
  }
  EXPECT_NEAR(projected, input_total, 1e-6);
  for (auto const& m : result.migrations) {
    EXPECT_NE(m.from, m.to);
  }
}

TEST(HierLB, HandlesNonSquareRankCounts) {
  for (RankId p : {3, 7, 10, 17}) {
    rt::Runtime rt{config(p)};
    HierStrategy strategy;
    auto const input = clustered(p, 1, 4 * static_cast<std::size_t>(p), 9);
    auto const result = strategy.balance(rt, input, LbParams::tempered());
    EXPECT_LT(result.achieved_imbalance,
              imbalance(input.rank_loads()) + 1e-9);
  }
}

TEST(HierLB, EmptySystem) {
  rt::Runtime rt{config(9)};
  HierStrategy strategy;
  StrategyInput input;
  input.tasks.resize(9);
  auto const result = strategy.balance(rt, input, LbParams::tempered());
  EXPECT_TRUE(result.migrations.empty());
}

TEST(HierLB, SingleRank) {
  rt::Runtime rt{config(1)};
  HierStrategy strategy;
  StrategyInput input;
  input.tasks.resize(1);
  input.tasks[0] = {{0, 1.0}, {1, 2.0}};
  auto const result = strategy.balance(rt, input, LbParams::tempered());
  EXPECT_TRUE(result.migrations.empty());
}

TEST(HierLB, Deterministic) {
  auto run_once = [] {
    rt::Runtime rt{config(16)};
    HierStrategy strategy;
    auto const input = clustered(16, 2, 20, 21);
    return strategy.balance(rt, input, LbParams::tempered());
  };
  auto const a = run_once();
  auto const b = run_once();
  EXPECT_EQ(a.migrations, b.migrations);
}

} // namespace
} // namespace tlb::lb
