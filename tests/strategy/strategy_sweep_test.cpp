/// Parameterized sweep over every registered strategy: shared contracts
/// each one must satisfy regardless of algorithm.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "lb/strategy/lb_manager.hpp"
#include "lb/strategy/strategy.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace tlb::lb {
namespace {

class EveryStrategy : public ::testing::TestWithParam<std::string> {
protected:
  static StrategyInput clustered_input() {
    StrategyInput input;
    input.tasks.resize(24);
    Rng rng{41};
    TaskId id = 0;
    for (RankId r = 0; r < 3; ++r) {
      for (int i = 0; i < 30; ++i) {
        input.tasks[static_cast<std::size_t>(r)].push_back(
            {id++, rng.uniform(0.2, 1.4)});
      }
    }
    return input;
  }

  static LbParams fast_params() {
    auto p = LbParams::tempered();
    p.rounds = 5;
    p.num_trials = 2;
    p.num_iterations = 3;
    return p;
  }
};

TEST_P(EveryStrategy, MigrationsAreWellFormed) {
  auto const input = clustered_input();
  rt::RuntimeConfig cfg;
  cfg.num_ranks = 24;
  rt::Runtime rt{cfg};
  auto strategy = make_strategy(GetParam());
  auto const result = strategy->balance(rt, input, fast_params());

  std::map<TaskId, RankId> home;
  double total_in = 0.0;
  for (std::size_t r = 0; r < input.tasks.size(); ++r) {
    for (auto const& t : input.tasks[r]) {
      home[t.id] = static_cast<RankId>(r);
      total_in += t.load;
    }
  }
  std::set<TaskId> seen;
  for (auto const& m : result.migrations) {
    ASSERT_TRUE(home.count(m.task));
    EXPECT_EQ(m.from, home[m.task]);
    EXPECT_NE(m.from, m.to);
    EXPECT_GE(m.to, 0);
    EXPECT_LT(m.to, 24);
    EXPECT_TRUE(seen.insert(m.task).second);
  }
  double total_out = 0.0;
  for (double const l : result.new_rank_loads) {
    total_out += l;
  }
  EXPECT_NEAR(total_in, total_out, 1e-6);
  EXPECT_NEAR(result.achieved_imbalance, imbalance(result.new_rank_loads),
              1e-9);
}

TEST_P(EveryStrategy, EmptySystemIsHandled) {
  rt::RuntimeConfig cfg;
  cfg.num_ranks = 8;
  rt::Runtime rt{cfg};
  StrategyInput input;
  input.tasks.resize(8);
  auto strategy = make_strategy(GetParam());
  auto const result = strategy->balance(rt, input, fast_params());
  EXPECT_TRUE(result.migrations.empty());
}

TEST_P(EveryStrategy, WorksThroughLbManagerWithObjectStore) {
  class Chunk final : public rt::Migratable {
  public:
    [[nodiscard]] std::size_t wire_bytes() const override { return 32; }
  };

  auto const input = clustered_input();
  rt::RuntimeConfig cfg;
  cfg.num_ranks = 24;
  rt::Runtime rt{cfg};
  rt::ObjectStore store{24};
  for (std::size_t r = 0; r < input.tasks.size(); ++r) {
    for (auto const& t : input.tasks[r]) {
      store.create(static_cast<RankId>(r), t.id,
                   std::make_unique<Chunk>());
    }
  }
  LbManager manager{rt, GetParam(), fast_params()};
  auto const report = manager.invoke(input, store);
  EXPECT_EQ(store.total_tasks(), 90u);
  // Object placement matches the strategy's decisions.
  EXPECT_EQ(report.migration_payload_bytes,
            report.cost.migration_count * 32u);
}

INSTANTIATE_TEST_SUITE_P(AllRegistered, EveryStrategy,
                         ::testing::Values("tempered", "tempered_fast",
                                           "grapevine", "greedy", "hier",
                                           "diffusion", "stealing", "rotate",
                                           "random"));

TEST(StrategySanity, UniformLoadNeedsNoBalancing) {
  // A perfectly balanced system: serious balancers must leave it alone
  // (or at least not worsen it).
  StrategyInput input;
  input.tasks.resize(16);
  TaskId id = 0;
  for (auto& tasks : input.tasks) {
    tasks.push_back({id++, 1.0});
  }
  for (auto const name : {"tempered", "tempered_fast", "grapevine", "greedy",
                          "hier", "diffusion", "stealing"}) {
    rt::RuntimeConfig cfg;
    cfg.num_ranks = 16;
    rt::Runtime rt{cfg};
    auto strategy = make_strategy(name);
    auto const result =
        strategy->balance(rt, input, LbParams::tempered());
    EXPECT_NEAR(result.achieved_imbalance, 0.0, 1e-9) << name;
  }
}

} // namespace
} // namespace tlb::lb
