#include "lb/strategy/lb_manager.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "support/stats.hpp"

namespace tlb::lb {
namespace {

class Chunk final : public rt::Migratable {
public:
  explicit Chunk(std::size_t bytes) : bytes_{bytes} {}
  [[nodiscard]] std::size_t wire_bytes() const override { return bytes_; }

private:
  std::size_t bytes_;
};

rt::RuntimeConfig config(RankId ranks) {
  rt::RuntimeConfig cfg;
  cfg.num_ranks = ranks;
  return cfg;
}

TEST(LbManager, GatherInputFromInstrumentation) {
  rt::PhaseInstrumentation inst{3};
  inst.record(0, 1, 2.0);
  inst.record(2, 5, 4.0);
  inst.start_phase();
  auto const input = LbManager::gather_input(inst, 3);
  ASSERT_EQ(input.tasks.size(), 3u);
  ASSERT_EQ(input.tasks[0].size(), 1u);
  EXPECT_EQ(input.tasks[0][0].id, 1);
  EXPECT_DOUBLE_EQ(input.tasks[0][0].load, 2.0);
  EXPECT_TRUE(input.tasks[1].empty());
  ASSERT_EQ(input.tasks[2].size(), 1u);
}

TEST(LbManager, InvokeMovesObjectsAndRecordsReport) {
  rt::Runtime rt{config(8)};
  rt::ObjectStore store{8};
  StrategyInput input;
  input.tasks.resize(8);
  Rng rng{3};
  for (TaskId i = 0; i < 40; ++i) {
    double const load = rng.uniform(0.5, 1.5);
    input.tasks[0].push_back({i, load});
    store.create(0, i, std::make_unique<Chunk>(64));
  }

  auto params = LbParams::tempered();
  params.num_trials = 1;
  params.num_iterations = 3;
  params.rounds = 5;
  LbManager manager{rt, "tempered", params};
  auto const report = manager.invoke(input, store);

  EXPECT_GT(report.imbalance_before, 5.0);
  EXPECT_LT(report.imbalance_after, report.imbalance_before);
  EXPECT_GT(report.cost.migration_count, 0u);
  EXPECT_EQ(report.migration_payload_bytes,
            report.cost.migration_count * 64u);
  // Objects actually moved off rank 0.
  EXPECT_LT(store.tasks_on(0).size(), 40u);
  EXPECT_EQ(store.total_tasks(), 40u);
  EXPECT_EQ(manager.history().size(), 1u);
}

TEST(LbManager, StrategyNameExposed) {
  rt::Runtime rt{config(2)};
  LbManager manager{rt, "greedy", LbParams::tempered()};
  EXPECT_EQ(manager.strategy_name(), "greedy");
}

TEST(LbManager, DecideDoesNotTouchStore) {
  rt::Runtime rt{config(4)};
  StrategyInput input;
  input.tasks.resize(4);
  for (TaskId i = 0; i < 8; ++i) {
    input.tasks[0].push_back({i, 1.0});
  }
  LbManager manager{rt, "greedy", LbParams::tempered()};
  auto const result = manager.decide(input);
  EXPECT_FALSE(result.migrations.empty());
  EXPECT_TRUE(manager.history().empty());
}

TEST(LbManager, UnknownStrategyThrowsAtConstruction) {
  rt::Runtime rt{config(2)};
  EXPECT_THROW(LbManager(rt, "bogus", LbParams::tempered()),
               std::invalid_argument);
}

TEST(LbManager, RepeatedInvocationsTrackHistory) {
  rt::Runtime rt{config(4)};
  rt::ObjectStore store{4};
  StrategyInput input;
  input.tasks.resize(4);
  for (TaskId i = 0; i < 12; ++i) {
    input.tasks[0].push_back({i, 1.0});
    store.create(0, i, std::make_unique<Chunk>(8));
  }
  LbManager manager{rt, "greedy", LbParams::tempered()};
  (void)manager.invoke(input, store);

  // Second invocation from the new placement: build fresh input.
  StrategyInput second;
  second.tasks.resize(4);
  for (RankId r = 0; r < 4; ++r) {
    for (TaskId const id : store.tasks_on(r)) {
      second.tasks[static_cast<std::size_t>(r)].push_back({id, 1.0});
    }
  }
  auto const report = manager.invoke(second, store);
  EXPECT_EQ(manager.history().size(), 2u);
  // Already balanced: second invocation should migrate nothing.
  EXPECT_EQ(report.cost.migration_count, 0u);
  EXPECT_NEAR(report.imbalance_after, 0.0, 1e-12);
}

TEST(LbCostModel, SumsFixedAndTrafficTerms) {
  LbCostModel const model{2.0, 0.5, 0.25, 10.0};
  EXPECT_DOUBLE_EQ(model.cost(0, 0, 0), 10.0);
  EXPECT_DOUBLE_EQ(model.cost(3, 4, 8), 10.0 + 6.0 + 2.0 + 2.0);
}

TEST(LbManager, InvokeIfBeneficialSkipIsSideEffectFree) {
  rt::Runtime rt{config(4)};
  rt::ObjectStore store{4};
  StrategyInput input;
  input.tasks.resize(4);
  for (TaskId i = 0; i < 8; ++i) {
    input.tasks[0].push_back({i, 1.0});
    store.create(0, i, std::make_unique<Chunk>(8));
  }
  LbManager manager{rt, "greedy", LbParams::tempered()};
  auto policy = policy::make_policy("never");
  auto const outcome = manager.invoke_if_beneficial(input, store, *policy);

  EXPECT_FALSE(outcome.invoked);
  EXPECT_FALSE(outcome.decision.invoke);
  EXPECT_DOUBLE_EQ(outcome.lb_cost_seconds, 0.0);
  // Nothing moved, nothing balanced, nothing in the history.
  EXPECT_EQ(store.tasks_on(0).size(), 8u);
  EXPECT_TRUE(manager.history().empty());
  EXPECT_DOUBLE_EQ(outcome.report.imbalance_after,
                   outcome.report.imbalance_before);
  EXPECT_EQ(outcome.report.cost.migration_count, 0u);
}

TEST(LbManager, InvokeIfBeneficialInvokeBalancesAndPricesTheRun) {
  rt::Runtime rt{config(4)};
  rt::ObjectStore store{4};
  StrategyInput input;
  input.tasks.resize(4);
  for (TaskId i = 0; i < 8; ++i) {
    input.tasks[0].push_back({i, 1.0});
    store.create(0, i, std::make_unique<Chunk>(16));
  }
  LbManager manager{rt, "greedy", LbParams::tempered()};
  auto policy = policy::make_policy("always");
  LbCostModel const cost_model{0.0, 0.0, 1.0e-3, 0.5};
  auto const outcome =
      manager.invoke_if_beneficial(input, store, *policy, cost_model);

  EXPECT_TRUE(outcome.invoked);
  EXPECT_EQ(manager.history().size(), 1u);
  EXPECT_LT(store.tasks_on(0).size(), 8u);
  EXPECT_LT(outcome.report.imbalance_after, outcome.report.imbalance_before);
  // Priced through the model: fixed term plus the measured payload bytes.
  EXPECT_DOUBLE_EQ(
      outcome.lb_cost_seconds,
      0.5 + 1.0e-3 * static_cast<double>(
                         outcome.report.migration_payload_bytes));
  // The projected post-LB loads ride along for the policy's rebase.
  ASSERT_EQ(outcome.report.new_rank_loads.size(), 4u);
}

TEST(LbManager, PhaseNumberingAdvancesAcrossSkips) {
  rt::Runtime rt{config(2)};
  rt::ObjectStore store{2};
  StrategyInput input;
  input.tasks.resize(2);
  for (TaskId i = 0; i < 4; ++i) {
    input.tasks[0].push_back({i, 1.0});
    store.create(0, i, std::make_unique<Chunk>(8));
  }
  LbManager manager{rt, "greedy", LbParams::tempered()};
  auto never = policy::make_policy("never");
  auto always = policy::make_policy("always");

  EXPECT_EQ(manager.invoke_if_beneficial(input, store, *never).report.phase,
            0u);
  EXPECT_EQ(manager.invoke_if_beneficial(input, store, *never).report.phase,
            1u);
  auto const outcome = manager.invoke_if_beneficial(input, store, *always);
  EXPECT_EQ(outcome.report.phase, 2u);
  // Skipped phases advance the counter but not the history.
  EXPECT_EQ(manager.history().size(), 1u);
  EXPECT_EQ(manager.history().back().phase, 2u);
}

} // namespace
} // namespace tlb::lb
