// Fixture: no-wall-clock catches chrono and POSIX time sources, including
// call-shaped tokens split from their paren by whitespace.
#include <chrono>
#include <ctime>

long stamps() {
  auto a = std::chrono::steady_clock::now();            // line 7
  auto b = std::chrono::system_clock::now ();           // line 8: ws before (
  auto c = std::chrono::high_resolution_clock::now();   // line 9
  return time(nullptr) + a.time_since_epoch().count() + // line 10: time(
         b.time_since_epoch().count() + c.time_since_epoch().count();
}

int lifetime(int time_budget) { return time_budget; } // clean: not a call
