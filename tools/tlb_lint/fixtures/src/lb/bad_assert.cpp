// Fixture: invariant-not-assert fires on assert() in src/lb/, while
// static_assert and the TLB_* contract macros stay clean.
#include <cassert>

void check(int x) {
  assert(x > 0); // line 6: invariant-not-assert
  static_assert(sizeof(int) >= 4);
  TLB_ASSERT(x > 0, "contract macro is the sanctioned spelling");
  TLB_INVARIANT(x > 0);
}
