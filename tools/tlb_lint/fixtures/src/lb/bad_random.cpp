// Fixture: no-unseeded-rand catches libc and <random> entropy sources;
// identifiers that merely contain "rand" do not fire.
#include <cstdlib>
#include <random>

int entropy() {
  std::random_device dev;   // line 7: no-unseeded-rand
  srand(dev());             // line 8: no-unseeded-rand
  return rand();            // line 9: no-unseeded-rand
}

int operand(int rand_width) { return rand_width; } // clean: not the token
int strand() { return 0; }                         // clean: prefix differs
