// Fixture: no-envelope-outside-runtime catches both construction shapes
// (brace and paren), bare and rt::-qualified, but not lookalike
// identifiers or suppressed lines. The declaration keeps its brace on the
// next line so only the construction sites are in scope.
namespace rt {
struct Envelope
{};
} // namespace rt

rt::Envelope make_bad() {
  auto a = rt::Envelope{};                       // line 11: qualified brace
  rt::Envelope b = rt::Envelope ();              // line 12: ws before paren
  using rt::Envelope;
  auto c = Envelope{};                           // line 14: bare brace
  auto ok = rt::Envelope{}; // tlb-lint: allow(no-envelope-outside-runtime)
  (void)b;
  (void)c;
  (void)ok;
  return a;
}

struct EnvelopeView
{};                                   // clean: identifier boundary
int envelope_count(int n) { return n; } // clean: not a construction