// Fixture: this path suffix is on no-wall-clock's allowlist (trace
// timestamps are presentation metadata), so the clock read below is clean.
#include <chrono>

long trace_stamp() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
