// Fixture: no-std-function fires in src/runtime/, suppression exempts a
// single line, and a comment mention never fires. Expected violations are
// pinned in tests/tools/tlb_lint_test.cpp — update both together.
#include <functional>

// std::function in a comment is fine.
std::function<void()> bad;                                  // line 7: fires
std::function<int()> waived; // tlb-lint: allow(no-std-function)
char const* prose = "std::function in a string is fine";
