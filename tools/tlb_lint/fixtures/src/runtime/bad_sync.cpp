// Fixture: no-raw-mutex and no-volatile in the runtime subtree.
#include <mutex>

std::mutex guard;        // line 4: no-raw-mutex
volatile int spin = 0;   // line 5: no-volatile

void hold() {
  std::lock_guard lock{guard}; // line 8: no-raw-mutex
}
