// Fixture: a file that mentions every banned token only inside comments,
// strings, and raw strings — the scrubber must keep it violation-free.
//
// std::mutex, std::function, rand(), volatile, assert(), steady_clock::now()

char const* doc = "std::mutex rand() volatile assert( time(";
char const* raw = R"lint(std::function steady_clock::now() srand()lint";
char big = '\x22'; // escaped quote in a char literal must not derail state
int separators = 1'000'000; // digit separators are not char literals

/* block comment spanning lines:
   std::lock_guard lock{m};
   std::random_device entropy; */
int answer = 42;
