#pragma once

/// \file lint.hpp
/// tlb_lint: the project's in-tree static analyzer for rules clang-tidy
/// cannot express. It is deliberately token-level — a comment/string
/// scrubber plus boundary-aware token search — with no libclang
/// dependency, so it builds everywhere the library builds and always runs
/// (scripts/lint.sh invokes it unconditionally, unlike clang-tidy which
/// degrades to a skip when absent).
///
/// The rule catalogue is data (default_rules()), not code: each rule names
/// the banned tokens, the subtrees it applies to, a per-file allowlist for
/// sanctioned exceptions, and the diagnostic. Call-shaped tokens (trailing
/// '(') match an identifier followed by optional whitespace and a paren,
/// so `rand  (` is still caught while `strand(` and `rand_x(` are not.
///
/// Per-line suppression: a line whose raw text (comments included)
/// contains `tlb-lint: allow(<rule>[, <rule>...])` is exempt from the
/// named rules on that line only. Suppressions are grep-able, reviewed
/// like any other diff, and the fixture tests pin their behavior.

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace tlb::lint {

struct Violation {
  std::string file; ///< path as given (repo-relative, '/'-separated)
  std::size_t line = 0;
  std::string rule;
  std::string token; ///< the banned token that matched
  std::string message;
};

struct Rule {
  std::string id;
  std::vector<std::string> tokens;
  /// Repo-relative directory prefixes the rule applies to ('/'-separated,
  /// trailing slash included, e.g. "src/runtime/"). Empty = everywhere.
  std::vector<std::string> dirs;
  /// Path suffixes exempt from this rule (sanctioned exceptions).
  std::vector<std::string> allow_files;
  std::string message;
};

/// The project rule catalogue (see DESIGN.md "Static analysis").
[[nodiscard]] std::vector<Rule> const& default_rules();

/// Replace comment and string-literal bytes with spaces, preserving line
/// structure, so token search never fires inside prose. Handles //, block
/// comments, char/string literals with escapes, and raw strings.
[[nodiscard]] std::string scrub(std::string_view source);

/// Lint one buffer as if it lived at `path` (repo-relative).
[[nodiscard]] std::vector<Violation>
lint_source(std::string_view path, std::string_view source,
            std::vector<Rule> const& rules = default_rules());

/// Lint one on-disk file; `path` is resolved against `root` and reported
/// repo-relative.
[[nodiscard]] std::vector<Violation>
lint_file(std::filesystem::path const& root, std::string const& path,
          std::vector<Rule> const& rules = default_rules());

/// Recursively lint every C++ source under root/<subdir> for each subdir.
/// Files are visited in sorted order so output is deterministic.
[[nodiscard]] std::vector<Violation>
lint_tree(std::filesystem::path const& root,
          std::vector<std::string> const& subdirs,
          std::vector<Rule> const& rules = default_rules());

/// True for the extensions tlb_lint considers C++ sources.
[[nodiscard]] bool lintable_file(std::string_view path);

} // namespace tlb::lint
