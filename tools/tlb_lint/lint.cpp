#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace tlb::lint {

namespace {

[[nodiscard]] bool ident_char(char c) {
  return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
}

/// True when `path` starts with `prefix` (both repo-relative, '/').
[[nodiscard]] bool starts_with(std::string_view path,
                               std::string_view prefix) {
  return path.size() >= prefix.size() &&
         path.substr(0, prefix.size()) == prefix;
}

[[nodiscard]] bool ends_with(std::string_view path, std::string_view suffix) {
  return path.size() >= suffix.size() &&
         path.substr(path.size() - suffix.size()) == suffix;
}

[[nodiscard]] bool rule_applies(Rule const& rule, std::string_view path) {
  if (!rule.dirs.empty() &&
      std::none_of(rule.dirs.begin(), rule.dirs.end(),
                   [&](std::string const& d) { return starts_with(path, d); })) {
    return false;
  }
  return std::none_of(
      rule.allow_files.begin(), rule.allow_files.end(),
      [&](std::string const& f) { return ends_with(path, f); });
}

/// Tokens ending in '(' are call-shaped, tokens ending in '{' are
/// construction-shaped: the identifier part must be boundary-clean and
/// the closing punctuator may be separated by whitespace.
struct TokenShape {
  std::string_view ident; ///< the part requiring word boundaries
  char suffix = '\0';     ///< '(' or '{' that must follow (after opt. ws)
};

[[nodiscard]] TokenShape shape_of(std::string_view token) {
  if (!token.empty() && (token.back() == '(' || token.back() == '{')) {
    return {token.substr(0, token.size() - 1), token.back()};
  }
  return {token, '\0'};
}

/// Does `line` (already scrubbed of comments/strings) contain `token` as a
/// standalone identifier (or qualified-id) occurrence?
[[nodiscard]] bool line_matches(std::string_view line,
                                std::string_view token) {
  auto const [ident, suffix] = shape_of(token);
  std::size_t pos = 0;
  while ((pos = line.find(ident, pos)) != std::string_view::npos) {
    bool const pre_ok = pos == 0 || (!ident_char(line[pos - 1]) &&
                                     line[pos - 1] != ':' && // a::b::ident
                                     line[pos - 1] != '.' && // obj.ident
                                     line[pos - 1] != '>');  // ptr->ident
    // Qualified tokens ("std::mutex") pin their own prefix, so member /
    // namespace accesses of the *same spelling* still match; for a bare
    // identifier the '.'/'->'/':' rejection keeps e.g. buf.volatile_
    // lookalikes and foo::rand wrappers from false-firing.
    bool const qualified = ident.find("::") != std::string_view::npos;
    bool const pre = qualified
                         ? (pos == 0 || !ident_char(line[pos - 1]))
                         : pre_ok;
    std::size_t after = pos + ident.size();
    bool post = after >= line.size() || !ident_char(line[after]);
    if (post && suffix != '\0') {
      while (after < line.size() &&
             (line[after] == ' ' || line[after] == '\t')) {
        ++after;
      }
      post = after < line.size() && line[after] == suffix;
    }
    if (pre && post) {
      return true;
    }
    pos += ident.size();
  }
  return false;
}

/// Rules suppressed on this raw (unscrubbed) line via
/// `tlb-lint: allow(a, b)`. Returns ids as written.
[[nodiscard]] std::vector<std::string>
suppressed_rules(std::string_view raw_line) {
  std::vector<std::string> out;
  static constexpr std::string_view marker = "tlb-lint: allow(";
  std::size_t pos = 0;
  while ((pos = raw_line.find(marker, pos)) != std::string_view::npos) {
    std::size_t const open = pos + marker.size();
    std::size_t const close = raw_line.find(')', open);
    if (close == std::string_view::npos) {
      break;
    }
    std::string id;
    for (std::size_t i = open; i <= close; ++i) {
      char const c = i == close ? ',' : raw_line[i];
      if (c == ',') {
        if (!id.empty()) {
          out.push_back(id);
          id.clear();
        }
      } else if (c != ' ' && c != '\t') {
        id.push_back(c);
      }
    }
    pos = close + 1;
  }
  return out;
}

void split_lines(std::string_view text, std::vector<std::string_view>& out) {
  out.clear();
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    out.push_back(text.substr(start, end - start));
    start = end + 1;
  }
}

} // namespace

std::string scrub(std::string_view source) {
  std::string out{source};
  enum class State {
    code,
    line_comment,
    block_comment,
    string_lit,
    char_lit,
    raw_string,
  };
  State state = State::code;
  std::string raw_delim; // for raw strings: the )delim" terminator
  for (std::size_t i = 0; i < source.size(); ++i) {
    char const c = source[i];
    char const next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
    case State::code:
      if (c == '/' && next == '/') {
        state = State::line_comment;
        out[i] = ' ';
      } else if (c == '/' && next == '*') {
        state = State::block_comment;
        out[i] = ' ';
      } else if (c == 'R' && next == '"' &&
                 (i == 0 || !ident_char(source[i - 1]))) {
        // Raw string R"delim( ... )delim": find the delimiter.
        std::size_t const open = source.find('(', i + 2);
        if (open != std::string_view::npos) {
          raw_delim.clear();
          raw_delim.push_back(')');
          raw_delim.append(source.substr(i + 2, open - (i + 2)));
          raw_delim.push_back('"');
          state = State::raw_string;
          for (std::size_t j = i; j <= open && j < source.size(); ++j) {
            if (source[j] != '\n') {
              out[j] = ' ';
            }
          }
          i = open;
        }
      } else if (c == '"') {
        state = State::string_lit;
        out[i] = ' ';
      } else if (c == '\'' && (i == 0 || !ident_char(source[i - 1]))) {
        // Identifier guard keeps digit separators (1'000'000) in code.
        state = State::char_lit;
        out[i] = ' ';
      }
      break;
    case State::line_comment:
      if (c == '\n') {
        state = State::code;
      } else {
        out[i] = ' ';
      }
      break;
    case State::block_comment:
      if (c == '*' && next == '/') {
        out[i] = ' ';
        out[i + 1] = ' ';
        ++i;
        state = State::code;
      } else if (c != '\n') {
        out[i] = ' ';
      }
      break;
    case State::string_lit:
      if (c == '\\') {
        out[i] = ' ';
        if (next != '\0' && next != '\n') {
          out[i + 1] = ' ';
          ++i;
        }
      } else if (c == '"') {
        out[i] = ' ';
        state = State::code;
      } else if (c != '\n') {
        out[i] = ' ';
      }
      break;
    case State::char_lit:
      if (c == '\\') {
        out[i] = ' ';
        if (next != '\0' && next != '\n') {
          out[i + 1] = ' ';
          ++i;
        }
      } else if (c == '\'') {
        out[i] = ' ';
        state = State::code;
      } else if (c != '\n') {
        out[i] = ' ';
      }
      break;
    case State::raw_string:
      if (source.compare(i, raw_delim.size(), raw_delim) == 0) {
        for (std::size_t j = i; j < i + raw_delim.size(); ++j) {
          out[j] = ' ';
        }
        i += raw_delim.size() - 1;
        state = State::code;
      } else if (c != '\n') {
        out[i] = ' ';
      }
      break;
    }
  }
  return out;
}

std::vector<Rule> const& default_rules() {
  // The catalogue is ordered roughly by blast radius; DESIGN.md "Static
  // analysis" documents the rationale for each rule and its allowlist.
  static std::vector<Rule> const rules = {
      {
          "no-unseeded-rand",
          {"rand(", "srand(", "std::random_device"},
          {"src/"},
          {},
          "unseeded randomness breaks the root-seed contract: derive every "
          "stream from the run seed via support/rng.hpp (Rng::split / "
          "derive_seed)",
      },
      {
          "no-wall-clock",
          {"time(", "clock(", "gettimeofday(", "clock_gettime(",
           "steady_clock::now(", "system_clock::now(",
           "high_resolution_clock::now("},
          {"src/"},
          // Trace timestamps are presentation metadata, not protocol
          // state: replaying a run with different wall-clock readings
          // yields the identical schedule, so the tracer may keep them.
          {"src/obs/tracer.cpp"},
          "wall-clock reads break seeded determinism: use the poll-counter "
          "time base (Runtime::rank_polls) or a seed-derived value",
      },
      {
          "no-std-function",
          {"std::function"},
          {"src/runtime/"},
          {},
          "std::function heap-allocates captured state per message: runtime "
          "hot paths must use rt::InlineHandler (SBO, counted fallback)",
      },
      {
          "no-raw-mutex",
          {"std::mutex", "std::recursive_mutex", "std::shared_mutex",
           "std::timed_mutex", "std::condition_variable", "std::lock_guard",
           "std::unique_lock", "std::scoped_lock"},
          {"src/"},
          {},
          "std:: locking primitives are invisible to the thread-safety "
          "analysis: use tlb::SpinLock + tlb::SpinLockGuard "
          "(support/spinlock.hpp) so -Werror=thread-safety can check the "
          "critical section",
      },
      {
          "no-volatile",
          {"volatile"},
          {"src/"},
          {},
          "volatile is not a concurrency primitive: use std::atomic with an "
          "explicit memory order",
      },
      {
          "invariant-not-assert",
          {"assert("},
          {"src/lb/", "src/runtime/"},
          {},
          "use TLB_INVARIANT (support/check.hpp) or TLB_ASSERT "
          "(support/assert.hpp) instead of assert(): contract checks must "
          "not vanish in release experiment builds",
      },
      {
          "no-envelope-outside-runtime",
          // Both construction shapes, bare and qualified: the bare tokens
          // reject a ':' prefix themselves, so the qualified spellings
          // need their own entries.
          {"Envelope{", "Envelope(", "rt::Envelope{", "rt::Envelope("},
          {"src/lb/", "src/lbaf/", "src/obs/", "src/fault/", "src/pic/",
           "src/policy/", "src/support/", "src/workload/"},
          {},
          "constructing rt::Envelope outside src/runtime bypasses causal "
          "stamping and fault-exemption accounting: send through "
          "RankContext::send / Runtime::post so the runtime owns envelope "
          "creation",
      },
  };
  return rules;
}

std::vector<Violation> lint_source(std::string_view path,
                                   std::string_view source,
                                   std::vector<Rule> const& rules) {
  std::vector<Violation> out;
  std::vector<Rule const*> active;
  for (Rule const& rule : rules) {
    if (rule_applies(rule, path)) {
      active.push_back(&rule);
    }
  }
  if (active.empty()) {
    return out;
  }
  std::string const scrubbed = scrub(source);
  std::vector<std::string_view> raw_lines;
  std::vector<std::string_view> code_lines;
  split_lines(source, raw_lines);
  split_lines(scrubbed, code_lines);
  for (std::size_t i = 0; i < code_lines.size(); ++i) {
    for (Rule const* rule : active) {
      auto const hit =
          std::find_if(rule->tokens.begin(), rule->tokens.end(),
                       [&](std::string const& token) {
                         return line_matches(code_lines[i], token);
                       });
      if (hit == rule->tokens.end()) {
        continue;
      }
      auto const allowed = suppressed_rules(raw_lines[i]);
      if (std::find(allowed.begin(), allowed.end(), rule->id) !=
          allowed.end()) {
        continue;
      }
      out.push_back(Violation{std::string{path}, i + 1, rule->id, *hit,
                              rule->message});
    }
  }
  return out;
}

bool lintable_file(std::string_view path) {
  for (std::string_view ext :
       {".hpp", ".cpp", ".h", ".cc", ".hh", ".cxx", ".ipp"}) {
    if (ends_with(path, ext)) {
      return true;
    }
  }
  return false;
}

std::vector<Violation> lint_file(std::filesystem::path const& root,
                                 std::string const& path,
                                 std::vector<Rule> const& rules) {
  std::ifstream in{root / path, std::ios::binary};
  if (!in.good()) {
    return {Violation{path, 0, "io-error", "", "cannot read file"}};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return lint_source(path, buffer.str(), rules);
}

std::vector<Violation> lint_tree(std::filesystem::path const& root,
                                 std::vector<std::string> const& subdirs,
                                 std::vector<Rule> const& rules) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (std::string const& subdir : subdirs) {
    fs::path const base = root / subdir;
    if (!fs::exists(base)) {
      continue;
    }
    for (auto const& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) {
        continue;
      }
      std::string rel = fs::relative(entry.path(), root).generic_string();
      if (lintable_file(rel)) {
        files.push_back(std::move(rel));
      }
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<Violation> out;
  for (std::string const& file : files) {
    auto violations = lint_file(root, file, rules);
    out.insert(out.end(), std::make_move_iterator(violations.begin()),
               std::make_move_iterator(violations.end()));
  }
  return out;
}

} // namespace tlb::lint
