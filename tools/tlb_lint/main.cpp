/// \file main.cpp
/// CLI for tlb_lint. Exit status 0 = clean, 1 = violations, 2 = usage.
///
///   tlb_lint [--root DIR] [--list-rules] [paths...]
///
/// Paths are repo-relative files or directories (default: src). Output is
/// one `file:line: [rule] message` diagnostic per violation, sorted by the
/// deterministic tree walk, so CI logs diff cleanly between runs.

#include "lint.hpp"

#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  using namespace tlb::lint;

  fs::path root = fs::current_path();
  std::vector<std::string> paths;
  bool list_rules = false;

  for (int i = 1; i < argc; ++i) {
    std::string const arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "tlb_lint: --root needs an argument\n";
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: tlb_lint [--root DIR] [--list-rules] [paths...]\n"
                   "Lints repo-relative paths (default: src) against the\n"
                   "project rule catalogue; exits 1 on any violation.\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "tlb_lint: unknown option " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  if (list_rules) {
    for (Rule const& rule : default_rules()) {
      std::cout << rule.id << "\n";
      for (std::string const& token : rule.tokens) {
        std::cout << "  token: " << token << "\n";
      }
      for (std::string const& dir : rule.dirs) {
        std::cout << "  dir:   " << dir << "\n";
      }
      for (std::string const& file : rule.allow_files) {
        std::cout << "  allow: " << file << "\n";
      }
    }
    return 0;
  }

  if (paths.empty()) {
    paths.push_back("src");
  }

  std::vector<Violation> violations;
  for (std::string const& path : paths) {
    fs::path const abs = root / path;
    if (fs::is_directory(abs)) {
      auto batch = lint_tree(root, {path});
      violations.insert(violations.end(), batch.begin(), batch.end());
    } else if (fs::is_regular_file(abs)) {
      auto batch = lint_file(root, path);
      violations.insert(violations.end(), batch.begin(), batch.end());
    } else {
      std::cerr << "tlb_lint: no such file or directory: " << abs.string()
                << "\n";
      return 2;
    }
  }

  for (Violation const& v : violations) {
    std::cerr << v.file << ":" << v.line << ": [" << v.rule << "] "
              << v.message;
    if (!v.token.empty()) {
      std::cerr << " (matched `" << v.token << "`)";
    }
    std::cerr << "\n";
  }
  if (!violations.empty()) {
    std::cerr << "tlb_lint: " << violations.size() << " violation"
              << (violations.size() == 1 ? "" : "s") << "\n";
    return 1;
  }
  return 0;
}
