#include "report.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>
#include <stdexcept>

namespace tlb::report {

namespace {

using obs::JsonValue;

std::uint64_t get_u64(JsonValue const& v, std::string const& key) {
  return static_cast<std::uint64_t>(v.at(key).num());
}

std::int64_t get_i64(JsonValue const& v, std::string const& key) {
  return static_cast<std::int64_t>(v.at(key).num());
}

double get_num(JsonValue const& v, std::string const& key) {
  return v.at(key).num();
}

/// Fixed-precision double for table cells: byte-stable formatting.
std::string fmt(double v, int precision = 4) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

/// Right-align `s` in a cell of width `w` (left-align when w < 0).
std::string pad(std::string const& s, int w) {
  auto const width = static_cast<std::size_t>(w < 0 ? -w : w);
  if (s.size() >= width) {
    return s;
  }
  std::string spaces(width - s.size(), ' ');
  return w < 0 ? s + spaces : spaces + s;
}

std::string pad(std::uint64_t v, int w) { return pad(std::to_string(v), w); }

void rule(std::ostream& os, std::string const& title) {
  os << title << "\n" << std::string(title.size(), '-') << "\n";
}

void parse_causal_events(JsonValue const& events, ReportInput& in,
                         KindInterner& interner) {
  for (JsonValue const& e : events.array()) {
    obs::CausalEvent ev;
    ev.stamp.id = get_u64(e, "id");
    ev.stamp.parent = get_u64(e, "parent");
    ev.stamp.origin = static_cast<RankId>(get_i64(e, "origin"));
    ev.stamp.step = static_cast<std::uint32_t>(get_u64(e, "step"));
    ev.stamp.hop = static_cast<std::uint16_t>(get_u64(e, "hop"));
    ev.from = static_cast<RankId>(get_i64(e, "from"));
    ev.to = static_cast<RankId>(get_i64(e, "to"));
    ev.kind = interner.intern(e.at("kind").str());
    ev.bytes = get_u64(e, "bytes");
    ev.ts_us = get_i64(e, "ts_us");
    ev.dur_us = get_i64(e, "dur_us");
    in.causal_events.push_back(ev);
  }
}

void parse_timeline_samples(JsonValue const& timeline, ReportInput& in) {
  for (JsonValue const& s : timeline.array()) {
    obs::PhaseSample sample;
    sample.phase = get_u64(s, "phase");
    sample.strategy = s.at("strategy").str();
    sample.load_min = get_num(s, "load_min");
    sample.load_max = get_num(s, "load_max");
    sample.load_avg = get_num(s, "load_avg");
    sample.load_stddev = get_num(s, "load_stddev");
    sample.imbalance_before = get_num(s, "imbalance_before");
    sample.imbalance_after = get_num(s, "imbalance_after");
    sample.migrations = get_u64(s, "migrations");
    sample.migration_bytes = get_u64(s, "migration_bytes");
    sample.lb_messages = get_u64(s, "lb_messages");
    sample.lb_bytes = get_u64(s, "lb_bytes");
    sample.lb_wall_us = get_i64(s, "lb_wall_us");
    sample.aborted_rounds = get_u64(s, "aborted_rounds");
    sample.faults_dropped = get_u64(s, "faults_dropped");
    sample.faults_delayed = get_u64(s, "faults_delayed");
    sample.faults_duplicated = get_u64(s, "faults_duplicated");
    sample.faults_retried = get_u64(s, "faults_retried");
    // Decision/snapshot fields arrived with the adaptive-invocation layer;
    // older documents (pre-policy flight dumps) default to invoked.
    if (s.has("lb_invoked")) {
      sample.lb_invoked = s.at("lb_invoked").boolean();
      sample.policy = s.at("policy").str();
      sample.decision_reason = s.at("reason").str();
      sample.forecast_imbalance = get_num(s, "forecast_imbalance");
      sample.forecast_error = get_num(s, "forecast_error");
      sample.predicted_gain = get_num(s, "predicted_gain");
      sample.predicted_cost = get_num(s, "predicted_cost");
      sample.snapshot_ranks =
          static_cast<std::uint32_t>(get_u64(s, "snapshot_ranks"));
      sample.rest_load_sum = get_num(s, "rest_load_sum");
      for (JsonValue const& rl : s.at("top_loads").array()) {
        sample.top_loads.push_back(
            {static_cast<std::int32_t>(get_i64(rl, "rank")),
             get_num(rl, "load")});
      }
    }
    in.timeline.push_back(std::move(sample));
  }
}

void parse_metric_rows(JsonValue const& metrics, ReportInput& in) {
  for (JsonValue const& m : metrics.array()) {
    MetricRow row;
    row.name = m.at("name").str();
    row.kind = m.at("kind").str();
    for (auto const& [k, v] : m.at("labels").object()) {
      row.labels += row.labels.empty() ? "{" : ",";
      row.labels += k + "=\"" + v.str() + "\"";
    }
    if (!row.labels.empty()) {
      row.labels += "}";
    }
    if (row.kind == "histogram") {
      row.value = static_cast<std::int64_t>(get_u64(m, "count"));
      row.sum = get_num(m, "sum");
    } else {
      row.value = get_i64(m, "value");
    }
    in.metrics.push_back(std::move(row));
  }
}

/// Per-rank delivery totals for the straggler table.
struct RankTotals {
  RankId rank = invalid_rank;
  std::uint64_t deliveries = 0;
  std::uint64_t bytes = 0;
  std::int64_t handler_us = 0;
};

void render_critical_path(std::ostream& os, ReportInput const& in,
                          ReportOptions const& opts,
                          obs::CriticalPath const& path) {
  rule(os, "Critical path");
  os << "  deliveries recorded: " << in.causal_events.size()
     << "  dropped: " << in.causal_dropped << "\n";
  if (path.chain.empty()) {
    os << "  (no stamped causal events)\n\n";
    return;
  }
  auto const& root = path.chain.front();
  auto const& tail = path.chain.back();
  os << "  chain: " << path.chain.size() << " deliveries, "
     << (tail.stamp.hop + 1) << " hops deep\n";
  os << "  root:     step " << root.stamp.step << ", origin rank "
     << root.stamp.origin << ", kind " << root.kind << "\n";
  os << "  terminal: rank " << tail.to << ", kind " << tail.kind << "\n";
  if (!opts.stable) {
    os << "  handler time on path: " << path.handler_us << " us\n";
  }

  // The chain itself, elided in the middle when long.
  std::size_t const head_n = std::min<std::size_t>(path.chain.size(), 8);
  std::size_t const tail_n =
      path.chain.size() > 12 ? 4 : path.chain.size() - head_n;
  auto print_link = [&](obs::CausalEvent const& e) {
    os << "    hop " << pad(e.stamp.hop, 3) << "  rank " << pad(
        static_cast<std::uint64_t>(e.from < 0 ? 0 : e.from), 3);
    os << (e.from < 0 ? " (driver)" : "         ") << " -> rank "
       << pad(static_cast<std::uint64_t>(e.to), 3) << "  "
       << pad(std::string{e.kind}, -10) << "  " << pad(e.bytes, 6)
       << " B";
    if (!opts.stable) {
      os << "  " << pad(static_cast<std::uint64_t>(
                            e.dur_us < 0 ? 0 : e.dur_us), 6)
         << " us";
    }
    os << "\n";
  };
  for (std::size_t i = 0; i < head_n; ++i) {
    print_link(path.chain[i]);
  }
  if (head_n + tail_n < path.chain.size()) {
    os << "    ... " << (path.chain.size() - head_n - tail_n)
       << " deliveries elided ...\n";
  }
  for (std::size_t i = path.chain.size() - tail_n; i < path.chain.size();
       ++i) {
    print_link(path.chain[i]);
  }

  // Attribution. Measured-time order is non-deterministic, so stable mode
  // re-ranks by (hops desc, key asc) and drops the us column.
  auto attribution = [&](char const* title,
                         std::vector<obs::PathAttribution> rows) {
    if (rows.empty()) {
      return;
    }
    if (opts.stable) {
      std::sort(rows.begin(), rows.end(),
                [](obs::PathAttribution const& a,
                   obs::PathAttribution const& b) {
                  if (a.hops != b.hops) {
                    return a.hops > b.hops;
                  }
                  return a.key < b.key;
                });
    }
    os << "  " << title << ":\n";
    for (auto const& a : rows) {
      os << "    " << pad(a.key, -12) << " " << pad(a.hops, 4) << " hops";
      if (!opts.stable) {
        os << "  " << pad(static_cast<std::uint64_t>(a.us < 0 ? 0 : a.us), 8)
           << " us";
      }
      os << "\n";
    }
  };
  attribution("time on path by rank", path.by_rank);
  attribution("time on path by kind", path.by_kind);
  os << "\n";
}

void render_stragglers(std::ostream& os, ReportInput const& in,
                       ReportOptions const& opts) {
  std::map<RankId, RankTotals> totals;
  for (obs::CausalEvent const& e : in.causal_events) {
    RankTotals& t = totals[e.to];
    t.rank = e.to;
    ++t.deliveries;
    t.bytes += e.bytes;
    t.handler_us += e.dur_us;
  }
  if (totals.empty()) {
    return;
  }
  std::vector<RankTotals> rows;
  rows.reserve(totals.size());
  for (auto const& [rank, t] : totals) {
    rows.push_back(t);
  }
  std::sort(rows.begin(), rows.end(),
            [&](RankTotals const& a, RankTotals const& b) {
              if (opts.stable) {
                // Deterministic ranking: busiest by delivery count.
                if (a.deliveries != b.deliveries) {
                  return a.deliveries > b.deliveries;
                }
                if (a.bytes != b.bytes) {
                  return a.bytes > b.bytes;
                }
                return a.rank < b.rank;
              }
              if (a.handler_us != b.handler_us) {
                return a.handler_us > b.handler_us;
              }
              return a.rank < b.rank;
            });
  auto const k = std::min(opts.top_k, rows.size());
  rule(os, "Top stragglers (" + std::to_string(k) + " of " +
               std::to_string(rows.size()) + " ranks)");
  os << "    rank  deliveries     bytes";
  if (!opts.stable) {
    os << "  handler_us";
  }
  os << "\n";
  for (std::size_t i = 0; i < k; ++i) {
    RankTotals const& t = rows[i];
    os << "    " << pad(static_cast<std::uint64_t>(t.rank < 0 ? 0 : t.rank),
                        4)
       << "  " << pad(t.deliveries, 10) << "  " << pad(t.bytes, 8);
    if (!opts.stable) {
      os << "  " << pad(static_cast<std::uint64_t>(
                            t.handler_us < 0 ? 0 : t.handler_us), 10);
    }
    os << "\n";
  }
  os << "\n";
}

void render_timeline(std::ostream& os, ReportInput const& in,
                     ReportOptions const& opts) {
  rule(os, "Imbalance evolution (" + std::to_string(in.timeline.size()) +
               " of " + std::to_string(in.timeline_total) +
               " phases retained)");
  os << "    phase  strategy         lb    lam_before  lam_after   load_avg  "
        "migr     bytes  lb_msgs  aborted  faults";
  if (!opts.stable) {
    os << "  lb_wall_us";
  }
  os << "\n";
  for (obs::PhaseSample const& s : in.timeline) {
    auto const faults = s.faults_dropped + s.faults_delayed +
                        s.faults_duplicated + s.faults_retried;
    os << "    " << pad(s.phase, 5) << "  " << pad(s.strategy, -15) << "  "
       << pad(s.lb_invoked ? "inv" : "skip", -4) << "  "
       << pad(fmt(s.imbalance_before), 10) << "  "
       << pad(fmt(s.imbalance_after), 9) << "  " << pad(fmt(s.load_avg, 1), 9)
       << "  " << pad(s.migrations, 4) << "  " << pad(s.migration_bytes, 8)
       << "  " << pad(s.lb_messages, 7) << "  " << pad(s.aborted_rounds, 7)
       << "  " << pad(faults, 6);
    if (!opts.stable) {
      os << "  " << pad(static_cast<std::uint64_t>(
                            s.lb_wall_us < 0 ? 0 : s.lb_wall_us), 10);
    }
    os << "\n";
  }
  os << "\n";
}

void render_lb_reports(std::ostream& os, ReportInput const& in) {
  rule(os, "LB invocations (" + std::to_string(in.lb_reports.size()) + ")");
  os << "    phase  strategy         lam_before  lam_after  accepted  "
        "rejected  nacks\n";
  for (LbRow const& r : in.lb_reports) {
    os << "    " << pad(r.phase, 5) << "  " << pad(r.strategy, -15) << "  "
       << pad(fmt(r.initial_imbalance), 10) << "  "
       << pad(fmt(r.final_imbalance), 9) << "  "
       << pad(r.transfers_accepted, 8) << "  " << pad(r.transfers_rejected, 8)
       << "  " << pad(r.transfer_nacks, 5) << "\n";
  }
  os << "\n";
}

void render_metrics(std::ostream& os, ReportInput const& in,
                    ReportOptions const& opts) {
  rule(os, "Metrics (" + std::to_string(in.metrics.size()) + " samples)");
  for (MetricRow const& m : in.metrics) {
    os << "    " << pad(m.name + m.labels, -40) << "  " << m.kind << " ";
    if (m.kind == "histogram") {
      os << "count=" << m.value;
      if (!opts.stable) {
        os << " sum=" << fmt(m.sum, 1);
      }
    } else {
      os << m.value;
    }
    os << "\n";
  }
  os << "\n";
}

} // namespace

void load_causal(JsonValue const& doc, ReportInput& in,
                 KindInterner& interner) {
  in.causal_dropped += get_u64(doc, "dropped");
  parse_causal_events(doc.at("events"), in, interner);
  in.have_causal = true;
}

void load_timeline(JsonValue const& doc, ReportInput& in) {
  in.timeline_total += get_u64(doc, "total_recorded");
  parse_timeline_samples(doc.at("timeline"), in);
  in.have_timeline = true;
}

void load_metrics(JsonValue const& doc, ReportInput& in) {
  parse_metric_rows(doc.at("metrics"), in);
  in.have_metrics = true;
}

void load_lb_reports(JsonValue const& doc, ReportInput& in) {
  for (JsonValue const& r : doc.at("lb_reports").array()) {
    LbRow row;
    row.phase = get_u64(r, "phase");
    row.strategy = r.at("strategy").str();
    row.initial_imbalance = get_num(r, "initial_imbalance");
    row.final_imbalance = get_num(r, "final_imbalance");
    JsonValue const& transfers = r.at("transfers");
    row.transfers_accepted = get_u64(transfers, "accepted");
    row.transfers_rejected = get_u64(transfers, "rejected");
    row.transfer_nacks = get_u64(transfers, "nacks");
    in.lb_reports.push_back(std::move(row));
  }
  in.have_lb_reports = true;
}

void load_flight_record(JsonValue const& doc, ReportInput& in,
                        KindInterner& interner) {
  in.flight_reason = doc.at("reason").str();
  in.flight_step = get_u64(doc, "step");
  in.have_flight = true;
  in.timeline_total += get_u64(doc, "timeline_total_recorded");
  parse_timeline_samples(doc.at("timeline"), in);
  in.have_timeline = true;
  parse_causal_events(doc.at("causal_tail"), in, interner);
  in.have_causal = true;
  parse_metric_rows(doc.at("metrics"), in);
  in.have_metrics = true;
}

std::size_t render_report(std::ostream& os, ReportInput const& in,
                          ReportOptions const& opts) {
  os << "tlb_report postmortem\n=====================\n\n";
  if (in.have_flight) {
    os << "Flight record: reason=" << in.flight_reason << " step="
       << in.flight_step << "\n\n";
  }
  std::size_t chain_len = 0;
  if (in.have_causal) {
    auto const path = obs::compute_critical_path(in.causal_events);
    chain_len = path.chain.size();
    render_critical_path(os, in, opts, path);
    render_stragglers(os, in, opts);
  }
  if (in.have_timeline) {
    render_timeline(os, in, opts);
  }
  if (in.have_lb_reports) {
    render_lb_reports(os, in);
  }
  if (in.have_metrics) {
    render_metrics(os, in, opts);
  }
  return chain_len;
}

} // namespace tlb::report
