/// \file main.cpp
/// tlb_report CLI: render a postmortem from telemetry JSON artifacts.
///
///   tlb_report --causal=run.causal.json --timeline=run.timeline.json
///              [--metrics=run.metrics.json] [--lb-report=run.lb.json]
///              [--flight=tlb_flight_record.json] [--top=K] [--stable]
///              [--require-chain=N] [--out=postmortem.txt]
///
/// Exit codes: 0 on success, 1 on bad usage / unreadable input /
/// malformed JSON, 2 when --require-chain=N is given and the
/// reconstructed critical path is shorter than N deliveries (the CI
/// smoke's "non-trivial path" gate).

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "report.hpp"

namespace {

bool match_flag(std::string const& arg, char const* name,
                std::string* value) {
  std::string const prefix = std::string{name} + "=";
  if (arg.rfind(prefix, 0) == 0) {
    *value = arg.substr(prefix.size());
    return true;
  }
  return false;
}

/// Read a whole file; reports errno on failure.
bool slurp(std::string const& path, std::string* out) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    std::fprintf(stderr, "tlb_report: cannot open '%s': %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: tlb_report [--causal=F] [--timeline=F] [--metrics=F]\n"
      "                  [--lb-report=F] [--flight=F] [--top=K] [--stable]\n"
      "                  [--require-chain=N] [--out=F]\n");
  return 1;
}

} // namespace

int main(int argc, char** argv) {
  std::string causal_path;
  std::string timeline_path;
  std::string metrics_path;
  std::string lb_report_path;
  std::string flight_path;
  std::string out_path;
  tlb::report::ReportOptions opts;
  std::size_t require_chain = 0;

  for (int i = 1; i < argc; ++i) {
    std::string const arg = argv[i];
    std::string value;
    if (match_flag(arg, "--causal", &causal_path) ||
        match_flag(arg, "--timeline", &timeline_path) ||
        match_flag(arg, "--metrics", &metrics_path) ||
        match_flag(arg, "--lb-report", &lb_report_path) ||
        match_flag(arg, "--flight", &flight_path) ||
        match_flag(arg, "--out", &out_path)) {
      continue;
    }
    if (match_flag(arg, "--top", &value)) {
      opts.top_k = static_cast<std::size_t>(std::stoul(value));
      continue;
    }
    if (match_flag(arg, "--require-chain", &value)) {
      require_chain = static_cast<std::size_t>(std::stoul(value));
      continue;
    }
    if (arg == "--stable") {
      opts.stable = true;
      continue;
    }
    std::fprintf(stderr, "tlb_report: unknown argument '%s'\n", arg.c_str());
    return usage();
  }
  if (causal_path.empty() && timeline_path.empty() && metrics_path.empty() &&
      lb_report_path.empty() && flight_path.empty()) {
    std::fprintf(stderr, "tlb_report: no input files\n");
    return usage();
  }

  tlb::report::ReportInput input;
  tlb::report::KindInterner interner;
  auto ingest = [&](std::string const& path, auto loader) {
    if (path.empty()) {
      return true;
    }
    std::string text;
    if (!slurp(path, &text)) {
      return false;
    }
    try {
      loader(tlb::obs::parse_json(text));
    } catch (std::exception const& e) {
      std::fprintf(stderr, "tlb_report: '%s': %s\n", path.c_str(), e.what());
      return false;
    }
    return true;
  };

  using tlb::obs::JsonValue;
  bool const ok =
      ingest(flight_path,
             [&](JsonValue const& doc) {
               tlb::report::load_flight_record(doc, input, interner);
             }) &&
      ingest(causal_path,
             [&](JsonValue const& doc) {
               tlb::report::load_causal(doc, input, interner);
             }) &&
      ingest(timeline_path,
             [&](JsonValue const& doc) {
               tlb::report::load_timeline(doc, input);
             }) &&
      ingest(metrics_path,
             [&](JsonValue const& doc) {
               tlb::report::load_metrics(doc, input);
             }) &&
      ingest(lb_report_path, [&](JsonValue const& doc) {
        tlb::report::load_lb_reports(doc, input);
      });
  if (!ok) {
    return 1;
  }

  std::size_t chain_len = 0;
  if (out_path.empty()) {
    chain_len = tlb::report::render_report(std::cout, input, opts);
  } else {
    std::ofstream out{out_path, std::ios::binary};
    if (!out) {
      std::fprintf(stderr, "tlb_report: cannot open '%s': %s\n",
                   out_path.c_str(), std::strerror(errno));
      return 1;
    }
    chain_len = tlb::report::render_report(out, input, opts);
  }

  if (require_chain > 0 && chain_len < require_chain) {
    std::fprintf(stderr,
                 "tlb_report: critical path has %zu deliveries, "
                 "--require-chain wanted >= %zu\n",
                 chain_len, require_chain);
    return 2;
  }
  return 0;
}
