#pragma once

/// \file report.hpp
/// tlb_report core: ingest the telemetry layer's JSON artifacts (causal
/// delivery log, phase timeline, metrics registry snapshot, LB
/// introspection reports, or a flight-recorder postmortem that bundles
/// them) and render a human-readable postmortem — the reconstructed
/// critical path, top-k straggler ranks, and the per-phase imbalance
/// evolution table.
///
/// The core is a library (linked against tlb_obs for the JSON parser and
/// the critical-path reducer) so tests can drive it on synthetic
/// documents; tools/tlb_report/main.cpp is the thin CLI.

#include <cstdint>
#include <iosfwd>
#include <set>
#include <string>
#include <vector>

#include "obs/causal.hpp"
#include "obs/json_in.hpp"
#include "obs/phase_timeline.hpp"

namespace tlb::report {

/// CausalEvent::kind is a `char const*` with static storage duration when
/// produced in-process; parsed-back events need the same lifetime, so the
/// interner owns one stable copy of each distinct kind string.
class KindInterner {
public:
  [[nodiscard]] char const* intern(std::string const& s) {
    return strings_.insert(s).first->c_str();
  }

private:
  // std::set: node-based, element addresses are stable across inserts.
  std::set<std::string> strings_;
};

/// One flattened metric sample from a registry JSON export.
struct MetricRow {
  std::string name;
  std::string labels; ///< rendered as {k="v",...}, empty when unlabeled
  std::string kind;   ///< "counter" | "gauge" | "histogram"
  std::int64_t value = 0;      ///< counter/gauge value, histogram count
  double sum = 0.0;            ///< histogram only
};

/// One LB invocation summary from an lb_report JSON export.
struct LbRow {
  std::uint64_t phase = 0;
  std::string strategy;
  double initial_imbalance = 0.0;
  double final_imbalance = 0.0;
  std::uint64_t transfers_accepted = 0;
  std::uint64_t transfers_rejected = 0;
  std::uint64_t transfer_nacks = 0;
};

/// Everything the renderer works from. Populate via the load_* functions
/// below (any subset; sections without data are skipped).
struct ReportInput {
  std::vector<obs::CausalEvent> causal_events;
  std::uint64_t causal_dropped = 0;
  bool have_causal = false;

  std::vector<obs::PhaseSample> timeline;
  std::uint64_t timeline_total = 0;
  bool have_timeline = false;

  std::vector<MetricRow> metrics;
  bool have_metrics = false;

  std::vector<LbRow> lb_reports;
  bool have_lb_reports = false;

  /// Set when the input came from a flight-recorder dump.
  std::string flight_reason;
  std::uint64_t flight_step = 0;
  bool have_flight = false;
};

struct ReportOptions {
  std::size_t top_k = 5;
  /// Golden-file mode: omit every wall-clock-derived column (ts/dur/us)
  /// and rank stragglers/attribution by deterministic keys (hop counts,
  /// delivery counts, bytes) instead of measured time, so the rendered
  /// report is byte-stable across runs of a seeded workload.
  bool stable = false;
};

/// Parse a causal log document ({"step","dropped","events":[...]}) into
/// `in`. Throws std::runtime_error on schema mismatch.
void load_causal(obs::JsonValue const& doc, ReportInput& in,
                 KindInterner& interner);

/// Parse a phase-timeline document ({"total_recorded","timeline":[...]}).
void load_timeline(obs::JsonValue const& doc, ReportInput& in);

/// Parse a metrics registry export ({"metrics":[...]}).
void load_metrics(obs::JsonValue const& doc, ReportInput& in);

/// Parse an LB introspection export ({"lb_reports":[...]}).
void load_lb_reports(obs::JsonValue const& doc, ReportInput& in);

/// Parse a flight-recorder postmortem ({"reason","step","timeline",
/// "causal_tail","metrics",...}) — fills the causal, timeline, and
/// metrics sections in one shot.
void load_flight_record(obs::JsonValue const& doc, ReportInput& in,
                        KindInterner& interner);

/// Render the postmortem. Returns the length of the reconstructed
/// critical-path chain (0 when no stamped causal events were available) —
/// the CLI's --require-chain gate checks it.
std::size_t render_report(std::ostream& os, ReportInput const& in,
                          ReportOptions const& opts);

} // namespace tlb::report
