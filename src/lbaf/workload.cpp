#include "lbaf/workload.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace tlb::lbaf {

LoadType Workload::total_load() const {
  LoadType sum = 0.0;
  for (auto const& t : tasks) {
    sum += t.load;
  }
  return sum;
}

LoadType draw_load(LoadDistribution dist, double scale, Rng& rng) {
  TLB_EXPECTS(scale > 0.0);
  switch (dist) {
  case LoadDistribution::constant:
    return scale;
  case LoadDistribution::uniform:
    return rng.uniform(0.0, 2.0 * scale);
  case LoadDistribution::gamma:
    return rng.gamma(2.0, scale / 2.0);
  case LoadDistribution::lognormal: {
    // mean of LogNormal(mu, sigma) = exp(mu + sigma^2/2); pick sigma=0.75
    // for a visible tail and solve for mu.
    constexpr double sigma = 0.75;
    double const mu = std::log(scale) - 0.5 * sigma * sigma;
    return rng.lognormal(mu, sigma);
  }
  }
  TLB_ASSERT(false);
  return 0.0;
}

namespace {

Workload make_base(RankId num_ranks, std::size_t num_tasks) {
  TLB_EXPECTS(num_ranks > 0);
  Workload w;
  w.num_ranks = num_ranks;
  w.tasks.reserve(num_tasks);
  w.initial_rank.reserve(num_tasks);
  return w;
}

} // namespace

Workload make_clustered(RankId num_ranks, RankId loaded_ranks,
                        std::size_t num_tasks, LoadDistribution dist,
                        double scale, std::uint64_t seed) {
  TLB_EXPECTS(loaded_ranks > 0 && loaded_ranks <= num_ranks);
  Workload w = make_base(num_ranks, num_tasks);
  Rng rng{seed};
  for (std::size_t i = 0; i < num_tasks; ++i) {
    w.tasks.push_back(
        {static_cast<TaskId>(i), draw_load(dist, scale, rng)});
    w.initial_rank.push_back(
        static_cast<RankId>(rng.uniform_below(
            static_cast<std::uint64_t>(loaded_ranks))));
  }
  return w;
}

Workload make_scattered(RankId num_ranks, std::size_t num_tasks,
                        LoadDistribution dist, double scale,
                        std::uint64_t seed) {
  Workload w = make_base(num_ranks, num_tasks);
  Rng rng{seed};
  for (std::size_t i = 0; i < num_tasks; ++i) {
    w.tasks.push_back(
        {static_cast<TaskId>(i), draw_load(dist, scale, rng)});
    w.initial_rank.push_back(
        static_cast<RankId>(rng.uniform_below(
            static_cast<std::uint64_t>(num_ranks))));
  }
  return w;
}

Workload make_bimodal(RankId num_ranks, RankId loaded_ranks,
                      std::size_t num_tasks, BimodalSpec const& spec,
                      std::uint64_t seed) {
  TLB_EXPECTS(loaded_ranks > 0 && loaded_ranks <= num_ranks);
  TLB_EXPECTS(spec.heavy_fraction >= 0.0 && spec.heavy_fraction <= 1.0);
  TLB_EXPECTS(spec.light_lo <= spec.light_hi);
  TLB_EXPECTS(spec.heavy_lo <= spec.heavy_hi);
  Workload w = make_base(num_ranks, num_tasks);
  Rng rng{seed};
  for (std::size_t i = 0; i < num_tasks; ++i) {
    bool const heavy = rng.uniform() < spec.heavy_fraction;
    double const load = heavy ? rng.uniform(spec.heavy_lo, spec.heavy_hi)
                              : rng.uniform(spec.light_lo, spec.light_hi);
    w.tasks.push_back({static_cast<TaskId>(i), load});
    w.initial_rank.push_back(
        static_cast<RankId>(rng.uniform_below(
            static_cast<std::uint64_t>(loaded_ranks))));
  }
  return w;
}

Workload make_gradient(RankId num_ranks, std::size_t num_tasks, double slope,
                       LoadDistribution dist, double scale,
                       std::uint64_t seed) {
  TLB_EXPECTS(slope >= 0.0);
  Workload w = make_base(num_ranks, num_tasks);
  Rng rng{seed};
  // Rank weights 1 + slope*r/(P-1); sample ranks proportionally.
  std::vector<double> cdf(static_cast<std::size_t>(num_ranks));
  double acc = 0.0;
  for (RankId r = 0; r < num_ranks; ++r) {
    double const frac =
        num_ranks > 1
            ? static_cast<double>(r) / static_cast<double>(num_ranks - 1)
            : 0.0;
    acc += 1.0 + slope * frac;
    cdf[static_cast<std::size_t>(r)] = acc;
  }
  for (std::size_t i = 0; i < num_tasks; ++i) {
    double const u = rng.uniform() * acc;
    auto const it = std::lower_bound(cdf.begin(), cdf.end(), u);
    auto const r = static_cast<RankId>(it - cdf.begin());
    w.tasks.push_back(
        {static_cast<TaskId>(i), draw_load(dist, scale, rng)});
    w.initial_rank.push_back(std::min<RankId>(r, num_ranks - 1));
  }
  return w;
}

} // namespace tlb::lbaf
