#pragma once

/// \file experiment.hpp
/// The iterative-refinement driver (Algorithm 3) over a sequential
/// emulation of the distributed protocol. Reproduces the §V-B and §V-D
/// iteration tables: per-iteration transfer/rejection counts and the
/// imbalance trajectory.
///
/// The transfer stage honors every CmfRefresh mode, including the
/// Fenwick-backed incremental CMF (LbParams::tempered_fast()); the
/// recompute mode stays the reference for the published tables and for
/// cross-validating the incremental path (see
/// tests/lbaf/incremental_regression_test.cpp).

#include <cstdint>
#include <optional>
#include <vector>

#include "lb/lb_types.hpp"
#include "lbaf/assignment.hpp"
#include "lbaf/gossip_sim.hpp"
#include "lbaf/workload.hpp"
#include "obs/lb_report.hpp"

namespace tlb::lbaf {

/// One row of the paper's iteration tables.
struct IterationRecord {
  int trial = 0;
  int iteration = 0;             ///< 1-based; the paper's index column
  std::size_t transfers = 0;     ///< accepted proposals this iteration
  std::size_t rejected = 0;      ///< rejected proposals this iteration
  double rejection_rate = 0.0;   ///< rejected / (transfers + rejected), %
  double imbalance = 0.0;        ///< I after applying this iteration
  std::size_t gossip_messages = 0;
  std::size_t gossip_bytes = 0; ///< wire bytes of this iteration's epoch
};

/// Result of a full Algorithm 3 run (trials x iterations).
struct ExperimentResult {
  double initial_imbalance = 0.0;
  std::vector<IterationRecord> records; ///< all trials, iteration-major
  /// Best (lowest-I) state observed at any iteration of any trial.
  double best_imbalance = 0.0;
  int best_trial = 0;
  int best_iteration = 0;
  /// Migrations that realize the best state relative to the initial
  /// assignment (Algorithm 3 line 13).
  std::vector<Migration> best_migrations;
};

/// Run Algorithm 3 on a workload. When `report` is non-null the run also
/// feeds it the per-round gossip statistics, the per-iteration
/// objective/transfer trajectory, and the final outcome (the sequential
/// analogue of the distributed strategies' introspection).
[[nodiscard]] ExperimentResult
run_experiment(lb::LbParams const& params, Workload const& workload,
               obs::LbReportBuilder* report = nullptr);

/// Convenience: the records for a single trial, in iteration order.
[[nodiscard]] std::vector<IterationRecord>
trial_records(ExperimentResult const& result, int trial);

} // namespace tlb::lbaf
