#pragma once

/// \file workload.hpp
/// Synthetic workload generators for the analysis framework. The paper's
/// §V-B study distributes 10^4 tasks across 16 of 4096 ranks — the
/// `clustered` generator reproduces that; the others provide broader
/// coverage for tests and the strategy-comparison example.

#include <cstdint>
#include <vector>

#include "lb/lb_types.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace tlb::lbaf {

/// A generated workload: for every task, its load and initial rank.
struct Workload {
  std::vector<lb::TaskEntry> tasks;   // task id i is tasks[i]
  std::vector<RankId> initial_rank;   // parallel to tasks
  RankId num_ranks = 0;

  [[nodiscard]] LoadType total_load() const;
};

/// Task-load distribution for the generators.
enum class LoadDistribution : std::uint8_t {
  constant,   ///< every task has load `scale`
  uniform,    ///< Uniform(0, 2*scale) — mean `scale`
  gamma,      ///< Gamma(shape=2, scale/2) — mean `scale`, right-skewed
  lognormal,  ///< Lognormal with mean ≈ `scale`, heavy right tail
};

/// Draw one task load from the given distribution with mean `scale`.
[[nodiscard]] LoadType draw_load(LoadDistribution dist, double scale,
                                 Rng& rng);

/// The §V-B configuration: `num_tasks` tasks placed uniformly at random on
/// the first `loaded_ranks` ranks; the remaining ranks start empty.
[[nodiscard]] Workload make_clustered(RankId num_ranks, RankId loaded_ranks,
                                      std::size_t num_tasks,
                                      LoadDistribution dist, double scale,
                                      std::uint64_t seed);

/// Tasks scattered uniformly at random over all ranks (mild imbalance).
[[nodiscard]] Workload make_scattered(RankId num_ranks, std::size_t num_tasks,
                                      LoadDistribution dist, double scale,
                                      std::uint64_t seed);

/// Parameters for the bimodal §V-B-style workload: a light population and
/// a heavy population whose loads straddle the expected average rank load.
/// Heavy tasks with load > l_ave are *individually immovable* under the
/// original criterion (no recipient can take them without crossing l_ave)
/// but movable under the relaxed criterion — the mechanism behind the
/// paper's 187-vs-0.6 stall contrast.
struct BimodalSpec {
  double heavy_fraction = 0.3;
  double light_lo = 0.2;
  double light_hi = 0.6;
  double heavy_lo = 3.2;
  double heavy_hi = 5.2;
};

/// The §V-B table workload: `num_tasks` bimodal tasks on the first
/// `loaded_ranks` ranks of `num_ranks` total.
[[nodiscard]] Workload make_bimodal(RankId num_ranks, RankId loaded_ranks,
                                    std::size_t num_tasks,
                                    BimodalSpec const& spec,
                                    std::uint64_t seed);

/// A smooth spatial gradient: rank r receives ~(1 + slope*r/P) times the
/// average task count. Models a structured (e.g. AMR-like) imbalance.
[[nodiscard]] Workload make_gradient(RankId num_ranks, std::size_t num_tasks,
                                     double slope, LoadDistribution dist,
                                     double scale, std::uint64_t seed);

} // namespace tlb::lbaf
