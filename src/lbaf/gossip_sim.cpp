#include "lbaf/gossip_sim.hpp"

#include <algorithm>
#include <deque>
#include <memory>

#include "runtime/serialize.hpp"
#include "support/assert.hpp"

namespace tlb::lbaf {

namespace {

/// One in-flight gossip message: the sender's knowledge snapshot plus the
/// round it will be processed at. The snapshot is shared across the f
/// messages of one forwarding event (they serialize the same bytes), which
/// bounds peak memory at large P — the pitfall the paper's footnote 2
/// flags for O(P) underloaded lists.
struct GossipMessage {
  RankId dest = invalid_rank;
  std::shared_ptr<lb::Knowledge const> payload;
  int round = 0;
  bool full = true; ///< full snapshot vs delta payload (GossipWire)
};

/// Modeled wire size of one message: what the distributed protocol packs
/// (varint round + one flag byte + the entries encoding).
std::size_t message_wire_bytes(GossipMessage const& msg) {
  return rt::varint_size(static_cast<std::uint64_t>(msg.round)) + 1 +
         msg.payload->wire_bytes();
}

/// Draw `self`'s gossip peers for the epoch: min(fanout, P-1) distinct
/// ranks != self, uniform without replacement. Every forwarding event of
/// the epoch reuses this set (a random f-out overlay), which is what
/// makes the delta wire exactly equivalent to full resend: each peer
/// receives the sender's *entire* forward sequence, so the contiguous
/// deltas union to precisely the full-resend payloads edge by edge. The
/// paper's footnote-2 random-graph-connectivity argument bounds the
/// coverage cost of fixing the overlay (a random f-out digraph is an
/// expander; its giant out-component misses O(e^-f) of rank pairs).
void draw_peers(std::vector<RankId>& peers, RankId num_ranks, RankId self,
                int fanout, Rng& rng) {
  peers.clear();
  auto const want = static_cast<std::size_t>(
      std::min<RankId>(static_cast<RankId>(fanout), num_ranks - 1));
  while (peers.size() < want) {
    auto const r = static_cast<RankId>(
        rng.uniform_below(static_cast<std::uint64_t>(num_ranks)));
    if (r != self && std::find(peers.begin(), peers.end(), r) == peers.end()) {
      peers.push_back(r);
    }
  }
}

} // namespace

std::vector<lb::Knowledge>
run_gossip(std::vector<LoadType> const& rank_loads, LoadType l_ave, int fanout,
           int rounds, Rng& rng, GossipStats* stats,
           std::size_t max_knowledge, lb::GossipWire wire) {
  auto const num_ranks = static_cast<RankId>(rank_loads.size());
  TLB_EXPECTS(num_ranks > 0);
  TLB_EXPECTS(fanout > 0);
  TLB_EXPECTS(rounds >= 1);

  std::vector<lb::Knowledge> knowledge(rank_loads.size());
  // Bitmask of rounds each rank has already forwarded at (k <= 64).
  std::vector<std::uint64_t> forwarded(rank_loads.size(), 0);
  // Delta-wire bookkeeping: the version high-water mark of each rank's
  // last forwarding event, and whether its next forward must be a full
  // snapshot (first forward of the epoch, or truncation recovery).
  std::vector<std::uint32_t> hwm(rank_loads.size(), 0);
  std::vector<char> need_full(rank_loads.size(), 1);
  GossipStats local_stats;
  local_stats.per_round.resize(static_cast<std::size_t>(rounds) + 1);

  if (num_ranks == 1) {
    if (stats != nullptr) {
      *stats = local_stats;
    }
    return knowledge;
  }

  std::deque<GossipMessage> queue;

  // The epoch's gossip overlay: every rank's peer set is fixed up front
  // (drawn before any message flows, so RNG consumption is identical
  // under both wire modes and the message graph is knowledge-independent).
  std::vector<std::vector<RankId>> overlay(rank_loads.size());
  for (RankId p = 0; p < num_ranks; ++p) {
    draw_peers(overlay[static_cast<std::size_t>(p)], num_ranks, p, fanout,
               rng);
  }

  auto send_fanout = [&](RankId from, int next_round) {
    auto const fi = static_cast<std::size_t>(from);
    bool const truncated = knowledge[fi].take_truncated();
    bool const full = wire == lb::GossipWire::full || need_full[fi] != 0 ||
                      truncated;
    auto const snapshot =
        full ? std::make_shared<lb::Knowledge const>(knowledge[fi])
             : std::make_shared<lb::Knowledge const>(
                   knowledge[fi].delta_copy(hwm[fi]));
    hwm[fi] = knowledge[fi].version_mark();
    need_full[fi] = 0;
    for (RankId const dest : overlay[fi]) {
      queue.push_back(GossipMessage{dest, snapshot, next_round, full});
    }
  };

  // Algorithm 1, INFORM: underloaded ranks seed the epidemic.
  for (RankId p = 0; p < num_ranks; ++p) {
    auto const pi = static_cast<std::size_t>(p);
    if (rank_loads[pi] < l_ave) {
      knowledge[pi].insert(p, rank_loads[pi]);
      forwarded[pi] |= 1ull;
      send_fanout(p, 1);
    }
  }

  // Algorithm 1, INFORMHANDLER: FIFO drain emulates async delivery.
  while (!queue.empty()) {
    GossipMessage msg = std::move(queue.front());
    queue.pop_front();
    auto const pi = static_cast<std::size_t>(msg.dest);

    ++local_stats.messages;
    local_stats.full_messages += msg.full ? 1 : 0;
    local_stats.bytes += message_wire_bytes(msg);
    local_stats.max_round_seen = std::max(
        local_stats.max_round_seen, static_cast<std::size_t>(msg.round));

    knowledge[pi].merge(*msg.payload);
    knowledge[pi].truncate_random(max_knowledge, rng);

    auto& round_stats = local_stats.per_round[static_cast<std::size_t>(
        std::min(msg.round, rounds))];
    std::size_t const k = knowledge[pi].size();
    round_stats.knowledge_min = round_stats.messages == 0
                                    ? k
                                    : std::min(round_stats.knowledge_min, k);
    round_stats.knowledge_max = std::max(round_stats.knowledge_max, k);
    round_stats.knowledge_sum += k;
    ++round_stats.messages;
    round_stats.full_messages += msg.full ? 1 : 0;
    round_stats.bytes += message_wire_bytes(msg);

    if (msg.round < rounds) {
      std::uint64_t const bit = 1ull << msg.round;
      if ((forwarded[pi] & bit) == 0) {
        forwarded[pi] |= bit;
        send_fanout(msg.dest, msg.round + 1);
      }
    }
  }

  if (stats != nullptr) {
    *stats = local_stats;
  }
  return knowledge;
}

} // namespace tlb::lbaf
