#include "lbaf/gossip_sim.hpp"

#include <algorithm>
#include <deque>
#include <memory>

#include "support/assert.hpp"

namespace tlb::lbaf {

namespace {

/// One in-flight gossip message: the sender's knowledge snapshot plus the
/// round it will be processed at. The snapshot is shared across the f
/// messages of one forwarding event (they serialize the same bytes), which
/// bounds peak memory at large P — the pitfall the paper's footnote 2
/// flags for O(P) underloaded lists.
struct GossipMessage {
  RankId dest = invalid_rank;
  std::shared_ptr<lb::Knowledge const> payload;
  int round = 0;
};

/// Choose a peer uniformly from all ranks excluding `self` and, when
/// possible, excluding ranks already in `exclude` (Algorithm 1 line 20:
/// R = P \ S^p). When the exclusion set covers everyone we fall back to
/// any rank != self so the message count stays deterministic.
RankId pick_peer(RankId num_ranks, RankId self, lb::Knowledge const& exclude,
                 Rng& rng) {
  TLB_EXPECTS(num_ranks > 1);
  // Rejection-sample a bounded number of times; the exclusion is an
  // optimization, not a correctness requirement.
  for (int attempt = 0; attempt < 16; ++attempt) {
    auto const r = static_cast<RankId>(
        rng.uniform_below(static_cast<std::uint64_t>(num_ranks)));
    if (r != self && !exclude.contains(r)) {
      return r;
    }
  }
  // Dense exclusion set: fall back to uniform over P \ {self}.
  auto const r = static_cast<RankId>(
      rng.uniform_below(static_cast<std::uint64_t>(num_ranks - 1)));
  return r >= self ? r + 1 : r;
}

} // namespace

std::vector<lb::Knowledge>
run_gossip(std::vector<LoadType> const& rank_loads, LoadType l_ave, int fanout,
           int rounds, Rng& rng, GossipStats* stats,
           std::size_t max_knowledge) {
  auto const num_ranks = static_cast<RankId>(rank_loads.size());
  TLB_EXPECTS(num_ranks > 0);
  TLB_EXPECTS(fanout > 0);
  TLB_EXPECTS(rounds >= 1);

  std::vector<lb::Knowledge> knowledge(rank_loads.size());
  // Bitmask of rounds each rank has already forwarded at (k <= 64).
  std::vector<std::uint64_t> forwarded(rank_loads.size(), 0);
  GossipStats local_stats;
  local_stats.per_round.resize(static_cast<std::size_t>(rounds) + 1);

  if (num_ranks == 1) {
    if (stats != nullptr) {
      *stats = local_stats;
    }
    return knowledge;
  }

  std::deque<GossipMessage> queue;

  auto send_fanout = [&](RankId from, int next_round) {
    auto const snapshot = std::make_shared<lb::Knowledge const>(
        knowledge[static_cast<std::size_t>(from)]);
    for (int i = 0; i < fanout; ++i) {
      RankId const dest =
          pick_peer(num_ranks, from, knowledge[static_cast<std::size_t>(from)],
                    rng);
      queue.push_back(GossipMessage{dest, snapshot, next_round});
    }
  };

  // Algorithm 1, INFORM: underloaded ranks seed the epidemic.
  for (RankId p = 0; p < num_ranks; ++p) {
    auto const pi = static_cast<std::size_t>(p);
    if (rank_loads[pi] < l_ave) {
      knowledge[pi].insert(p, rank_loads[pi]);
      forwarded[pi] |= 1ull;
      send_fanout(p, 1);
    }
  }

  // Algorithm 1, INFORMHANDLER: FIFO drain emulates async delivery.
  while (!queue.empty()) {
    GossipMessage msg = std::move(queue.front());
    queue.pop_front();
    auto const pi = static_cast<std::size_t>(msg.dest);

    ++local_stats.messages;
    local_stats.bytes += msg.payload->wire_bytes();
    local_stats.max_round_seen = std::max(
        local_stats.max_round_seen, static_cast<std::size_t>(msg.round));

    knowledge[pi].merge(*msg.payload);
    knowledge[pi].truncate_random(max_knowledge, rng);

    auto& round_stats = local_stats.per_round[static_cast<std::size_t>(
        std::min(msg.round, rounds))];
    std::size_t const k = knowledge[pi].size();
    round_stats.knowledge_min = round_stats.messages == 0
                                    ? k
                                    : std::min(round_stats.knowledge_min, k);
    round_stats.knowledge_max = std::max(round_stats.knowledge_max, k);
    round_stats.knowledge_sum += k;
    ++round_stats.messages;
    round_stats.bytes += msg.payload->wire_bytes();

    if (msg.round < rounds) {
      std::uint64_t const bit = 1ull << msg.round;
      if ((forwarded[pi] & bit) == 0) {
        forwarded[pi] |= bit;
        send_fanout(msg.dest, msg.round + 1);
      }
    }
  }

  if (stats != nullptr) {
    *stats = local_stats;
  }
  return knowledge;
}

} // namespace tlb::lbaf
