#pragma once

/// \file assignment.hpp
/// The task-to-rank mapping the analysis framework iterates on. Maintains
/// per-rank task lists and cached rank loads; validates conservation of
/// total load across migrations.

#include <span>
#include <vector>

#include "lb/lb_types.hpp"
#include "lbaf/workload.hpp"
#include "support/stats.hpp"
#include "support/types.hpp"

namespace tlb::lbaf {

/// A mutable assignment of tasks to ranks.
class Assignment {
public:
  explicit Assignment(Workload const& workload);

  [[nodiscard]] RankId num_ranks() const {
    return static_cast<RankId>(rank_loads_.size());
  }
  [[nodiscard]] std::size_t num_tasks() const { return task_rank_.size(); }

  [[nodiscard]] RankId rank_of(TaskId task) const;
  [[nodiscard]] LoadType load_of_task(TaskId task) const;
  [[nodiscard]] LoadType load_of_rank(RankId rank) const;
  [[nodiscard]] std::span<LoadType const> rank_loads() const {
    return rank_loads_;
  }

  /// Tasks currently mapped to `rank`, as TaskEntry {id, load}.
  [[nodiscard]] std::vector<lb::TaskEntry> tasks_of(RankId rank) const;

  /// Move one task; the migration's `from` must match the current mapping.
  void apply(Migration const& m);
  /// Apply a batch of migrations.
  void apply(std::span<Migration const> migrations);

  [[nodiscard]] LoadType average_load() const;
  [[nodiscard]] LoadType max_load() const;
  /// The paper's metric I = max/ave − 1 over rank loads (Eqn. 1).
  [[nodiscard]] double imbalance() const;
  [[nodiscard]] LoadSummary summary() const;

  /// Total load across all ranks; invariant under migration.
  [[nodiscard]] LoadType total_load() const { return total_load_; }

  /// Check internal consistency (rank loads match task sums); O(tasks).
  [[nodiscard]] bool validate() const;

private:
  std::vector<RankId> task_rank_;           // task id -> rank
  std::vector<LoadType> task_load_;         // task id -> load
  std::vector<LoadType> rank_loads_;        // rank -> cached load sum
  std::vector<std::vector<TaskId>> rank_tasks_; // rank -> task ids
  LoadType total_load_ = 0.0;
};

} // namespace tlb::lbaf
