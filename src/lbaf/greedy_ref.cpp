#include "lbaf/greedy_ref.hpp"

#include <algorithm>
#include <queue>

#include "lb/lb_types.hpp"
#include "support/assert.hpp"

namespace tlb::lbaf {

std::vector<Migration> greedy_rebalance(Assignment const& assignment) {
  auto const num_ranks = assignment.num_ranks();
  TLB_EXPECTS(num_ranks > 0);

  // Gather every task (global knowledge — this is the centralized scheme).
  std::vector<lb::TaskEntry> tasks;
  tasks.reserve(assignment.num_tasks());
  for (std::size_t i = 0; i < assignment.num_tasks(); ++i) {
    auto const id = static_cast<TaskId>(i);
    tasks.push_back({id, assignment.load_of_task(id)});
  }
  std::sort(tasks.begin(), tasks.end(),
            [](lb::TaskEntry const& a, lb::TaskEntry const& b) {
              if (a.load != b.load) {
                return a.load > b.load;
              }
              return a.id < b.id;
            });

  // Min-heap of (rank load, rank). Ties by rank id for determinism.
  using HeapItem = std::pair<LoadType, RankId>;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (RankId r = 0; r < num_ranks; ++r) {
    heap.emplace(0.0, r);
  }

  std::vector<Migration> migrations;
  for (lb::TaskEntry const& t : tasks) {
    auto [load, rank] = heap.top();
    heap.pop();
    heap.emplace(load + t.load, rank);
    RankId const current = assignment.rank_of(t.id);
    if (current != rank) {
      migrations.push_back(Migration{t.id, current, rank, t.load});
    }
  }
  return migrations;
}

double greedy_imbalance(Assignment assignment) {
  auto const migrations = greedy_rebalance(assignment);
  assignment.apply(migrations);
  return assignment.imbalance();
}

} // namespace tlb::lbaf
