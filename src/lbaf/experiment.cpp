#include "lbaf/experiment.hpp"

#include <algorithm>

#include "lb/transfer.hpp"
#include "obs/tracer.hpp"
#include "support/assert.hpp"

namespace tlb::lbaf {

namespace {

/// Compute the migrations that turn `initial` into `final` (one entry per
/// task whose rank changed).
std::vector<Migration> diff_assignments(Assignment const& initial,
                                        Assignment const& final_state) {
  TLB_EXPECTS(initial.num_tasks() == final_state.num_tasks());
  std::vector<Migration> out;
  for (std::size_t i = 0; i < initial.num_tasks(); ++i) {
    auto const id = static_cast<TaskId>(i);
    RankId const from = initial.rank_of(id);
    RankId const to = final_state.rank_of(id);
    if (from != to) {
      out.push_back(Migration{id, from, to, initial.load_of_task(id)});
    }
  }
  return out;
}

} // namespace

ExperimentResult run_experiment(lb::LbParams const& params,
                                Workload const& workload,
                                obs::LbReportBuilder* report) {
  TLB_EXPECTS(params.num_trials >= 1);
  TLB_EXPECTS(params.num_iterations >= 1);
  TLB_EXPECTS(params.rounds >= 1 && params.rounds <= 63);

  TLB_SPAN_ARG("lbaf", "experiment", "trials", params.num_trials);
  Assignment const initial{workload};
  ExperimentResult result;
  result.initial_imbalance = initial.imbalance();
  result.best_imbalance = result.initial_imbalance;
  if (report != nullptr) {
    report->set_strategy("lbaf");
    report->set_threshold(params.threshold);
    report->set_initial_imbalance(result.initial_imbalance);
  }

  // l_ave is invariant: no load enters or leaves the system.
  LoadType const l_ave = initial.average_load();
  auto const num_ranks = initial.num_ranks();

  Rng const root{params.seed};
  std::optional<Assignment> best_state;

  for (int trial = 0; trial < params.num_trials; ++trial) {
    // Algorithm 3 line 3: every trial restarts from the original mapping
    // with an independent random stream.
    Assignment working{workload};
    Rng trial_rng = root.split(static_cast<std::uint64_t>(trial));

    for (int iter = 1; iter <= params.num_iterations; ++iter) {
      Rng iter_rng =
          trial_rng.split(static_cast<std::uint64_t>(iter));

      // Algorithm 3 line 7: INFORM with current (speculative) loads.
      std::vector<LoadType> loads(working.rank_loads().begin(),
                                  working.rank_loads().end());
      GossipStats gossip_stats;
      Rng gossip_rng = iter_rng.split(0);
      auto knowledge =
          run_gossip(loads, l_ave, params.fanout, params.rounds, gossip_rng,
                     &gossip_stats,
                     static_cast<std::size_t>(
                         std::max(0, params.max_knowledge)),
                     params.gossip_wire);
      if (report != nullptr) {
        for (std::size_t r = 0; r < gossip_stats.per_round.size(); ++r) {
          GossipRoundStats const& rs = gossip_stats.per_round[r];
          report->on_gossip_round(static_cast<int>(r), rs.messages,
                                  rs.full_messages, rs.bytes,
                                  rs.knowledge_min, rs.knowledge_max,
                                  rs.knowledge_sum);
        }
      }

      // Algorithm 3 line 8: TRANSFER on each overloaded rank. Ranks run
      // independently (no visibility into each other's proposals within an
      // iteration), matching the distributed execution.
      IterationRecord record;
      record.trial = trial;
      record.iteration = iter;
      record.gossip_messages = gossip_stats.messages;
      record.gossip_bytes = gossip_stats.bytes;

      std::vector<Migration> iteration_migrations;
      for (RankId p = 0; p < num_ranks; ++p) {
        LoadType const l_p = working.load_of_rank(p);
        if (l_p <= params.threshold * l_ave) {
          continue;
        }
        auto tasks = working.tasks_of(p);
        Rng rank_rng =
            iter_rng.split(static_cast<std::uint64_t>(p) + 1);
        auto transfer =
            lb::run_transfer(params, p, tasks, l_p, l_ave,
                             knowledge[static_cast<std::size_t>(p)], rank_rng);
        record.transfers += transfer.accepted;
        record.rejected += transfer.rejected;
        if (report != nullptr) {
          report->on_transfer_pass(transfer.accepted, transfer.rejected,
                                   transfer.no_target, transfer.cmf_rebuilds);
        }
        iteration_migrations.insert(iteration_migrations.end(),
                                    transfer.migrations.begin(),
                                    transfer.migrations.end());
      }

      // Speculatively apply this iteration's proposals; real task movement
      // is deferred to the end (Algorithm 3 line 13).
      working.apply(iteration_migrations);

      auto const total = record.transfers + record.rejected;
      record.rejection_rate =
          total > 0 ? 100.0 * static_cast<double>(record.rejected) /
                          static_cast<double>(total)
                    : 0.0;
      record.imbalance = working.imbalance();
      result.records.push_back(record);
      if (report != nullptr) {
        report->on_trial_iteration(trial, iter, record.imbalance);
      }

      // Algorithm 3 lines 9-10: keep the best state seen anywhere.
      if (record.imbalance < result.best_imbalance) {
        result.best_imbalance = record.imbalance;
        result.best_trial = trial;
        result.best_iteration = iter;
        best_state = working;
      }
    }
  }

  if (best_state.has_value()) {
    result.best_migrations = diff_assignments(initial, *best_state);
  }
  if (report != nullptr) {
    // The sequential emulation moves no payload bytes; only the count.
    report->set_final(result.best_imbalance, result.best_migrations.size(),
                      0);
  }
  return result;
}

std::vector<IterationRecord> trial_records(ExperimentResult const& result,
                                           int trial) {
  std::vector<IterationRecord> out;
  for (auto const& r : result.records) {
    if (r.trial == trial) {
      out.push_back(r);
    }
  }
  std::sort(out.begin(), out.end(),
            [](IterationRecord const& a, IterationRecord const& b) {
              return a.iteration < b.iteration;
            });
  return out;
}

} // namespace tlb::lbaf
