#pragma once

/// \file gossip_sim.hpp
/// Sequential emulation of the inform/gossip stage (Algorithm 1). Messages
/// are processed from a FIFO queue, which reproduces the unsynchronized,
/// causally-ordered delivery of the asynchronous implementation without
/// threads.
///
/// Forwarding is gated per (rank, round): a rank forwards at most once for
/// each round index it observes. The paper's pseudocode re-forwards on
/// every received message, which is exponential in k; the production vt
/// implementation (and the LBAF tool) gate per round, bounding traffic at
/// O(P * f * k) messages. We follow the implementations.
///
/// Peer selection is per *epoch*, not per forwarding event: each rank
/// draws f distinct peers up front and every one of its forwards fans out
/// to that same set (a random f-out overlay). Fixing the overlay is what
/// makes the delta wire (GossipWire::delta) exactly equivalent to full
/// resend — each peer sees the sender's whole forward sequence, so the
/// contiguous deltas union to the full-resend payloads edge by edge — at
/// a coverage cost bounded by the paper's own footnote-2 random-graph
/// connectivity argument (see DESIGN.md "Gossip wire plane").

#include <cstdint>
#include <vector>

#include "lb/knowledge.hpp"
#include "lb/lb_types.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace tlb::lbaf {

/// Per-round-index traffic/propagation statistics within one epoch.
struct GossipRoundStats {
  std::size_t messages = 0;      ///< deliveries processed at this round
  std::size_t full_messages = 0; ///< of those, full-snapshot payloads
  std::size_t bytes = 0;         ///< wire bytes of those messages
  std::size_t knowledge_min = 0; ///< smallest post-merge knowledge size
  std::size_t knowledge_max = 0; ///< largest post-merge knowledge size
  std::size_t knowledge_sum = 0; ///< sum of post-merge knowledge sizes
};

/// Traffic statistics from one gossip epoch.
struct GossipStats {
  std::size_t messages = 0;       ///< total gossip messages delivered
  std::size_t full_messages = 0;  ///< full-snapshot payloads (rest deltas)
  std::size_t bytes = 0;          ///< total wire bytes (headers included)
  std::size_t max_round_seen = 0; ///< deepest round that fired
  /// Indexed by round (entry 0 unused: deliveries start at round 1).
  /// Sized rounds + 1; rounds that never fired stay all-zero.
  std::vector<GossipRoundStats> per_round;
};

/// Run one inform epoch.
/// \param rank_loads  Current load of every rank (index == rank id).
/// \param l_ave       Global average load (constant for the epoch).
/// \param fanout      f, messages sent per forwarding event.
/// \param rounds      k, maximum round index.
/// \param rng         Peer-selection stream (deterministic).
/// \param[out] stats  Optional traffic statistics.
/// \param max_knowledge  Cap on per-rank knowledge entries (lowest-load
///                    entries kept); 0 = unlimited. Bounds message sizes
///                    at O(cap) instead of O(P) (paper footnote 2).
/// \param wire        Payload encoding per forwarding event: full resend
///                    or versioned deltas with full-snapshot recovery
///                    (see lb::GossipWire and DESIGN.md "Gossip wire
///                    plane"). Byte accounting models the true packed
///                    message: varint round + flag byte + entries.
/// \return Per-rank knowledge (LOAD^p()) after quiescence.
[[nodiscard]] std::vector<lb::Knowledge>
run_gossip(std::vector<LoadType> const& rank_loads, LoadType l_ave, int fanout,
           int rounds, Rng& rng, GossipStats* stats = nullptr,
           std::size_t max_knowledge = 0,
           lb::GossipWire wire = lb::GossipWire::full);

} // namespace tlb::lbaf
