#include "lbaf/assignment.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace tlb::lbaf {

Assignment::Assignment(Workload const& workload)
    : rank_loads_(static_cast<std::size_t>(workload.num_ranks), 0.0),
      rank_tasks_(static_cast<std::size_t>(workload.num_ranks)) {
  TLB_EXPECTS(workload.tasks.size() == workload.initial_rank.size());
  task_rank_.reserve(workload.tasks.size());
  task_load_.reserve(workload.tasks.size());
  for (std::size_t i = 0; i < workload.tasks.size(); ++i) {
    TLB_EXPECTS(workload.tasks[i].id == static_cast<TaskId>(i));
    RankId const r = workload.initial_rank[i];
    TLB_EXPECTS(r >= 0 && r < workload.num_ranks);
    task_rank_.push_back(r);
    task_load_.push_back(workload.tasks[i].load);
    rank_loads_[static_cast<std::size_t>(r)] += workload.tasks[i].load;
    rank_tasks_[static_cast<std::size_t>(r)].push_back(
        static_cast<TaskId>(i));
    total_load_ += workload.tasks[i].load;
  }
}

RankId Assignment::rank_of(TaskId task) const {
  TLB_EXPECTS(task >= 0 && static_cast<std::size_t>(task) < task_rank_.size());
  return task_rank_[static_cast<std::size_t>(task)];
}

LoadType Assignment::load_of_task(TaskId task) const {
  TLB_EXPECTS(task >= 0 && static_cast<std::size_t>(task) < task_load_.size());
  return task_load_[static_cast<std::size_t>(task)];
}

LoadType Assignment::load_of_rank(RankId rank) const {
  TLB_EXPECTS(rank >= 0 &&
              static_cast<std::size_t>(rank) < rank_loads_.size());
  return rank_loads_[static_cast<std::size_t>(rank)];
}

std::vector<lb::TaskEntry> Assignment::tasks_of(RankId rank) const {
  TLB_EXPECTS(rank >= 0 &&
              static_cast<std::size_t>(rank) < rank_tasks_.size());
  std::vector<lb::TaskEntry> out;
  auto const& ids = rank_tasks_[static_cast<std::size_t>(rank)];
  out.reserve(ids.size());
  for (TaskId const id : ids) {
    out.push_back({id, task_load_[static_cast<std::size_t>(id)]});
  }
  return out;
}

void Assignment::apply(Migration const& m) {
  TLB_EXPECTS(m.task >= 0 &&
              static_cast<std::size_t>(m.task) < task_rank_.size());
  TLB_EXPECTS(m.to >= 0 &&
              static_cast<std::size_t>(m.to) < rank_loads_.size());
  auto const t = static_cast<std::size_t>(m.task);
  TLB_EXPECTS(task_rank_[t] == m.from);
  if (m.from == m.to) {
    return;
  }
  auto& from_tasks = rank_tasks_[static_cast<std::size_t>(m.from)];
  auto const it = std::find(from_tasks.begin(), from_tasks.end(), m.task);
  TLB_ASSERT(it != from_tasks.end());
  from_tasks.erase(it);
  rank_tasks_[static_cast<std::size_t>(m.to)].push_back(m.task);
  rank_loads_[static_cast<std::size_t>(m.from)] -= task_load_[t];
  rank_loads_[static_cast<std::size_t>(m.to)] += task_load_[t];
  task_rank_[t] = m.to;
}

void Assignment::apply(std::span<Migration const> migrations) {
  for (Migration const& m : migrations) {
    apply(m);
  }
}

LoadType Assignment::average_load() const {
  return rank_loads_.empty()
             ? 0.0
             : total_load_ / static_cast<double>(rank_loads_.size());
}

LoadType Assignment::max_load() const {
  LoadType m = 0.0;
  for (LoadType const l : rank_loads_) {
    m = std::max(m, l);
  }
  return m;
}

double Assignment::imbalance() const { return tlb::imbalance(rank_loads_); }

LoadSummary Assignment::summary() const { return summarize(rank_loads_); }

bool Assignment::validate() const {
  std::vector<LoadType> sums(rank_loads_.size(), 0.0);
  std::size_t mapped = 0;
  for (std::size_t r = 0; r < rank_tasks_.size(); ++r) {
    for (TaskId const id : rank_tasks_[r]) {
      if (task_rank_[static_cast<std::size_t>(id)] !=
          static_cast<RankId>(r)) {
        return false;
      }
      sums[r] += task_load_[static_cast<std::size_t>(id)];
      ++mapped;
    }
  }
  if (mapped != task_rank_.size()) {
    return false;
  }
  for (std::size_t r = 0; r < sums.size(); ++r) {
    if (std::abs(sums[r] - rank_loads_[r]) >
        1e-9 * std::max(1.0, std::abs(rank_loads_[r]))) {
      return false;
    }
  }
  return true;
}

} // namespace tlb::lbaf
