#pragma once

/// \file greedy_ref.hpp
/// Centralized greedy reference balancer (the quality yardstick the paper
/// calls GreedyLB): longest-processing-time-first list scheduling with
/// global knowledge. LPT is a 4/3-approximation of the optimal makespan, so
/// its imbalance bounds what any distributed strategy can hope to reach.

#include <vector>

#include "lbaf/assignment.hpp"
#include "support/types.hpp"

namespace tlb::lbaf {

/// Compute migrations that re-map every task using LPT list scheduling:
/// tasks sorted by descending load are placed on the currently
/// least-loaded rank. Returns migrations relative to the current state of
/// `assignment` (tasks already on their target rank produce no entry).
[[nodiscard]] std::vector<Migration>
greedy_rebalance(Assignment const& assignment);

/// Convenience: apply greedy_rebalance and return the resulting imbalance.
[[nodiscard]] double greedy_imbalance(Assignment assignment);

} // namespace tlb::lbaf
