#include "workload/policy_sim.hpp"

#include <algorithm>
#include <ostream>

#include "obs/json.hpp"
#include "policy/trigger_policy.hpp"
#include "runtime/runtime.hpp"
#include "support/stats.hpp"

namespace tlb::workload {

SimResult run_policy_sim(SimConfig const& config) {
  auto const scenario = make_scenario(config.scenario);
  return run_policy_sim(config, *scenario);
}

SimResult run_policy_sim(SimConfig const& config, Scenario const& scenario) {
  SimResult res;
  res.scenario = std::string{scenario.name()};
  res.policy = config.policy;
  res.strategy = config.strategy;
  res.phases = config.scenario.phases;

  auto policy = policy::make_policy(config.policy);
  ScenarioWorkload const workload{scenario, config.tasks_per_rank,
                                  config.scenario.seed, config.base_load};

  rt::RuntimeConfig rt_config;
  rt_config.num_ranks = scenario.num_ranks();
  rt_config.seed = config.scenario.seed;
  rt::Runtime runtime{rt_config};

  auto params = lb::LbParams::tempered();
  params.seed = derive_seed(config.scenario.seed, kLbSeedStreamTag);
  // Modest gossip effort: sweeps run many (scenario, policy) cells, and
  // the decision dynamics, not LB quality, are under study here.
  params.num_trials = 2;
  params.num_iterations = 2;
  params.rounds = 4;
  lb::LbManager manager{runtime, config.strategy, params};

  rt::ObjectStore store{scenario.num_ranks()};
  workload.populate(store, config.payload_bytes);

  double imbalance_sum = 0.0;
  double error_sum = 0.0;
  std::size_t error_count = 0;
  res.decisions.reserve(res.phases);
  for (std::uint64_t phase = 0; phase < res.phases; ++phase) {
    // The phase runs with whatever placement the last invocation left.
    auto const input = workload.measure(phase, store);
    auto const loads = input.rank_loads();
    res.work_seconds += *std::max_element(loads.begin(), loads.end());
    imbalance_sum += imbalance(loads);

    // Phase boundary: the policy sees this phase's measurement and
    // decides whether the balancer runs before the next one.
    auto const outcome =
        manager.invoke_if_beneficial(input, store, *policy,
                                     config.cost_model);
    res.lb_seconds += outcome.lb_cost_seconds;
    res.decisions += outcome.invoked ? 'I' : 'S';
    if (outcome.invoked) {
      ++res.invocations;
    }
    if (outcome.decision.forecast_imbalance != 0.0 ||
        outcome.decision.forecast_error != 0.0) {
      error_sum += outcome.decision.forecast_error;
      ++error_count;
    }
  }
  if (res.phases > 0) {
    res.mean_imbalance = imbalance_sum / static_cast<double>(res.phases);
  }
  if (error_count > 0) {
    res.mean_forecast_error = error_sum / static_cast<double>(error_count);
  }
  return res;
}

void write_sim_json(std::ostream& os, std::span<SimResult const> results) {
  obs::JsonWriter w{os};
  w.begin_object();
  w.key("sweep").begin_array();
  for (SimResult const& r : results) {
    w.begin_object();
    w.kv("scenario", r.scenario);
    w.kv("policy", r.policy);
    w.kv("strategy", r.strategy);
    w.kv("phases", static_cast<unsigned long long>(r.phases));
    w.kv("invocations", static_cast<unsigned long long>(r.invocations));
    w.kv("work_seconds", r.work_seconds);
    w.kv("lb_seconds", r.lb_seconds);
    w.kv("total_seconds", r.total_seconds());
    w.kv("mean_imbalance", r.mean_imbalance);
    w.kv("mean_forecast_error", r.mean_forecast_error);
    w.kv("decisions", r.decisions);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

} // namespace tlb::workload
