#pragma once

/// \file scenario.hpp
/// Deterministic time-varying workload scenarios — the load trajectories
/// the paper's problem statement is about (§I: "workloads with
/// time-varying imbalance"). A Scenario maps (phase, rank) to a relative
/// work intensity; ScenarioWorkload realizes that intensity over a fixed
/// population of migratable tasks whose per-task weights are seed-derived,
/// so a scenario run is exactly reproducible from (scenario spec, root
/// seed) alone.
///
/// Scenarios (make_scenario names in parentheses):
///   drifting hotspot ("hotspot")   — a Gaussian bump of extra work that
///     slides across the rank space a little every phase
///   seasonal swing   ("periodic")  — one half of the ranks swings above
///     the mean while the other swings below, on a fixed period
///   bursty shocks    ("bursty")    — calm baseline punctuated by
///     seed-scheduled multi-phase bursts on random rank windows
///   monotone ramp    ("ramp")      — a spatial gradient that steepens
///     monotonically over the run
///   trace replay     (make_trace_scenario) — replays per-rank loads
///     reconstructed from a PhaseTimeline JSON export's truncated
///     snapshots (top-k loads + evenly spread remainder)
///
/// Seeding discipline: all scenario randomness derives from the run's
/// single root seed via the dedicated workload stream split
/// (kWorkloadStreamTag), then a per-scenario split
/// (scenario_stream_tag(name)), then a per-rank split — mirroring the
/// fault plane's kFaultStreamTag idiom so workload draws can never
/// correlate with gossip, CMF, or fault streams.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lb/strategy/strategy.hpp"
#include "runtime/object_store.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace tlb::workload {

/// Stream tag reserved for deriving workload-generation RNGs from the root
/// seed (far outside the per-rank tags 0..P-1, distinct from
/// rt::kFaultStreamTag).
inline constexpr std::uint64_t kWorkloadStreamTag = 0x5ce0'0000'0000'0001ull;

/// Stream tag for deriving LB algorithm seeds (LbParams::seed) from a
/// run's root seed — replaces the ad-hoc `seed ^ ...` arithmetic examples
/// used to do.
inline constexpr std::uint64_t kLbSeedStreamTag = 0x5ce0'0000'0000'0002ull;

/// FNV-1a of a scenario name: the per-scenario split tag, so two scenarios
/// built from the same root seed draw from decorrelated streams.
[[nodiscard]] std::uint64_t scenario_stream_tag(std::string_view name);

/// Seed of the (root, scenario, rank) workload stream. Exposed so tests
/// can assert distinct streams per (scenario, rank) pair.
[[nodiscard]] std::uint64_t rank_stream_seed(std::uint64_t root_seed,
                                             std::uint64_t scenario_tag,
                                             RankId rank);

/// Parameters shared by the synthetic scenarios. Knobs a given scenario
/// does not use are ignored.
struct ScenarioSpec {
  std::string name = "hotspot";
  RankId num_ranks = 64;
  /// Nominal horizon. Synthetic scenarios remain defined past it (bursty
  /// wraps its schedule; ramp saturates), so longer runs are fine.
  std::size_t phases = 32;
  std::uint64_t seed = 0x5eedf00dull;
  /// Peak extra intensity on top of the 1.0 baseline.
  double amplitude = 3.0;
  /// hotspot: Gaussian width in ranks (0 → num_ranks/16).
  double sigma = 0.0;
  /// hotspot: ranks the center moves per phase.
  double drift = 1.5;
  /// periodic: phases per full swing cycle.
  std::size_t period = 8;
  /// bursty: per-phase probability a new burst starts.
  double burst_prob = 0.15;
  /// bursty: phases a burst lasts.
  std::size_t burst_len = 4;
  /// bursty: ranks a burst covers.
  RankId burst_width = 8;
};

/// A deterministic map from (phase, rank) to relative work intensity.
/// intensity() must be pure: same arguments, same value, forever — the
/// policy golden tests pin decision sequences derived from it.
class Scenario {
public:
  Scenario() = default;
  virtual ~Scenario() = default;
  Scenario(Scenario const&) = delete;
  Scenario& operator=(Scenario const&) = delete;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual RankId num_ranks() const = 0;
  /// Nominal phase horizon (trace length for replays).
  [[nodiscard]] virtual std::size_t phases() const = 0;
  /// Relative work intensity of rank `rank` during phase `phase`; always
  /// > 0 (1.0 is the calm baseline for the synthetic scenarios).
  [[nodiscard]] virtual double intensity(std::uint64_t phase,
                                         RankId rank) const = 0;
};

/// Build a synthetic scenario: "hotspot", "periodic", "bursty", or
/// "ramp". Throws std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<Scenario> make_scenario(ScenarioSpec spec);

/// Names accepted by make_scenario.
[[nodiscard]] std::vector<std::string_view> scenario_names();

/// Build a trace-replay scenario from a PhaseTimeline JSON export (the
/// {"timeline": [...]} document). Per-rank loads are reconstructed from
/// each sample's truncated snapshot: top-k ranks verbatim, the remainder
/// spread evenly over the other ranks, everything normalized by the
/// trace's mean per-rank load so intensities stay O(1). Phases beyond the
/// trace wrap around (the replay loops). Throws std::runtime_error on
/// malformed input or samples without snapshots.
[[nodiscard]] std::unique_ptr<Scenario>
make_trace_scenario(std::string_view timeline_json,
                    std::string name = "trace");

/// Minimal migratable payload for scenario tasks: carries only its modeled
/// wire size, so migration traffic is accounted without real data.
class TaskPayload final : public rt::Migratable {
public:
  explicit TaskPayload(std::size_t bytes) : bytes_{bytes} {}
  [[nodiscard]] std::size_t wire_bytes() const override { return bytes_; }

private:
  std::size_t bytes_;
};

/// A scenario realized over a fixed population of tasks. Every rank is
/// home to `tasks_per_rank` tasks (task id = home * tasks_per_rank + i)
/// whose base weights are drawn once, at construction, from the
/// (root, scenario, home-rank) stream. A task's load during phase p is
/// weight * intensity(p, home) — the work follows the task's *home
/// region*, so migrating the task moves that work to another rank. The
/// population never changes; only the placement (tracked by an
/// ObjectStore) and the per-phase intensities do.
class ScenarioWorkload {
public:
  /// \param base_load Mean task weight in simulated seconds.
  ScenarioWorkload(Scenario const& scenario, std::size_t tasks_per_rank,
                   std::uint64_t root_seed, double base_load = 1.0);

  [[nodiscard]] Scenario const& scenario() const { return *scenario_; }
  [[nodiscard]] std::size_t tasks_per_rank() const { return tasks_per_rank_; }
  [[nodiscard]] std::size_t num_tasks() const { return weights_.size(); }

  [[nodiscard]] RankId home(TaskId id) const {
    return static_cast<RankId>(static_cast<std::size_t>(id) /
                               tasks_per_rank_);
  }
  [[nodiscard]] double weight(TaskId id) const {
    return weights_[static_cast<std::size_t>(id)];
  }
  /// Measured load of one task during `phase`.
  [[nodiscard]] double task_load(std::uint64_t phase, TaskId id) const;

  /// Register the whole population on its home ranks.
  void populate(rt::ObjectStore& store, std::size_t payload_bytes) const;

  /// Build the per-rank measured task lists for `phase` from the store's
  /// current placement (tasks stay where the last migration put them).
  [[nodiscard]] lb::StrategyInput measure(std::uint64_t phase,
                                          rt::ObjectStore const& store) const;

private:
  Scenario const* scenario_;
  std::size_t tasks_per_rank_;
  std::vector<double> weights_; ///< indexed by task id
};

} // namespace tlb::workload
