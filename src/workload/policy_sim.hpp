#pragma once

/// \file policy_sim.hpp
/// The policy × scenario experiment harness: run one time-varying
/// scenario end to end — phase work, trigger decision, (possibly) an LB
/// invocation with real migrations through an ObjectStore — and account
/// total wall-clock as phase makespans plus modeled LB cost. This is the
/// M7 experiment's engine and the acceptance check's measurement: a
/// trigger policy is only worth having if it beats always-invoke on the
/// scenarios with calm stretches and stays within a few percent of the
/// best fixed policy everywhere else.
///
/// Timing model (per phase): the phase's work time is its makespan — the
/// maximum per-rank load under the placement the phase actually ran with —
/// and each LB invocation adds LbCostModel seconds derived from its
/// measured protocol/migration traffic. Deterministic end to end: same
/// SimConfig, same SimResult, byte for byte.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>

#include "lb/strategy/lb_manager.hpp"
#include "workload/scenario.hpp"

namespace tlb::workload {

struct SimConfig {
  ScenarioSpec scenario;
  /// Trigger policy spec (policy::make_policy).
  std::string policy = "costbenefit";
  /// LB strategy (lb::make_strategy). Greedy keeps sweeps fast; the
  /// gossip strategies exercise real protocol traffic.
  std::string strategy = "greedy";
  std::size_t tasks_per_rank = 16;
  /// Mean task weight in simulated seconds. Milliseconds-scale tasks put
  /// phase makespans and LB costs on comparable footing, which is the
  /// regime where the invocation decision matters at all.
  double base_load = 1.0e-3;
  std::size_t payload_bytes = 4096;
  /// Modeled cost of one LB invocation. The default fixed term stands in
  /// for the global synchronization a real invocation requires; without
  /// it a centralized strategy's traffic cost is so small that
  /// always-invoke trivially dominates and there is nothing to decide.
  lb::LbCostModel cost_model{2.0e-6, 5.0e-10, 4.0e-9, 4.0e-3};
};

struct SimResult {
  std::string scenario;
  std::string policy;
  std::string strategy;
  std::size_t phases = 0;
  std::size_t invocations = 0;
  /// Sum over phases of the makespan the phase ran with.
  double work_seconds = 0.0;
  /// Sum of modeled LB invocation costs.
  double lb_seconds = 0.0;
  /// Mean measured pre-decision imbalance λ across phases.
  double mean_imbalance = 0.0;
  /// Mean forecaster relative error over decisions that forecast (0 when
  /// the policy never forecasts).
  double mean_forecast_error = 0.0;
  /// One char per phase: 'I' invoked, 'S' skipped. The golden decision
  /// sequence the determinism test pins.
  std::string decisions;

  [[nodiscard]] double total_seconds() const {
    return work_seconds + lb_seconds;
  }
};

/// Run one (scenario, policy) simulation. Builds the scenario from
/// config.scenario via make_scenario.
[[nodiscard]] SimResult run_policy_sim(SimConfig const& config);

/// Same, over an externally built scenario (e.g. a trace replay); ignores
/// config.scenario.name.
[[nodiscard]] SimResult run_policy_sim(SimConfig const& config,
                                       Scenario const& scenario);

/// Write results as {"sweep": [{...}, ...]} — the M7 artifact schema.
void write_sim_json(std::ostream& os, std::span<SimResult const> results);

} // namespace tlb::workload
