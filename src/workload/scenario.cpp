#include "workload/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <utility>

#include "obs/json_in.hpp"
#include "support/assert.hpp"

namespace tlb::workload {

std::uint64_t scenario_stream_tag(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ull; // FNV-1a 64 offset basis
  for (char const c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x00000100000001b3ull; // FNV-1a 64 prime
  }
  return h;
}

std::uint64_t rank_stream_seed(std::uint64_t root_seed,
                               std::uint64_t scenario_tag, RankId rank) {
  Rng stream = Rng{root_seed}
                   .split(kWorkloadStreamTag)
                   .split(scenario_tag)
                   .split(static_cast<std::uint64_t>(rank));
  return stream();
}

namespace {

/// Common spec plumbing for the synthetic scenarios.
class SyntheticScenario : public Scenario {
public:
  explicit SyntheticScenario(ScenarioSpec spec) : spec_{std::move(spec)} {
    TLB_EXPECTS(spec_.num_ranks > 0);
    TLB_EXPECTS(spec_.phases > 0);
  }
  [[nodiscard]] std::string_view name() const override { return spec_.name; }
  [[nodiscard]] RankId num_ranks() const override { return spec_.num_ranks; }
  [[nodiscard]] std::size_t phases() const override { return spec_.phases; }

protected:
  ScenarioSpec spec_;
};

/// A Gaussian bump of extra work sliding across the (circular) rank space.
class HotspotScenario final : public SyntheticScenario {
public:
  explicit HotspotScenario(ScenarioSpec spec)
      : SyntheticScenario{std::move(spec)} {
    sigma_ = spec_.sigma > 0.0
                 ? spec_.sigma
                 : std::max(1.0, static_cast<double>(spec_.num_ranks) / 16.0);
    // Seed-derived starting center so two seeds give distinct trajectories.
    Rng stream{rank_stream_seed(spec_.seed, scenario_stream_tag(spec_.name),
                                spec_.num_ranks)};
    center0_ = stream.uniform(0.0, static_cast<double>(spec_.num_ranks));
  }

  [[nodiscard]] double intensity(std::uint64_t phase,
                                 RankId rank) const override {
    auto const p = static_cast<double>(spec_.num_ranks);
    double const center =
        std::fmod(center0_ + spec_.drift * static_cast<double>(phase), p);
    double d = std::fabs(static_cast<double>(rank) - center);
    d = std::min(d, p - d); // circular distance
    return 1.0 +
           spec_.amplitude * std::exp(-(d * d) / (2.0 * sigma_ * sigma_));
  }

private:
  double sigma_ = 1.0;
  double center0_ = 0.0;
};

/// Seasonal swing: the low half of the rank space swings above the mean
/// while the high half swings below, exactly periodic in `period` phases.
class PeriodicScenario final : public SyntheticScenario {
public:
  explicit PeriodicScenario(ScenarioSpec spec)
      : SyntheticScenario{std::move(spec)} {
    TLB_EXPECTS(spec_.period >= 2);
  }

  [[nodiscard]] double intensity(std::uint64_t phase,
                                 RankId rank) const override {
    double const angle = 2.0 * std::numbers::pi *
                         static_cast<double>(phase % spec_.period) /
                         static_cast<double>(spec_.period);
    double const side = rank < spec_.num_ranks / 2 ? 1.0 : -1.0;
    return std::max(0.05, 1.0 + spec_.amplitude * std::sin(angle) * side);
  }
};

/// Calm baseline punctuated by seed-scheduled bursts: each burst covers a
/// contiguous rank window for burst_len phases. The schedule is
/// precomputed over the spec horizon and wraps beyond it, keeping
/// intensity() pure for any phase.
class BurstyScenario final : public SyntheticScenario {
public:
  explicit BurstyScenario(ScenarioSpec spec)
      : SyntheticScenario{std::move(spec)} {
    TLB_EXPECTS(spec_.burst_width > 0);
    grid_.assign(spec_.phases *
                     static_cast<std::size_t>(spec_.num_ranks),
                 1.0);
    Rng schedule{rank_stream_seed(spec_.seed,
                                  scenario_stream_tag(spec_.name),
                                  spec_.num_ranks)};
    for (std::size_t p = 0; p < spec_.phases; ++p) {
      if (schedule.uniform() >= spec_.burst_prob) {
        continue;
      }
      auto const start = static_cast<RankId>(
          schedule.index(static_cast<std::size_t>(spec_.num_ranks)));
      auto const len = std::max<std::size_t>(1, spec_.burst_len);
      for (std::size_t dp = 0; dp < len && p + dp < spec_.phases; ++dp) {
        for (RankId dr = 0; dr < spec_.burst_width; ++dr) {
          auto const r = (start + dr) % spec_.num_ranks;
          grid_[(p + dp) * static_cast<std::size_t>(spec_.num_ranks) +
                static_cast<std::size_t>(r)] += spec_.amplitude;
        }
      }
    }
  }

  [[nodiscard]] double intensity(std::uint64_t phase,
                                 RankId rank) const override {
    auto const p = static_cast<std::size_t>(phase) % spec_.phases;
    return grid_[p * static_cast<std::size_t>(spec_.num_ranks) +
                 static_cast<std::size_t>(rank)];
  }

private:
  std::vector<double> grid_; ///< [phase][rank] intensity
};

/// A spatial gradient that steepens linearly over the run and saturates at
/// the horizon: each rank's series is linear in the phase until then —
/// the trend model's home turf, where persistence systematically lags.
class RampScenario final : public SyntheticScenario {
public:
  explicit RampScenario(ScenarioSpec spec)
      : SyntheticScenario{std::move(spec)} {}

  [[nodiscard]] double intensity(std::uint64_t phase,
                                 RankId rank) const override {
    double const progress =
        std::min(1.0, static_cast<double>(phase) /
                          static_cast<double>(spec_.phases - 1));
    double const frac =
        spec_.num_ranks > 1
            ? static_cast<double>(rank) /
                  static_cast<double>(spec_.num_ranks - 1)
            : 0.0;
    return 1.0 + spec_.amplitude * progress * frac;
  }
};

/// Replays per-rank loads reconstructed from a PhaseTimeline export.
class TraceScenario final : public Scenario {
public:
  TraceScenario(std::string name, RankId num_ranks,
                std::vector<std::vector<double>> loads)
      : name_{std::move(name)}, num_ranks_{num_ranks},
        loads_{std::move(loads)} {}

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] RankId num_ranks() const override { return num_ranks_; }
  [[nodiscard]] std::size_t phases() const override { return loads_.size(); }
  [[nodiscard]] double intensity(std::uint64_t phase,
                                 RankId rank) const override {
    auto const& row = loads_[static_cast<std::size_t>(phase) % loads_.size()];
    return row[static_cast<std::size_t>(rank)];
  }

private:
  std::string name_;
  RankId num_ranks_;
  std::vector<std::vector<double>> loads_;
};

} // namespace

std::unique_ptr<Scenario> make_scenario(ScenarioSpec spec) {
  if (spec.name == "hotspot") {
    return std::make_unique<HotspotScenario>(std::move(spec));
  }
  if (spec.name == "periodic") {
    return std::make_unique<PeriodicScenario>(std::move(spec));
  }
  if (spec.name == "bursty") {
    return std::make_unique<BurstyScenario>(std::move(spec));
  }
  if (spec.name == "ramp") {
    return std::make_unique<RampScenario>(std::move(spec));
  }
  throw std::invalid_argument("unknown scenario: " + spec.name);
}

std::vector<std::string_view> scenario_names() {
  return {"hotspot", "periodic", "bursty", "ramp"};
}

std::unique_ptr<Scenario> make_trace_scenario(std::string_view timeline_json,
                                              std::string name) {
  auto const doc = obs::parse_json(timeline_json);
  auto const& timeline = doc.at("timeline").array();
  if (timeline.empty()) {
    throw std::runtime_error("trace scenario: empty timeline");
  }
  std::vector<std::vector<double>> loads;
  loads.reserve(timeline.size());
  RankId num_ranks = 0;
  for (auto const& s : timeline) {
    if (!s.has("snapshot_ranks")) {
      throw std::runtime_error("trace scenario: sample without snapshot");
    }
    auto const ranks = static_cast<RankId>(s.at("snapshot_ranks").num());
    if (ranks <= 0) {
      throw std::runtime_error("trace scenario: sample without snapshot");
    }
    if (num_ranks == 0) {
      num_ranks = ranks;
    } else if (ranks != num_ranks) {
      throw std::runtime_error("trace scenario: inconsistent rank counts");
    }
    std::vector<double> row(static_cast<std::size_t>(ranks), 0.0);
    std::vector<bool> is_top(static_cast<std::size_t>(ranks), false);
    auto const& top = s.at("top_loads").array();
    for (auto const& entry : top) {
      auto const r = static_cast<std::size_t>(entry.at("rank").num());
      if (r >= row.size()) {
        throw std::runtime_error("trace scenario: snapshot rank out of range");
      }
      row[r] = entry.at("load").num();
      is_top[r] = true;
    }
    // Spread the collapsed remainder evenly over the non-top ranks.
    auto const rest_count = row.size() - top.size();
    if (rest_count > 0) {
      double const rest_each =
          s.at("rest_load_sum").num() / static_cast<double>(rest_count);
      for (std::size_t r = 0; r < row.size(); ++r) {
        if (!is_top[r]) {
          row[r] = rest_each;
        }
      }
    }
    loads.push_back(std::move(row));
  }
  // Normalize by the trace's mean per-rank load so intensities stay O(1)
  // regardless of the units the trace was recorded in.
  double total = 0.0;
  std::size_t cells = 0;
  for (auto const& row : loads) {
    for (double const l : row) {
      total += l;
    }
    cells += row.size();
  }
  double const mean = total / static_cast<double>(cells);
  if (mean > 0.0) {
    for (auto& row : loads) {
      for (double& l : row) {
        l = std::max(1e-6, l / mean);
      }
    }
  }
  return std::make_unique<TraceScenario>(std::move(name), num_ranks,
                                         std::move(loads));
}

ScenarioWorkload::ScenarioWorkload(Scenario const& scenario,
                                   std::size_t tasks_per_rank,
                                   std::uint64_t root_seed, double base_load)
    : scenario_{&scenario}, tasks_per_rank_{tasks_per_rank} {
  TLB_EXPECTS(tasks_per_rank_ > 0);
  TLB_EXPECTS(base_load > 0.0);
  auto const ranks = static_cast<std::size_t>(scenario.num_ranks());
  auto const tag = scenario_stream_tag(scenario.name());
  weights_.reserve(ranks * tasks_per_rank_);
  for (std::size_t r = 0; r < ranks; ++r) {
    Rng stream{
        rank_stream_seed(root_seed, tag, static_cast<RankId>(r))};
    for (std::size_t i = 0; i < tasks_per_rank_; ++i) {
      // Gamma(2, base/2): mean base_load, mild right skew — tasks differ
      // but none dominates its rank.
      weights_.push_back(stream.gamma(2.0, base_load / 2.0));
    }
  }
}

double ScenarioWorkload::task_load(std::uint64_t phase, TaskId id) const {
  return weight(id) * scenario_->intensity(phase, home(id));
}

void ScenarioWorkload::populate(rt::ObjectStore& store,
                                std::size_t payload_bytes) const {
  for (std::size_t id = 0; id < weights_.size(); ++id) {
    store.create(home(static_cast<TaskId>(id)), static_cast<TaskId>(id),
                 std::make_unique<TaskPayload>(payload_bytes));
  }
}

lb::StrategyInput ScenarioWorkload::measure(std::uint64_t phase,
                                            rt::ObjectStore const& store)
    const {
  lb::StrategyInput input;
  auto const ranks = static_cast<std::size_t>(scenario_->num_ranks());
  TLB_EXPECTS(static_cast<std::size_t>(store.num_ranks()) == ranks);
  input.tasks.resize(ranks);
  for (std::size_t r = 0; r < ranks; ++r) {
    for (TaskId const id : store.tasks_on(static_cast<RankId>(r))) {
      input.tasks[r].push_back({id, task_load(phase, id)});
    }
  }
  return input;
}

} // namespace tlb::workload
