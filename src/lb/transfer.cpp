#include "lb/transfer.hpp"

#include <cmath>
#include <optional>

#include "lb/cmf.hpp"
#include "lb/criterion.hpp"
#include "lb/incremental_cmf.hpp"
#include "lb/order.hpp"
#include "obs/tracer.hpp"
#include "support/assert.hpp"
#include "support/check.hpp"

namespace tlb::lb {

TransferResult run_transfer(LbParams const& params, RankId self,
                            std::vector<TaskEntry> const& tasks, LoadType l_p,
                            LoadType l_ave, Knowledge& knowledge, Rng& rng) {
  TransferResult result;
  result.final_load = l_p;

  // Algorithm 2 line 3: pick the traversal order O^p.
  std::vector<TaskEntry> const order =
      order_tasks(params.order, tasks, l_ave, l_p);
  TLB_SPAN_ARG("lb", "transfer_pass", "candidates", order.size());

  // Line 5: the original algorithm builds the CMF exactly once. The
  // incremental mode also builds once — an IncrementalCmf — and then
  // point-updates it as speculative transfers land, giving recompute
  // semantics at O(log |S^p|) per candidate instead of O(|S^p|).
  std::optional<Cmf> cmf;
  std::optional<IncrementalCmf> inc;
  if (params.refresh == CmfRefresh::build_once) {
    cmf.emplace(params.cmf, knowledge.entries(), l_ave, self);
    ++result.cmf_rebuilds;
  } else if (params.refresh == CmfRefresh::incremental) {
    inc.emplace(params.cmf, knowledge.entries(), l_ave, self);
    ++result.cmf_rebuilds;
  }

  // Line 6: propose transfers while overloaded and candidates remain.
  std::size_t n = 0;
  while (result.final_load > params.threshold * l_ave && n < order.size()) {
    TaskEntry const& candidate = order[n];
    ++n;

    // Line 7: TemperedLB rebuilds the CMF for every candidate so
    // speculative load updates shift sampling away from filling ranks.
    if (params.refresh == CmfRefresh::recompute) {
      cmf.emplace(params.cmf, knowledge.entries(), l_ave, self);
      ++result.cmf_rebuilds;
    }
    if (inc ? inc->empty() : cmf->empty()) {
      ++result.no_target;
      continue;
    }

    // Lines 9-10: sample a recipient and read its last-known load.
    RankId const target = inc ? inc->sample(rng) : cmf->sample(rng);
    LoadType const l_x = knowledge.load_of(target);

    // Line 11: the acceptance criterion (original vs relaxed).
    if (evaluate_criterion(params.criterion, l_x, candidate.load, l_ave,
                           result.final_load)) {
      TLB_AUDIT_BLOCK {
        // Lemma 1: an accepted relaxed-criterion transfer strictly lowers
        // max(l^p, l_x), so the objective F(D) = I_D − h + 1 cannot grow.
        // The original criterion instead guarantees the recipient stays
        // below average (Algorithm 2 line 35).
        if (params.criterion == CriterionKind::relaxed) {
          TLB_INVARIANT(transfer_preserves_objective(l_x, candidate.load,
                                                     result.final_load),
                        "relaxed criterion preserves objective (Lemma 1)");
        } else {
          TLB_INVARIANT(l_x + candidate.load < l_ave,
                        "original criterion keeps recipient below average");
        }
      }
      // Lines 12-16: commit the speculative transfer.
      knowledge.add_load(target, candidate.load);
      if (inc) {
        inc->add_load(target, candidate.load);
      }
      result.final_load -= candidate.load;
      result.migrations.push_back(
          Migration{candidate.id, self, target, candidate.load});
      ++result.accepted;
      TLB_AUDIT_BLOCK {
        // Shadow cross-check (audit builds only): after each committed
        // speculative transfer the incrementally maintained distribution
        // must agree with a from-scratch recompute over the same knowledge
        // — the Fenwick-vs-recompute guarantee PR 1's fast path rests on.
        if (inc) {
          Cmf const shadow{params.cmf, knowledge.entries(), l_ave, self};
          TLB_INVARIANT(std::abs(shadow.normalizer() - inc->normalizer()) <=
                            1e-9 * std::max(1.0, shadow.normalizer()),
                        "incremental normalizer matches recompute");
          TLB_INVARIANT(shadow.empty() == inc->empty(),
                        "incremental emptiness matches recompute");
          bool probs_match = true;
          for (std::size_t i = 0; i < shadow.size(); ++i) {
            double const p = shadow.probability(i);
            double const q = inc->probability_of(shadow.rank_at(i));
            probs_match = probs_match && std::abs(p - q) <= 1e-9;
          }
          TLB_INVARIANT(probs_match,
                        "incremental per-rank probabilities match recompute");
        }
      }
    } else {
      ++result.rejected;
    }
  }

  if (inc) {
    // Fenwick point-updates are not rebuilds; only the O(n) escalations
    // (normalizer shifts under the modified CMF) count.
    result.cmf_rebuilds += inc->rebuild_count();
  }

  TLB_AUDIT_BLOCK {
    // Conservation: every unit of load shed by this rank is accounted for
    // by exactly one proposed migration, and counters tally the loop.
    double moved = 0.0;
    for (Migration const& m : result.migrations) {
      moved += m.load;
    }
    TLB_INVARIANT(std::abs(result.final_load + moved - l_p) <=
                      1e-9 * std::max(1.0, std::abs(l_p)),
                  "load conservation across run_transfer");
    TLB_INVARIANT(result.migrations.size() == result.accepted,
                  "one migration per accepted transfer");
    TLB_INVARIANT(result.accepted + result.rejected + result.no_target <=
                      order.size(),
                  "every candidate dispositioned at most once");
  }
  return result;
}

} // namespace tlb::lb
