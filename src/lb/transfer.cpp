#include "lb/transfer.hpp"

#include <optional>

#include "lb/cmf.hpp"
#include "lb/criterion.hpp"
#include "lb/incremental_cmf.hpp"
#include "lb/order.hpp"
#include "support/assert.hpp"

namespace tlb::lb {

TransferResult run_transfer(LbParams const& params, RankId self,
                            std::vector<TaskEntry> const& tasks, LoadType l_p,
                            LoadType l_ave, Knowledge& knowledge, Rng& rng) {
  TransferResult result;
  result.final_load = l_p;

  // Algorithm 2 line 3: pick the traversal order O^p.
  std::vector<TaskEntry> const order =
      order_tasks(params.order, tasks, l_ave, l_p);

  // Line 5: the original algorithm builds the CMF exactly once. The
  // incremental mode also builds once — an IncrementalCmf — and then
  // point-updates it as speculative transfers land, giving recompute
  // semantics at O(log |S^p|) per candidate instead of O(|S^p|).
  std::optional<Cmf> cmf;
  std::optional<IncrementalCmf> inc;
  if (params.refresh == CmfRefresh::build_once) {
    cmf.emplace(params.cmf, knowledge.entries(), l_ave, self);
  } else if (params.refresh == CmfRefresh::incremental) {
    inc.emplace(params.cmf, knowledge.entries(), l_ave, self);
  }

  // Line 6: propose transfers while overloaded and candidates remain.
  std::size_t n = 0;
  while (result.final_load > params.threshold * l_ave && n < order.size()) {
    TaskEntry const& candidate = order[n];
    ++n;

    // Line 7: TemperedLB rebuilds the CMF for every candidate so
    // speculative load updates shift sampling away from filling ranks.
    if (params.refresh == CmfRefresh::recompute) {
      cmf.emplace(params.cmf, knowledge.entries(), l_ave, self);
    }
    if (inc ? inc->empty() : cmf->empty()) {
      ++result.no_target;
      continue;
    }

    // Lines 9-10: sample a recipient and read its last-known load.
    RankId const target = inc ? inc->sample(rng) : cmf->sample(rng);
    LoadType const l_x = knowledge.load_of(target);

    // Line 11: the acceptance criterion (original vs relaxed).
    if (evaluate_criterion(params.criterion, l_x, candidate.load, l_ave,
                           result.final_load)) {
      // Lines 12-16: commit the speculative transfer.
      knowledge.add_load(target, candidate.load);
      if (inc) {
        inc->add_load(target, candidate.load);
      }
      result.final_load -= candidate.load;
      result.migrations.push_back(
          Migration{candidate.id, self, target, candidate.load});
      ++result.accepted;
    } else {
      ++result.rejected;
    }
  }

  return result;
}

} // namespace tlb::lb
