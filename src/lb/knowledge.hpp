#pragma once

/// \file knowledge.hpp
/// The partial-information state a rank accumulates during the gossip
/// stage: the set S^p of known (initially underloaded) ranks and the
/// LOAD^p() map of their last-known loads (Algorithm 1). Kept sorted by
/// rank id so merges are deterministic and lookups are O(log n).
///
/// Entries carry an owner-local, monotone *version stamp*: every insert,
/// overwrite, load update, or merge-in of a previously unknown rank
/// stamps the affected entry with the next value of the owner's version
/// counter. Versions never travel on the wire (each owner stamps its own
/// copy); they exist so a forwarding event can ship only the entries that
/// are new or changed since its last forwarding event — the delta-encoded
/// gossip wire plane (see DESIGN.md "Gossip wire plane").
///
/// Wire format (pack_full/pack_delta, shared layout):
///
///   varint n                       entry count
///   n x varint                     rank ids, delta-coded over the sorted
///                                  list: first absolute, then
///                                  rank[i] - rank[i-1] - 1 (ids strictly
///                                  increase, so the -1 tightens density)
///   n x f64                        raw little-endian loads, same order
///
/// wire_bytes()/wire_bytes_delta() are computed by the same per-entry
/// size arithmetic pack() emits, asserted equal at pack time, so the
/// modeled traffic can never drift from the serialized truth.

#include <cstdint>
#include <span>
#include <vector>

#include "runtime/serialize.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace tlb::lb {

/// One entry of LOAD^p(): a known peer, its last-known load, and the
/// owner-local version stamp of the last change to this entry.
struct KnownRank {
  KnownRank() = default;
  KnownRank(RankId r, LoadType l) : rank{r}, load{l} {}
  KnownRank(RankId r, std::uint32_t v, LoadType l)
      : rank{r}, version{v}, load{l} {}

  RankId rank = invalid_rank;
  /// Monotone per-owner change stamp (not semantic state: two knowledge
  /// sets with the same ranks and loads are equal regardless of the
  /// insertion order that produced them, so == ignores it).
  std::uint32_t version = 0;
  LoadType load = 0.0;

  friend bool operator==(KnownRank const& a, KnownRank const& b) {
    return a.rank == b.rank && a.load == b.load;
  }
};
static_assert(sizeof(KnownRank) == 16,
              "version must live in what used to be struct padding");

/// Sorted-by-rank collection of known peers. Invariant: ranks strictly
/// increasing (|S^p| == |LOAD^p()| by construction, the paper's Require).
class Knowledge {
public:
  Knowledge() = default;

  /// Insert or overwrite the load for a rank. Stamps the entry.
  void insert(RankId rank, LoadType load);

  /// Merge another rank's knowledge. Existing entries keep the *incoming*
  /// load only when we did not already know the rank: a rank's own local
  /// updates (speculative transfers it directed at the peer) are fresher
  /// than gossiped initial loads. Newly learned entries are stamped in
  /// ascending rank order. Allocation-free once capacity suffices (the
  /// merge is performed in place, back to front).
  void merge(Knowledge const& other);

  /// Add `delta` to a known rank's load. Precondition: rank is known.
  /// Stamps the entry (its value changed).
  void add_load(RankId rank, LoadType delta);

  [[nodiscard]] bool contains(RankId rank) const;
  /// Last-known load; precondition: rank is known.
  [[nodiscard]] LoadType load_of(RankId rank) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::span<KnownRank const> entries() const {
    return entries_;
  }

  /// Forget everything: entries, version counter, truncation flag.
  /// Capacity is retained, so a cleared-and-refilled knowledge allocates
  /// only while growing past its historical maximum.
  void clear() {
    entries_.clear();
    next_version_ = 1;
    truncated_ = false;
  }

  /// Bound the knowledge to the `cap` entries with the lowest loads (the
  /// most attractive transfer targets), breaking load ties by rank id.
  /// cap == 0 means unlimited (no-op). Deterministic, but note that under
  /// gossip every rank then retains the *same* globally-lightest targets,
  /// which herds transfers — prefer truncate_random in protocols.
  void truncate_to(std::size_t cap);

  /// Bound the knowledge to a uniformly random `cap`-subset. This is the
  /// footnote-2 bounded-knowledge variant actually used by the gossip
  /// stage: random subsets keep per-rank target sets de-correlated (the
  /// footnote's random-graph connectivity argument), avoiding the
  /// thundering-herd failure of keeping the lightest entries everywhere.
  void truncate_random(std::size_t cap, Rng& rng);

  // --- Versioning (the delta wire plane's bookkeeping) ---

  /// The stamp covering every current entry: entries with
  /// version > version_mark() cannot exist. A forwarding event records
  /// this as its high-water mark after packing.
  [[nodiscard]] std::uint32_t version_mark() const {
    return next_version_ - 1;
  }

  /// True when entries were dropped (by either truncate flavor) since the
  /// flag was last consumed; reading clears it. Forwarding events use
  /// this to fall back to a full snapshot after truncation, the recovery
  /// rule that keeps bounded-knowledge (footnote 2) runs re-offering
  /// dropped entries instead of silently never mentioning them again.
  [[nodiscard]] bool take_truncated() {
    bool const t = truncated_;
    truncated_ = false;
    return t;
  }

  /// Number of entries stamped after `since` (what pack_delta would ship).
  [[nodiscard]] std::size_t delta_count(std::uint32_t since) const;

  /// A knowledge holding copies of the entries stamped after `since`
  /// (freshly stamped 1..k). The sequential gossip emulation uses this to
  /// model delta payloads; the runtime protocol packs straight to bytes.
  [[nodiscard]] Knowledge delta_copy(std::uint32_t since) const;

  /// Pre-grow the entry vector to hold `n` entries without reallocating.
  /// The inform plane reserves to P so steady-state merges and unpacks
  /// never touch the allocator.
  void reserve(std::size_t n) { entries_.reserve(n); }

  // --- Wire format ---

  /// An upper bound on the bytes any packed payload of up to `n` entries
  /// can occupy: a 5-byte count varint plus, per entry, a 5-byte id gap
  /// and a raw f64 load. Deliberately loose (real gap varints are almost
  /// always one byte) — its job is to let buffer pools reserve once and
  /// never grow, not to model traffic; wire_bytes() stays the accountant.
  [[nodiscard]] static constexpr std::size_t wire_capacity_bound(
      std::size_t n) {
    return 5 + n * (5 + sizeof(double));
  }

  /// Exact bytes pack_full() emits (varint count + delta-coded ids + raw
  /// f64 loads). This is the accounting function for network modeling;
  /// pack asserts against it.
  [[nodiscard]] std::size_t wire_bytes() const {
    return encoded_bytes(0);
  }

  /// Exact bytes pack_delta(_, since) emits.
  [[nodiscard]] std::size_t wire_bytes_delta(std::uint32_t since) const {
    return encoded_bytes(since);
  }

  /// Serialize every entry; the distributed gossip ships knowledge
  /// through real bytes so the protocol is proven serialization-clean.
  void pack_full(rt::Packer& packer) const { pack_since(packer, 0); }

  /// Serialize only the entries stamped after `since` (the delta since a
  /// forwarding event whose high-water mark was `since`).
  void pack_delta(rt::Packer& packer, std::uint32_t since) const {
    pack_since(packer, since);
  }

  /// Deserialize; inverse of pack_full/pack_delta. Received entries are
  /// stamped 1..n (wire messages carry no versions — stamps are local).
  [[nodiscard]] static Knowledge unpack(rt::Unpacker& unpacker);

  /// Deserialize into *this*, replacing its contents but reusing its
  /// capacity — the allocation-free receive path for a per-rank inbox
  /// scratch.
  void unpack_into(rt::Unpacker& unpacker);

private:
  void pack_since(rt::Packer& packer, std::uint32_t since) const;
  [[nodiscard]] std::size_t encoded_bytes(std::uint32_t since) const;

  std::vector<KnownRank> entries_;
  /// Next stamp to hand out; 0 is reserved as "before everything".
  std::uint32_t next_version_ = 1;
  /// Set when truncation actually dropped entries; consumed by
  /// take_truncated().
  bool truncated_ = false;
};

} // namespace tlb::lb
