#pragma once

/// \file knowledge.hpp
/// The partial-information state a rank accumulates during the gossip
/// stage: the set S^p of known (initially underloaded) ranks and the
/// LOAD^p() map of their last-known loads (Algorithm 1). Kept sorted by
/// rank id so merges are deterministic and lookups are O(log n).

#include <span>
#include <vector>

#include "runtime/serialize.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace tlb::lb {

/// One entry of LOAD^p(): a known peer and its last-known load.
struct KnownRank {
  RankId rank = invalid_rank;
  LoadType load = 0.0;

  friend bool operator==(KnownRank const&, KnownRank const&) = default;
};

/// Sorted-by-rank collection of known peers. Invariant: ranks strictly
/// increasing (|S^p| == |LOAD^p()| by construction, the paper's Require).
class Knowledge {
public:
  Knowledge() = default;

  /// Insert or overwrite the load for a rank.
  void insert(RankId rank, LoadType load);

  /// Merge another rank's knowledge. Existing entries keep the *incoming*
  /// load only when we did not already know the rank: a rank's own local
  /// updates (speculative transfers it directed at the peer) are fresher
  /// than gossiped initial loads.
  void merge(Knowledge const& other);

  /// Add `delta` to a known rank's load. Precondition: rank is known.
  void add_load(RankId rank, LoadType delta);

  [[nodiscard]] bool contains(RankId rank) const;
  /// Last-known load; precondition: rank is known.
  [[nodiscard]] LoadType load_of(RankId rank) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::span<KnownRank const> entries() const {
    return entries_;
  }

  void clear() { entries_.clear(); }

  /// Bound the knowledge to the `cap` entries with the lowest loads (the
  /// most attractive transfer targets), breaking load ties by rank id.
  /// cap == 0 means unlimited (no-op). Deterministic, but note that under
  /// gossip every rank then retains the *same* globally-lightest targets,
  /// which herds transfers — prefer truncate_random in protocols.
  void truncate_to(std::size_t cap);

  /// Bound the knowledge to a uniformly random `cap`-subset. This is the
  /// footnote-2 bounded-knowledge variant actually used by the gossip
  /// stage: random subsets keep per-rank target sets de-correlated (the
  /// footnote's random-graph connectivity argument), avoiding the
  /// thundering-herd failure of keeping the lightest entries everywhere.
  void truncate_random(std::size_t cap, Rng& rng);

  /// Wire size for network accounting: exactly what pack() emits per
  /// entry (the serializer ships whole KnownRank records), sans the
  /// length prefix.
  [[nodiscard]] std::size_t wire_bytes() const {
    return entries_.size() * sizeof(KnownRank);
  }

  /// Serialize into a Packer; the distributed gossip ships knowledge
  /// through real bytes so the protocol is proven serialization-clean.
  void pack(rt::Packer& packer) const;
  /// Deserialize; inverse of pack().
  [[nodiscard]] static Knowledge unpack(rt::Unpacker& unpacker);

private:
  std::vector<KnownRank> entries_;
};

} // namespace tlb::lb
