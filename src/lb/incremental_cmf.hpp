#pragma once

/// \file incremental_cmf.hpp
/// Incrementally maintained transfer CMF (the perf counterpart of Cmf).
///
/// The recompute-per-candidate change (§V-A change #3) rebuilds BUILDCMF's
/// cumulative vector for every candidate task, making the transfer stage
/// O(tasks x |S^p|). But between consecutive candidates the knowledge
/// changes in exactly one entry — the sampled recipient's speculative load
/// grows — so the distribution can be maintained instead of rebuilt:
///
///   - point update of one rank's weight w_i = 1 − LOAD(i)/l_s:  O(log n)
///   - inverse-CMF sample via Fenwick prefix search:             O(log n)
///   - full rebuild, only when the normalizer l_s shifts (modified
///     CMF with a load pushed past the current max) or when the
///     knowledge membership itself changes:                      O(n)
///
/// Sampling draws one uniform variate per call and selects the same rank a
/// freshly built Cmf over the same knowledge would select, up to
/// floating-point rounding at bucket boundaries (the Fenwick prefix sums
/// associate additions differently than Cmf's left-to-right scan; the
/// discrepancy window per boundary is a few ulp).

#include <span>
#include <vector>

#include "lb/fenwick.hpp"
#include "lb/knowledge.hpp"
#include "lb/lb_types.hpp"
#include "support/rng.hpp"

namespace tlb::lb {

class IncrementalCmf {
public:
  /// Build from the current knowledge in O(n). `self` is excluded (a rank
  /// never transfers to itself).
  IncrementalCmf(CmfKind kind, std::span<KnownRank const> known,
                 LoadType l_ave, RankId self);

  /// Re-adopt a knowledge snapshot whose membership changed (insert /
  /// truncate between epochs). O(n).
  void rebuild(std::span<KnownRank const> known);

  /// Mirror Knowledge::add_load for a tracked rank: O(log n) point update,
  /// escalating to an O(n) weight rebuild only when the modified-CMF
  /// normalizer l_s = max(l_ave, max LOAD^p) shifts. Precondition: `rank`
  /// is tracked (known and not self).
  void add_load(RankId rank, LoadType delta);

  /// True when no tracked rank has positive headroom (sampling impossible).
  [[nodiscard]] bool empty() const { return positive_ == 0; }

  /// Number of tracked (non-self) knowledge entries, sampleable or not.
  [[nodiscard]] std::size_t size() const { return ranks_.size(); }
  /// Number of entries with positive sampling weight.
  [[nodiscard]] std::size_t sampleable() const { return positive_; }

  [[nodiscard]] bool contains(RankId rank) const;

  /// Sample a recipient rank; precondition: !empty(). O(log n).
  [[nodiscard]] RankId sample(Rng& rng) const;

  /// Probability currently assigned to `rank` (0 for untracked or
  /// fully-loaded ranks). For tests and cross-validation against Cmf.
  [[nodiscard]] double probability_of(RankId rank) const;

  /// The normalizer l_s currently in effect.
  [[nodiscard]] LoadType normalizer() const { return l_s_; }

  /// Number of O(n) weight rebuilds since construction (normalizer shifts
  /// and explicit rebuild() calls); observability for tests and benches.
  [[nodiscard]] std::size_t rebuild_count() const { return rebuilds_; }

  /// Invariant auditor entry point (no-op unless the audit build is
  /// active): shadow-recompute every weight from the tracked loads and the
  /// normalizer and check the Fenwick tree, the positive-count cache, and
  /// the normalizer bounds against them. Called automatically after every
  /// add_load/rebuild in audit builds; public so tests can invoke it after
  /// a scripted update sequence.
  void audit_consistency() const;

private:
  /// Recompute l_s from the tracked loads and refill every weight. O(n).
  void rebuild_weights();
  [[nodiscard]] std::size_t index_of(RankId rank) const;
  [[nodiscard]] double weight_of(LoadType load) const;

  CmfKind kind_ = CmfKind::original;
  RankId self_ = invalid_rank;
  LoadType l_ave_ = 0.0;
  LoadType l_s_ = 0.0;
  std::vector<RankId> ranks_;    // sorted by rank id (knowledge order)
  std::vector<LoadType> loads_;  // last-known load per tracked rank
  std::vector<double> weights_;  // max(0, 1 - load/l_s) per tracked rank
  FenwickTree tree_;
  std::size_t positive_ = 0; // count of weights_ entries > 0
  std::size_t rebuilds_ = 0;
};

} // namespace tlb::lb
