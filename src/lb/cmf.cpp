#include "lb/cmf.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/check.hpp"

namespace tlb::lb {

void audit_cmf_prefix(std::span<double const> prefix) {
  TLB_AUDIT_BLOCK {
    double prev = 0.0;
    bool monotone = true;
    bool in_range = true;
    for (double const c : prefix) {
      monotone = monotone && c >= prev;
      in_range = in_range && c > 0.0 && c <= 1.0;
      prev = c;
    }
    TLB_INVARIANT(monotone, "CMF prefix monotone non-decreasing");
    TLB_INVARIANT(in_range, "CMF prefix entries within (0, 1]");
    TLB_INVARIANT(prefix.empty() || prefix.back() == 1.0,
                  "CMF last bucket pinned to exactly 1");
  }
}

void audit_cmf(Cmf const& cmf, CmfKind kind, std::span<KnownRank const> known,
               LoadType l_ave, RankId self) {
  TLB_AUDIT_BLOCK {
    audit_cmf_prefix(cmf.cumulative_);
    TLB_INVARIANT(cmf.ranks_.size() == cmf.cumulative_.size(),
                  "CMF rank/prefix vectors same length");
    bool excludes_self = true;
    for (RankId const r : cmf.ranks_) {
      excludes_self = excludes_self && r != self;
    }
    TLB_INVARIANT(excludes_self, "CMF never samples the sending rank");
    if (kind == CmfKind::original) {
      TLB_INVARIANT(cmf.l_s_ == l_ave, "original CMF normalizer is l_ave");
    } else {
      // Modified kind: l_s = max(l_ave, max known non-self load), so every
      // sampleable weight 1 − load/l_s stays non-negative (§V-C change #5).
      TLB_INVARIANT(cmf.l_s_ >= l_ave, "modified CMF normalizer >= l_ave");
      bool bounds_loads = true;
      for (KnownRank const& e : known) {
        if (e.rank != self) {
          bounds_loads = bounds_loads && cmf.l_s_ >= e.load;
        }
      }
      TLB_INVARIANT(bounds_loads,
                    "modified CMF normalizer >= max sampled load");
    }
  }
}

Cmf::Cmf(CmfKind kind, std::span<KnownRank const> known, LoadType l_ave,
         RankId self) {
  l_s_ = l_ave;
  if (kind == CmfKind::modified) {
    for (KnownRank const& e : known) {
      if (e.rank != self) {
        l_s_ = std::max(l_s_, e.load);
      }
    }
  }
  if (l_s_ <= 0.0) {
    audit_cmf(*this, kind, known, l_ave, self);
    return; // degenerate: no positive normalizer, nothing sampleable
  }

  double z = 0.0;
  ranks_.reserve(known.size());
  cumulative_.reserve(known.size());
  for (KnownRank const& e : known) {
    if (e.rank == self) {
      continue;
    }
    double const w = 1.0 - e.load / l_s_;
    if (w <= 0.0) {
      continue; // fully loaded (or beyond): never a recipient
    }
    z += w;
    ranks_.push_back(e.rank);
    cumulative_.push_back(z);
  }
  if (z <= 0.0) {
    ranks_.clear();
    cumulative_.clear();
    audit_cmf(*this, kind, known, l_ave, self);
    return;
  }
  for (double& c : cumulative_) {
    c /= z;
  }
  cumulative_.back() = 1.0; // guard against rounding in the last bucket
  audit_cmf(*this, kind, known, l_ave, self);
}

RankId Cmf::sample(Rng& rng) const {
  TLB_EXPECTS(!empty());
  double const u = rng.uniform();
  auto const it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  auto const idx = std::min<std::size_t>(
      static_cast<std::size_t>(it - cumulative_.begin()),
      cumulative_.size() - 1);
  return ranks_[idx];
}

double Cmf::probability(std::size_t i) const {
  TLB_EXPECTS(i < cumulative_.size());
  return i == 0 ? cumulative_[0] : cumulative_[i] - cumulative_[i - 1];
}

RankId Cmf::rank_at(std::size_t i) const {
  TLB_EXPECTS(i < ranks_.size());
  return ranks_[i];
}

} // namespace tlb::lb
