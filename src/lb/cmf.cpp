#include "lb/cmf.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace tlb::lb {

Cmf::Cmf(CmfKind kind, std::span<KnownRank const> known, LoadType l_ave,
         RankId self) {
  l_s_ = l_ave;
  if (kind == CmfKind::modified) {
    for (KnownRank const& e : known) {
      if (e.rank != self) {
        l_s_ = std::max(l_s_, e.load);
      }
    }
  }
  if (l_s_ <= 0.0) {
    return; // degenerate: no positive normalizer, nothing sampleable
  }

  double z = 0.0;
  ranks_.reserve(known.size());
  cumulative_.reserve(known.size());
  for (KnownRank const& e : known) {
    if (e.rank == self) {
      continue;
    }
    double const w = 1.0 - e.load / l_s_;
    if (w <= 0.0) {
      continue; // fully loaded (or beyond): never a recipient
    }
    z += w;
    ranks_.push_back(e.rank);
    cumulative_.push_back(z);
  }
  if (z <= 0.0) {
    ranks_.clear();
    cumulative_.clear();
    return;
  }
  for (double& c : cumulative_) {
    c /= z;
  }
  cumulative_.back() = 1.0; // guard against rounding in the last bucket
}

RankId Cmf::sample(Rng& rng) const {
  TLB_EXPECTS(!empty());
  double const u = rng.uniform();
  auto const it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  auto const idx = std::min<std::size_t>(
      static_cast<std::size_t>(it - cumulative_.begin()),
      cumulative_.size() - 1);
  return ranks_[idx];
}

double Cmf::probability(std::size_t i) const {
  TLB_EXPECTS(i < cumulative_.size());
  return i == 0 ? cumulative_[0] : cumulative_[i] - cumulative_[i - 1];
}

RankId Cmf::rank_at(std::size_t i) const {
  TLB_EXPECTS(i < ranks_.size());
  return ranks_[i];
}

} // namespace tlb::lb
