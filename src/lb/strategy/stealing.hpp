#pragma once

/// \file stealing.hpp
/// StealingLB: pull-based randomized work redistribution, the
/// distributed-memory work-stealing baseline of the paper's related work
/// (Dinan et al. [21], Lifflander et al. [22]). Underloaded ranks send
/// steal requests to uniformly random victims over a fixed number of
/// rounds; a victim above the average surrenders tasks down to the
/// average (lightest-first, so the thief rarely overshoots). Pull-based
/// transfer is the dual of the gossip scheme's push-based placement: no
/// global information is gathered at all, trading placement quality for
/// simplicity.

#include "lb/strategy/strategy.hpp"

namespace tlb::lb {

class StealingStrategy final : public Strategy {
public:
  /// \param rounds Steal rounds; each round every still-underloaded rank
  ///        issues one random request.
  explicit StealingStrategy(int rounds = 16) : rounds_{rounds} {}

  [[nodiscard]] std::string_view name() const override { return "stealing"; }

  [[nodiscard]] StrategyResult balance(rt::Runtime& rt,
                                       StrategyInput const& input,
                                       LbParams const& params) override;

private:
  int rounds_;
};

} // namespace tlb::lb
