#include "lb/strategy/baselines.hpp"

#include "support/assert.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace tlb::lb {

namespace {

void finalize(StrategyResult& result, StrategyInput const& input) {
  result.new_rank_loads = project_loads(input, result.migrations);
  result.achieved_imbalance = imbalance(result.new_rank_loads);
  result.cost.migration_count = result.migrations.size();
  for (Migration const& m : result.migrations) {
    result.cost.migrated_load += m.load;
  }
}

} // namespace

StrategyResult RotateStrategy::balance(rt::Runtime& rt,
                                       StrategyInput const& input,
                                       LbParams const& /*params*/) {
  auto const p = input.num_ranks();
  TLB_EXPECTS(p == rt.num_ranks());
  StrategyResult result;
  for (RankId r = 0; r < p; ++r) {
    RankId const to = (r + 1) % p;
    for (TaskEntry const& t : input.tasks[static_cast<std::size_t>(r)]) {
      if (to != r) {
        result.migrations.push_back(Migration{t.id, r, to, t.load});
      }
    }
  }
  finalize(result, input);
  return result;
}

StrategyResult RandomStrategy::balance(rt::Runtime& rt,
                                       StrategyInput const& input,
                                       LbParams const& params) {
  auto const p = input.num_ranks();
  TLB_EXPECTS(p == rt.num_ranks());
  Rng rng{params.seed};
  StrategyResult result;
  for (RankId r = 0; r < p; ++r) {
    for (TaskEntry const& t : input.tasks[static_cast<std::size_t>(r)]) {
      auto const to = static_cast<RankId>(
          rng.uniform_below(static_cast<std::uint64_t>(p)));
      if (to != r) {
        result.migrations.push_back(Migration{t.id, r, to, t.load});
      }
    }
  }
  finalize(result, input);
  return result;
}

} // namespace tlb::lb
