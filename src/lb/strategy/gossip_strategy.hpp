#pragma once

/// \file gossip_strategy.hpp
/// The distributed gossip balancer (GrapevineLB / TemperedLB) running over
/// the AMT runtime with real active messages:
///
///   1. allreduce of per-rank loads -> l_ave, l_max (constant-size stats);
///   2. per trial, per iteration: an inform epoch (Algorithm 1) whose
///      gossip messages carry each sender's knowledge snapshot, followed by
///      a local transfer pass (Algorithm 2) on every overloaded rank and
///      notification messages that carry proposed (speculative) task
///      arrivals to their recipients;
///   3. an allreduce evaluating the proposed imbalance (Algorithm 3 line 9);
///      the best state across all trials and iterations wins;
///   4. the winning speculative placement is converted into real
///      migrations (origin -> final rank, collapsing multi-hop proposals).
///
/// GrapevineLB is the same machinery restricted to the original design
/// point: one trial, one iteration, original criterion and CMF built once,
/// arbitrary order, and unconditional acceptance of the outcome.
///
/// tempered_fast is TemperedLB with the Fenwick-backed incremental CMF
/// (CmfRefresh::incremental) pinned: identical protocol and criterion, the
/// per-candidate CMF maintenance drops from O(|S^p|) to O(log |S^p|). The
/// plain tempered flavor keeps recompute as the reference path for
/// cross-validation.

#include "lb/knowledge.hpp"
#include "lb/strategy/strategy.hpp"

namespace tlb::lb {

class GossipStrategy final : public Strategy {
public:
  enum class Flavor { grapevine, tempered, tempered_fast };

  explicit GossipStrategy(Flavor flavor) : flavor_{flavor} {}

  [[nodiscard]] std::string_view name() const override {
    switch (flavor_) {
    case Flavor::grapevine: return "grapevine";
    case Flavor::tempered: return "tempered";
    case Flavor::tempered_fast: return "tempered_fast";
    }
    return "?";
  }

  [[nodiscard]] StrategyResult balance(rt::Runtime& rt,
                                       StrategyInput const& input,
                                       LbParams const& params) override;

private:
  Flavor flavor_;
};

} // namespace tlb::lb
