#pragma once

/// \file diffusion.hpp
/// DiffusionLB: the classical neighborhood-diffusion balancer (Cybenko
/// 1989), representing the pre-gossip generation of fully distributed
/// schemes the paper's §IV-A characterizes as having "limited efficacy due
/// to a lack of information". Each rank repeatedly compares its load with
/// its ring neighbors and ships tasks toward the lighter side. Local-only
/// knowledge means load spreads one hop per sweep — O(P) sweeps to cross
/// the machine versus gossip's O(log P) rounds, which is exactly the
/// contrast the gossip approach was invented to fix.

#include "lb/strategy/strategy.hpp"

namespace tlb::lb {

class DiffusionStrategy final : public Strategy {
public:
  /// \param sweeps Number of neighbor-exchange sweeps; defaults to a
  ///        small constant (classical diffusion runs a few sweeps per LB
  ///        invocation and relies on repeated invocations).
  explicit DiffusionStrategy(int sweeps = 8) : sweeps_{sweeps} {}

  [[nodiscard]] std::string_view name() const override {
    return "diffusion";
  }

  [[nodiscard]] StrategyResult balance(rt::Runtime& rt,
                                       StrategyInput const& input,
                                       LbParams const& params) override;

private:
  int sweeps_;
};

} // namespace tlb::lb
