#pragma once

/// \file inform_plane.hpp
/// The distributed inform stage of Algorithm 1, factored out of the
/// gossip strategy as its own protocol plane: per-rank knowledge, the
/// round-gated forwarding cascade, and the delta-encoded wire format.
///
/// Three properties define the plane (see DESIGN.md "Gossip wire plane"):
///
/// 1. *Versioned deltas.* Each rank tracks a high-water mark over its
///    knowledge's version stamps, advanced at every forwarding event; in
///    GossipWire::delta mode a forward ships only entries stamped above
///    the mark. The first forward of an epoch and any forward after a
///    truncation ship a full snapshot instead (the recovery rule).
///
/// 2. *A per-epoch overlay on a dedicated RNG stream.* Each rank draws
///    its f gossip peers once per epoch from
///    Rng{seed}.split(kGossipStreamTag).split(rank) — never from the
///    rank's main runtime stream — and every forwarding event of the
///    epoch fans out to that same set. Fixing the overlay makes the
///    delta wire *exactly* equivalent to full resend: every peer
///    receives the sender's whole forward sequence, so the contiguous
///    deltas (full snapshot first, deltas after) union to precisely the
///    full-resend payloads edge by edge, and per-rank knowledge is
///    identical under both modes at every protocol step (pinned by the
///    equivalence tests; the footnote-2 cap breaks the induction and is
///    the documented exception). The overlay also keeps routing
///    knowledge-independent and the transfer/CMF stream untouched.
///
/// 3. *Zero steady-state allocation.* Payloads are serialized into
///    pooled, refcount-recycled buffers (rt::SnapshotPool) by a
///    scratch-mode Packer; receives deserialize into a per-rank inbox
///    scratch and merge in place. After warm-up, inform epochs perform no
///    heap allocations (pinned by the allocation-counter test).
///
/// Thread-confinement (PR 7 discipline): each Slot is mutated only by
/// handlers executing on its own rank, so no slot field needs locking or
/// capability annotations; the SnapshotPool's in-flight refcounts are the
/// only cross-rank traffic and shared_ptr refcounting is atomic.

#include <cstdint>
#include <memory>
#include <vector>

#include "lb/knowledge.hpp"
#include "lb/lb_types.hpp"
#include "runtime/runtime.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace tlb::obs {
class LbReportBuilder;
}

namespace tlb::lb {

/// Stream tag for the gossip plane's RNG split (far outside the per-rank
/// tag space 0..P-1, like rt::kFaultStreamTag).
inline constexpr std::uint64_t kGossipStreamTag = 0x6055'0000'0000'0001ull;

/// One inform plane serves every epoch of one balance() invocation.
/// shared_from_this lets forwarding closures keep the plane alive for the
/// lifetime of in-flight messages while staying within the runtime's
/// inline-handler budget (self + snapshot + bytes = 40 of 64 bytes).
class InformPlane : public std::enable_shared_from_this<InformPlane> {
public:
  InformPlane(RankId num_ranks, std::uint64_t root_seed, GossipWire wire,
              int fanout, int rounds, std::size_t max_knowledge,
              obs::LbReportBuilder* report);

  /// Driver-side, at a quiescent point: wipe per-rank knowledge and
  /// forwarding state for the next inform epoch. Capacities (entry
  /// vectors, snapshot buffers) survive, so epochs after the first do not
  /// allocate. RNG streams deliberately run on across epochs, matching
  /// how the per-rank runtime streams behave.
  void reset_epoch();

  /// Handler-side, on an underloaded rank: adopt own (rank, load) into
  /// the knowledge and start the cascade (Algorithm 1 lines 9-12).
  void seed_and_forward(rt::RankContext& ctx, LoadType load);

  /// The rank's accumulated knowledge; mutable because the transfer pass
  /// applies speculative load updates through it (run_transfer).
  [[nodiscard]] Knowledge& knowledge_of(RankId rank) {
    return slots_[static_cast<std::size_t>(rank)].knowledge;
  }

private:
  /// Worst-case bytes the plane prepends to a packed knowledge payload:
  /// a round-number varint (10 bytes covers any u64) plus the full/delta
  /// flag byte. Used to size pooled buffers so packing never reallocates.
  static constexpr std::size_t kHeaderBound = 11;

  /// Per-rank protocol state; mutated only by handlers on its own rank.
  struct Slot {
    Knowledge knowledge;
    /// Deserialization scratch: receives unpack here, then merge.
    Knowledge inbox;
    /// Serialized-payload pool for this rank's forwarding events.
    rt::SnapshotPool pool;
    /// Dedicated gossip RNG (see file comment, property 2).
    Rng rng;
    /// The epoch's fixed peer set (the random f-out overlay); every
    /// forwarding event fans out to exactly these ranks.
    std::vector<RankId> peers;
    std::uint64_t forwarded = 0; ///< bitmask of rounds already forwarded
    /// Version high-water mark of the last forwarding event.
    std::uint32_t hwm = 0;
    /// First forward of the epoch must ship a full snapshot.
    bool need_full = true;
  };

  /// One forwarding event: serialize once (full or delta), fan out f
  /// messages sharing the pooled buffer.
  void forward(rt::RankContext& ctx, int next_round);

  /// Delivery of one gossip message on the destination rank.
  void receive(rt::RankContext& ctx,
               std::shared_ptr<rt::SnapshotPool::Slot> const& snap,
               std::size_t bytes);

  std::vector<Slot> slots_;
  GossipWire wire_;
  int fanout_;
  int rounds_;
  std::size_t max_knowledge_; ///< 0 = unlimited (footnote-2 cap)
  obs::LbReportBuilder* report_; ///< optional introspection sink
};

} // namespace tlb::lb
