#include "lb/strategy/gossip_strategy.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>

#include "lb/strategy/inform_plane.hpp"
#include "lb/transfer.hpp"
#include "obs/lb_report.hpp"
#include "obs/tracer.hpp"
#include "runtime/collectives.hpp"
#include "support/assert.hpp"
#include "support/check.hpp"
#include "support/seq_outcome_map.hpp"
#include "support/stats.hpp"

namespace tlb::lb {

namespace {

/// A task in the speculative (proposed) placement: where it physically
/// lives (`origin`) versus where the proposal currently puts it.
struct SpecTask {
  TaskId id = invalid_task;
  LoadType load = 0.0;
  RankId origin = invalid_rank;
};

/// Per-rank protocol state for one iteration sequence. Each slot is only
/// mutated by handlers executing on its own rank. The inform-stage state
/// (knowledge, forwarding bitmask) lives in the InformPlane.
struct RankState {
  LoadType load = 0.0;
  std::vector<SpecTask> tasks;
};

struct Shared {
  std::vector<RankState> states;
  /// The inform stage: per-rank knowledge, forwarding cascade, and the
  /// delta-encoded wire plane (see inform_plane.hpp).
  std::shared_ptr<InformPlane> inform;
  bool use_nacks = false;
  LoadType l_ave = 0.0;
  /// Transfer-pass threshold h (params.threshold), hoisted here so the
  /// post_all closures read it through `shared` instead of capturing it.
  double threshold = 0.0;
  /// Full parameter block for run_transfer. Kept in the shared block for
  /// the same reason: capturing LbParams by value (48 bytes) pushed the
  /// transfer-pass closure past the envelope's inline capacity and onto
  /// the heap-fallback path, one allocation per rank per iteration.
  LbParams params;
  obs::LbReportBuilder* report = nullptr; ///< optional introspection sink
};

/// Resilient transfer-epoch state (only used when the runtime has an
/// active fault plane). Each speculative task move becomes a
/// sequence-numbered Proposal held by its origin until the destination's
/// accept/reject acknowledgement arrives; unacknowledged proposals are
/// retried with exponential backoff and reconciled against the receivers'
/// dedup tables once the retry budget runs out, so a task is never lost
/// and never applied twice no matter which leg of the handshake the
/// network eats.
struct ResilientXfer {
  struct Proposal {
    std::uint64_t seq = 0;
    SpecTask task;
    RankId from = invalid_rank;
    RankId to = invalid_rank;
    int attempts = 0;
    // `resolved`/`accepted` are written by the origin rank's ack handler
    // (or the driver at a quiescent point); `seen` entries only by each
    // destination's handlers. Distinct locations per writer: no races.
    char resolved = 0;
    char accepted = 0;
  };
  /// outbox[r] — proposals originated by rank r. Filled once by rank r's
  /// transfer-pass handler before any send references them; never resized
  /// afterwards, so Proposal pointers stay stable across retries.
  std::vector<std::vector<Proposal>> outbox;
  /// seen[r] — seq → accepted outcome for every proposal rank r has
  /// decided. The receiver-side dedup table: a duplicated or retried
  /// proposal replays the recorded outcome instead of re-applying. A flat
  /// open-addressing table — the find on every delivery attempt is the
  /// fault path's hottest lookup.
  std::vector<SeqOutcomeMap> seen;

  explicit ResilientXfer(RankId p)
      : outbox(static_cast<std::size_t>(p)),
        seen(static_cast<std::size_t>(p)) {}
};

constexpr std::size_t kProposalBytes = sizeof(SpecTask) + sizeof(std::uint64_t);
constexpr std::size_t kAckBytes = sizeof(std::uint64_t) + 1;

/// One delivery attempt of `prop` from the origin rank's context. The
/// destination decides (or replays) the outcome and acknowledges; the
/// origin applies a rejection by taking the task back.
void send_proposal(std::shared_ptr<Shared> const& shared,
                   std::shared_ptr<ResilientXfer> const& rx,
                   rt::RankContext& ctx, ResilientXfer::Proposal* prop) {
  ctx.send(
      prop->to, kProposalBytes,
      [shared, rx, prop](rt::RankContext& dest) {
        auto& decided = rx->seen[static_cast<std::size_t>(dest.rank())];
        char const* const known = decided.find(prop->seq);
        char accepted;
        if (known != nullptr) {
          accepted = *known; // duplicate: replay, don't re-apply
        } else {
          auto& dst = shared->states[static_cast<std::size_t>(dest.rank())];
          if (shared->use_nacks &&
              dst.load + prop->task.load > shared->l_ave) {
            if (shared->report != nullptr) {
              shared->report->on_nack();
            }
            accepted = 0;
          } else {
            dst.tasks.push_back(prop->task);
            dst.load += prop->task.load;
            accepted = 1;
          }
          decided.insert(prop->seq, accepted);
        }
        dest.send(
            prop->from, kAckBytes,
            [shared, prop, accepted](rt::RankContext& back) {
              if (prop->resolved != 0) {
                return; // duplicated ack: already settled
              }
              prop->resolved = 1;
              prop->accepted = accepted;
              if (accepted == 0) {
                auto& src =
                    shared->states[static_cast<std::size_t>(back.rank())];
                src.tasks.push_back(prop->task);
                src.load += prop->task.load;
              }
            },
            rt::MessageKind::transfer);
      },
      rt::MessageKind::transfer);
}

} // namespace

StrategyResult GossipStrategy::balance(rt::Runtime& rt,
                                       StrategyInput const& input,
                                       LbParams const& caller_params) {
  auto const p = input.num_ranks();
  TLB_EXPECTS(p == rt.num_ranks());
  TLB_EXPECTS(p > 0);

  // The flavor pins the algorithmic switches; numeric knobs (fanout,
  // rounds, threshold, seed) always come from the caller.
  LbParams params = caller_params;
  bool accept_always = false;
  if (flavor_ == Flavor::grapevine) {
    LbParams const base = LbParams::grapevine();
    params.criterion = base.criterion;
    params.cmf = base.cmf;
    params.refresh = base.refresh;
    params.order = base.order;
    params.num_iterations = base.num_iterations;
    params.num_trials = base.num_trials;
    accept_always = true;
  } else if (flavor_ == Flavor::tempered_fast) {
    params.refresh = CmfRefresh::incremental;
  }
  TLB_EXPECTS(params.rounds >= 1 && params.rounds <= 63);

  TLB_SPAN_ARG("lb", "balance", "ranks", p);
  // Resilient mode engages only when a fault plane is live: fault-free
  // runs keep the legacy message patterns bit-for-bit (goldens depend on
  // the exact send sequence each rank's RNG stream sees).
  bool const resilient = rt.fault_active();
  rt::RetryPolicy const& retry = rt.config().retry;
  auto const stats_before = rt.stats();

  // Stage 0: constant-size statistics reduction (l_max, l_ave).
  auto const initial_loads = input.rank_loads();
  bool stats_complete = true;
  auto const stat =
      rt::allreduce_loads(rt, initial_loads,
                          resilient ? &stats_complete : nullptr)[0];
  LoadType const l_ave = stat.average();

  StrategyResult result;
  result.new_rank_loads = initial_loads;
  result.achieved_imbalance =
      l_ave > 0.0 ? stat.max / l_ave - 1.0 : 0.0;
  if (!stats_complete) {
    // The statistics reduction never reached some rank (lost or crashed
    // reduction link): without trustworthy l_ave there is no round to
    // run. Fall back to the current (last good) task→rank mapping.
    result.aborted_rounds = 1;
    result.achieved_imbalance = 0.0;
    auto const stats_after_abort = rt.stats();
    result.cost.lb_messages =
        stats_after_abort.messages - stats_before.messages;
    result.cost.lb_bytes = stats_after_abort.bytes - stats_before.bytes;
    return result;
  }
  if (l_ave <= 0.0) {
    return result; // empty system: nothing to balance
  }

  if (introspection_ != nullptr) {
    introspection_->set_strategy(std::string{name()});
    introspection_->set_threshold(params.threshold);
    introspection_->set_initial_imbalance(result.achieved_imbalance);
  }

  auto shared = std::make_shared<Shared>();
  shared->inform = std::make_shared<InformPlane>(
      p, params.seed, params.gossip_wire, params.fanout, params.rounds,
      static_cast<std::size_t>(std::max(0, params.max_knowledge)),
      introspection_);
  shared->use_nacks = params.use_nacks;
  shared->l_ave = l_ave;
  shared->threshold = params.threshold;
  shared->params = params;
  shared->report = introspection_;
  shared->states.resize(static_cast<std::size_t>(p));

  auto reset_states = [&] {
    for (RankId r = 0; r < p; ++r) {
      auto& st = shared->states[static_cast<std::size_t>(r)];
      st.load = initial_loads[static_cast<std::size_t>(r)];
      st.tasks.clear();
      st.tasks.reserve(input.tasks[static_cast<std::size_t>(r)].size());
      for (TaskEntry const& t : input.tasks[static_cast<std::size_t>(r)]) {
        st.tasks.push_back(SpecTask{t.id, t.load, r});
      }
    }
  };

  double best_imbalance = result.achieved_imbalance;
  bool have_best = false;
  std::vector<std::vector<SpecTask>> best_snapshot;

  for (int trial = 0; trial < params.num_trials; ++trial) {
    TLB_SPAN_ARG("lb", "trial", "trial", trial);
    reset_states();

    for (int iter = 1; iter <= params.num_iterations; ++iter) {
      // Valid until a liveness timeout or incomplete reduction proves
      // otherwise; an invalid epoch aborts the whole trial and the commit
      // falls back to the last good snapshot.
      bool epoch_valid = true;

      // --- Inform epoch (Algorithm 1): seed from underloaded ranks. ---
      {
        TLB_SPAN_ARG("lb", "inform", "iter", iter);
        shared->inform->reset_epoch();
        rt.post_all([shared, l_ave](rt::RankContext& ctx) {
          auto& st = shared->states[static_cast<std::size_t>(ctx.rank())];
          if (st.load < l_ave) {
            shared->inform->seed_and_forward(ctx, st.load);
          }
        });
        // Gossip tolerates loss (knowledge just stays partial), but a
        // liveness timeout here means the epoch never settled.
        epoch_valid = rt.run_until_quiescent() && epoch_valid;
      }

      // --- Transfer pass (Algorithm 2) on every overloaded rank; the
      // accepted proposals are *notification* messages: the task payload
      // does not move until the best state is committed. ---
      if (!resilient) {
        TLB_SPAN_ARG("lb", "transfer", "iter", iter);
        rt.post_all([shared](rt::RankContext& ctx) {
          auto& st = shared->states[static_cast<std::size_t>(ctx.rank())];
          if (st.load <= shared->threshold * shared->l_ave) {
            return;
          }
          std::vector<TaskEntry> entries;
          entries.reserve(st.tasks.size());
          for (SpecTask const& t : st.tasks) {
            entries.push_back({t.id, t.load});
          }
          auto const transfer =
              run_transfer(shared->params, ctx.rank(), entries, st.load,
                           shared->l_ave,
                           shared->inform->knowledge_of(ctx.rank()),
                           ctx.rng());
          if (shared->report != nullptr) {
            shared->report->on_transfer_pass(transfer.accepted,
                                             transfer.rejected,
                                             transfer.no_target,
                                             transfer.cmf_rebuilds);
          }
          st.load = transfer.final_load;
          for (Migration const& m : transfer.migrations) {
            auto const it = std::find_if(
                st.tasks.begin(), st.tasks.end(),
                [&](SpecTask const& t) { return t.id == m.task; });
            TLB_ASSERT(it != st.tasks.end());
            SpecTask moved = *it;
            st.tasks.erase(it);
            RankId const sender = ctx.rank();
            ctx.send(
                m.to, sizeof(SpecTask),
                [shared, moved, sender](rt::RankContext& dest) {
                  auto& dst =
                      shared->states[static_cast<std::size_t>(dest.rank())];
                  // Menon-style negative acknowledgement (optional):
                  // refuse proposals that would push this rank past the
                  // average, bouncing the task back to its sender.
                  if (shared->use_nacks &&
                      dst.load + moved.load > shared->l_ave) {
                    if (shared->report != nullptr) {
                      shared->report->on_nack();
                    }
                    dest.send(
                        sender, sizeof(SpecTask),
                        [shared, moved](rt::RankContext& back) {
                          auto& src = shared->states[static_cast<std::size_t>(
                              back.rank())];
                          src.tasks.push_back(moved);
                          src.load += moved.load;
                        },
                        rt::MessageKind::transfer);
                    return;
                  }
                  dst.tasks.push_back(moved);
                  dst.load += moved.load;
                },
                rt::MessageKind::transfer);
          }
        });
        rt.run_until_quiescent();
      } else {
        // --- Resilient transfer epoch: every speculative move is a
        // sequence-numbered proposal that the origin holds until the
        // destination's accept/reject ack lands; lost legs are retried
        // with exponential backoff and survivors reconciled against the
        // receivers' dedup tables, so the proposed placement conserves
        // tasks under arbitrary drop/duplicate/delay injection. ---
        TLB_SPAN_ARG("lb", "transfer", "iter", iter);
        auto rx = std::make_shared<ResilientXfer>(p);
        rt.post_all([shared, rx](rt::RankContext& ctx) {
          auto& st = shared->states[static_cast<std::size_t>(ctx.rank())];
          if (st.load <= shared->threshold * shared->l_ave) {
            return;
          }
          std::vector<TaskEntry> entries;
          entries.reserve(st.tasks.size());
          for (SpecTask const& t : st.tasks) {
            entries.push_back({t.id, t.load});
          }
          auto const transfer =
              run_transfer(shared->params, ctx.rank(), entries, st.load,
                           shared->l_ave,
                           shared->inform->knowledge_of(ctx.rank()),
                           ctx.rng());
          if (shared->report != nullptr) {
            shared->report->on_transfer_pass(transfer.accepted,
                                             transfer.rejected,
                                             transfer.no_target,
                                             transfer.cmf_rebuilds);
          }
          st.load = transfer.final_load;
          auto& outbox = rx->outbox[static_cast<std::size_t>(ctx.rank())];
          outbox.reserve(transfer.migrations.size());
          for (Migration const& m : transfer.migrations) {
            auto const it = std::find_if(
                st.tasks.begin(), st.tasks.end(),
                [&](SpecTask const& t) { return t.id == m.task; });
            TLB_ASSERT(it != st.tasks.end());
            ResilientXfer::Proposal prop;
            prop.seq = (static_cast<std::uint64_t>(ctx.rank()) << 32) |
                       outbox.size();
            prop.task = *it;
            prop.from = ctx.rank();
            prop.to = m.to;
            prop.attempts = 1;
            st.tasks.erase(it);
            outbox.push_back(prop);
          }
          // Send only after the outbox is fully built: handlers capture
          // pointers into it, so it must never grow again.
          for (auto& pending : outbox) {
            send_proposal(shared, rx, ctx, &pending);
          }
        });
        epoch_valid = rt.run_until_quiescent() && epoch_valid;

        // Timeout = quiescence with the ack missing: that leg of the
        // handshake was provably lost. Retry with exponential backoff
        // until resolved or the attempt budget runs out.
        int const max_attempts =
            retry.max_attempts > 0 ? retry.max_attempts : 1;
        for (;;) {
          bool retried = false;
          for (auto& outbox : rx->outbox) {
            for (auto& prop : outbox) {
              if (prop.resolved != 0 || prop.attempts >= max_attempts) {
                continue;
              }
              std::uint64_t backoff =
                  retry.backoff_base_polls
                  << (static_cast<unsigned>(prop.attempts) - 1u);
              if (backoff > retry.max_backoff_polls) {
                backoff = retry.max_backoff_polls;
              }
              ++prop.attempts;
              rt.record_retry(rt::MessageKind::transfer);
              ResilientXfer::Proposal* pending = &prop;
              rt.post_delayed(
                  prop.from,
                  [shared, rx, pending](rt::RankContext& ctx) {
                    send_proposal(shared, rx, ctx, pending);
                  },
                  backoff, 0, rt::MessageKind::transfer);
              retried = true;
            }
          }
          if (!retried) {
            break;
          }
          epoch_valid = rt.run_until_quiescent() && epoch_valid;
        }

        // Reconcile exhausted proposals at this quiescent point. The
        // receiver's dedup table is ground truth: an entry means the
        // proposal was applied (or rejected) and only the ack was lost;
        // no entry means no delivery ever landed. Either way the origin
        // takes back anything that is not provably accepted.
        for (auto& outbox : rx->outbox) {
          for (auto& prop : outbox) {
            if (prop.resolved != 0) {
              continue;
            }
            auto const& decided =
                rx->seen[static_cast<std::size_t>(prop.to)];
            char const* const outcome = decided.find(prop.seq);
            bool const applied = outcome != nullptr && *outcome != 0;
            prop.resolved = 1;
            prop.accepted = applied ? 1 : 0;
            if (!applied) {
              auto& src =
                  shared->states[static_cast<std::size_t>(prop.from)];
              src.tasks.push_back(prop.task);
              src.load += prop.task.load;
            }
          }
        }
      }

      TLB_AUDIT_BLOCK {
        // Speculative transfers (and NACK bounces) only relocate tasks:
        // once the notification traffic quiesces, the proposed placement
        // must hold exactly the input's tasks and exactly its total load.
        std::size_t spec_tasks = 0;
        double spec_total = 0.0;
        std::size_t input_tasks = 0;
        double input_total = 0.0;
        for (RankId r = 0; r < p; ++r) {
          auto const& st = shared->states[static_cast<std::size_t>(r)];
          spec_tasks += st.tasks.size();
          spec_total += st.load;
          input_tasks += input.tasks[static_cast<std::size_t>(r)].size();
          input_total += initial_loads[static_cast<std::size_t>(r)];
        }
        TLB_INVARIANT(spec_tasks == input_tasks,
                      "speculative placement conserves the task count");
        TLB_INVARIANT(std::abs(spec_total - input_total) <=
                          1e-9 * std::max(1.0, input_total),
                      "speculative placement conserves the total load");
      }

      // --- Algorithm 3 line 9: evaluate the proposed imbalance. ---
      std::vector<LoadType> spec_loads(static_cast<std::size_t>(p));
      for (RankId r = 0; r < p; ++r) {
        spec_loads[static_cast<std::size_t>(r)] =
            shared->states[static_cast<std::size_t>(r)].load;
      }
      bool eval_complete = true;
      auto const iter_stat =
          rt::allreduce_loads(rt, spec_loads,
                              resilient ? &eval_complete : nullptr)[0];
      if (!eval_complete) {
        epoch_valid = false;
      }
      if (!epoch_valid) {
        // Abort this LB round: the epoch either failed its liveness
        // timeout or lost part of a reduction, so the proposed placement
        // cannot be trusted. The commit below falls back to the last
        // good snapshot (or, with none, to the current mapping).
        ++result.aborted_rounds;
        break;
      }
      double const proposed = iter_stat.max / l_ave - 1.0;
      if (introspection_ != nullptr) {
        introspection_->on_trial_iteration(trial, iter, proposed);
      }

      if (proposed < best_imbalance || (accept_always && !have_best)) {
        best_imbalance = std::min(best_imbalance, proposed);
        have_best = true;
        best_snapshot.assign(shared->states.size(), {});
        for (std::size_t r = 0; r < shared->states.size(); ++r) {
          best_snapshot[r] = shared->states[r].tasks;
        }
      }
    }
  }

  // --- Algorithm 3 line 13: realize the winning placement. ---
  if (have_best) {
    for (std::size_t r = 0; r < best_snapshot.size(); ++r) {
      for (SpecTask const& t : best_snapshot[r]) {
        if (t.origin != static_cast<RankId>(r)) {
          result.migrations.push_back(
              Migration{t.id, t.origin, static_cast<RankId>(r), t.load});
        }
      }
    }
    result.new_rank_loads = project_loads(input, result.migrations);
    result.achieved_imbalance = imbalance(result.new_rank_loads);
  }

  auto const stats_after = rt.stats();
  result.cost.lb_messages = stats_after.messages - stats_before.messages;
  result.cost.lb_bytes = stats_after.bytes - stats_before.bytes;
  result.cost.migration_count = result.migrations.size();
  for (Migration const& m : result.migrations) {
    result.cost.migrated_load += m.load;
  }
  return result;
}

} // namespace tlb::lb
