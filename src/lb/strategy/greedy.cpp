#include "lb/strategy/greedy.hpp"

#include <algorithm>
#include <memory>
#include <queue>

#include "support/assert.hpp"
#include "support/stats.hpp"

namespace tlb::lb {

namespace {

struct GatheredTask {
  TaskEntry entry;
  RankId home = invalid_rank;
};

struct GatherState {
  std::vector<GatheredTask> tasks;
  RankId pending = 0;
  /// Decisions computed by rank 0's handler, scattered to every rank;
  /// slot r is only written by rank r's handler.
  std::vector<std::vector<Migration>> instructions;
};

/// The centralized LPT, executed inside rank 0's handler when the last
/// gather message lands: heaviest tasks first onto the least-loaded rank.
std::vector<std::vector<Migration>> rank0_lpt(GatherState& gather,
                                              RankId p) {
  std::sort(gather.tasks.begin(), gather.tasks.end(),
            [](GatheredTask const& a, GatheredTask const& b) {
              if (a.entry.load != b.entry.load) {
                return a.entry.load > b.entry.load;
              }
              return a.entry.id < b.entry.id;
            });
  using HeapItem = std::pair<LoadType, RankId>;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (RankId r = 0; r < p; ++r) {
    heap.emplace(0.0, r);
  }
  std::vector<std::vector<Migration>> per_source(
      static_cast<std::size_t>(p));
  for (GatheredTask const& t : gather.tasks) {
    auto [load, rank] = heap.top();
    heap.pop();
    heap.emplace(load + t.entry.load, rank);
    if (rank != t.home) {
      per_source[static_cast<std::size_t>(t.home)].push_back(
          Migration{t.entry.id, t.home, rank, t.entry.load});
    }
  }
  return per_source;
}

} // namespace

StrategyResult GreedyStrategy::balance(rt::Runtime& rt,
                                       StrategyInput const& input,
                                       LbParams const& /*params*/) {
  auto const p = input.num_ranks();
  TLB_EXPECTS(p == rt.num_ranks());
  auto const stats_before = rt.stats();

  // Gather: every rank sends its measured task list to rank 0, whose
  // handler — on the final arrival — computes the LPT solution and
  // scatters each source rank its migration instructions.
  auto gather = std::make_shared<GatherState>();
  gather->pending = p;
  gather->instructions.resize(static_cast<std::size_t>(p));
  for (RankId r = 0; r < p; ++r) {
    auto const& rank_tasks = input.tasks[static_cast<std::size_t>(r)];
    std::vector<GatheredTask> payload;
    payload.reserve(rank_tasks.size());
    for (TaskEntry const& t : rank_tasks) {
      payload.push_back(GatheredTask{t, r});
    }
    std::size_t const bytes =
        payload.size() * (sizeof(TaskId) + sizeof(LoadType)) +
        sizeof(RankId);
    rt.post(r, [gather, p, payload = std::move(payload),
                bytes](rt::RankContext& ctx) {
      ctx.send(0, bytes, [gather, p, payload](rt::RankContext& root) {
        gather->tasks.insert(gather->tasks.end(), payload.begin(),
                             payload.end());
        if (--gather->pending > 0) {
          return;
        }
        auto per_source = rank0_lpt(*gather, p);
        for (RankId dest = 0; dest < p; ++dest) {
          auto instructions =
              std::move(per_source[static_cast<std::size_t>(dest)]);
          std::size_t const instr_bytes =
              instructions.size() * sizeof(Migration);
          root.send(dest, instr_bytes,
                    [gather, instructions = std::move(instructions)](
                        rt::RankContext& ctx2) {
                      gather->instructions[static_cast<std::size_t>(
                          ctx2.rank())] = instructions;
                    });
        }
      });
    });
  }
  rt.run_until_quiescent();
  TLB_ASSERT(gather->pending == 0);

  StrategyResult result;
  for (auto const& per_rank : gather->instructions) {
    result.migrations.insert(result.migrations.end(), per_rank.begin(),
                             per_rank.end());
  }

  result.new_rank_loads = project_loads(input, result.migrations);
  result.achieved_imbalance = imbalance(result.new_rank_loads);

  auto const stats_after = rt.stats();
  result.cost.lb_messages = stats_after.messages - stats_before.messages;
  result.cost.lb_bytes = stats_after.bytes - stats_before.bytes;
  result.cost.migration_count = result.migrations.size();
  for (Migration const& m : result.migrations) {
    result.cost.migrated_load += m.load;
  }
  return result;
}

} // namespace tlb::lb
