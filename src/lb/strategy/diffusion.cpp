#include "lb/strategy/diffusion.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/stats.hpp"

namespace tlb::lb {

namespace {

/// A task with its current (diffusing) placement.
struct PlacedTask {
  TaskEntry entry;
  RankId home = invalid_rank;
  RankId current = invalid_rank;
};

} // namespace

StrategyResult DiffusionStrategy::balance(rt::Runtime& rt,
                                          StrategyInput const& input,
                                          LbParams const& /*params*/) {
  auto const p = input.num_ranks();
  TLB_EXPECTS(p == rt.num_ranks());

  std::vector<PlacedTask> tasks;
  tasks.reserve(input.total_tasks());
  std::vector<LoadType> loads(static_cast<std::size_t>(p), 0.0);
  for (RankId r = 0; r < p; ++r) {
    for (TaskEntry const& t : input.tasks[static_cast<std::size_t>(r)]) {
      tasks.push_back(PlacedTask{t, r, r});
      loads[static_cast<std::size_t>(r)] += t.load;
    }
  }

  // Per-sweep per-rank task index, rebuilt as tasks move. Lightest tasks
  // move first: diffusion ships small quanta to approximate the continuous
  // flow the classical analysis assumes.
  std::size_t exchanges = 0;
  for (int sweep = 0; sweep < sweeps_; ++sweep) {
    // Left-to-right pass over ring edges (r, r+1): settle each edge to
    // the pairwise average by moving tasks from heavy to light.
    for (RankId r = 0; r < p; ++r) {
      RankId const n = (r + 1) % p;
      if (n == r) {
        break; // single-rank job
      }
      auto const ri = static_cast<std::size_t>(r);
      auto const ni = static_cast<std::size_t>(n);
      LoadType const diff = loads[ri] - loads[ni];
      LoadType const quota = std::abs(diff) / 2.0;
      if (quota <= 0.0) {
        continue;
      }
      RankId const heavy = diff > 0.0 ? r : n;
      RankId const light = diff > 0.0 ? n : r;
      // Move the lightest tasks off the heavy rank until the quota is
      // met or exceeded-by-less-than-the-task.
      std::vector<PlacedTask*> candidates;
      for (PlacedTask& t : tasks) {
        if (t.current == heavy) {
          candidates.push_back(&t);
        }
      }
      std::sort(candidates.begin(), candidates.end(),
                [](PlacedTask const* a, PlacedTask const* b) {
                  if (a->entry.load != b->entry.load) {
                    return a->entry.load < b->entry.load;
                  }
                  return a->entry.id < b->entry.id;
                });
      LoadType moved = 0.0;
      for (PlacedTask* t : candidates) {
        if (moved + t->entry.load > quota) {
          break;
        }
        t->current = light;
        moved += t->entry.load;
        ++exchanges;
      }
      loads[static_cast<std::size_t>(heavy)] -= moved;
      loads[static_cast<std::size_t>(light)] += moved;
    }
  }

  StrategyResult result;
  for (PlacedTask const& t : tasks) {
    if (t.current != t.home) {
      result.migrations.push_back(
          Migration{t.entry.id, t.home, t.current, t.entry.load});
    }
  }
  result.new_rank_loads = project_loads(input, result.migrations);
  result.achieved_imbalance = imbalance(result.new_rank_loads);
  // Traffic model: each sweep exchanges one load scalar per ring edge
  // plus the shipped task descriptors.
  result.cost.lb_messages =
      static_cast<std::size_t>(sweeps_) * static_cast<std::size_t>(p) +
      exchanges;
  result.cost.lb_bytes =
      result.cost.lb_messages * (sizeof(TaskId) + sizeof(LoadType));
  result.cost.migration_count = result.migrations.size();
  for (Migration const& m : result.migrations) {
    result.cost.migrated_load += m.load;
  }
  return result;
}

} // namespace tlb::lb
