#pragma once

/// \file greedy.hpp
/// GreedyLB: the centralized, non-scalable quality yardstick (§VI-B).
/// Every rank ships its task measurements to rank 0, which runs
/// longest-processing-time-first (LPT) list scheduling with full global
/// knowledge and scatters the resulting placement. LPT guarantees a
/// makespan within 4/3 of optimal, so this strategy bounds the load
/// distribution quality the distributed schemes are compared against.

#include "lb/strategy/strategy.hpp"

namespace tlb::lb {

class GreedyStrategy final : public Strategy {
public:
  [[nodiscard]] std::string_view name() const override { return "greedy"; }

  [[nodiscard]] StrategyResult balance(rt::Runtime& rt,
                                       StrategyInput const& input,
                                       LbParams const& params) override;
};

} // namespace tlb::lb
