#include "lb/strategy/stealing.hpp"

#include <algorithm>
#include <memory>

#include "runtime/collectives.hpp"
#include "support/assert.hpp"
#include "support/stats.hpp"

namespace tlb::lb {

namespace {

struct SpecTask {
  TaskId id = invalid_task;
  LoadType load = 0.0;
  RankId origin = invalid_rank;
};

struct RankState {
  LoadType load = 0.0;
  std::vector<SpecTask> tasks; ///< kept sorted ascending by load
};

struct Shared {
  std::vector<RankState> states;
  LoadType l_ave = 0.0;
};

void sort_by_load(std::vector<SpecTask>& tasks) {
  std::sort(tasks.begin(), tasks.end(),
            [](SpecTask const& a, SpecTask const& b) {
              if (a.load != b.load) {
                return a.load < b.load;
              }
              return a.id < b.id;
            });
}

} // namespace

StrategyResult StealingStrategy::balance(rt::Runtime& rt,
                                         StrategyInput const& input,
                                         LbParams const& /*params*/) {
  auto const p = input.num_ranks();
  TLB_EXPECTS(p == rt.num_ranks());
  auto const stats_before = rt.stats();

  auto const initial_loads = input.rank_loads();
  auto const stat = rt::allreduce_loads(rt, initial_loads)[0];
  LoadType const l_ave = stat.average();

  StrategyResult result;
  result.new_rank_loads = initial_loads;
  result.achieved_imbalance = l_ave > 0.0 ? stat.max / l_ave - 1.0 : 0.0;
  if (l_ave <= 0.0 || p < 2) {
    return result;
  }

  auto shared = std::make_shared<Shared>();
  shared->l_ave = l_ave;
  shared->states.resize(static_cast<std::size_t>(p));
  for (RankId r = 0; r < p; ++r) {
    auto& st = shared->states[static_cast<std::size_t>(r)];
    st.load = initial_loads[static_cast<std::size_t>(r)];
    for (TaskEntry const& t : input.tasks[static_cast<std::size_t>(r)]) {
      st.tasks.push_back(SpecTask{t.id, t.load, r});
    }
    sort_by_load(st.tasks);
  }

  // Steal rounds: thieves ask, victims surrender surplus lightest-first.
  for (int round = 0; round < rounds_; ++round) {
    rt.post_all([shared](rt::RankContext& ctx) {
      auto const thief = ctx.rank();
      auto& mine = shared->states[static_cast<std::size_t>(thief)];
      if (mine.load >= shared->l_ave) {
        return; // not hungry
      }
      LoadType const appetite = shared->l_ave - mine.load;
      auto const victim = static_cast<RankId>(
          ctx.rng().uniform_below(
              static_cast<std::uint64_t>(ctx.num_ranks() - 1)));
      RankId const target = victim >= thief ? victim + 1 : victim;
      ctx.send(target, sizeof(LoadType) + sizeof(RankId),
               [shared, thief, appetite](rt::RankContext& v) {
                 auto& st =
                     shared->states[static_cast<std::size_t>(v.rank())];
                 // Surrender tasks while above average and the thief has
                 // appetite; lightest-first keeps granularity fine.
                 std::vector<SpecTask> loot;
                 LoadType handed = 0.0;
                 std::size_t i = 0;
                 while (i < st.tasks.size() && handed < appetite) {
                   SpecTask const& candidate = st.tasks[i];
                   // Never hand out a task that would drop the victim
                   // below the average, and stop once the thief's
                   // appetite would be overshot (unless nothing was
                   // handed yet and the task still fits the surplus).
                   if (st.load - handed - candidate.load <
                       shared->l_ave) {
                     break;
                   }
                   if (handed + candidate.load > appetite &&
                       !loot.empty()) {
                     break;
                   }
                   loot.push_back(candidate);
                   handed += candidate.load;
                   ++i;
                 }
                 if (loot.empty()) {
                   return;
                 }
                 st.tasks.erase(st.tasks.begin(),
                                st.tasks.begin() +
                                    static_cast<std::ptrdiff_t>(loot.size()));
                 st.load -= handed;
                 std::size_t const bytes = loot.size() * sizeof(SpecTask);
                 v.send(thief, bytes,
                        [shared, loot = std::move(loot),
                         handed](rt::RankContext& back) {
                          auto& me = shared->states[static_cast<std::size_t>(
                              back.rank())];
                          me.tasks.insert(me.tasks.end(), loot.begin(),
                                          loot.end());
                          sort_by_load(me.tasks);
                          me.load += handed;
                        });
               });
    });
    rt.run_until_quiescent();
  }

  for (std::size_t r = 0; r < shared->states.size(); ++r) {
    for (SpecTask const& t : shared->states[r].tasks) {
      if (t.origin != static_cast<RankId>(r)) {
        result.migrations.push_back(
            Migration{t.id, t.origin, static_cast<RankId>(r), t.load});
      }
    }
  }
  result.new_rank_loads = project_loads(input, result.migrations);
  result.achieved_imbalance = imbalance(result.new_rank_loads);

  auto const stats_after = rt.stats();
  result.cost.lb_messages = stats_after.messages - stats_before.messages;
  result.cost.lb_bytes = stats_after.bytes - stats_before.bytes;
  result.cost.migration_count = result.migrations.size();
  for (Migration const& m : result.migrations) {
    result.cost.migrated_load += m.load;
  }
  return result;
}

} // namespace tlb::lb
