#pragma once

/// \file lb_manager.hpp
/// Ties strategies to the runtime's instrumentation and object store: at a
/// phase boundary the manager reads the previous phase's measured task
/// loads, runs the configured strategy, executes the resulting migrations
/// through the object store, and records a report the application (or a
/// bench) can inspect.

#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lb/strategy/strategy.hpp"
#include "obs/lb_report.hpp"
#include "policy/trigger_policy.hpp"
#include "runtime/object_store.hpp"
#include "runtime/phase.hpp"

namespace tlb::lb {

/// Converts an LB invocation's protocol/migration accounting into the
/// simulated seconds the trigger policies weigh against forecast gains.
/// Defaults mirror pic::WorkModel's calibrated coefficients.
struct LbCostModel {
  double per_message = 2.0e-6;
  double per_byte = 5.0e-10;
  double per_migration_byte = 4.0e-9;
  /// Fixed per-invocation overhead (the synchronization/barrier cost of
  /// entering the balancer at all, independent of traffic).
  double fixed = 0.0;

  [[nodiscard]] double cost(std::size_t messages, std::size_t bytes,
                            std::size_t migration_bytes) const {
    return fixed + per_message * static_cast<double>(messages) +
           per_byte * static_cast<double>(bytes) +
           per_migration_byte * static_cast<double>(migration_bytes);
  }
};

class LbManager {
public:
  /// One LB invocation's outcome.
  struct Report {
    std::size_t phase = 0;
    double imbalance_before = 0.0;
    double imbalance_after = 0.0;
    StrategyCost cost;
    std::size_t migration_payload_bytes = 0;
    /// Protocol rounds abandoned by the quiescence budget valve.
    std::size_t aborted_rounds = 0;
    /// Expected per-rank loads after the migrations (what the strategy
    /// projected); the policy layer re-seeds its forecaster from these.
    std::vector<LoadType> new_rank_loads;
  };

  /// One adaptive-invocation step's outcome (invoke_if_beneficial).
  struct PolicyOutcome {
    /// On a skip this is a zero-cost report whose imbalance_after simply
    /// repeats imbalance_before (nothing ran).
    Report report;
    policy::Decision decision;
    bool invoked = false;
    /// Modeled LB cost fed back to the policy (0 on skip).
    double lb_cost_seconds = 0.0;
  };

  /// \param rt       Runtime the strategies communicate over.
  /// \param strategy Name accepted by make_strategy().
  /// \param params   Algorithm parameters (used by the gossip strategies).
  LbManager(rt::Runtime& rt, std::string_view strategy, LbParams params);

  [[nodiscard]] std::string_view strategy_name() const;
  [[nodiscard]] LbParams const& params() const { return params_; }

  /// Build a StrategyInput from the previous phase's measurements.
  [[nodiscard]] static StrategyInput
  gather_input(rt::PhaseInstrumentation const& instrumentation,
               RankId num_ranks);

  /// Run one LB invocation: decide migrations from `input` and execute
  /// them on `store` (moving payloads with runtime messages).
  Report invoke(StrategyInput const& input, rt::ObjectStore& store);

  /// Adaptive invocation: ask `policy` whether the balancer should run
  /// this phase. On invoke, runs invoke() and feeds the measured cost
  /// (via `cost_model`) and projected post-LB loads back to the policy;
  /// on skip, records a skip PhaseSample into the timeline (telemetry
  /// permitting) and advances the phase counter so phase numbering stays
  /// aligned with the application's phases.
  PolicyOutcome invoke_if_beneficial(StrategyInput const& input,
                                     rt::ObjectStore& store,
                                     policy::TriggerPolicy& policy,
                                     LbCostModel const& cost_model = {});

  /// Decide migrations only (no object store); useful for analysis.
  [[nodiscard]] StrategyResult decide(StrategyInput const& input);

  [[nodiscard]] std::vector<Report> const& history() const {
    return history_;
  }

  /// Per-invocation introspection reports, collected by invoke() whenever
  /// telemetry is runtime-enabled (tlb::obs::enabled()); empty otherwise.
  [[nodiscard]] std::vector<obs::LbInvocationReport> const&
  introspection() const {
    return introspection_;
  }

  /// Dump the collected introspection reports as a JSON document
  /// ({"lb_reports": [...]}).
  void write_introspection_json(std::ostream& os) const;

private:
  Report invoke_internal(StrategyInput const& input, rt::ObjectStore& store,
                         policy::Decision const* decision,
                         std::string_view policy_name);

  rt::Runtime* rt_;
  std::unique_ptr<Strategy> strategy_;
  LbParams params_;
  std::vector<Report> history_;
  std::vector<obs::LbInvocationReport> introspection_;
  /// Phase number stamped on the next report/sample. Advanced by both
  /// invocations and policy skips, so it tracks application phases (it
  /// equals history_.size() only when no phase was ever skipped).
  std::size_t next_phase_ = 0;
};

} // namespace tlb::lb
