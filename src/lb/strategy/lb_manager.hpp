#pragma once

/// \file lb_manager.hpp
/// Ties strategies to the runtime's instrumentation and object store: at a
/// phase boundary the manager reads the previous phase's measured task
/// loads, runs the configured strategy, executes the resulting migrations
/// through the object store, and records a report the application (or a
/// bench) can inspect.

#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lb/strategy/strategy.hpp"
#include "obs/lb_report.hpp"
#include "runtime/object_store.hpp"
#include "runtime/phase.hpp"

namespace tlb::lb {

class LbManager {
public:
  /// One LB invocation's outcome.
  struct Report {
    std::size_t phase = 0;
    double imbalance_before = 0.0;
    double imbalance_after = 0.0;
    StrategyCost cost;
    std::size_t migration_payload_bytes = 0;
    /// Protocol rounds abandoned by the quiescence budget valve.
    std::size_t aborted_rounds = 0;
  };

  /// \param rt       Runtime the strategies communicate over.
  /// \param strategy Name accepted by make_strategy().
  /// \param params   Algorithm parameters (used by the gossip strategies).
  LbManager(rt::Runtime& rt, std::string_view strategy, LbParams params);

  [[nodiscard]] std::string_view strategy_name() const;
  [[nodiscard]] LbParams const& params() const { return params_; }

  /// Build a StrategyInput from the previous phase's measurements.
  [[nodiscard]] static StrategyInput
  gather_input(rt::PhaseInstrumentation const& instrumentation,
               RankId num_ranks);

  /// Run one LB invocation: decide migrations from `input` and execute
  /// them on `store` (moving payloads with runtime messages).
  Report invoke(StrategyInput const& input, rt::ObjectStore& store);

  /// Decide migrations only (no object store); useful for analysis.
  [[nodiscard]] StrategyResult decide(StrategyInput const& input);

  [[nodiscard]] std::vector<Report> const& history() const {
    return history_;
  }

  /// Per-invocation introspection reports, collected by invoke() whenever
  /// telemetry is runtime-enabled (tlb::obs::enabled()); empty otherwise.
  [[nodiscard]] std::vector<obs::LbInvocationReport> const&
  introspection() const {
    return introspection_;
  }

  /// Dump the collected introspection reports as a JSON document
  /// ({"lb_reports": [...]}).
  void write_introspection_json(std::ostream& os) const;

private:
  rt::Runtime* rt_;
  std::unique_ptr<Strategy> strategy_;
  LbParams params_;
  std::vector<Report> history_;
  std::vector<obs::LbInvocationReport> introspection_;
};

} // namespace tlb::lb
