#include "lb/strategy/hier.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>

#include "support/assert.hpp"
#include "support/stats.hpp"

namespace tlb::lb {

namespace {

struct PlacedTask {
  TaskEntry entry;
  RankId home = invalid_rank;    ///< where the task physically is
  RankId current = invalid_rank; ///< placement as the algorithm refines it

  friend bool operator==(PlacedTask const&, PlacedTask const&) = default;
};

using MinHeap =
    std::priority_queue<std::pair<LoadType, RankId>,
                        std::vector<std::pair<LoadType, RankId>>,
                        std::greater<>>;

bool heavier_first(PlacedTask const& a, PlacedTask const& b) {
  if (a.entry.load != b.entry.load) {
    return a.entry.load > b.entry.load;
  }
  return a.entry.id < b.entry.id;
}

/// Protocol state shared across handlers. Each slot is only mutated by
/// handlers on the rank that owns it (leaders own their group slots, the
/// root owns the root slot), which the runtime serializes.
struct Shared {
  RankId p = 0;
  RankId group_size = 0;
  RankId num_groups = 0;
  double avg_rank_load = 0.0; ///< filled at the root before level 2

  // --- leader state (indexed by group) ---
  struct GroupState {
    std::vector<PlacedTask> tasks; ///< gathered from members
    RankId pending_members = 0;
    LoadType load = 0.0;           ///< after within-group LPT
    double target = 0.0;           ///< fair share for this group
    std::vector<LoadType> member_loads;
  };
  std::vector<GroupState> groups;

  // --- root state ---
  struct RootState {
    RankId pending_groups = 0;
    std::vector<LoadType> group_loads;
    std::vector<double> group_targets;
    std::vector<std::vector<PlacedTask>> exports; ///< per source group
    LoadType total = 0.0;
  } root;

  // --- results: final placements, appended by leaders ---
  std::vector<std::vector<PlacedTask>> placed; ///< per group

  [[nodiscard]] RankId leader_of_group(RankId g) const {
    return g * group_size;
  }
  [[nodiscard]] RankId group_of_rank(RankId r) const {
    return r / group_size;
  }
  [[nodiscard]] RankId group_lo(RankId g) const { return g * group_size; }
  [[nodiscard]] RankId group_hi(RankId g) const {
    return std::min<RankId>(p, (g + 1) * group_size);
  }
};

/// Within-group LPT at the leader; fills GroupState::load/member_loads and
/// updates current placements.
void leader_lpt(Shared& sh, RankId g) {
  auto& gs = sh.groups[static_cast<std::size_t>(g)];
  RankId const lo = sh.group_lo(g);
  RankId const hi = sh.group_hi(g);
  std::sort(gs.tasks.begin(), gs.tasks.end(), heavier_first);
  MinHeap heap;
  for (RankId r = lo; r < hi; ++r) {
    heap.emplace(0.0, r);
  }
  gs.member_loads.assign(static_cast<std::size_t>(hi - lo), 0.0);
  gs.load = 0.0;
  for (PlacedTask& t : gs.tasks) {
    auto [load, rank] = heap.top();
    heap.pop();
    heap.emplace(load + t.entry.load, rank);
    t.current = rank;
    gs.member_loads[static_cast<std::size_t>(rank - lo)] += t.entry.load;
    gs.load += t.entry.load;
  }
}

/// Root: compute per-group targets, pull excess tasks from overloaded
/// groups' reports, assign them to underloaded groups.
struct RootDecision {
  /// incoming[g]: tasks group g must absorb.
  std::vector<std::vector<PlacedTask>> incoming;
};

RootDecision root_decide(Shared& sh) {
  auto& rs = sh.root;
  RootDecision decision;
  decision.incoming.resize(static_cast<std::size_t>(sh.num_groups));

  // Exported tasks arrive pre-peeled from overloaded groups; place them
  // heaviest-first onto the group with the most slack below target.
  std::vector<PlacedTask> pool;
  for (auto& exported : rs.exports) {
    pool.insert(pool.end(), exported.begin(), exported.end());
  }
  std::sort(pool.begin(), pool.end(), heavier_first);

  MinHeap group_heap;
  for (RankId g = 0; g < sh.num_groups; ++g) {
    auto const gi = static_cast<std::size_t>(g);
    group_heap.emplace(rs.group_loads[gi] - rs.group_targets[gi], g);
  }
  for (PlacedTask& t : pool) {
    auto [slack, g] = group_heap.top();
    group_heap.pop();
    group_heap.emplace(slack + t.entry.load, g);
    decision.incoming[static_cast<std::size_t>(g)].push_back(t);
  }
  return decision;
}

} // namespace

StrategyResult HierStrategy::balance(rt::Runtime& rt,
                                     StrategyInput const& input,
                                     LbParams const& /*params*/) {
  auto const p = input.num_ranks();
  TLB_EXPECTS(p == rt.num_ranks());
  auto const stats_before = rt.stats();

  auto sh = std::make_shared<Shared>();
  sh->p = p;
  sh->group_size = static_cast<RankId>(std::max(
      1.0, std::ceil(std::sqrt(static_cast<double>(p)))));
  sh->num_groups = (p + sh->group_size - 1) / sh->group_size;
  sh->groups.resize(static_cast<std::size_t>(sh->num_groups));
  sh->placed.resize(static_cast<std::size_t>(sh->num_groups));
  sh->root.pending_groups = sh->num_groups;
  sh->root.group_loads.assign(static_cast<std::size_t>(sh->num_groups),
                              0.0);
  sh->root.group_targets.assign(static_cast<std::size_t>(sh->num_groups),
                                0.0);
  sh->root.exports.resize(static_cast<std::size_t>(sh->num_groups));
  for (RankId g = 0; g < sh->num_groups; ++g) {
    sh->groups[static_cast<std::size_t>(g)].pending_members =
        sh->group_hi(g) - sh->group_lo(g);
  }

  double total = 0.0;
  for (auto const& tasks : input.tasks) {
    for (auto const& t : tasks) {
      total += t.load;
    }
  }
  double const avg_rank = p > 0 ? total / static_cast<double>(p) : 0.0;
  sh->avg_rank_load = avg_rank;
  for (RankId g = 0; g < sh->num_groups; ++g) {
    sh->root.group_targets[static_cast<std::size_t>(g)] =
        avg_rank * static_cast<double>(sh->group_hi(g) - sh->group_lo(g));
  }
  sh->root.total = total;

  // ---- Level 1 (messages): members gather task lists at their leader;
  // the last arrival triggers the leader's LPT and its report upward. ----
  auto* input_ptr = &input;
  rt.post_all([sh, input_ptr](rt::RankContext& ctx) {
    auto const r = ctx.rank();
    auto const g = sh->group_of_rank(r);
    auto const& mine = input_ptr->tasks[static_cast<std::size_t>(r)];
    std::vector<PlacedTask> payload;
    payload.reserve(mine.size());
    for (TaskEntry const& t : mine) {
      payload.push_back(PlacedTask{t, r, r});
    }
    std::size_t const bytes = payload.size() * sizeof(PlacedTask);
    ctx.send(sh->leader_of_group(g), bytes,
             [sh, g, payload = std::move(payload)](rt::RankContext& leader) {
               auto& gs = sh->groups[static_cast<std::size_t>(g)];
               gs.tasks.insert(gs.tasks.end(), payload.begin(),
                               payload.end());
               if (--gs.pending_members > 0) {
                 return;
               }
               // All members reported: balance within the group, then
               // report (load, excess tasks) to the root.
               leader_lpt(*sh, g);
               auto const gi = static_cast<std::size_t>(g);
               double const target = sh->root.group_targets[gi];

               // Peel excess heaviest-first off the group's tasks while
               // above target.
               std::vector<PlacedTask> exported;
               if (gs.load > target) {
                 std::vector<PlacedTask*> by_load;
                 for (PlacedTask& t : gs.tasks) {
                   by_load.push_back(&t);
                 }
                 std::sort(by_load.begin(), by_load.end(),
                           [](PlacedTask const* a, PlacedTask const* b) {
                             return heavier_first(*a, *b);
                           });
                 LoadType remaining = gs.load;
                 for (PlacedTask* t : by_load) {
                   if (remaining - t->entry.load < target) {
                     continue;
                   }
                   exported.push_back(*t);
                   t->current = invalid_rank; // mark as exported
                   remaining -= t->entry.load;
                   if (remaining <= target) {
                     break;
                   }
                 }
                 gs.load = remaining;
                 gs.tasks.erase(
                     std::remove_if(gs.tasks.begin(), gs.tasks.end(),
                                    [](PlacedTask const& t) {
                                      return t.current == invalid_rank;
                                    }),
                     gs.tasks.end());
               }

               std::size_t const report_bytes =
                   sizeof(LoadType) +
                   exported.size() * sizeof(PlacedTask);
               LoadType const group_load = gs.load;
               leader.send(
                   0, report_bytes,
                   [sh, g, group_load,
                    exported = std::move(exported)](rt::RankContext& root) {
                     auto const gj = static_cast<std::size_t>(g);
                     sh->root.group_loads[gj] = group_load;
                     sh->root.exports[gj] = exported;
                     if (--sh->root.pending_groups > 0) {
                       return;
                     }
                     // ---- Level 2: root redistributes the excess. ----
                     auto const decision = root_decide(*sh);
                     for (RankId dg = 0; dg < sh->num_groups; ++dg) {
                       auto incoming =
                           decision.incoming[static_cast<std::size_t>(dg)];
                       std::size_t const bytes2 =
                           incoming.size() * sizeof(PlacedTask);
                       root.send(
                           sh->leader_of_group(dg), bytes2,
                           [sh, dg, incoming = std::move(incoming)](
                               rt::RankContext&) {
                             // ---- Level 3: receiving leader places
                             // incoming tasks on least-loaded members. ----
                             auto& gs2 =
                                 sh->groups[static_cast<std::size_t>(dg)];
                             RankId const lo = sh->group_lo(dg);
                             for (PlacedTask t : incoming) {
                               auto const best = static_cast<std::size_t>(
                                   std::min_element(
                                       gs2.member_loads.begin(),
                                       gs2.member_loads.end()) -
                                   gs2.member_loads.begin());
                               t.current =
                                   lo + static_cast<RankId>(best);
                               gs2.member_loads[best] += t.entry.load;
                               gs2.load += t.entry.load;
                               gs2.tasks.push_back(t);
                             }
                             sh->placed[static_cast<std::size_t>(dg)] =
                                 gs2.tasks;
                           });
                     }
                   });
             });
  });
  rt.run_until_quiescent();

  StrategyResult result;
  for (auto const& group_tasks : sh->placed) {
    for (PlacedTask const& t : group_tasks) {
      TLB_ASSERT(t.current != invalid_rank);
      if (t.current != t.home) {
        result.migrations.push_back(
            Migration{t.entry.id, t.home, t.current, t.entry.load});
      }
    }
  }
  result.new_rank_loads = project_loads(input, result.migrations);
  result.achieved_imbalance = imbalance(result.new_rank_loads);

  auto const stats_after = rt.stats();
  result.cost.lb_messages = stats_after.messages - stats_before.messages;
  result.cost.lb_bytes = stats_after.bytes - stats_before.bytes;
  result.cost.migration_count = result.migrations.size();
  for (Migration const& m : result.migrations) {
    result.cost.migrated_load += m.load;
  }
  return result;
}

} // namespace tlb::lb
