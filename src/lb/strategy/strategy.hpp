#pragma once

/// \file strategy.hpp
/// The load-balancing strategy interface. A strategy consumes the
/// instrumented task loads of the previous phase (one task list per rank)
/// and produces the migrations that re-map tasks for the next phase,
/// together with cost accounting for the timing model.

#include <memory>
#include <string_view>
#include <vector>

#include "lb/lb_types.hpp"
#include "obs/lb_report.hpp"
#include "runtime/runtime.hpp"
#include "support/types.hpp"

namespace tlb::lb {

/// Per-rank instrumented state handed to a strategy.
struct StrategyInput {
  /// tasks[r] — the measured tasks currently on rank r.
  std::vector<std::vector<TaskEntry>> tasks;

  [[nodiscard]] RankId num_ranks() const {
    return static_cast<RankId>(tasks.size());
  }
  /// Sum of task loads per rank.
  [[nodiscard]] std::vector<LoadType> rank_loads() const;
  /// Total number of tasks across ranks.
  [[nodiscard]] std::size_t total_tasks() const;
};

/// Cost accounting for the LB invocation itself (feeds t_lb).
struct StrategyCost {
  std::size_t lb_messages = 0; ///< protocol messages exchanged
  std::size_t lb_bytes = 0;    ///< protocol bytes exchanged
  std::size_t migration_count = 0;
  LoadType migrated_load = 0.0; ///< sum of loads of migrated tasks
};

struct StrategyResult {
  std::vector<Migration> migrations;
  /// Expected per-rank loads after applying the migrations.
  std::vector<LoadType> new_rank_loads;
  /// Expected imbalance I after the migrations.
  double achieved_imbalance = 0.0;
  /// LB rounds abandoned mid-flight (incomplete reduction, liveness
  /// timeout). Only non-zero under an active fault plane; an aborted
  /// round falls back to the last good placement (the best snapshot so
  /// far, or no migrations at all), never a partial one.
  std::size_t aborted_rounds = 0;
  StrategyCost cost;
};

/// Abstract strategy. Implementations must be deterministic given
/// (input, params, runtime seed).
class Strategy {
public:
  virtual ~Strategy() = default;
  Strategy() = default;
  Strategy(Strategy const&) = delete;
  Strategy& operator=(Strategy const&) = delete;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Decide migrations. The runtime is used for protocol communication
  /// (gossip, reductions); distributed strategies' traffic is measured
  /// through it.
  [[nodiscard]] virtual StrategyResult balance(rt::Runtime& rt,
                                               StrategyInput const& input,
                                               LbParams const& params) = 0;

  /// Attach (or detach, with nullptr) a telemetry report builder for the
  /// next balance() call. Optional: strategies that support introspection
  /// feed it through the builder's on_* callbacks; the rest ignore it.
  void set_introspection(obs::LbReportBuilder* builder) {
    introspection_ = builder;
  }

protected:
  obs::LbReportBuilder* introspection_ = nullptr;
};

/// Factory over all registered strategies:
///   "tempered"  — this paper's TemperedLB (gossip, relaxed criterion)
///   "tempered_fast" — TemperedLB with the incremental (Fenwick-backed)
///                 CMF: O(log |S^p|) per transfer candidate
///   "grapevine" — the original GrapevineLB configuration
///   "greedy"    — centralized LPT (GreedyLB)
///   "hier"      — hierarchical two-level balancer (HierLB)
///   "diffusion" — classical neighborhood diffusion (limited-information
///                 distributed baseline, §IV-A's cautionary class)
///   "rotate"    — cyclic-shift baseline (testing)
///   "random"    — random placement baseline (testing)
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<Strategy> make_strategy(std::string_view name);

/// Names accepted by make_strategy.
[[nodiscard]] std::vector<std::string_view> strategy_names();

/// Apply migrations to a copy of the input's per-rank loads and return the
/// resulting load vector (shared helper for strategies).
[[nodiscard]] std::vector<LoadType>
project_loads(StrategyInput const& input,
              std::vector<Migration> const& migrations);

} // namespace tlb::lb
