#pragma once

/// \file baselines.hpp
/// Trivial strategies used as test baselines and sanity anchors:
/// RotateStrategy cyclically shifts every task one rank; RandomStrategy
/// scatters tasks uniformly at random. Neither is a serious balancer —
/// they exist so tests can distinguish "moves tasks correctly" from
/// "balances well", and so benches have a worst-case-ish reference.

#include "lb/strategy/strategy.hpp"

namespace tlb::lb {

class RotateStrategy final : public Strategy {
public:
  [[nodiscard]] std::string_view name() const override { return "rotate"; }

  [[nodiscard]] StrategyResult balance(rt::Runtime& rt,
                                       StrategyInput const& input,
                                       LbParams const& params) override;
};

class RandomStrategy final : public Strategy {
public:
  [[nodiscard]] std::string_view name() const override { return "random"; }

  [[nodiscard]] StrategyResult balance(rt::Runtime& rt,
                                       StrategyInput const& input,
                                       LbParams const& params) override;
};

} // namespace tlb::lb
