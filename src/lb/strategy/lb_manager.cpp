#include "lb/strategy/lb_manager.hpp"

#include <optional>

#include "obs/telemetry.hpp"
#include "support/assert.hpp"
#include "support/stats.hpp"

namespace tlb::lb {

LbManager::LbManager(rt::Runtime& rt, std::string_view strategy,
                     LbParams params)
    : rt_{&rt}, strategy_{make_strategy(strategy)}, params_{params} {}

std::string_view LbManager::strategy_name() const {
  return strategy_->name();
}

StrategyInput
LbManager::gather_input(rt::PhaseInstrumentation const& instrumentation,
                        RankId num_ranks) {
  StrategyInput input;
  input.tasks.reserve(static_cast<std::size_t>(num_ranks));
  for (RankId r = 0; r < num_ranks; ++r) {
    input.tasks.push_back(instrumentation.previous_tasks(r));
  }
  return input;
}

StrategyResult LbManager::decide(StrategyInput const& input) {
  return strategy_->balance(*rt_, input, params_);
}

LbManager::Report LbManager::invoke(StrategyInput const& input,
                                    rt::ObjectStore& store) {
  Report report;
  report.phase = history_.size();
  report.imbalance_before = imbalance(input.rank_loads());

  // Telemetry on: hand the strategy a report builder for this invocation.
  std::optional<obs::LbReportBuilder> builder;
  if (obs::enabled()) {
    builder.emplace();
    // Baseline metadata for strategies that ignore the builder; the
    // gossip strategies overwrite these with their own view.
    builder->set_strategy(std::string{strategy_->name()});
    builder->set_threshold(params_.threshold);
    builder->set_initial_imbalance(report.imbalance_before);
    strategy_->set_introspection(&*builder);
  }

  StrategyResult result = strategy_->balance(*rt_, input, params_);
  report.imbalance_after = result.achieved_imbalance;
  report.cost = result.cost;
  report.migration_payload_bytes = store.migrate(*rt_, result.migrations);

  if (builder) {
    strategy_->set_introspection(nullptr);
    builder->set_final(report.imbalance_after, result.cost.migration_count,
                       report.migration_payload_bytes);
    introspection_.push_back(builder->finish(report.phase));
  }
  history_.push_back(report);
  return report;
}

void LbManager::write_introspection_json(std::ostream& os) const {
  obs::write_lb_reports_json(os, introspection_);
}

} // namespace tlb::lb
