#include "lb/strategy/lb_manager.hpp"

#include "support/assert.hpp"
#include "support/stats.hpp"

namespace tlb::lb {

LbManager::LbManager(rt::Runtime& rt, std::string_view strategy,
                     LbParams params)
    : rt_{&rt}, strategy_{make_strategy(strategy)}, params_{params} {}

std::string_view LbManager::strategy_name() const {
  return strategy_->name();
}

StrategyInput
LbManager::gather_input(rt::PhaseInstrumentation const& instrumentation,
                        RankId num_ranks) {
  StrategyInput input;
  input.tasks.reserve(static_cast<std::size_t>(num_ranks));
  for (RankId r = 0; r < num_ranks; ++r) {
    input.tasks.push_back(instrumentation.previous_tasks(r));
  }
  return input;
}

StrategyResult LbManager::decide(StrategyInput const& input) {
  return strategy_->balance(*rt_, input, params_);
}

LbManager::Report LbManager::invoke(StrategyInput const& input,
                                    rt::ObjectStore& store) {
  Report report;
  report.imbalance_before = imbalance(input.rank_loads());

  StrategyResult result = strategy_->balance(*rt_, input, params_);
  report.imbalance_after = result.achieved_imbalance;
  report.cost = result.cost;
  report.migration_payload_bytes = store.migrate(*rt_, result.migrations);
  history_.push_back(report);
  return report;
}

} // namespace tlb::lb
