#include "lb/strategy/lb_manager.hpp"

#include <optional>

#include "obs/causal.hpp"
#include "obs/phase_timeline.hpp"
#include "obs/telemetry.hpp"
#include "obs/tracer.hpp"
#include "support/assert.hpp"
#include "support/stats.hpp"

namespace tlb::lb {

LbManager::LbManager(rt::Runtime& rt, std::string_view strategy,
                     LbParams params)
    : rt_{&rt}, strategy_{make_strategy(strategy)}, params_{params} {}

std::string_view LbManager::strategy_name() const {
  return strategy_->name();
}

StrategyInput
LbManager::gather_input(rt::PhaseInstrumentation const& instrumentation,
                        RankId num_ranks) {
  StrategyInput input;
  input.tasks.reserve(static_cast<std::size_t>(num_ranks));
  for (RankId r = 0; r < num_ranks; ++r) {
    input.tasks.push_back(instrumentation.previous_tasks(r));
  }
  return input;
}

StrategyResult LbManager::decide(StrategyInput const& input) {
  return strategy_->balance(*rt_, input, params_);
}

LbManager::Report LbManager::invoke(StrategyInput const& input,
                                    rt::ObjectStore& store) {
  return invoke_internal(input, store, nullptr, {});
}

LbManager::Report LbManager::invoke_internal(StrategyInput const& input,
                                             rt::ObjectStore& store,
                                             policy::Decision const* decision,
                                             std::string_view policy_name) {
  Report report;
  report.phase = next_phase_;
  auto const loads = input.rank_loads();
  report.imbalance_before = imbalance(loads);

  // Telemetry on: hand the strategy a report builder for this invocation,
  // and open the phase on the causal log so root messages posted during
  // the invocation carry the step they belong to.
  std::optional<obs::LbReportBuilder> builder;
  std::int64_t wall_start = 0;
  rt::NetworkStatsSnapshot fault_base;
  if (obs::enabled()) {
    obs::CausalLog::instance().set_step(
        static_cast<std::uint32_t>(report.phase));
    fault_base = rt_->stats();
    wall_start = obs::Tracer::instance().now_us();
    builder.emplace();
    // Baseline metadata for strategies that ignore the builder; the
    // gossip strategies overwrite these with their own view.
    builder->set_strategy(std::string{strategy_->name()});
    builder->set_threshold(params_.threshold);
    builder->set_initial_imbalance(report.imbalance_before);
    strategy_->set_introspection(&*builder);
  }

  StrategyResult result = strategy_->balance(*rt_, input, params_);
  report.imbalance_after = result.achieved_imbalance;
  report.cost = result.cost;
  report.migration_payload_bytes = store.migrate(*rt_, result.migrations);
  report.aborted_rounds = result.aborted_rounds;
  report.new_rank_loads = result.new_rank_loads;

  if (builder) {
    strategy_->set_introspection(nullptr);
    builder->set_final(report.imbalance_after, result.cost.migration_count,
                       report.migration_payload_bytes);
    introspection_.push_back(builder->finish(report.phase));

    // Feed the phase timeline (the flight recorder's black box).
    auto const summary = summarize(loads);
    auto const faults = rt_->stats();
    auto fault_delta = [&](auto member) {
      std::uint64_t delta = 0;
      for (std::size_t k = 0; k < rt::num_message_kinds; ++k) {
        delta += (faults.*member)[k] - (fault_base.*member)[k];
      }
      return delta;
    };
    obs::PhaseSample sample;
    sample.phase = report.phase;
    sample.strategy = std::string{strategy_->name()};
    sample.load_min = summary.min;
    sample.load_max = summary.max;
    sample.load_avg = summary.mean;
    sample.load_stddev = summary.stddev;
    sample.imbalance_before = report.imbalance_before;
    sample.imbalance_after = report.imbalance_after;
    sample.migrations = result.cost.migration_count;
    sample.migration_bytes = report.migration_payload_bytes;
    sample.lb_messages = result.cost.lb_messages;
    sample.lb_bytes = result.cost.lb_bytes;
    sample.lb_wall_us = obs::Tracer::instance().now_us() - wall_start;
    sample.aborted_rounds = result.aborted_rounds;
    sample.faults_dropped =
        fault_delta(&rt::NetworkStatsSnapshot::kind_dropped);
    sample.faults_delayed =
        fault_delta(&rt::NetworkStatsSnapshot::kind_delayed);
    sample.faults_duplicated =
        fault_delta(&rt::NetworkStatsSnapshot::kind_duplicated);
    sample.faults_retried =
        fault_delta(&rt::NetworkStatsSnapshot::kind_retried);
    if (decision != nullptr) {
      sample.policy = std::string{policy_name};
      sample.decision_reason = std::string{decision->reason};
      sample.forecast_imbalance = decision->forecast_imbalance;
      sample.forecast_error = decision->forecast_error;
      sample.predicted_gain = decision->predicted_gain;
      sample.predicted_cost = decision->predicted_cost;
    }
    obs::snapshot_loads(sample, loads,
                        obs::PhaseTimeline::instance().snapshot_top_k());
    obs::PhaseTimeline::instance().record(std::move(sample));
  }
  history_.push_back(report);
  ++next_phase_;
  return report;
}

LbManager::PolicyOutcome
LbManager::invoke_if_beneficial(StrategyInput const& input,
                                rt::ObjectStore& store,
                                policy::TriggerPolicy& policy,
                                LbCostModel const& cost_model) {
  PolicyOutcome out;
  auto const loads = input.rank_loads();
  out.decision = policy.decide(next_phase_, loads);
  if (out.decision.invoke) {
    out.invoked = true;
    out.report = invoke_internal(input, store, &out.decision, policy.name());
    out.lb_cost_seconds = cost_model.cost(out.report.cost.lb_messages,
                                          out.report.cost.lb_bytes,
                                          out.report.migration_payload_bytes);
    policy.record_outcome(true, out.lb_cost_seconds,
                          out.report.new_rank_loads);
    return out;
  }

  // Skip: nothing runs, but the phase still happened — record it.
  out.report.phase = next_phase_;
  out.report.imbalance_before = imbalance(loads);
  out.report.imbalance_after = out.report.imbalance_before;
  policy.record_outcome(false, 0.0, {});
  if (obs::enabled()) {
    auto const summary = summarize(loads);
    obs::PhaseSample sample;
    sample.phase = out.report.phase;
    sample.strategy = std::string{strategy_->name()};
    sample.load_min = summary.min;
    sample.load_max = summary.max;
    sample.load_avg = summary.mean;
    sample.load_stddev = summary.stddev;
    sample.imbalance_before = out.report.imbalance_before;
    sample.imbalance_after = out.report.imbalance_after;
    sample.lb_invoked = false;
    sample.policy = std::string{policy.name()};
    sample.decision_reason = std::string{out.decision.reason};
    sample.forecast_imbalance = out.decision.forecast_imbalance;
    sample.forecast_error = out.decision.forecast_error;
    sample.predicted_gain = out.decision.predicted_gain;
    sample.predicted_cost = out.decision.predicted_cost;
    obs::snapshot_loads(sample, loads,
                        obs::PhaseTimeline::instance().snapshot_top_k());
    obs::PhaseTimeline::instance().record(std::move(sample));
  }
  ++next_phase_;
  return out;
}

void LbManager::write_introspection_json(std::ostream& os) const {
  obs::write_lb_reports_json(os, introspection_);
}

} // namespace tlb::lb
