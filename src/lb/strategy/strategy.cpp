#include "lb/strategy/strategy.hpp"

#include <stdexcept>
#include <string>

#include "lb/strategy/baselines.hpp"
#include "lb/strategy/diffusion.hpp"
#include "lb/strategy/gossip_strategy.hpp"
#include "lb/strategy/greedy.hpp"
#include "lb/strategy/hier.hpp"
#include "lb/strategy/stealing.hpp"
#include "support/assert.hpp"

namespace tlb::lb {

std::vector<LoadType> StrategyInput::rank_loads() const {
  std::vector<LoadType> loads(tasks.size(), 0.0);
  for (std::size_t r = 0; r < tasks.size(); ++r) {
    for (TaskEntry const& t : tasks[r]) {
      loads[r] += t.load;
    }
  }
  return loads;
}

std::size_t StrategyInput::total_tasks() const {
  std::size_t n = 0;
  for (auto const& rank_tasks : tasks) {
    n += rank_tasks.size();
  }
  return n;
}

std::vector<LoadType>
project_loads(StrategyInput const& input,
              std::vector<Migration> const& migrations) {
  auto loads = input.rank_loads();
  for (Migration const& m : migrations) {
    TLB_EXPECTS(m.from >= 0 &&
                static_cast<std::size_t>(m.from) < loads.size());
    TLB_EXPECTS(m.to >= 0 && static_cast<std::size_t>(m.to) < loads.size());
    loads[static_cast<std::size_t>(m.from)] -= m.load;
    loads[static_cast<std::size_t>(m.to)] += m.load;
  }
  return loads;
}

std::unique_ptr<Strategy> make_strategy(std::string_view name) {
  if (name == "tempered") {
    return std::make_unique<GossipStrategy>(GossipStrategy::Flavor::tempered);
  }
  if (name == "tempered_fast") {
    return std::make_unique<GossipStrategy>(
        GossipStrategy::Flavor::tempered_fast);
  }
  if (name == "grapevine") {
    return std::make_unique<GossipStrategy>(
        GossipStrategy::Flavor::grapevine);
  }
  if (name == "greedy") {
    return std::make_unique<GreedyStrategy>();
  }
  if (name == "hier") {
    return std::make_unique<HierStrategy>();
  }
  if (name == "stealing") {
    return std::make_unique<StealingStrategy>();
  }
  if (name == "diffusion") {
    return std::make_unique<DiffusionStrategy>();
  }
  if (name == "rotate") {
    return std::make_unique<RotateStrategy>();
  }
  if (name == "random") {
    return std::make_unique<RandomStrategy>();
  }
  throw std::invalid_argument("unknown strategy '" + std::string{name} + "'");
}

std::vector<std::string_view> strategy_names() {
  return {"tempered", "tempered_fast", "grapevine", "greedy", "hier",
          "diffusion", "stealing",     "rotate",    "random"};
}

} // namespace tlb::lb
