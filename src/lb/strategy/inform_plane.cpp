#include "lb/strategy/inform_plane.hpp"

#include <algorithm>

#include "obs/lb_report.hpp"
#include "support/assert.hpp"

namespace tlb::lb {

InformPlane::InformPlane(RankId num_ranks, std::uint64_t root_seed,
                         GossipWire wire, int fanout, int rounds,
                         std::size_t max_knowledge,
                         obs::LbReportBuilder* report)
    : slots_(static_cast<std::size_t>(num_ranks)),
      wire_{wire},
      fanout_{fanout},
      rounds_{rounds},
      max_knowledge_{max_knowledge},
      report_{report} {
  Rng const gossip_root = Rng{root_seed}.split(kGossipStreamTag);
  // Steady-state inform rounds must not allocate, so every capacity is
  // grown to its bound up front: knowledge and inbox to P entries (the
  // most any rank can ever learn), the snapshot pool to one slot per
  // forwarding event (a rank forwards at most once per round — the
  // `forwarded` bitmask — and a slot is recycled once its f messages
  // drain) with each buffer at the wire-format ceiling plus the round/flag
  // header. ~P*(rounds*13 + 32) bytes per rank, transient per balance().
  auto const pool_depth = static_cast<std::size_t>(std::max(rounds, 1));
  auto const pool_capacity =
      Knowledge::wire_capacity_bound(static_cast<std::size_t>(num_ranks)) +
      kHeaderBound;
  for (RankId r = 0; r < num_ranks; ++r) {
    auto& slot = slots_[static_cast<std::size_t>(r)];
    slot.rng = gossip_root.split(static_cast<std::uint64_t>(r));
    slot.knowledge.reserve(static_cast<std::size_t>(num_ranks));
    slot.inbox.reserve(static_cast<std::size_t>(num_ranks));
    slot.peers.reserve(static_cast<std::size_t>(
        std::min<RankId>(static_cast<RankId>(fanout), num_ranks)));
    slot.pool.prime(pool_depth, pool_capacity);
  }
}

void InformPlane::reset_epoch() {
  auto const p = static_cast<RankId>(slots_.size());
  for (RankId r = 0; r < p; ++r) {
    Slot& slot = slots_[static_cast<std::size_t>(r)];
    slot.knowledge.clear();
    slot.forwarded = 0;
    slot.hwm = 0;
    slot.need_full = true;
    // Draw the epoch's fixed peer set: min(f, P-1) distinct ranks != r,
    // uniform without replacement. Reusing one overlay for every forward
    // of the epoch is what makes delta payloads exactly equivalent to
    // full resend (each peer receives the whole contiguous forward
    // sequence); see the file comment. clear()+push_back keeps the
    // vector's capacity, so epochs after the first do not allocate.
    slot.peers.clear();
    auto const want = static_cast<std::size_t>(
        std::min<RankId>(static_cast<RankId>(fanout_), p - 1));
    while (slot.peers.size() < want) {
      auto const peer = static_cast<RankId>(
          slot.rng.uniform_below(static_cast<std::uint64_t>(p)));
      if (peer != r && std::find(slot.peers.begin(), slot.peers.end(),
                                 peer) == slot.peers.end()) {
        slot.peers.push_back(peer);
      }
    }
  }
}

void InformPlane::seed_and_forward(rt::RankContext& ctx, LoadType load) {
  auto& slot = slots_[static_cast<std::size_t>(ctx.rank())];
  slot.knowledge.insert(ctx.rank(), load);
  slot.forwarded |= 1ull;
  forward(ctx, 1);
}

void InformPlane::forward(rt::RankContext& ctx, int next_round) {
  auto& slot = slots_[static_cast<std::size_t>(ctx.rank())];
  // Serialize once per forwarding event; the f messages share one pooled
  // byte buffer (they carry identical wire data), which also bounds peak
  // memory when the lists approach O(P). Receivers deserialize, proving
  // the protocol serialization-clean.
  bool const truncated = slot.knowledge.take_truncated();
  bool const full =
      wire_ == GossipWire::full || slot.need_full || truncated;
  auto snap = slot.pool.acquire();
  rt::Packer packer{snap->bytes};
  packer.pack_varint(static_cast<std::uint64_t>(next_round));
  packer.pack(static_cast<std::uint8_t>(full ? 1 : 0));
  if (full) {
    slot.knowledge.pack_full(packer);
  } else {
    // An empty delta still goes out: the message itself is what keeps the
    // receipt-triggered cascade alive (Algorithm 1's round gating), and
    // it costs ~3 bytes.
    slot.knowledge.pack_delta(packer, slot.hwm);
  }
  slot.hwm = slot.knowledge.version_mark();
  slot.need_full = false;
  std::size_t const bytes = packer.size();
  auto self = shared_from_this();
  for (RankId const dest : slot.peers) {
    ctx.send(
        dest, bytes,
        [self, snap, bytes](rt::RankContext& c) {
          self->receive(c, snap, bytes);
        },
        rt::MessageKind::gossip);
  }
}

void InformPlane::receive(rt::RankContext& ctx,
                          std::shared_ptr<rt::SnapshotPool::Slot> const& snap,
                          std::size_t bytes) {
  auto& slot = slots_[static_cast<std::size_t>(ctx.rank())];
  rt::Unpacker unpacker{snap->bytes};
  auto const round = static_cast<int>(unpacker.unpack_varint());
  bool const full = unpacker.unpack<std::uint8_t>() != 0;
  slot.inbox.unpack_into(unpacker);
  TLB_ASSERT(unpacker.exhausted());
  slot.knowledge.merge(slot.inbox);
  slot.knowledge.truncate_random(max_knowledge_, slot.rng);
  if (report_ != nullptr) {
    report_->on_gossip_message(round, bytes, slot.knowledge.size(), full);
  }
  if (round < rounds_) {
    std::uint64_t const bit = 1ull << round;
    if ((slot.forwarded & bit) == 0) {
      slot.forwarded |= bit;
      forward(ctx, round + 1);
    }
  }
}

} // namespace tlb::lb
