#pragma once

/// \file hier.hpp
/// HierLB: a hierarchical (tree-structured) balancer in the style the
/// paper cites from Lifflander et al. [22] and Zheng's thesis. Ranks are
/// partitioned into ~sqrt(P) groups of ~sqrt(P); level 1 balances within
/// each group at its leader with LPT, level 2 moves excess tasks between
/// group leaders, and the receiving leaders place incoming tasks on their
/// least-loaded members. Communication is gather/scatter within groups and
/// leader-to-root at the top, giving the O(log-ish) structure that sits
/// between centralized GreedyLB and the fully distributed gossip schemes.

#include "lb/strategy/strategy.hpp"

namespace tlb::lb {

class HierStrategy final : public Strategy {
public:
  [[nodiscard]] std::string_view name() const override { return "hier"; }

  [[nodiscard]] StrategyResult balance(rt::Runtime& rt,
                                       StrategyInput const& input,
                                       LbParams const& params) override;
};

} // namespace tlb::lb
