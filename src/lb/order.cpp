#include "lb/order.hpp"

#include <algorithm>
#include <limits>

#include "support/assert.hpp"

namespace tlb::lb {

namespace {

/// Strict weak ordering: descending by load, ties ascending by id.
bool desc_load(TaskEntry const& a, TaskEntry const& b) {
  if (a.load != b.load) {
    return a.load > b.load;
  }
  return a.id < b.id;
}

/// Strict weak ordering: ascending by load, ties ascending by id.
bool asc_load(TaskEntry const& a, TaskEntry const& b) {
  if (a.load != b.load) {
    return a.load < b.load;
  }
  return a.id < b.id;
}

/// The shared "cutoff" comparator of Algorithms 5 and 6: tasks with load
/// <= cutoff sort descending (so the cutoff task itself is first), tasks
/// above the cutoff follow in ascending order. This is a valid strict weak
/// ordering: it partitions tasks into two groups with a consistent
/// inter-group order.
struct CutoffOrder {
  LoadType cutoff;

  bool operator()(TaskEntry const& a, TaskEntry const& b) const {
    bool const a_lo = a.load <= cutoff;
    bool const b_lo = b.load <= cutoff;
    if (a_lo && b_lo) {
      return desc_load(a, b);
    }
    if (!a_lo && !b_lo) {
      return asc_load(a, b);
    }
    return a_lo; // light group precedes heavy group
  }
};

std::vector<TaskEntry> copy(std::span<TaskEntry const> tasks) {
  return {tasks.begin(), tasks.end()};
}

} // namespace

std::vector<TaskEntry> order_load_intensive(std::span<TaskEntry const> tasks) {
  auto out = copy(tasks);
  std::sort(out.begin(), out.end(), desc_load);
  return out;
}

std::vector<TaskEntry> order_fewest_migrations(std::span<TaskEntry const>
                                                   tasks,
                                               LoadType l_ave, LoadType l_p) {
  auto out = copy(tasks);
  if (out.empty()) {
    return out;
  }
  LoadType const excess = l_p - l_ave;

  LoadType max_load = std::numeric_limits<LoadType>::lowest();
  for (TaskEntry const& t : out) {
    max_load = std::max(max_load, t.load);
  }
  // Algorithm 5 line 3: no single task can cover the excess; fall back to
  // descending order.
  if (max_load <= excess) {
    std::sort(out.begin(), out.end(), desc_load);
    return out;
  }

  // Cutoff: the smallest task load strictly greater than the excess.
  LoadType cutoff = max_load;
  for (TaskEntry const& t : out) {
    if (t.load > excess) {
      cutoff = std::min(cutoff, t.load);
    }
  }
  std::sort(out.begin(), out.end(), CutoffOrder{cutoff});
  return out;
}

std::vector<TaskEntry> order_lightest(std::span<TaskEntry const> tasks,
                                      LoadType l_ave, LoadType l_p) {
  auto out = copy(tasks);
  if (out.empty()) {
    return out;
  }
  LoadType const excess = l_p - l_ave;

  // Algorithm 6 line 5: ascending scan to find the marginal task — the
  // first task at which the cumulative (lightest-first) load reaches the
  // excess. If the rank is not overloaded the first (lightest) task is
  // marginal; if even the full sum cannot cover the excess the heaviest is.
  std::sort(out.begin(), out.end(), asc_load);
  LoadType marginal = out.back().load;
  LoadType prefix = 0.0;
  for (TaskEntry const& t : out) {
    prefix += t.load;
    if (prefix >= excess) {
      marginal = t.load;
      break;
    }
  }
  std::sort(out.begin(), out.end(), CutoffOrder{marginal});
  return out;
}

std::vector<TaskEntry> order_tasks(OrderKind kind,
                                   std::span<TaskEntry const> tasks,
                                   LoadType l_ave, LoadType l_p) {
  switch (kind) {
  case OrderKind::arbitrary: {
    // Deterministic stand-in for "hash iteration order": ascending id.
    auto out = copy(tasks);
    std::sort(out.begin(), out.end(),
              [](TaskEntry const& a, TaskEntry const& b) {
                return a.id < b.id;
              });
    return out;
  }
  case OrderKind::load_intensive:
    return order_load_intensive(tasks);
  case OrderKind::fewest_migrations:
    return order_fewest_migrations(tasks, l_ave, l_p);
  case OrderKind::lightest:
    return order_lightest(tasks, l_ave, l_p);
  }
  TLB_ASSERT(false);
  return {};
}

} // namespace tlb::lb
