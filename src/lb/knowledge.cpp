#include "lb/knowledge.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace tlb::lb {

namespace {

auto lower_bound_rank(std::vector<KnownRank> const& entries, RankId rank) {
  return std::lower_bound(
      entries.begin(), entries.end(), rank,
      [](KnownRank const& e, RankId r) { return e.rank < r; });
}

} // namespace

void Knowledge::insert(RankId rank, LoadType load) {
  auto const it = lower_bound_rank(entries_, rank);
  if (it != entries_.end() && it->rank == rank) {
    auto const idx = static_cast<std::size_t>(it - entries_.begin());
    entries_[idx].load = load;
    return;
  }
  entries_.insert(it, KnownRank{rank, load});
}

void Knowledge::merge(Knowledge const& other) {
  // Single-pass sorted merge keeping local loads on conflict.
  std::vector<KnownRank> merged;
  merged.reserve(entries_.size() + other.entries_.size());
  auto a = entries_.begin();
  auto b = other.entries_.begin();
  while (a != entries_.end() && b != other.entries_.end()) {
    if (a->rank < b->rank) {
      merged.push_back(*a++);
    } else if (b->rank < a->rank) {
      merged.push_back(*b++);
    } else {
      merged.push_back(*a++); // local load wins
      ++b;
    }
  }
  merged.insert(merged.end(), a, entries_.end());
  merged.insert(merged.end(), b, other.entries_.end());
  entries_ = std::move(merged);
}

void Knowledge::add_load(RankId rank, LoadType delta) {
  auto const it = lower_bound_rank(entries_, rank);
  TLB_EXPECTS(it != entries_.end() && it->rank == rank);
  auto const idx = static_cast<std::size_t>(it - entries_.begin());
  entries_[idx].load += delta;
}

bool Knowledge::contains(RankId rank) const {
  auto const it = lower_bound_rank(entries_, rank);
  return it != entries_.end() && it->rank == rank;
}

void Knowledge::truncate_to(std::size_t cap) {
  if (cap == 0 || entries_.size() <= cap) {
    return;
  }
  std::vector<KnownRank> by_load = entries_;
  std::nth_element(by_load.begin(),
                   by_load.begin() + static_cast<std::ptrdiff_t>(cap),
                   by_load.end(),
                   [](KnownRank const& a, KnownRank const& b) {
                     if (a.load != b.load) {
                       return a.load < b.load;
                     }
                     return a.rank < b.rank;
                   });
  by_load.resize(cap);
  std::sort(by_load.begin(), by_load.end(),
            [](KnownRank const& a, KnownRank const& b) {
              return a.rank < b.rank;
            });
  entries_ = std::move(by_load);
}

void Knowledge::pack(rt::Packer& packer) const {
  static_assert(std::is_trivially_copyable_v<KnownRank>);
  packer.pack(entries_);
}

Knowledge Knowledge::unpack(rt::Unpacker& unpacker) {
  Knowledge k;
  k.entries_ = unpacker.unpack_vector<KnownRank>();
  // Re-validate the sorted invariant rather than trusting the sender.
  for (std::size_t i = 1; i < k.entries_.size(); ++i) {
    TLB_ASSERT(k.entries_[i - 1].rank < k.entries_[i].rank);
  }
  return k;
}

void Knowledge::truncate_random(std::size_t cap, Rng& rng) {
  if (cap == 0 || entries_.size() <= cap) {
    return;
  }
  // Partial Fisher-Yates: move a random survivor into each of the first
  // `cap` slots, then restore the sorted-by-rank invariant.
  for (std::size_t i = 0; i < cap; ++i) {
    auto const j = i + rng.index(entries_.size() - i);
    using std::swap;
    swap(entries_[i], entries_[j]);
  }
  entries_.resize(cap);
  std::sort(entries_.begin(), entries_.end(),
            [](KnownRank const& a, KnownRank const& b) {
              return a.rank < b.rank;
            });
}

LoadType Knowledge::load_of(RankId rank) const {
  auto const it = lower_bound_rank(entries_, rank);
  TLB_EXPECTS(it != entries_.end() && it->rank == rank);
  return it->load;
}

} // namespace tlb::lb
