#include "lb/knowledge.hpp"

#include <algorithm>
#include <limits>

#include "support/assert.hpp"

namespace tlb::lb {

namespace {

auto lower_bound_rank(std::vector<KnownRank> const& entries, RankId rank) {
  return std::lower_bound(
      entries.begin(), entries.end(), rank,
      [](KnownRank const& e, RankId r) { return e.rank < r; });
}

} // namespace

void Knowledge::insert(RankId rank, LoadType load) {
  auto const it = lower_bound_rank(entries_, rank);
  if (it != entries_.end() && it->rank == rank) {
    auto const idx = static_cast<std::size_t>(it - entries_.begin());
    entries_[idx].load = load;
    entries_[idx].version = next_version_++;
    return;
  }
  entries_.insert(it, KnownRank{rank, next_version_++, load});
}

void Knowledge::merge(Knowledge const& other) {
  // Count the genuinely new ranks first, so the merge can run in place:
  // grow once, then fill back to front (descending rank) without ever
  // overwriting a local entry that has not been consumed yet.
  std::size_t fresh = 0;
  {
    auto a = entries_.begin();
    for (auto const& e : other.entries_) {
      while (a != entries_.end() && a->rank < e.rank) {
        ++a;
      }
      if (a == entries_.end() || a->rank != e.rank) {
        ++fresh;
      }
    }
  }
  if (fresh == 0) {
    return; // local load wins on every conflict; nothing to do
  }
  auto const old_size = entries_.size();
  entries_.resize(old_size + fresh);
  // Stamp new entries so ascending rank gets ascending versions, matching
  // what repeated insert() calls in rank order would have produced. The
  // backward fill visits fresh ranks in descending order, so stamps are
  // handed out from the top down.
  std::uint32_t stamp = next_version_ + static_cast<std::uint32_t>(fresh) - 1;
  next_version_ += static_cast<std::uint32_t>(fresh);
  auto out = entries_.end();
  auto a = entries_.begin() + static_cast<std::ptrdiff_t>(old_size);
  auto b = other.entries_.end();
  while (b != other.entries_.begin()) {
    auto const& incoming = *(b - 1);
    // Drain local entries above the incoming rank, consuming the match if
    // one exists (local load wins).
    bool matched = false;
    while (a != entries_.begin()) {
      auto const& local = *(a - 1);
      if (local.rank < incoming.rank) {
        break;
      }
      matched = local.rank == incoming.rank;
      *--out = *--a;
      if (matched) {
        break;
      }
    }
    if (!matched) {
      *--out = KnownRank{incoming.rank, stamp--, incoming.load};
    }
    --b;
  }
  TLB_ENSURES(out == a); // remaining prefix is already in place
}

void Knowledge::add_load(RankId rank, LoadType delta) {
  auto const it = lower_bound_rank(entries_, rank);
  TLB_EXPECTS(it != entries_.end() && it->rank == rank);
  auto const idx = static_cast<std::size_t>(it - entries_.begin());
  entries_[idx].load += delta;
  entries_[idx].version = next_version_++;
}

bool Knowledge::contains(RankId rank) const {
  auto const it = lower_bound_rank(entries_, rank);
  return it != entries_.end() && it->rank == rank;
}

void Knowledge::truncate_to(std::size_t cap) {
  if (cap == 0 || entries_.size() <= cap) {
    return;
  }
  std::vector<KnownRank> by_load = entries_;
  std::nth_element(by_load.begin(),
                   by_load.begin() + static_cast<std::ptrdiff_t>(cap),
                   by_load.end(),
                   [](KnownRank const& a, KnownRank const& b) {
                     if (a.load != b.load) {
                       return a.load < b.load;
                     }
                     return a.rank < b.rank;
                   });
  by_load.resize(cap);
  std::sort(by_load.begin(), by_load.end(),
            [](KnownRank const& a, KnownRank const& b) {
              return a.rank < b.rank;
            });
  entries_ = std::move(by_load);
  truncated_ = true;
}

void Knowledge::truncate_random(std::size_t cap, Rng& rng) {
  if (cap == 0 || entries_.size() <= cap) {
    return;
  }
  // Partial Fisher-Yates: move a random survivor into each of the first
  // `cap` slots, then restore the sorted-by-rank invariant.
  for (std::size_t i = 0; i < cap; ++i) {
    auto const j = i + rng.index(entries_.size() - i);
    using std::swap;
    swap(entries_[i], entries_[j]);
  }
  entries_.resize(cap);
  std::sort(entries_.begin(), entries_.end(),
            [](KnownRank const& a, KnownRank const& b) {
              return a.rank < b.rank;
            });
  truncated_ = true;
}

LoadType Knowledge::load_of(RankId rank) const {
  auto const it = lower_bound_rank(entries_, rank);
  TLB_EXPECTS(it != entries_.end() && it->rank == rank);
  return it->load;
}

std::size_t Knowledge::delta_count(std::uint32_t since) const {
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [since](KnownRank const& e) { return e.version > since; }));
}

Knowledge Knowledge::delta_copy(std::uint32_t since) const {
  Knowledge out;
  out.entries_.reserve(delta_count(since));
  for (auto const& e : entries_) {
    if (e.version > since) {
      out.entries_.push_back(KnownRank{e.rank, out.next_version_++, e.load});
    }
  }
  return out;
}

std::size_t Knowledge::encoded_bytes(std::uint32_t since) const {
  std::size_t count = 0;
  std::size_t id_bytes = 0;
  RankId prev = -1; // first selected id is encoded absolute (prev + 1 == 0)
  for (auto const& e : entries_) {
    if (e.version <= since) {
      continue;
    }
    id_bytes +=
        rt::varint_size(static_cast<std::uint64_t>(e.rank - prev - 1));
    prev = e.rank;
    ++count;
  }
  return rt::varint_size(count) + id_bytes + count * sizeof(LoadType);
}

void Knowledge::pack_since(rt::Packer& packer, std::uint32_t since) const {
  auto const start = packer.size();
  packer.pack_varint(delta_count(since));
  RankId prev = -1;
  for (auto const& e : entries_) {
    if (e.version <= since) {
      continue;
    }
    packer.pack_varint(static_cast<std::uint64_t>(e.rank - prev - 1));
    prev = e.rank;
  }
  for (auto const& e : entries_) {
    if (e.version <= since) {
      continue;
    }
    packer.pack(e.load);
  }
  // The byte accountant and the serializer share encoded_bytes(); if the
  // two ever disagree the modeled traffic is a lie, so fail loudly.
  TLB_ENSURES(packer.size() - start == encoded_bytes(since));
}

Knowledge Knowledge::unpack(rt::Unpacker& unpacker) {
  Knowledge k;
  k.unpack_into(unpacker);
  return k;
}

void Knowledge::unpack_into(rt::Unpacker& unpacker) {
  auto const n = static_cast<std::size_t>(unpacker.unpack_varint());
  entries_.clear();
  entries_.resize(n);
  std::int64_t prev = -1;
  for (std::size_t i = 0; i < n; ++i) {
    auto const gap = unpacker.unpack_varint();
    // Delta decoding reconstructs a strictly increasing sequence by
    // construction, so the sorted invariant holds without re-validation;
    // only overflow of the id space needs rejecting.
    auto const rank = static_cast<std::uint64_t>(prev + 1) + gap;
    TLB_EXPECTS(rank <= static_cast<std::uint64_t>(
                            std::numeric_limits<RankId>::max()));
    entries_[i].rank = static_cast<RankId>(rank);
    entries_[i].version = static_cast<std::uint32_t>(i) + 1;
    prev = entries_[i].rank;
  }
  for (std::size_t i = 0; i < n; ++i) {
    entries_[i].load = unpacker.unpack<LoadType>();
  }
  next_version_ = static_cast<std::uint32_t>(n) + 1;
  truncated_ = false;
}

} // namespace tlb::lb
