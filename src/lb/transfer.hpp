#pragma once

/// \file transfer.hpp
/// The transfer stage of the gossip load balancer (Algorithm 2), written as
/// a pure function over one rank's local state so it is shared verbatim by
/// the sequential analysis framework (src/lbaf) and the distributed
/// strategies (src/lb/strategy). All paper variants are reachable through
/// LbParams: original/relaxed criterion, original/modified CMF, build-once
/// vs recompute vs incremental (Fenwick-backed, O(log |S^p|) per
/// candidate), and the four §V-E orderings.

#include <vector>

#include "lb/knowledge.hpp"
#include "lb/lb_types.hpp"
#include "support/rng.hpp"

namespace tlb::lb {

/// Outcome of one rank's transfer pass.
struct TransferResult {
  /// Proposed migrations M^p with TARGET^p() (Algorithm 2 lines 15-16).
  std::vector<Migration> migrations;
  /// Candidate tasks whose proposed transfer the criterion accepted.
  std::size_t accepted = 0;
  /// Candidate tasks whose proposed transfer the criterion rejected.
  std::size_t rejected = 0;
  /// Candidates skipped because no sampleable recipient existed.
  std::size_t no_target = 0;
  /// O(n) CMF constructions this pass: 1 for build_once, one per
  /// candidate for recompute, 1 + the Fenwick escalation count for
  /// incremental (observability for the §V-A change-#3 cost claim).
  std::size_t cmf_rebuilds = 0;
  /// This rank's load after the proposed (speculative) transfers.
  LoadType final_load = 0.0;
};

/// Run the transfer stage for rank `self`.
///
/// \param params    Algorithm variant and threshold h.
/// \param self      This rank's id (never chosen as a recipient).
/// \param tasks     T^p, the rank's current tasks with loads.
/// \param l_p       The rank's current load; must equal the sum of task
///                  loads plus any unmigratable background load.
/// \param l_ave     Global average rank load from the statistics reduction.
/// \param knowledge LOAD^p() gathered in the inform stage. Updated in
///                  place as transfers are accepted (line 12), so callers
///                  running iterative refinement carry the speculative
///                  recipient loads forward.
/// \param rng       Deterministic sampling stream.
[[nodiscard]] TransferResult
run_transfer(LbParams const& params, RankId self,
             std::vector<TaskEntry> const& tasks, LoadType l_p, LoadType l_ave,
             Knowledge& knowledge, Rng& rng);

} // namespace tlb::lb
