#pragma once

/// \file criterion.hpp
/// Transfer-acceptance criteria (Algorithm 2, EVALUATECRITERION).
///
/// original (line 35):  accept iff  l_x + LOAD(o) <  l_ave
/// relaxed  (line 37):  accept iff  LOAD(o)       <  l^p − l_x
///                      equivalently l_x + LOAD(o) < l^p
///
/// §V-C proves the relaxed criterion is *optimal* for this transfer
/// strategy: Lemma 1 (accepting such a transfer strictly decreases
/// max(l_i, l_x) and hence cannot increase the objective F(D) = I_D − h + 1),
/// and Lemma 2 (any transfer violating it cannot decrease F). The property
/// tests in tests/lb/criterion_test.cpp check both lemmas numerically.

#include "lb/lb_types.hpp"
#include "support/types.hpp"

namespace tlb::lb {

/// Evaluate whether the task with load `task_load` may move from the rank
/// whose current (speculative) load is `l_p` to a recipient whose
/// last-known load is `l_x`.
[[nodiscard]] constexpr bool evaluate_criterion(CriterionKind kind,
                                                LoadType l_x,
                                                LoadType task_load,
                                                LoadType l_ave, LoadType l_p) {
  switch (kind) {
  case CriterionKind::original:
    return l_x + task_load < l_ave;
  case CriterionKind::relaxed:
    return task_load < l_p - l_x;
  }
  return false;
}

/// Lemma 1's consequence, as an audit predicate: moving a task of load
/// `task_load` from a rank at `l_p` to one at `l_x` must not increase
/// max(l_p, l_x) — and must strictly decrease it when the task carries
/// positive load. Any transfer the relaxed criterion accepts satisfies
/// this, which is why F(D) = I_D − h + 1 is monotone under the relaxed
/// rule; the invariant auditor checks it on every accepted transfer.
[[nodiscard]] constexpr bool
transfer_preserves_objective(LoadType l_x, LoadType task_load, LoadType l_p) {
  LoadType const before = l_p > l_x ? l_p : l_x;
  LoadType const sender_after = l_p - task_load;
  LoadType const recv_after = l_x + task_load;
  LoadType const after = sender_after > recv_after ? sender_after : recv_after;
  // Lemma 1 gives a strict decrease in exact arithmetic. The criterion,
  // however, compares task_load < l_p − l_x while this predicate
  // recombines l_x + task_load: when task_load is tiny relative to the
  // loads the two roundings can disagree by an ulp, so the audit checks
  // non-increase up to a relative rounding tolerance instead of bitwise
  // strictness.
  LoadType const tol =
      1e-12 * (before > LoadType{1} ? before : LoadType{1});
  return after <= before + tol;
}

} // namespace tlb::lb
