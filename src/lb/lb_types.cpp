#include "lb/lb_types.hpp"

#include <stdexcept>
#include <string>

namespace tlb::lb {

LbParams LbParams::grapevine() {
  LbParams p;
  p.criterion = CriterionKind::original;
  p.cmf = CmfKind::original;
  p.refresh = CmfRefresh::build_once;
  p.order = OrderKind::arbitrary;
  p.num_iterations = 1;
  p.num_trials = 1;
  return p;
}

LbParams LbParams::tempered() {
  LbParams p;
  p.criterion = CriterionKind::relaxed;
  p.cmf = CmfKind::modified;
  p.refresh = CmfRefresh::recompute;
  p.order = OrderKind::fewest_migrations;
  p.num_iterations = 8;
  p.num_trials = 10;
  return p;
}

LbParams LbParams::tempered_fast() {
  LbParams p = tempered();
  p.refresh = CmfRefresh::incremental;
  return p;
}

std::string_view to_string(CmfKind kind) {
  switch (kind) {
  case CmfKind::original: return "original";
  case CmfKind::modified: return "modified";
  }
  return "?";
}

std::string_view to_string(CmfRefresh refresh) {
  switch (refresh) {
  case CmfRefresh::build_once: return "build_once";
  case CmfRefresh::recompute: return "recompute";
  case CmfRefresh::incremental: return "incremental";
  }
  return "?";
}

std::string_view to_string(CriterionKind kind) {
  switch (kind) {
  case CriterionKind::original: return "original";
  case CriterionKind::relaxed: return "relaxed";
  }
  return "?";
}

std::string_view to_string(OrderKind kind) {
  switch (kind) {
  case OrderKind::arbitrary: return "arbitrary";
  case OrderKind::load_intensive: return "load_intensive";
  case OrderKind::fewest_migrations: return "fewest_migrations";
  case OrderKind::lightest: return "lightest";
  }
  return "?";
}

std::string_view to_string(GossipWire wire) {
  switch (wire) {
  case GossipWire::full: return "full";
  case GossipWire::delta: return "delta";
  }
  return "?";
}

OrderKind order_from_string(std::string_view name) {
  if (name == "arbitrary") {
    return OrderKind::arbitrary;
  }
  if (name == "load_intensive") {
    return OrderKind::load_intensive;
  }
  if (name == "fewest_migrations") {
    return OrderKind::fewest_migrations;
  }
  if (name == "lightest") {
    return OrderKind::lightest;
  }
  throw std::invalid_argument("unknown ordering '" + std::string{name} + "'");
}

} // namespace tlb::lb
