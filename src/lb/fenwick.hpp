#pragma once

/// \file fenwick.hpp
/// A Fenwick (binary-indexed) tree over non-negative double weights: the
/// sampling substrate of IncrementalCmf. Supports O(n) bulk build, O(log n)
/// point add, O(log n) prefix sums, and the classic O(log n) prefix-search
/// descent ("find the first element whose cumulative weight exceeds t"),
/// which turns an inverse-CMF draw into a tree walk instead of a rebuilt
/// cumulative vector.

#include <cstddef>
#include <vector>

#include "support/assert.hpp"

namespace tlb::lb {

class FenwickTree {
public:
  FenwickTree() = default;

  /// Bulk build from `weights` in O(n): seed each node with its own value,
  /// then push partial sums to each node's parent range.
  explicit FenwickTree(std::vector<double> const& weights) {
    assign(weights);
  }

  void assign(std::vector<double> const& weights) {
    n_ = weights.size();
    tree_.assign(n_ + 1, 0.0);
    for (std::size_t i = 1; i <= n_; ++i) {
      tree_[i] += weights[i - 1];
      std::size_t const parent = i + (i & (~i + 1));
      if (parent <= n_) {
        tree_[parent] += tree_[i];
      }
    }
    // Highest power of two <= n, precomputed for the descent.
    top_ = 1;
    while ((top_ << 1) <= n_) {
      top_ <<= 1;
    }
  }

  [[nodiscard]] std::size_t size() const { return n_; }

  /// Add `delta` to the weight at 0-based index `i`.
  void add(std::size_t i, double delta) {
    TLB_EXPECTS(i < n_);
    for (std::size_t j = i + 1; j <= n_; j += j & (~j + 1)) {
      tree_[j] += delta;
    }
  }

  /// Sum of the first `count` weights (0-based exclusive prefix).
  [[nodiscard]] double prefix(std::size_t count) const {
    TLB_EXPECTS(count <= n_);
    double sum = 0.0;
    for (std::size_t j = count; j > 0; j -= j & (~j + 1)) {
      sum += tree_[j];
    }
    return sum;
  }

  /// Total weight (prefix over everything).
  [[nodiscard]] double total() const { return prefix(n_); }

  /// Largest `j` such that prefix(j) <= target, i.e. the 0-based index of
  /// the first element whose cumulative weight exceeds `target`. Elements
  /// with zero weight are never selected (their cumulative sum ties the
  /// predecessor's, so the descent walks past them). A `target` at or
  /// beyond total() returns size(); callers clamp.
  [[nodiscard]] std::size_t lower_bound(double target) const {
    std::size_t pos = 0;
    for (std::size_t step = top_; step > 0; step >>= 1) {
      std::size_t const next = pos + step;
      if (next <= n_ && tree_[next] <= target) {
        target -= tree_[next];
        pos = next;
      }
    }
    return pos;
  }

private:
  std::size_t n_ = 0;
  std::size_t top_ = 1;
  std::vector<double> tree_; // 1-indexed implicit binary-indexed layout
};

} // namespace tlb::lb
