#pragma once

/// \file cmf.hpp
/// The cumulative mass function used to pick a transfer recipient
/// (Algorithm 2, BUILDCMF). A rank's sampling weight is proportional to its
/// load headroom relative to the normalizer l_s:
///
///   original: l_s = l_ave;                      p_i ∝ 1 − load_i / l_s
///   modified: l_s = max(l_ave, max known load); p_i ∝ 1 − load_i / l_s
///
/// Under the relaxed criterion a known rank's (speculative) load may exceed
/// l_ave, which would make the original weight negative; the modified
/// normalizer keeps every weight non-negative (§V-C, change #5). Entries
/// with non-positive weight are excluded from sampling.

#include <span>
#include <vector>

#include "lb/knowledge.hpp"
#include "lb/lb_types.hpp"
#include "support/rng.hpp"

namespace tlb::lb {

/// A built CMF over a snapshot of known ranks. Value type: cheap to rebuild
/// every candidate when CmfRefresh::recompute is selected.
class Cmf {
public:
  /// Build from the current knowledge. `self` is excluded (a rank never
  /// transfers to itself).
  Cmf(CmfKind kind, std::span<KnownRank const> known, LoadType l_ave,
      RankId self);

  /// True when no rank has positive headroom (sampling impossible).
  [[nodiscard]] bool empty() const { return cumulative_.empty(); }
  [[nodiscard]] std::size_t size() const { return cumulative_.size(); }

  /// Sample a recipient rank; precondition: !empty().
  [[nodiscard]] RankId sample(Rng& rng) const;

  /// Probability assigned to the i-th *sampleable* entry (for tests).
  [[nodiscard]] double probability(std::size_t i) const;
  /// Rank of the i-th sampleable entry.
  [[nodiscard]] RankId rank_at(std::size_t i) const;

  /// The normalizer l_s actually used.
  [[nodiscard]] LoadType normalizer() const { return l_s_; }

private:
  friend void audit_cmf(Cmf const& cmf, CmfKind kind,
                        std::span<KnownRank const> known, LoadType l_ave,
                        RankId self);
  std::vector<RankId> ranks_;
  std::vector<double> cumulative_; // strictly increasing, back() == 1.0
  LoadType l_s_ = 0.0;
};

/// Invariant auditor entry point: check that `prefix` is a valid built CMF
/// prefix vector — entries in (0, 1], monotone non-decreasing, last pinned
/// to exactly 1. No-op unless the audit build is active; exposed separately
/// from the constructor hook so auditor self-tests can feed it corrupted
/// vectors (tests/support/check_test.cpp).
void audit_cmf_prefix(std::span<double const> prefix);

/// Full audit of a built Cmf against the knowledge it was built from:
/// prefix validity plus the normalizer bounds (l_s == l_ave for the
/// original kind; l_s ≥ max known non-self load and ≥ l_ave for the
/// modified kind, §V-C change #5) and self-exclusion.
void audit_cmf(Cmf const& cmf, CmfKind kind, std::span<KnownRank const> known,
               LoadType l_ave, RankId self);

} // namespace tlb::lb
