#pragma once

/// \file order.hpp
/// Candidate-task traversal orderings for the transfer loop (§V-E,
/// Algorithms 4-6). All orderings are deterministic: ties in load are
/// broken by ascending task id so the same input always yields the same
/// sequence of proposed transfers.

#include <span>
#include <vector>

#include "lb/lb_types.hpp"

namespace tlb::lb {

/// Produce the traversal order O^p for the transfer stage.
/// \param kind   Which §V-E strategy to apply.
/// \param tasks  The rank's current tasks T^p.
/// \param l_ave  Global average rank load.
/// \param l_p    This rank's current load (used for the excess-based
///               orderings of Algorithms 5 and 6).
[[nodiscard]] std::vector<TaskEntry> order_tasks(OrderKind kind,
                                                 std::span<TaskEntry const>
                                                     tasks,
                                                 LoadType l_ave, LoadType l_p);

/// Algorithm 4: descending load ("Migrate Load-Intensive Tasks").
[[nodiscard]] std::vector<TaskEntry>
order_load_intensive(std::span<TaskEntry const> tasks);

/// Algorithm 5: "Fewest Migrations". The smallest task whose load exceeds
/// the excess l^p − l_ave comes first (it can resolve the overload in a
/// single migration); then lighter tasks by descending load, then heavier
/// tasks by ascending load. Falls back to descending order when no single
/// task covers the excess.
[[nodiscard]] std::vector<TaskEntry>
order_fewest_migrations(std::span<TaskEntry const> tasks, LoadType l_ave,
                        LoadType l_p);

/// Algorithm 6: "Migrate Most Lightweight Tasks". The marginal task — the
/// heaviest of the ascending-prefix of tasks whose cumulative load first
/// covers the excess — comes first; then lighter tasks descending, then
/// heavier ascending.
[[nodiscard]] std::vector<TaskEntry>
order_lightest(std::span<TaskEntry const> tasks, LoadType l_ave, LoadType l_p);

} // namespace tlb::lb
