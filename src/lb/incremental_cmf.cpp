#include "lb/incremental_cmf.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace tlb::lb {

IncrementalCmf::IncrementalCmf(CmfKind kind, std::span<KnownRank const> known,
                               LoadType l_ave, RankId self)
    : kind_{kind}, self_{self}, l_ave_{l_ave} {
  rebuild(known);
  rebuilds_ = 0; // the constructor's build is not an escalation
}

void IncrementalCmf::rebuild(std::span<KnownRank const> known) {
  ranks_.clear();
  loads_.clear();
  ranks_.reserve(known.size());
  loads_.reserve(known.size());
  for (KnownRank const& e : known) {
    if (e.rank == self_) {
      continue;
    }
    ranks_.push_back(e.rank);
    loads_.push_back(e.load);
  }
  rebuild_weights();
}

void IncrementalCmf::rebuild_weights() {
  ++rebuilds_;
  l_s_ = l_ave_;
  if (kind_ == CmfKind::modified) {
    for (LoadType const l : loads_) {
      l_s_ = std::max(l_s_, l);
    }
  }
  weights_.assign(loads_.size(), 0.0);
  positive_ = 0;
  if (l_s_ > 0.0) {
    for (std::size_t i = 0; i < loads_.size(); ++i) {
      double const w = weight_of(loads_[i]);
      weights_[i] = w;
      positive_ += w > 0.0 ? 1 : 0;
    }
  }
  tree_.assign(weights_);
}

double IncrementalCmf::weight_of(LoadType load) const {
  double const w = 1.0 - load / l_s_;
  return w > 0.0 ? w : 0.0;
}

std::size_t IncrementalCmf::index_of(RankId rank) const {
  auto const it = std::lower_bound(ranks_.begin(), ranks_.end(), rank);
  TLB_EXPECTS(it != ranks_.end() && *it == rank);
  return static_cast<std::size_t>(it - ranks_.begin());
}

bool IncrementalCmf::contains(RankId rank) const {
  auto const it = std::lower_bound(ranks_.begin(), ranks_.end(), rank);
  return it != ranks_.end() && *it == rank;
}

void IncrementalCmf::add_load(RankId rank, LoadType delta) {
  auto const i = index_of(rank);
  LoadType const old_load = loads_[i];
  LoadType const new_load = old_load + delta;
  loads_[i] = new_load;

  if (kind_ == CmfKind::modified &&
      (new_load > l_s_ || (old_load >= l_s_ && new_load < old_load))) {
    // Normalizer shift: the updated rank either overtook l_s or was the
    // rank realizing it and shrank. Every weight changes; O(n) refill.
    rebuild_weights();
    return;
  }
  if (l_s_ <= 0.0) {
    return; // degenerate normalizer: nothing is sampleable regardless
  }
  double const old_w = weights_[i];
  double const new_w = weight_of(new_load);
  weights_[i] = new_w;
  positive_ += (new_w > 0.0 ? 1 : 0) - (old_w > 0.0 ? 1 : 0);
  tree_.add(i, new_w - old_w);
}

RankId IncrementalCmf::sample(Rng& rng) const {
  TLB_EXPECTS(!empty());
  double const u = rng.uniform();
  auto idx = tree_.lower_bound(u * tree_.total());
  if (idx >= ranks_.size()) {
    // u*total reached total() through rounding: clamp to the last
    // sampleable entry, exactly as Cmf pins its last bucket to 1.0.
    idx = ranks_.size() - 1;
    while (idx > 0 && weights_[idx] <= 0.0) {
      --idx;
    }
  }
  return ranks_[idx];
}

double IncrementalCmf::probability_of(RankId rank) const {
  auto const it = std::lower_bound(ranks_.begin(), ranks_.end(), rank);
  if (it == ranks_.end() || *it != rank) {
    return 0.0;
  }
  double const total = tree_.total();
  if (total <= 0.0) {
    return 0.0;
  }
  return weights_[static_cast<std::size_t>(it - ranks_.begin())] / total;
}

} // namespace tlb::lb
