#include "lb/incremental_cmf.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"
#include "support/check.hpp"

namespace tlb::lb {

void IncrementalCmf::audit_consistency() const {
  TLB_AUDIT_BLOCK {
    // Shadow recompute: the incrementally maintained state must match what
    // a from-scratch rebuild over the same loads would produce.
    double sum = 0.0;
    std::size_t positive = 0;
    LoadType max_load = 0.0;
    bool weights_match = true;
    for (std::size_t i = 0; i < loads_.size(); ++i) {
      double const expect =
          l_s_ > 0.0 ? std::max(0.0, 1.0 - loads_[i] / l_s_) : 0.0;
      weights_match =
          weights_match && std::abs(weights_[i] - expect) <= 1e-12;
      sum += weights_[i];
      positive += weights_[i] > 0.0 ? 1 : 0;
      max_load = std::max(max_load, loads_[i]);
    }
    TLB_INVARIANT(weights_match,
                  "incremental CMF weights match recompute from loads");
    TLB_INVARIANT(positive == positive_,
                  "incremental CMF positive-weight count cache consistent");
    TLB_INVARIANT(std::abs(tree_.total() - sum) <=
                      1e-9 * std::max(1.0, sum),
                  "Fenwick total equals sum of weights");
    if (kind_ == CmfKind::modified && l_s_ > 0.0) {
      TLB_INVARIANT(l_s_ >= l_ave_, "modified normalizer >= l_ave");
      TLB_INVARIANT(l_s_ >= max_load,
                    "modified normalizer >= max tracked load");
    }
  }
}

IncrementalCmf::IncrementalCmf(CmfKind kind, std::span<KnownRank const> known,
                               LoadType l_ave, RankId self)
    : kind_{kind}, self_{self}, l_ave_{l_ave} {
  rebuild(known);
  rebuilds_ = 0; // the constructor's build is not an escalation
}

void IncrementalCmf::rebuild(std::span<KnownRank const> known) {
  ranks_.clear();
  loads_.clear();
  ranks_.reserve(known.size());
  loads_.reserve(known.size());
  for (KnownRank const& e : known) {
    if (e.rank == self_) {
      continue;
    }
    ranks_.push_back(e.rank);
    loads_.push_back(e.load);
  }
  rebuild_weights();
}

void IncrementalCmf::rebuild_weights() {
  ++rebuilds_;
  l_s_ = l_ave_;
  if (kind_ == CmfKind::modified) {
    for (LoadType const l : loads_) {
      l_s_ = std::max(l_s_, l);
    }
  }
  weights_.assign(loads_.size(), 0.0);
  positive_ = 0;
  if (l_s_ > 0.0) {
    for (std::size_t i = 0; i < loads_.size(); ++i) {
      double const w = weight_of(loads_[i]);
      weights_[i] = w;
      positive_ += w > 0.0 ? 1 : 0;
    }
  }
  tree_.assign(weights_);
  audit_consistency();
}

double IncrementalCmf::weight_of(LoadType load) const {
  double const w = 1.0 - load / l_s_;
  return w > 0.0 ? w : 0.0;
}

std::size_t IncrementalCmf::index_of(RankId rank) const {
  auto const it = std::lower_bound(ranks_.begin(), ranks_.end(), rank);
  TLB_EXPECTS(it != ranks_.end() && *it == rank);
  return static_cast<std::size_t>(it - ranks_.begin());
}

bool IncrementalCmf::contains(RankId rank) const {
  auto const it = std::lower_bound(ranks_.begin(), ranks_.end(), rank);
  return it != ranks_.end() && *it == rank;
}

void IncrementalCmf::add_load(RankId rank, LoadType delta) {
  auto const i = index_of(rank);
  LoadType const old_load = loads_[i];
  LoadType const new_load = old_load + delta;
  loads_[i] = new_load;

  if (kind_ == CmfKind::modified &&
      (new_load > l_s_ || (old_load >= l_s_ && new_load < old_load))) {
    // Normalizer shift: the updated rank either overtook l_s or was the
    // rank realizing it and shrank. Every weight changes; O(n) refill.
    rebuild_weights();
    return;
  }
  if (l_s_ <= 0.0) {
    audit_consistency();
    return; // degenerate normalizer: nothing is sampleable regardless
  }
  double const old_w = weights_[i];
  double const new_w = weight_of(new_load);
  weights_[i] = new_w;
  if (new_w > 0.0 && old_w <= 0.0) {
    ++positive_;
  } else if (new_w <= 0.0 && old_w > 0.0) {
    --positive_;
  }
  tree_.add(i, new_w - old_w);
  audit_consistency();
}

RankId IncrementalCmf::sample(Rng& rng) const {
  TLB_EXPECTS(!empty());
  double const u = rng.uniform();
  auto idx = tree_.lower_bound(u * tree_.total());
  if (idx >= ranks_.size()) {
    // u*total reached total() through rounding: clamp to the last
    // sampleable entry, exactly as Cmf pins its last bucket to 1.0.
    idx = ranks_.size() - 1;
    while (idx > 0 && weights_[idx] <= 0.0) {
      --idx;
    }
  }
  return ranks_[idx];
}

double IncrementalCmf::probability_of(RankId rank) const {
  auto const it = std::lower_bound(ranks_.begin(), ranks_.end(), rank);
  if (it == ranks_.end() || *it != rank) {
    return 0.0;
  }
  double const total = tree_.total();
  if (total <= 0.0) {
    return 0.0;
  }
  return weights_[static_cast<std::size_t>(it - ranks_.begin())] / total;
}

} // namespace tlb::lb
