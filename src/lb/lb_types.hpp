#pragma once

/// \file lb_types.hpp
/// Vocabulary types for the load-balancing algorithms: the algorithm
/// variants the paper studies (§V) and the data they exchange.

#include <cstdint>
#include <string_view>
#include <vector>

#include "support/types.hpp"

namespace tlb::lb {

/// A task as the balancer sees it: identity plus measured load.
struct TaskEntry {
  TaskId id = invalid_task;
  LoadType load = 0.0;

  friend bool operator==(TaskEntry const&, TaskEntry const&) = default;
};

/// CMF normalization (Algorithm 2, BUILDCMF).
///   original: l_s = l_ave                      (GrapevineLB)
///   modified: l_s = max(l_ave, max known load) (§V-C, change #5)
enum class CmfKind : std::uint8_t { original, modified };

/// When to (re)build the CMF during the transfer loop (§V-A, change #3).
///   build_once:  once before the loop (GrapevineLB, Algorithm 2 line 5)
///   recompute:   before every candidate task (TemperedLB, line 7);
///                O(|S^p|) per candidate — the reference path
///   incremental: TemperedLB semantics via IncrementalCmf — the
///                distribution is point-updated in O(log |S^p|) as
///                speculative transfers land, with a full rebuild only on
///                normalizer shifts; equivalent to recompute up to
///                floating-point rounding at sampling-bucket boundaries
enum class CmfRefresh : std::uint8_t { build_once, recompute, incremental };

/// Transfer-acceptance criterion (Algorithm 2, EVALUATECRITERION).
///   original: l_x + LOAD(o) < l_ave  (line 35, GrapevineLB)
///   relaxed:  LOAD(o) < l^p − l_x    (line 37, proven optimal in §V-C)
enum class CriterionKind : std::uint8_t { original, relaxed };

/// Candidate-task traversal order for the transfer loop (§V-E).
///   arbitrary:         identity order (original GrapevineLB)
///   load_intensive:    descending load (Algorithm 4, straw-man)
///   fewest_migrations: cutoff-task-first (Algorithm 5, best in Fig. 4d)
///   lightest:          marginal-task-first (Algorithm 6)
enum class OrderKind : std::uint8_t {
  arbitrary,
  load_intensive,
  fewest_migrations,
  lightest
};

/// How a forwarding event serializes its knowledge (the gossip wire
/// plane; see DESIGN.md "Gossip wire plane").
///   full:  every forward ships the rank's entire knowledge set — the
///          O(rounds x fanout x |S^p|) baseline of Algorithm 1.
///   delta: each forward ships only entries new or changed since the
///          rank's previous forwarding event (per-forward high-water
///          mark over version stamps); the first forward and any forward
///          after a truncation fall back to a full snapshot.
enum class GossipWire : std::uint8_t { full, delta };

/// Full parameterization of one inform+transfer pass. The named presets
/// below reproduce the paper's configurations.
struct LbParams {
  CriterionKind criterion = CriterionKind::relaxed;
  CmfKind cmf = CmfKind::modified;
  CmfRefresh refresh = CmfRefresh::recompute;
  OrderKind order = OrderKind::fewest_migrations;
  /// Relative imbalance threshold h: the transfer loop runs while
  /// l^p > h * l_ave.
  double threshold = 1.0;
  /// Gossip fanout f.
  int fanout = 6;
  /// Gossip rounds k.
  int rounds = 10;
  /// Iterative-refinement iterations per trial (Algorithm 3). GrapevineLB
  /// corresponds to a single iteration and a single trial.
  int num_iterations = 8;
  /// Independent trials, each restarted from the pre-LB assignment.
  int num_trials = 10;
  /// Cap on the number of underloaded ranks a rank keeps/gossips
  /// (lowest-load entries win). 0 means unlimited — the paper's published
  /// configuration; a positive cap implements the footnote-2 future-work
  /// direction of bounding the O(P) knowledge lists.
  int max_knowledge = 0;
  /// Wire encoding of gossip forwards. Delta is the default: with the
  /// paper's saturating fanout/rounds it converges to the same knowledge
  /// sets as full resend (pinned by the equivalence tests) at a fraction
  /// of the bytes.
  GossipWire gossip_wire = GossipWire::delta;
  /// Use negative acknowledgements on speculative transfers: a recipient
  /// that the proposal would push past the threshold bounces the task
  /// back to the sender. Menon et al.'s original design point; the paper
  /// deliberately drops it (§V-A) in favor of CMF recomputation, so this
  /// is off by default and exists for the ablation bench.
  bool use_nacks = false;
  /// Deterministic seed for peer selection and CMF sampling.
  std::uint64_t seed = 0x7e3a11c5u;

  /// The original GrapevineLB configuration (§IV-B).
  [[nodiscard]] static LbParams grapevine();
  /// The paper's TemperedLB configuration (§V; Fig. 2 uses
  /// fewest_migrations with 10 trials x 8 iterations). Uses the
  /// recompute-per-candidate CMF, the reference path.
  [[nodiscard]] static LbParams tempered();
  /// TemperedLB with the Fenwick-backed incremental CMF: same algorithm,
  /// O(log |S^p|) instead of O(|S^p|) per candidate in the transfer loop.
  [[nodiscard]] static LbParams tempered_fast();
};

[[nodiscard]] std::string_view to_string(CmfKind kind);
[[nodiscard]] std::string_view to_string(CmfRefresh refresh);
[[nodiscard]] std::string_view to_string(CriterionKind kind);
[[nodiscard]] std::string_view to_string(OrderKind kind);
[[nodiscard]] std::string_view to_string(GossipWire wire);

/// Parse an OrderKind from its to_string form; throws std::invalid_argument
/// on unknown names.
[[nodiscard]] OrderKind order_from_string(std::string_view name);

} // namespace tlb::lb
