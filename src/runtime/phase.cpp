#include "runtime/phase.hpp"

#include "support/assert.hpp"

namespace tlb::rt {

PhaseInstrumentation::PhaseInstrumentation(RankId num_ranks)
    : current_(static_cast<std::size_t>(num_ranks)),
      previous_(static_cast<std::size_t>(num_ranks)) {
  TLB_EXPECTS(num_ranks > 0);
}

void PhaseInstrumentation::start_phase() {
  previous_ = std::move(current_);
  current_.assign(previous_.size(), {});
  ++phase_;
}

void PhaseInstrumentation::record(RankId rank, TaskId task, LoadType load) {
  TLB_EXPECTS(rank >= 0 &&
              static_cast<std::size_t>(rank) < current_.size());
  TLB_EXPECTS(load >= 0.0);
  current_[static_cast<std::size_t>(rank)][task] += load;
}

std::vector<lb::TaskEntry>
PhaseInstrumentation::previous_tasks(RankId rank) const {
  TLB_EXPECTS(rank >= 0 &&
              static_cast<std::size_t>(rank) < previous_.size());
  std::vector<lb::TaskEntry> out;
  auto const& m = previous_[static_cast<std::size_t>(rank)];
  out.reserve(m.size());
  for (auto const& [id, load] : m) {
    out.push_back({id, load});
  }
  return out;
}

std::vector<LoadType> PhaseInstrumentation::previous_rank_loads() const {
  std::vector<LoadType> out(previous_.size(), 0.0);
  for (std::size_t r = 0; r < previous_.size(); ++r) {
    for (auto const& [id, load] : previous_[r]) {
      out[r] += load;
    }
  }
  return out;
}

std::vector<lb::TaskEntry>
PhaseInstrumentation::current_tasks(RankId rank) const {
  TLB_EXPECTS(rank >= 0 &&
              static_cast<std::size_t>(rank) < current_.size());
  std::vector<lb::TaskEntry> out;
  auto const& m = current_[static_cast<std::size_t>(rank)];
  out.reserve(m.size());
  for (auto const& [id, load] : m) {
    out.push_back({id, load});
  }
  return out;
}

} // namespace tlb::rt
