#pragma once

/// \file runtime.hpp
/// The in-process AMT runtime: P simulated ranks exchanging active
/// messages, driven either by a deterministic sequential scheduler or by a
/// pool of worker threads. The threaded driver partitions the rank space
/// into shards (a few per worker, sizes differing by at most one) that
/// workers claim and steal: a shard is processed by exactly one worker at
/// a time, so any given rank's handlers still execute single-threaded,
/// but a hot shard no longer serializes a statically-assigned owner while
/// the rest of the pool spins.
///
/// The send path is coalescing: while a worker executes a drain batch, its
/// handlers' sends accumulate in per-destination buffers and flush into
/// each destination mailbox as one locked batch push at the end of the
/// visit. Per-sender FIFO order is preserved (a flush appends a sender's
/// messages in send order, and the sequential driver flushes before any
/// other rank runs, keeping its schedule bit-identical to eager pushes).
/// In-flight accounting happens at buffering time, so quiescence can never
/// observe zero while coalesced messages wait, and the fault plane still
/// interposes on each envelope individually at send time.
///
/// Quiescence ("termination detection" for a protocol stage) uses an
/// in-flight message counter: incremented at send, decremented only after
/// the handler — including all sends it performed, buffered or not — has
/// been flushed and returned. The counter reaching zero therefore implies
/// no queued messages and no executing handler anywhere: exactly the
/// guarantee a distributed termination detector provides, obtained here
/// through shared memory. A faithful message-based Mattern four-counter
/// detector is implemented in termination.hpp and validated against this
/// ground truth in the tests.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/config.hpp"
#include "runtime/fault_hook.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/message.hpp"
#include "runtime/network_stats.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace tlb::obs {
class Registry;
}

namespace tlb::rt {

class Runtime;

/// Per-worker sender-side coalescing buffers: one envelope batch per
/// destination rank, flushed by Runtime::flush_coalesced as a single
/// locked push per dirty destination. Owned by each driver loop (one per
/// worker thread); handlers reach it through their RankContext.
///
/// Buffering is what lets the per-message bookkeeping go batch-granular:
/// appended messages are counted into the in-flight counter in one bulk
/// add at flush time (safe because the batch whose handlers produced them
/// has not been retired yet), and traffic statistics accumulate in a
/// run-private LocalNetworkStats folded into the shared counters once per
/// run. The hot send path is thereby free of atomics entirely.
///
/// Deliberately outside the thread-safety annotation discipline
/// (support/thread_annotations.hpp): the coalescer is thread-confined by
/// construction — no lock guards it, so there is no capability to name.
/// Its safety argument (one instance per driver loop) is exercised by the
/// TSan stress gate; the cross-thread handoff happens inside the
/// annotated Mailbox::push_batch.
class SendCoalescer {
public:
  explicit SendCoalescer(std::size_t num_ranks)
      : slot_of_dest_(num_ranks, 0) {}

  /// True when nothing is buffered AND nothing awaits its bulk in-flight
  /// fold (the sequential driver's eager sends bump pending_ without ever
  /// staging a bucket).
  [[nodiscard]] bool empty() const { return used_ == 0 && pending_ == 0; }

private:
  friend class Runtime;
  friend class RankContext;

  /// A per-destination batch. Buckets live in a dense, reused list — only
  /// the first `used_` are active in the current flush interval — so their
  /// capacities persist forever and the append path touches a working set
  /// proportional to the destinations actually hit, not to P.
  struct Bucket {
    RankId dest = invalid_rank;
    std::vector<Envelope> msgs;
  };

  void append(Envelope env) {
    auto& slot = slot_of_dest_[static_cast<std::size_t>(env.to)];
    if (slot == 0) {
      if (used_ == buckets_.size()) {
        buckets_.emplace_back();
      }
      buckets_[used_].dest = env.to;
      slot = static_cast<std::uint32_t>(++used_);
    }
    buckets_[slot - 1].msgs.push_back(std::move(env));
    ++pending_;
  }

  std::vector<Bucket> buckets_;
  /// dest -> index into buckets_ plus one; 0 = no bucket this interval.
  /// Four bytes per rank keeps this randomly-indexed table small enough
  /// to stay cached under scatter traffic (a vector-per-dest layout puts
  /// 24 randomly-touched header bytes per rank in the way instead).
  std::vector<std::uint32_t> slot_of_dest_;
  std::size_t used_ = 0;
  /// Messages appended (and not yet counted in flight) since the last
  /// flush.
  std::size_t pending_ = 0;
  /// Run-private traffic counters (folded by the runtime at run end).
  LocalNetworkStats stats_;
};

/// Execution context passed to every handler: identifies the rank the
/// handler runs on and provides its communication and RNG facilities.
class RankContext {
public:
  RankContext(Runtime& runtime, RankId rank,
              SendCoalescer* coalescer = nullptr)
      : rt_{&runtime}, rank_{rank}, coalescer_{coalescer} {}

  [[nodiscard]] RankId rank() const { return rank_; }
  [[nodiscard]] RankId num_ranks() const;

  /// Send an active message; `bytes` models the serialized payload size.
  /// `kind` categorizes the traffic for per-category accounting. When the
  /// context carries a coalescer (every driver-run handler does), the
  /// envelope is buffered and flushed with the rest of the visit's sends.
  void send(RankId to, std::size_t bytes, Handler handler,
            MessageKind kind = MessageKind::other);

  /// This rank's deterministic RNG stream.
  [[nodiscard]] Rng& rng();

  [[nodiscard]] Runtime& runtime() { return *rt_; }

#if TLB_TELEMETRY_ENABLED
  /// Causal stamp of the envelope currently being delivered on this
  /// context (null outside a delivery, or when telemetry was off at
  /// delivery time): the parent for every send the handler performs.
  [[nodiscard]] obs::CausalStamp const* current_cause() const {
    return cause_;
  }
#endif

private:
  friend class Runtime;

  Runtime* rt_;
  RankId rank_;
  SendCoalescer* coalescer_;
#if TLB_TELEMETRY_ENABLED
  obs::CausalStamp const* cause_ = nullptr;
#endif
};

class Runtime {
public:
  explicit Runtime(RuntimeConfig config);
  Runtime(Runtime const&) = delete;
  Runtime& operator=(Runtime const&) = delete;
  ~Runtime() = default;

  [[nodiscard]] RankId num_ranks() const { return config_.num_ranks; }
  [[nodiscard]] RuntimeConfig const& config() const { return config_; }

  /// Inject work onto a rank from the driver (outside any handler).
  void post(RankId to, Handler handler, std::size_t bytes = 0,
            MessageKind kind = MessageKind::other);

  /// Inject the same work onto every rank (the handler is cloned per
  /// rank, so it must wrap a copyable callable).
  void post_all(Handler const& handler);

  /// Inject work that stays parked until `to` has been drain-visited
  /// `delay_polls` more times — the deterministic substitute for a wall
  /// clock that the retry protocols use for exponential backoff. Delayed
  /// work counts as in flight, so run_until_quiescent waits for it.
  /// Exempt from fault injection (it models local scheduling, not wire
  /// traffic).
  void post_delayed(RankId to, Handler handler, std::uint64_t delay_polls,
                    std::size_t bytes = 0,
                    MessageKind kind = MessageKind::other);

  /// Drive all ranks until global quiescence: every posted and sent
  /// message has been processed and no handler is executing.
  ///
  /// `max_polls` (0 = unlimited; default from config().retry.quiesce_poll_
  /// budget) bounds the number of full sweeps over the rank set. If the
  /// budget expires with work still in flight, everything still queued is
  /// flushed (counted as dropped per kind) and the call returns false —
  /// the liveness valve the LB round-abort path is built on. Returns true
  /// on a genuine quiescence.
  bool run_until_quiescent();
  bool run_until_quiescent(std::size_t max_polls);

  [[nodiscard]] NetworkStatsSnapshot stats() const {
    return stats_.snapshot();
  }
  void reset_stats() { stats_.reset(); }

  /// Fold the current network counters into a telemetry registry as
  /// `net.*` metrics (per-category message/byte counters, coalescing
  /// flush counters, and the max-mailbox-depth gauge). Call at quiescent
  /// points.
  void publish_metrics(obs::Registry& registry) const;

  /// Deterministic per-rank RNG stream (derived from config seed).
  [[nodiscard]] Rng& rank_rng(RankId rank);

  /// Install (or remove, with nullptr) a fault-plane decision hook. The
  /// hook is consulted on every send and drain visit; the runtime does not
  /// own it, so the caller must keep it alive until removed. Only
  /// meaningful in builds configured with -DTLB_FAULT=ON; with the gate
  /// off the call sites are compiled out and the hook is never consulted.
  void set_fault_hook(FaultHook* hook) { fault_ = hook; }

  /// True when the fault gate is compiled in AND a hook is installed —
  /// the condition under which the hardened (sequence-numbered, acked,
  /// retried) protocol paths activate. With no fault plane the protocols
  /// keep their historical fault-free message patterns bit-identically.
  [[nodiscard]] bool fault_active() const {
#if TLB_FAULT_ENABLED
    return fault_ != nullptr;
#else
    return false;
#endif
  }

  /// Record a protocol-level resend (retry) for per-kind accounting.
  void record_retry(MessageKind kind);

  /// Monotone drain-visit counter of `rank` (the fault plane's and delay
  /// queues' deterministic time base).
  [[nodiscard]] std::uint64_t rank_polls(RankId rank) const {
    return polls_[static_cast<std::size_t>(rank)].value.load(
        std::memory_order_relaxed);
  }

  /// Audit observability (zero unless the invariant-audit build is active
  /// and enabled): lifetime totals of messages enqueued and handlers run,
  /// maintained independently of the in-flight counter so the auditor can
  /// cross-check the quiescence ground truth against a second bookkeeping.
  [[nodiscard]] std::uint64_t audit_enqueued() const {
    return audit_enqueued_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t audit_processed() const {
    return audit_processed_.load(std::memory_order_acquire);
  }

  /// Messages enqueued but never processed: fault-plane drops never make
  /// it here (they are refused at enqueue), so this counts crash purges
  /// and budget-expiry flushes. The quiescence audit accepts
  /// processed + purged == enqueued.
  [[nodiscard]] std::uint64_t audit_purged() const {
    return audit_purged_.load(std::memory_order_acquire);
  }

private:
  friend class RankContext;

  /// Per-rank drain-visit counter, padded to a cache line: each is
  /// write-hot on its rank's current worker, and unpadded neighbours
  /// false-share under the threaded driver.
  struct alignas(64) PollCounter {
    std::atomic<std::uint64_t> value{0};
  };

  /// Per-driver-loop scratch: the drain batch buffer plus the sender-side
  /// coalescing buckets. One per worker thread (and one for the
  /// sequential driver), allocated once per run.
  struct WorkerState {
    explicit WorkerState(std::size_t num_ranks, std::size_t batch)
        : coalescer{num_ranks} {
      scratch.reserve(batch);
    }
    std::vector<Envelope> scratch;
    SendCoalescer coalescer;
  };

  /// A contiguous slice of the rank space plus its claim flag. Workers
  /// claim shards with an acquire exchange and release them with a
  /// release store, so consecutive processors of the same rank are
  /// ordered (per-rank protocol state needs no further locking).
  struct alignas(64) Shard {
    RankId lo = 0;
    RankId hi = 0;
    std::atomic<bool> busy{false};
  };

  /// Adjust the in-flight counter. Under the sequential driver exactly one
  /// thread ever touches it, so the update is a relaxed load/store pair
  /// instead of a lock-prefixed RMW — the counter sits on the hottest
  /// bookkeeping path in the system (every send and every drain visit).
  void add_in_flight(std::int64_t delta) {
    if (config_.num_threads <= 1) {
      in_flight_.store(in_flight_.load(std::memory_order_relaxed) + delta,
                       std::memory_order_relaxed);
    } else {
      in_flight_.fetch_add(delta, std::memory_order_acq_rel);
    }
  }

#if TLB_TELEMETRY_ENABLED
  /// Assign `env` its causal identity: a fresh deterministic id from the
  /// sender's sequence slot, chained to `cause` (the stamp of the message
  /// whose handler is sending) or rooted at the current LB step when
  /// there is none. Only called when obs::enabled().
  void stamp_causal(Envelope& env, RankId sender,
                    obs::CausalStamp const* cause);
  /// Deliver one envelope with causal context installed and the delivery
  /// recorded into the CausalLog (timestamps from the tracer clock).
  void consume_traced(Envelope& env, RankContext& ctx);
#endif

  void enqueue(Envelope env, SendCoalescer* coalescer);
  /// The fault-oblivious tail of enqueue: counts the message in flight,
  /// then buffers it (coalescing path) or pushes it straight into the
  /// destination mailbox. By reference so the envelope is only ever
  /// move-constructed once, into its final slot.
  void enqueue_direct(Envelope&& env, SendCoalescer* coalescer);
  /// Push every buffered envelope into its destination mailbox, one
  /// locked batch per dirty destination.
  void flush_coalesced(SendCoalescer& coalescer);
  /// Drop a crashed rank's entire mailbox (queued + delayed), accounting
  /// every message as dropped so in-flight still reaches zero.
  void purge_rank(RankId rank, std::vector<Envelope>& scratch);
  /// Budget-expiry flush: purge every mailbox. Only called when no
  /// handler is executing (sequential driver, or after workers joined).
  void flush_all();
  void run_sequential(std::size_t max_polls);
  void run_threaded(std::size_t max_polls);
  /// Per-worker scratch, created on first use and persisted across runs so
  /// bucket/stash/batch capacities amortize to zero steady-state
  /// allocations (index 0 doubles as the sequential driver's state).
  WorkerState& worker_state(std::size_t index);
  /// One drain visit of `rank`: release due delayed messages and pop up
  /// to `batch` envelopes under a single mailbox lock, run the handlers,
  /// flush their coalesced sends, then retire the batch from the
  /// in-flight counter. Returns the number of handlers run.
  std::size_t drain_rank(RankId rank, WorkerState& worker, std::size_t batch);

  RuntimeConfig config_;
  std::vector<Mailbox> mailboxes_;
  /// Lazily-created per-worker scratch (see worker_state()). Only touched
  /// by the driver between runs and by each worker's own thread during
  /// one.
  std::vector<WorkerState> worker_states_;
  std::vector<Rng> rank_rngs_;
  NetworkStats stats_;
  FaultHook* fault_ = nullptr;
  /// Per-rank drain-visit counters. Incremented only by the rank's
  /// current worker; read (relaxed) by senders computing delay due-times.
  std::vector<PollCounter> polls_;
  /// Messages currently parked in delay queues; lets drain_rank skip the
  /// release scan entirely on the (overwhelmingly common) delay-free path.
  std::atomic<std::int64_t> delayed_pending_{0};
  /// Budget-expiry signal for the threaded driver's workers.
  std::atomic<bool> abort_{false};
  std::atomic<std::int64_t> in_flight_{0};
  std::atomic<std::uint64_t> audit_enqueued_{0};
  std::atomic<std::uint64_t> audit_processed_{0};
  std::atomic<std::uint64_t> audit_purged_{0};
#if TLB_TELEMETRY_ENABLED
  /// Per-sender causal sequence counters: slot r is advanced only by rank
  /// r's (serialized) handlers, slot P only by the driver thread, so
  /// plain non-atomic counters are race-free and the id assignment is
  /// deterministic under the sequential driver.
  std::vector<std::uint64_t> causal_seq_;
#endif
};

} // namespace tlb::rt
