#pragma once

/// \file runtime.hpp
/// The in-process AMT runtime: P simulated ranks exchanging active
/// messages, driven either by a deterministic sequential scheduler or by a
/// pool of worker threads (each owning a contiguous block of ranks, so any
/// given rank's handlers always execute single-threaded).
///
/// Quiescence ("termination detection" for a protocol stage) uses an
/// in-flight message counter: incremented at send, decremented only after
/// the handler — including all sends it performed — has returned. The
/// counter reaching zero therefore implies no queued messages and no
/// executing handler anywhere: exactly the guarantee a distributed
/// termination detector provides, obtained here through shared memory. A
/// faithful message-based Mattern four-counter detector is implemented in
/// termination.hpp and validated against this ground truth in the tests.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/config.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/message.hpp"
#include "runtime/network_stats.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace tlb::obs {
class Registry;
}

namespace tlb::rt {

class Runtime;

/// Execution context passed to every handler: identifies the rank the
/// handler runs on and provides its communication and RNG facilities.
class RankContext {
public:
  RankContext(Runtime& runtime, RankId rank) : rt_{&runtime}, rank_{rank} {}

  [[nodiscard]] RankId rank() const { return rank_; }
  [[nodiscard]] RankId num_ranks() const;

  /// Send an active message; `bytes` models the serialized payload size.
  /// `kind` categorizes the traffic for per-category accounting.
  void send(RankId to, std::size_t bytes, Handler handler,
            MessageKind kind = MessageKind::other);

  /// This rank's deterministic RNG stream.
  [[nodiscard]] Rng& rng();

  [[nodiscard]] Runtime& runtime() { return *rt_; }

private:
  Runtime* rt_;
  RankId rank_;
};

class Runtime {
public:
  explicit Runtime(RuntimeConfig config);
  Runtime(Runtime const&) = delete;
  Runtime& operator=(Runtime const&) = delete;
  ~Runtime() = default;

  [[nodiscard]] RankId num_ranks() const { return config_.num_ranks; }
  [[nodiscard]] RuntimeConfig const& config() const { return config_; }

  /// Inject work onto a rank from the driver (outside any handler).
  void post(RankId to, Handler handler, std::size_t bytes = 0,
            MessageKind kind = MessageKind::other);

  /// Inject the same work onto every rank.
  void post_all(Handler const& handler);

  /// Drive all ranks until global quiescence: every posted and sent
  /// message has been processed and no handler is executing.
  void run_until_quiescent();

  [[nodiscard]] NetworkStatsSnapshot stats() const {
    return stats_.snapshot();
  }
  void reset_stats() { stats_.reset(); }

  /// Fold the current network counters into a telemetry registry as
  /// `net.*` metrics (per-category message/byte counters and the
  /// max-mailbox-depth gauge). Call at quiescent points.
  void publish_metrics(obs::Registry& registry) const;

  /// Deterministic per-rank RNG stream (derived from config seed).
  [[nodiscard]] Rng& rank_rng(RankId rank);

  /// Audit observability (zero unless the invariant-audit build is active
  /// and enabled): lifetime totals of messages enqueued and handlers run,
  /// maintained independently of the in-flight counter so the auditor can
  /// cross-check the quiescence ground truth against a second bookkeeping.
  [[nodiscard]] std::uint64_t audit_enqueued() const {
    return audit_enqueued_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t audit_processed() const {
    return audit_processed_.load(std::memory_order_acquire);
  }

private:
  friend class RankContext;

  void enqueue(Envelope env);
  void run_sequential();
  void run_threaded();
  /// Drain up to `batch` messages from one rank; returns count processed.
  std::size_t drain_rank(RankId rank, std::vector<Envelope>& scratch,
                         std::size_t batch);

  RuntimeConfig config_;
  std::vector<Mailbox> mailboxes_;
  std::vector<Rng> rank_rngs_;
  NetworkStats stats_;
  std::atomic<std::int64_t> in_flight_{0};
  std::atomic<std::uint64_t> audit_enqueued_{0};
  std::atomic<std::uint64_t> audit_processed_{0};
};

} // namespace tlb::rt
