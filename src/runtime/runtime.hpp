#pragma once

/// \file runtime.hpp
/// The in-process AMT runtime: P simulated ranks exchanging active
/// messages, driven either by a deterministic sequential scheduler or by a
/// pool of worker threads (each owning a contiguous block of ranks, so any
/// given rank's handlers always execute single-threaded).
///
/// Quiescence ("termination detection" for a protocol stage) uses an
/// in-flight message counter: incremented at send, decremented only after
/// the handler — including all sends it performed — has returned. The
/// counter reaching zero therefore implies no queued messages and no
/// executing handler anywhere: exactly the guarantee a distributed
/// termination detector provides, obtained here through shared memory. A
/// faithful message-based Mattern four-counter detector is implemented in
/// termination.hpp and validated against this ground truth in the tests.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/config.hpp"
#include "runtime/fault_hook.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/message.hpp"
#include "runtime/network_stats.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace tlb::obs {
class Registry;
}

namespace tlb::rt {

class Runtime;

/// Execution context passed to every handler: identifies the rank the
/// handler runs on and provides its communication and RNG facilities.
class RankContext {
public:
  RankContext(Runtime& runtime, RankId rank) : rt_{&runtime}, rank_{rank} {}

  [[nodiscard]] RankId rank() const { return rank_; }
  [[nodiscard]] RankId num_ranks() const;

  /// Send an active message; `bytes` models the serialized payload size.
  /// `kind` categorizes the traffic for per-category accounting.
  void send(RankId to, std::size_t bytes, Handler handler,
            MessageKind kind = MessageKind::other);

  /// This rank's deterministic RNG stream.
  [[nodiscard]] Rng& rng();

  [[nodiscard]] Runtime& runtime() { return *rt_; }

private:
  Runtime* rt_;
  RankId rank_;
};

class Runtime {
public:
  explicit Runtime(RuntimeConfig config);
  Runtime(Runtime const&) = delete;
  Runtime& operator=(Runtime const&) = delete;
  ~Runtime() = default;

  [[nodiscard]] RankId num_ranks() const { return config_.num_ranks; }
  [[nodiscard]] RuntimeConfig const& config() const { return config_; }

  /// Inject work onto a rank from the driver (outside any handler).
  void post(RankId to, Handler handler, std::size_t bytes = 0,
            MessageKind kind = MessageKind::other);

  /// Inject the same work onto every rank.
  void post_all(Handler const& handler);

  /// Inject work that stays parked until `to` has been drain-visited
  /// `delay_polls` more times — the deterministic substitute for a wall
  /// clock that the retry protocols use for exponential backoff. Delayed
  /// work counts as in flight, so run_until_quiescent waits for it.
  /// Exempt from fault injection (it models local scheduling, not wire
  /// traffic).
  void post_delayed(RankId to, Handler handler, std::uint64_t delay_polls,
                    std::size_t bytes = 0,
                    MessageKind kind = MessageKind::other);

  /// Drive all ranks until global quiescence: every posted and sent
  /// message has been processed and no handler is executing.
  ///
  /// `max_polls` (0 = unlimited; default from config().retry.quiesce_poll_
  /// budget) bounds the number of full sweeps over the rank set. If the
  /// budget expires with work still in flight, everything still queued is
  /// flushed (counted as dropped per kind) and the call returns false —
  /// the liveness valve the LB round-abort path is built on. Returns true
  /// on a genuine quiescence.
  bool run_until_quiescent();
  bool run_until_quiescent(std::size_t max_polls);

  [[nodiscard]] NetworkStatsSnapshot stats() const {
    return stats_.snapshot();
  }
  void reset_stats() { stats_.reset(); }

  /// Fold the current network counters into a telemetry registry as
  /// `net.*` metrics (per-category message/byte counters and the
  /// max-mailbox-depth gauge). Call at quiescent points.
  void publish_metrics(obs::Registry& registry) const;

  /// Deterministic per-rank RNG stream (derived from config seed).
  [[nodiscard]] Rng& rank_rng(RankId rank);

  /// Install (or remove, with nullptr) a fault-plane decision hook. The
  /// hook is consulted on every send and drain visit; the runtime does not
  /// own it, so the caller must keep it alive until removed. Only
  /// meaningful in builds configured with -DTLB_FAULT=ON; with the gate
  /// off the call sites are compiled out and the hook is never consulted.
  void set_fault_hook(FaultHook* hook) { fault_ = hook; }

  /// True when the fault gate is compiled in AND a hook is installed —
  /// the condition under which the hardened (sequence-numbered, acked,
  /// retried) protocol paths activate. With no fault plane the protocols
  /// keep their historical fault-free message patterns bit-identically.
  [[nodiscard]] bool fault_active() const {
#if TLB_FAULT_ENABLED
    return fault_ != nullptr;
#else
    return false;
#endif
  }

  /// Record a protocol-level resend (retry) for per-kind accounting.
  void record_retry(MessageKind kind);

  /// Monotone drain-visit counter of `rank` (the fault plane's and delay
  /// queues' deterministic time base).
  [[nodiscard]] std::uint64_t rank_polls(RankId rank) const {
    return polls_[static_cast<std::size_t>(rank)].load(
        std::memory_order_relaxed);
  }

  /// Audit observability (zero unless the invariant-audit build is active
  /// and enabled): lifetime totals of messages enqueued and handlers run,
  /// maintained independently of the in-flight counter so the auditor can
  /// cross-check the quiescence ground truth against a second bookkeeping.
  [[nodiscard]] std::uint64_t audit_enqueued() const {
    return audit_enqueued_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t audit_processed() const {
    return audit_processed_.load(std::memory_order_acquire);
  }

  /// Messages enqueued but never processed: fault-plane drops never make
  /// it here (they are refused at enqueue), so this counts crash purges
  /// and budget-expiry flushes. The quiescence audit accepts
  /// processed + purged == enqueued.
  [[nodiscard]] std::uint64_t audit_purged() const {
    return audit_purged_.load(std::memory_order_acquire);
  }

private:
  friend class RankContext;

  void enqueue(Envelope env);
  /// The fault-oblivious tail of enqueue: counts the message in flight and
  /// pushes it into the destination mailbox.
  void enqueue_direct(Envelope env);
  /// Drop a crashed rank's entire mailbox (queued + delayed), accounting
  /// every message as dropped so in-flight still reaches zero.
  void purge_rank(RankId rank, std::vector<Envelope>& scratch);
  /// Budget-expiry flush: purge every mailbox. Only called when no
  /// handler is executing (sequential driver, or after workers joined).
  void flush_all();
  void run_sequential(std::size_t max_polls);
  void run_threaded(std::size_t max_polls);
  /// Drain up to `batch` messages from one rank; returns count processed.
  std::size_t drain_rank(RankId rank, std::vector<Envelope>& scratch,
                         std::size_t batch);

  RuntimeConfig config_;
  std::vector<Mailbox> mailboxes_;
  std::vector<Rng> rank_rngs_;
  NetworkStats stats_;
  FaultHook* fault_ = nullptr;
  /// Per-rank drain-visit counters. Incremented only by the rank's owning
  /// worker; read (relaxed) by senders computing delay due-times.
  std::vector<std::atomic<std::uint64_t>> polls_;
  /// Messages currently parked in delay queues; lets drain_rank skip the
  /// release scan entirely on the (overwhelmingly common) delay-free path.
  std::atomic<std::int64_t> delayed_pending_{0};
  /// Budget-expiry signal for the threaded driver's workers.
  std::atomic<bool> abort_{false};
  std::atomic<std::int64_t> in_flight_{0};
  std::atomic<std::uint64_t> audit_enqueued_{0};
  std::atomic<std::uint64_t> audit_processed_{0};
  std::atomic<std::uint64_t> audit_purged_{0};
};

} // namespace tlb::rt
