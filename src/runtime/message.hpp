#pragma once

/// \file message.hpp
/// The active-message envelope. A message is a type-erased handler that
/// executes on the destination rank, plus accounting metadata. Payloads
/// live inside the closure (the in-process analogue of serialization); the
/// `bytes` field models what serialization would have put on the wire so
/// network statistics remain meaningful.

#include <cstddef>
#include <functional>

#include "runtime/network_stats.hpp"
#include "support/types.hpp"

namespace tlb::rt {

class RankContext;

/// Handler executed on the destination rank's scheduler.
using Handler = std::function<void(RankContext&)>;

struct Envelope {
  RankId from = invalid_rank; ///< invalid_rank marks driver-injected work
  RankId to = invalid_rank;
  std::size_t bytes = 0;      ///< modeled wire size of the payload
  Handler handler;
  /// Protocol category, carried so drops/purges can be accounted per kind.
  MessageKind kind = MessageKind::other;
  /// Set on messages the fault plane must leave alone: clones it created
  /// itself (a duplicate must not fission) and protocol-internal retry
  /// triggers injected by the driver.
  bool fault_exempt = false;
};

} // namespace tlb::rt
