#pragma once

/// \file message.hpp
/// The active-message envelope. A message is a type-erased handler that
/// executes on the destination rank, plus accounting metadata. Payloads
/// live inside the closure (the in-process analogue of serialization); the
/// `bytes` field models what serialization would have put on the wire so
/// network statistics remain meaningful.
///
/// The handler is an InlineHandler: the closure lives inside the envelope
/// itself (no per-message heap allocation on the hot paths), which makes
/// the envelope move-only. Code that needs a real duplicate — the fault
/// plane's duplicate fault, post_all's fanout — clones explicitly.

#include <cstddef>

#include "obs/telemetry.hpp"
#include "runtime/inline_handler.hpp"
#include "runtime/network_stats.hpp"
#include "support/types.hpp"

#if TLB_TELEMETRY_ENABLED
#include "obs/causal.hpp"
#endif

namespace tlb::rt {

class RankContext;

/// Handler executed on the destination rank's scheduler. Small-buffer
/// optimized and move-only; see inline_handler.hpp.
using Handler = InlineHandler;

struct Envelope {
  Envelope() = default;
  /// Positional construction mirrors the old aggregate layout so the
  /// runtime's call sites read identically whether or not the telemetry
  /// gate adds trailing members.
  Envelope(RankId from_, RankId to_, std::size_t bytes_, Handler handler_,
           MessageKind kind_ = MessageKind::other, bool fault_exempt_ = false)
      : from{from_},
        to{to_},
        bytes{bytes_},
        handler{std::move(handler_)},
        kind{kind_},
        fault_exempt{fault_exempt_} {}

  RankId from = invalid_rank; ///< invalid_rank marks driver-injected work
  RankId to = invalid_rank;
  std::size_t bytes = 0;      ///< modeled wire size of the payload
  Handler handler;
  /// Protocol category, carried so drops/purges can be accounted per kind.
  MessageKind kind = MessageKind::other;
  /// Set on messages the fault plane must leave alone: clones it created
  /// itself (a duplicate must not fission) and protocol-internal retry
  /// triggers injected by the driver.
  bool fault_exempt = false;
#if TLB_TELEMETRY_ENABLED
  /// Causal identity (origin rank, LB step, parent span id, hop count),
  /// stamped by the runtime at send time when telemetry is enabled —
  /// id == 0 otherwise. Compiled out with the gate so the dormant
  /// envelope is unchanged. Constructing envelopes outside src/runtime
  /// bypasses the stamping (and is lint-forbidden:
  /// no-envelope-outside-runtime).
  obs::CausalStamp cause;
#endif
};

} // namespace tlb::rt
