#include "runtime/object_store.hpp"

#include "obs/tracer.hpp"
#include "support/assert.hpp"
#include "support/check.hpp"

namespace tlb::rt {

ObjectStore::ObjectStore(RankId num_ranks)
    : local_(static_cast<std::size_t>(num_ranks)) {
  TLB_EXPECTS(num_ranks > 0);
}

void ObjectStore::create(RankId rank, TaskId id,
                         std::unique_ptr<Migratable> payload) {
  TLB_EXPECTS(rank >= 0 && rank < num_ranks());
  TLB_EXPECTS(payload != nullptr);
  auto const [it, inserted] = directory_.emplace(id, rank);
  (void)it;
  TLB_EXPECTS(inserted);
  local_[static_cast<std::size_t>(rank)].emplace(id, std::move(payload));
}

RankId ObjectStore::owner(TaskId id) const {
  auto const it = directory_.find(id);
  return it == directory_.end() ? invalid_rank : it->second;
}

Migratable* ObjectStore::find(RankId rank, TaskId id) {
  TLB_EXPECTS(rank >= 0 && rank < num_ranks());
  auto& map = local_[static_cast<std::size_t>(rank)];
  auto const it = map.find(id);
  return it == map.end() ? nullptr : it->second.get();
}

Migratable const* ObjectStore::find(RankId rank, TaskId id) const {
  TLB_EXPECTS(rank >= 0 && rank < num_ranks());
  auto const& map = local_[static_cast<std::size_t>(rank)];
  auto const it = map.find(id);
  return it == map.end() ? nullptr : it->second.get();
}

std::vector<TaskId> ObjectStore::tasks_on(RankId rank) const {
  TLB_EXPECTS(rank >= 0 && rank < num_ranks());
  std::vector<TaskId> out;
  auto const& map = local_[static_cast<std::size_t>(rank)];
  out.reserve(map.size());
  for (auto const& [id, payload] : map) {
    out.push_back(id);
  }
  return out;
}

std::size_t ObjectStore::total_tasks() const { return directory_.size(); }

std::size_t ObjectStore::migrate(Runtime& rt,
                                 std::vector<Migration> const& migrations) {
  TLB_SPAN_ARG("rt", "migrate", "count", migrations.size());
  [[maybe_unused]] std::size_t audit_tasks_before = 0;
  TLB_AUDIT_BLOCK { audit_tasks_before = directory_.size(); }
  std::size_t moved_bytes = 0;
  for (Migration const& m : migrations) {
    TLB_EXPECTS(m.to >= 0 && m.to < num_ranks());
    auto const dir = directory_.find(m.task);
    TLB_EXPECTS(dir != directory_.end());
    TLB_EXPECTS(dir->second == m.from);
    if (m.from == m.to) {
      continue;
    }

    auto& from_map = local_[static_cast<std::size_t>(m.from)];
    auto const it = from_map.find(m.task);
    TLB_ASSERT(it != from_map.end());
    std::size_t const bytes = it->second->wire_bytes();

    // The origin rank sends the extracted payload to the target, which
    // installs it — the in-process analogue of serialize/ship/deserialize.
    auto shared_payload =
        std::make_shared<std::unique_ptr<Migratable>>(std::move(it->second));
    from_map.erase(it);
    auto* store = this;
    TaskId const task = m.task;
    RankId const to = m.to;
    rt.post(
        m.from,
        [store, shared_payload, task, to, bytes](RankContext& ctx) {
          ctx.send(
              to, bytes,
              [store, shared_payload, task](RankContext& dest) {
                store->local_[static_cast<std::size_t>(dest.rank())].emplace(
                    task, std::move(*shared_payload));
              },
              MessageKind::migration);
        },
        0, MessageKind::migration);

    dir->second = m.to;
    moved_bytes += bytes;
    ++migration_count_;
  }
  rt.run_until_quiescent();
  TLB_AUDIT_BLOCK {
    // Task conservation: a migration batch must neither create nor destroy
    // tasks, every payload must be resident on exactly one rank once the
    // protocol quiesces, and the directory must agree with the residency
    // each migration promised.
    TLB_INVARIANT(directory_.size() == audit_tasks_before,
                  "migration conserves the global task count");
    std::size_t resident = 0;
    for (auto const& rank_map : local_) {
      resident += rank_map.size();
    }
    TLB_INVARIANT(resident == directory_.size(),
                  "every task resident on exactly one rank after migrate");
    bool directory_agrees = true;
    bool payload_installed = true;
    for (Migration const& m : migrations) {
      directory_agrees = directory_agrees && owner(m.task) == m.to;
      payload_installed = payload_installed && find(m.to, m.task) != nullptr;
    }
    TLB_INVARIANT(directory_agrees,
                  "directory points at each migration's destination");
    TLB_INVARIANT(payload_installed,
                  "each migrated payload installed at its destination");
  }
  migration_bytes_ += moved_bytes;
  return moved_bytes;
}

} // namespace tlb::rt
