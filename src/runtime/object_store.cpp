#include "runtime/object_store.hpp"

#include <cstdint>
#include <set>

#include "obs/tracer.hpp"
#include "support/assert.hpp"
#include "support/check.hpp"

namespace tlb::rt {

ObjectStore::ObjectStore(RankId num_ranks)
    : local_(static_cast<std::size_t>(num_ranks)) {
  TLB_EXPECTS(num_ranks > 0);
}

void ObjectStore::create(RankId rank, TaskId id,
                         std::unique_ptr<Migratable> payload) {
  TLB_EXPECTS(rank >= 0 && rank < num_ranks());
  TLB_EXPECTS(payload != nullptr);
  auto const [it, inserted] = directory_.emplace(id, rank);
  (void)it;
  TLB_EXPECTS(inserted);
  local_[static_cast<std::size_t>(rank)].emplace(id, std::move(payload));
}

RankId ObjectStore::owner(TaskId id) const {
  auto const it = directory_.find(id);
  return it == directory_.end() ? invalid_rank : it->second;
}

Migratable* ObjectStore::find(RankId rank, TaskId id) {
  TLB_EXPECTS(rank >= 0 && rank < num_ranks());
  auto& map = local_[static_cast<std::size_t>(rank)];
  auto const it = map.find(id);
  return it == map.end() ? nullptr : it->second.get();
}

Migratable const* ObjectStore::find(RankId rank, TaskId id) const {
  TLB_EXPECTS(rank >= 0 && rank < num_ranks());
  auto const& map = local_[static_cast<std::size_t>(rank)];
  auto const it = map.find(id);
  return it == map.end() ? nullptr : it->second.get();
}

std::vector<TaskId> ObjectStore::tasks_on(RankId rank) const {
  TLB_EXPECTS(rank >= 0 && rank < num_ranks());
  std::vector<TaskId> out;
  auto const& map = local_[static_cast<std::size_t>(rank)];
  out.reserve(map.size());
  for (auto const& [id, payload] : map) {
    out.push_back(id);
  }
  return out;
}

std::size_t ObjectStore::total_tasks() const { return directory_.size(); }

std::size_t ObjectStore::migrate(Runtime& rt,
                                 std::vector<Migration> const& migrations) {
  TLB_SPAN_ARG("rt", "migrate", "count", migrations.size());
  failed_.clear();
  if (rt.fault_active()) {
    return migrate_resilient(rt, migrations);
  }
  [[maybe_unused]] std::size_t audit_tasks_before = 0;
  TLB_AUDIT_BLOCK { audit_tasks_before = directory_.size(); }
  std::size_t moved_bytes = 0;
  for (Migration const& m : migrations) {
    TLB_EXPECTS(m.to >= 0 && m.to < num_ranks());
    auto const dir = directory_.find(m.task);
    TLB_EXPECTS(dir != directory_.end());
    TLB_EXPECTS(dir->second == m.from);
    if (m.from == m.to) {
      continue;
    }

    auto& from_map = local_[static_cast<std::size_t>(m.from)];
    auto const it = from_map.find(m.task);
    TLB_ASSERT(it != from_map.end());
    std::size_t const bytes = it->second->wire_bytes();

    // The origin rank sends the extracted payload to the target, which
    // installs it — the in-process analogue of serialize/ship/deserialize.
    auto shared_payload =
        std::make_shared<std::unique_ptr<Migratable>>(std::move(it->second));
    from_map.erase(it);
    auto* store = this;
    TaskId const task = m.task;
    RankId const to = m.to;
    rt.post(
        m.from,
        [store, shared_payload, task, to, bytes](RankContext& ctx) {
          ctx.send(
              to, bytes,
              [store, shared_payload, task](RankContext& dest) {
                store->local_[static_cast<std::size_t>(dest.rank())].emplace(
                    task, std::move(*shared_payload));
              },
              MessageKind::migration);
        },
        0, MessageKind::migration);

    dir->second = m.to;
    moved_bytes += bytes;
    ++migration_count_;
  }
  rt.run_until_quiescent();
  TLB_AUDIT_BLOCK {
    // Task conservation: a migration batch must neither create nor destroy
    // tasks, every payload must be resident on exactly one rank once the
    // protocol quiesces, and the directory must agree with the residency
    // each migration promised.
    TLB_INVARIANT(directory_.size() == audit_tasks_before,
                  "migration conserves the global task count");
    std::size_t resident = 0;
    for (auto const& rank_map : local_) {
      resident += rank_map.size();
    }
    TLB_INVARIANT(resident == directory_.size(),
                  "every task resident on exactly one rank after migrate");
    bool directory_agrees = true;
    bool payload_installed = true;
    for (Migration const& m : migrations) {
      directory_agrees = directory_agrees && owner(m.task) == m.to;
      payload_installed = payload_installed && find(m.to, m.task) != nullptr;
    }
    TLB_INVARIANT(directory_agrees,
                  "directory points at each migration's destination");
    TLB_INVARIANT(payload_installed,
                  "each migrated payload installed at its destination");
  }
  migration_bytes_ += moved_bytes;
  return moved_bytes;
}

std::size_t
ObjectStore::migrate_resilient(Runtime& rt,
                               std::vector<Migration> const& migrations) {
  // Sequence-numbered, acknowledged, idempotent commit protocol for lossy
  // networks. Timeouts are quiescence boundaries: after run_until_quiescent
  // an unapplied slot means the payload (or the driver post carrying it)
  // was provably lost, so the driver retries with exponential backoff until
  // the policy's attempt budget runs out, then rolls the migration back.
  [[maybe_unused]] std::size_t audit_tasks_before = 0;
  TLB_AUDIT_BLOCK { audit_tasks_before = directory_.size(); }
  RetryPolicy const& retry = rt.config().retry;

  struct CommitSlot {
    Migration mig;
    std::size_t bytes = 0;
    int attempts = 0;
    // Extracted payload. Owned here until the destination installs it, so
    // a dropped message never loses the task.
    std::shared_ptr<std::unique_ptr<Migratable>> payload;
    // `applied` is written once by the destination's install handler;
    // `acked` by the origin's ack handler. Distinct bytes in distinct
    // slots, each read by the driver only after quiescence.
    char applied = 0;
    char acked = 0;
  };

  std::vector<CommitSlot> slots;
  slots.reserve(migrations.size());
  for (Migration const& m : migrations) {
    TLB_EXPECTS(m.to >= 0 && m.to < num_ranks());
    auto const dir = directory_.find(m.task);
    TLB_EXPECTS(dir != directory_.end());
    TLB_EXPECTS(dir->second == m.from);
    if (m.from == m.to) {
      continue;
    }
    auto& from_map = local_[static_cast<std::size_t>(m.from)];
    auto const it = from_map.find(m.task);
    TLB_ASSERT(it != from_map.end());
    CommitSlot slot;
    slot.mig = m;
    slot.bytes = it->second->wire_bytes();
    slot.payload =
        std::make_shared<std::unique_ptr<Migratable>>(std::move(it->second));
    from_map.erase(it);
    slots.push_back(std::move(slot));
  }

  // Receiver-side dedup: slot index doubles as the batch-unique sequence
  // number; each destination records the sequences it has installed so a
  // duplicated (or retried-then-late-delivered) commit is a no-op. Each
  // set is only touched by its own rank's handlers.
  auto seen = std::make_shared<std::vector<std::set<std::size_t>>>(
      static_cast<std::size_t>(num_ranks()));

  auto post_attempt = [this, &rt, &slots, seen](std::size_t idx,
                                                std::uint64_t delay_polls) {
    CommitSlot* slot = &slots[idx];
    ++slot->attempts;
    auto* store = this;
    rt.post_delayed(
        slot->mig.from,
        [store, slot, seen, idx](RankContext& ctx) {
          ctx.send(
              slot->mig.to, slot->bytes,
              [store, slot, seen, idx](RankContext& dest) {
                auto& installed =
                    (*seen)[static_cast<std::size_t>(dest.rank())];
                if (!installed.insert(idx).second) {
                  return; // duplicate commit: idempotent no-op
                }
                store->local_[static_cast<std::size_t>(dest.rank())].emplace(
                    slot->mig.task, std::move(*slot->payload));
                slot->applied = 1;
                dest.send(
                    slot->mig.from, 0,
                    [slot](RankContext&) { slot->acked = 1; },
                    MessageKind::migration);
              },
              MessageKind::migration);
        },
        delay_polls, 0, MessageKind::migration);
  };

  for (std::size_t i = 0; i < slots.size(); ++i) {
    post_attempt(i, 0);
  }
  rt.run_until_quiescent();

  int const max_attempts = retry.max_attempts > 0 ? retry.max_attempts : 1;
  for (;;) {
    bool retried = false;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      CommitSlot const& slot = slots[i];
      if (slot.applied != 0 || slot.attempts >= max_attempts) {
        continue;
      }
      std::uint64_t backoff = retry.backoff_base_polls
                              << (static_cast<unsigned>(slot.attempts) - 1u);
      if (backoff > retry.max_backoff_polls) {
        backoff = retry.max_backoff_polls;
      }
      rt.record_retry(MessageKind::migration);
      post_attempt(i, backoff);
      retried = true;
    }
    if (!retried) {
      break;
    }
    rt.run_until_quiescent();
  }

  std::size_t moved_bytes = 0;
  for (CommitSlot& slot : slots) {
    if (slot.applied != 0) {
      // Commit: the destination holds the payload; only now does the
      // directory learn the new owner (a failed round must leave it
      // pointing at the origin).
      directory_[slot.mig.task] = slot.mig.to;
      moved_bytes += slot.bytes;
      ++migration_count_;
    } else {
      // Retry budget exhausted: roll back. The payload never left the
      // driver-held slot (every delivery attempt was dropped), so it is
      // reinstated at the origin and the directory stays untouched.
      TLB_ASSERT(*slot.payload != nullptr);
      local_[static_cast<std::size_t>(slot.mig.from)].emplace(
          slot.mig.task, std::move(*slot.payload));
      failed_.push_back(slot.mig);
    }
  }

  TLB_AUDIT_BLOCK {
    // Conservation holds even under faults: commits moved the payload,
    // rollbacks reinstated it, and nothing was created or destroyed.
    TLB_INVARIANT(directory_.size() == audit_tasks_before,
                  "resilient migration conserves the global task count");
    std::size_t resident = 0;
    for (auto const& rank_map : local_) {
      resident += rank_map.size();
    }
    TLB_INVARIANT(resident == directory_.size(),
                  "every task resident on exactly one rank after migrate");
    bool placement_agrees = true;
    for (CommitSlot const& slot : slots) {
      RankId const expect =
          slot.applied != 0 ? slot.mig.to : slot.mig.from;
      placement_agrees = placement_agrees &&
                         owner(slot.mig.task) == expect &&
                         find(expect, slot.mig.task) != nullptr;
    }
    TLB_INVARIANT(placement_agrees,
                  "directory and residency agree per commit/rollback");
  }
  migration_bytes_ += moved_bytes;
  return moved_bytes;
}

} // namespace tlb::rt
