#pragma once

/// \file phase.hpp
/// Phase demarcation and per-task load instrumentation (§III-B, the
/// principle of persistence). Applications call start_phase() at the top
/// of each timestep and record() for every task execution; the load
/// balancer then reads the previous phase's measurements as its predictor
/// of the next phase.

#include <map>
#include <vector>

#include "lb/lb_types.hpp"
#include "support/types.hpp"

namespace tlb::rt {

/// Per-job instrumentation store. Thread-safety: record() for a given rank
/// is only called from that rank's handlers (which the runtime serializes);
/// cross-rank reads happen between phases.
class PhaseInstrumentation {
public:
  explicit PhaseInstrumentation(RankId num_ranks);

  /// Advance to a new phase; clears current measurements after archiving
  /// them as "previous phase" data.
  void start_phase();

  /// Current phase index (0 before the first start_phase()).
  [[nodiscard]] std::size_t phase() const { return phase_; }

  /// Accumulate measured load for `task` executing on `rank` this phase.
  void record(RankId rank, TaskId task, LoadType load);

  /// Tasks and their measured loads on `rank` for the *previous* phase —
  /// what the LB uses as its prediction for the next phase.
  [[nodiscard]] std::vector<lb::TaskEntry> previous_tasks(RankId rank) const;

  /// Sum of the previous phase's task loads on each rank.
  [[nodiscard]] std::vector<LoadType> previous_rank_loads() const;

  /// Tasks measured in the phase currently being recorded.
  [[nodiscard]] std::vector<lb::TaskEntry> current_tasks(RankId rank) const;

private:
  using RankMeasurements = std::map<TaskId, LoadType>;
  std::vector<RankMeasurements> current_;
  std::vector<RankMeasurements> previous_;
  std::size_t phase_ = 0;
};

} // namespace tlb::rt
