#pragma once

/// \file object_store.hpp
/// The migratable-object (task) model: every task owns a payload that
/// moves with it when the load balancer reassigns it to another rank.
/// Payload movement is performed with active messages carrying the object,
/// so migration traffic is visible in the network statistics with the
/// payload's modeled serialized size.

#include <map>
#include <memory>
#include <vector>

#include "runtime/runtime.hpp"
#include "support/types.hpp"

namespace tlb::rt {

/// Base class for anything a task carries across ranks. Implementations
/// report their modeled serialized size for migration-cost accounting.
class Migratable {
public:
  virtual ~Migratable() = default;
  Migratable() = default;
  Migratable(Migratable const&) = delete;
  Migratable& operator=(Migratable const&) = delete;

  /// Modeled wire size of this object if it were serialized.
  [[nodiscard]] virtual std::size_t wire_bytes() const = 0;
};

/// Per-job store of migratable tasks. Each rank owns a local map; a
/// directory records the current owner of every task (standing in for the
/// distributed location service a real AMT runtime maintains).
///
/// Thread-safety: creation and the migration protocol are driver-level
/// operations executed between phases; handlers running concurrently
/// during a phase may only touch tasks local to their own rank. No lock
/// guards the store, so there is no capability to annotate
/// (support/thread_annotations.hpp) — the phase-discipline argument is
/// exercised by the TSan stress gate and the migration conservation
/// audits instead.
class ObjectStore {
public:
  explicit ObjectStore(RankId num_ranks);

  /// Register a new task on `rank`. Task ids must be unique.
  void create(RankId rank, TaskId id, std::unique_ptr<Migratable> payload);

  /// Current owner of a task; invalid_rank if unknown.
  [[nodiscard]] RankId owner(TaskId id) const;

  /// Payload access; null when the task is not on `rank`.
  [[nodiscard]] Migratable* find(RankId rank, TaskId id);
  [[nodiscard]] Migratable const* find(RankId rank, TaskId id) const;

  /// Task ids currently on `rank` (sorted).
  [[nodiscard]] std::vector<TaskId> tasks_on(RankId rank) const;

  [[nodiscard]] std::size_t total_tasks() const;
  [[nodiscard]] RankId num_ranks() const {
    return static_cast<RankId>(local_.size());
  }

  /// Execute a batch of migrations via active messages on the runtime:
  /// each origin rank extracts the payload and sends it to the target,
  /// which installs it. Runs to quiescence. Migrations whose `from` does
  /// not match the directory are rejected with a contract violation.
  /// Returns the total payload bytes moved.
  ///
  /// When the runtime has an active fault plane (rt.fault_active()) the
  /// batch runs a sequence-numbered commit protocol instead: each payload
  /// send is acknowledged, deduplicated at the receiver (a duplicated
  /// commit is a no-op), and retried with bounded exponential backoff per
  /// rt.config().retry. Migrations whose retry budget is exhausted are
  /// rolled back — the payload is reinstated at the origin, the directory
  /// keeps the origin as owner, and the migration is reported through
  /// failed_migrations(). Without a fault plane the legacy single-shot
  /// message pattern is used, byte-for-byte identical to prior releases.
  std::size_t migrate(Runtime& rt, std::vector<Migration> const& migrations);

  /// Migrations from the most recent migrate() call whose commit could not
  /// be completed before the retry budget ran out (only possible under an
  /// active fault plane). Their tasks remain resident at the origin rank.
  [[nodiscard]] std::vector<Migration> const& failed_migrations() const {
    return failed_;
  }

  /// Cumulative payload bytes moved by all migrate() calls.
  [[nodiscard]] std::size_t migration_bytes() const {
    return migration_bytes_;
  }
  [[nodiscard]] std::size_t migration_count() const {
    return migration_count_;
  }

private:
  std::size_t migrate_resilient(Runtime& rt,
                                std::vector<Migration> const& migrations);

  std::vector<std::map<TaskId, std::unique_ptr<Migratable>>> local_;
  std::map<TaskId, RankId> directory_;
  std::vector<Migration> failed_;
  std::size_t migration_bytes_ = 0;
  std::size_t migration_count_ = 0;
};

} // namespace tlb::rt
