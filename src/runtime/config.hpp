#pragma once

/// \file config.hpp
/// Runtime construction parameters.

#include <cstdint>

#include "support/types.hpp"

namespace tlb::rt {

struct RuntimeConfig {
  /// Number of simulated ranks (logical processes).
  RankId num_ranks = 1;
  /// Worker threads driving the ranks. 1 selects the deterministic
  /// sequential driver; >1 selects the parallel driver where each worker
  /// owns a contiguous block of ranks and executes their handlers.
  int num_threads = 1;
  /// Seed from which every rank derives an independent RNG stream.
  std::uint64_t seed = 0x5eedf00dull;
  /// Messages a rank drains per scheduler visit in the sequential driver
  /// (fairness/progress knob; does not affect the final quiescent state of
  /// well-formed protocols).
  int batch = 16;
  /// Fault-injection knob: deliver each mailbox's messages in a random
  /// order instead of FIFO (deterministic given `seed`). Real networks
  /// reorder across channels; protocols built on this runtime must not
  /// depend on delivery order for correctness, and the test suite runs
  /// them under this mode to prove it.
  bool random_delivery = false;
};

} // namespace tlb::rt
