#pragma once

/// \file config.hpp
/// Runtime construction parameters.

#include <cstdint>

#include "support/types.hpp"

namespace tlb::rt {

/// Resilience knobs for the hardened message/migration protocols
/// (ObjectStore::migrate and the gossip strategy's transfer handshake).
/// Timeouts in the simulated runtime are quiescence boundaries: a send
/// whose acknowledgement has not arrived once the network is quiescent is
/// provably lost (dropped or purged by the fault plane), so each retry
/// attempt is separated by a run to quiescence and resent after an
/// exponentially growing poll-count backoff.
struct RetryPolicy {
  /// Resend attempts after the initial send before a transfer/migration
  /// is abandoned (NACKed out) and its task reinstated at the origin.
  int max_attempts = 4;
  /// Attempt k's resend is parked for base << (k-1) drain polls of the
  /// origin rank (bounded by max_backoff_polls) before going out.
  std::uint64_t backoff_base_polls = 8;
  std::uint64_t max_backoff_polls = 1024;
  /// Liveness valve for run_until_quiescent: maximum full sweeps over the
  /// rank set before the runtime gives up, flushes everything still in
  /// flight (counted as dropped), and reports failure so the caller can
  /// fall back. 0 means unlimited — correct protocols always quiesce, so
  /// the budget exists to convert a wedged round into a clean abort.
  std::size_t quiesce_poll_budget = 0;
};

struct RuntimeConfig {
  /// Number of simulated ranks (logical processes).
  RankId num_ranks = 1;
  /// Worker threads driving the ranks. 1 selects the deterministic
  /// sequential driver; >1 selects the parallel driver, which splits the
  /// rank space into shards that workers claim and steal (a shard runs on
  /// exactly one worker at a time, so per-rank handler execution stays
  /// single-threaded).
  int num_threads = 1;
  /// Shards carved per worker for the work-stealing driver (clamped so a
  /// shard never goes empty). More shards = finer-grained stealing at the
  /// cost of more claim traffic; 4 keeps idle time low for the skewed
  /// workloads the LB rounds produce without measurable claim overhead.
  int shards_per_worker = 4;
  /// The single root seed of every stochastic component in a run. All
  /// randomized machinery derives its stream from it by splitmix splits:
  ///   - per-rank handler RNGs (gossip peer selection, CMF sampling,
  ///     pop_batch_random): Rng{seed}.split(rank);
  ///   - the fault plane (fault::install_fault_plane): a dedicated
  ///     fault-stream split (kFaultStreamTag), then one sub-stream per
  ///     sending rank.
  /// Reproducing any run — including a chaos-suite failure — therefore
  /// requires exactly this one value.
  std::uint64_t seed = 0x5eedf00dull;
  /// Messages a rank drains per scheduler visit in the sequential driver
  /// (fairness/progress knob; does not affect the final quiescent state of
  /// well-formed protocols).
  int batch = 16;
  /// Envelopes pre-reserved in every mailbox's producer queue and consumer
  /// stash. Zero keeps the historical lazy growth. A value at or above a
  /// protocol's peak per-rank burst makes the steady-state delivery path
  /// allocation-free (pinned by the gossip allocation-counter test).
  std::size_t mailbox_reserve = 0;
  /// Fault-injection knob: deliver each mailbox's messages in a random
  /// order instead of FIFO (deterministic given `seed`). Real networks
  /// reorder across channels; protocols built on this runtime must not
  /// depend on delivery order for correctness, and the test suite runs
  /// them under this mode to prove it.
  bool random_delivery = false;
  /// Retry/timeout policy for the resilient protocols. Only consulted
  /// when a fault plane is installed (Runtime::fault_active()); the
  /// fault-free fast paths stay bit-identical to the historical behavior.
  RetryPolicy retry;
};

/// Stream tag reserved for deriving the fault plane's RNG from the root
/// seed (kept distinct from the per-rank tags 0..P-1 by living far outside
/// any plausible rank range).
inline constexpr std::uint64_t kFaultStreamTag = 0xfa17'0000'0000'0001ull;

} // namespace tlb::rt
