#pragma once

/// \file collectives.hpp
/// Tree-based collectives implemented purely with active messages, so that
/// their traffic shows up in the runtime's network statistics exactly as a
/// distributed implementation's would. All collectives are driver-level
/// operations: call them between protocol stages, not from inside handlers.
///
/// The reduction tree is the implicit binary heap layout (children of i are
/// 2i+1 and 2i+2), giving ceil(log2 P) depth and 2(P-1) messages per
/// allreduce (P-1 up, P-1 down).

#include <vector>

#include "runtime/runtime.hpp"
#include "support/assert.hpp"

namespace tlb::rt {

namespace detail {

inline RankId tree_parent(RankId r) { return (r - 1) / 2; }
inline RankId tree_child(RankId r, int which) { return 2 * r + 1 + which; }

inline int tree_num_children(RankId r, RankId p) {
  int n = 0;
  for (int c = 0; c < 2; ++c) {
    if (tree_child(r, c) < p) {
      ++n;
    }
  }
  return n;
}

} // namespace detail

/// Allreduce: combine every rank's contribution with `op` and deliver the
/// global result to every rank. Returns the per-rank results (all equal).
///
/// Under fault injection the reduction tree is fragile by design — one
/// lost or crashed link starves the root and the down-phase never reaches
/// some ranks. `complete` (when non-null) reports whether every rank
/// received the broadcast result before quiescence; callers running with
/// an active fault plane must check it and treat a false as "this round's
/// global statistics are unusable" rather than reading the results.
///
/// \tparam T   Value type; copied into messages.
/// \tparam Op  Binary associative combiner: T op(T const&, T const&).
template <typename T, typename Op>
std::vector<T> allreduce(Runtime& rt, std::vector<T> const& contributions,
                         Op op, std::size_t bytes_per_item = sizeof(T),
                         bool* complete = nullptr) {
  auto const p = rt.num_ranks();
  TLB_EXPECTS(static_cast<RankId>(contributions.size()) == p);

  struct NodeState {
    T value{};
    int pending = 0;
    // Written only by this rank's broadcast_down handler, read by the
    // driver after quiescence (distinct location per rank: no race).
    char delivered = 0;
  };
  // Shared per-rank state: each slot is only touched by handlers running
  // on its own rank, which the runtime serializes.
  std::vector<NodeState> state(static_cast<std::size_t>(p));
  std::vector<T> results(static_cast<std::size_t>(p));

  // The up-phase send, defined recursively through handler chaining.
  struct Proto {
    std::vector<NodeState>* state;
    std::vector<T>* results;
    Op op;
    std::size_t bytes;
    RankId p;

    void contribute(RankContext& ctx, T const& incoming) const {
      auto& node = (*state)[static_cast<std::size_t>(ctx.rank())];
      node.value = op(node.value, incoming);
      if (--node.pending == 0) {
        finish(ctx);
      }
    }

    void finish(RankContext& ctx) const {
      auto const r = ctx.rank();
      auto const& node = (*state)[static_cast<std::size_t>(r)];
      if (r == 0) {
        broadcast_down(ctx, node.value);
      } else {
        T value = node.value;
        Proto proto = *this;
        ctx.send(detail::tree_parent(r), bytes, [proto, value](
                                                    RankContext& up) {
          proto.contribute(up, value);
        });
      }
    }

    void broadcast_down(RankContext& ctx, T const& value) const {
      auto const r = ctx.rank();
      (*results)[static_cast<std::size_t>(r)] = value;
      (*state)[static_cast<std::size_t>(r)].delivered = 1;
      Proto proto = *this;
      for (int c = 0; c < 2; ++c) {
        RankId const child = detail::tree_child(r, c);
        if (child < p) {
          ctx.send(child, bytes, [proto, value](RankContext& down) {
            proto.broadcast_down(down, value);
          });
        }
      }
    }
  };

  Proto const proto{&state, &results, op, bytes_per_item, p};
  for (RankId r = 0; r < p; ++r) {
    T const contribution = contributions[static_cast<std::size_t>(r)];
    rt.post(r, [proto, contribution](RankContext& ctx) {
      auto& node = proto.state->at(static_cast<std::size_t>(ctx.rank()));
      node.value = contribution;
      node.pending = detail::tree_num_children(ctx.rank(), proto.p) + 1;
      if (--node.pending == 0) {
        proto.finish(ctx);
      }
    });
  }
  bool const quiesced = rt.run_until_quiescent();
  if (complete != nullptr) {
    bool all_delivered = true;
    for (auto const& node : state) {
      all_delivered = all_delivered && node.delivered != 0;
    }
    *complete = quiesced && all_delivered;
  }
  return results;
}

/// Per-rank load statistics carried through the LB's initial allreduce
/// (the paper's "constant-size statistical data": l_max, l_ave inputs).
struct LoadStat {
  LoadType max = 0.0;
  LoadType sum = 0.0;
  std::int64_t count = 0;

  [[nodiscard]] LoadType average() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }

  [[nodiscard]] static LoadStat of(LoadType load) {
    return LoadStat{load, load, 1};
  }

  [[nodiscard]] friend LoadStat combine(LoadStat const& a, LoadStat const& b) {
    return LoadStat{a.max > b.max ? a.max : b.max, a.sum + b.sum,
                    a.count + b.count};
  }
};

/// Allreduce of per-rank loads into global (max, sum, count) statistics.
/// `complete` as in allreduce(): false means some rank never received the
/// result (lost or crashed reduction link) and the stats must be discarded.
inline std::vector<LoadStat> allreduce_loads(Runtime& rt,
                                             std::vector<LoadType> const&
                                                 loads,
                                             bool* complete = nullptr) {
  std::vector<LoadStat> contributions;
  contributions.reserve(loads.size());
  for (LoadType const l : loads) {
    contributions.push_back(LoadStat::of(l));
  }
  return allreduce(rt, contributions,
                   [](LoadStat const& a, LoadStat const& b) {
                     return combine(a, b);
                   },
                   sizeof(LoadStat), complete);
}

/// Barrier: an allreduce of nothing; completes when every rank reached it.
inline void barrier(Runtime& rt) {
  std::vector<int> const zeros(static_cast<std::size_t>(rt.num_ranks()), 0);
  (void)allreduce(rt, zeros, [](int a, int b) { return a + b; },
                  /*bytes_per_item=*/0);
}

} // namespace tlb::rt
