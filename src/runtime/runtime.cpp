#include "runtime/runtime.hpp"

#include <algorithm>
#include <optional>
#include <thread>

#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "support/assert.hpp"
#include "support/check.hpp"

namespace tlb::rt {

RankId RankContext::num_ranks() const { return rt_->num_ranks(); }

void RankContext::send(RankId to, std::size_t bytes, Handler handler,
                       MessageKind kind) {
  if (coalescer_ != nullptr) {
    coalescer_->stats_.record_send(to == rank_, bytes, kind);
  } else {
    rt_->stats_.record_send(to == rank_, bytes, kind);
  }
  Envelope env{rank_, to, bytes, std::move(handler), kind};
#if TLB_TELEMETRY_ENABLED
  if (obs::enabled()) {
    rt_->stamp_causal(env, rank_, cause_);
  }
#endif
  rt_->enqueue(std::move(env), coalescer_);
}

Rng& RankContext::rng() { return rt_->rank_rng(rank_); }

Runtime::Runtime(RuntimeConfig config)
    : config_{config},
      mailboxes_(static_cast<std::size_t>(config.num_ranks)),
      polls_(static_cast<std::size_t>(config.num_ranks)) {
  TLB_EXPECTS(config.num_ranks > 0);
  TLB_EXPECTS(config.num_threads >= 1);
  TLB_EXPECTS(config.batch > 0);
  TLB_EXPECTS(config.shards_per_worker >= 1);
  if (config.mailbox_reserve > 0) {
    for (auto& mailbox : mailboxes_) {
      mailbox.reserve(config.mailbox_reserve);
    }
  }
  Rng const root{config.seed};
  rank_rngs_.reserve(static_cast<std::size_t>(config.num_ranks));
  for (RankId r = 0; r < config.num_ranks; ++r) {
    rank_rngs_.push_back(root.split(static_cast<std::uint64_t>(r)));
  }
#if TLB_TELEMETRY_ENABLED
  // One sequence slot per rank plus the driver's (index num_ranks).
  causal_seq_.assign(static_cast<std::size_t>(config.num_ranks) + 1, 0);
#endif
}

#if TLB_TELEMETRY_ENABLED

void Runtime::stamp_causal(Envelope& env, RankId sender,
                           obs::CausalStamp const* cause) {
  auto const slot = sender == invalid_rank
                        ? static_cast<std::size_t>(num_ranks())
                        : static_cast<std::size_t>(sender);
  // 2^40 ids per sender before collision with the next slot — unreachable
  // (the causal log itself caps out far earlier).
  env.cause.id = ((static_cast<std::uint64_t>(slot) + 1) << 40) |
                 ++causal_seq_[slot];
  if (cause != nullptr && cause->id != 0) {
    env.cause.parent = cause->id;
    env.cause.origin = cause->origin;
    env.cause.step = cause->step;
    env.cause.hop = static_cast<std::uint16_t>(cause->hop + 1);
  } else {
    // Root message: a driver post (origin = the rank the work lands on)
    // or a handler send whose own delivery predates telemetry being
    // switched on.
    env.cause.parent = 0;
    env.cause.origin = sender == invalid_rank ? env.to : sender;
    env.cause.step = obs::CausalLog::instance().step();
    env.cause.hop = 0;
  }
}

void Runtime::consume_traced(Envelope& env, RankContext& ctx) {
  obs::Tracer const& tracer = obs::Tracer::instance();
  ctx.cause_ = &env.cause;
  auto const t0 = tracer.now_us();
  env.handler.consume(ctx);
  auto const t1 = tracer.now_us();
  ctx.cause_ = nullptr;
  obs::CausalEvent event;
  event.stamp = env.cause;
  event.from = env.from;
  event.to = env.to;
  event.kind = message_kind_name(env.kind);
  event.bytes = env.bytes;
  event.ts_us = t0;
  event.dur_us = t1 - t0;
  obs::CausalLog::instance().record(event);
}

#endif // TLB_TELEMETRY_ENABLED

void Runtime::post(RankId to, Handler handler, std::size_t bytes,
                   MessageKind kind) {
  TLB_EXPECTS(to >= 0 && to < num_ranks());
  stats_.record_send(false, bytes, kind);
  Envelope env{invalid_rank, to, bytes, std::move(handler), kind};
#if TLB_TELEMETRY_ENABLED
  if (obs::enabled()) {
    stamp_causal(env, invalid_rank, nullptr);
  }
#endif
  enqueue(std::move(env), nullptr);
}

void Runtime::post_all(Handler const& handler) {
  if (fault_active()) {
    // Keep per-message fault interposition on driver-injected fanout.
    for (RankId r = 0; r < num_ranks(); ++r) {
      post(r, handler.clone());
    }
    return;
  }
  // Fault-free fast path: one bulk in-flight/audit update and one stats
  // fold for the whole fanout instead of P rounds of hot atomics.
  auto const p = static_cast<std::size_t>(num_ranks());
  add_in_flight(static_cast<std::int64_t>(p));
  TLB_AUDIT_BLOCK {
    audit_enqueued_.fetch_add(p, std::memory_order_relaxed);
  }
  bool const consumer = config_.num_threads <= 1;
  LocalNetworkStats local;
  for (RankId r = 0; r < num_ranks(); ++r) {
    local.record_send(false, 0, MessageKind::other);
    auto& mailbox = mailboxes_[static_cast<std::size_t>(r)];
    Envelope env{invalid_rank, r, 0, handler.clone(), MessageKind::other};
#if TLB_TELEMETRY_ENABLED
    if (obs::enabled()) {
      stamp_causal(env, invalid_rank, nullptr);
    }
#endif
    auto const depth = consumer ? mailbox.push_consumer(std::move(env))
                                : mailbox.push(std::move(env));
    if (depth > local.max_mailbox_depth) {
      local.max_mailbox_depth = depth;
    }
  }
  stats_.fold(local);
}

void Runtime::post_delayed(RankId to, Handler handler,
                           std::uint64_t delay_polls, std::size_t bytes,
                           MessageKind kind) {
  TLB_EXPECTS(to >= 0 && to < num_ranks());
  stats_.record_send(false, bytes, kind);
  Envelope env{invalid_rank, to, bytes, std::move(handler), kind,
               /*fault_exempt=*/true};
#if TLB_TELEMETRY_ENABLED
  if (obs::enabled()) {
    // Retry triggers and other delayed work start fresh causal roots:
    // they model local scheduling, not wire traffic, so the chain they
    // spawn (e.g. a handshake resend) is attributed to the retry itself.
    stamp_causal(env, invalid_rank, nullptr);
  }
#endif
  if (delay_polls == 0) {
    enqueue_direct(std::move(env), nullptr);
    return;
  }
  add_in_flight(1);
  TLB_AUDIT_BLOCK {
    audit_enqueued_.fetch_add(1, std::memory_order_relaxed);
  }
  auto const due = polls_[static_cast<std::size_t>(to)].value.load(
                       std::memory_order_relaxed) +
                   delay_polls;
  mailboxes_[static_cast<std::size_t>(to)].push_delayed(std::move(env), due);
  delayed_pending_.fetch_add(1, std::memory_order_release);
}

void Runtime::enqueue(Envelope env, SendCoalescer* coalescer) {
  TLB_EXPECTS(env.to >= 0 && env.to < num_ranks());
#if TLB_FAULT_ENABLED
  if (fault_ != nullptr && !env.fault_exempt) {
    FaultDecision const decision = fault_->on_send(env.from, env.to, env.kind);
    switch (decision.action) {
    case FaultAction::drop:
      // Refused before it was ever in flight: quiescence is unaffected,
      // only the per-kind drop counter remembers it.
      stats_.record_drop(env.kind);
      TLB_INSTANT_ARG("fault", "drop", "kind", static_cast<int>(env.kind));
      return;
    case FaultAction::duplicate: {
      stats_.record_duplicate(env.kind);
      TLB_INSTANT_ARG("fault", "duplicate", "kind",
                      static_cast<int>(env.kind));
      Envelope clone{env.from, env.to, env.bytes, env.handler.clone(),
                     env.kind, /*fault_exempt=*/true};
#if TLB_TELEMETRY_ENABLED
      // A duplicate IS the same logical message: it shares the original's
      // causal identity rather than consuming a fresh id, so the causal
      // graph (and the id sequence later sends observe) is unchanged.
      clone.cause = env.cause;
#endif
      enqueue_direct(std::move(clone), coalescer);
      break; // the original still delivers below
    }
    case FaultAction::delay: {
      // Delays park in the mailbox's delay queue directly: coalescing
      // would defeat the fault's purpose (reordering relative to the
      // sender's later messages).
      stats_.record_delay(env.kind);
      TLB_INSTANT_ARG("fault", "delay", "kind", static_cast<int>(env.kind));
      add_in_flight(1);
      TLB_AUDIT_BLOCK {
        audit_enqueued_.fetch_add(1, std::memory_order_relaxed);
      }
      auto const to = static_cast<std::size_t>(env.to);
      auto const due = polls_[to].value.load(std::memory_order_relaxed) +
                       std::max<std::uint32_t>(1, decision.delay_polls);
      mailboxes_[to].push_delayed(std::move(env), due);
      delayed_pending_.fetch_add(1, std::memory_order_release);
      return;
    }
    case FaultAction::deliver:
      break;
    }
  }
#endif
  enqueue_direct(std::move(env), coalescer);
}

void Runtime::enqueue_direct(Envelope&& env, SendCoalescer* coalescer) {
  if (coalescer != nullptr) {
    // No atomics here at all: the message is counted in flight in bulk at
    // flush time (flush_coalesced folds pending_ before the batch that
    // produced these sends retires, so in_flight stays positive for as
    // long as the envelope sits in a buffer or an unswept stash).
    if (config_.num_threads <= 1) {
      // Sequential driver: it is the single consumer of every mailbox, so
      // the send can go straight into the destination's consumer stash —
      // eager, lock-free, and with no per-destination staging pass. The
      // delivery order is exactly eager-push order, bit-identical to the
      // historical sequential schedule.
      ++coalescer->pending_;
      auto const depth = mailboxes_[static_cast<std::size_t>(env.to)]
                             .push_consumer(std::move(env));
      if (depth > coalescer->stats_.max_mailbox_depth) {
        coalescer->stats_.max_mailbox_depth = depth;
      }
      return;
    }
    coalescer->append(std::move(env));
    return;
  }
  // Direct path (driver posts): increment strictly before the message
  // becomes visible so in_flight==0 can never be observed while work
  // remains. Under the sequential driver the posting thread is also every
  // mailbox's consumer, so the lock-free consumer push applies here too.
  add_in_flight(1);
  TLB_AUDIT_BLOCK {
    audit_enqueued_.fetch_add(1, std::memory_order_relaxed);
  }
  auto& mailbox = mailboxes_[static_cast<std::size_t>(env.to)];
  auto const depth = config_.num_threads <= 1
                         ? mailbox.push_consumer(std::move(env))
                         : mailbox.push(std::move(env));
  stats_.record_mailbox_depth(depth);
}

void Runtime::flush_coalesced(SendCoalescer& coalescer) {
  // Count every buffered message in flight before the first push: once an
  // envelope is visible another worker may run and retire it, and the
  // counter must never have missed it.
  if (coalescer.pending_ > 0) {
    add_in_flight(static_cast<std::int64_t>(coalescer.pending_));
    TLB_AUDIT_BLOCK {
      audit_enqueued_.fetch_add(coalescer.pending_,
                                std::memory_order_relaxed);
    }
    coalescer.pending_ = 0;
  }
  // Bucketed envelopes exist only under the threaded driver (the
  // sequential driver pushes eagerly into consumer stashes and only needs
  // the bulk in-flight fold above).
  for (std::size_t i = 0; i < coalescer.used_; ++i) {
    auto& bucket = coalescer.buckets_[i];
    auto const n = bucket.msgs.size();
    auto const depth =
        mailboxes_[static_cast<std::size_t>(bucket.dest)].push_batch(
            bucket.msgs);
    coalescer.stats_.record_flush(n, depth);
    coalescer.slot_of_dest_[static_cast<std::size_t>(bucket.dest)] = 0;
  }
  coalescer.used_ = 0;
}

void Runtime::record_retry(MessageKind kind) {
  stats_.record_retry(kind);
  TLB_INSTANT_ARG("fault", "retry", "kind", static_cast<int>(kind));
}

Rng& Runtime::rank_rng(RankId rank) {
  TLB_EXPECTS(rank >= 0 && rank < num_ranks());
  return rank_rngs_[static_cast<std::size_t>(rank)];
}

void Runtime::purge_rank(RankId rank, std::vector<Envelope>& scratch) {
  scratch.clear();
  std::size_t delayed_removed = 0;
  auto const n = mailboxes_[static_cast<std::size_t>(rank)].drain_all(
      scratch, &delayed_removed);
  if (n == 0) {
    return;
  }
  for (Envelope const& env : scratch) {
    stats_.record_drop(env.kind);
  }
  scratch.clear();
  if (delayed_removed > 0) {
    delayed_pending_.fetch_sub(static_cast<std::int64_t>(delayed_removed),
                               std::memory_order_relaxed);
  }
  TLB_AUDIT_BLOCK {
    audit_purged_.fetch_add(n, std::memory_order_relaxed);
  }
  add_in_flight(-static_cast<std::int64_t>(n));
}

void Runtime::flush_all() {
  std::vector<Envelope> scratch;
  for (RankId r = 0; r < num_ranks(); ++r) {
    purge_rank(r, scratch);
  }
}

std::size_t Runtime::drain_rank(RankId rank, WorkerState& worker,
                                std::size_t batch) {
  auto const slot = static_cast<std::size_t>(rank);
  // Single-writer counter (shard ownership serializes visits): a relaxed
  // load/store pair, not an RMW — senders computing delay due-times only
  // ever read it approximately.
  auto const poll =
      polls_[slot].value.load(std::memory_order_relaxed) + 1;
  polls_[slot].value.store(poll, std::memory_order_relaxed);
  auto& mailbox = mailboxes_[slot];
#if TLB_FAULT_ENABLED
  if (fault_ != nullptr) {
    switch (fault_->on_drain(rank, poll)) {
    case DrainGate::open:
      break;
    case DrainGate::stalled:
      return 0; // transient: messages wait, quiescence keeps spinning
    case DrainGate::crashed:
      purge_rank(rank, worker.scratch);
      return 0;
    }
  }
#endif
  // The whole visit — releasing due delayed messages and claiming the
  // batch — is a single mailbox lock acquisition (zero when the consumer
  // stash already holds a full batch and no delays are pending).
  bool const need_release =
      delayed_pending_.load(std::memory_order_acquire) > 0;
  std::size_t released = 0;
  std::size_t n = 0;
  RankContext ctx{*this, rank, &worker.coalescer};
  if (config_.random_delivery) {
    worker.scratch.clear();
    n = mailbox.pop_batch_random(worker.scratch, batch, rank_rng(rank),
                                 poll, need_release, &released);
  } else if (config_.num_threads <= 1) {
    // Sequential in-place delivery: handlers consume straight out of the
    // mailbox stash, skipping the stash→scratch staging copy (one full
    // envelope move per message, the hottest store in the sequential
    // profile). Delivery order is identical to the staged path — the
    // batch is fixed before the first handler runs. The drain span is
    // opened lazily so empty polls stay span-free.
    std::optional<obs::SpanGuard> span;
    n = mailbox.consume_batch(batch, poll, need_release, &released,
                              [&](Envelope& env) {
                                if (!span) {
                                  span.emplace("rt", "drain");
                                }
#if TLB_TELEMETRY_ENABLED
                                if (obs::enabled()) {
                                  consume_traced(env, ctx);
                                  return;
                                }
#endif
                                env.handler.consume(ctx);
                              });
    if (span) {
      span->set_arg("n", static_cast<double>(n));
    }
  } else {
    worker.scratch.clear();
    n = mailbox.drain(worker.scratch, batch, poll, need_release, &released);
  }
  if (released > 0) {
    delayed_pending_.fetch_sub(static_cast<std::int64_t>(released),
                               std::memory_order_relaxed);
  }
  if (n == 0) {
    return 0; // empty poll: keep the spin loop span-free
  }
  if (!worker.scratch.empty()) {
    TLB_SPAN_ARG("rt", "drain", "n", n);
#if TLB_TELEMETRY_ENABLED
    if (obs::enabled()) {
      for (Envelope& env : worker.scratch) {
        consume_traced(env, ctx);
      }
    } else
#endif
      for (Envelope& env : worker.scratch) {
        env.handler.consume(ctx); // invoke + destroy in one dispatch
      }
  }
  // Flush the batch's coalesced sends before retiring the batch from the
  // in-flight counter: buffered messages were counted at append time, so
  // flushing first keeps in_flight==0 unobservable while any envelope
  // still sits in a worker-private buffer.
  if (!worker.coalescer.empty()) {
    TLB_SPAN("rt", "flush");
    flush_coalesced(worker.coalescer);
  }
  // Decrement once, after every handler in the batch (and the sends they
  // performed, which have already incremented the counter) completes.
  // Deferring keeps the invariant that in_flight == 0 is unobservable
  // while work remains — the counter only over-estimates — and replaces n
  // hot-atomic RMWs per drain with one.
  TLB_AUDIT_BLOCK {
    audit_processed_.fetch_add(n, std::memory_order_relaxed);
  }
  add_in_flight(-static_cast<std::int64_t>(n));
  return n;
}

bool Runtime::run_until_quiescent() {
  return run_until_quiescent(config_.retry.quiesce_poll_budget);
}

bool Runtime::run_until_quiescent(std::size_t max_polls) {
  TLB_SPAN("rt", "quiesce");
  abort_.store(false, std::memory_order_relaxed);
  if (config_.num_threads <= 1) {
    run_sequential(max_polls);
  } else {
    run_threaded(max_polls);
  }
  bool const aborted = abort_.load(std::memory_order_relaxed);
  if (aborted) {
#if TLB_TELEMETRY_ENABLED
    if (obs::enabled()) {
      // Liveness valve tripped: capture the black box before the flush
      // below destroys the evidence of what was still in flight.
      (void)obs::dump_flight_record("quiesce_budget_exhausted");
    }
#endif
    // Budget expired with work still in flight. No handler is executing
    // any more, so everything left lives in the mailboxes: flush it
    // (counted as dropped) so the runtime is reusable and in-flight is an
    // honest zero for the next round.
    flush_all();
    abort_.store(false, std::memory_order_relaxed);
  }
  TLB_ENSURES(in_flight_.load(std::memory_order_acquire) == 0);
  TLB_AUDIT_BLOCK {
    // Termination-counter consistency: the in-flight counter says zero;
    // the independent totals and the mailboxes themselves must agree that
    // every message enqueued over the runtime's lifetime ran exactly once
    // — or was explicitly purged by a crash or an abort flush.
    TLB_INVARIANT(audit_processed_.load(std::memory_order_acquire) +
                          audit_purged_.load(std::memory_order_acquire) ==
                      audit_enqueued_.load(std::memory_order_acquire),
                  "quiescence: every enqueued message processed or purged");
    bool drained = true;
    for (Mailbox const& mailbox : mailboxes_) {
      drained = drained && mailbox.empty();
    }
    TLB_INVARIANT(drained, "quiescence: every mailbox empty");
  }
  return !aborted;
}

void Runtime::run_sequential(std::size_t max_polls) {
  // Deterministic round-robin: visit ranks in order, draining a bounded
  // batch from each, until the in-flight counter reaches zero. Coalesced
  // sends flush at the end of each visit — before any other rank runs —
  // so the schedule is bit-identical to the historical eager-push driver.
  auto const batch = static_cast<std::size_t>(config_.batch);
  WorkerState& worker = worker_state(0);
  std::size_t sweeps = 0;
  while (in_flight_.load(std::memory_order_acquire) > 0) {
    for (RankId r = 0; r < num_ranks(); ++r) {
      drain_rank(r, worker, batch);
    }
    if (max_polls != 0 && ++sweeps >= max_polls &&
        in_flight_.load(std::memory_order_acquire) > 0) {
      abort_.store(true, std::memory_order_relaxed);
      break;
    }
  }
  stats_.fold(worker.coalescer.stats_);
  worker.coalescer.stats_ = LocalNetworkStats{};
}

void Runtime::run_threaded(std::size_t max_polls) {
  int const workers =
      std::min<int>(config_.num_threads, static_cast<int>(num_ranks()));
  auto const ranks = static_cast<std::size_t>(num_ranks());
  // Work stealing over rank shards: the rank space is cut into a few
  // shards per worker (sizes differing by at most one, never empty — this
  // also fixes the old ceil-division block split, which could hand the
  // last worker an empty range when P wasn't divisible). Any worker may
  // claim any unclaimed shard; the acquire exchange / release store pair
  // on the claim flag orders consecutive processors of a rank, so a
  // rank's handlers still execute single-threaded and per-rank protocol
  // state needs no locking.
  auto const nshards = std::min(
      ranks, static_cast<std::size_t>(workers) *
                 static_cast<std::size_t>(config_.shards_per_worker));
  std::vector<Shard> shards(nshards);
  for (std::size_t s = 0; s < nshards; ++s) {
    shards[s].lo = static_cast<RankId>(s * ranks / nshards);
    shards[s].hi = static_cast<RankId>((s + 1) * ranks / nshards);
  }

  auto const batch = static_cast<std::size_t>(config_.batch);
  // Touch every worker's state on the driver thread first so the lazily-
  // grown vector never reallocates under a worker.
  worker_state(static_cast<std::size_t>(workers) - 1);

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([this, w, workers, nshards, &shards, batch,
                       max_polls] {
      WorkerState& worker = worker_state(static_cast<std::size_t>(w));
      // Stagger the sweep start so workers begin on disjoint shards and
      // only collide (and steal) once load skews.
      std::size_t const start =
          static_cast<std::size_t>(w) * nshards / static_cast<std::size_t>(workers);
      int idle_spins = 0;
      std::size_t sweeps = 0;
      while (in_flight_.load(std::memory_order_acquire) > 0) {
        if (abort_.load(std::memory_order_relaxed)) {
          return; // another worker exhausted the budget
        }
        std::size_t processed = 0;
        for (std::size_t i = 0; i < nshards; ++i) {
          Shard& shard = shards[(start + i) % nshards];
          if (shard.busy.exchange(true, std::memory_order_acquire)) {
            continue; // another worker holds it; move on, don't wait
          }
          for (RankId r = shard.lo; r < shard.hi; ++r) {
            processed += drain_rank(r, worker, batch);
          }
          shard.busy.store(false, std::memory_order_release);
        }
        if (max_polls != 0 && ++sweeps >= max_polls) {
          if (in_flight_.load(std::memory_order_acquire) > 0) {
            abort_.store(true, std::memory_order_relaxed);
          }
          return;
        }
        if (processed == 0) {
          // Backoff: other workers' messages may still be in flight
          // toward the shards we can see.
          if (++idle_spins > 64) {
            std::this_thread::yield();
          }
        } else {
          idle_spins = 0;
        }
      }
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }
  for (int w = 0; w < workers; ++w) {
    auto& state = worker_state(static_cast<std::size_t>(w));
    stats_.fold(state.coalescer.stats_);
    state.coalescer.stats_ = LocalNetworkStats{};
  }
}

Runtime::WorkerState& Runtime::worker_state(std::size_t index) {
  while (worker_states_.size() <= index) {
    worker_states_.emplace_back(static_cast<std::size_t>(num_ranks()),
                                static_cast<std::size_t>(config_.batch));
  }
  return worker_states_[index];
}

void Runtime::publish_metrics(obs::Registry& registry) const {
  auto const s = stats_.snapshot();
  registry.counter("net.messages").set(s.messages);
  registry.counter("net.bytes").set(s.bytes);
  registry.counter("net.local_messages").set(s.local_messages);
  for (std::size_t k = 0; k < num_message_kinds; ++k) {
    obs::Labels const labels{
        {"category", message_kind_name(static_cast<MessageKind>(k))}};
    registry.counter("net.messages_by_category", labels)
        .set(s.kind_messages[k]);
    registry.counter("net.bytes_by_category", labels).set(s.kind_bytes[k]);
    registry.counter("net.dropped_by_category", labels).set(s.kind_dropped[k]);
    registry.counter("net.delayed_by_category", labels).set(s.kind_delayed[k]);
    registry.counter("net.duplicated_by_category", labels)
        .set(s.kind_duplicated[k]);
    registry.counter("net.retried_by_category", labels).set(s.kind_retried[k]);
  }
  registry.gauge("net.max_mailbox_depth")
      .set(static_cast<std::int64_t>(s.max_mailbox_depth));
  registry.counter("net.coalesced_flushes").set(s.coalesced_flushes);
  registry.counter("net.coalesced_messages").set(s.coalesced_messages);
}

} // namespace tlb::rt
