#include "runtime/runtime.hpp"

#include <algorithm>
#include <thread>

#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "support/assert.hpp"
#include "support/check.hpp"

namespace tlb::rt {

RankId RankContext::num_ranks() const { return rt_->num_ranks(); }

void RankContext::send(RankId to, std::size_t bytes, Handler handler,
                       MessageKind kind) {
  rt_->stats_.record_send(to == rank_, bytes, kind);
  rt_->enqueue(Envelope{rank_, to, bytes, std::move(handler), kind});
}

Rng& RankContext::rng() { return rt_->rank_rng(rank_); }

Runtime::Runtime(RuntimeConfig config)
    : config_{config},
      mailboxes_(static_cast<std::size_t>(config.num_ranks)),
      polls_(static_cast<std::size_t>(config.num_ranks)) {
  TLB_EXPECTS(config.num_ranks > 0);
  TLB_EXPECTS(config.num_threads >= 1);
  TLB_EXPECTS(config.batch > 0);
  Rng const root{config.seed};
  rank_rngs_.reserve(static_cast<std::size_t>(config.num_ranks));
  for (RankId r = 0; r < config.num_ranks; ++r) {
    rank_rngs_.push_back(root.split(static_cast<std::uint64_t>(r)));
  }
}

void Runtime::post(RankId to, Handler handler, std::size_t bytes,
                   MessageKind kind) {
  TLB_EXPECTS(to >= 0 && to < num_ranks());
  stats_.record_send(false, bytes, kind);
  enqueue(Envelope{invalid_rank, to, bytes, std::move(handler), kind});
}

void Runtime::post_all(Handler const& handler) {
  for (RankId r = 0; r < num_ranks(); ++r) {
    post(r, handler);
  }
}

void Runtime::post_delayed(RankId to, Handler handler,
                           std::uint64_t delay_polls, std::size_t bytes,
                           MessageKind kind) {
  TLB_EXPECTS(to >= 0 && to < num_ranks());
  stats_.record_send(false, bytes, kind);
  Envelope env{invalid_rank, to, bytes, std::move(handler), kind,
               /*fault_exempt=*/true};
  if (delay_polls == 0) {
    enqueue_direct(std::move(env));
    return;
  }
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  TLB_AUDIT_BLOCK {
    audit_enqueued_.fetch_add(1, std::memory_order_relaxed);
  }
  auto const due =
      polls_[static_cast<std::size_t>(to)].load(std::memory_order_relaxed) +
      delay_polls;
  mailboxes_[static_cast<std::size_t>(to)].push_delayed(std::move(env), due);
  delayed_pending_.fetch_add(1, std::memory_order_release);
}

void Runtime::enqueue(Envelope env) {
  TLB_EXPECTS(env.to >= 0 && env.to < num_ranks());
#if TLB_FAULT_ENABLED
  if (fault_ != nullptr && !env.fault_exempt) {
    FaultDecision const decision = fault_->on_send(env.from, env.to, env.kind);
    switch (decision.action) {
    case FaultAction::drop:
      // Refused before it was ever in flight: quiescence is unaffected,
      // only the per-kind drop counter remembers it.
      stats_.record_drop(env.kind);
      TLB_INSTANT_ARG("fault", "drop", "kind", static_cast<int>(env.kind));
      return;
    case FaultAction::duplicate: {
      stats_.record_duplicate(env.kind);
      TLB_INSTANT_ARG("fault", "duplicate", "kind",
                      static_cast<int>(env.kind));
      Envelope clone = env; // Handler is a copyable closure
      clone.fault_exempt = true;
      enqueue_direct(std::move(clone));
      break; // the original still delivers below
    }
    case FaultAction::delay: {
      stats_.record_delay(env.kind);
      TLB_INSTANT_ARG("fault", "delay", "kind", static_cast<int>(env.kind));
      in_flight_.fetch_add(1, std::memory_order_acq_rel);
      TLB_AUDIT_BLOCK {
        audit_enqueued_.fetch_add(1, std::memory_order_relaxed);
      }
      auto const to = static_cast<std::size_t>(env.to);
      auto const due = polls_[to].load(std::memory_order_relaxed) +
                       std::max<std::uint32_t>(1, decision.delay_polls);
      mailboxes_[to].push_delayed(std::move(env), due);
      delayed_pending_.fetch_add(1, std::memory_order_release);
      return;
    }
    case FaultAction::deliver:
      break;
    }
  }
#endif
  enqueue_direct(std::move(env));
}

void Runtime::enqueue_direct(Envelope env) {
  // Increment strictly before the message becomes visible so in_flight==0
  // can never be observed while work remains.
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  TLB_AUDIT_BLOCK {
    audit_enqueued_.fetch_add(1, std::memory_order_relaxed);
  }
  auto const depth =
      mailboxes_[static_cast<std::size_t>(env.to)].push(std::move(env));
  stats_.record_mailbox_depth(depth);
}

void Runtime::record_retry(MessageKind kind) {
  stats_.record_retry(kind);
  TLB_INSTANT_ARG("fault", "retry", "kind", static_cast<int>(kind));
}

Rng& Runtime::rank_rng(RankId rank) {
  TLB_EXPECTS(rank >= 0 && rank < num_ranks());
  return rank_rngs_[static_cast<std::size_t>(rank)];
}

void Runtime::purge_rank(RankId rank, std::vector<Envelope>& scratch) {
  scratch.clear();
  std::size_t delayed_removed = 0;
  auto const n = mailboxes_[static_cast<std::size_t>(rank)].drain_all(
      scratch, &delayed_removed);
  if (n == 0) {
    return;
  }
  for (Envelope const& env : scratch) {
    stats_.record_drop(env.kind);
  }
  scratch.clear();
  if (delayed_removed > 0) {
    delayed_pending_.fetch_sub(static_cast<std::int64_t>(delayed_removed),
                               std::memory_order_relaxed);
  }
  TLB_AUDIT_BLOCK {
    audit_purged_.fetch_add(n, std::memory_order_relaxed);
  }
  in_flight_.fetch_sub(static_cast<std::int64_t>(n),
                       std::memory_order_acq_rel);
}

void Runtime::flush_all() {
  std::vector<Envelope> scratch;
  for (RankId r = 0; r < num_ranks(); ++r) {
    purge_rank(r, scratch);
  }
}

std::size_t Runtime::drain_rank(RankId rank, std::vector<Envelope>& scratch,
                                std::size_t batch) {
  auto const slot = static_cast<std::size_t>(rank);
  auto const poll =
      polls_[slot].fetch_add(1, std::memory_order_relaxed) + 1;
  auto& mailbox = mailboxes_[slot];
#if TLB_FAULT_ENABLED
  if (fault_ != nullptr) {
    switch (fault_->on_drain(rank, poll)) {
    case DrainGate::open:
      break;
    case DrainGate::stalled:
      return 0; // transient: messages wait, quiescence keeps spinning
    case DrainGate::crashed:
      purge_rank(rank, scratch);
      return 0;
    }
  }
#endif
  if (delayed_pending_.load(std::memory_order_acquire) > 0) {
    auto const released = mailbox.release_due(poll);
    if (released > 0) {
      delayed_pending_.fetch_sub(static_cast<std::int64_t>(released),
                                 std::memory_order_relaxed);
    }
  }
  scratch.clear();
  auto const n =
      config_.random_delivery
          ? mailbox.pop_batch_random(scratch, batch, rank_rng(rank))
          : mailbox.pop_batch(scratch, batch);
  if (n == 0) {
    return 0; // empty poll: keep the spin loop span-free
  }
  {
    TLB_SPAN_ARG("rt", "drain", "n", n);
    RankContext ctx{*this, rank};
    for (Envelope& env : scratch) {
      env.handler(ctx);
    }
  }
  // Decrement once, after every handler in the batch (and the sends they
  // performed, which have already incremented the counter) completes.
  // Deferring keeps the invariant that in_flight == 0 is unobservable
  // while work remains — the counter only over-estimates — and replaces n
  // hot-atomic RMWs per drain with one.
  TLB_AUDIT_BLOCK {
    audit_processed_.fetch_add(n, std::memory_order_relaxed);
  }
  in_flight_.fetch_sub(static_cast<std::int64_t>(n),
                       std::memory_order_acq_rel);
  return n;
}

bool Runtime::run_until_quiescent() {
  return run_until_quiescent(config_.retry.quiesce_poll_budget);
}

bool Runtime::run_until_quiescent(std::size_t max_polls) {
  TLB_SPAN("rt", "quiesce");
  abort_.store(false, std::memory_order_relaxed);
  if (config_.num_threads <= 1) {
    run_sequential(max_polls);
  } else {
    run_threaded(max_polls);
  }
  bool const aborted = abort_.load(std::memory_order_relaxed);
  if (aborted) {
    // Budget expired with work still in flight. No handler is executing
    // any more, so everything left lives in the mailboxes: flush it
    // (counted as dropped) so the runtime is reusable and in-flight is an
    // honest zero for the next round.
    flush_all();
    abort_.store(false, std::memory_order_relaxed);
  }
  TLB_ENSURES(in_flight_.load(std::memory_order_acquire) == 0);
  TLB_AUDIT_BLOCK {
    // Termination-counter consistency: the in-flight counter says zero;
    // the independent totals and the mailboxes themselves must agree that
    // every message enqueued over the runtime's lifetime ran exactly once
    // — or was explicitly purged by a crash or an abort flush.
    TLB_INVARIANT(audit_processed_.load(std::memory_order_acquire) +
                          audit_purged_.load(std::memory_order_acquire) ==
                      audit_enqueued_.load(std::memory_order_acquire),
                  "quiescence: every enqueued message processed or purged");
    bool drained = true;
    for (Mailbox const& mailbox : mailboxes_) {
      drained = drained && mailbox.empty();
    }
    TLB_INVARIANT(drained, "quiescence: every mailbox empty");
  }
  return !aborted;
}

void Runtime::run_sequential(std::size_t max_polls) {
  // Deterministic round-robin: visit ranks in order, draining a bounded
  // batch from each, until the in-flight counter reaches zero.
  std::vector<Envelope> scratch;
  scratch.reserve(static_cast<std::size_t>(config_.batch));
  auto const batch = static_cast<std::size_t>(config_.batch);
  std::size_t sweeps = 0;
  while (in_flight_.load(std::memory_order_acquire) > 0) {
    for (RankId r = 0; r < num_ranks(); ++r) {
      drain_rank(r, scratch, batch);
    }
    if (max_polls != 0 && ++sweeps >= max_polls &&
        in_flight_.load(std::memory_order_acquire) > 0) {
      abort_.store(true, std::memory_order_relaxed);
      return;
    }
  }
}

void Runtime::run_threaded(std::size_t max_polls) {
  int const workers =
      std::min<int>(config_.num_threads, static_cast<int>(num_ranks()));
  // Contiguous block ownership: a rank's handlers only ever execute on its
  // owning worker, so per-rank protocol state needs no locking.
  auto const ranks_per_worker =
      (static_cast<std::size_t>(num_ranks()) +
       static_cast<std::size_t>(workers) - 1) /
      static_cast<std::size_t>(workers);

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    auto const lo = static_cast<RankId>(
        static_cast<std::size_t>(w) * ranks_per_worker);
    auto const hi = std::min<RankId>(
        num_ranks(), static_cast<RankId>(
                         static_cast<std::size_t>(w + 1) * ranks_per_worker));
    pool.emplace_back([this, lo, hi, max_polls] {
      std::vector<Envelope> scratch;
      auto const batch = static_cast<std::size_t>(config_.batch);
      scratch.reserve(batch);
      int idle_spins = 0;
      std::size_t sweeps = 0;
      while (in_flight_.load(std::memory_order_acquire) > 0) {
        if (abort_.load(std::memory_order_relaxed)) {
          return; // another worker exhausted the budget
        }
        std::size_t processed = 0;
        for (RankId r = lo; r < hi; ++r) {
          processed += drain_rank(r, scratch, batch);
        }
        if (max_polls != 0 && ++sweeps >= max_polls) {
          if (in_flight_.load(std::memory_order_acquire) > 0) {
            abort_.store(true, std::memory_order_relaxed);
          }
          return;
        }
        if (processed == 0) {
          // Backoff: other workers' messages may still be in flight
          // toward our ranks.
          if (++idle_spins > 64) {
            std::this_thread::yield();
          }
        } else {
          idle_spins = 0;
        }
      }
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }
}

void Runtime::publish_metrics(obs::Registry& registry) const {
  auto const s = stats_.snapshot();
  registry.counter("net.messages").set(s.messages);
  registry.counter("net.bytes").set(s.bytes);
  registry.counter("net.local_messages").set(s.local_messages);
  for (std::size_t k = 0; k < num_message_kinds; ++k) {
    obs::Labels const labels{
        {"category", message_kind_name(static_cast<MessageKind>(k))}};
    registry.counter("net.messages_by_category", labels)
        .set(s.kind_messages[k]);
    registry.counter("net.bytes_by_category", labels).set(s.kind_bytes[k]);
    registry.counter("net.dropped_by_category", labels).set(s.kind_dropped[k]);
    registry.counter("net.delayed_by_category", labels).set(s.kind_delayed[k]);
    registry.counter("net.duplicated_by_category", labels)
        .set(s.kind_duplicated[k]);
    registry.counter("net.retried_by_category", labels).set(s.kind_retried[k]);
  }
  registry.gauge("net.max_mailbox_depth")
      .set(static_cast<std::int64_t>(s.max_mailbox_depth));
}

} // namespace tlb::rt
