#pragma once

/// \file inline_handler.hpp
/// Small-buffer-optimized active-message callable. The runtime used to
/// type-erase handlers through std::function, which heap-allocates for any
/// closure larger than (typically) two pointers — and nearly every protocol
/// closure captures a shared_ptr plus payload, so the old message plane
/// paid one malloc/free per message. InlineHandler stores the closure
/// inline in the envelope (capacity sized for the largest protocol closure
/// in the tree), falling back to the heap only for oversized or
/// throwing-move callables, and counts those fallbacks in a process-wide
/// counter so the benches can prove the hot protocols never take it.
///
/// Semantics versus std::function:
///   - move-only: envelopes are never implicitly copied. The fault plane's
///     duplicate fault and Runtime::post_all need real copies, so a
///     copyable closure can be duplicated *explicitly* via clone();
///     clone() on a move-only closure is a programming error (asserted).
///   - invocation is non-const (handlers run once, on the owning rank).
///   - empty handlers (default / nullptr) are allowed but must not be
///     invoked (asserted), same contract as std::function's bad_function_
///     call, without the exception machinery.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "support/assert.hpp"

namespace tlb::rt {

class RankContext;

class InlineHandler {
public:
  /// Inline closure capacity, sized to the largest hot-path protocol
  /// closure and no larger: every extra byte here is paid by *every*
  /// envelope in every mailbox buffer, and the message plane is memory-
  /// bound at scale (capacity 64 + 8-byte alignment keeps sizeof(Envelope)
  /// at 96 — a line and a half — where the original std::max_align_t-
  /// aligned buffer cost two full lines). Protocol closures are kept under
  /// this by capturing one shared_ptr to per-run state instead of fat
  /// value captures (see Shared in gossip_strategy.cpp); the heap-fallback
  /// counter (asserted zero across the protocol suites) is the regression
  /// guard if a closure outgrows this.
  static constexpr std::size_t inline_capacity = 64;

  InlineHandler() = default;
  /*implicit*/ InlineHandler(std::nullptr_t) {}

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineHandler> &&
                !std::is_same_v<D, std::nullptr_t> &&
                std::is_invocable_v<D&, RankContext&>>>
  /*implicit*/ InlineHandler(F&& fn) {
#if TLB_STRICT_SBO_ENABLED
    // Strict-SBO mode (-DTLB_STRICT_SBO=ON): the heap fallback below is
    // forbidden at compile time, turning the protocol suites' "zero heap
    // fallbacks" runtime assertion into a build-breaking guarantee. A
    // closure tripping this has outgrown the envelope: hoist fat captures
    // into a shared_ptr'd per-run block (see Shared in gossip_strategy.cpp)
    // instead of raising inline_capacity.
    static_assert(sizeof(D) <= inline_capacity,
                  "TLB_STRICT_SBO: closure exceeds InlineHandler's inline "
                  "buffer and would heap-allocate per message");
    static_assert(alignof(D) <= 8,
                  "TLB_STRICT_SBO: over-aligned closure would take the "
                  "heap fallback");
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "TLB_STRICT_SBO: throwing-move closure would take the "
                  "heap fallback");
#endif
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      ops_ = &kHeapOps<D>;
      heap_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  InlineHandler(InlineHandler&& other) noexcept { move_from(other); }

  InlineHandler& operator=(InlineHandler&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineHandler(InlineHandler const&) = delete;
  InlineHandler& operator=(InlineHandler const&) = delete;

  ~InlineHandler() { reset(); }

  void operator()(RankContext& ctx) {
    TLB_ASSERT(ops_ != nullptr);
    ops_->invoke(storage_, ctx);
  }

  /// Run-once invocation: executes the closure and destroys it in the same
  /// indirect call, leaving the handler empty. The drain loop uses this so
  /// delivering a message costs one virtual dispatch instead of two
  /// (invoke + later destroy).
  void consume(RankContext& ctx) {
    TLB_ASSERT(ops_ != nullptr);
    Ops const* const ops = ops_;
    ops_ = nullptr;
    ops->consume(storage_, ctx);
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  /// Explicit duplication for the copy-shaped call sites (post_all fanout,
  /// fault-plane duplicate delivery). The wrapped callable must be
  /// copy-constructible; every protocol handler is (they capture
  /// shared_ptrs and values), and asking for a clone of a move-only
  /// closure aborts rather than silently losing the payload.
  [[nodiscard]] InlineHandler clone() const {
    InlineHandler out;
    if (ops_ == nullptr) {
      return out;
    }
    TLB_ASSERT(ops_->clone != nullptr);
    ops_->clone(storage_, out);
    return out;
  }

  /// True when this handler took the heap fallback (oversized closure).
  [[nodiscard]] bool uses_heap() const {
    return ops_ != nullptr && ops_->heap;
  }

  /// Process-wide count of heap-fallback constructions (including heap
  /// clones) since the last reset. The message-plane benches and the
  /// protocol tests assert this stays zero on the hot paths.
  [[nodiscard]] static std::uint64_t heap_fallback_count() {
    return heap_fallbacks_.load(std::memory_order_relaxed);
  }
  static void reset_heap_fallback_count() {
    heap_fallbacks_.store(0, std::memory_order_relaxed);
  }

private:
  /// Inline storage is 8-aligned, not max_align_t-aligned: closures
  /// capture pointers, doubles, and shared_ptrs, none of which need more,
  /// and max_align_t alignment would pad every envelope by 16 bytes. The
  /// rare over-aligned callable takes the heap fallback.
  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= inline_capacity && alignof(D) <= 8 &&
      std::is_nothrow_move_constructible_v<D>;

  struct Ops {
    void (*invoke)(char* storage, RankContext& ctx);
    /// Invoke then destroy in one dispatch (the delivery path).
    void (*consume)(char* storage, RankContext& ctx);
    /// Move-construct dst's storage from src's and end src's lifetime.
    void (*relocate)(char* dst, char* src) noexcept;
    void (*destroy)(char* storage) noexcept;
    /// Copy-construct into `out` (null when the callable is not copyable).
    void (*clone)(char const* storage, InlineHandler& out);
    bool heap;
    /// Trivially relocatable AND at most 16 bytes: moving is a raw copy of
    /// one fixed 16-byte block and the moved-from object needs no
    /// destruction. Lets move_from skip the indirect relocate dispatch for
    /// the stateless / small-POD-capture closures that dominate runtime
    /// traffic, without touching the rest of the inline buffer (an
    /// unconditional full-capacity copy costs more in memory traffic than
    /// the dispatch it saves).
    bool trivial;
  };

  template <typename D>
  static D* as(char* storage) {
    return std::launder(reinterpret_cast<D*>(storage));
  }
  template <typename D>
  static D const* as(char const* storage) {
    return std::launder(reinterpret_cast<D const*>(storage));
  }

  // The op functions are static member templates (not lambdas in the Ops
  // initializers): member bodies are compiled in complete-class context,
  // which lets the clone ops touch storage_/ops_ and name their own Ops
  // table — neither is possible in an initializer parsed while the class
  // is still incomplete.
  template <typename D>
  static void invoke_inline(char* s, RankContext& ctx) {
    (*as<D>(s))(ctx);
  }
  template <typename D>
  static void consume_inline(char* s, RankContext& ctx) {
    (*as<D>(s))(ctx);
    as<D>(s)->~D();
  }
  template <typename D>
  static void relocate_inline(char* dst, char* src) noexcept {
    ::new (static_cast<void*>(dst)) D(std::move(*as<D>(src)));
    as<D>(src)->~D();
  }
  template <typename D>
  static void destroy_inline(char* s) noexcept {
    as<D>(s)->~D();
  }
  template <typename D>
  static void clone_inline(char const* s, InlineHandler& out) {
    if constexpr (std::is_copy_constructible_v<D>) {
      ::new (static_cast<void*>(out.storage_)) D(*as<D>(s));
      out.ops_ = &kInlineOps<D>;
    } else {
      (void)s;
      (void)out; // unreachable: the Ops table stores nullptr instead
    }
  }

  template <typename D>
  static void invoke_heap(char* s, RankContext& ctx) {
    (**as<D*>(s))(ctx);
  }
  template <typename D>
  static void consume_heap(char* s, RankContext& ctx) {
    (**as<D*>(s))(ctx);
    delete *as<D*>(s);
  }
  template <typename D>
  static void relocate_heap(char* dst, char* src) noexcept {
    // The heap object stays put; only the owning pointer moves.
    ::new (static_cast<void*>(dst)) D*(*as<D*>(src));
  }
  template <typename D>
  static void destroy_heap(char* s) noexcept {
    delete *as<D*>(s);
  }
  template <typename D>
  static void clone_heap(char const* s, InlineHandler& out) {
    if constexpr (std::is_copy_constructible_v<D>) {
      ::new (static_cast<void*>(out.storage_)) D*(new D(**as<D*>(s)));
      out.ops_ = &kHeapOps<D>;
      heap_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    } else {
      (void)s;
      (void)out; // unreachable: the Ops table stores nullptr instead
    }
  }

  template <typename D>
  static constexpr Ops kInlineOps{
      &invoke_inline<D>,
      &consume_inline<D>,
      &relocate_inline<D>,
      &destroy_inline<D>,
      std::is_copy_constructible_v<D> ? &clone_inline<D> : nullptr,
      /*heap=*/false,
      /*trivial=*/std::is_trivially_copyable_v<D> &&
          std::is_trivially_destructible_v<D> && sizeof(D) <= 16,
  };

  template <typename D>
  static constexpr Ops kHeapOps{
      &invoke_heap<D>,
      &consume_heap<D>,
      &relocate_heap<D>,
      &destroy_heap<D>,
      std::is_copy_constructible_v<D> ? &clone_heap<D> : nullptr,
      /*heap=*/true,
      // The owning pointer in storage_ is itself trivially relocatable.
      /*trivial=*/true,
  };

  void move_from(InlineHandler& other) noexcept {
    if (other.ops_ != nullptr) {
      if (other.ops_->trivial) {
        // Fixed-size copy: always inlined, branchless, and cheaper than
        // an indirect call. 16 bytes is always in-bounds of the inline
        // buffer, so over-copying past sizeof(D) is safe.
        std::memcpy(storage_, other.storage_, 16);
      } else {
        other.ops_->relocate(storage_, other.storage_);
      }
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  inline static std::atomic<std::uint64_t> heap_fallbacks_{0};

  alignas(8) char storage_[inline_capacity];
  Ops const* ops_ = nullptr;
};

} // namespace tlb::rt
