#pragma once

/// \file fault_hook.hpp
/// The runtime side of the fault plane: a tiny decision interface the
/// runtime consults on every send and every drain visit when a hook is
/// installed. The concrete implementation (seeded profiles, straggler and
/// crash schedules) lives in src/fault and is only built when the project
/// is configured with `-DTLB_FAULT=ON` (the default), which defines
/// TLB_FAULT_ENABLED=1. With the gate off the runtime call sites compile
/// away entirely; with the gate on but no hook installed the cost is one
/// pointer test per send/drain — the same dormant-cost discipline as the
/// obs layer (see bench/micro_fault.cpp for the measurement).
///
/// Semantics the runtime implements for each decision:
///   drop      — the message never enters a mailbox; it is recorded in
///               NetworkStats and forgotten. The in-flight counter is not
///               incremented, so quiescence is unaffected.
///   duplicate — the message is delivered twice. The clone is marked
///               fault-exempt so a duplicate cannot fission further.
///   delay     — the message is parked in the destination mailbox's delay
///               queue and released after `delay_polls` drain visits of
///               that rank. Delayed messages stay in flight, so quiescence
///               waits for them: a delay can reorder but never lose.
///   deliver   — normal enqueue.
///
/// Drain gating models slow and dead ranks:
///   open    — drain normally.
///   stalled — skip this visit (transient stall, straggler off-beat).
///   crashed — the rank is dead: the runtime purges its mailbox (queued
///             and delayed alike), counting every purged message as
///             dropped so the in-flight counter still reaches zero and
///             termination detection is never wedged.

#include <cstdint>

#include "runtime/network_stats.hpp"
#include "support/types.hpp"

#ifndef TLB_FAULT_ENABLED
#define TLB_FAULT_ENABLED 0
#endif

namespace tlb::rt {

/// What the fault plane decided for one send.
enum class FaultAction : std::uint8_t { deliver, drop, duplicate, delay };

struct FaultDecision {
  FaultAction action = FaultAction::deliver;
  /// For FaultAction::delay: how many drain visits of the destination rank
  /// to hold the message back.
  std::uint32_t delay_polls = 0;
};

/// Outcome of asking the fault plane whether a rank may drain.
enum class DrainGate : std::uint8_t { open, stalled, crashed };

/// Abstract decision interface. Implementations must be deterministic
/// given their seed, and thread-safe under the runtime's execution model:
/// on_send is invoked from the *sending* rank's handler thread (or the
/// driver thread, with from == invalid_rank), on_drain from the rank's
/// owning worker.
class FaultHook {
public:
  virtual ~FaultHook() = default;
  FaultHook() = default;
  FaultHook(FaultHook const&) = delete;
  FaultHook& operator=(FaultHook const&) = delete;

  /// Decide the fate of one message at send time. `from` is invalid_rank
  /// for driver-injected work.
  [[nodiscard]] virtual FaultDecision on_send(RankId from, RankId to,
                                              MessageKind kind) = 0;

  /// Gate one drain visit of `rank`; `poll` is the rank's monotone drain
  /// visit counter (so stall windows and crash points are expressed in a
  /// deterministic, driver-independent unit).
  [[nodiscard]] virtual DrainGate on_drain(RankId rank, std::uint64_t poll) = 0;
};

} // namespace tlb::rt
