#pragma once

/// \file mailbox.hpp
/// Per-rank FIFO message queue. Multiple producers (any rank's scheduler
/// may send here), single consumer (the worker that owns the rank — block
/// or shard ownership guarantees exactly one draining thread at a time).
///
/// The queue is two-stage to keep the producer/consumer critical sections
/// O(1): producers push (single messages or whole coalesced batches) into
/// `queue_` under the mutex; the consumer *swap-drains* — it exchanges the
/// entire producer vector for its private, lock-free `stash_` in one O(1)
/// swap and then serves batches from the stash (a cursor walk, no
/// pop_front shuffling) outside the lock. FIFO order is preserved because
/// the stash always holds strictly older messages than the producer queue.
///
/// Both stages are vectors, deliberately: the two buffers ping-pong
/// through the swap, so whatever capacity the backlog ever needed stays
/// allocated and the steady-state message path performs no heap traffic at
/// all. (A deque here is pathological — at ~150 bytes per envelope its
/// fixed-size blocks hold only a few elements, costing a block
/// malloc/free every couple of messages.)
///
/// Besides the FIFO queue the mailbox carries a small *delay queue*:
/// messages parked with a due poll count (the rank's drain-visit counter)
/// that are moved into the FIFO once due. It backs both the fault plane's
/// delay faults and Runtime::post_delayed (the retry protocols' backoff).
/// Delayed messages count as in flight, so quiescence waits for them.
///
/// The class is cache-line aligned so adjacent mailboxes in the runtime's
/// array never share a line (the per-rank mutex and queue heads are the
/// hottest cross-thread words in the system).

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <iterator>
#include <limits>
#include <vector>

#include "runtime/message.hpp"
#include "support/spinlock.hpp"
#include "support/rng.hpp"

namespace tlb::rt {

class alignas(64) Mailbox {
public:
  /// Pre-grow the producer queue and consumer stash to hold `depth`
  /// envelopes each without reallocating. Capacities only ever grow from
  /// there, so a depth chosen at or above the protocol's peak burst makes
  /// the steady-state delivery path allocation-free. Construction-time
  /// only (the caller owns the mailbox exclusively; no lock needed).
  void reserve(std::size_t depth) {
    queue_.reserve(depth);
    stash_.reserve(depth);
  }

  /// Returns the queue depth after the push (for depth watermarking),
  /// counting messages the consumer has swapped out but not yet run.
  /// Takes an rvalue reference (as do the other push entry points) so the
  /// envelope is move-constructed exactly once, into the queue slot —
  /// by-value plumbing would cost one relocate dispatch per call frame.
  std::size_t push(Envelope&& env) TLB_EXCLUDES(lock_) {
    SpinLockGuard lock{lock_};
    queue_.push_back(std::move(env));
    queue_size_.store(queue_.size(), std::memory_order_release);
    return queue_.size() + stash_size_.load(std::memory_order_relaxed);
  }

  /// Coalesced push: append a whole per-destination batch under one lock
  /// (the sender-side flush path). The batch is consumed (left empty, with
  /// its capacity intact for reuse). Returns the post-push depth.
  std::size_t push_batch(std::vector<Envelope>& batch) TLB_EXCLUDES(lock_) {
    std::size_t depth;
    {
      SpinLockGuard lock{lock_};
      queue_.insert(queue_.end(), std::make_move_iterator(batch.begin()),
                    std::make_move_iterator(batch.end()));
      queue_size_.store(queue_.size(), std::memory_order_release);
      depth = queue_.size() + stash_size_.load(std::memory_order_relaxed);
    }
    batch.clear();
    return depth;
  }

  /// Consumer-thread push: appends one envelope directly to the
  /// consumer-private stash, bypassing the producer queue and its lock
  /// entirely. Only legal when the calling thread IS this mailbox's single
  /// consumer — the sequential driver, which owns every mailbox and sends
  /// eagerly through this path instead of staging per-destination batches.
  /// FIFO is preserved by folding any pending producer-queue content
  /// (older by definition: driver posts or released delayed messages) into
  /// the stash first, which also keeps the stash-older-than-queue
  /// invariant the drain paths rely on. Returns the post-push depth.
  std::size_t push_consumer(Envelope&& env) TLB_EXCLUDES(lock_) {
    if (queue_size_.load(std::memory_order_acquire) > 0) {
      SpinLockGuard lock{lock_};
      stash_.insert(stash_.end(), std::make_move_iterator(queue_.begin()),
                    std::make_move_iterator(queue_.end()));
      queue_.clear();
      queue_size_.store(0, std::memory_order_relaxed);
    }
    stash_.push_back(std::move(env));
    auto const depth = stash_.size() - stash_pos_;
    stash_size_.store(depth, std::memory_order_relaxed);
    return depth;
  }

  /// Pop up to `max_items` messages in FIFO order into `out` (appended).
  /// Returns the number popped. max_items == 0 means drain everything.
  std::size_t pop_batch(std::vector<Envelope>& out, std::size_t max_items)
      TLB_EXCLUDES(lock_) {
    return drain(out, max_items, /*release_now=*/0, /*do_release=*/false,
                 nullptr);
  }

  /// The consumer's combined drain: optionally release due delayed
  /// messages, then pop up to `max_items` in FIFO order — one mutex
  /// acquisition for the whole visit (zero when the stash already holds a
  /// full batch and no release is pending). `released`, when non-null,
  /// receives the number of delayed messages moved into the FIFO.
  std::size_t drain(std::vector<Envelope>& out, std::size_t max_items,
                    std::uint64_t release_now, bool do_release,
                    std::size_t* released) TLB_EXCLUDES(lock_) {
    auto const limit = max_items == 0
                           ? std::numeric_limits<std::size_t>::max()
                           : max_items;
    std::size_t taken = take_from_stash(out, limit);
    // The lock is only worth taking when there is (or may be) producer
    // queue content to claim or a delayed release to run; the atomic size
    // mirror makes that check lock-free. A racing producer whose push we
    // miss here is caught on the next visit — the in-flight counter was
    // incremented before the push, so the quiescence loop keeps sweeping.
    if (do_release ||
        (taken < limit &&
         queue_size_.load(std::memory_order_acquire) > 0)) {
      {
        SpinLockGuard lock{lock_};
        if (do_release) {
          auto const n = release_locked(release_now);
          if (released != nullptr) {
            *released = n;
          }
        }
        if (taken < limit && !queue_.empty()) {
          // The stash is necessarily exhausted here (we only reach the
          // swap after draining it, which resets it to empty), so this
          // O(1) exchange grabs the entire producer backlog — and hands
          // the stash's grown capacity back to the producers — without
          // moving a single envelope under the lock.
          stash_.swap(queue_);
          stash_pos_ = 0;
          queue_size_.store(0, std::memory_order_relaxed);
        } else if (do_release) {
          queue_size_.store(queue_.size(), std::memory_order_relaxed);
        }
      }
      taken += take_from_stash(out, limit - taken);
    }
    stash_size_.store(stash_.size() - stash_pos_, std::memory_order_relaxed);
    return taken;
  }

  /// Sequential-driver fast path: run `fn` on up to `max_items` pending
  /// messages *in place*, without staging the batch through a scratch
  /// vector — the stash→scratch→handler round trip doubles the memory
  /// traffic of every delivery and is the hottest store in the sequential
  /// profile. Combined-release semantics match drain(): due delayed
  /// messages are folded in before any handler runs, and only messages
  /// pending at that point are eligible this visit — self-sends appended
  /// by the handlers wait for the next visit, exactly as when the batch
  /// was claimed up front. The loop indexes the stash afresh on every
  /// step because a handler's push_consumer may reallocate it mid-visit.
  /// Only legal on the consumer thread; a racing producer push that the
  /// claim misses is caught on the next visit, same as drain().
  template <typename Fn>
  std::size_t consume_batch(std::size_t max_items, std::uint64_t release_now,
                            bool do_release, std::size_t* released, Fn&& fn)
      TLB_EXCLUDES(lock_) {
    auto const limit = max_items == 0
                           ? std::numeric_limits<std::size_t>::max()
                           : max_items;
    if (do_release || queue_size_.load(std::memory_order_acquire) > 0) {
      SpinLockGuard lock{lock_};
      if (do_release) {
        auto const n = release_locked(release_now);
        if (released != nullptr) {
          *released = n;
        }
      }
      if (!queue_.empty()) {
        if (stash_pos_ == stash_.size()) {
          // Nothing pending: the O(1) swap claims the backlog and hands
          // the stash's grown capacity back to the producers.
          stash_.clear();
          stash_pos_ = 0;
          stash_.swap(queue_);
        } else {
          // Pending stash messages are strictly older than the queue, so
          // appending preserves FIFO.
          stash_.insert(stash_.end(), std::make_move_iterator(queue_.begin()),
                        std::make_move_iterator(queue_.end()));
          queue_.clear();
        }
        queue_size_.store(0, std::memory_order_relaxed);
      }
    }
    std::size_t const take = std::min(limit, stash_.size() - stash_pos_);
    for (std::size_t i = 0; i < take; ++i) {
      Envelope env = std::move(stash_[stash_pos_]);
      ++stash_pos_;
      stash_size_.store(stash_.size() - stash_pos_,
                        std::memory_order_relaxed);
      fn(env);
    }
    if (stash_pos_ == stash_.size()) {
      stash_.clear();
      stash_pos_ = 0;
    } else if (stash_pos_ >= 1024 && stash_pos_ >= stash_.size() / 2) {
      // Self-send storms append while we consume, so the cursor alone
      // never empties the vector; compacting once the dead prefix
      // dominates keeps growth bounded at amortized O(1) moves/message.
      stash_.erase(stash_.begin(),
                   stash_.begin() + static_cast<std::ptrdiff_t>(stash_pos_));
      stash_pos_ = 0;
    }
    stash_size_.store(stash_.size() - stash_pos_, std::memory_order_relaxed);
    return take;
  }

  /// Fault-injection variant of pop_batch: each popped message is chosen
  /// uniformly from the queue instead of from the front, modeling a
  /// network that reorders deliveries. The swap-with-back draw sequence is
  /// load-bearing: tests rely on it being deterministic per seed. Takes
  /// the same combined-release parameters as drain() so the runtime's
  /// random-delivery visit is also a single lock acquisition.
  std::size_t pop_batch_random(std::vector<Envelope>& out,
                               std::size_t max_items, Rng& rng,
                               std::uint64_t release_now = 0,
                               bool do_release = false,
                               std::size_t* released = nullptr)
      TLB_EXCLUDES(lock_) {
    SpinLockGuard lock{lock_};
    if (do_release) {
      auto const n = release_locked(release_now);
      if (released != nullptr) {
        *released = n;
      }
    }
    // Fold any swap-drained leftovers back in front so the draw sees the
    // full queue (only reachable when a run mixes FIFO and random visits;
    // the stash is consumer-private, and this is the consumer).
    if (stash_pos_ < stash_.size()) {
      queue_.insert(queue_.begin(),
                    std::make_move_iterator(stash_.begin() +
                                            static_cast<std::ptrdiff_t>(
                                                stash_pos_)),
                    std::make_move_iterator(stash_.end()));
    }
    stash_.clear();
    stash_pos_ = 0;
    stash_size_.store(0, std::memory_order_relaxed);
    std::size_t n = queue_.size();
    if (max_items != 0) {
      n = std::min(n, max_items);
    }
    out.reserve(out.size() + n);
    for (std::size_t i = 0; i < n; ++i) {
      auto const pick = rng.index(queue_.size());
      using std::swap;
      swap(queue_[pick], queue_.back());
      out.push_back(std::move(queue_.back()));
      queue_.pop_back();
    }
    queue_size_.store(queue_.size(), std::memory_order_relaxed);
    return n;
  }

  /// Park a message until the rank's drain-visit counter reaches `due`.
  void push_delayed(Envelope&& env, std::uint64_t due) TLB_EXCLUDES(lock_) {
    SpinLockGuard lock{lock_};
    delayed_.push_back(Delayed{std::move(env), due});
  }

  /// Move every delayed message with due <= now into the FIFO (appended in
  /// parking order). Returns the number released.
  std::size_t release_due(std::uint64_t now) TLB_EXCLUDES(lock_) {
    SpinLockGuard lock{lock_};
    auto const n = release_locked(now);
    queue_size_.store(queue_.size(), std::memory_order_relaxed);
    return n;
  }

  /// Drain everything — queued, stashed, and delayed alike, due or not —
  /// into `out` (appended). Used by the runtime's crash purge and abort
  /// flush; both run on the consumer's thread (or after workers joined).
  /// Returns the total removed; `delayed_removed`, when non-null, receives
  /// how many of them came from the delay queue.
  std::size_t drain_all(std::vector<Envelope>& out,
                        std::size_t* delayed_removed = nullptr)
      TLB_EXCLUDES(lock_) {
    std::size_t n = stash_.size() - stash_pos_;
    out.reserve(out.size() + n);
    for (; stash_pos_ < stash_.size(); ++stash_pos_) {
      out.push_back(std::move(stash_[stash_pos_]));
    }
    stash_.clear();
    stash_pos_ = 0;
    stash_size_.store(0, std::memory_order_relaxed);
    SpinLockGuard lock{lock_};
    n += queue_.size() + delayed_.size();
    out.reserve(out.size() + queue_.size() + delayed_.size());
    for (Envelope& env : queue_) {
      out.push_back(std::move(env));
    }
    queue_.clear();
    queue_size_.store(0, std::memory_order_relaxed);
    for (Delayed& d : delayed_) {
      out.push_back(std::move(d.env));
    }
    if (delayed_removed != nullptr) {
      *delayed_removed = delayed_.size();
    }
    delayed_.clear();
    return n;
  }

  [[nodiscard]] bool empty() const TLB_EXCLUDES(lock_) {
    SpinLockGuard lock{lock_};
    return queue_.empty() && delayed_.empty() &&
           stash_size_.load(std::memory_order_relaxed) == 0;
  }

  [[nodiscard]] std::size_t size() const TLB_EXCLUDES(lock_) {
    SpinLockGuard lock{lock_};
    return queue_.size() + delayed_.size() +
           stash_size_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t delayed_size() const TLB_EXCLUDES(lock_) {
    SpinLockGuard lock{lock_};
    return delayed_.size();
  }

private:
  struct Delayed {
    Envelope env;
    std::uint64_t due = 0;
  };

  /// Moves due delayed messages into the FIFO; lock_ must be held.
  std::size_t release_locked(std::uint64_t now) TLB_REQUIRES(lock_) {
    std::size_t released = 0;
    for (std::size_t i = 0; i < delayed_.size();) {
      if (delayed_[i].due <= now) {
        queue_.push_back(std::move(delayed_[i].env));
        delayed_[i] = std::move(delayed_.back());
        delayed_.pop_back();
        ++released;
      } else {
        ++i;
      }
    }
    return released;
  }

  /// Consumer-private, lock-free: move up to `want` stash messages into
  /// `out`; returns the number moved. Resets the stash to empty (keeping
  /// its capacity for the next swap) once the cursor reaches the end.
  std::size_t take_from_stash(std::vector<Envelope>& out, std::size_t want) {
    std::size_t taken = 0;
    if (want > 0 && stash_pos_ < stash_.size()) {
      auto const avail = stash_.size() - stash_pos_;
      taken = std::min(want, avail);
      out.reserve(out.size() + taken);
      for (std::size_t i = 0; i < taken; ++i) {
        out.push_back(std::move(stash_[stash_pos_ + i]));
      }
      stash_pos_ += taken;
      if (stash_pos_ == stash_.size()) {
        stash_.clear();
        stash_pos_ = 0;
      }
    }
    return taken;
  }

  mutable SpinLock lock_;
  std::vector<Envelope> queue_ TLB_GUARDED_BY(lock_);  ///< producers
  std::vector<Delayed> delayed_ TLB_GUARDED_BY(lock_);
  /// Mirror of queue_.size(), maintained under lock_ but readable without
  /// it: lets the consumer's drain skip the lock entirely when no producer
  /// push is pending (the common case once the stash is primed).
  std::atomic<std::size_t> queue_size_{0};
  /// Swap-drained backlog, touched only by the single consumer: messages
  /// [stash_pos_, size) are pending, in FIFO order. The outstanding count
  /// is mirrored in an atomic so push-depth watermarks and the quiescence
  /// audit's empty()/size() stay race-free.
  std::vector<Envelope> stash_;
  std::size_t stash_pos_ = 0;
  std::atomic<std::size_t> stash_size_{0};
};

} // namespace tlb::rt
