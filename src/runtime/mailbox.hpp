#pragma once

/// \file mailbox.hpp
/// Per-rank FIFO message queue. Multiple producers (any rank's scheduler
/// may send here), single consumer (the worker that owns the rank). The
/// consumer drains in batches to amortize locking.
///
/// Besides the FIFO queue the mailbox carries a small *delay queue*:
/// messages parked with a due poll count (the rank's drain-visit counter)
/// that release_due() moves into the FIFO once due. It backs both the
/// fault plane's delay faults and Runtime::post_delayed (the retry
/// protocols' backoff). Delayed messages count as in flight, so quiescence
/// waits for them.

#include <cstdint>
#include <deque>
#include <iterator>
#include <mutex>
#include <vector>

#include "runtime/message.hpp"
#include "support/rng.hpp"

namespace tlb::rt {

class Mailbox {
public:
  /// Returns the queue depth after the push (for depth watermarking).
  std::size_t push(Envelope env) {
    std::lock_guard lock{mutex_};
    queue_.push_back(std::move(env));
    return queue_.size();
  }

  /// Pop up to `max_items` messages in FIFO order into `out` (appended).
  /// Returns the number popped. max_items == 0 means drain everything.
  /// Splice-style: one reserve plus a contiguous block move and erase,
  /// so the lock is held for a single pass instead of n deque pops —
  /// producers stall for less time under the threaded driver.
  std::size_t pop_batch(std::vector<Envelope>& out, std::size_t max_items) {
    std::lock_guard lock{mutex_};
    std::size_t n = queue_.size();
    if (max_items != 0) {
      n = std::min(n, max_items);
    }
    out.reserve(out.size() + n);
    auto const first = queue_.begin();
    auto const last = first + static_cast<std::ptrdiff_t>(n);
    out.insert(out.end(), std::move_iterator{first},
               std::move_iterator{last});
    queue_.erase(first, last);
    return n;
  }

  /// Fault-injection variant of pop_batch: each popped message is chosen
  /// uniformly from the queue instead of from the front, modeling a
  /// network that reorders deliveries. The swap-with-back draw sequence is
  /// load-bearing: tests rely on it being deterministic per seed.
  std::size_t pop_batch_random(std::vector<Envelope>& out,
                               std::size_t max_items, Rng& rng) {
    std::lock_guard lock{mutex_};
    std::size_t n = queue_.size();
    if (max_items != 0) {
      n = std::min(n, max_items);
    }
    out.reserve(out.size() + n);
    for (std::size_t i = 0; i < n; ++i) {
      auto const pick = rng.index(queue_.size());
      using std::swap;
      swap(queue_[pick], queue_.back());
      out.push_back(std::move(queue_.back()));
      queue_.pop_back();
    }
    return n;
  }

  /// Park a message until the rank's drain-visit counter reaches `due`.
  void push_delayed(Envelope env, std::uint64_t due) {
    std::lock_guard lock{mutex_};
    delayed_.push_back(Delayed{std::move(env), due});
  }

  /// Move every delayed message with due <= now into the FIFO (appended in
  /// parking order). Returns the number released.
  std::size_t release_due(std::uint64_t now) {
    std::lock_guard lock{mutex_};
    std::size_t released = 0;
    for (std::size_t i = 0; i < delayed_.size();) {
      if (delayed_[i].due <= now) {
        queue_.push_back(std::move(delayed_[i].env));
        delayed_[i] = std::move(delayed_.back());
        delayed_.pop_back();
        ++released;
      } else {
        ++i;
      }
    }
    return released;
  }

  /// Drain everything — queued and delayed alike, due or not — into `out`
  /// (appended). Used by the runtime's crash purge and abort flush.
  /// Returns the total removed; `delayed_removed`, when non-null, receives
  /// how many of them came from the delay queue.
  std::size_t drain_all(std::vector<Envelope>& out,
                        std::size_t* delayed_removed = nullptr) {
    std::lock_guard lock{mutex_};
    std::size_t const n = queue_.size() + delayed_.size();
    out.reserve(out.size() + n);
    out.insert(out.end(), std::move_iterator{queue_.begin()},
               std::move_iterator{queue_.end()});
    queue_.clear();
    for (Delayed& d : delayed_) {
      out.push_back(std::move(d.env));
    }
    if (delayed_removed != nullptr) {
      *delayed_removed = delayed_.size();
    }
    delayed_.clear();
    return n;
  }

  [[nodiscard]] bool empty() const {
    std::lock_guard lock{mutex_};
    return queue_.empty() && delayed_.empty();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock{mutex_};
    return queue_.size() + delayed_.size();
  }

  [[nodiscard]] std::size_t delayed_size() const {
    std::lock_guard lock{mutex_};
    return delayed_.size();
  }

private:
  struct Delayed {
    Envelope env;
    std::uint64_t due = 0;
  };

  mutable std::mutex mutex_;
  std::deque<Envelope> queue_;
  std::vector<Delayed> delayed_;
};

} // namespace tlb::rt
