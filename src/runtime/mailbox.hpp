#pragma once

/// \file mailbox.hpp
/// Per-rank FIFO message queue. Multiple producers (any rank's scheduler
/// may send here), single consumer (the worker that owns the rank). The
/// consumer drains in batches to amortize locking.

#include <deque>
#include <iterator>
#include <mutex>
#include <vector>

#include "runtime/message.hpp"
#include "support/rng.hpp"

namespace tlb::rt {

class Mailbox {
public:
  /// Returns the queue depth after the push (for depth watermarking).
  std::size_t push(Envelope env) {
    std::lock_guard lock{mutex_};
    queue_.push_back(std::move(env));
    return queue_.size();
  }

  /// Pop up to `max_items` messages in FIFO order into `out` (appended).
  /// Returns the number popped. max_items == 0 means drain everything.
  /// Splice-style: one reserve plus a contiguous block move and erase,
  /// so the lock is held for a single pass instead of n deque pops —
  /// producers stall for less time under the threaded driver.
  std::size_t pop_batch(std::vector<Envelope>& out, std::size_t max_items) {
    std::lock_guard lock{mutex_};
    std::size_t n = queue_.size();
    if (max_items != 0) {
      n = std::min(n, max_items);
    }
    out.reserve(out.size() + n);
    auto const first = queue_.begin();
    auto const last = first + static_cast<std::ptrdiff_t>(n);
    out.insert(out.end(), std::move_iterator{first},
               std::move_iterator{last});
    queue_.erase(first, last);
    return n;
  }

  /// Fault-injection variant of pop_batch: each popped message is chosen
  /// uniformly from the queue instead of from the front, modeling a
  /// network that reorders deliveries. The swap-with-back draw sequence is
  /// load-bearing: tests rely on it being deterministic per seed.
  std::size_t pop_batch_random(std::vector<Envelope>& out,
                               std::size_t max_items, Rng& rng) {
    std::lock_guard lock{mutex_};
    std::size_t n = queue_.size();
    if (max_items != 0) {
      n = std::min(n, max_items);
    }
    out.reserve(out.size() + n);
    for (std::size_t i = 0; i < n; ++i) {
      auto const pick = rng.index(queue_.size());
      using std::swap;
      swap(queue_[pick], queue_.back());
      out.push_back(std::move(queue_.back()));
      queue_.pop_back();
    }
    return n;
  }

  [[nodiscard]] bool empty() const {
    std::lock_guard lock{mutex_};
    return queue_.empty();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock{mutex_};
    return queue_.size();
  }

private:
  mutable std::mutex mutex_;
  std::deque<Envelope> queue_;
};

} // namespace tlb::rt
