#pragma once

/// \file termination.hpp
/// Mattern's four-counter termination detection, implemented with real
/// control messages over the runtime (a ring of counting waves). The
/// production protocols in this library use the runtime's in-flight
/// counter for quiescence — which shared memory makes exact — but the
/// paper's distributed setting relies on message-based detection, so the
/// substrate provides the genuine algorithm and the tests validate it
/// against the exact ground truth.
///
/// Usage: wrap every application send in `send()` so the detector counts
/// it, and start the wave engine with `start()`. The detector reports
/// termination only after two consecutive waves observe identical global
/// (sent, received) sums with sent == received — the four-counter
/// condition that is immune to in-transit messages crossing a wave.

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/runtime.hpp"

namespace tlb::rt {

class TerminationDetector {
public:
  /// \param rt           Runtime to run over.
  /// \param wave_budget  Safety valve: maximum waves before giving up
  ///                     (prevents an ill-formed test from spinning
  ///                     forever). 0 means unlimited.
  explicit TerminationDetector(Runtime& rt, std::size_t wave_budget = 0);

  /// Counted send: use instead of ctx.send for application messages.
  void send(RankContext& ctx, RankId to, std::size_t bytes, Handler handler);

  /// Inject counted work from the driver onto a rank.
  void post(RankId to, Handler handler, std::size_t bytes = 0);

  /// Launch the wave engine from rank 0. Waves keep circulating until the
  /// four-counter condition holds; each wave is made of real messages, so
  /// a subsequent run_until_quiescent() drains activity and waves alike.
  void start();

  /// True once a wave pair certified termination.
  [[nodiscard]] bool terminated() const;

  /// Global message count certified by the final wave.
  [[nodiscard]] std::int64_t certified_count() const;

  /// Number of waves performed.
  [[nodiscard]] std::size_t waves() const;

private:
  struct State;
  void wave_step(RankContext& ctx, std::int64_t sent, std::int64_t recv);

  Runtime* rt_;
  std::shared_ptr<State> state_;
};

} // namespace tlb::rt
