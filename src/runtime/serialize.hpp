#pragma once

/// \file serialize.hpp
/// A small byte-oriented serialization layer. The in-process runtime
/// could pass payloads by reference, but the protocols in this library
/// ship their data through Packer/Unpacker so that (a) the modeled wire
/// sizes are the *actual* serialized sizes and (b) the code is proven to
/// survive a real serialize/ship/deserialize boundary — what running over
/// MPI would require.
///
/// Format: little-endian host representation of trivially copyable types,
/// length-prefixed containers. Not portable across heterogeneous
/// architectures (neither are most HPC wire formats); bounds-checked on
/// the read side.

#include <cstddef>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "support/assert.hpp"

namespace tlb::rt {

class Packer {
public:
  /// Serialize a trivially copyable value.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void pack(T const& value) {
    auto const offset = buffer_.size();
    buffer_.resize(offset + sizeof(T));
    std::memcpy(buffer_.data() + offset, &value, sizeof(T));
  }

  /// Serialize a vector of trivially copyable elements (u64 length
  /// prefix + raw elements).
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void pack(std::vector<T> const& values) {
    pack(static_cast<std::uint64_t>(values.size()));
    auto const offset = buffer_.size();
    buffer_.resize(offset + values.size() * sizeof(T));
    if (!values.empty()) {
      std::memcpy(buffer_.data() + offset, values.data(),
                  values.size() * sizeof(T));
    }
  }

  void pack(std::string const& value) {
    pack(static_cast<std::uint64_t>(value.size()));
    auto const offset = buffer_.size();
    buffer_.resize(offset + value.size());
    if (!value.empty()) {
      std::memcpy(buffer_.data() + offset, value.data(), value.size());
    }
  }

  [[nodiscard]] std::size_t size() const { return buffer_.size(); }
  [[nodiscard]] std::span<std::byte const> bytes() const { return buffer_; }

  /// Surrender the buffer (e.g. to move into a message closure).
  [[nodiscard]] std::vector<std::byte> take() && {
    return std::move(buffer_);
  }

private:
  std::vector<std::byte> buffer_;
};

class Unpacker {
public:
  explicit Unpacker(std::span<std::byte const> bytes) : bytes_{bytes} {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] T unpack() {
    TLB_EXPECTS(offset_ + sizeof(T) <= bytes_.size());
    T value;
    std::memcpy(&value, bytes_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return value;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] std::vector<T> unpack_vector() {
    auto const n = unpack<std::uint64_t>();
    TLB_EXPECTS(offset_ + n * sizeof(T) <= bytes_.size());
    std::vector<T> values(static_cast<std::size_t>(n));
    if (n > 0) {
      std::memcpy(values.data(), bytes_.data() + offset_,
                  static_cast<std::size_t>(n) * sizeof(T));
    }
    offset_ += static_cast<std::size_t>(n) * sizeof(T);
    return values;
  }

  [[nodiscard]] std::string unpack_string() {
    auto const n = unpack<std::uint64_t>();
    TLB_EXPECTS(offset_ + n <= bytes_.size());
    std::string value(reinterpret_cast<char const*>(bytes_.data() + offset_),
                      static_cast<std::size_t>(n));
    offset_ += static_cast<std::size_t>(n);
    return value;
  }

  /// Bytes consumed so far.
  [[nodiscard]] std::size_t consumed() const { return offset_; }
  /// True when every byte has been consumed (a useful postcondition).
  [[nodiscard]] bool exhausted() const { return offset_ == bytes_.size(); }

private:
  std::span<std::byte const> bytes_;
  std::size_t offset_ = 0;
};

} // namespace tlb::rt
