#pragma once

/// \file serialize.hpp
/// A small byte-oriented serialization layer. The in-process runtime
/// could pass payloads by reference, but the protocols in this library
/// ship their data through Packer/Unpacker so that (a) the modeled wire
/// sizes are the *actual* serialized sizes and (b) the code is proven to
/// survive a real serialize/ship/deserialize boundary — what running over
/// MPI would require.
///
/// Format: little-endian host representation of trivially copyable types,
/// length-prefixed containers. Not portable across heterogeneous
/// architectures (neither are most HPC wire formats); bounds-checked on
/// the read side.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "support/assert.hpp"

namespace tlb::rt {

/// Encoded size of `value` under LEB128 (7 bits per byte): 1 byte for
/// values below 128, up to 10 bytes for the full u64 range. The single
/// size function shared by the packer, the unpacker, and every byte
/// accountant — so modeled wire sizes cannot drift from emitted ones.
[[nodiscard]] constexpr std::size_t varint_size(std::uint64_t value) {
  std::size_t n = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++n;
  }
  return n;
}

class Packer {
public:
  /// Owning mode: pack into an internal buffer (allocates as it grows).
  Packer() : buffer_{&owned_} {}

  /// Scratch mode: pack into `scratch`, which is cleared first but keeps
  /// its capacity — the zero-allocation path for steady-state protocol
  /// rounds that recycle their buffers (see SnapshotPool).
  explicit Packer(std::vector<std::byte>& scratch) : buffer_{&scratch} {
    scratch.clear();
  }

  /// Serialize a trivially copyable value.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void pack(T const& value) {
    auto const offset = buffer_->size();
    buffer_->resize(offset + sizeof(T));
    std::memcpy(buffer_->data() + offset, &value, sizeof(T));
  }

  /// Serialize a vector of trivially copyable elements (u64 length
  /// prefix + raw elements).
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void pack(std::vector<T> const& values) {
    pack(static_cast<std::uint64_t>(values.size()));
    auto const offset = buffer_->size();
    buffer_->resize(offset + values.size() * sizeof(T));
    if (!values.empty()) {
      std::memcpy(buffer_->data() + offset, values.data(),
                  values.size() * sizeof(T));
    }
  }

  void pack(std::string const& value) {
    pack(static_cast<std::uint64_t>(value.size()));
    auto const offset = buffer_->size();
    buffer_->resize(offset + value.size());
    if (!value.empty()) {
      std::memcpy(buffer_->data() + offset, value.data(), value.size());
    }
  }

  /// LEB128 unsigned varint: 7 payload bits per byte, high bit = "more".
  void pack_varint(std::uint64_t value) {
    while (value >= 0x80) {
      pack(static_cast<std::uint8_t>((value & 0x7f) | 0x80));
      value >>= 7;
    }
    pack(static_cast<std::uint8_t>(value));
  }

  [[nodiscard]] std::size_t size() const { return buffer_->size(); }
  [[nodiscard]] std::span<std::byte const> bytes() const { return *buffer_; }

  /// Surrender the buffer (e.g. to move into a message closure). Only
  /// meaningful in owning mode: a scratch-backed packer's bytes belong to
  /// the pool that lent them.
  [[nodiscard]] std::vector<std::byte> take() && {
    TLB_EXPECTS(buffer_ == &owned_);
    return std::move(owned_);
  }

private:
  std::vector<std::byte> owned_;
  std::vector<std::byte>* buffer_;
};

class Unpacker {
public:
  explicit Unpacker(std::span<std::byte const> bytes) : bytes_{bytes} {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] T unpack() {
    TLB_EXPECTS(offset_ + sizeof(T) <= bytes_.size());
    T value;
    std::memcpy(&value, bytes_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return value;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] std::vector<T> unpack_vector() {
    auto const n = unpack<std::uint64_t>();
    TLB_EXPECTS(offset_ + n * sizeof(T) <= bytes_.size());
    std::vector<T> values(static_cast<std::size_t>(n));
    if (n > 0) {
      std::memcpy(values.data(), bytes_.data() + offset_,
                  static_cast<std::size_t>(n) * sizeof(T));
    }
    offset_ += static_cast<std::size_t>(n) * sizeof(T);
    return values;
  }

  [[nodiscard]] std::string unpack_string() {
    auto const n = unpack<std::uint64_t>();
    TLB_EXPECTS(offset_ + n <= bytes_.size());
    std::string value(reinterpret_cast<char const*>(bytes_.data() + offset_),
                      static_cast<std::size_t>(n));
    offset_ += static_cast<std::size_t>(n);
    return value;
  }

  /// Inverse of Packer::pack_varint. Rejects encodings that overflow 64
  /// bits (more than 10 bytes, or payload bits past bit 63).
  [[nodiscard]] std::uint64_t unpack_varint() {
    std::uint64_t value = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      auto const byte = unpack<std::uint8_t>();
      auto const payload = static_cast<std::uint64_t>(byte & 0x7f);
      TLB_EXPECTS(shift < 63 || payload <= 1); // bits past 63 would be lost
      value |= payload << shift;
      if ((byte & 0x80) == 0) {
        return value;
      }
    }
    TLB_EXPECTS(false && "varint longer than 10 bytes");
    return value;
  }

  /// Bytes consumed so far.
  [[nodiscard]] std::size_t consumed() const { return offset_; }
  /// True when every byte has been consumed (a useful postcondition).
  [[nodiscard]] bool exhausted() const { return offset_ == bytes_.size(); }

private:
  std::span<std::byte const> bytes_;
  std::size_t offset_ = 0;
};

/// A recycling pool of shared, refcounted byte buffers for messages whose
/// payload is serialized once and fanned out to several destinations (the
/// gossip forward pattern). acquire() hands back a slot whose buffer a
/// scratch-mode Packer can fill; the handler closures copy the
/// shared_ptr, and once the last message destructs the slot's use_count
/// drops back to the pool's own reference, making it reusable — control
/// block, vector header, and byte capacity all survive, so steady-state
/// rounds perform zero heap allocations.
///
/// Thread-confined: each protocol rank owns its pool and only that rank's
/// handlers call acquire() (the shared_ptr copies held by in-flight
/// messages are destroyed under the destination rank's drain, but
/// shared_ptr refcounting is atomic, so only acquire() needs confinement).
class SnapshotPool {
public:
  struct Slot {
    std::vector<std::byte> bytes;
  };

  /// Pre-create `depth` slots, each with `capacity` bytes reserved. A
  /// depth at or above the peak number of concurrently in-flight payloads
  /// and a capacity at or above the largest payload make every subsequent
  /// acquire() allocation-free (the zero-allocation contract the inform
  /// plane pins with its counter test).
  void prime(std::size_t depth, std::size_t capacity) {
    while (slots_.size() < depth) {
      slots_.push_back(std::make_shared<Slot>());
    }
    for (auto& slot : slots_) {
      slot->bytes.reserve(capacity);
    }
  }

  /// Fetch a slot with no other owners, cleared but with its capacity
  /// intact. Allocates only when every pooled slot is still referenced by
  /// an in-flight message.
  [[nodiscard]] std::shared_ptr<Slot> acquire() {
    for (auto& slot : slots_) {
      if (slot.use_count() == 1) {
        slot->bytes.clear();
        return slot;
      }
    }
    slots_.push_back(std::make_shared<Slot>());
    return slots_.back();
  }

  /// Pool depth (for tests: steady state should stop growing).
  [[nodiscard]] std::size_t size() const { return slots_.size(); }

private:
  std::vector<std::shared_ptr<Slot>> slots_;
};

} // namespace tlb::rt
