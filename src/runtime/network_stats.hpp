#pragma once

/// \file network_stats.hpp
/// Aggregate traffic counters maintained by the runtime. Used by the LB
/// cost model (gossip traffic, migration volume) and by the micro-benches.

#include <atomic>
#include <cstddef>

namespace tlb::rt {

/// Snapshot of the counters (plain struct for returning by value).
struct NetworkStatsSnapshot {
  std::size_t messages = 0;
  std::size_t bytes = 0;
  std::size_t local_messages = 0; ///< sends where from == to
};

/// Thread-safe counters. Relaxed atomics: the totals are only read at
/// quiescent points.
class NetworkStats {
public:
  void record_send(bool local, std::size_t bytes) {
    messages_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
    if (local) {
      local_messages_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void reset() {
    messages_.store(0, std::memory_order_relaxed);
    bytes_.store(0, std::memory_order_relaxed);
    local_messages_.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] NetworkStatsSnapshot snapshot() const {
    return {messages_.load(std::memory_order_relaxed),
            bytes_.load(std::memory_order_relaxed),
            local_messages_.load(std::memory_order_relaxed)};
  }

private:
  std::atomic<std::size_t> messages_{0};
  std::atomic<std::size_t> bytes_{0};
  std::atomic<std::size_t> local_messages_{0};
};

} // namespace tlb::rt
