#pragma once

/// \file network_stats.hpp
/// Aggregate traffic counters maintained by the runtime. Used by the LB
/// cost model (gossip traffic, migration volume), the micro-benches, and
/// the telemetry registry fold-in (Runtime::publish_metrics).

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace tlb::rt {

/// Protocol category of a message, for per-category accounting. Sends
/// default to `other`; the protocol layers tag their traffic explicitly.
enum class MessageKind : std::uint8_t {
  other = 0,   ///< untagged application traffic
  gossip,      ///< inform-epoch knowledge propagation (Algorithm 1)
  transfer,    ///< transfer-pass proposals and NACK bounces (Algorithm 2)
  migration,   ///< committed task payload movement
  termination, ///< termination-detector wave traffic
};

inline constexpr std::size_t num_message_kinds = 5;

[[nodiscard]] constexpr char const* message_kind_name(MessageKind kind) {
  switch (kind) {
  case MessageKind::other:
    return "other";
  case MessageKind::gossip:
    return "gossip";
  case MessageKind::transfer:
    return "transfer";
  case MessageKind::migration:
    return "migration";
  case MessageKind::termination:
    return "termination";
  }
  return "unknown";
}

/// Snapshot of the counters (plain struct for returning by value).
struct NetworkStatsSnapshot {
  std::size_t messages = 0;
  std::size_t bytes = 0;
  std::size_t local_messages = 0; ///< sends where from == to
  /// Per-category message/byte counts, indexed by MessageKind. The
  /// aggregate fields above remain the sums over every category.
  std::array<std::size_t, num_message_kinds> kind_messages{};
  std::array<std::size_t, num_message_kinds> kind_bytes{};
  /// Fault-plane outcomes per category (all zero when no fault plane is
  /// installed). Dropped counts both send-time drops and crash purges;
  /// retried counts protocol-level resends (migration/transfer handshake
  /// retries), recorded by the protocol layers via Runtime::record_retry.
  std::array<std::size_t, num_message_kinds> kind_dropped{};
  std::array<std::size_t, num_message_kinds> kind_delayed{};
  std::array<std::size_t, num_message_kinds> kind_duplicated{};
  std::array<std::size_t, num_message_kinds> kind_retried{};
  /// Deepest any mailbox has been (post-push size) since the last reset.
  std::size_t max_mailbox_depth = 0;
  /// Sender-side coalescing effectiveness: locked batch pushes performed
  /// and the messages they carried. messages/flushes is the mean batch
  /// size; flushes is (within epsilon) the lock acquisitions the send
  /// plane cost, versus one per message before coalescing.
  std::size_t coalesced_flushes = 0;
  std::size_t coalesced_messages = 0;
};

/// Plain (non-atomic) counter block accumulated privately by one worker
/// during a run and folded into the shared NetworkStats at run end. The
/// totals are only read at quiescent points, so per-message accounting
/// does not need to be globally visible mid-run — keeping it worker-local
/// turns four-plus atomic RMWs per send into plain increments, one of the
/// larger single wins in the message plane.
struct LocalNetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t local_messages = 0;
  std::array<std::uint64_t, num_message_kinds> kind_messages{};
  std::array<std::uint64_t, num_message_kinds> kind_bytes{};
  std::uint64_t max_mailbox_depth = 0;
  std::uint64_t coalesced_flushes = 0;
  std::uint64_t coalesced_messages = 0;

  void record_send(bool local, std::size_t nbytes, MessageKind kind) {
    ++messages;
    bytes += nbytes;
    local_messages += local ? 1 : 0;
    auto const k = static_cast<std::size_t>(kind);
    ++kind_messages[k];
    kind_bytes[k] += nbytes;
  }

  void record_flush(std::size_t flushed, std::size_t depth) {
    ++coalesced_flushes;
    coalesced_messages += flushed;
    if (depth > max_mailbox_depth) {
      max_mailbox_depth = depth;
    }
  }
};

/// Thread-safe counters. Relaxed atomics: the totals are only read at
/// quiescent points.
class NetworkStats {
public:
  void record_send(bool local, std::size_t bytes,
                   MessageKind kind = MessageKind::other) {
    messages_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
    if (local) {
      local_messages_.fetch_add(1, std::memory_order_relaxed);
    }
    auto const k = static_cast<std::size_t>(kind);
    kind_messages_[k].fetch_add(1, std::memory_order_relaxed);
    kind_bytes_[k].fetch_add(bytes, std::memory_order_relaxed);
  }

  void record_drop(MessageKind kind) {
    kind_dropped_[static_cast<std::size_t>(kind)].fetch_add(
        1, std::memory_order_relaxed);
  }
  void record_delay(MessageKind kind) {
    kind_delayed_[static_cast<std::size_t>(kind)].fetch_add(
        1, std::memory_order_relaxed);
  }
  void record_duplicate(MessageKind kind) {
    kind_duplicated_[static_cast<std::size_t>(kind)].fetch_add(
        1, std::memory_order_relaxed);
  }
  void record_retry(MessageKind kind) {
    kind_retried_[static_cast<std::size_t>(kind)].fetch_add(
        1, std::memory_order_relaxed);
  }

  /// Fold a worker's run-private counters into the shared totals (called
  /// once per worker per run, at a point where no handler is executing).
  void fold(LocalNetworkStats const& local) {
    messages_.fetch_add(local.messages, std::memory_order_relaxed);
    bytes_.fetch_add(local.bytes, std::memory_order_relaxed);
    local_messages_.fetch_add(local.local_messages,
                              std::memory_order_relaxed);
    for (std::size_t k = 0; k < num_message_kinds; ++k) {
      kind_messages_[k].fetch_add(local.kind_messages[k],
                                  std::memory_order_relaxed);
      kind_bytes_[k].fetch_add(local.kind_bytes[k],
                               std::memory_order_relaxed);
    }
    record_mailbox_depth(local.max_mailbox_depth);
    coalesced_flushes_.fetch_add(local.coalesced_flushes,
                                 std::memory_order_relaxed);
    coalesced_messages_.fetch_add(local.coalesced_messages,
                                  std::memory_order_relaxed);
  }

  /// Record a mailbox's post-push depth (high-watermark gauge).
  void record_mailbox_depth(std::size_t depth) {
    std::size_t cur = max_mailbox_depth_.load(std::memory_order_relaxed);
    while (depth > cur && !max_mailbox_depth_.compare_exchange_weak(
                              cur, depth, std::memory_order_relaxed)) {
    }
  }

  void reset() {
    messages_.store(0, std::memory_order_relaxed);
    bytes_.store(0, std::memory_order_relaxed);
    local_messages_.store(0, std::memory_order_relaxed);
    for (std::size_t k = 0; k < num_message_kinds; ++k) {
      kind_messages_[k].store(0, std::memory_order_relaxed);
      kind_bytes_[k].store(0, std::memory_order_relaxed);
      kind_dropped_[k].store(0, std::memory_order_relaxed);
      kind_delayed_[k].store(0, std::memory_order_relaxed);
      kind_duplicated_[k].store(0, std::memory_order_relaxed);
      kind_retried_[k].store(0, std::memory_order_relaxed);
    }
    max_mailbox_depth_.store(0, std::memory_order_relaxed);
    coalesced_flushes_.store(0, std::memory_order_relaxed);
    coalesced_messages_.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] NetworkStatsSnapshot snapshot() const {
    NetworkStatsSnapshot snap;
    snap.messages = messages_.load(std::memory_order_relaxed);
    snap.bytes = bytes_.load(std::memory_order_relaxed);
    snap.local_messages = local_messages_.load(std::memory_order_relaxed);
    for (std::size_t k = 0; k < num_message_kinds; ++k) {
      snap.kind_messages[k] = kind_messages_[k].load(std::memory_order_relaxed);
      snap.kind_bytes[k] = kind_bytes_[k].load(std::memory_order_relaxed);
      snap.kind_dropped[k] = kind_dropped_[k].load(std::memory_order_relaxed);
      snap.kind_delayed[k] = kind_delayed_[k].load(std::memory_order_relaxed);
      snap.kind_duplicated[k] =
          kind_duplicated_[k].load(std::memory_order_relaxed);
      snap.kind_retried[k] = kind_retried_[k].load(std::memory_order_relaxed);
    }
    snap.max_mailbox_depth =
        max_mailbox_depth_.load(std::memory_order_relaxed);
    snap.coalesced_flushes =
        coalesced_flushes_.load(std::memory_order_relaxed);
    snap.coalesced_messages =
        coalesced_messages_.load(std::memory_order_relaxed);
    return snap;
  }

private:
  std::atomic<std::size_t> messages_{0};
  std::atomic<std::size_t> bytes_{0};
  std::atomic<std::size_t> local_messages_{0};
  std::array<std::atomic<std::size_t>, num_message_kinds> kind_messages_{};
  std::array<std::atomic<std::size_t>, num_message_kinds> kind_bytes_{};
  std::array<std::atomic<std::size_t>, num_message_kinds> kind_dropped_{};
  std::array<std::atomic<std::size_t>, num_message_kinds> kind_delayed_{};
  std::array<std::atomic<std::size_t>, num_message_kinds> kind_duplicated_{};
  std::array<std::atomic<std::size_t>, num_message_kinds> kind_retried_{};
  std::atomic<std::size_t> max_mailbox_depth_{0};
  std::atomic<std::size_t> coalesced_flushes_{0};
  std::atomic<std::size_t> coalesced_messages_{0};
};

} // namespace tlb::rt
