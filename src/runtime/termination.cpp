#include "runtime/termination.hpp"

#include <atomic>

#include "obs/tracer.hpp"
#include "support/assert.hpp"
#include "support/check.hpp"

namespace tlb::rt {

namespace {
/// Cache-line padded per-rank counters; each slot is only mutated by
/// handlers on its own rank.
struct alignas(64) RankCounters {
  std::int64_t sent = 0;
  std::int64_t received = 0;
};
} // namespace

struct TerminationDetector::State {
  std::vector<RankCounters> counters;
  // Wave bookkeeping lives on rank 0's execution only.
  std::int64_t prev_sent = -1;
  std::int64_t prev_recv = -2;
  std::atomic<bool> terminated{false};
  std::atomic<std::int64_t> certified{0};
  std::atomic<std::size_t> waves{0};
  std::size_t wave_budget = 0;
};

TerminationDetector::TerminationDetector(Runtime& rt, std::size_t wave_budget)
    : rt_{&rt}, state_{std::make_shared<State>()} {
  state_->counters.resize(static_cast<std::size_t>(rt.num_ranks()));
  state_->wave_budget = wave_budget;
}

void TerminationDetector::send(RankContext& ctx, RankId to, std::size_t bytes,
                               Handler handler) {
  auto st = state_;
  ++st->counters[static_cast<std::size_t>(ctx.rank())].sent;
  // The inner handler rides behind a shared_ptr so the wrapper stays
  // copyable (clone()-able) even though Handler itself is move-only — the
  // fault plane may duplicate counted messages.
  ctx.send(to, bytes,
           [st, inner = std::make_shared<Handler>(std::move(handler))](
               RankContext& dest) {
             ++st->counters[static_cast<std::size_t>(dest.rank())].received;
             (*inner)(dest);
           });
}

void TerminationDetector::post(RankId to, Handler handler, std::size_t bytes) {
  auto st = state_;
  // Driver-injected work counts as a send from a virtual source; attribute
  // it to the destination's sent counter so sums still balance.
  ++st->counters[static_cast<std::size_t>(to)].sent;
  rt_->post(to,
            [st, inner = std::make_shared<Handler>(std::move(handler))](
                RankContext& dest) {
              ++st->counters[static_cast<std::size_t>(dest.rank())].received;
              (*inner)(dest);
            },
            bytes);
}

void TerminationDetector::wave_step(RankContext& ctx, std::int64_t sent,
                                    std::int64_t recv) {
  auto st = state_;
  auto const r = ctx.rank();
  auto const p = ctx.num_ranks();
  auto const& mine = st->counters[static_cast<std::size_t>(r)];
  std::int64_t const total_sent = sent + mine.sent;
  std::int64_t const total_recv = recv + mine.received;

  RankId const next = (r + 1) % p;
  if (next != 0) {
    TerminationDetector self = *this;
    ctx.send(
        next, 2 * sizeof(std::int64_t),
        [self, total_sent, total_recv](RankContext& c) mutable {
          self.wave_step(c, total_sent, total_recv);
        },
        MessageKind::termination);
    return;
  }

  // Wave completed back at rank 0: apply the four-counter condition.
  st->waves.fetch_add(1, std::memory_order_relaxed);
  TLB_INSTANT_ARG("rt", "term.wave", "wave",
                  st->waves.load(std::memory_order_relaxed));
  TLB_AUDIT_BLOCK {
    // Per-rank counters only ever grow, so consecutive wave sums must be
    // monotone — a shrinking sum means a counter update was lost (a data
    // race the four-counter condition cannot survive). And certification
    // is final: no wave may ever run after a wave pair certified.
    TLB_INVARIANT(!st->terminated.load(std::memory_order_acquire),
                  "no termination wave runs after certification");
    if (st->prev_sent >= 0) {
      TLB_INVARIANT(total_sent >= st->prev_sent,
                    "wave sent-sums monotone non-decreasing");
      TLB_INVARIANT(total_recv >= st->prev_recv,
                    "wave received-sums monotone non-decreasing");
    }
    // Note: total_recv <= total_sent does NOT hold per-wave — a wave can
    // count a receive on an early rank whose matching send lands on an
    // already-visited rank's counter. That asymmetry is exactly why the
    // four-counter condition needs two identical consecutive waves.
  }
  bool const balanced = total_sent == total_recv;
  bool const stable =
      total_sent == st->prev_sent && total_recv == st->prev_recv;
  if (balanced && stable) {
    st->certified.store(total_sent, std::memory_order_relaxed);
    st->terminated.store(true, std::memory_order_release);
    return;
  }
  st->prev_sent = total_sent;
  st->prev_recv = total_recv;
  if (st->wave_budget != 0 &&
      st->waves.load(std::memory_order_relaxed) >= st->wave_budget) {
    return; // safety valve: stop circulating
  }
  // Launch the next wave.
  TerminationDetector self = *this;
  ctx.send(
      0, 2 * sizeof(std::int64_t),
      [self](RankContext& c) mutable { self.wave_step(c, 0, 0); },
      MessageKind::termination);
}

void TerminationDetector::start() {
  TerminationDetector self = *this;
  rt_->post(
      0, [self](RankContext& ctx) mutable { self.wave_step(ctx, 0, 0); }, 0,
      MessageKind::termination);
}

bool TerminationDetector::terminated() const {
  return state_->terminated.load(std::memory_order_acquire);
}

std::int64_t TerminationDetector::certified_count() const {
  return state_->certified.load(std::memory_order_relaxed);
}

std::size_t TerminationDetector::waves() const {
  return state_->waves.load(std::memory_order_relaxed);
}

} // namespace tlb::rt
