#pragma once

/// \file mesh.hpp
/// The 2D structured mesh with the paper's two-level decomposition
/// (Fig. 1): an SPMD block decomposition onto ranks, and a further
/// "coloring" overdecomposition of each rank's block into migratable
/// chunks. Cell size is 1.0, so positions live in [0, cells_x) x
/// [0, cells_y).

#include <utility>

#include "support/types.hpp"

namespace tlb::pic {

/// Color (task) identifier: globally unique across the mesh.
using ColorId = TaskId;

struct MeshConfig {
  int ranks_x = 8;        ///< SPMD rank grid width
  int ranks_y = 8;        ///< SPMD rank grid height
  int colors_x = 6;       ///< colors per rank block, x (6*4 = paper's 24)
  int colors_y = 4;       ///< colors per rank block, y
  int color_cells_x = 4;  ///< cells per color, x
  int color_cells_y = 4;  ///< cells per color, y
};

/// Immutable mesh geometry and decomposition arithmetic.
class Mesh {
public:
  explicit Mesh(MeshConfig config);

  [[nodiscard]] MeshConfig const& config() const { return config_; }

  [[nodiscard]] int cells_x() const { return cells_x_; }
  [[nodiscard]] int cells_y() const { return cells_y_; }
  [[nodiscard]] double domain_x() const {
    return static_cast<double>(cells_x_);
  }
  [[nodiscard]] double domain_y() const {
    return static_cast<double>(cells_y_);
  }

  [[nodiscard]] RankId num_ranks() const;
  [[nodiscard]] int colors_per_rank() const;
  [[nodiscard]] int num_colors() const;
  [[nodiscard]] int cells_per_color() const;
  [[nodiscard]] int cells_per_rank() const;

  /// The SPMD home rank of a color (Fig. 1b: the rank whose block the
  /// color subdivides). Load balancing may move the color elsewhere; the
  /// home is where SPMD mode pins it.
  [[nodiscard]] RankId home_rank_of_color(ColorId color) const;

  /// Color owning the cell at integer coordinates.
  [[nodiscard]] ColorId color_of_cell(int cx, int cy) const;

  /// Color owning a continuous position (clamped to the domain).
  [[nodiscard]] ColorId color_of_position(double x, double y) const;

  /// Center position of a color's sub-block (for diagnostics).
  [[nodiscard]] std::pair<double, double> color_center(ColorId color) const;

private:
  MeshConfig config_;
  int cells_x_;
  int cells_y_;
};

} // namespace tlb::pic
