#pragma once

/// \file color_chunk.hpp
/// The migratable unit of EMPIRE's overdecomposition: a "color" — one
/// sub-block of a rank's mesh together with the particles currently inside
/// it (§VI-A). Colors are the tasks the load balancer moves; their wire
/// size is the sub-mesh plus the particle payload, which is what makes
/// migrating particle-heavy colors expensive.

#include "pic/mesh.hpp"
#include "pic/particles.hpp"
#include "runtime/object_store.hpp"

namespace tlb::pic {

class ColorChunk final : public rt::Migratable {
public:
  ColorChunk(ColorId id, int cells) : id_{id}, cells_{cells} {}

  [[nodiscard]] ColorId id() const { return id_; }
  [[nodiscard]] int cells() const { return cells_; }

  [[nodiscard]] Particles& particles() { return particles_; }
  [[nodiscard]] Particles const& particles() const { return particles_; }

  /// Sub-mesh (8 bytes per cell of field data) plus particle payload.
  [[nodiscard]] std::size_t wire_bytes() const override {
    return static_cast<std::size_t>(cells_) * 8 + particles_.wire_bytes();
  }

private:
  ColorId id_;
  int cells_;
  Particles particles_;
};

} // namespace tlb::pic
