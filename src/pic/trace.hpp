#pragma once

/// \file trace.hpp
/// CSV trace emission for PIC runs — the analogue of the instrumentation
/// dumps vt produces for offline analysis with LBAF. One row per
/// timestep with every StepMetrics field, suitable for plotting the
/// paper's Fig. 4 panels with any external tool.

#include <iosfwd>
#include <string>

#include "pic/app.hpp"

namespace tlb::pic {

/// Write the per-step metrics of a run as CSV (header + one row per step).
void write_trace_csv(std::ostream& os, RunResult const& result);

/// Convenience: write to a file path; throws std::runtime_error when the
/// file cannot be opened.
void write_trace_csv(std::string const& path, RunResult const& result);

} // namespace tlb::pic
