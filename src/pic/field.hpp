#pragma once

/// \file field.hpp
/// The electromagnetic field solve stand-in: the *balanced*, non-particle
/// part of the timestep (paper's t_n). A real 5-point Jacobi smoother is
/// provided so examples can exercise genuine FLOPs; the timing model uses
/// a per-cell cost since the solve is uniform across ranks by construction
/// (static SPMD mesh decomposition).

#include <cstddef>
#include <vector>

namespace tlb::pic {

/// In-place Jacobi relaxation of a Dirichlet Poisson problem on an
/// nx x ny grid. Deliberately simple: this is the balanced FEM-solve
/// surrogate, not a numerics showcase.
class FieldSolver {
public:
  FieldSolver(int nx, int ny);

  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }

  /// Set the right-hand side at a cell (e.g. charge deposited from
  /// particles).
  void set_rhs(int cx, int cy, double value);

  /// Run `iters` Jacobi sweeps; returns the final L2 residual.
  double sweep(int iters);

  [[nodiscard]] double value(int cx, int cy) const;

private:
  [[nodiscard]] std::size_t idx(int cx, int cy) const;

  int nx_;
  int ny_;
  std::vector<double> u_;
  std::vector<double> next_;
  std::vector<double> rhs_;
};

} // namespace tlb::pic
