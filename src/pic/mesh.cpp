#include "pic/mesh.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace tlb::pic {

Mesh::Mesh(MeshConfig config) : config_{config} {
  TLB_EXPECTS(config.ranks_x > 0 && config.ranks_y > 0);
  TLB_EXPECTS(config.colors_x > 0 && config.colors_y > 0);
  TLB_EXPECTS(config.color_cells_x > 0 && config.color_cells_y > 0);
  cells_x_ = config.ranks_x * config.colors_x * config.color_cells_x;
  cells_y_ = config.ranks_y * config.colors_y * config.color_cells_y;
}

RankId Mesh::num_ranks() const {
  return static_cast<RankId>(config_.ranks_x * config_.ranks_y);
}

int Mesh::colors_per_rank() const {
  return config_.colors_x * config_.colors_y;
}

int Mesh::num_colors() const {
  return static_cast<int>(num_ranks()) * colors_per_rank();
}

int Mesh::cells_per_color() const {
  return config_.color_cells_x * config_.color_cells_y;
}

int Mesh::cells_per_rank() const {
  return colors_per_rank() * cells_per_color();
}

RankId Mesh::home_rank_of_color(ColorId color) const {
  TLB_EXPECTS(color >= 0 && color < num_colors());
  return static_cast<RankId>(color / colors_per_rank());
}

ColorId Mesh::color_of_cell(int cx, int cy) const {
  TLB_EXPECTS(cx >= 0 && cx < cells_x_);
  TLB_EXPECTS(cy >= 0 && cy < cells_y_);
  int const rank_block_x = config_.colors_x * config_.color_cells_x;
  int const rank_block_y = config_.colors_y * config_.color_cells_y;
  int const rx = cx / rank_block_x;
  int const ry = cy / rank_block_y;
  int const rank = ry * config_.ranks_x + rx;
  int const lx = (cx % rank_block_x) / config_.color_cells_x;
  int const ly = (cy % rank_block_y) / config_.color_cells_y;
  int const local_color = ly * config_.colors_x + lx;
  return static_cast<ColorId>(rank * colors_per_rank() + local_color);
}

ColorId Mesh::color_of_position(double x, double y) const {
  int const cx = std::clamp(static_cast<int>(std::floor(x)), 0,
                            cells_x_ - 1);
  int const cy = std::clamp(static_cast<int>(std::floor(y)), 0,
                            cells_y_ - 1);
  return color_of_cell(cx, cy);
}

std::pair<double, double> Mesh::color_center(ColorId color) const {
  TLB_EXPECTS(color >= 0 && color < num_colors());
  int const per_rank = colors_per_rank();
  int const rank = static_cast<int>(color) / per_rank;
  int const local = static_cast<int>(color) % per_rank;
  int const rx = rank % config_.ranks_x;
  int const ry = rank / config_.ranks_x;
  int const lx = local % config_.colors_x;
  int const ly = local / config_.colors_x;
  double const x0 =
      static_cast<double>(rx) * config_.colors_x * config_.color_cells_x +
      static_cast<double>(lx) * config_.color_cells_x;
  double const y0 =
      static_cast<double>(ry) * config_.colors_y * config_.color_cells_y +
      static_cast<double>(ly) * config_.color_cells_y;
  return {x0 + 0.5 * config_.color_cells_x, y0 + 0.5 * config_.color_cells_y};
}

} // namespace tlb::pic
