#pragma once

/// \file bdot.hpp
/// The B-Dot-like particle scenario (§VI): a spatially localized injection
/// region that drifts around the domain while the injection rate grows, so
/// that (a) per-color particle counts are highly non-uniform at any
/// instant, (b) the hot spot moves across ranks over time, and (c) the
/// average load rises through the run — which is why the no-LB imbalance
/// decays from ~7 toward ~3 in the paper's Fig. 4c even though nothing is
/// balanced.

#include <cstdint>
#include <utility>

#include "support/rng.hpp"

namespace tlb::pic {

struct BDotConfig {
  double base_rate = 220.0;   ///< particles injected at step 0
  double growth = 2.2;        ///< extra particles per step (linear ramp)
  double sigma_frac = 0.1;    ///< injection Gaussian sigma / domain size
  double orbit_frac = 0.3;    ///< orbit radius / domain size
  double orbit_periods = 0.2; ///< orbits completed over `total_steps`
  int total_steps = 600;
  double speed_lo = 0.01;     ///< particle speed range (cells/step)
  double speed_hi = 0.15;
};

/// Deterministic injection model.
class BDotScenario {
public:
  explicit BDotScenario(BDotConfig config) : config_{config} {}

  [[nodiscard]] BDotConfig const& config() const { return config_; }

  /// Number of particles to inject at `step`.
  [[nodiscard]] int count(int step) const;

  /// Center of the injection blob at `step` for a domain [0,lx) x [0,ly).
  [[nodiscard]] std::pair<double, double> center(int step, double lx,
                                                 double ly) const;

  /// Draw one injected particle (position and velocity) around the blob.
  struct Injected {
    double x;
    double y;
    double vx;
    double vy;
  };
  [[nodiscard]] Injected draw(int step, double lx, double ly,
                              Rng& rng) const;

private:
  BDotConfig config_;
};

} // namespace tlb::pic
