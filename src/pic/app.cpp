#include "pic/app.hpp"

#include <algorithm>
#include <limits>

#include "support/assert.hpp"
#include "support/stats.hpp"

namespace tlb::pic {

namespace {

rt::RuntimeConfig runtime_config(PicConfig const& config, Mesh const& mesh) {
  rt::RuntimeConfig cfg;
  cfg.num_ranks = mesh.num_ranks();
  cfg.num_threads = config.runtime_threads;
  // Derive the runtime's stream from the app's root seed instead of
  // reusing it: the app-level Rng and the per-rank runtime Rngs must
  // never walk the same sequence.
  cfg.seed = derive_seed(config.seed, 0x9e37'0000'0000'091cull);
  return cfg;
}

} // namespace

PicApp::PicApp(PicConfig config)
    : config_{std::move(config)}, mesh_{config_.mesh},
      runtime_{runtime_config(config_, mesh_)},
      store_{mesh_.num_ranks()},
      instrumentation_{mesh_.num_ranks()},
      scenario_{config_.bdot},
      rng_{config_.seed} {
  TLB_EXPECTS(config_.steps > 0);
  TLB_EXPECTS(config_.lb_period > 0);
  // Create every color on its SPMD home rank (Fig. 1b).
  for (ColorId c = 0; c < mesh_.num_colors(); ++c) {
    store_.create(mesh_.home_rank_of_color(c), c,
                  std::make_unique<ColorChunk>(c, mesh_.cells_per_color()));
  }
  bool const balancing =
      config_.mode == ExecutionMode::amt && config_.strategy != "none";
  if (balancing) {
    lb_manager_ = std::make_unique<lb::LbManager>(runtime_, config_.strategy,
                                                  config_.lb_params);
    if (!config_.policy.empty()) {
      trigger_policy_ = policy::make_policy(config_.policy);
    }
  }
}

ColorChunk& PicApp::chunk(ColorId color) {
  auto* payload = store_.find(store_.owner(color), color);
  TLB_ASSERT(payload != nullptr);
  return *static_cast<ColorChunk*>(payload);
}

ColorChunk const& PicApp::chunk(ColorId color) const {
  auto* payload =
      const_cast<rt::ObjectStore&>(store_).find(store_.owner(color), color);
  TLB_ASSERT(payload != nullptr);
  return *static_cast<ColorChunk const*>(payload);
}

RankId PicApp::owner_of(ColorId color) const { return store_.owner(color); }

std::size_t PicApp::particles_in(ColorId color) const {
  return chunk(color).particles().size();
}

std::size_t PicApp::total_particles() const {
  std::size_t n = 0;
  for (ColorId c = 0; c < mesh_.num_colors(); ++c) {
    n += particles_in(c);
  }
  return n;
}

bool PicApp::is_lb_step(int step, double measured_imbalance) {
  if (lb_manager_ == nullptr) {
    return false;
  }
  if (step == config_.first_lb_step) {
    return true;
  }
  if (step > config_.first_lb_step && step % config_.lb_period == 0) {
    return true;
  }
  // Adaptive trigger: react to observed imbalance between periodic
  // invocations, with a cooldown to avoid thrashing on a residual floor.
  return config_.lb_trigger_imbalance > 0.0 &&
         step > config_.first_lb_step &&
         measured_imbalance > config_.lb_trigger_imbalance &&
         step - last_lb_step_ >= config_.lb_trigger_cooldown;
}

void PicApp::inject(int step) {
  int const n = scenario_.count(step);
  double const lx = mesh_.domain_x();
  double const ly = mesh_.domain_y();
  for (int i = 0; i < n; ++i) {
    auto const p = scenario_.draw(step, lx, ly, rng_);
    ColorId const c = mesh_.color_of_position(p.x, p.y);
    chunk(c).particles().add(p.x, p.y, p.vx, p.vy);
  }
}

double PicApp::particle_phase(std::vector<double>& rank_work) {
  double const factor = config_.mode == ExecutionMode::amt
                            ? 1.0 + config_.work.amt_particle_overhead
                            : 1.0;
  double max_task = 0.0;
  double const lx = mesh_.domain_x();
  double const ly = mesh_.domain_y();
  if (prev_color_work_.empty()) {
    prev_color_work_.assign(static_cast<std::size_t>(mesh_.num_colors()),
                            0.0);
  }
  for (ColorId c = 0; c < mesh_.num_colors(); ++c) {
    ColorChunk& color = chunk(c);
    auto const n = color.particles().size();
    color.particles().push(1.0, lx, ly);
    double const work =
        factor * (config_.work.alpha * static_cast<double>(n) +
                  config_.work.beta * color.cells());
    RankId const rank = store_.owner(c);
    instrumentation_.record(rank, c, work);
    rank_work[static_cast<std::size_t>(rank)] += work;
    max_task = std::max(max_task, work);
  }
  return max_task;
}

void PicApp::exchange(StepMetrics& metrics) {
  // Rebin particles whose push moved them out of their color's sub-block.
  // Index loop with remove_swap: on a move, the swapped-in particle takes
  // slot i, so i is not advanced.
  for (ColorId c = 0; c < mesh_.num_colors(); ++c) {
    Particles& particles = chunk(c).particles();
    RankId const owner = store_.owner(c);
    std::size_t i = 0;
    while (i < particles.size()) {
      ColorId const target =
          mesh_.color_of_position(particles.x(i), particles.y(i));
      if (target == c) {
        ++i;
        continue;
      }
      ++metrics.exchanged;
      if (store_.owner(target) != owner) {
        ++metrics.remote_exchanged;
      }
      chunk(target).particles().take_from(particles, i);
    }
  }
}

RunResult PicApp::run() {
  RunResult result;
  result.steps.reserve(static_cast<std::size_t>(config_.steps));
  auto const p = static_cast<std::size_t>(mesh_.num_ranks());
  double const nonparticle_factor =
      config_.mode == ExecutionMode::amt
          ? 1.0 + config_.work.amt_nonparticle_overhead
          : 1.0;
  double const t_n_step = nonparticle_factor * config_.work.gamma *
                          static_cast<double>(mesh_.cells_per_rank());

  for (int step = 0; step < config_.steps; ++step) {
    inject(step);

    StepMetrics metrics;
    metrics.step = step;
    metrics.t_nonparticle = t_n_step;

    std::vector<double> rank_work(p, 0.0);
    metrics.max_task_load = particle_phase(rank_work);

    // Persistence quality: how well last phase's per-color loads predict
    // this phase's (the LB's operating assumption, §III-B).
    {
      double diff = 0.0;
      double total = 0.0;
      for (ColorId c = 0; c < mesh_.num_colors(); ++c) {
        auto const ci = static_cast<std::size_t>(c);
        double const current =
            config_.work.alpha *
                static_cast<double>(chunk(c).particles().size()) +
            config_.work.beta * chunk(c).cells();
        diff += std::abs(current - prev_color_work_[ci]);
        total += current;
        prev_color_work_[ci] = current;
      }
      metrics.persistence_error = total > 0.0 ? diff / total : 0.0;
    }

    exchange(metrics);

    auto const summary = summarize(rank_work);
    metrics.t_particle = summary.max;
    metrics.max_rank_load = summary.max;
    metrics.min_rank_load = summary.min;
    metrics.avg_rank_load = summary.mean;
    metrics.imbalance = summary.imbalance();
    metrics.total_particles = total_particles();

    instrumentation_.start_phase();

    if (trigger_policy_ != nullptr) {
      // Adaptive invocation: the policy sees every step's measured loads
      // and decides itself; the WorkModel's LB coefficients become the
      // cost model its cost/benefit criterion weighs gains against.
      auto const input =
          lb::LbManager::gather_input(instrumentation_, mesh_.num_ranks());
      lb::LbCostModel const cost_model{config_.work.lb_per_message,
                                       config_.work.lb_per_byte,
                                       config_.work.migration_per_byte, 0.0};
      auto const outcome = lb_manager_->invoke_if_beneficial(
          input, store_, *trigger_policy_, cost_model);
      if (outcome.invoked) {
        last_lb_step_ = step;
        metrics.migrations = outcome.report.cost.migration_count;
        metrics.t_lb = outcome.lb_cost_seconds;
        result.totals.migrations += outcome.report.cost.migration_count;
        result.totals.migration_bytes +=
            outcome.report.migration_payload_bytes;
      }
    } else if (is_lb_step(step, metrics.imbalance)) {
      last_lb_step_ = step;
      auto const input =
          lb::LbManager::gather_input(instrumentation_, mesh_.num_ranks());
      auto const report = lb_manager_->invoke(input, store_);
      metrics.migrations = report.cost.migration_count;
      metrics.t_lb =
          config_.work.lb_per_message *
              static_cast<double>(report.cost.lb_messages) +
          config_.work.lb_per_byte *
              static_cast<double>(report.cost.lb_bytes) +
          config_.work.migration_per_byte *
              static_cast<double>(report.migration_payload_bytes);
      result.totals.migrations += report.cost.migration_count;
      result.totals.migration_bytes += report.migration_payload_bytes;
    }

    metrics.t_step =
        metrics.t_particle + metrics.t_nonparticle + metrics.t_lb;
    result.totals.t_particle += metrics.t_particle;
    result.totals.t_nonparticle += metrics.t_nonparticle;
    result.totals.t_lb += metrics.t_lb;
    result.totals.t_total += metrics.t_step;
    result.totals.exchanged += metrics.exchanged;
    result.totals.remote_exchanged += metrics.remote_exchanged;
    result.steps.push_back(metrics);
  }
  return result;
}

} // namespace tlb::pic
