#include "pic/particles.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace tlb::pic {

void Particles::reserve(std::size_t n) {
  x_.reserve(n);
  y_.reserve(n);
  vx_.reserve(n);
  vy_.reserve(n);
}

void Particles::add(double x, double y, double vx, double vy) {
  x_.push_back(x);
  y_.push_back(y);
  vx_.push_back(vx);
  vy_.push_back(vy);
}

namespace {

/// Reflect `p` into [0, limit), flipping `v`'s sign on each bounce.
void reflect(double& p, double& v, double limit) {
  while (p < 0.0 || p >= limit) {
    if (p < 0.0) {
      p = -p;
      v = -v;
    } else {
      p = 2.0 * limit - p;
      v = -v;
      // Guard against landing exactly on the boundary from above.
      if (p >= limit) {
        p = std::nextafter(limit, 0.0);
      }
    }
  }
}

} // namespace

void Particles::push(double dt, double lx, double ly) {
  TLB_EXPECTS(lx > 0.0 && ly > 0.0);
  for (std::size_t i = 0; i < x_.size(); ++i) {
    x_[i] += vx_[i] * dt;
    y_[i] += vy_[i] * dt;
    reflect(x_[i], vx_[i], lx);
    reflect(y_[i], vy_[i], ly);
  }
}

void Particles::remove_swap(std::size_t i) {
  TLB_EXPECTS(i < x_.size());
  x_[i] = x_.back();
  y_[i] = y_.back();
  vx_[i] = vx_.back();
  vy_[i] = vy_.back();
  x_.pop_back();
  y_.pop_back();
  vx_.pop_back();
  vy_.pop_back();
}

void Particles::take_from(Particles& from, std::size_t i) {
  add(from.x(i), from.y(i), from.vx(i), from.vy(i));
  from.remove_swap(i);
}

void Particles::clear() {
  x_.clear();
  y_.clear();
  vx_.clear();
  vy_.clear();
}

} // namespace tlb::pic
