#include "pic/field.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace tlb::pic {

FieldSolver::FieldSolver(int nx, int ny)
    : nx_{nx}, ny_{ny},
      u_(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny), 0.0),
      next_(u_.size(), 0.0), rhs_(u_.size(), 0.0) {
  TLB_EXPECTS(nx >= 3 && ny >= 3);
}

std::size_t FieldSolver::idx(int cx, int cy) const {
  TLB_EXPECTS(cx >= 0 && cx < nx_);
  TLB_EXPECTS(cy >= 0 && cy < ny_);
  return static_cast<std::size_t>(cy) * static_cast<std::size_t>(nx_) +
         static_cast<std::size_t>(cx);
}

void FieldSolver::set_rhs(int cx, int cy, double value) {
  rhs_[idx(cx, cy)] = value;
}

double FieldSolver::value(int cx, int cy) const { return u_[idx(cx, cy)]; }

double FieldSolver::sweep(int iters) {
  TLB_EXPECTS(iters >= 1);
  for (int it = 0; it < iters; ++it) {
    for (int cy = 1; cy < ny_ - 1; ++cy) {
      for (int cx = 1; cx < nx_ - 1; ++cx) {
        auto const i = idx(cx, cy);
        next_[i] = 0.25 * (u_[i - 1] + u_[i + 1] +
                           u_[i - static_cast<std::size_t>(nx_)] +
                           u_[i + static_cast<std::size_t>(nx_)] +
                           rhs_[i]);
      }
    }
    u_.swap(next_);
  }
  double residual = 0.0;
  for (int cy = 1; cy < ny_ - 1; ++cy) {
    for (int cx = 1; cx < nx_ - 1; ++cx) {
      auto const i = idx(cx, cy);
      double const r = 0.25 * (u_[i - 1] + u_[i + 1] +
                               u_[i - static_cast<std::size_t>(nx_)] +
                               u_[i + static_cast<std::size_t>(nx_)] +
                               rhs_[i]) -
                       u_[i];
      residual += r * r;
    }
  }
  return std::sqrt(residual);
}

} // namespace tlb::pic
