#include "pic/bdot.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace tlb::pic {

int BDotScenario::count(int step) const {
  TLB_EXPECTS(step >= 0);
  double const rate =
      config_.base_rate + config_.growth * static_cast<double>(step);
  return std::max(0, static_cast<int>(rate));
}

std::pair<double, double> BDotScenario::center(int step, double lx,
                                               double ly) const {
  TLB_EXPECTS(config_.total_steps > 0);
  double const phase = 2.0 * 3.14159265358979323846 * config_.orbit_periods *
                       static_cast<double>(step) /
                       static_cast<double>(config_.total_steps);
  double const cx = 0.5 * lx + config_.orbit_frac * lx * std::cos(phase);
  double const cy = 0.5 * ly + config_.orbit_frac * ly * std::sin(phase);
  return {std::clamp(cx, 0.0, std::nextafter(lx, 0.0)),
          std::clamp(cy, 0.0, std::nextafter(ly, 0.0))};
}

BDotScenario::Injected BDotScenario::draw(int step, double lx, double ly,
                                          Rng& rng) const {
  auto const [cx, cy] = center(step, lx, ly);
  double const sigma = config_.sigma_frac * std::min(lx, ly);
  double x = cx + sigma * rng.normal();
  double y = cy + sigma * rng.normal();
  x = std::clamp(x, 0.0, std::nextafter(lx, 0.0));
  y = std::clamp(y, 0.0, std::nextafter(ly, 0.0));
  double const speed = rng.uniform(config_.speed_lo, config_.speed_hi);
  double const angle = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
  return Injected{x, y, speed * std::cos(angle), speed * std::sin(angle)};
}

} // namespace tlb::pic
