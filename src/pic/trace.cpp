#include "pic/trace.hpp"

#include <fstream>
#include <ostream>

#include "obs/json.hpp"
#include "support/table.hpp"

namespace tlb::pic {

void write_trace_csv(std::ostream& os, RunResult const& result) {
  Table table{{"step", "t_particle", "t_nonparticle", "t_lb", "t_step",
               "max_rank_load", "min_rank_load", "avg_rank_load",
               "max_task_load", "imbalance", "persistence_error",
               "total_particles", "migrations", "exchanged",
               "remote_exchanged"}};
  for (auto const& m : result.steps) {
    table.begin_row()
        .add_cell(m.step)
        .add_cell(m.t_particle, 6)
        .add_cell(m.t_nonparticle, 6)
        .add_cell(m.t_lb, 6)
        .add_cell(m.t_step, 6)
        .add_cell(m.max_rank_load, 6)
        .add_cell(m.min_rank_load, 6)
        .add_cell(m.avg_rank_load, 6)
        .add_cell(m.max_task_load, 6)
        .add_cell(m.imbalance, 6)
        .add_cell(m.persistence_error, 6)
        .add_cell(m.total_particles)
        .add_cell(m.migrations)
        .add_cell(m.exchanged)
        .add_cell(m.remote_exchanged);
  }
  table.print_csv(os);
}

void write_trace_csv(std::string const& path, RunResult const& result) {
  // open_output_file reports the failing path and the errno string
  // (e.g. a missing parent directory) instead of a bare failure.
  auto os = obs::open_output_file(path);
  write_trace_csv(os, result);
}

} // namespace tlb::pic
