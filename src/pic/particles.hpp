#pragma once

/// \file particles.hpp
/// Structure-of-arrays particle container. Particles carry position and
/// velocity; the push advances positions and reflects off the domain
/// boundary. A particle's modeled serialized size (for migration-cost
/// accounting) is four doubles.

#include <cstddef>
#include <vector>

namespace tlb::pic {

inline constexpr std::size_t particle_wire_bytes = 4 * sizeof(double);

class Particles {
public:
  [[nodiscard]] std::size_t size() const { return x_.size(); }
  [[nodiscard]] bool empty() const { return x_.empty(); }

  void reserve(std::size_t n);
  void add(double x, double y, double vx, double vy);

  [[nodiscard]] double x(std::size_t i) const { return x_[i]; }
  [[nodiscard]] double y(std::size_t i) const { return y_[i]; }
  [[nodiscard]] double vx(std::size_t i) const { return vx_[i]; }
  [[nodiscard]] double vy(std::size_t i) const { return vy_[i]; }

  /// Advance every particle by dt, reflecting at the domain boundary
  /// [0, lx) x [0, ly).
  void push(double dt, double lx, double ly);

  /// Remove particle i by swapping with the last (O(1), order-destroying).
  void remove_swap(std::size_t i);

  /// Move particle i of `from` into this container.
  void take_from(Particles& from, std::size_t i);

  void clear();

  [[nodiscard]] std::size_t wire_bytes() const {
    return size() * particle_wire_bytes;
  }

private:
  std::vector<double> x_;
  std::vector<double> y_;
  std::vector<double> vx_;
  std::vector<double> vy_;
};

} // namespace tlb::pic
