#pragma once

/// \file app.hpp
/// The EMPIRE-surrogate mini-app driver: a timestep loop of
///   inject -> field solve (t_n) -> particle update (t_p) -> exchange ->
///   [load balance every lb_period steps] (t_lb)
/// over the colored overdecomposition, producing per-step metrics that
/// regenerate the paper's Figs. 2-4. Times are simulated seconds derived
/// from the WorkModel; the particle motion itself is real.

#include <string>
#include <vector>

#include "lb/strategy/lb_manager.hpp"
#include "pic/bdot.hpp"
#include "pic/color_chunk.hpp"
#include "pic/mesh.hpp"
#include "runtime/object_store.hpp"
#include "runtime/phase.hpp"
#include "runtime/runtime.hpp"

namespace tlb::pic {

/// SPMD runs the pure-MPI configuration: colors pinned to their home
/// ranks, no tasking overhead, no LB. AMT runs the overdecomposed tasking
/// configuration with its overhead and optional balancing.
enum class ExecutionMode { spmd, amt };

/// Simulated-time cost coefficients. Defaults are calibrated so a default
/// 64-rank run reproduces the paper's time-breakdown *shape* (Fig. 3):
/// t_p ~ 2-3x t_n for SPMD, ~29% AMT overhead on particle work, ~8% on
/// non-particle work, and t_lb two orders below t_total.
struct WorkModel {
  double alpha = 1.0e-4; ///< seconds per particle per step
  double beta = 1.0e-4;  ///< seconds per cell, particle phase (deposit/sort)
  double gamma = 1.5e-3; ///< seconds per cell, field solve
  double amt_particle_overhead = 0.29;
  double amt_nonparticle_overhead = 0.08;
  double lb_per_message = 2.0e-6;    ///< protocol message cost
  double lb_per_byte = 5.0e-10;      ///< protocol byte cost
  double migration_per_byte = 4.0e-9;///< payload movement cost
};

struct PicConfig {
  MeshConfig mesh;
  BDotConfig bdot;
  WorkModel work;
  ExecutionMode mode = ExecutionMode::amt;
  /// Strategy name for make_strategy(), or "none" to disable balancing.
  std::string strategy = "tempered";
  lb::LbParams lb_params = lb::LbParams::tempered();
  int steps = 600;
  int first_lb_step = 2;  ///< paper: balance at the 2nd timestep...
  int lb_period = 100;    ///< ...then every 100th
  /// Adaptive trigger (extension, motivated by §IV-A's frequency/
  /// scalability tradeoff): when > 0, additionally invoke the LB at any
  /// step whose *previous* step measured I above this threshold. 0 keeps
  /// the paper's purely periodic schedule.
  double lb_trigger_imbalance = 0.0;
  /// Minimum steps between adaptive-trigger invocations (hysteresis so a
  /// persistent residual imbalance cannot thrash the balancer).
  int lb_trigger_cooldown = 10;
  /// Trigger-policy spec (policy::make_policy: "always", "every-<k>",
  /// "threshold-<λ>", "costbenefit", ...). When non-empty it replaces the
  /// periodic schedule and imbalance trigger entirely: the policy sees
  /// every step's measured loads and decides invoke-or-skip itself.
  std::string policy;
  std::uint64_t seed = 0xE3;
  int runtime_threads = 1;
};

/// Per-timestep observables (the series plotted in Fig. 4).
struct StepMetrics {
  int step = 0;
  double t_particle = 0.0;
  double t_nonparticle = 0.0;
  double t_lb = 0.0;
  double t_step = 0.0;
  double max_rank_load = 0.0;   ///< Fig. 4b "Max"
  double min_rank_load = 0.0;   ///< Fig. 4b "Min"
  double avg_rank_load = 0.0;
  double max_task_load = 0.0;   ///< for Fig. 4b's lower bound
  double imbalance = 0.0;       ///< Fig. 4c
  std::size_t total_particles = 0;
  std::size_t migrations = 0;   ///< migrations executed this step
  /// Quality of the principle of persistence (§III-B) at this step:
  /// sum |w_t(c) − w_{t−1}(c)| / sum w_t(c) over colors — 0 means the
  /// previous phase predicted this phase perfectly. The LB acts on
  /// previous-phase loads, so its efficacy degrades as this rises.
  double persistence_error = 0.0;
  /// Particles that crossed a color boundary this step...
  std::size_t exchanged = 0;
  /// ...of which this many crossed a *rank* boundary — the communication
  /// locality the paper's future work wants the balancer to preserve
  /// (§V-E2: "lost communication locality leading to increased data
  /// movement").
  std::size_t remote_exchanged = 0;
};

/// Aggregates over a run (the Fig. 2 bars / Fig. 3 table row).
struct RunTotals {
  double t_particle = 0.0;
  double t_nonparticle = 0.0;
  double t_lb = 0.0;
  double t_total = 0.0;
  std::size_t migrations = 0;
  std::size_t migration_bytes = 0;
  std::size_t exchanged = 0;
  std::size_t remote_exchanged = 0;
};

struct RunResult {
  std::vector<StepMetrics> steps;
  RunTotals totals;
};

class PicApp {
public:
  explicit PicApp(PicConfig config);

  /// Execute the full timestep loop.
  [[nodiscard]] RunResult run();

  [[nodiscard]] Mesh const& mesh() const { return mesh_; }
  [[nodiscard]] PicConfig const& config() const { return config_; }

  /// Current owner rank of a color (home rank in SPMD mode).
  [[nodiscard]] RankId owner_of(ColorId color) const;

  /// Particles currently inside a color (test/diagnostic access).
  [[nodiscard]] std::size_t particles_in(ColorId color) const;
  [[nodiscard]] std::size_t total_particles() const;

  /// Telemetry access: the underlying runtime (for publish_metrics) and
  /// the LB manager's introspection reports (null when strategy=none or
  /// in SPMD mode).
  [[nodiscard]] rt::Runtime const& runtime() const { return runtime_; }
  [[nodiscard]] lb::LbManager const* lb_manager() const {
    return lb_manager_.get();
  }

private:
  void inject(int step);
  /// Push particles per color, measure work, fill per-rank loads; returns
  /// the max per-task (color) load.
  double particle_phase(std::vector<double>& rank_work);
  /// Rebin particles to the colors owning their new positions; records
  /// total and cross-rank exchange counts into `metrics`.
  void exchange(StepMetrics& metrics);
  [[nodiscard]] ColorChunk& chunk(ColorId color);
  [[nodiscard]] ColorChunk const& chunk(ColorId color) const;
  /// Whether to invoke the LB after measuring `step`; `measured_imbalance`
  /// is this step's I (the adaptive trigger's signal).
  [[nodiscard]] bool is_lb_step(int step, double measured_imbalance);

  PicConfig config_;
  Mesh mesh_;
  rt::Runtime runtime_;
  rt::ObjectStore store_;
  rt::PhaseInstrumentation instrumentation_;
  std::unique_ptr<lb::LbManager> lb_manager_; ///< null when not balancing
  /// Non-null when config_.policy selects adaptive invocation.
  std::unique_ptr<policy::TriggerPolicy> trigger_policy_;
  BDotScenario scenario_;
  Rng rng_;
  /// Previous step's per-color work, for the persistence metric.
  std::vector<double> prev_color_work_;
  /// Step of the last LB invocation (for the adaptive trigger cooldown).
  int last_lb_step_ = -1;
};

} // namespace tlb::pic
