#include "obs/phase_timeline.hpp"

#include <algorithm>
#include <ostream>

#include "obs/json.hpp"

namespace tlb::obs {

PhaseTimeline& PhaseTimeline::instance() {
  static PhaseTimeline timeline;
  return timeline;
}

PhaseTimeline::PhaseTimeline(std::size_t capacity) : capacity_{capacity} {
  ring_.reserve(capacity_);
}

void PhaseTimeline::record(PhaseSample sample) {
  SpinLockGuard lock{mutex_};
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(sample));
  } else {
    ring_[head_] = std::move(sample);
  }
  head_ = (head_ + 1) % capacity_;
  ++total_;
}

std::vector<PhaseSample> PhaseTimeline::samples() const {
  SpinLockGuard lock{mutex_};
  std::vector<PhaseSample> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
    return out;
  }
  // Full ring: head_ points at the oldest sample.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % capacity_]);
  }
  return out;
}

std::uint64_t PhaseTimeline::total_recorded() const {
  SpinLockGuard lock{mutex_};
  return total_;
}

void PhaseTimeline::clear() {
  SpinLockGuard lock{mutex_};
  ring_.clear();
  head_ = 0;
  total_ = 0;
}

void PhaseTimeline::set_snapshot_top_k(std::size_t k) {
  SpinLockGuard lock{mutex_};
  snapshot_top_k_ = k;
}

std::size_t PhaseTimeline::snapshot_top_k() const {
  SpinLockGuard lock{mutex_};
  return snapshot_top_k_;
}

void snapshot_loads(PhaseSample& sample, std::span<double const> loads,
                    std::size_t top_k) {
  sample.snapshot_ranks = static_cast<std::uint32_t>(loads.size());
  sample.top_loads.clear();
  sample.rest_load_sum = 0.0;
  auto const k = std::min(top_k, loads.size());
  if (k > 0) {
    std::vector<RankLoadSample> all;
    all.reserve(loads.size());
    for (std::size_t r = 0; r < loads.size(); ++r) {
      all.push_back({static_cast<std::int32_t>(r), loads[r]});
    }
    std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k),
                      all.end(),
                      [](RankLoadSample const& a, RankLoadSample const& b) {
                        if (a.load != b.load) {
                          return a.load > b.load;
                        }
                        return a.rank < b.rank;
                      });
    sample.top_loads.assign(all.begin(),
                            all.begin() + static_cast<std::ptrdiff_t>(k));
    for (std::size_t i = k; i < all.size(); ++i) {
      sample.rest_load_sum += all[i].load;
    }
  } else {
    for (double const l : loads) {
      sample.rest_load_sum += l;
    }
  }
}

void write_phase_sample(JsonWriter& w, PhaseSample const& sample) {
  w.begin_object();
  w.kv("phase", static_cast<unsigned long long>(sample.phase));
  w.kv("strategy", sample.strategy);
  w.kv("load_min", sample.load_min);
  w.kv("load_max", sample.load_max);
  w.kv("load_avg", sample.load_avg);
  w.kv("load_stddev", sample.load_stddev);
  w.kv("imbalance_before", sample.imbalance_before);
  w.kv("imbalance_after", sample.imbalance_after);
  w.kv("migrations", static_cast<unsigned long long>(sample.migrations));
  w.kv("migration_bytes",
       static_cast<unsigned long long>(sample.migration_bytes));
  w.kv("lb_messages", static_cast<unsigned long long>(sample.lb_messages));
  w.kv("lb_bytes", static_cast<unsigned long long>(sample.lb_bytes));
  w.kv("lb_wall_us", static_cast<long long>(sample.lb_wall_us));
  w.kv("aborted_rounds",
       static_cast<unsigned long long>(sample.aborted_rounds));
  w.kv("faults_dropped",
       static_cast<unsigned long long>(sample.faults_dropped));
  w.kv("faults_delayed",
       static_cast<unsigned long long>(sample.faults_delayed));
  w.kv("faults_duplicated",
       static_cast<unsigned long long>(sample.faults_duplicated));
  w.kv("faults_retried",
       static_cast<unsigned long long>(sample.faults_retried));
  w.kv("lb_invoked", sample.lb_invoked);
  w.kv("policy", sample.policy);
  w.kv("reason", sample.decision_reason);
  w.kv("forecast_imbalance", sample.forecast_imbalance);
  w.kv("forecast_error", sample.forecast_error);
  w.kv("predicted_gain", sample.predicted_gain);
  w.kv("predicted_cost", sample.predicted_cost);
  w.kv("snapshot_ranks",
       static_cast<unsigned long long>(sample.snapshot_ranks));
  w.kv("rest_load_sum", sample.rest_load_sum);
  w.key("top_loads").begin_array();
  for (RankLoadSample const& rl : sample.top_loads) {
    w.begin_object();
    w.kv("rank", static_cast<long long>(rl.rank));
    w.kv("load", rl.load);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void PhaseTimeline::write_json(std::ostream& os) const {
  auto const retained = samples();
  JsonWriter w{os};
  w.begin_object();
  w.kv("total_recorded", static_cast<unsigned long long>(total_recorded()));
  w.key("timeline").begin_array();
  for (PhaseSample const& sample : retained) {
    write_phase_sample(w, sample);
  }
  w.end_array();
  w.end_object();
}

} // namespace tlb::obs
