#pragma once

/// \file lb_report.hpp
/// Per-invocation LB introspection: a structured record of what one load
/// balancer run actually did — gossip propagation per round, the
/// objective/imbalance trajectory per trial iteration, transfer
/// dispositions by reason, and migration volume — exportable as JSON.
///
/// The types here are deliberately plain (ints, doubles, strings): the
/// obs layer sits below src/lb in the dependency order, so the report
/// cannot mention lb types. Strategies feed an LbReportBuilder through
/// narrow `on_*` callbacks; the builder's handler-side entry points are
/// thread-safe (relaxed atomics), the driver-side ones are called between
/// quiescent points only.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace tlb::obs {

/// Aggregate gossip statistics for one round index, across every inform
/// epoch of the invocation (the inform stage reruns per iteration, so
/// round r's slot sums over all iterations' round-r messages).
struct GossipRoundReport {
  int round = 0;
  std::uint64_t messages = 0;     ///< gossip messages received this round
  std::uint64_t full_messages = 0; ///< of those, full-snapshot payloads
                                   ///< (rest are deltas; see GossipWire)
  std::uint64_t bytes = 0;        ///< wire bytes of those messages
  std::uint64_t knowledge_min = 0; ///< smallest post-merge knowledge size
  std::uint64_t knowledge_max = 0; ///< largest post-merge knowledge size
  double knowledge_avg = 0.0;      ///< mean post-merge knowledge size
};

/// One (trial, iteration) step of Algorithm 3's refinement loop.
struct TrialIterationReport {
  int trial = 0;
  int iteration = 0;
  double imbalance = 0.0; ///< proposed I after this iteration's transfers
  double objective = 0.0; ///< F(D) = I_D − h + 1 for this iteration
  /// Running minimum of `objective` within the trial, seeded from the
  /// initial placement. Non-increasing by construction — mirroring the
  /// keep-best semantics of Algorithm 3 line 10 and Lemma 1.
  double objective_best = 0.0;
  // Deltas for this iteration (not cumulative):
  std::uint64_t transfers_accepted = 0;
  std::uint64_t transfers_rejected = 0; ///< criterion said no
  std::uint64_t transfers_no_target = 0; ///< CMF had no sampleable rank
  std::uint64_t transfer_nacks = 0;      ///< recipient bounced the task
  std::uint64_t cmf_rebuilds = 0;        ///< O(n) CMF (re)constructions
};

/// Everything one LB invocation reported.
struct LbInvocationReport {
  std::size_t phase = 0;
  std::string strategy;
  double threshold = 0.0; ///< h
  double initial_imbalance = 0.0;
  double final_imbalance = 0.0;
  // Invocation totals:
  std::uint64_t transfers_accepted = 0;
  std::uint64_t transfers_rejected = 0;
  std::uint64_t transfers_no_target = 0;
  std::uint64_t transfer_nacks = 0;
  std::uint64_t cmf_rebuilds = 0;
  std::uint64_t migration_count = 0;
  std::uint64_t migration_bytes = 0;
  std::vector<GossipRoundReport> rounds;
  std::vector<TrialIterationReport> iterations;
};

/// Write `reports` as a JSON document: {"lb_reports": [...]}.
void write_lb_reports_json(std::ostream& os,
                           std::vector<LbInvocationReport> const& reports);

/// Accumulates one invocation's introspection. Lifecycle:
///
///   1. driver: set_strategy / set_threshold / set_initial_imbalance;
///   2. handlers (any thread): on_gossip_message / on_transfer_pass /
///      on_nack as the protocol runs;
///   3. driver, at the quiescent point closing each iteration:
///      on_trial_iteration — snapshots the cumulative transfer counters
///      and records the delta attributable to that iteration;
///   4. driver: set_final, then finish() to assemble the report.
class LbReportBuilder {
public:
  /// Round slots are fixed so handler-side recording is allocation-free;
  /// the protocol caps rounds at 63 (a std::uint64_t forwarded bitmask).
  static constexpr std::size_t max_rounds = 64;

  void set_strategy(std::string name) { strategy_ = std::move(name); }
  void set_threshold(double h) { threshold_ = h; }
  void set_initial_imbalance(double i0) { initial_imbalance_ = i0; }

  /// Handler-side: one gossip message arrived for `round`, carrying
  /// `wire_bytes`, leaving the receiver with `knowledge_size` known ranks.
  /// `full_snapshot` distinguishes full payloads from deltas (GossipWire).
  void on_gossip_message(int round, std::uint64_t wire_bytes,
                         std::size_t knowledge_size,
                         bool full_snapshot = true);

  /// Bulk variant for sequential emulations that aggregate a whole round
  /// before reporting: `messages` deliveries (`full_messages` of them
  /// full snapshots) totalling `bytes`, with the given min/max/sum of
  /// post-merge knowledge sizes. No-op if messages == 0.
  void on_gossip_round(int round, std::uint64_t messages,
                       std::uint64_t full_messages, std::uint64_t bytes,
                       std::uint64_t knowledge_min, std::uint64_t knowledge_max,
                       std::uint64_t knowledge_sum);

  /// Handler-side: one rank finished its transfer pass (Algorithm 2).
  void on_transfer_pass(std::uint64_t accepted, std::uint64_t rejected,
                        std::uint64_t no_target, std::uint64_t cmf_rebuilds);

  /// Handler-side: a recipient refused a proposed task (Menon NACK).
  void on_nack() { nacks_.fetch_add(1, std::memory_order_relaxed); }

  /// Driver-side, between quiescent points: record the evaluation of one
  /// (trial, iteration) step with its proposed imbalance.
  void on_trial_iteration(int trial, int iteration, double imbalance);

  /// Driver-side: final placement outcome.
  void set_final(double final_imbalance, std::uint64_t migration_count,
                 std::uint64_t migration_bytes);

  /// Assemble the report (driver-side, after the invocation quiesced).
  [[nodiscard]] LbInvocationReport finish(std::size_t phase) const;

private:
  struct RoundSlot {
    std::atomic<std::uint64_t> messages{0};
    std::atomic<std::uint64_t> full_messages{0};
    std::atomic<std::uint64_t> bytes{0};
    std::atomic<std::uint64_t> knowledge_sum{0};
    std::atomic<std::uint64_t> knowledge_min{UINT64_MAX};
    std::atomic<std::uint64_t> knowledge_max{0};
  };

  // Metadata + driver-side state (single-threaded access).
  std::string strategy_;
  double threshold_ = 0.0;
  double initial_imbalance_ = 0.0;
  double final_imbalance_ = 0.0;
  std::uint64_t migration_count_ = 0;
  std::uint64_t migration_bytes_ = 0;
  std::vector<TrialIterationReport> iterations_;
  int current_trial_ = -1;
  double trial_best_ = 0.0;
  // Cumulative counter values as of the last on_trial_iteration call,
  // for computing per-iteration deltas.
  std::uint64_t seen_accepted_ = 0;
  std::uint64_t seen_rejected_ = 0;
  std::uint64_t seen_no_target_ = 0;
  std::uint64_t seen_nacks_ = 0;
  std::uint64_t seen_cmf_rebuilds_ = 0;

  // Handler-side accumulators (any thread, relaxed).
  RoundSlot rounds_[max_rounds];
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> no_target_{0};
  std::atomic<std::uint64_t> nacks_{0};
  std::atomic<std::uint64_t> cmf_rebuilds_{0};
};

} // namespace tlb::obs
