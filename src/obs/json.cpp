#include "obs/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>
#include <system_error>

#include "support/assert.hpp"

namespace tlb::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char const c : s) {
    switch (c) {
    case '"': out += "\\\""; break;
    case '\\': out += "\\\\"; break;
    case '\b': out += "\\b"; break;
    case '\f': out += "\\f"; break;
    case '\n': out += "\\n"; break;
    case '\r': out += "\\r"; break;
    case '\t': out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(c)));
        out += buf;
      } else {
        out += c;
      }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) {
    return "null";
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", value);
  return buf;
}

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_{&os}, indent_{indent} {
  TLB_EXPECTS(indent >= 0);
}

void JsonWriter::separate() {
  if (after_key_) {
    // Value following its key: no comma, no newline.
    after_key_ = false;
    return;
  }
  if (needs_comma_) {
    *os_ << ',';
  }
  if (indent_ > 0 && !stack_.empty()) {
    *os_ << '\n'
         << std::string(static_cast<std::size_t>(indent_) * stack_.size(),
                        ' ');
  }
}

void JsonWriter::open(char c) {
  separate();
  *os_ << c;
  stack_.push_back(c);
  needs_comma_ = false;
}

void JsonWriter::close(char c) {
  TLB_EXPECTS(!stack_.empty() && stack_.back() == c);
  TLB_EXPECTS(!after_key_);
  stack_.pop_back();
  if (indent_ > 0 && needs_comma_) {
    *os_ << '\n'
         << std::string(static_cast<std::size_t>(indent_) * stack_.size(),
                        ' ');
  }
  *os_ << (c == '{' ? '}' : ']');
  needs_comma_ = true;
  if (stack_.empty() && indent_ > 0) {
    *os_ << '\n';
  }
}

void JsonWriter::raw(std::string_view token) {
  separate();
  *os_ << token;
  needs_comma_ = true;
}

JsonWriter& JsonWriter::begin_object() {
  open('{');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  close('{');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  open('[');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  close('[');
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  TLB_EXPECTS(!stack_.empty() && stack_.back() == '{');
  TLB_EXPECTS(!after_key_);
  separate();
  *os_ << '"' << json_escape(k) << "\":";
  if (indent_ > 0) {
    *os_ << ' ';
  }
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  raw('"' + json_escape(v) + '"');
  return *this;
}

JsonWriter& JsonWriter::value(char const* v) {
  return value(std::string_view{v});
}

JsonWriter& JsonWriter::value(double v) {
  raw(json_number(v));
  return *this;
}

JsonWriter& JsonWriter::value(long long v) {
  raw(std::to_string(v));
  return *this;
}

JsonWriter& JsonWriter::value(unsigned long long v) {
  raw(std::to_string(v));
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  return value(static_cast<long long>(v));
}

JsonWriter& JsonWriter::value(std::size_t v) {
  return value(static_cast<unsigned long long>(v));
}

JsonWriter& JsonWriter::value(bool v) {
  raw(v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value_null() {
  raw("null");
  return *this;
}

std::ofstream open_output_file(std::string const& path) {
  std::ofstream os{path};
  if (!os) {
    int const err = errno;
    throw std::runtime_error("cannot open output file '" + path +
                             "': " + std::generic_category().message(err));
  }
  return os;
}

} // namespace tlb::obs
