#include "obs/flight_recorder.hpp"

#if TLB_TELEMETRY_ENABLED

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/causal.hpp"
#include "obs/json.hpp"
#include "obs/phase_timeline.hpp"
#include "obs/registry.hpp"
#include "support/check.hpp"
#include "support/spinlock.hpp"
#include "support/thread_annotations.hpp"

namespace tlb::obs {

namespace {

/// First trigger wins; tests re-arm explicitly.
std::atomic<bool> g_dumped{false};

SpinLock g_path_mutex;
std::string g_path_override TLB_GUARDED_BY(g_path_mutex);

/// How much of the causal log's tail the postmortem carries. The full log
/// goes to the regular --telemetry export; the postmortem only needs the
/// recent history leading up to the failure.
constexpr std::size_t kCausalTailEvents = 256;

void audit_failure_hook(char const* what) {
  // The report() caller aborts right after we return; everything here
  // must therefore complete synchronously and never throw.
  (void)dump_flight_record(what);
}

} // namespace

std::string flight_record_path() {
  {
    SpinLockGuard lock{g_path_mutex};
    if (!g_path_override.empty()) {
      return g_path_override;
    }
  }
  char const* const env = std::getenv("TLB_FLIGHT_RECORD");
  if (env != nullptr && env[0] != '\0') {
    return env;
  }
  return "tlb_flight_record.json";
}

void set_flight_record_path(std::string path) {
  SpinLockGuard lock{g_path_mutex};
  g_path_override = std::move(path);
}

bool flight_record_dumped() {
  return g_dumped.load(std::memory_order_acquire);
}

void rearm_flight_recorder() {
  g_dumped.store(false, std::memory_order_release);
}

void install_flight_recorder() {
  audit::set_failure_hook(&audit_failure_hook);
}

std::string dump_flight_record(char const* reason) {
  if (!enabled()) {
    return {};
  }
  if (g_dumped.exchange(true, std::memory_order_acq_rel)) {
    return {};
  }
  std::string const path = flight_record_path();
  // Plain ofstream, not open_output_file: this runs on abort paths where
  // a throw would turn a diagnosed failure into std::terminate.
  std::ofstream os{path};
  if (!os) {
    std::fprintf(stderr, "tlb: flight recorder: cannot open %s\n",
                 path.c_str());
    return {};
  }
  auto const timeline = PhaseTimeline::instance().samples();
  auto causal = CausalLog::instance().snapshot();
  auto metrics = registry().snapshot();
  sort_samples(metrics);

  JsonWriter w{os};
  w.begin_object();
  w.kv("reason", reason);
  w.kv("step",
       static_cast<unsigned long long>(CausalLog::instance().step()));
  w.kv("timeline_total_recorded",
       static_cast<unsigned long long>(
           PhaseTimeline::instance().total_recorded()));
  w.key("timeline").begin_array();
  for (PhaseSample const& sample : timeline) {
    write_phase_sample(w, sample);
  }
  w.end_array();
  w.kv("causal_events_total", static_cast<unsigned long long>(causal.size()));
  w.key("causal_tail").begin_array();
  std::size_t const tail_start =
      causal.size() > kCausalTailEvents ? causal.size() - kCausalTailEvents
                                        : 0;
  for (std::size_t i = tail_start; i < causal.size(); ++i) {
    write_causal_event(w, causal[i]);
  }
  w.end_array();
  w.key("metrics").begin_array();
  write_metric_samples_json(w, metrics);
  w.end_array();
  w.end_object();
  os << '\n';
  os.flush();
  std::fprintf(stderr, "tlb: flight record written to %s (reason: %s)\n",
               path.c_str(), reason);
  return path;
}

} // namespace tlb::obs

#endif // TLB_TELEMETRY_ENABLED
