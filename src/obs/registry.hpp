#pragma once

/// \file registry.hpp
/// The metrics registry: named metric families with labels (per-rank,
/// per-strategy, per-category, ...), snapshotable at quiescent points and
/// exportable as JSON or Prometheus text format.
///
/// Registration (counter()/gauge()/histogram()) takes a mutex and returns
/// a stable reference; the returned metric's operations are lock-free
/// relaxed atomics. Hot paths must capture the reference once up front —
/// looking a metric up per event would serialize on the registry mutex.
///
/// Identity is (name, labels): the same name with different label sets
/// yields distinct time series (a "family"), and re-requesting an
/// existing identity returns the same instance. Requesting an existing
/// identity as a different metric kind is a contract violation.

#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metric.hpp"
#include "support/spinlock.hpp"
#include "support/thread_annotations.hpp"

namespace tlb::obs {

/// One metric label (dimension), e.g. {"category", "gossip"}.
struct Label {
  std::string key;
  std::string value;

  friend bool operator==(Label const&, Label const&) = default;
};

using Labels = std::vector<Label>;

enum class MetricKind : std::uint8_t { counter, gauge, histogram };

class JsonWriter;

/// Point-in-time copy of one metric, as read by Registry::snapshot().
struct MetricSample {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::counter;
  std::uint64_t counter_value = 0; ///< kind == counter
  std::int64_t gauge_value = 0;    ///< kind == gauge
  // kind == histogram:
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts; ///< bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;
};

class Registry {
public:
  Registry() = default;
  Registry(Registry const&) = delete;
  Registry& operator=(Registry const&) = delete;

  /// Find-or-create. Labels are canonicalized (sorted by key), so the
  /// same set in any order names the same metric.
  [[nodiscard]] Counter& counter(std::string_view name, Labels labels = {});
  [[nodiscard]] Gauge& gauge(std::string_view name, Labels labels = {});
  /// `bounds` are the ascending bucket upper bounds; ignored (the
  /// existing instance wins) when the identity is already registered.
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::vector<double> bounds,
                                     Labels labels = {});

  /// Point-in-time copy of every registered metric, in registration
  /// order. Call at quiescent points; concurrent updates are not torn
  /// (each field is an atomic) but may be mid-flight.
  [[nodiscard]] std::vector<MetricSample> snapshot() const
      TLB_EXCLUDES(mutex_);

  /// Export the snapshot as a JSON document:
  ///   {"metrics": [{"name": ..., "labels": {...}, "kind": ...,
  ///                 "value": ...}, ...]}
  /// Families and label sets are sorted (see sort_samples), so the output
  /// is byte-stable across runs regardless of registration order.
  void write_json(std::ostream& os) const;

  /// Export in the Prometheus text exposition format, in the same sorted
  /// order as write_json. Dots in metric names become underscores
  /// (`net.messages` -> `net_messages`).
  void write_prometheus(std::ostream& os) const;

  [[nodiscard]] std::size_t size() const TLB_EXCLUDES(mutex_);

  /// Drop every registered metric (tests and between-run resets; any
  /// previously returned references are invalidated).
  void clear() TLB_EXCLUDES(mutex_);

private:
  struct Entry {
    std::string name;
    Labels labels;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// Constructs the metric object under the registry mutex so that two
  /// threads racing to register the same identity both get the one
  /// instance (`bounds` is consumed only for a new histogram entry).
  Entry& find_or_create(std::string_view name, Labels&& labels,
                        MetricKind kind, std::vector<double>&& bounds = {})
      TLB_EXCLUDES(mutex_);

  /// Guards registration and snapshotting; the returned metric objects
  /// themselves are lock-free atomics and are never guarded.
  mutable SpinLock mutex_;
  std::vector<std::unique_ptr<Entry>> entries_
      TLB_GUARDED_BY(mutex_); ///< registration order
};

/// Sort samples into the canonical export order — by name, then by the
/// (already key-canonicalized) label vector — so exports and golden
/// files diff stably no matter which code path registered first.
void sort_samples(std::vector<MetricSample>& samples);

/// Serialize `samples` as a JSON array of metric objects through an
/// already-open writer scope (the body of write_json's "metrics" array;
/// shared with the flight recorder's postmortem document). Does not sort.
void write_metric_samples_json(JsonWriter& w,
                               std::vector<MetricSample> const& samples);

/// The process-wide default registry (what the runtime fold-in and the
/// examples use). Individual components may still own private registries.
[[nodiscard]] Registry& registry();

} // namespace tlb::obs
