#pragma once

/// \file json_in.hpp
/// Minimal recursive-descent JSON parser: just enough to parse back what
/// the obs layer emits (objects, arrays, strings, numbers, booleans,
/// null). Originally the telemetry tests' mini_json helper, promoted here
/// so tools/tlb_report can ingest trace/metrics/timeline documents with
/// the same code the tests assert round-trips with. Throws
/// std::runtime_error on malformed input.

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace tlb::obs {

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v = nullptr;

  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(v);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<std::shared_ptr<JsonArray>>(v);
  }
  [[nodiscard]] JsonObject const& object() const {
    return *std::get<std::shared_ptr<JsonObject>>(v);
  }
  [[nodiscard]] JsonArray const& array() const {
    return *std::get<std::shared_ptr<JsonArray>>(v);
  }
  [[nodiscard]] std::string const& str() const {
    return std::get<std::string>(v);
  }
  [[nodiscard]] double num() const { return std::get<double>(v); }
  [[nodiscard]] bool boolean() const { return std::get<bool>(v); }

  /// Object member access; throws if absent.
  [[nodiscard]] JsonValue const& at(std::string const& key) const {
    auto const& obj = object();
    auto const it = obj.find(key);
    if (it == obj.end()) {
      throw std::runtime_error("json_in: missing key '" + key + "'");
    }
    return it->second;
  }
  [[nodiscard]] bool has(std::string const& key) const {
    return object().count(key) > 0;
  }
};

class JsonParser {
public:
  explicit JsonParser(std::string_view text) : text_{text} {}

  [[nodiscard]] JsonValue parse() {
    auto value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters");
    }
    return value;
  }

private:
  [[noreturn]] void fail(std::string const& what) const {
    throw std::runtime_error("json_in: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string{"expected '"} + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    switch (peek()) {
    case '{': return parse_object();
    case '[': return parse_array();
    case '"': return JsonValue{parse_string()};
    case 't':
      if (consume_literal("true")) {
        return JsonValue{true};
      }
      fail("bad literal");
    case 'f':
      if (consume_literal("false")) {
        return JsonValue{false};
      }
      fail("bad literal");
    case 'n':
      if (consume_literal("null")) {
        return JsonValue{nullptr};
      }
      fail("bad literal");
    default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    auto obj = std::make_shared<JsonObject>();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{obj};
    }
    while (true) {
      if (peek() != '"') {
        fail("expected object key");
      }
      auto key = parse_string();
      expect(':');
      (*obj)[std::move(key)] = parse_value();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue{obj};
    }
  }

  JsonValue parse_array() {
    expect('[');
    auto arr = std::make_shared<JsonArray>();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{arr};
    }
    while (true) {
      arr->push_back(parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue{arr};
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      char const c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          fail("unterminated escape");
        }
        char const e = text_[pos_++];
        switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
          }
          auto const hex = std::string{text_.substr(pos_, 4)};
          pos_ += 4;
          auto const code = std::strtoul(hex.c_str(), nullptr, 16);
          // ASCII-only emitter: codepoints above 0x7f are not produced.
          out += static_cast<char>(code);
          break;
        }
        default: fail("bad escape");
        }
        continue;
      }
      out += c;
    }
  }

  JsonValue parse_number() {
    auto const start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected number");
    }
    return JsonValue{
        std::strtod(std::string{text_.substr(start, pos_ - start)}.c_str(),
                    nullptr)};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[nodiscard]] inline JsonValue parse_json(std::string_view text) {
  return JsonParser{text}.parse();
}

} // namespace tlb::obs
