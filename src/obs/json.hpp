#pragma once

/// \file json.hpp
/// A small streaming JSON writer shared by every machine-readable export
/// in the telemetry layer (registry snapshots, Chrome traces, LB
/// introspection reports, bench results). Produces strictly valid JSON:
/// strings are escaped per RFC 8259, non-finite doubles are emitted as
/// null, and nesting/comma state is tracked so callers cannot produce
/// malformed output by construction (violations are contract failures).

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace tlb::obs {

/// Escape a string for inclusion in a JSON document (without the
/// surrounding quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Format a double as a JSON token: shortest-ish %.10g form, with NaN and
/// infinities mapped to null (JSON has no representation for them).
[[nodiscard]] std::string json_number(double value);

/// Streaming writer. `indent` > 0 pretty-prints with that many spaces per
/// nesting level; 0 writes compact single-line output (what the Chrome
/// trace uses — those files get large).
class JsonWriter {
public:
  explicit JsonWriter(std::ostream& os, int indent = 2);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Write an object key; must be followed by a value or begin_*.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(char const* v);
  JsonWriter& value(double v);
  JsonWriter& value(long long v);
  JsonWriter& value(unsigned long long v);
  JsonWriter& value(int v);
  JsonWriter& value(std::size_t v);
  JsonWriter& value(bool v);
  JsonWriter& value_null();

  /// Convenience: key + value in one call.
  template <typename T> JsonWriter& kv(std::string_view k, T const& v) {
    key(k);
    return value(v);
  }

private:
  void separate(); ///< emit comma/newline before a new element
  void open(char c);
  void close(char c);
  void raw(std::string_view token);

  std::ostream* os_;
  int indent_;
  std::vector<char> stack_;   ///< '{' or '[' per open scope
  bool needs_comma_ = false;  ///< an element was emitted at this level
  bool after_key_ = false;    ///< a key is pending its value
};

/// Open `path` for writing; throws std::runtime_error naming the path and
/// the errno string when the file cannot be created.
[[nodiscard]] std::ofstream open_output_file(std::string const& path);

} // namespace tlb::obs
