#include "obs/registry.hpp"

#include <algorithm>
#include <ostream>

#include "obs/json.hpp"
#include "support/assert.hpp"

namespace tlb::obs {

namespace {

void canonicalize(Labels& labels) {
  std::sort(labels.begin(), labels.end(),
            [](Label const& a, Label const& b) { return a.key < b.key; });
}

bool same_identity(std::string_view name, Labels const& labels,
                   std::string_view other_name, Labels const& other_labels) {
  return name == other_name && labels == other_labels;
}

/// `net.messages` -> `net_messages` (Prometheus name charset).
std::string prometheus_name(std::string_view name) {
  std::string out{name};
  for (char& c : out) {
    bool const ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) {
      c = '_';
    }
  }
  return out;
}

void prometheus_labels(std::ostream& os, Labels const& labels) {
  if (labels.empty()) {
    return;
  }
  os << '{';
  bool first = true;
  for (Label const& l : labels) {
    if (!first) {
      os << ',';
    }
    first = false;
    os << prometheus_name(l.key) << "=\"" << json_escape(l.value) << '"';
  }
  os << '}';
}

} // namespace

Registry::Entry& Registry::find_or_create(std::string_view name,
                                          Labels&& labels, MetricKind kind,
                                          std::vector<double>&& bounds) {
  canonicalize(labels);
  SpinLockGuard lock{mutex_};
  for (auto const& entry : entries_) {
    if (same_identity(name, labels, entry->name, entry->labels)) {
      TLB_EXPECTS(entry->kind == kind);
      return *entry;
    }
  }
  // The metric object must be constructed while the mutex is still held:
  // two threads racing to register the same identity must both observe
  // the same fully-built instance, never a null slot they then both fill.
  auto entry = std::make_unique<Entry>();
  entry->name = std::string{name};
  entry->labels = std::move(labels);
  entry->kind = kind;
  switch (kind) {
  case MetricKind::counter:
    entry->counter = std::make_unique<Counter>();
    break;
  case MetricKind::gauge:
    entry->gauge = std::make_unique<Gauge>();
    break;
  case MetricKind::histogram:
    entry->histogram = std::make_unique<Histogram>(std::move(bounds));
    break;
  }
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& Registry::counter(std::string_view name, Labels labels) {
  return *find_or_create(name, std::move(labels), MetricKind::counter).counter;
}

Gauge& Registry::gauge(std::string_view name, Labels labels) {
  return *find_or_create(name, std::move(labels), MetricKind::gauge).gauge;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds, Labels labels) {
  return *find_or_create(name, std::move(labels), MetricKind::histogram,
                         std::move(bounds))
              .histogram;
}

std::vector<MetricSample> Registry::snapshot() const {
  SpinLockGuard lock{mutex_};
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (auto const& entry : entries_) {
    MetricSample sample;
    sample.name = entry->name;
    sample.labels = entry->labels;
    sample.kind = entry->kind;
    switch (entry->kind) {
    case MetricKind::counter:
      sample.counter_value = entry->counter->value();
      break;
    case MetricKind::gauge:
      sample.gauge_value = entry->gauge->value();
      break;
    case MetricKind::histogram: {
      Histogram const& h = *entry->histogram;
      sample.bounds = h.bounds();
      sample.bucket_counts.reserve(h.num_buckets());
      for (std::size_t i = 0; i < h.num_buckets(); ++i) {
        sample.bucket_counts.push_back(h.bucket_count(i));
      }
      sample.count = h.count();
      sample.sum = h.sum();
      break;
    }
    }
    out.push_back(std::move(sample));
  }
  return out;
}

std::size_t Registry::size() const {
  SpinLockGuard lock{mutex_};
  return entries_.size();
}

void Registry::clear() {
  SpinLockGuard lock{mutex_};
  entries_.clear();
}

void sort_samples(std::vector<MetricSample>& samples) {
  std::sort(samples.begin(), samples.end(),
            [](MetricSample const& a, MetricSample const& b) {
              if (a.name != b.name) {
                return a.name < b.name;
              }
              return std::lexicographical_compare(
                  a.labels.begin(), a.labels.end(), b.labels.begin(),
                  b.labels.end(), [](Label const& x, Label const& y) {
                    if (x.key != y.key) {
                      return x.key < y.key;
                    }
                    return x.value < y.value;
                  });
            });
}

void write_metric_samples_json(JsonWriter& w,
                               std::vector<MetricSample> const& samples) {
  for (MetricSample const& s : samples) {
    w.begin_object();
    w.kv("name", s.name);
    w.key("labels").begin_object();
    for (Label const& l : s.labels) {
      w.kv(l.key, l.value);
    }
    w.end_object();
    switch (s.kind) {
    case MetricKind::counter:
      w.kv("kind", "counter");
      w.kv("value", static_cast<unsigned long long>(s.counter_value));
      break;
    case MetricKind::gauge:
      w.kv("kind", "gauge");
      w.kv("value", static_cast<long long>(s.gauge_value));
      break;
    case MetricKind::histogram:
      w.kv("kind", "histogram");
      w.kv("count", static_cast<unsigned long long>(s.count));
      w.kv("sum", s.sum);
      w.key("bounds").begin_array();
      for (double const b : s.bounds) {
        w.value(b);
      }
      w.end_array();
      w.key("buckets").begin_array();
      for (std::uint64_t const c : s.bucket_counts) {
        w.value(static_cast<unsigned long long>(c));
      }
      w.end_array();
      break;
    }
    w.end_object();
  }
}

void Registry::write_json(std::ostream& os) const {
  auto samples = snapshot();
  sort_samples(samples);
  JsonWriter w{os};
  w.begin_object();
  w.key("metrics").begin_array();
  write_metric_samples_json(w, samples);
  w.end_array();
  w.end_object();
}

void Registry::write_prometheus(std::ostream& os) const {
  auto samples = snapshot();
  sort_samples(samples);
  // TYPE lines are emitted once per family (first occurrence of a name).
  std::vector<std::string> typed;
  for (MetricSample const& s : samples) {
    std::string const name = prometheus_name(s.name);
    if (std::find(typed.begin(), typed.end(), name) == typed.end()) {
      typed.push_back(name);
      char const* kind = s.kind == MetricKind::counter ? "counter"
                         : s.kind == MetricKind::gauge ? "gauge"
                                                       : "histogram";
      os << "# TYPE " << name << ' ' << kind << '\n';
    }
    switch (s.kind) {
    case MetricKind::counter:
      os << name;
      prometheus_labels(os, s.labels);
      os << ' ' << s.counter_value << '\n';
      break;
    case MetricKind::gauge:
      os << name;
      prometheus_labels(os, s.labels);
      os << ' ' << s.gauge_value << '\n';
      break;
    case MetricKind::histogram: {
      // Cumulative le-buckets, then the +Inf bucket, sum, and count.
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < s.bounds.size(); ++i) {
        cumulative += s.bucket_counts[i];
        Labels with_le = s.labels;
        with_le.push_back(Label{"le", json_number(s.bounds[i])});
        os << name << "_bucket";
        prometheus_labels(os, with_le);
        os << ' ' << cumulative << '\n';
      }
      cumulative += s.bucket_counts.back();
      Labels inf = s.labels;
      inf.push_back(Label{"le", "+Inf"});
      os << name << "_bucket";
      prometheus_labels(os, inf);
      os << ' ' << cumulative << '\n';
      os << name << "_sum";
      prometheus_labels(os, s.labels);
      os << ' ' << json_number(s.sum) << '\n';
      os << name << "_count";
      prometheus_labels(os, s.labels);
      os << ' ' << s.count << '\n';
      break;
    }
    }
  }
}

Registry& registry() {
  static Registry instance;
  return instance;
}

} // namespace tlb::obs
