#pragma once

/// \file telemetry.hpp
/// Master switch for the telemetry layer (metrics registry, event tracer,
/// LB introspection). Follows the TLB_AUDIT pattern from
/// support/check.hpp: a compile-time gate plus a runtime flag, so telemetry
/// is zero-cost when compiled out and one relaxed atomic load when merely
/// switched off.
///
/// Compile-time: the build defines TLB_TELEMETRY_ENABLED=1 when configured
/// with `-DTLB_TELEMETRY=ON` (the default). With the gate off, enabled()
/// is a constant false, the trace macros in tracer.hpp expand to nothing,
/// and every telemetry call site folds away.
///
/// Runtime: even when compiled in, telemetry starts OFF. It is switched on
/// either programmatically (set_enabled(true), what the `--telemetry`
/// flags in the examples do) or through the environment variable
/// `TLB_TELEMETRY=1`, read once on first query.

#ifndef TLB_TELEMETRY_ENABLED
#define TLB_TELEMETRY_ENABLED 0
#endif

namespace tlb::obs {

#if TLB_TELEMETRY_ENABLED

/// True when telemetry is compiled in AND switched on (programmatically or
/// via `TLB_TELEMETRY=1` in the environment). Hot paths may call this
/// freely: it is a single relaxed atomic load after the first call.
[[nodiscard]] bool enabled();

/// Switch telemetry on/off at runtime (overrides the environment).
void set_enabled(bool on);

#else

[[nodiscard]] constexpr bool enabled() { return false; }
constexpr void set_enabled(bool) {}

#endif

} // namespace tlb::obs
