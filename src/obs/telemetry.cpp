#include "obs/telemetry.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "obs/flight_recorder.hpp"

namespace tlb::obs {

#if TLB_TELEMETRY_ENABLED

namespace {

/// -1 = not yet resolved from the environment, 0 = off, 1 = on.
std::atomic<int> g_state{-1};

int resolve_from_env() {
  char const* const env = std::getenv("TLB_TELEMETRY");
  int const on =
      env != nullptr && std::strcmp(env, "0") != 0 ? 1 : 0;
  int expected = -1;
  // Another thread may have resolved (or set_enabled) concurrently; their
  // value wins.
  g_state.compare_exchange_strong(expected, on, std::memory_order_relaxed);
  int const state = g_state.load(std::memory_order_relaxed);
  if (state == 1) {
    install_flight_recorder();
  }
  return state;
}

} // namespace

bool enabled() {
  int const state = g_state.load(std::memory_order_relaxed);
  if (state >= 0) {
    return state == 1;
  }
  return resolve_from_env() == 1;
}

void set_enabled(bool on) {
  g_state.store(on ? 1 : 0, std::memory_order_relaxed);
  if (on) {
    // Arm the invariant-failure trigger: telemetry on means there is a
    // black box worth dumping when an abort-mode violation fires.
    install_flight_recorder();
  }
}

#endif

} // namespace tlb::obs
