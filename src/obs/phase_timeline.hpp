#pragma once

/// \file phase_timeline.hpp
/// Per-phase time series of the quantities the paper's story is about:
/// how rank-load spread, imbalance λ, migration volume, and LB invocation
/// cost evolve across phases of a time-varying workload. One PhaseSample
/// is recorded per LB invocation (by LbManager::invoke when telemetry is
/// enabled) into a process-wide bounded ring buffer; the same buffer is
/// the flight recorder's postmortem payload, so the last `capacity`
/// phases are always available when an invariant fires or a crash
/// triggers — an always-on black box, not just an export.
///
/// Exported as a JSON time series ({"timeline": [...]}) consumed by
/// tools/tlb_report's imbalance-evolution table.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "support/spinlock.hpp"
#include "support/thread_annotations.hpp"

namespace tlb::obs {

class JsonWriter;

/// One retained (rank, load) pair of a truncated per-rank snapshot.
struct RankLoadSample {
  std::int32_t rank = -1;
  double load = 0.0;
};

/// One LB invocation's phase record. Plain ints/doubles/strings only: the
/// obs layer sits below src/lb, so nothing here may mention lb types.
struct PhaseSample {
  std::uint64_t phase = 0;
  std::string strategy;
  /// Pre-LB measured rank-load distribution.
  double load_min = 0.0;
  double load_max = 0.0;
  double load_avg = 0.0;
  double load_stddev = 0.0;
  /// The paper's imbalance metric λ = max/avg − 1, before and after.
  double imbalance_before = 0.0;
  double imbalance_after = 0.0;
  std::uint64_t migrations = 0;
  std::uint64_t migration_bytes = 0;
  /// LB protocol traffic (gossip + transfer control messages).
  std::uint64_t lb_messages = 0;
  std::uint64_t lb_bytes = 0;
  /// Wall time of the invocation (decide + migrate), tracer clock.
  std::int64_t lb_wall_us = 0;
  std::uint64_t aborted_rounds = 0;
  /// Fault-plane outcome deltas across the invocation (all zero without
  /// an installed fault plane).
  std::uint64_t faults_dropped = 0;
  std::uint64_t faults_delayed = 0;
  std::uint64_t faults_duplicated = 0;
  std::uint64_t faults_retried = 0;
  /// Adaptive-invocation decision context. lb_invoked is false when the
  /// trigger policy skipped the balancer this phase (migration/cost
  /// fields are then zero); policy/decision_reason stay empty for
  /// unconditioned invocations.
  bool lb_invoked = true;
  std::string policy;
  std::string decision_reason;
  /// Forecast next-phase imbalance λ̂ and the forecaster's trailing
  /// relative-L1 error EMA at decision time (0 when not forecasting).
  double forecast_imbalance = 0.0;
  double forecast_error = 0.0;
  /// The cost/benefit pair the decision weighed (seconds; 0 when n/a).
  double predicted_gain = 0.0;
  double predicted_cost = 0.0;
  /// Per-rank pre-LB load snapshot, truncated to the top-k loaded ranks
  /// plus the summed remainder so the ring's memory stays bounded.
  /// snapshot_ranks is the full rank count the snapshot was taken over
  /// (0 when no snapshot was recorded).
  std::uint32_t snapshot_ranks = 0;
  std::vector<RankLoadSample> top_loads;
  double rest_load_sum = 0.0;
};

/// Bounded ring of PhaseSamples. Overflow overwrites the oldest sample —
/// the opposite policy from the Tracer's drop-newest, because a flight
/// recorder must favor the most recent history.
class PhaseTimeline {
public:
  [[nodiscard]] static PhaseTimeline& instance();

  explicit PhaseTimeline(std::size_t capacity = 1024);
  PhaseTimeline(PhaseTimeline const&) = delete;
  PhaseTimeline& operator=(PhaseTimeline const&) = delete;

  void record(PhaseSample sample) TLB_EXCLUDES(mutex_);

  /// Retained samples, oldest first.
  [[nodiscard]] std::vector<PhaseSample> samples() const TLB_EXCLUDES(mutex_);
  /// Lifetime total recorded (>= samples().size(); the difference is what
  /// the ring has already forgotten).
  [[nodiscard]] std::uint64_t total_recorded() const TLB_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  void clear() TLB_EXCLUDES(mutex_);

  /// How many per-rank loads a snapshot keeps verbatim before the rest is
  /// collapsed into rest_load_sum (default 8). Clear() does not reset it.
  void set_snapshot_top_k(std::size_t k) TLB_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t snapshot_top_k() const TLB_EXCLUDES(mutex_);

  /// Write the retained series as {"timeline": [...], "total_recorded": N}.
  void write_json(std::ostream& os) const TLB_EXCLUDES(mutex_);

private:
  std::size_t const capacity_;
  mutable SpinLock mutex_;
  std::vector<PhaseSample> ring_ TLB_GUARDED_BY(mutex_);
  std::size_t head_ TLB_GUARDED_BY(mutex_) = 0; ///< next write position
  std::uint64_t total_ TLB_GUARDED_BY(mutex_) = 0;
  std::size_t snapshot_top_k_ TLB_GUARDED_BY(mutex_) = 8;
};

/// Fill `sample`'s snapshot fields from a full per-rank load vector: the
/// `top_k` highest-loaded ranks verbatim (load descending, rank ascending
/// on ties — deterministic for goldens), everything else summed into
/// rest_load_sum. top_k == 0 records only snapshot_ranks and the total.
void snapshot_loads(PhaseSample& sample, std::span<double const> loads,
                    std::size_t top_k);

/// Serialize one sample through an already-open writer scope — shared by
/// PhaseTimeline::write_json and the flight recorder.
void write_phase_sample(JsonWriter& w, PhaseSample const& sample);

} // namespace tlb::obs
