#pragma once

/// \file phase_timeline.hpp
/// Per-phase time series of the quantities the paper's story is about:
/// how rank-load spread, imbalance λ, migration volume, and LB invocation
/// cost evolve across phases of a time-varying workload. One PhaseSample
/// is recorded per LB invocation (by LbManager::invoke when telemetry is
/// enabled) into a process-wide bounded ring buffer; the same buffer is
/// the flight recorder's postmortem payload, so the last `capacity`
/// phases are always available when an invariant fires or a crash
/// triggers — an always-on black box, not just an export.
///
/// Exported as a JSON time series ({"timeline": [...]}) consumed by
/// tools/tlb_report's imbalance-evolution table.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "support/spinlock.hpp"
#include "support/thread_annotations.hpp"

namespace tlb::obs {

class JsonWriter;

/// One LB invocation's phase record. Plain ints/doubles/strings only: the
/// obs layer sits below src/lb, so nothing here may mention lb types.
struct PhaseSample {
  std::uint64_t phase = 0;
  std::string strategy;
  /// Pre-LB measured rank-load distribution.
  double load_min = 0.0;
  double load_max = 0.0;
  double load_avg = 0.0;
  double load_stddev = 0.0;
  /// The paper's imbalance metric λ = max/avg − 1, before and after.
  double imbalance_before = 0.0;
  double imbalance_after = 0.0;
  std::uint64_t migrations = 0;
  std::uint64_t migration_bytes = 0;
  /// LB protocol traffic (gossip + transfer control messages).
  std::uint64_t lb_messages = 0;
  std::uint64_t lb_bytes = 0;
  /// Wall time of the invocation (decide + migrate), tracer clock.
  std::int64_t lb_wall_us = 0;
  std::uint64_t aborted_rounds = 0;
  /// Fault-plane outcome deltas across the invocation (all zero without
  /// an installed fault plane).
  std::uint64_t faults_dropped = 0;
  std::uint64_t faults_delayed = 0;
  std::uint64_t faults_duplicated = 0;
  std::uint64_t faults_retried = 0;
};

/// Bounded ring of PhaseSamples. Overflow overwrites the oldest sample —
/// the opposite policy from the Tracer's drop-newest, because a flight
/// recorder must favor the most recent history.
class PhaseTimeline {
public:
  [[nodiscard]] static PhaseTimeline& instance();

  explicit PhaseTimeline(std::size_t capacity = 1024);
  PhaseTimeline(PhaseTimeline const&) = delete;
  PhaseTimeline& operator=(PhaseTimeline const&) = delete;

  void record(PhaseSample sample) TLB_EXCLUDES(mutex_);

  /// Retained samples, oldest first.
  [[nodiscard]] std::vector<PhaseSample> samples() const TLB_EXCLUDES(mutex_);
  /// Lifetime total recorded (>= samples().size(); the difference is what
  /// the ring has already forgotten).
  [[nodiscard]] std::uint64_t total_recorded() const TLB_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  void clear() TLB_EXCLUDES(mutex_);

  /// Write the retained series as {"timeline": [...], "total_recorded": N}.
  void write_json(std::ostream& os) const TLB_EXCLUDES(mutex_);

private:
  std::size_t const capacity_;
  mutable SpinLock mutex_;
  std::vector<PhaseSample> ring_ TLB_GUARDED_BY(mutex_);
  std::size_t head_ TLB_GUARDED_BY(mutex_) = 0; ///< next write position
  std::uint64_t total_ TLB_GUARDED_BY(mutex_) = 0;
};

/// Serialize one sample through an already-open writer scope — shared by
/// PhaseTimeline::write_json and the flight recorder.
void write_phase_sample(JsonWriter& w, PhaseSample const& sample);

} // namespace tlb::obs
