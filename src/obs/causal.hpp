#pragma once

/// \file causal.hpp
/// Causal tracing: every envelope sent while telemetry is enabled carries
/// a CausalStamp (origin rank, LB step, parent span id, hop count); the
/// runtime stamps it at send time from the stamp of the message whose
/// handler performed the send, so arbitrary fan-out chains — gossip
/// forwards, transfer proposals, migration payloads, termination waves —
/// stay linked from root post to final delivery. Each delivery appends a
/// CausalEvent to the process-wide CausalLog (per-thread bounded buffers,
/// Tracer-style), and compute_critical_path() reconstructs the deepest
/// chain ending at quiescence with per-rank / per-kind wall-time
/// attribution — the "why was this step slow" reducer that tlb_report and
/// the flight recorder build on.
///
/// Identity scheme: id = ((sender_slot + 1) << 40) | per-sender sequence
/// number, where slot P is the driver. Ids are therefore unique, nonzero,
/// and — because each slot's counter is only advanced by that rank's
/// (serialized) handlers — deterministic across runs of a seeded
/// workload. A fault-plane duplicate shares its original's id: the clone
/// IS the same logical message, and the reducer treats the first recorded
/// delivery as authoritative.
///
/// Everything here is compiled out with the telemetry gate; with the gate
/// on but telemetry runtime-disabled, the only residue on the message
/// paths is the enabled() load (see bench/micro_causal.cpp).

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"
#include "support/spinlock.hpp"
#include "support/thread_annotations.hpp"
#include "support/types.hpp"

namespace tlb::obs {

/// Causal identity carried by rt::Envelope (when the telemetry gate is
/// compiled in). id == 0 marks an unstamped message (telemetry was off at
/// send time); parent == 0 marks a root (driver-posted) message.
struct CausalStamp {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  RankId origin = invalid_rank; ///< rank whose root work started the chain
  std::uint32_t step = 0;       ///< LB step/phase active at the chain root
  std::uint16_t hop = 0;        ///< distance from the chain root
};

/// One delivery, recorded after the handler ran. `kind` must be a string
/// with static storage duration (message_kind_name() literals on the
/// recording path; interned copies when parsed back by tlb_report).
struct CausalEvent {
  CausalStamp stamp;
  RankId from = invalid_rank;
  RankId to = invalid_rank;
  char const* kind = "";
  std::uint64_t bytes = 0;
  std::int64_t ts_us = 0;  ///< handler start (tracer epoch)
  std::int64_t dur_us = 0; ///< handler execution time
};

/// Process-wide delivery log: per-thread bounded ring buffers with the
/// same overflow-drops-newest discipline as the Tracer. Under the
/// sequential driver there is a single buffer and the event order is the
/// (deterministic) delivery order.
class CausalLog {
public:
  [[nodiscard]] static CausalLog& instance();

  CausalLog() = default;
  CausalLog(CausalLog const&) = delete;
  CausalLog& operator=(CausalLog const&) = delete;

  void record(CausalEvent const& event) TLB_EXCLUDES(mutex_);

  /// Current LB step, stamped onto root messages. Bumped by the LB
  /// manager at each invocation (driver-side, between quiescent points).
  [[nodiscard]] std::uint32_t step() const {
    return step_.load(std::memory_order_relaxed);
  }
  void set_step(std::uint32_t step) {
    step_.store(step, std::memory_order_relaxed);
  }

  /// All recorded events, buffers concatenated in registration order.
  /// Call at quiescent points (same caveat as Tracer::write_chrome_trace).
  [[nodiscard]] std::vector<CausalEvent> snapshot() const
      TLB_EXCLUDES(mutex_);

  /// Write the log as a JSON document:
  ///   {"step": N, "dropped": D, "events": [{...}, ...]}.
  void write_json(std::ostream& os) const TLB_EXCLUDES(mutex_);

  void clear() TLB_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t event_count() const TLB_EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t dropped() const TLB_EXCLUDES(mutex_);

  /// Ring capacity per thread. Larger than the Tracer's: a multi-phase
  /// 64-rank demo delivers tens of thousands of messages per phase and
  /// the critical path is only as good as the log's coverage.
  static constexpr std::size_t max_events_per_thread = 1u << 17;

private:
  struct ThreadBuffer {
    SpinLock mutex;
    std::vector<CausalEvent> events TLB_GUARDED_BY(mutex);
    std::uint64_t dropped TLB_GUARDED_BY(mutex) = 0;
  };

  [[nodiscard]] ThreadBuffer& local_buffer() TLB_EXCLUDES(mutex_);

  mutable SpinLock mutex_; ///< guards buffers_ (registration + drain)
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ TLB_GUARDED_BY(mutex_);
  std::atomic<std::uint32_t> step_{0};
};

/// Serialize one event as a JSON object through an already-open writer
/// scope — shared by CausalLog::write_json and the flight recorder.
class JsonWriter;
void write_causal_event(JsonWriter& w, CausalEvent const& event);

/// Wall time attributed to one key (a rank or a message kind) along the
/// critical path.
struct PathAttribution {
  std::string key;
  std::int64_t us = 0;
  std::size_t hops = 0;
};

/// The reconstructed longest causal chain. Deterministic given the event
/// set: the terminal event is the one with the greatest hop count (ties
/// broken by larger id — the latest-created among the deepest), and the
/// chain is walked back through parent ids to its root.
struct CriticalPath {
  std::vector<CausalEvent> chain; ///< root first, terminal last
  std::int64_t handler_us = 0;    ///< sum of dur_us along the chain
  /// Attribution along the chain, sorted by descending us (ties by key).
  std::vector<PathAttribution> by_rank;
  std::vector<PathAttribution> by_kind;
};

/// Reduce a delivery log to its critical path. Events with id == 0
/// (unstamped) are ignored; duplicate ids keep their first occurrence.
/// Returns an empty chain when no stamped event exists.
[[nodiscard]] CriticalPath
compute_critical_path(std::vector<CausalEvent> const& events);

} // namespace tlb::obs
