#pragma once

/// \file metric.hpp
/// The three metric primitives of the telemetry registry: monotonic
/// counters, gauges, and fixed-bucket histograms. All hot-path operations
/// are relaxed atomics — the totals are only read at quiescent points
/// (registry snapshot/export), mirroring the NetworkStats convention.
///
/// Instances are owned by the Registry and handed out by stable
/// reference; instrument a hot path by capturing the reference once, not
/// by re-looking it up per event.

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "support/assert.hpp"

namespace tlb::obs {

/// Monotonically increasing event count.
class Counter {
public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Overwrite the value. Exists for folding externally maintained
  /// counters (e.g. a NetworkStatsSnapshot) into a registry at snapshot
  /// time; instrumented hot paths should only ever inc().
  void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }

  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

private:
  std::atomic<std::uint64_t> value_{0};
};

/// A value that can move both ways (queue depths, sizes, temperatures).
class Gauge {
public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }

  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Raise the gauge to `v` if above the current value (high-watermark
  /// gauges such as max mailbox depth).
  void update_max(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram. Bucket i counts observations x with
/// bound[i-1] < x <= bound[i] (Prometheus `le` semantics); one implicit
/// overflow bucket catches x > bound.back(). Bounds are fixed at
/// construction — no resizing, no allocation on observe().
class Histogram {
public:
  explicit Histogram(std::vector<double> bounds)
      : bounds_{std::move(bounds)},
        buckets_{std::make_unique<std::atomic<std::uint64_t>[]>(
            bounds_.size() + 1)} {
    TLB_EXPECTS(!bounds_.empty());
    for (std::size_t i = 1; i < bounds_.size(); ++i) {
      TLB_EXPECTS(bounds_[i - 1] < bounds_[i]);
    }
  }

  void observe(double x) {
    // First bucket whose upper bound admits x; linear scan — bucket lists
    // are short by design (fixed, hand-chosen bounds).
    std::size_t i = 0;
    while (i < bounds_.size() && x > bounds_[i]) {
      ++i;
    }
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // C++20 atomic<double>::fetch_add via CAS for portability.
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + x,
                                       std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::vector<double> const& bounds() const { return bounds_; }
  /// bounds().size() + 1: the last entry is the overflow bucket.
  [[nodiscard]] std::size_t num_buckets() const { return bounds_.size() + 1; }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    TLB_EXPECTS(i < num_buckets());
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }

private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

} // namespace tlb::obs
