#pragma once

/// \file tracer.hpp
/// Event tracer emitting Chrome `trace_event` JSON (viewable in Perfetto
/// or chrome://tracing). Two event shapes:
///
///   - spans: RAII SpanGuard records a complete ("ph":"X") event covering
///     its scope, with an optional numeric argument;
///   - instants: point events ("ph":"i").
///
/// Recording goes to per-thread ring buffers (bounded; overflow drops the
/// newest event and counts it), drained at quiescent points by
/// write_chrome_trace(). The per-buffer mutex is uncontended on the hot
/// path — only the owning thread and a quiescent-point drain ever take
/// it — so a span costs two clock reads plus one uncontended lock.
///
/// Event names and categories must be string literals (or otherwise
/// outlive the tracer): events store the pointers, not copies.
///
/// Use through the macros so disabled builds (TLB_TELEMETRY=OFF) compile
/// the instrumentation out entirely:
///
///   TLB_SPAN("lb", "balance");
///   TLB_SPAN_ARG("rt", "drain", "n", batch_size);
///   TLB_INSTANT("rt", "term.wave");

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "obs/telemetry.hpp"
#include "support/spinlock.hpp"
#include "support/thread_annotations.hpp"

namespace tlb::obs {

struct TraceEvent {
  char const* name = nullptr;
  char const* cat = nullptr;
  std::int64_t ts_us = 0;  ///< microseconds since tracer epoch
  std::int64_t dur_us = 0; ///< complete events; ignored for instants
  bool instant = false;
  bool has_arg = false;
  char const* arg_name = nullptr;
  double arg_value = 0.0;
};

class Tracer {
public:
  /// The process-wide tracer used by the macros.
  [[nodiscard]] static Tracer& instance();

  Tracer();
  Tracer(Tracer const&) = delete;
  Tracer& operator=(Tracer const&) = delete;

  /// Microseconds since the tracer epoch (steady clock).
  [[nodiscard]] std::int64_t now_us() const;

  void record(TraceEvent const& event) TLB_EXCLUDES(mutex_);

  /// Write everything recorded so far as a Chrome trace JSON document
  /// (non-destructive). Call at quiescent points: concurrent recording
  /// into a buffer being drained serializes on that buffer's mutex, but
  /// the resulting document then reflects a mid-flight cut.
  void write_chrome_trace(std::ostream& os) const TLB_EXCLUDES(mutex_);

  /// Drop all recorded events (dropped-counts included).
  void clear() TLB_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t event_count() const TLB_EXCLUDES(mutex_);
  /// Events lost to ring-buffer overflow since the last clear().
  [[nodiscard]] std::uint64_t dropped() const TLB_EXCLUDES(mutex_);

  /// Ring capacity per thread (events). Exposed for tests.
  static constexpr std::size_t max_events_per_thread = 1u << 16;

private:
  struct ThreadBuffer {
    SpinLock mutex;
    std::vector<TraceEvent> events TLB_GUARDED_BY(mutex);
    std::uint64_t dropped TLB_GUARDED_BY(mutex) = 0;
    /// Written once before the buffer is published into buffers_ (under
    /// the tracer mutex_), immutable afterwards — no guard needed.
    std::uint32_t tid = 0;
  };

  [[nodiscard]] ThreadBuffer& local_buffer() TLB_EXCLUDES(mutex_);

  mutable SpinLock mutex_; ///< guards buffers_ (registration + drain)
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ TLB_GUARDED_BY(mutex_);
  std::int64_t epoch_ns_ = 0;
};

/// RAII span: records a complete event covering its lifetime when
/// telemetry is enabled, and is two branches otherwise.
class SpanGuard {
public:
  SpanGuard(char const* cat, char const* name) {
    if (enabled()) {
      start(cat, name);
    }
  }

  SpanGuard(char const* cat, char const* name, char const* arg_name,
            double arg_value)
      : SpanGuard{cat, name} {
    set_arg(arg_name, arg_value);
  }

  SpanGuard(SpanGuard const&) = delete;
  SpanGuard& operator=(SpanGuard const&) = delete;

  /// Attach/overwrite the span's numeric argument (e.g. a batch size
  /// known only mid-scope).
  void set_arg(char const* arg_name, double arg_value) {
    event_.has_arg = true;
    event_.arg_name = arg_name;
    event_.arg_value = arg_value;
  }

  ~SpanGuard() {
    if (active_) {
      finish();
    }
  }

private:
  void start(char const* cat, char const* name);
  void finish();

  TraceEvent event_;
  bool active_ = false;
};

/// Record a point event (no scope).
void instant(char const* cat, char const* name);
void instant(char const* cat, char const* name, char const* arg_name,
             double arg_value);

} // namespace tlb::obs

#if TLB_TELEMETRY_ENABLED

#define TLB_OBS_CONCAT_IMPL(a, b) a##b
#define TLB_OBS_CONCAT(a, b) TLB_OBS_CONCAT_IMPL(a, b)

#define TLB_SPAN(cat, name)                                                    \
  ::tlb::obs::SpanGuard TLB_OBS_CONCAT(tlb_span_, __LINE__) { cat, name }
#define TLB_SPAN_ARG(cat, name, arg_name, arg_value)                           \
  ::tlb::obs::SpanGuard TLB_OBS_CONCAT(tlb_span_, __LINE__) {                  \
    cat, name, arg_name, static_cast<double>(arg_value)                        \
  }
#define TLB_INSTANT(cat, name) ::tlb::obs::instant(cat, name)
#define TLB_INSTANT_ARG(cat, name, arg_name, arg_value)                        \
  ::tlb::obs::instant(cat, name, arg_name, static_cast<double>(arg_value))

#else

#define TLB_SPAN(cat, name) ((void)0)
#define TLB_SPAN_ARG(cat, name, arg_name, arg_value) ((void)0)
#define TLB_INSTANT(cat, name) ((void)0)
#define TLB_INSTANT_ARG(cat, name, arg_name, arg_value) ((void)0)

#endif
