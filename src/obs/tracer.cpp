#include "obs/tracer.hpp"

#include <chrono>
#include <ostream>

#include "obs/json.hpp"

namespace tlb::obs {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::Tracer() : epoch_ns_{steady_ns()} {}

std::int64_t Tracer::now_us() const {
  return (steady_ns() - epoch_ns_) / 1000;
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  // One buffer per (thread, tracer-lifetime); buffers are never removed,
  // so the cached pointer stays valid across clear().
  thread_local ThreadBuffer* cached = nullptr;
  if (cached == nullptr) {
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->events.reserve(1024);
    SpinLockGuard lock{mutex_};
    buffer->tid = static_cast<std::uint32_t>(buffers_.size());
    buffers_.push_back(std::move(buffer));
    cached = buffers_.back().get();
  }
  return *cached;
}

void Tracer::record(TraceEvent const& event) {
  ThreadBuffer& buffer = local_buffer();
  SpinLockGuard lock{buffer.mutex};
  if (buffer.events.size() >= max_events_per_thread) {
    ++buffer.dropped;
    return;
  }
  buffer.events.push_back(event);
}

void Tracer::clear() {
  SpinLockGuard lock{mutex_};
  for (auto const& buffer : buffers_) {
    SpinLockGuard buffer_lock{buffer->mutex};
    buffer->events.clear();
    buffer->dropped = 0;
  }
}

std::size_t Tracer::event_count() const {
  SpinLockGuard lock{mutex_};
  std::size_t n = 0;
  for (auto const& buffer : buffers_) {
    SpinLockGuard buffer_lock{buffer->mutex};
    n += buffer->events.size();
  }
  return n;
}

std::uint64_t Tracer::dropped() const {
  SpinLockGuard lock{mutex_};
  std::uint64_t n = 0;
  for (auto const& buffer : buffers_) {
    SpinLockGuard buffer_lock{buffer->mutex};
    n += buffer->dropped;
  }
  return n;
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  // Compact output: trace files get large and Perfetto does not care.
  JsonWriter w{os, 0};
  w.begin_object();
  w.key("traceEvents").begin_array();

  // Process metadata so Perfetto shows a sensible track name.
  w.begin_object();
  w.kv("ph", "M");
  w.kv("pid", 1);
  w.kv("tid", 0);
  w.kv("name", "process_name");
  w.key("args").begin_object();
  w.kv("name", "tempered-lb");
  w.end_object();
  w.end_object();

  SpinLockGuard lock{mutex_};
  std::uint64_t total_dropped = 0;
  for (auto const& buffer : buffers_) {
    SpinLockGuard buffer_lock{buffer->mutex};
    total_dropped += buffer->dropped;
    for (TraceEvent const& e : buffer->events) {
      w.begin_object();
      w.kv("ph", e.instant ? "i" : "X");
      w.kv("name", e.name);
      w.kv("cat", e.cat);
      w.kv("ts", static_cast<long long>(e.ts_us));
      if (!e.instant) {
        w.kv("dur", static_cast<long long>(e.dur_us));
      } else {
        w.kv("s", "t"); // instant scope: thread
      }
      w.kv("pid", 1);
      w.kv("tid", static_cast<long long>(buffer->tid));
      if (e.has_arg) {
        w.key("args").begin_object();
        w.kv(e.arg_name, e.arg_value);
        w.end_object();
      }
      w.end_object();
    }
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.kv("droppedEvents", static_cast<unsigned long long>(total_dropped));
  w.end_object();
}

void SpanGuard::start(char const* cat, char const* name) {
  active_ = true;
  event_.cat = cat;
  event_.name = name;
  event_.ts_us = Tracer::instance().now_us();
}

void SpanGuard::finish() {
  Tracer& tracer = Tracer::instance();
  event_.dur_us = tracer.now_us() - event_.ts_us;
  tracer.record(event_);
}

void instant(char const* cat, char const* name) {
  if (!enabled()) {
    return;
  }
  TraceEvent e;
  e.cat = cat;
  e.name = name;
  e.instant = true;
  e.ts_us = Tracer::instance().now_us();
  Tracer::instance().record(e);
}

void instant(char const* cat, char const* name, char const* arg_name,
             double arg_value) {
  if (!enabled()) {
    return;
  }
  TraceEvent e;
  e.cat = cat;
  e.name = name;
  e.instant = true;
  e.has_arg = true;
  e.arg_name = arg_name;
  e.arg_value = arg_value;
  e.ts_us = Tracer::instance().now_us();
  Tracer::instance().record(e);
}

} // namespace tlb::obs
