#pragma once

/// \file flight_recorder.hpp
/// The crash flight recorder: when something goes irrecoverably wrong —
/// a TLB_INVARIANT fires in abort mode, the fault plane's injected crash
/// trips, or run_until_quiescent exhausts its poll budget — the bounded
/// always-on observability buffers (phase timeline, causal-log tail,
/// metrics registry) are dumped as one JSON postmortem document before
/// the process dies or the run is abandoned. tools/tlb_report ingests
/// the dump directly.
///
/// The dump is one-shot per process: the first trigger wins, so cascading
/// failures (an invariant firing during an abort flush) cannot shred the
/// recording or spray files. Tests re-arm through rearm_flight_recorder().
///
/// Output path resolution: set_flight_record_path() override, else the
/// TLB_FLIGHT_RECORD environment variable, else "tlb_flight_record.json"
/// in the working directory.
///
/// Dumping requires telemetry to be runtime-enabled — with telemetry off
/// the buffers are empty and a postmortem would be noise (the chaos suite
/// injects crashes by the thousand). install_flight_recorder() hooks
/// audit::set_failure_hook and is called automatically when telemetry is
/// switched on; the other two triggers live in the runtime and the fault
/// plane. With the telemetry gate compiled out everything here is a
/// no-op.

#include <string>

#include "obs/telemetry.hpp"

namespace tlb::obs {

#if TLB_TELEMETRY_ENABLED

/// Write the postmortem document now, if telemetry is enabled and no dump
/// has happened yet. `reason` is recorded verbatim (an invariant message,
/// "fault_crash", "quiesce_budget_exhausted", ...). Returns the path
/// written, or "" when suppressed (disabled / already dumped) or the file
/// could not be opened (reported on stderr — never throws; this runs on
/// abort paths).
std::string dump_flight_record(char const* reason);

/// True once a dump has been written this process (until re-armed).
[[nodiscard]] bool flight_record_dumped();

/// Test hook: forget that a dump happened so the next trigger records.
void rearm_flight_recorder();

/// Where the next dump will go (see resolution order above).
[[nodiscard]] std::string flight_record_path();
/// Override the output path ("" returns to env/default resolution).
void set_flight_record_path(std::string path);

/// Install the audit failure hook so abort-mode invariant violations dump
/// before aborting. Idempotent; called by obs::set_enabled(true).
void install_flight_recorder();

#else

inline std::string dump_flight_record(char const*) { return {}; }
[[nodiscard]] inline bool flight_record_dumped() { return false; }
inline void rearm_flight_recorder() {}
[[nodiscard]] inline std::string flight_record_path() { return {}; }
inline void set_flight_record_path(std::string) {}
inline void install_flight_recorder() {}

#endif

} // namespace tlb::obs
