#include "obs/lb_report.hpp"

#include <algorithm>
#include <ostream>

#include "obs/json.hpp"

namespace tlb::obs {

namespace {

void update_atomic_min(std::atomic<std::uint64_t>& target, std::uint64_t v) {
  std::uint64_t cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void update_atomic_max(std::atomic<std::uint64_t>& target, std::uint64_t v) {
  std::uint64_t cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

} // namespace

void LbReportBuilder::on_gossip_message(int round, std::uint64_t wire_bytes,
                                        std::size_t knowledge_size,
                                        bool full_snapshot) {
  auto const k = static_cast<std::uint64_t>(knowledge_size);
  on_gossip_round(round, 1, full_snapshot ? 1 : 0, wire_bytes, k, k, k);
}

void LbReportBuilder::on_gossip_round(int round, std::uint64_t messages,
                                      std::uint64_t full_messages,
                                      std::uint64_t bytes,
                                      std::uint64_t knowledge_min,
                                      std::uint64_t knowledge_max,
                                      std::uint64_t knowledge_sum) {
  if (messages == 0 || round < 0 ||
      static_cast<std::size_t>(round) >= max_rounds) {
    return; // out-of-range rounds are dropped, not crashed on
  }
  RoundSlot& slot = rounds_[static_cast<std::size_t>(round)];
  slot.messages.fetch_add(messages, std::memory_order_relaxed);
  slot.full_messages.fetch_add(full_messages, std::memory_order_relaxed);
  slot.bytes.fetch_add(bytes, std::memory_order_relaxed);
  slot.knowledge_sum.fetch_add(knowledge_sum, std::memory_order_relaxed);
  update_atomic_min(slot.knowledge_min, knowledge_min);
  update_atomic_max(slot.knowledge_max, knowledge_max);
}

void LbReportBuilder::on_transfer_pass(std::uint64_t accepted,
                                       std::uint64_t rejected,
                                       std::uint64_t no_target,
                                       std::uint64_t cmf_rebuilds) {
  accepted_.fetch_add(accepted, std::memory_order_relaxed);
  rejected_.fetch_add(rejected, std::memory_order_relaxed);
  no_target_.fetch_add(no_target, std::memory_order_relaxed);
  cmf_rebuilds_.fetch_add(cmf_rebuilds, std::memory_order_relaxed);
}

void LbReportBuilder::on_trial_iteration(int trial, int iteration,
                                         double imbalance) {
  TrialIterationReport step;
  step.trial = trial;
  step.iteration = iteration;
  step.imbalance = imbalance;
  step.objective = imbalance - threshold_ + 1.0;
  if (trial != current_trial_) {
    // New trial: the running best restarts from the initial placement's
    // objective (Algorithm 3 keeps the incoming distribution as the
    // incumbent, so the best-so-far can never exceed it).
    current_trial_ = trial;
    trial_best_ = initial_imbalance_ - threshold_ + 1.0;
  }
  trial_best_ = std::min(trial_best_, step.objective);
  step.objective_best = trial_best_;

  auto const accepted = accepted_.load(std::memory_order_relaxed);
  auto const rejected = rejected_.load(std::memory_order_relaxed);
  auto const no_target = no_target_.load(std::memory_order_relaxed);
  auto const nacks = nacks_.load(std::memory_order_relaxed);
  auto const rebuilds = cmf_rebuilds_.load(std::memory_order_relaxed);
  step.transfers_accepted = accepted - seen_accepted_;
  step.transfers_rejected = rejected - seen_rejected_;
  step.transfers_no_target = no_target - seen_no_target_;
  step.transfer_nacks = nacks - seen_nacks_;
  step.cmf_rebuilds = rebuilds - seen_cmf_rebuilds_;
  seen_accepted_ = accepted;
  seen_rejected_ = rejected;
  seen_no_target_ = no_target;
  seen_nacks_ = nacks;
  seen_cmf_rebuilds_ = rebuilds;

  iterations_.push_back(step);
}

void LbReportBuilder::set_final(double final_imbalance,
                                std::uint64_t migration_count,
                                std::uint64_t migration_bytes) {
  final_imbalance_ = final_imbalance;
  migration_count_ = migration_count;
  migration_bytes_ = migration_bytes;
}

LbInvocationReport LbReportBuilder::finish(std::size_t phase) const {
  LbInvocationReport report;
  report.phase = phase;
  report.strategy = strategy_;
  report.threshold = threshold_;
  report.initial_imbalance = initial_imbalance_;
  report.final_imbalance = final_imbalance_;
  report.transfers_accepted = accepted_.load(std::memory_order_relaxed);
  report.transfers_rejected = rejected_.load(std::memory_order_relaxed);
  report.transfers_no_target = no_target_.load(std::memory_order_relaxed);
  report.transfer_nacks = nacks_.load(std::memory_order_relaxed);
  report.cmf_rebuilds = cmf_rebuilds_.load(std::memory_order_relaxed);
  report.migration_count = migration_count_;
  report.migration_bytes = migration_bytes_;
  for (std::size_t r = 0; r < max_rounds; ++r) {
    RoundSlot const& slot = rounds_[r];
    auto const messages = slot.messages.load(std::memory_order_relaxed);
    if (messages == 0) {
      continue; // round never reached (gossip died out or rounds < r)
    }
    GossipRoundReport round;
    round.round = static_cast<int>(r);
    round.messages = messages;
    round.full_messages = slot.full_messages.load(std::memory_order_relaxed);
    round.bytes = slot.bytes.load(std::memory_order_relaxed);
    round.knowledge_min = slot.knowledge_min.load(std::memory_order_relaxed);
    round.knowledge_max = slot.knowledge_max.load(std::memory_order_relaxed);
    round.knowledge_avg =
        static_cast<double>(slot.knowledge_sum.load(
            std::memory_order_relaxed)) /
        static_cast<double>(messages);
    report.rounds.push_back(round);
  }
  report.iterations = iterations_;
  return report;
}

void write_lb_reports_json(std::ostream& os,
                           std::vector<LbInvocationReport> const& reports) {
  JsonWriter w{os};
  w.begin_object();
  w.key("lb_reports").begin_array();
  for (LbInvocationReport const& r : reports) {
    w.begin_object();
    w.kv("phase", r.phase);
    w.kv("strategy", r.strategy);
    w.kv("threshold", r.threshold);
    w.kv("initial_imbalance", r.initial_imbalance);
    w.kv("final_imbalance", r.final_imbalance);
    w.key("transfers").begin_object();
    w.kv("accepted", static_cast<unsigned long long>(r.transfers_accepted));
    w.kv("rejected", static_cast<unsigned long long>(r.transfers_rejected));
    w.kv("no_target", static_cast<unsigned long long>(r.transfers_no_target));
    w.kv("nacks", static_cast<unsigned long long>(r.transfer_nacks));
    w.kv("cmf_rebuilds", static_cast<unsigned long long>(r.cmf_rebuilds));
    w.end_object();
    w.key("migrations").begin_object();
    w.kv("count", static_cast<unsigned long long>(r.migration_count));
    w.kv("bytes", static_cast<unsigned long long>(r.migration_bytes));
    w.end_object();
    w.key("gossip_rounds").begin_array();
    for (GossipRoundReport const& round : r.rounds) {
      w.begin_object();
      w.kv("round", round.round);
      w.kv("messages", static_cast<unsigned long long>(round.messages));
      w.kv("full_messages",
           static_cast<unsigned long long>(round.full_messages));
      w.kv("bytes", static_cast<unsigned long long>(round.bytes));
      w.kv("knowledge_min",
           static_cast<unsigned long long>(round.knowledge_min));
      w.kv("knowledge_max",
           static_cast<unsigned long long>(round.knowledge_max));
      w.kv("knowledge_avg", round.knowledge_avg);
      w.end_object();
    }
    w.end_array();
    w.key("iterations").begin_array();
    for (TrialIterationReport const& it : r.iterations) {
      w.begin_object();
      w.kv("trial", it.trial);
      w.kv("iteration", it.iteration);
      w.kv("imbalance", it.imbalance);
      w.kv("objective", it.objective);
      w.kv("objective_best", it.objective_best);
      w.kv("accepted", static_cast<unsigned long long>(it.transfers_accepted));
      w.kv("rejected", static_cast<unsigned long long>(it.transfers_rejected));
      w.kv("no_target",
           static_cast<unsigned long long>(it.transfers_no_target));
      w.kv("nacks", static_cast<unsigned long long>(it.transfer_nacks));
      w.kv("cmf_rebuilds", static_cast<unsigned long long>(it.cmf_rebuilds));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

} // namespace tlb::obs
