#include "obs/causal.hpp"

#include <algorithm>
#include <ostream>
#include <unordered_map>

#include "obs/json.hpp"

namespace tlb::obs {

CausalLog& CausalLog::instance() {
  static CausalLog log;
  return log;
}

CausalLog::ThreadBuffer& CausalLog::local_buffer() {
  // One buffer per (thread, log-lifetime); buffers are never removed, so
  // the cached pointer stays valid across clear().
  thread_local ThreadBuffer* cached = nullptr;
  if (cached == nullptr) {
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->events.reserve(1024);
    SpinLockGuard lock{mutex_};
    buffers_.push_back(std::move(buffer));
    cached = buffers_.back().get();
  }
  return *cached;
}

void CausalLog::record(CausalEvent const& event) {
  ThreadBuffer& buffer = local_buffer();
  SpinLockGuard lock{buffer.mutex};
  if (buffer.events.size() >= max_events_per_thread) {
    ++buffer.dropped;
    return;
  }
  buffer.events.push_back(event);
}

std::vector<CausalEvent> CausalLog::snapshot() const {
  SpinLockGuard lock{mutex_};
  std::vector<CausalEvent> out;
  for (auto const& buffer : buffers_) {
    SpinLockGuard buffer_lock{buffer->mutex};
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  return out;
}

void CausalLog::clear() {
  SpinLockGuard lock{mutex_};
  for (auto const& buffer : buffers_) {
    SpinLockGuard buffer_lock{buffer->mutex};
    buffer->events.clear();
    buffer->dropped = 0;
  }
}

std::size_t CausalLog::event_count() const {
  SpinLockGuard lock{mutex_};
  std::size_t n = 0;
  for (auto const& buffer : buffers_) {
    SpinLockGuard buffer_lock{buffer->mutex};
    n += buffer->events.size();
  }
  return n;
}

std::uint64_t CausalLog::dropped() const {
  SpinLockGuard lock{mutex_};
  std::uint64_t n = 0;
  for (auto const& buffer : buffers_) {
    SpinLockGuard buffer_lock{buffer->mutex};
    n += buffer->dropped;
  }
  return n;
}

void write_causal_event(JsonWriter& w, CausalEvent const& event) {
  w.begin_object();
  w.kv("id", static_cast<unsigned long long>(event.stamp.id));
  w.kv("parent", static_cast<unsigned long long>(event.stamp.parent));
  w.kv("origin", static_cast<long long>(event.stamp.origin));
  w.kv("step", static_cast<unsigned long long>(event.stamp.step));
  w.kv("hop", static_cast<unsigned long long>(event.stamp.hop));
  w.kv("from", static_cast<long long>(event.from));
  w.kv("to", static_cast<long long>(event.to));
  w.kv("kind", event.kind);
  w.kv("bytes", static_cast<unsigned long long>(event.bytes));
  w.kv("ts_us", static_cast<long long>(event.ts_us));
  w.kv("dur_us", static_cast<long long>(event.dur_us));
  w.end_object();
}

void CausalLog::write_json(std::ostream& os) const {
  // Compact like the Chrome trace: one object per delivery adds up.
  JsonWriter w{os, 0};
  w.begin_object();
  w.kv("step", static_cast<unsigned long long>(step()));
  w.kv("dropped", static_cast<unsigned long long>(dropped()));
  w.key("events").begin_array();
  {
    SpinLockGuard lock{mutex_};
    for (auto const& buffer : buffers_) {
      SpinLockGuard buffer_lock{buffer->mutex};
      for (CausalEvent const& e : buffer->events) {
        write_causal_event(w, e);
      }
    }
  }
  w.end_array();
  w.end_object();
}

namespace {

/// Fold `us` and one hop into the attribution slot for `key`.
void attribute(std::vector<PathAttribution>& out, std::string key,
               std::int64_t us) {
  for (PathAttribution& a : out) {
    if (a.key == key) {
      a.us += us;
      ++a.hops;
      return;
    }
  }
  out.push_back(PathAttribution{std::move(key), us, 1});
}

void sort_attribution(std::vector<PathAttribution>& out) {
  std::sort(out.begin(), out.end(),
            [](PathAttribution const& a, PathAttribution const& b) {
              if (a.us != b.us) {
                return a.us > b.us;
              }
              return a.key < b.key;
            });
}

} // namespace

CriticalPath compute_critical_path(std::vector<CausalEvent> const& events) {
  CriticalPath path;
  // First occurrence wins: a fault-plane duplicate delivers the same id
  // twice, and the first delivery is the one later hops chained from.
  std::unordered_map<std::uint64_t, std::size_t> by_id;
  by_id.reserve(events.size());
  std::size_t terminal = events.size();
  for (std::size_t i = 0; i < events.size(); ++i) {
    CausalEvent const& e = events[i];
    if (e.stamp.id == 0) {
      continue;
    }
    by_id.emplace(e.stamp.id, i); // keeps the first occurrence
    if (terminal == events.size() ||
        e.stamp.hop > events[terminal].stamp.hop ||
        (e.stamp.hop == events[terminal].stamp.hop &&
         e.stamp.id > events[terminal].stamp.id)) {
      terminal = i;
    }
  }
  if (terminal == events.size()) {
    return path;
  }
  // Walk terminal -> root through parent ids. The hop count bounds the
  // walk, so a malformed log (parent cycles from corrupt input) cannot
  // loop forever.
  std::size_t cursor = terminal;
  for (std::size_t guard = 0;
       guard <= static_cast<std::size_t>(events[terminal].stamp.hop);
       ++guard) {
    path.chain.push_back(events[cursor]);
    auto const parent = events[cursor].stamp.parent;
    if (parent == 0) {
      break;
    }
    auto const it = by_id.find(parent);
    if (it == by_id.end()) {
      break; // parent dropped from the ring or never delivered
    }
    cursor = it->second;
  }
  std::reverse(path.chain.begin(), path.chain.end());
  for (CausalEvent const& e : path.chain) {
    path.handler_us += e.dur_us;
    attribute(path.by_rank, "rank " + std::to_string(e.to), e.dur_us);
    attribute(path.by_kind, e.kind, e.dur_us);
  }
  sort_attribution(path.by_rank);
  sort_attribution(path.by_kind);
  return path;
}

} // namespace tlb::obs
